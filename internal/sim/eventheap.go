package sim

// eventHeap is an inlined 4-ary min-heap of events ordered by (at, seq).
// It replaces container/heap, whose interface-based API boxes every pushed
// event into an `any` — one heap allocation per event on the simulator's
// hottest path. Since (at, seq) is a total order (seq is unique), any
// correct min-heap pops events in exactly the same sequence, so swapping
// the heap implementation cannot change simulation results.
//
// The 4-ary layout halves the tree depth of a binary heap: pushes compare
// against fewer ancestors and the wider nodes keep sift-down traffic in
// adjacent cache lines, which matters for the simulator's large (≈ 100
// byte) event records.
type eventHeap struct {
	ev []event
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.ev) }

// push inserts e, sifting it up toward the root.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&h.ev[i], &h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated slot is zeroed so
// the heap's backing array does not retain batch slices.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{}
	h.ev = h.ev[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&h.ev[c], &h.ev[min]) {
				min = c
			}
		}
		if !eventLess(&h.ev[min], &h.ev[i]) {
			return
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}
