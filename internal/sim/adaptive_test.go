package sim

import (
	"testing"

	"distws/internal/adapt"
	"distws/internal/apps/suite"
	"distws/internal/sched"
	"distws/internal/task"
)

// classesOf snapshots the controller's classification of every kind.
func classesOf(c *adapt.Controller) []task.Class {
	out := make([]task.Class, c.NumKinds())
	for k := range out {
		out[k] = c.Classify(int32(k))
	}
	return out
}

// The adaptive classifier must reach a stable classification on every
// micro app: the flip count is bounded by the kind count (a pinned kind
// stops migrating, so the evidence that pinned it cannot reverse within
// the run), and replaying the same trace through the warmed controller
// moves nothing.
func TestAdaptiveConvergesOnMicroApps(t *testing.T) {
	cl := cluster(4, 2)
	for _, app := range suite.Micro(1) {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			g, err := app.Trace(cl.Places)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			ctrl := adapt.New(adapt.Config{Places: cl.Places})
			r, err := Run(g, cl, sched.Adaptive, Options{Seed: 1, Adapt: ctrl})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if r.Counters.TasksExecuted != int64(g.NumTasks()) {
				t.Fatalf("executed %d of %d tasks", r.Counters.TasksExecuted, g.NumTasks())
			}
			flips := ctrl.Flips()
			if kinds := int64(ctrl.NumKinds()); flips > kinds {
				t.Fatalf("%d flips across %d kinds: classifier oscillating", flips, kinds)
			}
			if r.Counters.Reclassifications != flips {
				t.Fatalf("Reclassifications counter %d != controller flips %d",
					r.Counters.Reclassifications, flips)
			}
			// Stability: the same trace through the warmed controller must
			// not move any classification.
			before := classesOf(ctrl)
			if _, err := Run(g, cl, sched.Adaptive, Options{Seed: 1, Adapt: ctrl}); err != nil {
				t.Fatalf("replay Run: %v", err)
			}
			if got := ctrl.Flips(); got != flips {
				t.Fatalf("replay flipped %d more kinds (total %d): classification not stable",
					got-flips, got)
			}
			for k, cls := range classesOf(ctrl) {
				if cls != before[k] {
					t.Fatalf("kind %d drifted from %v to %v on replay", k, before[k], cls)
				}
			}
		})
	}
}

// Two adaptive runs from fresh controllers are byte-identical in their
// schedule outcomes: the controller is part of the deterministic core.
func TestAdaptiveDeterminism(t *testing.T) {
	g := flatGraph(t, 200, 500_000, 0, 1, true)
	a := mustRun(t, g, cluster(4, 2), sched.Adaptive)
	b := mustRun(t, g, cluster(4, 2), sched.Adaptive)
	if a.MakespanNS != b.MakespanNS || a.Counters != b.Counters {
		t.Fatalf("adaptive runs diverged: makespan %d vs %d", a.MakespanNS, b.MakespanNS)
	}
}
