package sim

import (
	"testing"

	"distws/internal/deque"
	"distws/internal/sched"
	"distws/internal/topology"
	"distws/internal/trace"
)

// cluster returns a places×workers cluster with the default cost model.
func cluster(places, workers int) topology.Cluster {
	c := topology.Paper()
	c.Places = places
	c.WorkersPerPlace = workers
	return c
}

// flatGraph builds n independent root tasks of the given cost, all homed
// at place homeAll (or spread round robin over spread places when
// homeAll < 0), flexible per the flag.
func flatGraph(t *testing.T, n int, cost int64, homeAll, spread int, flexible bool) *trace.Graph {
	t.Helper()
	b := trace.NewBuilder("flat")
	for i := 0; i < n; i++ {
		home := homeAll
		if homeAll < 0 {
			home = i % spread
		}
		b.Root(trace.Task{CostNS: cost, Home: home, Flexible: flexible})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

func mustRun(t *testing.T, g *trace.Graph, cl topology.Cluster, k sched.Kind) *Result {
	t.Helper()
	r, err := Run(g, cl, k, Options{Seed: 7})
	if err != nil {
		t.Fatalf("Run(%v): %v", k, err)
	}
	return r
}

func TestAllTasksExecute(t *testing.T) {
	g := flatGraph(t, 100, 1_000_000, -1, 4, true)
	r := mustRun(t, g, cluster(4, 2), sched.DistWS)
	if r.Counters.TasksExecuted != 100 {
		t.Fatalf("executed %d, want 100", r.Counters.TasksExecuted)
	}
	if r.MakespanNS <= 0 {
		t.Fatalf("makespan = %d", r.MakespanNS)
	}
}

func TestDeterminism(t *testing.T) {
	g := flatGraph(t, 200, 500_000, 0, 1, true)
	a := mustRun(t, g, cluster(4, 2), sched.DistWS)
	b := mustRun(t, g, cluster(4, 2), sched.DistWS)
	if a.MakespanNS != b.MakespanNS || a.Counters != b.Counters {
		t.Fatalf("nondeterministic results:\n%v\n%v", a, b)
	}
}

func TestSingleWorkerMakespanAtLeastTotalWork(t *testing.T) {
	g := flatGraph(t, 10, 2_000_000, 0, 1, false)
	r := mustRun(t, g, cluster(1, 1), sched.X10WS)
	if r.MakespanNS < g.TotalWorkNS() {
		t.Fatalf("makespan %d below total work %d", r.MakespanNS, g.TotalWorkNS())
	}
	// Overheads are small: within 5% of total work for 2ms tasks.
	if r.MakespanNS > g.TotalWorkNS()*105/100 {
		t.Fatalf("single-worker overhead too high: makespan %d vs work %d",
			r.MakespanNS, g.TotalWorkNS())
	}
	if got := r.Speedup(); got < 0.95 || got > 1.0 {
		t.Fatalf("single-worker speedup = %v, want ~1", got)
	}
}

func TestParallelSpeedupWithinPlace(t *testing.T) {
	g := flatGraph(t, 64, 1_000_000, 0, 1, false)
	r := mustRun(t, g, cluster(1, 8), sched.X10WS)
	if s := r.Speedup(); s < 6 {
		t.Fatalf("8-worker speedup = %.2f, want >= 6", s)
	}
}

// The paper's central claim, as a unit test: with all work homed at one
// place and flexible, DistWS spreads it across the cluster while X10WS
// cannot, so DistWS finishes much earlier.
func TestDistWSBeatsX10WSUnderImbalance(t *testing.T) {
	g := flatGraph(t, 128, 5_000_000, 0, 1, true)
	cl := cluster(4, 2)
	x10 := mustRun(t, g, cl, sched.X10WS)
	dws := mustRun(t, g, cl, sched.DistWS)
	if x10.Counters.RemoteSteals != 0 {
		t.Fatalf("X10WS stole remotely")
	}
	if dws.Counters.RemoteSteals == 0 {
		t.Fatalf("DistWS never stole remotely under total imbalance")
	}
	if dws.MakespanNS >= x10.MakespanNS {
		t.Fatalf("DistWS (%d) not faster than X10WS (%d) under imbalance",
			dws.MakespanNS, x10.MakespanNS)
	}
	// With 4 places the ideal gain is 4x; demand at least 2x.
	if ratio := float64(x10.MakespanNS) / float64(dws.MakespanNS); ratio < 2 {
		t.Fatalf("DistWS gain %.2fx, want >= 2x", ratio)
	}
}

func TestSensitiveTasksNeverMigrateUnderDistWS(t *testing.T) {
	g := flatGraph(t, 64, 2_000_000, 0, 1, false) // sensitive, all at place 0
	r := mustRun(t, g, cluster(4, 2), sched.DistWS)
	if r.Counters.TasksMigrated != 0 {
		t.Fatalf("%d sensitive tasks migrated under DistWS", r.Counters.TasksMigrated)
	}
	if r.Counters.RemoteSteals != 0 {
		t.Fatalf("sensitive tasks were remotely stolen")
	}
}

func TestDistWSNSMigratesSensitiveAndPaysRemoteRefs(t *testing.T) {
	b := trace.NewBuilder("ns")
	for i := 0; i < 64; i++ {
		b.Root(trace.Task{
			CostNS: 2_000_000, Home: 0, Flexible: false,
			MigMsgs: 10, MigBytes: 1024,
		})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster(4, 2)
	ns := mustRun(t, g, cl, sched.DistWSNS)
	if ns.Counters.TasksMigrated == 0 {
		t.Fatalf("DistWS-NS migrated nothing under imbalance")
	}
	if ns.Counters.RemoteDataAccess == 0 {
		t.Fatalf("migrated sensitive tasks must pay remote references")
	}
	dws := mustRun(t, g, cl, sched.DistWS)
	if dws.Counters.RemoteDataAccess != 0 {
		t.Fatalf("DistWS must not migrate sensitive tasks (got %d remote refs)",
			dws.Counters.RemoteDataAccess)
	}
	if ns.Counters.Messages <= dws.Counters.Messages {
		t.Fatalf("Table III ordering violated: NS msgs %d <= DistWS msgs %d",
			ns.Counters.Messages, dws.Counters.Messages)
	}
}

func TestMigratedTasksColdCache(t *testing.T) {
	// Tasks share a small working set: executed at home by one worker
	// they hit; migrated they miss.
	mk := func() *trace.Graph {
		b := trace.NewBuilder("cache")
		blocks := []uint64{1, 2, 3, 4}
		for i := 0; i < 40; i++ {
			b.Root(trace.Task{CostNS: 1_000_000, Home: 0, Flexible: true, Blocks: blocks})
		}
		g, err := b.Graph()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// All at home on a single place: after warmup, mostly hits.
	home := mustRun(t, mk(), cluster(1, 1), sched.X10WS)
	homeRate := home.Counters.CacheMissRate()
	// Spread over 4 places by stealing: thieves' caches are cold for the
	// migrated alias blocks, so the miss rate must be higher.
	stolen := mustRun(t, mk(), cluster(4, 1), sched.DistWS)
	stolenRate := stolen.Counters.CacheMissRate()
	if stolen.Counters.TasksMigrated == 0 {
		t.Fatalf("no migrations; test needs imbalance")
	}
	if stolenRate <= homeRate {
		t.Fatalf("migration should raise miss rate: home %.1f%% vs stolen %.1f%%",
			homeRate, stolenRate)
	}
}

func TestChildrenSpawnDuringParent(t *testing.T) {
	b := trace.NewBuilder("tree")
	root := b.Root(trace.Task{CostNS: 10_000_000, Home: 0, Flexible: true})
	for i := 0; i < 8; i++ {
		b.Child(root, trace.Task{CostNS: 1_000_000, HomeMode: trace.HomeInherit, Flexible: true})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, g, cluster(1, 4), sched.DistWS)
	if r.Counters.TasksExecuted != 9 {
		t.Fatalf("executed %d, want 9", r.Counters.TasksExecuted)
	}
	// Children overlap the parent: makespan well below serial 18ms.
	if r.MakespanNS >= 15_000_000 {
		t.Fatalf("children did not overlap parent: makespan %d", r.MakespanNS)
	}
}

func TestHomeInheritChildrenAreLocalToThief(t *testing.T) {
	// A stolen flexible parent spawns HomeInherit children; they are home
	// at the thief, so they must not count as migrated (paper §II cond b).
	b := trace.NewBuilder("inherit")
	// Saturate place 0 so the parent gets stolen by place 1.
	for i := 0; i < 4; i++ {
		b.Root(trace.Task{CostNS: 20_000_000, Home: 0, Flexible: false})
	}
	parent := b.Root(trace.Task{CostNS: 5_000_000, Home: 0, Flexible: true, MigBytes: 4096})
	for i := 0; i < 4; i++ {
		b.Child(parent, trace.Task{CostNS: 2_000_000, HomeMode: trace.HomeInherit, Flexible: false})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, g, cluster(2, 1), sched.DistWS)
	// Exactly the parent migrates; its children execute at their inherited
	// home (the thief) or at worst migrate back — but never more than the
	// parent alone when the thief place is otherwise idle.
	if r.Counters.TasksMigrated != 1 {
		t.Fatalf("TasksMigrated = %d, want 1 (the stolen parent only)", r.Counters.TasksMigrated)
	}
}

func TestLifelineCompletesAndBalances(t *testing.T) {
	g := flatGraph(t, 128, 2_000_000, 0, 1, true)
	r := mustRun(t, g, cluster(4, 2), sched.LifelineWS)
	if r.Counters.TasksExecuted != 128 {
		t.Fatalf("executed %d, want 128", r.Counters.TasksExecuted)
	}
	if r.Counters.TasksMigrated == 0 {
		t.Fatalf("lifeline scheduler moved no work")
	}
}

func TestRandomWSCompletes(t *testing.T) {
	g := flatGraph(t, 96, 1_000_000, 0, 1, true)
	r := mustRun(t, g, cluster(3, 2), sched.RandomWS)
	if r.Counters.TasksExecuted != 96 {
		t.Fatalf("executed %d, want 96", r.Counters.TasksExecuted)
	}
}

func TestUtilizationShape(t *testing.T) {
	g := flatGraph(t, 256, 1_000_000, 0, 1, true)
	cl := cluster(4, 2)
	x10 := mustRun(t, g, cl, sched.X10WS)
	dws := mustRun(t, g, cl, sched.DistWS)
	// Under X10WS only place 0 works: its utilization is high, others 0.
	if x10.Utilization[0] <= 50 {
		t.Fatalf("X10WS place 0 utilization = %.1f", x10.Utilization[0])
	}
	for p := 1; p < 4; p++ {
		if x10.Utilization[p] != 0 {
			t.Fatalf("X10WS place %d utilization = %.1f, want 0", p, x10.Utilization[p])
		}
	}
	// DistWS spreads: every place does some work.
	for p := 0; p < 4; p++ {
		if dws.Utilization[p] <= 0 {
			t.Fatalf("DistWS place %d idle", p)
		}
	}
}

func TestChunkedStealsDeliverExtraTasks(t *testing.T) {
	g := flatGraph(t, 64, 3_000_000, 0, 1, true)
	r := mustRun(t, g, cluster(2, 2), sched.DistWS)
	// Chunk size 2: successful remote steals come in pairs, so steals
	// should exceed the number of steal *events*; at minimum the count is
	// even or odd but > 0, and migrated tasks should exceed probes that
	// succeeded... simplest strong check: migrated >= 2 and RemoteSteals
	// >= 2 (at least one chunk of 2 was taken).
	if r.Counters.RemoteSteals < 2 {
		t.Fatalf("RemoteSteals = %d, want >= 2 (chunked)", r.Counters.RemoteSteals)
	}
}

func TestRunValidation(t *testing.T) {
	g := flatGraph(t, 4, 1000, 0, 1, true)
	if _, err := Run(g, topology.Cluster{Places: 0, WorkersPerPlace: 1}, sched.DistWS, Options{}); err == nil {
		t.Fatalf("invalid cluster accepted")
	}
	if _, err := Run(g, cluster(2, 2), sched.Kind(42), Options{}); err == nil {
		t.Fatalf("invalid policy accepted")
	}
	bad := &trace.Graph{Tasks: []trace.Task{{ID: 5}}, Roots: []int{0}}
	if _, err := Run(bad, cluster(2, 2), sched.DistWS, Options{}); err == nil {
		t.Fatalf("invalid graph accepted")
	}
}

func TestRootHomeOutOfRangeClamped(t *testing.T) {
	b := trace.NewBuilder("clamp")
	b.Root(trace.Task{CostNS: 1000, Home: 99, Flexible: true})
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, g, cluster(2, 1), sched.DistWS)
	if r.Counters.TasksExecuted != 1 {
		t.Fatalf("clamped-home task did not run")
	}
}

func TestSpawnFractionsRespected(t *testing.T) {
	b := trace.NewBuilder("frac")
	root := b.Root(trace.Task{CostNS: 10_000_000, Home: 0, SpawnFrac: []float64{0.0}})
	b.Child(root, trace.Task{CostNS: 1_000_000, HomeMode: trace.HomeInherit})
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// Child spawns immediately; with 2 workers it runs concurrently with
	// the parent, so the makespan is ~parent cost, not parent+child.
	r := mustRun(t, g, cluster(1, 2), sched.X10WS)
	if r.MakespanNS > 10_500_000 {
		t.Fatalf("immediate-spawn child serialized: makespan %d", r.MakespanNS)
	}
}

func TestBaseMessagesCounted(t *testing.T) {
	b := trace.NewBuilder("base")
	b.Root(trace.Task{CostNS: 1000, Home: 0, BaseMsgs: 7, BaseBytes: 700})
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, g, cluster(1, 1), sched.X10WS)
	if r.Counters.Messages != 7 || r.Counters.BytesTransferred != 700 {
		t.Fatalf("base communication not counted: %v", r.Counters)
	}
}

func BenchmarkSim10kTasks(b *testing.B) {
	bld := trace.NewBuilder("bench")
	for i := 0; i < 10_000; i++ {
		bld.Root(trace.Task{CostNS: 100_000, Home: i % 16, Flexible: i%2 == 0})
	}
	g, err := bld.Graph()
	if err != nil {
		b.Fatal(err)
	}
	cl := topology.Paper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cl, sched.DistWS, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLockContentionSlowsFineGrainedSharedWork(t *testing.T) {
	// Fine-grained flexible tasks at a single saturated place: every
	// dequeue goes through the shared deque, so serializing its lock
	// must lengthen the makespan.
	g := flatGraph(t, 4096, 2_000, 0, 1, true) // 2µs tasks vs 400ns lock
	cl := cluster(1, 8)
	free := mustRun(t, g, cl, sched.DistWS)
	contended, err := Run(g, cl, sched.DistWS, Options{Seed: 7, LockContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if contended.MakespanNS <= free.MakespanNS {
		t.Fatalf("lock contention should lengthen the makespan: %d vs %d",
			contended.MakespanNS, free.MakespanNS)
	}
	// Coarse tasks amortize the lock: the gap must shrink relatively.
	gCoarse := flatGraph(t, 256, 2_000_000, 0, 1, true)
	freeC := mustRun(t, gCoarse, cl, sched.DistWS)
	contC, err := Run(gCoarse, cl, sched.DistWS, Options{Seed: 7, LockContention: true})
	if err != nil {
		t.Fatal(err)
	}
	fineBlowup := float64(contended.MakespanNS) / float64(free.MakespanNS)
	coarseBlowup := float64(contC.MakespanNS) / float64(freeC.MakespanNS)
	if coarseBlowup >= fineBlowup {
		t.Fatalf("contention should hurt fine tasks more: fine %.3fx vs coarse %.3fx",
			fineBlowup, coarseBlowup)
	}
}

func TestChunkOverrideRespected(t *testing.T) {
	g := flatGraph(t, 256, 2_000_000, 0, 1, true)
	cl := cluster(4, 2)
	one, err := Run(g, cl, sched.DistWS, Options{Seed: 7, ChunkOverride: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(g, cl, sched.DistWS, Options{Seed: 7, ChunkOverride: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Bigger chunks mean fewer steal events for the same migration volume.
	if one.Counters.RemoteProbes <= eight.Counters.RemoteProbes {
		t.Logf("probes: chunk1=%d chunk8=%d", one.Counters.RemoteProbes, eight.Counters.RemoteProbes)
	}
	if one.Counters.TasksExecuted != 256 || eight.Counters.TasksExecuted != 256 {
		t.Fatalf("all tasks must run under any chunk size")
	}
}

func TestForceSharedFlexibleIncreasesSharedTraffic(t *testing.T) {
	// With spare workers, Algorithm 1 maps flexible tasks privately; the
	// ablation forces them all through the shared deque.
	g := flatGraph(t, 64, 1_000_000, -1, 4, true)
	cl := cluster(4, 8) // plenty of spares
	normal := mustRun(t, g, cl, sched.DistWS)
	forced, err := Run(g, cl, sched.DistWS, Options{Seed: 7, ForceSharedFlexible: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Counters.TasksExecuted != normal.Counters.TasksExecuted {
		t.Fatalf("task counts differ")
	}
}

// Work-conservation invariants: every simulated run executes all tasks,
// accumulates at least the graph's total work as busy time, and respects
// the machine's speedup bound.
func TestWorkConservationInvariants(t *testing.T) {
	g := flatGraph(t, 500, 1_500_000, 0, 1, true)
	for _, k := range sched.Kinds() {
		for _, cl := range []topology.Cluster{cluster(1, 1), cluster(2, 4), cluster(16, 8)} {
			r := mustRun(t, g, cl, k)
			if r.Counters.TasksExecuted != int64(g.NumTasks()) {
				t.Fatalf("%v on %v: executed %d of %d", k, cl, r.Counters.TasksExecuted, g.NumTasks())
			}
			var busy int64
			for _, b := range r.PlaceBusyNS {
				busy += b
			}
			if busy < g.TotalWorkNS() {
				t.Fatalf("%v on %v: busy %d below total work %d", k, cl, busy, g.TotalWorkNS())
			}
			if s := r.Speedup(); s > float64(cl.Workers())+1e-9 {
				t.Fatalf("%v on %v: speedup %.2f exceeds %d workers", k, cl, s, cl.Workers())
			}
			if r.MakespanNS < g.TotalWorkNS()/int64(cl.Workers()) {
				t.Fatalf("%v on %v: makespan below the work lower bound", k, cl)
			}
		}
	}
}

func TestDequeKindsInertWithoutContention(t *testing.T) {
	// Options.Deque models synchronization cost only, and only under
	// LockContention: the paper-faithful configuration must reproduce
	// bit-identical results whatever kind is selected, or the experiment
	// suite's cross-kind parity gate (make check) would fail.
	g := flatGraph(t, 1024, 20_000, 0, 1, true)
	cl := cluster(4, 4)
	base, err := Run(g, cl, sched.DistWS, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range deque.Kinds() {
		r, err := Run(g, cl, sched.DistWS, Options{Seed: 7, Deque: k})
		if err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		if r.MakespanNS != base.MakespanNS || r.Counters != base.Counters {
			t.Fatalf("deque kind %v changed an uncontended run:\n got %+v\nwant %+v",
				k, r.Counters, base.Counters)
		}
	}
}

func TestInvalidDequeKindRejected(t *testing.T) {
	g := flatGraph(t, 4, 1000, 0, 1, true)
	if _, err := Run(g, cluster(1, 1), sched.DistWS, Options{Seed: 1, Deque: deque.Kind(99)}); err == nil {
		t.Fatal("Run should reject an invalid deque kind")
	}
}

// TestRelaxedReceiverBeatsMutexUnderContention is the unit-scale version
// of the contention study: fine-grained flexible work homed at one place,
// many remote thieves, the shared-queue lock serialized. The lock-free
// kinds must shorten the makespan monotonically (mutex ≥ chaselev ≥
// relaxed), and the relaxed run must show the receiver-initiated
// protocol's counters: requests posted, donations served, and the
// occasional deterministic duplicate take absorbed by dedup (executed
// exactly once regardless).
func TestRelaxedReceiverBeatsMutexUnderContention(t *testing.T) {
	g := flatGraph(t, 8192, 2_000, 0, 1, true)
	cl := cluster(8, 8)
	run := func(k deque.Kind) *Result {
		r, err := Run(g, cl, sched.DistWS, Options{Seed: 7, LockContention: true, Deque: k})
		if err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		if r.Counters.TasksExecuted != 8192 {
			t.Fatalf("%v executed %d tasks, want 8192", k, r.Counters.TasksExecuted)
		}
		return r
	}
	mutex := run(deque.KindMutex)
	chaselev := run(deque.KindChaseLev)
	relaxed := run(deque.KindRelaxed)
	if chaselev.MakespanNS >= mutex.MakespanNS {
		t.Errorf("chaselev should beat mutex under contention: %d vs %d",
			chaselev.MakespanNS, mutex.MakespanNS)
	}
	if relaxed.MakespanNS >= mutex.MakespanNS {
		t.Errorf("relaxed should beat mutex under contention: %d vs %d",
			relaxed.MakespanNS, mutex.MakespanNS)
	}
	if relaxed.Counters.StealRequests == 0 || relaxed.Counters.Donations == 0 {
		t.Errorf("receiver-initiated counters missing: requests=%d donations=%d",
			relaxed.Counters.StealRequests, relaxed.Counters.Donations)
	}
	if mutex.Counters.DuplicateTakes != 0 || chaselev.Counters.DuplicateTakes != 0 {
		t.Errorf("only the relaxed kind may take duplicates: mutex=%d chaselev=%d",
			mutex.Counters.DuplicateTakes, chaselev.Counters.DuplicateTakes)
	}
	// Determinism: the duplicate-take draws come from seeded rng streams.
	again, err := Run(g, cl, sched.DistWS, Options{Seed: 7, LockContention: true, Deque: deque.KindRelaxed})
	if err != nil {
		t.Fatal(err)
	}
	if again.MakespanNS != relaxed.MakespanNS || again.Counters != relaxed.Counters {
		t.Fatalf("relaxed contention run not deterministic:\n got %+v\nwant %+v",
			again.Counters, relaxed.Counters)
	}
}
