// Package sim is a deterministic discrete-event simulator that replays an
// application task graph (internal/trace) on a virtual cluster under any
// scheduling policy from internal/sched. It is the substitute for the
// paper's 16-node InfiniBand testbed: virtual time lets the repository
// reproduce 128-worker scheduling behaviour — makespans, steal counts,
// message counts, cache miss rates and per-node utilization — on any host,
// using exactly the policy decision code the real runtime executes.
//
// # Model
//
// Each virtual worker owns a private LIFO deque; each place owns a shared
// FIFO deque (paper Fig. 2). Workers execute tasks for their recorded
// costs; spawned children become available partway through the parent's
// execution. An idle worker performs one Algorithm-1 sweep — own deque,
// co-located deques, local shared deque, then remote shared deques in
// randomized order — accumulating modelled software and network delays,
// and goes dormant if the sweep fails; pushes of new work wake dormant
// workers (locally first, then one remote place when the work is
// remotely stealable). Migration costs are charged at execution time:
// payload transfer for the task's data plus one round trip per remote
// reference the task performs away from home, plus a per-miss penalty
// from the LRU cache model.
package sim

import (
	"fmt"
	"math/rand"

	"distws/internal/adapt"
	"distws/internal/cachesim"
	"distws/internal/dag"
	"distws/internal/deque"
	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/task"
	"distws/internal/topology"
	"distws/internal/trace"
)

// Options tunes the simulation.
type Options struct {
	// Seed drives victim selection. Zero picks 1.
	Seed int64
	// CacheBlocks is the per-worker modelled L1d capacity in blocks.
	// Zero picks 512 (a 32 KiB cache of 64-byte lines).
	CacheBlocks int
	// MissPenaltyNS is the stall charged per modelled cache miss.
	// Zero picks 150ns.
	MissPenaltyNS int64
	// RemoteRefBytes is the payload of one remote data reference.
	// Zero picks 256.
	RemoteRefBytes int
	// ChunkOverride, when positive, overrides the policy's distributed
	// steal chunk size (ablation of §V-B3's empirical choice of 2).
	ChunkOverride int
	// ForceSharedFlexible disables Algorithm 1's idle/under-utilized
	// exception: every flexible task maps to the shared deque (ablation
	// of lines 5–8).
	ForceSharedFlexible bool
	// LockContention serializes shared-deque operations through each
	// place's deque lock: a consumer arriving while the lock is held
	// waits its turn (§V: "a local worker might end up waiting for
	// thousands of cycles"). Off by default; enable to study contention
	// on fine-grained workloads.
	LockContention bool
	// Deque selects the worker-queue synchronization model for the
	// contention study. It is consulted only when LockContention is on —
	// the scheduling decisions never change, only the modelled cost of
	// shared-queue operations — so without LockContention every kind
	// reproduces the paper-faithful run bit for bit. Under contention:
	//
	//   - deque.KindMutex (zero value): the paper's mutex-guarded deque —
	//     every operation serializes through the place's lock.
	//   - deque.KindChaseLev: lock-free Chase–Lev — owner-side dequeues
	//     pay only a fence, steals serialize through a CAS window a
	//     quarter the lock's width.
	//   - deque.KindRelaxed: fence-free queues with receiver-initiated
	//     stealing — no serialization at all; thieves post a request and
	//     receive a steal-half donation, and the multiplicity relaxation
	//     occasionally (deterministically, from the thief's rng stream)
	//     hands a task out twice; the duplicate is paid for in transfer
	//     and then discarded by dedup, never executed twice.
	Deque deque.Kind
	// Fault is the injected fault plan: place crashes in virtual time (or
	// after a task count), message loss and latency spikes on the steal
	// path. Nil simulates a fault-free cluster. Crashed places stop
	// executing; their queued and running tasks are re-homed to survivors
	// and re-executed, and thieves exclude them from victim sweeps.
	Fault *fault.Plan
	// StealTimeoutNS is how long a thief waits for a steal reply before
	// declaring the round trip lost. Zero picks 4× the probe round trip.
	StealTimeoutNS int64
	// StealMaxAttempts bounds the per-victim request attempts (the first
	// try plus retries under exponential backoff). Zero picks 3.
	StealMaxAttempts int
	// Recorder, when non-nil, receives per-worker scheduling events
	// (task start/end, spawns, steal attempts and outcomes, chunk
	// arrivals, crashes) stamped in virtual nanoseconds. Run configures
	// it for the cluster shape and drives its clock from the event loop;
	// export the trace with obs.Recorder.Snapshot after Run returns.
	// Nil (the default) records nothing and costs one branch per event.
	Recorder *obs.Recorder
	// Adapt, when non-nil and the policy is sched.Adaptive, is the online
	// classification controller driving the run; callers pass one to
	// inspect its learned state (classifications, flips, chunk sizes)
	// after Run returns. Nil under sched.Adaptive creates a fresh
	// controller with default thresholds. Ignored under other policies.
	Adapt *adapt.Controller
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 512
	}
	if o.MissPenaltyNS == 0 {
		o.MissPenaltyNS = 150
	}
	if o.RemoteRefBytes == 0 {
		o.RemoteRefBytes = 256
	}
	if o.StealMaxAttempts <= 0 {
		o.StealMaxAttempts = 3
	}
	return o
}

// Result summarizes one simulated run.
type Result struct {
	Graph        string
	Policy       sched.Kind
	Cluster      topology.Cluster
	MakespanNS   int64
	SequentialNS int64
	Counters     metrics.Snapshot
	// Events is the number of discrete events the engine processed — the
	// denominator for events/sec throughput reporting.
	Events int64
	// PlaceBusyNS is the total busy worker time per place.
	PlaceBusyNS []int64
	// Utilization is each place's busy fraction of the makespan in percent.
	Utilization []float64
}

// Speedup returns sequential time over makespan.
func (r *Result) Speedup() float64 {
	if r.MakespanNS <= 0 {
		return 0
	}
	return float64(r.SequentialNS) / float64(r.MakespanNS)
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s on %s: makespan=%.3fms speedup=%.2f %s",
		r.Graph, r.Policy, r.Cluster.String(),
		float64(r.MakespanNS)/1e6, r.Speedup(), r.Counters.String())
}

// event kinds.
type evKind uint8

const (
	evSpawn     evKind = iota // a task becomes available
	evWake                    // an idle worker re-checks for work
	evDone                    // a worker finishes its task
	evArrive                  // stolen/pushed tasks arrive at a place's shared deque
	evCrash                   // a place fail-stops (fault injection)
	evJoin                    // an absent place joins the cluster
	evDrain                   // a place starts a graceful drain
	evHeal                    // a flapped place recovers (place >= 0) or a partition heals (place -1)
	evPartition               // an injected partition takes effect (place = smaller-side size)
)

type event struct {
	at      int64
	seq     uint64
	kind    evKind
	worker  int   // evWake, evDone
	taskID  int   // evSpawn, evDone
	home    int   // evSpawn: resolved home place
	from    int   // evSpawn: spawning place (-1 for roots)
	fromW   int   // evSpawn: spawning worker id (-1 if none/remote)
	place   int   // evArrive, evCrash
	batch   []int // evArrive payload
	requeue bool  // evSpawn: re-enqueue after a place failure, not a fresh spawn
}

type simWorker struct {
	id    int
	local int
	place *simPlace
	priv  deque.Private[int]
	busy  bool
	// curTask is the task currently executing (-1 when idle); a crash of
	// the place loses it mid-flight, so recovery re-homes it.
	curTask int
	// wakePending dedups wake events so a dormant worker has at most one
	// outstanding wake.
	wakePending bool
	// rng drives this worker's victim selection. It is seeded lazily on the
	// first remote-steal sweep: seeding a math/rand source costs a 607-word
	// state initialization, which dominated short simulations when paid for
	// all 128 workers up front, and workers that never steal remotely
	// (X10WS, single-place clusters, never-idle workers) never consume a
	// random number. Lazy seeding draws the identical stream.
	rng    *rand.Rand
	busyNS int64
	// victims is a reusable scratch buffer for victim orderings, so the
	// per-sweep permutation never allocates.
	victims []int
}

type simPlace struct {
	id           int
	shared       deque.Shared[int]
	workers      []*simWorker
	running      int
	queued       int
	pendingWakes int // wakes scheduled but not yet handled
	active       bool
	failedSweeps int
	spawnSeq     uint64
	rr           int
	// dead marks a crashed or not-yet-joined place: it executes nothing,
	// answers no steals, and is excluded from victim sweeps, wakes, and
	// task homing.
	dead bool
	// draining marks a place departing gracefully: it refuses new steals
	// and starts no new work, but its in-flight tasks complete and their
	// results count normally (no re-execution). Once the last one
	// finishes, the place flips to dead.
	draining bool
	// executed counts tasks completed here, for AfterTasks crash triggers.
	executed  int64
	lifelines []bool // waiting places registered on this place
	// cache models the node's data cache: tasks executing at their home
	// place find their blocks warm across repeated visits; migrated tasks
	// start cold (their blocks are aliased per executing place).
	cache *cachesim.Cache
	// lockFreeAt is when the shared deque's lock next becomes available
	// (LockContention only).
	lockFreeAt int64
}

type engine struct {
	g       *trace.Graph
	cl      topology.Cluster
	policy  sched.Kind
	opts    Options
	ctrs    metrics.Counters
	events  eventHeap
	seq     uint64
	now     int64
	places  []*simPlace
	workers []*simWorker

	tasksDone int
	lastDone  int64
	remoteRR  int

	// resolvedHome is each task's home place as fixed at spawn time
	// (HomeInherit children are homed at their parent's executing place).
	resolvedHome []int

	// inj evaluates the injected fault plan (nil when fault-free).
	inj *fault.Injector
	// childSpawned marks tasks whose children have been scheduled, so a
	// re-executed task does not spawn its subtree twice.
	childSpawned []bool
	// stealTimeoutNS is the resolved per-request steal timeout.
	stealTimeoutNS int64
	// eventsHandled counts processed events for throughput reporting.
	eventsHandled int64
	// rec receives scheduling events in virtual time (nil = tracing off).
	rec *obs.Recorder
	// ctrl is the adapt feedback controller (non-nil only under
	// sched.Adaptive): it supplies each task's online classification in
	// place of the trace annotation, the per-place steal chunk size, and
	// the latency-biased victim order.
	ctrl *adapt.Controller
	// taskKind is each task's interned adapt kind id (sched.Adaptive only).
	taskKind []int32

	// Reused scratch storage for the hot path, so steady-state simulation
	// performs no per-event heap allocations:
	//   - stealBuf receives each steal chunk (consumed within stealRemote);
	//   - aliasBuf receives aliased block IDs (consumed within start);
	//   - batchPool recycles evArrive payload slices after delivery.
	stealBuf  []int
	aliasBuf  []uint64
	batchPool [][]int
	// obsBuf accumulates one steal sweep's probe outcomes for a single
	// locked hand-off to the adapt controller (sched.Adaptive only).
	// When the controller is unsynchronized (obsDirect) the batching
	// would amortize nothing, so observations are fed per probe instead —
	// same order, same state, no struct copies.
	obsBuf    []adapt.StealObservation
	obsDirect bool

	// dag, when non-nil, runs the engine in dataflow mode (RunDAG): tasks
	// are released by dependency completion instead of parent spawns, and
	// data movement is accounted against the block directory. See dag.go.
	dag *dagState
}

// getBatch returns a recycled evArrive payload slice (possibly nil; callers
// append into it), and putBatch returns a delivered payload to the pool.
func (e *engine) getBatch() []int {
	if n := len(e.batchPool); n > 0 {
		b := e.batchPool[n-1]
		e.batchPool = e.batchPool[:n-1]
		return b[:0]
	}
	return nil
}

func (e *engine) putBatch(b []int) {
	if cap(b) > 0 {
		e.batchPool = append(e.batchPool, b[:0])
	}
}

// Run simulates graph g on cluster cl under policy, returning the run's
// metrics. The same (graph, cluster, policy, options) always produces the
// same result.
func Run(g *trace.Graph, cl topology.Cluster, policy sched.Kind, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if !sched.Valid(policy) {
		return nil, fmt.Errorf("sim: invalid policy %v", policy)
	}
	if !opts.Deque.Valid() {
		return nil, fmt.Errorf("sim: invalid deque kind %v", opts.Deque)
	}
	opts = opts.withDefaults()
	if err := opts.Fault.Validate(cl.Places); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return runEngine(g, cl, policy, opts, nil)
}

// runEngine is the shared event loop behind Run and RunDAG. The caller
// has validated its inputs and applied option defaults; ds selects
// dataflow mode (nil for fork-join traces).
func runEngine(g *trace.Graph, cl topology.Cluster, policy sched.Kind, opts Options, ds *dagState) (*Result, error) {
	e := &engine{g: g, cl: cl, policy: policy, opts: opts, dag: ds}
	e.rec = opts.Recorder
	// Events are stamped with the event loop's virtual time via RecordAt
	// (every record call runs inside its event's handler, so e.now is
	// exactly the event's timestamp). No Clock is installed: a closure
	// over the engine would force it to escape to the heap even with
	// tracing off.
	e.rec.Configure(cl.Places, cl.WorkersPerPlace, nil, obs.VirtualNS)
	e.inj = fault.NewInjector(opts.Fault)
	if policy == sched.Adaptive {
		e.ctrl = opts.Adapt
		if e.ctrl == nil {
			// The event loop is one goroutine, so its private controller
			// can skip internal locking.
			e.ctrl = adapt.New(adapt.Config{Places: cl.Places, Unsynchronized: true})
		}
		e.obsDirect = e.ctrl.Unsynchronized()
		// Kinds are interned up front from observable task descriptors —
		// never from the Flexible annotation, which the adaptive policy
		// must not read. Signatures collapse to a handful of kinds, so a
		// local memo keeps this loop off the controller mutex.
		e.taskKind = make([]int32, len(g.Tasks))
		memo := make(map[uint64]int32, 16)
		for i := range g.Tasks {
			t := &g.Tasks[i]
			sig := adapt.Signature(t.CostNS, len(t.Blocks), t.MigMsgs, t.MigBytes)
			id, ok := memo[sig]
			if !ok {
				id = e.ctrl.Intern(sig)
				memo[sig] = id
			}
			e.taskKind[i] = id
		}
	}
	e.resolvedHome = make([]int, len(g.Tasks))
	e.childSpawned = make([]bool, len(g.Tasks))
	e.stealTimeoutNS = opts.StealTimeoutNS
	if e.stealTimeoutNS <= 0 {
		e.stealTimeoutNS = 4 * cl.Net.RoundTripNS(32, 32)
	}
	e.places = make([]*simPlace, cl.Places)
	for p := range e.places {
		e.places[p] = &simPlace{
			id:        p,
			lifelines: make([]bool, cl.Places),
			cache:     cachesim.New(opts.CacheBlocks),
		}
	}
	for p, pl := range e.places {
		pl.workers = make([]*simWorker, cl.WorkersPerPlace)
		for i := range pl.workers {
			w := &simWorker{
				id:      p*cl.WorkersPerPlace + i,
				local:   i,
				place:   pl,
				curTask: -1,
			}
			pl.workers[i] = w
			e.workers = append(e.workers, w)
		}
	}

	// Schedule the plan's virtual-time crashes before any work exists so
	// heap ordering alone decides what they interrupt.
	for p := range e.places {
		if at, ok := e.inj.CrashAtNS(p); ok {
			e.push(event{at: at, kind: evCrash, place: p})
		}
	}
	// Churn schedule: late joiners start absent, drains and flap cycles
	// are timed events, partitions get bracketing marker events so the
	// trace shows when the cut opened and healed (the cut itself is
	// evaluated per steal probe against the virtual clock).
	if f := opts.Fault; f != nil {
		for _, j := range f.Joins {
			e.places[j.Place].dead = true
			e.push(event{at: j.AtNS, kind: evJoin, place: j.Place})
		}
		for _, d := range f.Drains {
			e.push(event{at: d.AtNS, kind: evDrain, place: d.Place})
		}
		for _, fl := range f.Flaps {
			period := fl.DownNS + fl.UpNS
			for i := 0; i < fl.Cycles; i++ {
				at := fl.AtNS + int64(i)*period
				e.push(event{at: at, kind: evCrash, place: fl.Place})
				e.push(event{at: at + fl.DownNS, kind: evHeal, place: fl.Place})
			}
		}
		for _, part := range f.Partitions {
			e.push(event{at: part.AtNS, kind: evPartition, place: len(part.GroupA)})
			if part.HealNS > 0 {
				e.push(event{at: part.HealNS, kind: evHeal, place: -1})
			}
		}
	}

	if ds != nil {
		// Dataflow mode: the initially ready tasks (in-degree zero) are
		// the roots; each is homed by the run's placement policy.
		e.dagRelease(ds.tracker.Ready(ds.relBuf[:0]), -1, -1)
	} else {
		for _, r := range g.Roots {
			home := g.Tasks[r].Home
			if home < 0 || home >= cl.Places {
				home = 0
			}
			e.push(event{at: 0, kind: evSpawn, taskID: r, home: home, from: -1, fromW: -1})
		}
	}

	for e.events.len() > 0 && e.tasksDone < len(g.Tasks) {
		ev := e.events.pop()
		e.now = ev.at
		e.eventsHandled++
		switch ev.kind {
		case evSpawn:
			e.handleSpawn(ev)
		case evWake:
			e.handleWake(ev.worker)
		case evDone:
			e.handleDone(ev)
		case evArrive:
			e.handleArrive(ev)
		case evCrash:
			e.crashPlace(e.places[ev.place])
		case evJoin:
			e.joinPlace(e.places[ev.place])
		case evDrain:
			e.drainPlace(e.places[ev.place])
		case evHeal:
			if ev.place < 0 {
				e.record(0, 0, obs.KindHeal, -1, -1, 0)
			} else {
				e.healPlace(e.places[ev.place])
			}
		case evPartition:
			e.record(0, 0, obs.KindPartition, -1, int32(ev.place), 0)
		}
	}
	if e.tasksDone < len(g.Tasks) {
		return nil, fmt.Errorf("sim: stalled with %d of %d tasks done (scheduler invariant violated)",
			e.tasksDone, len(g.Tasks))
	}

	res := &Result{
		Graph:        g.Name,
		Policy:       policy,
		Cluster:      cl,
		MakespanNS:   e.lastDone,
		SequentialNS: g.Sequential(),
		Counters:     e.ctrs.Snapshot(),
		Events:       e.eventsHandled,
		PlaceBusyNS:  make([]int64, cl.Places),
	}
	for _, w := range e.workers {
		res.PlaceBusyNS[w.place.id] += w.busyNS
	}
	res.Utilization = make([]float64, cl.Places)
	if e.lastDone > 0 {
		for p, busy := range res.PlaceBusyNS {
			f := 100 * float64(busy) / (float64(e.lastDone) * float64(cl.WorkersPerPlace))
			if f > 100 {
				f = 100
			}
			res.Utilization[p] = f
		}
	}
	return res, nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// record logs one scheduling event at the current virtual time when
// tracing is on. The nil check is the disabled fast path: one
// predictable branch, no call, no allocation.
func (e *engine) record(place, worker int, k obs.Kind, taskID, arg int32, dur int64) {
	if e.rec != nil {
		e.rec.RecordAt(e.now, place, worker, k, taskID, arg, dur)
	}
}

func classOf(t *trace.Task) task.Class {
	if t.Flexible {
		return task.Flexible
	}
	return task.Sensitive
}

func (e *engine) load(p *simPlace) sched.PlaceLoad {
	// Workers with a wake already scheduled are committed to queued work,
	// so they do not count as spare capacity: without this, a burst of
	// spawns at one instant would map everything to private deques.
	spares := e.cl.WorkersPerPlace - p.running - p.pendingWakes
	if spares < 0 {
		spares = 0
	}
	return sched.PlaceLoad{
		Active:     p.active,
		Spares:     spares,
		Size:       p.running + p.queued,
		MaxThreads: e.cl.WorkersPerPlace,
	}
}

// handleSpawn maps a newly available task per Algorithm 1 lines 1–8.
func (e *engine) handleSpawn(ev event) {
	t := &e.g.Tasks[ev.taskID]
	if e.places[ev.home].dead || e.places[ev.home].draining {
		// The home place failed (or is departing) before the task arrived:
		// the runtime re-homes it to a survivor.
		ev.home = e.aliveHome(ev.home)
	}
	home := e.places[ev.home]
	e.resolvedHome[ev.taskID] = ev.home
	if !ev.requeue {
		e.ctrs.TasksSpawned.Add(1)
	}
	e.record(ev.home, 0, obs.KindSpawn, int32(ev.taskID), int32(ev.from), 0)

	if ev.from >= 0 && ev.from != ev.home {
		// Cross-place async: ship the task and its payload.
		e.ctrs.Messages.Add(1)
		e.ctrs.BytesTransferred.Add(int64(t.MigBytes))
	}

	class := classOf(t)
	if e.ctrl != nil {
		// Adaptive: the controller's learned classification replaces the
		// programmer's annotation; the mapping rule itself is Algorithm 1.
		class = e.ctrl.Classify(e.taskKind[ev.taskID])
	}
	target := sched.MapTask(e.policy, class, e.load(home), home.spawnSeq)
	if e.opts.ForceSharedFlexible && t.Flexible && sched.RemoteStealing(e.policy) {
		target = sched.TargetShared
	}
	home.spawnSeq++
	home.queued++
	home.active = true
	home.failedSweeps = 0
	if target == sched.TargetShared {
		home.shared.Push(ev.taskID)
		if e.policy == sched.LifelineWS {
			e.serveLifelines(home)
		}
	} else {
		// X10 help-first semantics: a task spawned by a co-located worker
		// lands in that worker's own deque; tasks arriving from elsewhere
		// are spread round robin.
		var w *simWorker
		if ev.fromW >= 0 && e.workers[ev.fromW].place == home {
			w = e.workers[ev.fromW]
		} else {
			w = home.workers[home.rr%len(home.workers)]
			home.rr++
		}
		w.priv.Push(ev.taskID)
	}
	e.wakeFor(home, target == sched.TargetShared)
}

// wakeFor wakes an idle worker that could pick up fresh work at place p;
// when the work is remotely stealable and p has no idle workers, one
// dormant remote worker is woken to model a thief noticing the surplus.
func (e *engine) wakeFor(p *simPlace, remotelyStealable bool) {
	if p.dead || p.draining {
		return
	}
	for _, w := range p.workers {
		if !w.busy && !w.wakePending {
			w.wakePending = true
			p.pendingWakes++
			e.push(event{at: e.now, kind: evWake, worker: w.id})
			return
		}
	}
	if !remotelyStealable || !sched.RemoteStealing(e.policy) || len(e.places) == 1 {
		return
	}
	for off := 0; off < len(e.places); off++ {
		q := e.places[(e.remoteRR+off)%len(e.places)]
		if q == p || q.dead || q.draining {
			continue
		}
		for _, w := range q.workers {
			if !w.busy && !w.wakePending {
				w.wakePending = true
				q.pendingWakes++
				e.remoteRR = (e.remoteRR + off + 1) % len(e.places)
				e.push(event{at: e.now, kind: evWake, worker: w.id})
				return
			}
		}
	}
}

func (e *engine) handleWake(worker int) {
	w := e.workers[worker]
	w.wakePending = false
	w.place.pendingWakes--
	if w.busy || w.place.dead {
		return
	}
	e.findWork(w)
}

func (e *engine) handleDone(ev event) {
	w := e.workers[ev.worker]
	if w.place.dead || !w.busy || w.curTask != ev.taskID {
		// Stale completion: the place crashed (and possibly healed) while
		// this task was executing; the crash handler reset the worker and
		// re-homed the task, so this event no longer names live work.
		return
	}
	w.busy = false
	w.curTask = -1
	w.place.running--
	w.place.executed++
	e.tasksDone++
	e.ctrs.TasksExecuted.Add(1)
	e.record(w.place.id, w.local, obs.KindTaskEnd, int32(ev.taskID), 0, 0)
	if e.now > e.lastDone {
		e.lastDone = e.now
	}
	if e.dag != nil {
		// Dependency completion releases dependents even when this place
		// is draining or about to crash: the released tasks are homed (and
		// if need be re-homed by handleSpawn) on survivors.
		e.dagComplete(ev.taskID, w)
	}
	if n, ok := e.inj.CrashAfterTasks(w.place.id); ok && w.place.executed >= n {
		e.crashPlace(w.place)
		return
	}
	if w.place.draining {
		// No new work for a departing place; once the last in-flight task
		// has flushed, the place leaves the cluster for good.
		if w.place.running == 0 {
			w.place.dead = true
		}
		return
	}
	if e.tasksDone == len(e.g.Tasks) {
		return
	}
	e.findWork(w)
}

func (e *engine) handleArrive(ev event) {
	p := e.places[ev.place]
	if p.dead || p.draining {
		// Stolen tasks in flight toward a crashed or departing thief:
		// re-home them so the work is not lost with the place. A crash
		// counts as re-execution (state was lost); a drain merely offloads
		// tasks that never started.
		for _, id := range ev.batch {
			if p.dead {
				e.ctrs.TasksReExecuted.Add(1)
			} else {
				e.ctrs.TasksOffloaded.Add(1)
			}
			e.push(event{at: e.now, kind: evSpawn, taskID: id,
				home: e.aliveHome(ev.place), from: -1, fromW: -1, requeue: true})
		}
		e.putBatch(ev.batch)
		return
	}
	e.record(ev.place, 0, obs.KindArrive, -1, int32(len(ev.batch)), 0)
	for _, id := range ev.batch {
		p.queued++
		p.shared.Push(id)
	}
	e.putBatch(ev.batch)
	p.active = true
	p.failedSweeps = 0
	e.wakeFor(p, true)
}

// aliveHome returns the first surviving place at or after prefer, wrapping
// around. Plan validation guarantees at least one survivor.
func (e *engine) aliveHome(prefer int) int {
	n := len(e.places)
	prefer %= n
	if prefer < 0 {
		prefer += n
	}
	for i := 0; i < n; i++ {
		p := (prefer + i) % n
		if !e.places[p].dead && !e.places[p].draining {
			return p
		}
	}
	return prefer
}

// crashPlace fail-stops p: every queued task (shared and private deques)
// and every task running there at the instant of the crash is re-homed to
// a surviving place and re-executed. Recovery ships each orphan's payload
// once, mirroring a resilient-finish re-spawn.
func (e *engine) crashPlace(p *simPlace) {
	if p.dead {
		return
	}
	p.dead = true
	p.active = false
	e.ctrs.PlacesLost.Add(1)

	var orphans []int
	for {
		id, ok := p.shared.Poll()
		if !ok {
			break
		}
		orphans = append(orphans, id)
	}
	for _, w := range p.workers {
		for {
			id, ok := w.priv.Pop()
			if !ok {
				break
			}
			orphans = append(orphans, id)
		}
	}
	p.queued -= len(orphans)
	for _, w := range p.workers {
		if w.busy && w.curTask >= 0 {
			orphans = append(orphans, w.curTask)
		}
		// Reset worker state so a later heal restarts the place cleanly;
		// the stale-completion guard in handleDone discards the in-flight
		// evDone events these interrupted tasks left behind.
		w.busy = false
		w.curTask = -1
	}
	p.running = 0

	e.record(p.id, 0, obs.KindCrash, -1, int32(len(orphans)), 0)
	for i, id := range orphans {
		e.ctrs.TasksReExecuted.Add(1)
		delay := e.cl.Net.TransferNS(e.g.Tasks[id].MigBytes)
		e.push(event{at: e.now + delay, kind: evSpawn, taskID: id,
			home: e.aliveHome(p.id + 1 + i), from: -1, fromW: -1, requeue: true})
	}
}

// joinPlace brings an absent place into the cluster at e.now. The place
// starts idle and empty; its workers acquire work by stealing, and new
// spawns may be homed there from this instant on.
func (e *engine) joinPlace(p *simPlace) {
	if !p.dead {
		return
	}
	p.dead = false
	p.draining = false
	p.active = false
	p.failedSweeps = 0
	e.ctrs.MembershipJoins.Add(1)
	e.record(p.id, 0, obs.KindJoin, -1, 1, 0)
	// Wake one worker so the joiner starts probing for surplus instead of
	// waiting for the next spawn to notice it.
	e.wakeFor(p, true)
}

// drainPlace starts a graceful departure: every queued-but-unstarted task
// is offloaded to survivors (counted as TasksOffloaded — the work never
// ran, so nothing is re-executed), in-flight tasks finish and report
// normally, and the place flips to dead once the last one completes.
func (e *engine) drainPlace(p *simPlace) {
	if p.dead || p.draining {
		return
	}
	p.draining = true
	p.active = false
	e.ctrs.MembershipDrains.Add(1)

	var moved []int
	for {
		id, ok := p.shared.Poll()
		if !ok {
			break
		}
		moved = append(moved, id)
	}
	for _, w := range p.workers {
		for {
			id, ok := w.priv.Pop()
			if !ok {
				break
			}
			moved = append(moved, id)
		}
	}
	p.queued -= len(moved)

	e.record(p.id, 0, obs.KindDrain, -1, int32(len(moved)), 0)
	for i, id := range moved {
		e.ctrs.TasksOffloaded.Add(1)
		delay := e.cl.Net.TransferNS(e.g.Tasks[id].MigBytes)
		e.push(event{at: e.now + delay, kind: evSpawn, taskID: id,
			home: e.aliveHome(p.id + 1 + i), from: -1, fromW: -1, requeue: true})
	}
	if p.running == 0 {
		p.dead = true
	}
}

// healPlace recovers a flapped place: the outage re-homed its work (that
// was a crash, with re-execution), but the link is re-established rather
// than evicted, so the place rejoins with empty deques and steals its way
// back into the computation.
func (e *engine) healPlace(p *simPlace) {
	if !p.dead {
		return
	}
	p.dead = false
	p.draining = false
	p.active = false
	p.failedSweeps = 0
	e.ctrs.MembershipRejoins.Add(1)
	e.record(p.id, 0, obs.KindHeal, -1, int32(p.id), 0)
	e.wakeFor(p, true)
}

// findWork performs one Algorithm-1 sweep for w at e.now. On failure the
// worker goes dormant until the next wake.
func (e *engine) findWork(w *simWorker) {
	p := w.place
	if p.dead || p.draining {
		return
	}
	over := e.cl.Over

	// 1. Own private deque.
	if id, ok := w.priv.Pop(); ok {
		p.queued--
		e.start(w, id, over.DispatchNS)
		return
	}
	// 2. Co-located workers' private deques.
	for off := 1; off < len(p.workers); off++ {
		peer := p.workers[(w.local+off)%len(p.workers)]
		if id, ok := peer.priv.Steal(); ok {
			p.queued--
			e.ctrs.LocalSteals.Add(1)
			e.record(p.id, w.local, obs.KindStealLocal, int32(id), int32(peer.local), 0)
			e.start(w, id, over.LocalStealNS)
			return
		}
	}
	// 3. The local shared deque. Retrieving a flexible task from the own
	// place's designated deque is a normal dequeue, not a steal.
	if id, ok := p.shared.Poll(); ok {
		p.queued--
		e.start(w, id, e.sharedDequeDelay(p, false)+over.DispatchNS)
		return
	}
	// 4. Distributed steal.
	if sched.RemoteStealing(e.policy) && len(e.places) > 1 {
		if e.stealRemote(w) {
			return
		}
	}
	// Nothing found: note the failed sweep and go dormant.
	e.ctrs.FailedSteals.Add(1)
	e.record(p.id, w.local, obs.KindStealFail, -1, 0, 0)
	p.failedSweeps++
	if p.failedSweeps >= sched.FailedStealQuiesceThreshold(e.cl.WorkersPerPlace) {
		p.active = false
	}
	if e.policy == sched.LifelineWS {
		e.registerLifelines(p)
	}
}

// stealRemote probes remote shared deques in randomized order, taking a
// chunk from the first victim with surplus. Probe round trips and payload
// transfer delay the stolen task's start. Victims marked down are
// excluded; a probe whose request or reply is lost to an injected link
// fault costs the thief one steal timeout, after which it retries the
// victim under exponential backoff before moving on.
func (e *engine) stealRemote(w *simWorker) bool {
	chunkSize := sched.RemoteChunk(e.policy)
	if e.ctrl != nil {
		chunkSize = e.ctrl.Chunk(w.place.id)
	}
	if e.opts.ChunkOverride > 0 {
		chunkSize = e.opts.ChunkOverride
	}
	var delay int64
	probeRTT := e.cl.Net.RoundTripNS(32, 32)
	receiver := e.opts.LockContention && e.opts.Deque == deque.KindRelaxed
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(e.opts.Seed + int64(w.place.id*1000+w.local)))
	}
	if e.ctrl != nil {
		// Same randomized sweep, then stably reordered by observed steal
		// latency (low first). The shuffle consumes the identical rng
		// stream either way, preserving determinism.
		w.victims = e.ctrl.AppendVictimOrder(w.victims[:0], w.place.id, w.rng)
	} else {
		w.victims = sched.AppendVictimOrder(w.victims[:0], e.policy, w.place.id, len(e.places), w.rng)
	}
	// Per-probe counters accumulate in locals and flush once per sweep: a
	// sweep probes up to places-1 victims and the two atomic adds per
	// probe were a measurable slice of the sweep in profiles.
	var probes, messages int64
	for _, v := range w.victims {
		victim := e.places[v]
		if victim.dead || victim.draining {
			continue
		}
		probeStart := delay
		ok := true
		for attempt := 0; ; attempt++ {
			probes++
			messages += 2
			e.record(w.place.id, w.local, obs.KindProbe, -1, int32(v), 0)
			if e.inj == nil {
				// Fault-free fast path — no partitions, drops, spikes,
				// gray links, or duplicated replies to consult. This is
				// the paper-faithful configuration, so it skips the
				// injector's per-direction no-op calls entirely.
				delay += probeRTT
				break
			}
			if e.inj.PartitionedAt(w.place.id, v, e.now+delay) ||
				e.inj.Drop(w.place.id, v) || e.inj.Drop(v, w.place.id) {
				// Request or reply lost — to a link fault or an active
				// partition: the thief burns a full timeout.
				e.ctrs.DroppedMessages.Add(1)
				e.ctrs.StealTimeouts.Add(1)
				e.record(w.place.id, w.local, obs.KindTimeout, -1, int32(v), e.stealTimeoutNS<<attempt)
				delay += e.stealTimeoutNS << attempt
				if attempt+1 >= e.opts.StealMaxAttempts {
					ok = false
					break
				}
				e.ctrs.Retries.Add(1)
				continue
			}
			// Gray links degrade silently: both directions of the probe pay
			// the injected extra latency on top of any spike.
			delay += probeRTT + e.inj.SpikeNS(w.place.id, v) +
				e.inj.GrayNS(w.place.id, v, e.now+delay) + e.inj.GrayNS(v, w.place.id, e.now+delay)
			if e.inj.Duplicate(v, w.place.id) {
				// The reply arrives twice; dedup absorbs the copy, but the
				// extra message is real traffic.
				messages++
				e.ctrs.DuplicatedMessages.Add(1)
			}
			break
		}
		if !ok {
			if e.ctrl != nil {
				e.observeSteal(w.place.id, v, delay-probeStart, 0, 0)
			}
			continue
		}
		if receiver {
			// Receiver-initiated protocol: the probe round trip already
			// modelled above is the request/donate exchange — the thief
			// posts into a victim worker's mailbox and the owner answers
			// with half its queue at its next task boundary.
			e.ctrs.StealRequests.Add(1)
			chunkSize = sched.StealHalf(victim.shared.Len())
		}
		var chunk []int
		if e.dag != nil && e.dag.pol == dag.PolicyDataAware && !receiver {
			// Data-aware steal: take the queued tasks whose inputs are
			// already resident at the thief (fewest fetch bytes first,
			// ties oldest-first) instead of blindly taking the oldest.
			chunk = victim.shared.StealBestAppend(e.stealBuf[:0], chunkSize, e.dagStealScore(w.place.id))
		} else {
			chunk = victim.shared.StealChunkAppend(e.stealBuf[:0], chunkSize)
		}
		e.stealBuf = chunk[:0]
		if receiver && len(chunk) > 0 {
			e.ctrs.Donations.Add(1)
			if w.rng.Intn(relaxedDupOneIn) == 0 {
				// Multiplicity: the donation's last task was concurrently
				// retaken at the victim — the thief's copy is a duplicate.
				// Dedup discards it on arrival (it is never executed
				// twice), but its transfer was paid for; the real task
				// stays with the victim.
				dup := chunk[len(chunk)-1]
				chunk = chunk[:len(chunk)-1]
				victim.shared.Push(dup)
				e.ctrs.DuplicateTakes.Add(1)
				bytes := e.g.Tasks[dup].MigBytes
				e.ctrs.BytesTransferred.Add(int64(bytes))
				delay += e.cl.Net.TransferNS(bytes)
			}
		}
		if len(chunk) == 0 {
			if e.ctrl != nil {
				e.observeSteal(w.place.id, v, delay-probeStart, 0, 0)
			}
			continue
		}
		// Holding the victim's shared-deque lock (or CAS window) for the
		// removal; the width already priced into the probe RTT is excluded.
		delay += e.stealDequeExtraNS(victim)
		victim.queued -= len(chunk)
		e.ctrs.RemoteSteals.Add(int64(len(chunk)))
		var bytes int
		for _, id := range chunk {
			bytes += e.g.Tasks[id].MigBytes
		}
		delay += e.cl.Net.TransferNS(bytes)
		e.ctrs.BytesTransferred.Add(int64(bytes))
		if e.ctrl != nil {
			e.observeSteal(w.place.id, v, delay-probeStart, len(chunk), victim.shared.Len())
			e.flushStealObs()
		}
		e.record(w.place.id, w.local, obs.KindStealRemote, int32(chunk[0]), int32(v), delay)
		if len(chunk) > 1 {
			batch := append(e.getBatch(), chunk[1:]...)
			e.push(event{at: e.now + delay, kind: evArrive, place: w.place.id, batch: batch})
		}
		e.ctrs.RemoteProbes.Add(probes)
		e.ctrs.Messages.Add(messages)
		e.start(w, chunk[0], delay)
		return true
	}
	e.ctrs.RemoteProbes.Add(probes)
	e.ctrs.Messages.Add(messages)
	if e.ctrl != nil {
		e.flushStealObs()
	}
	return false
}

// observeSteal feeds one probe outcome to the adapt controller. An
// unsynchronized controller takes it directly — no mutex to amortize, so
// buffering would only add struct copies. A synchronized (shared)
// controller gets the sweep's outcomes accumulated into obsBuf for a
// single locked hand-off in flushStealObs; observation order, and thus
// every controller decision, is identical either way — no controller
// state is read between a sweep's first probe and its flush.
func (e *engine) observeSteal(thief, victim int, latencyNS int64, got, victimLeft int) {
	if e.obsDirect {
		e.ctrl.ObserveSteal(thief, victim, latencyNS, got, victimLeft)
		return
	}
	e.obsBuf = append(e.obsBuf, adapt.StealObservation{
		Thief: thief, Victim: victim, LatencyNS: latencyNS,
		Got: got, VictimLeft: victimLeft})
}

// flushStealObs hands the sweep's accumulated probe outcomes to the
// controller in one locked batch (a no-op for an unsynchronized
// controller, whose observations were fed directly).
func (e *engine) flushStealObs() {
	if len(e.obsBuf) == 0 {
		return
	}
	e.ctrl.ObserveStealBatch(e.obsBuf)
	e.obsBuf = e.obsBuf[:0]
}

// sharedDequeDelay returns the cost of one shared-deque operation at p:
// the base lock cost plus, under LockContention, the wait for the lock
// to free (operations serialize through it). steal distinguishes a
// remote thief's removal from an owner-side dequeue — the lock-free
// kinds price the two differently (the mutex kind does not care).
func (e *engine) sharedDequeDelay(p *simPlace, steal bool) int64 {
	base := e.cl.Over.SharedDequeNS
	if !e.opts.LockContention {
		return base
	}
	switch e.opts.Deque {
	case deque.KindChaseLev:
		// Owner-side take: a fence, no lock, no waiting. Steals contend
		// only on the CAS advancing top — a critical section a quarter
		// the mutex's width.
		if !steal {
			return base / 4
		}
		return e.serializeDeque(p, base/4)
	case deque.KindRelaxed:
		// Fence-free loads and stores only: no CAS, no serialization,
		// for owners and thieves alike. The price is paid elsewhere —
		// in occasional duplicate takes (multiplicity).
		return base / 8
	default:
		return e.serializeDeque(p, base)
	}
}

// serializeDeque charges one critical section of width cost at p's
// shared deque: the operation waits for the lock (or CAS window) to
// free, then holds it for cost.
func (e *engine) serializeDeque(p *simPlace, cost int64) int64 {
	start := e.now
	if p.lockFreeAt > start {
		start = p.lockFreeAt
	}
	p.lockFreeAt = start + cost
	return (start - e.now) + cost
}

// stealDequeExtraNS returns what a remote removal costs beyond the base
// operation width already priced into the probe round trip: the wait for
// the victim's lock (mutex) or CAS window (Chase–Lev) to free. The
// relaxed kind never serializes, so its extra is zero.
func (e *engine) stealDequeExtraNS(victim *simPlace) int64 {
	if !e.opts.LockContention {
		return 0
	}
	switch e.opts.Deque {
	case deque.KindChaseLev:
		return e.serializeDeque(victim, e.cl.Over.SharedDequeNS/4) - e.cl.Over.SharedDequeNS/4
	case deque.KindRelaxed:
		return 0
	default:
		return e.serializeDeque(victim, e.cl.Over.SharedDequeNS) - e.cl.Over.SharedDequeNS
	}
}

// relaxedDupOneIn is the modelled odds of a multiplicity duplicate per
// donation under the relaxed deques: one donated chunk in 64 hands its
// last task out twice. The draw comes from the thief's deterministic rng
// stream, so runs stay reproducible.
const relaxedDupOneIn = 64

// registerLifelines marks p on its hypercube neighbours (LifelineWS).
// A neighbour that has crashed is re-homed: the registration goes to the
// next surviving place instead, so the lifeline graph stays connected.
func (e *engine) registerLifelines(p *simPlace) {
	for _, q := range sched.Lifelines(p.id, len(e.places)) {
		if e.places[q].dead || e.places[q].draining {
			q = e.aliveHome(q + 1)
			if q == p.id {
				continue
			}
		}
		neighbour := e.places[q]
		if !neighbour.lifelines[p.id] {
			neighbour.lifelines[p.id] = true
			e.ctrs.Messages.Add(1)
		}
		e.serveLifelines(neighbour)
	}
}

// serveLifelines pushes surplus work from p to registered waiters.
func (e *engine) serveLifelines(p *simPlace) {
	for q := range p.lifelines {
		if p.shared.Len() <= 1 {
			return
		}
		if !p.lifelines[q] {
			continue
		}
		if e.places[q].dead || e.places[q].draining {
			// A waiter that crashed or is departing: drop the edge.
			p.lifelines[q] = false
			continue
		}
		p.lifelines[q] = false
		if id, ok := p.shared.Poll(); ok {
			p.queued--
			t := &e.g.Tasks[id]
			e.ctrs.Messages.Add(1)
			e.ctrs.BytesTransferred.Add(int64(t.MigBytes))
			e.ctrs.RemoteSteals.Add(1)
			arrive := e.now + e.cl.Net.TransferNS(t.MigBytes)
			e.push(event{at: arrive, kind: evArrive, place: q, batch: append(e.getBatch(), id)})
		}
	}
}

// start begins executing task id on w after startDelay of acquisition
// latency, charging migration, cache, and communication costs.
func (e *engine) start(w *simWorker, id int, startDelay int64) {
	t := &e.g.Tasks[id]
	p := w.place
	w.busy = true
	w.curTask = id
	p.running++
	p.active = true
	p.failedSweeps = 0
	e.record(p.id, w.local, obs.KindTaskStart, int32(id), int32(e.resolvedHome[id]), 0)

	service := startDelay
	if e.policy == sched.DistWS || e.policy == sched.DistWSNS || e.policy == sched.Adaptive {
		// Bookkeeping for the dual-deque scheme and load exploration
		// (the single-node overhead the paper reports).
		service += e.cl.Over.MapDecisionNS
	}
	if e.dag != nil {
		// Dataflow mode: non-resident input blocks are fetched before the
		// task runs, at the network's modelled transfer cost.
		service += e.dagFetch(id, w)
	}

	// A task is migrated when it executes away from its home place as
	// resolved at spawn time (the victim's place for stolen tasks; the
	// parent's executing place for HomeInherit children).
	migrated := p.id != e.resolvedHome[id]
	// penalty accumulates the data-locality share of the service time —
	// remote-reference round trips and cache-miss stalls — which feeds
	// the adapt classifier's penalty-fraction criterion.
	var penalty int64
	if migrated {
		e.ctrs.TasksMigrated.Add(1)
		if t.MigMsgs > 0 {
			// Each remote reference is a round trip for cache-line-sized
			// payload; this is the dominant cost non-selective stealing
			// pays on locality-sensitive tasks.
			e.ctrs.Messages.Add(int64(t.MigMsgs))
			e.ctrs.RemoteDataAccess.Add(int64(t.MigMsgs))
			e.ctrs.BytesTransferred.Add(int64(t.MigMsgs * e.opts.RemoteRefBytes))
			refNS := int64(t.MigMsgs) * e.cl.Net.RoundTripNS(32, e.opts.RemoteRefBytes)
			service += refNS
			penalty += refNS
		}
	}
	if t.BaseMsgs > 0 {
		e.ctrs.Messages.Add(int64(t.BaseMsgs))
		e.ctrs.BytesTransferred.Add(int64(t.BaseBytes))
	}
	if len(t.Blocks) > 0 {
		reps := t.BlockReps
		if reps < 1 {
			reps = 1
		}
		switch {
		case migrated && !t.Flexible:
			// A migrated locality-sensitive task keeps referencing its
			// home place's data: every pass misses (the data is remote
			// and not locally cacheable) — the cache pollution and remote
			// reference burst the paper attributes to non-selective
			// stealing (§VIII-Q3).
			n := int64(len(t.Blocks)) * int64(reps)
			e.ctrs.CacheRefs.Add(n)
			e.ctrs.CacheMisses.Add(n)
			service += n * e.opts.MissPenaltyNS
			penalty += n * e.opts.MissPenaltyNS
		default:
			blocks := t.Blocks
			if migrated {
				// A migrated flexible task carries its data: it pays one
				// cold pass at the thief (aliased blocks), then hits.
				blocks = appendAliasBlocks(e.aliasBuf[:0], t.Blocks, uint64(p.id))
				e.aliasBuf = blocks[:0]
			}
			for rep := 0; rep < reps; rep++ {
				hits, misses := p.cache.TouchAll(blocks)
				e.ctrs.CacheRefs.Add(int64(hits + misses))
				e.ctrs.CacheMisses.Add(int64(misses))
				service += int64(misses) * e.opts.MissPenaltyNS
				penalty += int64(misses) * e.opts.MissPenaltyNS
			}
		}
	}

	service += t.CostNS
	if e.ctrl != nil {
		// Feed the controller the task's service time net of acquisition
		// latency (isolating the execution-side cost) plus the measured
		// data-locality penalty the classifier attributes to migration.
		if flipped, cls := e.ctrl.ObserveExec(e.taskKind[id], migrated, service-startDelay, penalty); flipped {
			e.ctrs.Reclassifications.Add(1)
			e.record(p.id, w.local, obs.KindReclassify, int32(id), int32(cls), 0)
		}
	}
	doneAt := e.now + service
	w.busyNS += service
	e.push(event{at: doneAt, kind: evDone, worker: w.id, taskID: id})

	// Children become available during the parent's execution. A task
	// re-executed after a crash has already scheduled its children; the
	// subtree must not be spawned twice.
	if e.childSpawned[id] {
		return
	}
	e.childSpawned[id] = true
	for i, c := range t.Children {
		frac := childFrac(t, i)
		at := e.now + startDelay + int64(frac*float64(t.CostNS))
		if at > doneAt {
			at = doneAt
		}
		child := &e.g.Tasks[c]
		home := child.Home
		if child.HomeMode == trace.HomeInherit {
			home = p.id
		}
		if home < 0 || home >= len(e.places) {
			home = 0
		}
		e.push(event{at: at, kind: evSpawn, taskID: c, home: home, from: p.id, fromW: w.id})
	}
}

// childFrac returns when child i spawns as a fraction of the parent's
// execution: the recorded fraction, or an even spread.
func childFrac(t *trace.Task, i int) float64 {
	if len(t.SpawnFrac) == len(t.Children) && len(t.SpawnFrac) > 0 {
		return t.SpawnFrac[i]
	}
	n := len(t.Children)
	return float64(i+1) / float64(n+1)
}

// appendAliasBlocks maps block IDs into a place-specific namespace,
// modelling that a migrated task's data is cold in the thief's cache. The
// aliased IDs are appended to dst so callers can reuse scratch storage.
func appendAliasBlocks(dst []uint64, blocks []uint64, place uint64) []uint64 {
	const placeShift = 56
	for _, b := range blocks {
		dst = append(dst, b|(place+1)<<placeShift)
	}
	return dst
}
