package sim

import (
	"fmt"

	"distws/internal/dag"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/topology"
	"distws/internal/trace"
)

// dagState is the engine's dataflow mode: the graph's derived schedule,
// the per-run readiness tracker, and the block directory the data-aware
// policy scores against. All of it is owned by the single-goroutine
// event loop.
type dagState struct {
	g       *dag.Graph
	pol     dag.Policy
	sched   *dag.Schedule
	tracker *dag.Tracker
	dir     *dag.Directory
	// plan mirrors dir plus optimistic marks: when a released task is
	// assigned a home, its not-yet-resident inputs are recorded there
	// immediately, so siblings released in the same frontier co-locate
	// with the in-flight fetch instead of each pulling a private copy.
	// Placement scores against plan; the fetch accounting stays on dir.
	plan *dag.Directory
	// avgCostNS is the mean task cost, the unit converting a place's
	// queue depth into an expected-wait estimate for placement scoring.
	avgCostNS int64
	// transfer is the network's payload cost model, bound once so the
	// placement loop does not rebuild a closure per release.
	transfer func(bytes int) int64
	// relBuf and backlog are reusable scratch (released ids, per-place
	// backlog estimates); score caches one steal-scoring closure per
	// thief place.
	relBuf  []int
	backlog []int64
	score   []func(int) int64
}

// RunDAG simulates dataflow graph g on cluster cl: tasks are released
// into the policy's scheduler as their dependencies complete, and the
// block directory charges each task the transfer cost of its
// non-resident inputs. pol selects locality-blind (owner-computes
// homes, oldest-first steals) or data-aware placement and stealing.
// Like Run, the same (graph, cluster, policy, options) always produces
// the same result.
func RunDAG(g *dag.Graph, cl topology.Cluster, policy sched.Kind, pol dag.Policy, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if !sched.Valid(policy) {
		return nil, fmt.Errorf("sim: invalid policy %v", policy)
	}
	if !opts.Deque.Valid() {
		return nil, fmt.Errorf("sim: invalid deque kind %v", opts.Deque)
	}
	if !pol.Valid() {
		return nil, fmt.Errorf("sim: invalid dag policy %v", pol)
	}
	opts = opts.withDefaults()
	if err := opts.Fault.Validate(cl.Places); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	sch := dag.NewSchedule(g)
	ds := &dagState{
		g:        g,
		pol:      pol,
		sched:    sch,
		tracker:  dag.NewTracker(sch),
		dir:      dag.NewDirectory(cl.Places),
		plan:     dag.NewDirectory(cl.Places),
		transfer: cl.Net.TransferNS,
		backlog:  make([]int64, cl.Places),
	}
	ds.dir.SeedFrom(g)
	ds.plan.SeedFrom(g)
	if n := g.NumTasks(); n > 0 {
		ds.avgCostNS = g.TotalWorkNS() / int64(n)
	}
	if ds.avgCostNS < 1 {
		ds.avgCostNS = 1
	}
	return runEngine(dagTrace(g, cl.Places), cl, policy, opts, ds)
}

// dagTrace projects a dataflow graph onto the trace representation the
// engine executes. Every task is locality-flexible (eligible for shared
// deques and remote steals) and childless — release order comes from the
// Tracker, not parent spawns — and carries no migration payload: all
// data movement is the directory's fetch accounting. Roots stay empty
// for the same reason.
func dagTrace(g *dag.Graph, places int) *trace.Graph {
	tg := &trace.Graph{
		Name:  g.Name,
		Tasks: make([]trace.Task, len(g.Tasks)),
		SeqNS: g.Sequential(),
	}
	for i := range g.Tasks {
		home := g.Tasks[i].Home % places
		if home < 0 {
			home += places
		}
		tg.Tasks[i] = trace.Task{
			ID:       i,
			Flexible: true,
			Home:     home,
			CostNS:   g.Tasks[i].CostNS,
		}
	}
	return tg
}

// dagRelease homes and spawns newly released tasks. from/fromW are the
// completing place and worker (-1 for the initial ready set); a task
// homed at the completing worker's own place lands help-first in its
// private deque, exactly like a fork-join child spawn.
func (e *engine) dagRelease(ids []int, from, fromW int) {
	for _, r := range ids {
		home := e.dagHome(r)
		e.ctrs.DAGTasksReleased.Add(1)
		e.record(home, 0, obs.KindDAGRelease, int32(r), int32(home), 0)
		e.push(event{at: e.now, kind: evSpawn, taskID: r, home: home, from: from, fromW: fromW})
	}
}

// dagComplete is the handleDone hook: the finished task's outputs become
// resident (exclusively — prior copies are stale) at the executing
// place, and every dependent this completion releases is spawned.
func (e *engine) dagComplete(id int, w *simWorker) {
	ds := e.dag
	for _, b := range ds.g.Tasks[id].Outputs {
		ds.dir.Produce(b, w.place.id)
		ds.plan.Produce(b, w.place.id)
	}
	ds.relBuf = ds.tracker.Complete(id, ds.relBuf[:0])
	e.dagRelease(ds.relBuf, w.place.id, w.id)
}

// dagHome picks the released task's home place: the declared
// owner-computes home under PolicyBlind, or the directory-scored best
// place under PolicyDataAware — modelled fetch time for the inputs not
// resident there, plus the expected queueing delay behind the place's
// running and queued tasks.
func (e *engine) dagHome(t int) int {
	ds := e.dag
	if ds.pol == dag.PolicyBlind {
		return e.g.Tasks[t].Home
	}
	wpp := int64(e.cl.WorkersPerPlace)
	for p, pl := range e.places {
		if pl.dead || pl.draining {
			// Never placeable; handleSpawn re-homes if everything scores
			// this badly.
			ds.backlog[p] = 1 << 62
			continue
		}
		ds.backlog[p] = int64(pl.running+pl.queued) * ds.avgCostNS / wpp
	}
	best := dag.BestPlace(ds.g, ds.plan, t, ds.backlog, ds.transfer)
	for _, b := range ds.g.Tasks[t].Inputs {
		if !ds.plan.Resident(b, best) && ds.plan.Anywhere(b) {
			ds.plan.Replicate(b, best)
		}
	}
	return best
}

// dagFetch is the start() hook: input blocks not resident at the
// executing place are fetched — one message and a payload transfer each,
// and the place keeps the replica — before the task's cost is charged.
// Blocks resident nowhere (never seeded, never produced) are treated as
// materialized in place, for free.
func (e *engine) dagFetch(id int, w *simWorker) int64 {
	ds := e.dag
	p := w.place
	var fetchNS int64
	var hits, misses int32
	var bytes int64
	for _, b := range ds.g.Tasks[id].Inputs {
		if ds.dir.Resident(b, p.id) || !ds.dir.Anywhere(b) {
			hits++
			continue
		}
		sz := ds.g.BlockBytes[b]
		misses++
		bytes += int64(sz)
		fetchNS += e.cl.Net.TransferNS(sz)
		ds.dir.Replicate(b, p.id)
		ds.plan.Replicate(b, p.id)
	}
	if hits > 0 {
		e.ctrs.DAGResidentHits.Add(int64(hits))
		e.record(p.id, w.local, obs.KindDAGResidentHit, int32(id), hits, 0)
	}
	if misses > 0 {
		e.ctrs.DAGResidentMisses.Add(int64(misses))
		e.ctrs.DAGFetchedBytes.Add(bytes)
		e.ctrs.Messages.Add(int64(misses))
		e.ctrs.BytesTransferred.Add(bytes)
		e.record(p.id, w.local, obs.KindDAGResidentMiss, int32(id), misses, fetchNS)
	}
	return fetchNS
}

// dagStealScore returns the thief place's steal-scoring closure for
// Shared.StealBestAppend: fewest fetch bytes first (scores are negated
// byte counts, and the deque breaks ties oldest-first). Closures are
// cached per place so the steady-state steal path does not allocate.
func (e *engine) dagStealScore(place int) func(int) int64 {
	ds := e.dag
	if ds.score == nil {
		ds.score = make([]func(int) int64, len(e.places))
	}
	if ds.score[place] == nil {
		g, dir := ds.g, ds.dir
		ds.score[place] = func(id int) int64 {
			return -int64(dir.MoveBytes(g, id, place))
		}
	}
	return ds.score[place]
}
