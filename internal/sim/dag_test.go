package sim

import (
	"errors"
	"testing"

	"distws/internal/dag"
	"distws/internal/deque"
	"distws/internal/fault"
	"distws/internal/sched"
	"distws/internal/topology"
)

// pipelineGraph builds items independent chains of stages tasks each:
// task (i,s) reads the item's previous stage block and writes the next.
// Blind homes follow the stage owner (s mod places) — the worst case for
// data movement, since every item changes place at every stage.
func pipelineGraph(items, stages, places, blockBytes int, costNS int64) *dag.Graph {
	g := &dag.Graph{
		Name:       "testpipe",
		BlockBytes: make(map[uint64]int),
		Seed:       make(map[uint64]int),
	}
	blk := func(i, s int) uint64 { return uint64(i)<<16 | uint64(s) }
	for i := 0; i < items; i++ {
		for s := 0; s <= stages; s++ {
			g.BlockBytes[blk(i, s)] = blockBytes
		}
		g.Seed[blk(i, 0)] = 0 // all inputs start at place 0
	}
	for s := 0; s < stages; s++ {
		for i := 0; i < items; i++ {
			g.Tasks = append(g.Tasks, dag.Task{
				ID:      len(g.Tasks),
				CostNS:  costNS,
				Home:    s % places,
				Inputs:  []uint64{blk(i, s)},
				Outputs: []uint64{blk(i, s+1)},
			})
		}
	}
	return g
}

func TestRunDAGCompletes(t *testing.T) {
	cl := topology.Laptop()
	g := pipelineGraph(8, 4, cl.Places, 1<<14, 50_000)
	res, err := RunDAG(g, cl, sched.DistWS, dag.PolicyBlind, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumTasks())
	c := res.Counters
	if c.TasksExecuted != n || c.TasksSpawned != n || c.DAGTasksReleased != n {
		t.Fatalf("executed=%d spawned=%d released=%d, want all %d",
			c.TasksExecuted, c.TasksSpawned, c.DAGTasksReleased, n)
	}
	if res.MakespanNS <= 0 || res.SequentialNS != g.Sequential() {
		t.Fatalf("makespan=%d sequential=%d", res.MakespanNS, res.SequentialNS)
	}
	if c.DAGResidentHits+c.DAGResidentMisses == 0 {
		t.Fatal("no residency lookups recorded")
	}
}

func TestRunDAGDeterministic(t *testing.T) {
	cl := topology.Laptop()
	for _, pol := range []dag.Policy{dag.PolicyBlind, dag.PolicyDataAware} {
		g := pipelineGraph(8, 4, cl.Places, 1<<14, 50_000)
		a, err := RunDAG(g, cl, sched.DistWS, pol, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunDAG(g, cl, sched.DistWS, pol, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if a.MakespanNS != b.MakespanNS || a.Counters != b.Counters {
			t.Fatalf("%v: runs diverged: %v vs %v", pol, a, b)
		}
	}
}

func TestRunDAGDataAwareMovesFewerBytes(t *testing.T) {
	cl := topology.Laptop()
	g := pipelineGraph(16, 6, cl.Places, 1<<16, 20_000)
	blind, err := RunDAG(g, cl, sched.DistWS, dag.PolicyBlind, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := RunDAG(g, cl, sched.DistWS, dag.PolicyDataAware, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Counters.DAGFetchedBytes >= blind.Counters.DAGFetchedBytes {
		t.Fatalf("data-aware fetched %d bytes, blind %d — expected a reduction",
			aware.Counters.DAGFetchedBytes, blind.Counters.DAGFetchedBytes)
	}
	if aware.MakespanNS > blind.MakespanNS {
		t.Fatalf("data-aware makespan %d > blind %d on a fetch-bound pipeline",
			aware.MakespanNS, blind.MakespanNS)
	}
}

func TestRunDAGRejectsCycle(t *testing.T) {
	cl := topology.Laptop()
	g := pipelineGraph(2, 2, cl.Places, 1024, 1000)
	// Task 2 already depends on task 0 through the item's stage-1 block;
	// an explicit 0-depends-on-2 edge closes the loop.
	g.Tasks[0].Deps = []int{2}
	_, err := RunDAG(g, cl, sched.DistWS, dag.PolicyBlind, Options{Seed: 1})
	var ce *dag.CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("RunDAG = %v, want *dag.CycleError", err)
	}
}

func TestRunDAGRejectsInvalidPolicy(t *testing.T) {
	cl := topology.Laptop()
	g := pipelineGraph(2, 2, cl.Places, 1024, 1000)
	if _, err := RunDAG(g, cl, sched.DistWS, dag.Policy(9), Options{Seed: 1}); err == nil {
		t.Fatal("RunDAG accepted an invalid dag policy")
	}
}

// TestRunDAGSurvivesCrash pins that dependency release happens before
// the crash bookkeeping: a place dying mid-run re-homes its work and the
// dataflow still drains completely.
func TestRunDAGSurvivesCrash(t *testing.T) {
	cl := topology.Laptop()
	g := pipelineGraph(8, 4, cl.Places, 1<<14, 50_000)
	plan := &fault.Plan{Crashes: []fault.Crash{{Place: 1, AfterTasks: 3}}}
	res, err := RunDAG(g, cl, sched.DistWS, dag.PolicyDataAware, Options{Seed: 1, Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TasksExecuted != int64(g.NumTasks()) {
		t.Fatalf("executed %d of %d after crash", res.Counters.TasksExecuted, g.NumTasks())
	}
	if res.Counters.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d", res.Counters.PlacesLost)
	}
}

// TestRunDAGDequeKindParity pins that without LockContention the deque
// kind does not change a DAG run at all — the dag-parity gate's core
// invariant.
func TestRunDAGDequeKindParity(t *testing.T) {
	cl := topology.Laptop()
	var base *Result
	for _, k := range []deque.Kind{deque.KindMutex, deque.KindChaseLev, deque.KindRelaxed} {
		g := pipelineGraph(8, 4, cl.Places, 1<<14, 50_000)
		res, err := RunDAG(g, cl, sched.DistWS, dag.PolicyDataAware,
			Options{Seed: 1, Deque: k})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.MakespanNS != base.MakespanNS || res.Counters != base.Counters {
			t.Fatalf("deque kind %d diverged: %v vs %v", k, res, base)
		}
	}
}
