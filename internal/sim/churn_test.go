package sim

import (
	"testing"

	"distws/internal/fault"
	"distws/internal/sched"
)

// TestJoinLateArrivalsShareWork verifies a late joiner picks up work: the
// place is absent (no homing, no victim sweeps) until its join instant,
// then steals its way into the computation.
func TestJoinLateArrivalsShareWork(t *testing.T) {
	g := flatGraph(t, 200, 1_000_000, 0, 1, true)
	plan := &fault.Plan{Joins: []fault.Join{{Place: 3, AtNS: 2_000_000}}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 200 {
		t.Fatalf("executed %d of 200 with a late joiner", r.Counters.TasksExecuted)
	}
	if r.Counters.MembershipJoins != 1 {
		t.Fatalf("MembershipJoins = %d, want 1", r.Counters.MembershipJoins)
	}
	if r.PlaceBusyNS[3] == 0 {
		t.Fatalf("joiner never executed anything: %v", r.PlaceBusyNS)
	}
	if r.Counters.TasksReExecuted != 0 {
		t.Fatalf("a join must not re-execute tasks, got %d", r.Counters.TasksReExecuted)
	}
}

// TestGracefulDrainNoReExecution is the drain half of the exactly-once
// contract: offloading a departing place's queue moves tasks that never
// started, so nothing is re-executed and nothing is lost.
func TestGracefulDrainNoReExecution(t *testing.T) {
	g := flatGraph(t, 240, 1_000_000, -1, 4, true)
	plan := &fault.Plan{Drains: []fault.Drain{
		{Place: 1, AtNS: 1_500_000},
		{Place: 2, AtNS: 3_000_000},
	}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 240 {
		t.Fatalf("executed %d of 240 under two drains", r.Counters.TasksExecuted)
	}
	if r.Counters.MembershipDrains != 2 {
		t.Fatalf("MembershipDrains = %d, want 2", r.Counters.MembershipDrains)
	}
	if r.Counters.TasksOffloaded == 0 {
		t.Fatalf("draining loaded places should offload queued tasks")
	}
	if r.Counters.TasksReExecuted != 0 {
		t.Fatalf("graceful drain re-executed %d tasks, want 0", r.Counters.TasksReExecuted)
	}
	if r.Counters.PlacesLost != 0 {
		t.Fatalf("graceful drain counted as place loss: %d", r.Counters.PlacesLost)
	}
}

// TestFlapRecoversAndRejoins drives one place through two down/up cycles:
// each outage is a crash (work re-homed, re-executed), each recovery a
// rejoin that resumes stealing rather than staying evicted.
func TestFlapRecoversAndRejoins(t *testing.T) {
	g := flatGraph(t, 300, 1_000_000, -1, 4, true)
	plan := &fault.Plan{Flaps: []fault.Flap{
		{Place: 2, AtNS: 1_000_000, DownNS: 2_000_000, UpNS: 3_000_000, Cycles: 2},
	}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 300 {
		t.Fatalf("executed %d of 300 under flapping", r.Counters.TasksExecuted)
	}
	if r.Counters.PlacesLost != 2 {
		t.Fatalf("PlacesLost = %d, want 2 (one per down cycle)", r.Counters.PlacesLost)
	}
	if r.Counters.MembershipRejoins != 2 {
		t.Fatalf("MembershipRejoins = %d, want 2", r.Counters.MembershipRejoins)
	}
}

// TestPartitionHealsAndSlowsSteals cuts the cluster in two for a window:
// cross-cut probes burn timeouts while the cut is up, and the run still
// completes exactly once after the heal.
func TestPartitionHealsAndSlowsSteals(t *testing.T) {
	g := flatGraph(t, 200, 1_000_000, 0, 1, true)
	plan := &fault.Plan{Partitions: []fault.Partition{
		{GroupA: []int{0, 1}, AtNS: 1, HealNS: 30_000_000},
	}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 200 {
		t.Fatalf("executed %d of 200 across a partition", r.Counters.TasksExecuted)
	}
	if r.Counters.StealTimeouts == 0 || r.Counters.DroppedMessages == 0 {
		t.Fatalf("cross-cut probes should burn timeouts: %+v", r.Counters)
	}
	if r.Counters.TasksReExecuted != 0 {
		t.Fatalf("a partition (no crash) must not re-execute tasks, got %d",
			r.Counters.TasksReExecuted)
	}
}

// TestGrayAndDuplicationOverheads checks the remaining fault vocabulary:
// gray links slow the steal path without losing anything, duplicated
// replies are counted and absorbed.
func TestGrayAndDuplicationOverheads(t *testing.T) {
	g := flatGraph(t, 200, 500_000, 0, 1, true)
	clean, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7})
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	plan := &fault.Plan{
		Seed:    3,
		Grays:   []fault.Gray{{From: -1, To: -1, ExtraNS: 400_000}},
		DupProb: 0.5,
	}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("gray Run: %v", err)
	}
	if r.Counters.TasksExecuted != 200 {
		t.Fatalf("executed %d of 200 under gray links", r.Counters.TasksExecuted)
	}
	if r.MakespanNS <= clean.MakespanNS {
		t.Fatalf("gray makespan %d not slower than clean %d", r.MakespanNS, clean.MakespanNS)
	}
	if r.Counters.DuplicatedMessages == 0 {
		t.Fatalf("50%% duplication produced no duplicates")
	}
	// Every duplicated reply is also counted as a real message on the wire.
	if r.Counters.Messages < r.Counters.DuplicatedMessages {
		t.Fatalf("messages %d < duplicates %d", r.Counters.Messages, r.Counters.DuplicatedMessages)
	}
}

// TestChurnDeterminism reruns the full churn vocabulary — join, drain,
// flap, partition, gray, duplication — under one seed and demands
// identical makespans and counters.
func TestChurnDeterminism(t *testing.T) {
	g := deepGraph(t, 10, 5, 700_000, true)
	plan := &fault.Plan{
		Seed:     5,
		DropProb: 0.05,
		DupProb:  0.1,
		Joins:    []fault.Join{{Place: 3, AtNS: 1_000_000}},
		Drains:   []fault.Drain{{Place: 1, AtNS: 2_000_000}},
		Flaps:    []fault.Flap{{Place: 2, AtNS: 1_500_000, DownNS: 1_000_000, UpNS: 1_000_000, Cycles: 2}},
		Partitions: []fault.Partition{
			{GroupA: []int{0, 1}, AtNS: 500_000, HealNS: 4_000_000},
		},
		Grays: []fault.Gray{{From: 0, To: 2, ExtraNS: 100_000, AtNS: 1, UntilNS: 3_000_000}},
	}
	opts := Options{Seed: 7, Fault: plan}
	a, err := Run(g, cluster(4, 2), sched.DistWS, opts)
	if err != nil {
		t.Fatalf("Run a: %v", err)
	}
	b, err := Run(g, cluster(4, 2), sched.DistWS, opts)
	if err != nil {
		t.Fatalf("Run b: %v", err)
	}
	if a.MakespanNS != b.MakespanNS || a.Counters != b.Counters {
		t.Fatalf("churn run nondeterministic:\n%v\n%v", a, b)
	}
	if int(a.Counters.TasksExecuted) != g.NumTasks() {
		t.Fatalf("executed %d of %d under full churn", a.Counters.TasksExecuted, g.NumTasks())
	}
	if a.Counters.MembershipJoins != 1 || a.Counters.MembershipDrains != 1 ||
		a.Counters.MembershipRejoins != 2 {
		t.Fatalf("membership counters off: %+v", a.Counters)
	}
}
