package sim

import (
	"testing"

	"distws/internal/fault"
	"distws/internal/sched"
	"distws/internal/trace"
)

// deepGraph builds a chain-of-spawns workload: root tasks at place 0 that
// each spawn children mid-execution, giving crashes something to
// interrupt at every depth.
func deepGraph(t *testing.T, width, depth int, cost int64, flexible bool) *trace.Graph {
	t.Helper()
	b := trace.NewBuilder("deep")
	var grow func(parent int, d int)
	grow = func(parent int, d int) {
		if d == 0 {
			return
		}
		c := b.Child(parent, trace.Task{CostNS: cost, HomeMode: trace.HomeInherit, Flexible: flexible})
		grow(c, d-1)
	}
	for i := 0; i < width; i++ {
		r := b.Root(trace.Task{CostNS: cost, Home: 0, Flexible: flexible})
		grow(r, depth)
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

func TestCrashMidRunAllTasksStillExecute(t *testing.T) {
	g := flatGraph(t, 120, 1_000_000, -1, 4, true)
	plan := &fault.Plan{Seed: 9, Crashes: []fault.Crash{{Place: 1, AtVirtualNS: 2_000_000}}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 120 {
		t.Fatalf("executed %d of 120 under a crash", r.Counters.TasksExecuted)
	}
	if r.Counters.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", r.Counters.PlacesLost)
	}
	if r.Counters.TasksReExecuted == 0 {
		t.Fatalf("crash of a loaded place should re-execute tasks")
	}
	// The crashed place stops accumulating busy time after the crash.
	if r.PlaceBusyNS[1] >= r.PlaceBusyNS[0]+r.PlaceBusyNS[2]+r.PlaceBusyNS[3] {
		t.Fatalf("crashed place did most of the work: %v", r.PlaceBusyNS)
	}
}

func TestCrashAfterTasksTrigger(t *testing.T) {
	g := flatGraph(t, 80, 1_000_000, -1, 4, true)
	plan := &fault.Plan{Crashes: []fault.Crash{{Place: 2, AfterTasks: 3}}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 80 {
		t.Fatalf("executed %d of 80", r.Counters.TasksExecuted)
	}
	if r.Counters.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", r.Counters.PlacesLost)
	}
}

// A crash must not lose or duplicate work even when tasks spawn subtrees:
// re-executed parents must not re-spawn already-scheduled children.
func TestCrashWithSpawningTasks(t *testing.T) {
	g := deepGraph(t, 8, 6, 800_000, true)
	plan := &fault.Plan{Crashes: []fault.Crash{{Place: 0, AtVirtualNS: 1_500_000}}}
	r, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 3, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if int(r.Counters.TasksExecuted) != g.NumTasks() {
		t.Fatalf("executed %d of %d", r.Counters.TasksExecuted, g.NumTasks())
	}
	if r.Counters.TasksSpawned != int64(g.NumTasks()) {
		t.Fatalf("spawned %d of %d: re-execution must not double-spawn",
			r.Counters.TasksSpawned, g.NumTasks())
	}
}

func TestCrashUnderX10WS(t *testing.T) {
	// X10WS cannot steal across places, but runtime-level recovery still
	// re-homes a crashed place's queued tasks.
	g := flatGraph(t, 100, 1_000_000, -1, 4, false)
	plan := &fault.Plan{Crashes: []fault.Crash{{Place: 3, AtVirtualNS: 2_000_000}}}
	r, err := Run(g, cluster(4, 2), sched.X10WS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Counters.TasksExecuted != 100 {
		t.Fatalf("executed %d of 100", r.Counters.TasksExecuted)
	}
	if r.Counters.TasksReExecuted == 0 {
		t.Fatalf("queued tasks at the crashed place should be re-executed")
	}
}

func TestDroppedStealsCostTimeoutsAndRetries(t *testing.T) {
	g := flatGraph(t, 200, 500_000, 0, 1, true)
	clean, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7})
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	plan := &fault.Plan{Seed: 11, DropProb: 0.2}
	lossy, err := Run(g, cluster(4, 2), sched.DistWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("lossy Run: %v", err)
	}
	if lossy.Counters.TasksExecuted != 200 {
		t.Fatalf("executed %d of 200 under loss", lossy.Counters.TasksExecuted)
	}
	if lossy.Counters.DroppedMessages == 0 || lossy.Counters.StealTimeouts == 0 {
		t.Fatalf("20%% loss produced no drops/timeouts: %+v", lossy.Counters)
	}
	if lossy.Counters.Retries == 0 {
		t.Fatalf("timeouts should trigger backoff retries")
	}
	if lossy.MakespanNS <= clean.MakespanNS {
		t.Fatalf("lossy makespan %d not slower than clean %d",
			lossy.MakespanNS, clean.MakespanNS)
	}
	if clean.Counters.DroppedMessages != 0 || clean.Counters.StealTimeouts != 0 {
		t.Fatalf("fault-free run recorded faults: %+v", clean.Counters)
	}
}

func TestFaultDeterminism(t *testing.T) {
	g := deepGraph(t, 10, 5, 700_000, true)
	plan := &fault.Plan{
		Seed:      5,
		DropProb:  0.1,
		SpikeProb: 0.2,
		SpikeNS:   50_000,
		Crashes:   []fault.Crash{{Place: 1, AtVirtualNS: 1_200_000}},
	}
	opts := Options{Seed: 7, Fault: plan}
	a, err := Run(g, cluster(4, 2), sched.DistWS, opts)
	if err != nil {
		t.Fatalf("Run a: %v", err)
	}
	b, err := Run(g, cluster(4, 2), sched.DistWS, opts)
	if err != nil {
		t.Fatalf("Run b: %v", err)
	}
	if a.MakespanNS != b.MakespanNS || a.Counters != b.Counters {
		t.Fatalf("chaos run nondeterministic:\n%v\n%v", a, b)
	}
}

func TestLifelineRehomingAfterCrash(t *testing.T) {
	g := deepGraph(t, 12, 4, 900_000, true)
	plan := &fault.Plan{Crashes: []fault.Crash{{Place: 1, AtVirtualNS: 1_000_000}}}
	r, err := Run(g, cluster(4, 2), sched.LifelineWS, Options{Seed: 7, Fault: plan})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if int(r.Counters.TasksExecuted) != g.NumTasks() {
		t.Fatalf("executed %d of %d under LifelineWS crash", r.Counters.TasksExecuted, g.NumTasks())
	}
}

func TestPlanValidatedAgainstCluster(t *testing.T) {
	g := flatGraph(t, 10, 1_000_000, 0, 1, true)
	bad := &fault.Plan{Crashes: []fault.Crash{{Place: 99, AtVirtualNS: 1}}}
	if _, err := Run(g, cluster(4, 2), sched.DistWS, Options{Fault: bad}); err == nil {
		t.Fatalf("crash of place 99 on a 4-place cluster should fail validation")
	}
	allDown := &fault.Plan{Crashes: []fault.Crash{
		{Place: 0, AtVirtualNS: 1}, {Place: 1, AtVirtualNS: 1},
	}}
	if _, err := Run(g, cluster(2, 2), sched.DistWS, Options{Fault: allDown}); err == nil {
		t.Fatalf("crashing every place should fail validation")
	}
}
