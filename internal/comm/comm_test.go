package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"distws/internal/metrics"
)

func TestMeshRoundTrip(t *testing.T) {
	var ctrs metrics.Counters
	m := NewMesh(3, 16, &ctrs)
	a, b := m.Endpoint(0), m.Endpoint(1)

	if err := a.Send(Message{Kind: KindSpawn, To: 1, Payload: []byte("hi")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := <-b.Inbox()
	if got.Kind != KindSpawn || got.From != 0 || got.To != 1 || string(got.Payload) != "hi" {
		t.Fatalf("received %+v", got)
	}
	s := ctrs.Snapshot()
	if s.Messages != 1 || s.BytesTransferred != 2 {
		t.Fatalf("counters = %d msgs %d bytes, want 1/2", s.Messages, s.BytesTransferred)
	}
}

func TestMeshSelfSendNotCounted(t *testing.T) {
	var ctrs metrics.Counters
	m := NewMesh(2, 4, &ctrs)
	e := m.Endpoint(0)
	if err := e.Send(Message{Kind: KindData, To: 0, Payload: []byte("xyz")}); err != nil {
		t.Fatalf("self send: %v", err)
	}
	<-e.Inbox()
	if got := ctrs.Snapshot().Messages; got != 0 {
		t.Fatalf("intra-place send counted as cross-node message: %d", got)
	}
}

func TestMeshInvalidDestination(t *testing.T) {
	m := NewMesh(2, 4, nil)
	if err := m.Endpoint(0).Send(Message{To: 7}); err == nil {
		t.Fatalf("send to invalid place should error")
	}
	if err := m.Endpoint(0).Send(Message{To: -1}); err == nil {
		t.Fatalf("send to negative place should error")
	}
}

func TestMeshClose(t *testing.T) {
	m := NewMesh(2, 4, nil)
	a, b := m.Endpoint(0), m.Endpoint(1)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, open := <-b.Inbox(); open {
		t.Fatalf("inbox should be closed")
	}
	if err := a.Send(Message{To: 1}); err != ErrClosed {
		t.Fatalf("send to closed endpoint = %v, want ErrClosed", err)
	}
	// Double close is idempotent.
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMeshConcurrentSenders(t *testing.T) {
	m := NewMesh(2, 1024, nil)
	dst := m.Endpoint(1)
	const senders, per = 4, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := m.Endpoint(0)
			for i := 0; i < per; i++ {
				if err := src.Send(Message{Kind: KindData, To: 1}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < senders*per; i++ {
			<-dst.Inbox()
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out draining inbox")
	}
}

func TestMeshBackpressure(t *testing.T) {
	var ctrs metrics.Counters
	m := NewMesh(2, 1, &ctrs) // single-slot inbox: second send congests
	a := m.Endpoint(0)
	if err := a.Send(Message{Kind: KindStealReq, To: 1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	// Lossy steal traffic is shed with a typed error, not silently stalled.
	err := a.Send(Message{Kind: KindStealReq, To: 1})
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("send into full inbox = %v, want ErrBackpressure", err)
	}
	var bpe *BackpressureError
	if !errors.As(err, &bpe) || bpe.Place != 1 {
		t.Fatalf("error should carry the congested place, got %v", err)
	}
	if got := ctrs.Snapshot().Backpressure; got != 1 {
		t.Fatalf("Backpressure = %d, want 1", got)
	}

	// Reliable traffic blocks instead of shedding: it must arrive once the
	// receiver drains, and the congestion is still counted.
	delivered := make(chan error, 1)
	go func() { delivered <- a.Send(Message{Kind: KindSpawn, To: 1, Payload: []byte("x")}) }()
	select {
	case err := <-delivered:
		t.Fatalf("reliable send completed against a full inbox: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	got := recvTimeout(t, m.Endpoint(1).Inbox())
	if got.Kind != KindStealReq {
		t.Fatalf("first drained message %+v, want the steal request", got)
	}
	if err := <-delivered; err != nil {
		t.Fatalf("blocked reliable send: %v", err)
	}
	got = recvTimeout(t, m.Endpoint(1).Inbox())
	if got.Kind != KindSpawn {
		t.Fatalf("second drained message %+v, want the spawn", got)
	}
	if got := ctrs.Snapshot().Backpressure; got != 2 {
		t.Fatalf("Backpressure = %d, want 2", got)
	}
}

func TestEndpointPanicsOutOfRange(t *testing.T) {
	m := NewMesh(2, 4, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("Endpoint(9) should panic")
		}
	}()
	m.Endpoint(9)
}

func TestKindString(t *testing.T) {
	if KindSpawn.String() != "spawn" || KindStealReq.String() != "steal-req" {
		t.Fatalf("kind names wrong: %v %v", KindSpawn, KindStealReq)
	}
	if Kind(123).String() == "" {
		t.Fatalf("unknown kind should still print")
	}
}

func TestTCPStarRoundTrip(t *testing.T) {
	var ctrs metrics.Counters
	hub, err := ListenHub("127.0.0.1:0", 3, &ctrs)
	if err != nil {
		t.Fatalf("ListenHub: %v", err)
	}
	defer hub.Close()

	s1, err := DialSpoke(hub.Addr(), 1, &ctrs)
	if err != nil {
		t.Fatalf("DialSpoke(1): %v", err)
	}
	defer s1.Close()
	s2, err := DialSpoke(hub.Addr(), 2, &ctrs)
	if err != nil {
		t.Fatalf("DialSpoke(2): %v", err)
	}
	defer s2.Close()
	hub.Await()

	// Spoke -> hub.
	if err := s1.Send(Message{Kind: KindSpawn, To: 0, Payload: []byte("to-hub")}); err != nil {
		t.Fatalf("spoke send: %v", err)
	}
	got := recvTimeout(t, hub.Inbox())
	if got.From != 1 || string(got.Payload) != "to-hub" {
		t.Fatalf("hub received %+v", got)
	}

	// Hub -> spoke.
	if err := hub.Send(Message{Kind: KindData, To: 2, Payload: []byte("to-spoke")}); err != nil {
		t.Fatalf("hub send: %v", err)
	}
	got = recvTimeout(t, s2.Inbox())
	if got.From != 0 || string(got.Payload) != "to-spoke" {
		t.Fatalf("spoke2 received %+v", got)
	}

	// Spoke -> spoke, routed through the hub.
	if err := s1.Send(Message{Kind: KindData, To: 2, Payload: []byte("peer")}); err != nil {
		t.Fatalf("spoke-to-spoke send: %v", err)
	}
	got = recvTimeout(t, s2.Inbox())
	if got.From != 1 || string(got.Payload) != "peer" {
		t.Fatalf("spoke2 received %+v", got)
	}

	if msgs := ctrs.Snapshot().Messages; msgs < 4 {
		t.Fatalf("expected at least 4 counted messages (incl. forwarded hop), got %d", msgs)
	}
}

func TestTCPSpokeValidation(t *testing.T) {
	if _, err := DialSpoke("127.0.0.1:1", 0, nil); err == nil {
		t.Fatalf("place 0 cannot be a spoke")
	}
	if _, err := DialSpoke("127.0.0.1:0", 1, nil); err == nil {
		t.Fatalf("dialing a dead address should fail")
	}
}

func TestHubRejectsBadPlaces(t *testing.T) {
	if _, err := ListenHub("127.0.0.1:0", 0, nil); err == nil {
		t.Fatalf("ListenHub with 0 places should fail")
	}
}

func TestHubNoRouteError(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 4, nil)
	if err != nil {
		t.Fatalf("ListenHub: %v", err)
	}
	defer hub.Close()
	if err := hub.Send(Message{To: 3}); err == nil {
		t.Fatalf("send to never-joined spoke should error")
	}
}

func recvTimeout(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for message")
		return Message{}
	}
}

func TestHubRejectsDuplicatePlace(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	s1, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	// Make sure the first spoke's handshake is fully processed before the
	// duplicate dials (otherwise the hub could register the duplicate and
	// drop the original instead).
	if err := s1.Send(Message{Kind: KindData, To: 0}); err != nil {
		t.Fatal(err)
	}
	recvTimeout(t, hub.Inbox())
	// A second hello for place 1: the hub must drop the connection, which
	// surfaces as the duplicate spoke's inbox closing.
	dup, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-dup.Inbox():
		if open {
			t.Fatalf("duplicate spoke received a message instead of being dropped")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("duplicate spoke was not dropped")
	}
}

func TestSpokeSendAfterHubClose(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	hub.Await()
	hub.Close()
	// The send may succeed into the OS buffer or fail; it must not hang,
	// and the spoke's inbox must close.
	_ = s.Send(Message{Kind: KindData, To: 0})
	select {
	case _, open := <-s.Inbox():
		if open {
			t.Fatalf("expected closed inbox after hub shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("spoke inbox never closed")
	}
}
