package comm

import (
	"fmt"
	"strings"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
)

// Transport selects how places exchange messages. The zero value is
// TransportInproc, which keeps existing single-process configurations
// working unchanged.
type Transport int

const (
	// TransportInproc connects places through in-process channels (Mesh).
	// It is the only transport core.Runtime accepts directly.
	TransportInproc Transport = iota
	// TransportTCPHub is the star topology: place 0 listens, every other
	// place dials it, and spoke-to-spoke traffic transits the hub (2 hops).
	TransportTCPHub
	// TransportTCPMesh is the peer-to-peer topology: every place listens,
	// links are dialed lazily per ordered pair, and all traffic is 1 hop.
	TransportTCPMesh
)

// String returns the flag spelling of the transport (the inverse of
// ParseTransport).
func (t Transport) String() string {
	switch t {
	case TransportInproc:
		return "inproc"
	case TransportTCPHub:
		return "tcp-hub"
	case TransportTCPMesh:
		return "tcp-mesh"
	}
	return fmt.Sprintf("Transport(%d)", int(t))
}

// ParseTransport resolves a flag string ("inproc", "tcp-hub", "tcp-mesh",
// case-insensitive) to a Transport.
func ParseTransport(s string) (Transport, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "inproc":
		return TransportInproc, nil
	case "tcp-hub":
		return TransportTCPHub, nil
	case "tcp-mesh":
		return TransportTCPMesh, nil
	}
	return 0, fmt.Errorf("comm: unknown transport %q (want inproc, tcp-hub, or tcp-mesh)", s)
}

// Node is one OS process's attachment to a distributed transport: an
// Endpoint plus the lifecycle hooks the node layer needs regardless of
// topology. Hub, Spoke, and TCPMesh all implement it.
type Node interface {
	Endpoint
	// AwaitTimeout blocks until this node considers the cluster assembled
	// (topology-specific; see the implementations) or the deadline passes.
	AwaitTimeout(d time.Duration) error
	// Down reports whether this node has observed place p's link fail.
	// Topologies that learn about failures only through typed send errors
	// (the hub's spokes) always report false.
	Down(p int) bool
	// InjectFaults arms sends with a deterministic fault injector; nil
	// disarms. Call before traffic starts.
	InjectFaults(inj *fault.Injector)
	// SetRecorder attaches a scheduling-event recorder for task arrivals
	// and peer evictions; nil records nothing. Call before traffic starts.
	SetRecorder(rec *obs.Recorder)
}

// NodeConfig describes one process's seat in a distributed cluster.
type NodeConfig struct {
	// Transport picks the topology. TransportInproc is rejected by Open —
	// in-process meshes are built with NewMesh and shared directly.
	Transport Transport
	// Place is this process's place id in [0, Places).
	Place int
	// Places is the cluster size.
	Places int
	// Addr is the hub address (listen address at place 0, dial target
	// elsewhere). Used by TransportTCPHub only.
	Addr string
	// Addrs lists every place's listen address, indexed by place id. Used
	// by TransportTCPMesh only.
	Addrs []string
	// Counters receives message/byte/fault accounting; nil disables it.
	Counters *metrics.Counters
	// DialAttempts/DialBackoff tune mesh link dialing (see MeshOptions);
	// zero values pick the defaults.
	DialAttempts int
	DialBackoff  time.Duration
	// Incarnation is this process's membership incarnation, carried in
	// the mesh handshake so a restarted place un-evicts its old links
	// (see MeshOptions.Incarnation). Zero means 1.
	Incarnation uint32
}

// Open builds the transport endpoint for cfg's seat in the cluster. The
// caller owns the returned Node and must Close it; AwaitTimeout reports
// when the cluster has assembled.
func Open(cfg NodeConfig) (Node, error) {
	if cfg.Places < 2 {
		return nil, fmt.Errorf("comm: Open with %d places, want >= 2", cfg.Places)
	}
	if cfg.Place < 0 || cfg.Place >= cfg.Places {
		return nil, fmt.Errorf("comm: Open place %d of %d", cfg.Place, cfg.Places)
	}
	switch cfg.Transport {
	case TransportInproc:
		return nil, fmt.Errorf("comm: Open does not build in-process transports; use NewMesh and share its endpoints")
	case TransportTCPHub:
		if cfg.Addr == "" {
			return nil, fmt.Errorf("comm: tcp-hub needs Addr")
		}
		if cfg.Place == 0 {
			return ListenHub(cfg.Addr, cfg.Places, cfg.Counters)
		}
		return DialSpoke(cfg.Addr, cfg.Place, cfg.Counters)
	case TransportTCPMesh:
		if len(cfg.Addrs) != cfg.Places {
			return nil, fmt.Errorf("comm: tcp-mesh needs %d addrs, have %d", cfg.Places, len(cfg.Addrs))
		}
		return ListenMeshTCP(cfg.Addrs, cfg.Place, MeshOptions{
			Counters:     cfg.Counters,
			DialAttempts: cfg.DialAttempts,
			DialBackoff:  cfg.DialBackoff,
			Incarnation:  cfg.Incarnation,
		})
	}
	return nil, fmt.Errorf("comm: unknown transport %v", cfg.Transport)
}

var (
	_ Node = (*Hub)(nil)
	_ Node = (*Spoke)(nil)
	_ Node = (*TCPMesh)(nil)
)
