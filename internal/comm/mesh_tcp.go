package comm

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
)

// Defaults for MeshOptions zero values.
const (
	defaultDialAttempts = 5
	defaultDialBackoff  = 50 * time.Millisecond
	defaultLinkQueue    = 1024
)

// MeshOptions tunes a TCPMesh node. The zero value is usable.
type MeshOptions struct {
	// Counters receives message/byte/fault accounting; nil disables it.
	Counters *metrics.Counters
	// DialAttempts bounds connection attempts per peer link (first try
	// plus backoff retries). Default 5.
	DialAttempts int
	// DialBackoff is the wait after the first failed dial; it doubles per
	// attempt with full jitter, mirroring the steal-retry discipline of
	// the fault model. Default 50ms.
	DialBackoff time.Duration
	// LinkQueue is the per-link frame queue depth beyond which sends
	// count as backpressure (lossy traffic is shed). Default 1024.
	LinkQueue int
	// Listener, when non-nil, is used instead of binding addrs[place] —
	// callers that pre-bind (tests, port-0 setups) inject it here.
	Listener net.Listener
	// Incarnation identifies this process generation of the place,
	// carried in the hello handshake. A restarted place must dial with
	// a strictly higher incarnation than its predecessor to be
	// readmitted by peers that marked it down (see handshake). Zero
	// picks 1.
	Incarnation uint32
}

func (o MeshOptions) withDefaults() MeshOptions {
	if o.DialAttempts <= 0 {
		o.DialAttempts = defaultDialAttempts
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = defaultDialBackoff
	}
	if o.LinkQueue <= 0 {
		o.LinkQueue = defaultLinkQueue
	}
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	return o
}

// TCPMesh is one place's endpoint in a peer-to-peer TCP transport: every
// place listens on its own address and each ordered place pair gets its
// own connection, dialed lazily the first time the pair exchanges a
// message. Spoke-to-spoke traffic therefore takes one hop where the Hub
// topology takes two — the difference the message counters of Table III
// make visible.
//
// Outbound frames are coalesced per link: a send enqueues the message and
// a single flusher goroutine drains whatever has accumulated into one
// buffer and one conn.Write — under load, many messages per syscall.
//
// Failure model is fail-stop per link with rejoin: a dial that exhausts
// its retries, or a read/write error on an established connection, marks
// the peer down for this node, fails subsequent sends to it with a typed
// *PlaceDownError, and posts a synthetic KindPlaceDown message to the
// local inbox so the protocol layer can start recovery. A down peer is
// not evicted forever: a fresh process of the same place that dials back
// with a strictly higher incarnation in its hello is readmitted — the
// down mark clears, the stale outbound link is discarded so the next
// send dials fresh, and traffic flows again (see handshake). Hellos at
// the old incarnation stay rejected, so a half-dead predecessor cannot
// resurrect itself.
type TCPMesh struct {
	place int
	addrs []string
	opts  MeshOptions
	ln    net.Listener
	start time.Time // wall-clock origin for time-windowed fault injection

	// Atomic because flusher/reader goroutines are already live when the
	// owner arms them (a non-zero place dials place 0 eagerly inside
	// ListenMeshTCP). Loads are nil-safe.
	inj atomic.Pointer[fault.Injector] // set via InjectFaults
	rec atomic.Pointer[obs.Recorder]   // set via SetRecorder

	mu       sync.Mutex
	links    map[int]*meshLink // outbound links by peer
	in       map[int]net.Conn  // established inbound connections by peer
	down     map[int]bool      // peers marked down after a link failure
	peerInc  map[int]uint32    // last incarnation seen from each peer's hello
	everSeen map[int]bool      // distinct peers that ever completed an inbound handshake
	closed   bool
	senders  sync.WaitGroup // in-flight deliverLocal sends; see Close

	joined chan struct{} // closed once every other place has handshaked in
	stop   chan struct{} // closed by Close; aborts dial backoff promptly
	inbox  chan Message

	// Coalescing introspection: outbound syscalls vs frames they carried.
	wireWrites, wireFrames int64 // guarded by mu
}

// ListenMeshTCP starts place place of a mesh whose members listen on
// addrs (indexed by place id). The node accepts immediately; outbound
// links are dialed lazily. Every non-zero place eagerly establishes its
// link to place 0 so that the coordinator's AwaitTimeout sees the cluster
// assemble without waiting for first data.
func ListenMeshTCP(addrs []string, place int, opts MeshOptions) (*TCPMesh, error) {
	if place < 0 || place >= len(addrs) {
		return nil, fmt.Errorf("comm: mesh place %d of %d addrs", place, len(addrs))
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("comm: mesh needs at least 2 places, have %d", len(addrs))
	}
	opts = opts.withDefaults()
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addrs[place])
		if err != nil {
			return nil, fmt.Errorf("comm: mesh listen %s: %w", addrs[place], err)
		}
	}
	t := &TCPMesh{
		place:    place,
		addrs:    addrs,
		opts:     opts,
		ln:       ln,
		start:    time.Now(),
		links:    make(map[int]*meshLink),
		in:       make(map[int]net.Conn),
		down:     make(map[int]bool),
		peerInc:  make(map[int]uint32),
		everSeen: make(map[int]bool),
		joined:   make(chan struct{}),
		stop:     make(chan struct{}),
		inbox:    make(chan Message, 1024),
	}
	go t.acceptLoop()
	if place != 0 {
		t.link(0).kick() // join the coordinator eagerly
	}
	return t, nil
}

// Addr returns this node's listening address (useful with ":0").
func (t *TCPMesh) Addr() string { return t.ln.Addr().String() }

// Place implements Endpoint.
func (t *TCPMesh) Place() int { return t.place }

// Places returns the mesh size.
func (t *TCPMesh) Places() int { return len(t.addrs) }

// InjectFaults arms sends and dials with a fault injector: steal messages
// may be dropped, any message may suffer a latency spike, and dial
// attempts on a lossy link may fail (exercising the backoff path). Safe
// to call while links are live; nil disarms.
func (t *TCPMesh) InjectFaults(inj *fault.Injector) { t.inj.Store(inj) }

// SetRecorder attaches a scheduling-event recorder: inbound task arrivals
// (KindArrive) and peer evictions (KindCrash) are recorded on this
// place's track. Safe to call while links are live; nil records nothing.
func (t *TCPMesh) SetRecorder(rec *obs.Recorder) { t.rec.Store(rec) }

// Down reports whether this node has marked peer p's link as failed.
func (t *TCPMesh) Down(p int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[p]
}

// AwaitTimeout waits for cluster assembly. At place 0 it blocks until
// every other place's eager link has handshaked in, reporting how many
// made it if the deadline passes. At any other place it blocks until this
// node's link to place 0 is established.
func (t *TCPMesh) AwaitTimeout(d time.Duration) error {
	if t.place == 0 {
		select {
		case <-t.joined:
			return nil
		case <-time.After(d):
			t.mu.Lock()
			seen := len(t.everSeen)
			t.mu.Unlock()
			return fmt.Errorf("comm: %d of %d mesh peers joined within %v", seen, len(t.addrs)-1, d)
		}
	}
	l := t.link(0)
	l.kick()
	select {
	case <-l.ready:
		return nil
	case <-l.failed:
		return fmt.Errorf("comm: mesh place %d cannot reach place 0: %w", t.place, l.stickyErr())
	case <-time.After(d):
		return fmt.Errorf("comm: mesh place %d: no link to place 0 within %v", t.place, d)
	}
}

// AwaitPeers waits until at least n distinct peers have completed an
// inbound handshake, for clusters that assemble incrementally (late
// joiners provisioned in addrs but not yet started). AwaitTimeout is
// the full-assembly special case.
func (t *TCPMesh) AwaitPeers(n int, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		t.mu.Lock()
		seen := len(t.everSeen)
		closed := t.closed
		t.mu.Unlock()
		if seen >= n {
			return nil
		}
		if closed {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: %d of %d mesh peers joined within %v", seen, n, d)
		}
		select {
		case <-t.stop:
			return ErrClosed
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// CoalescingStats reports how many outbound conn.Write calls this node
// has issued and how many frames they carried in total. frames/writes > 1
// means batching happened.
func (t *TCPMesh) CoalescingStats() (writes, frames int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wireWrites, t.wireFrames
}

// Send implements Endpoint: one hop, straight to the destination's
// listener, over the lazily dialed link for this ordered pair.
func (t *TCPMesh) Send(m Message) error {
	m.From = t.place
	if m.To < 0 || m.To >= len(t.addrs) {
		return fmt.Errorf("comm: mesh send to invalid place %d", m.To)
	}
	if m.To == t.place {
		t.deliverLocal(m)
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if t.down[m.To] {
		t.mu.Unlock()
		return &PlaceDownError{Place: m.To}
	}
	t.mu.Unlock()
	nowNS := time.Since(t.start).Nanoseconds()
	if t.inj.Load().PartitionedAt(t.place, m.To, nowNS) {
		// An active partition swallows every kind — that is what a
		// network cut does. Reliable protocols recover through their
		// own retry machinery once the partition heals.
		if t.opts.Counters != nil {
			t.opts.Counters.DroppedMessages.Add(1)
		}
		return nil
	}
	if lossy(m.Kind) && t.inj.Load().Drop(t.place, m.To) {
		if t.opts.Counters != nil {
			t.opts.Counters.DroppedMessages.Add(1)
		}
		return nil // lost in transit; the thief's timeout recovers
	}
	delay := t.inj.Load().SpikeNS(t.place, m.To) + t.inj.Load().GrayNS(t.place, m.To, nowNS)
	if delay > 0 {
		time.Sleep(time.Duration(delay))
	}
	if t.opts.Counters != nil {
		t.opts.Counters.Messages.Add(1)
		t.opts.Counters.BytesTransferred.Add(int64(len(m.Payload)))
	}
	l := t.link(m.To)
	if t.inj.Load().Duplicate(t.place, m.To) {
		if t.opts.Counters != nil {
			t.opts.Counters.DuplicatedMessages.Add(1)
			t.opts.Counters.Messages.Add(1)
		}
		_ = l.enqueue(m) // the receiver's idempotence absorbs the copy
	}
	return l.enqueue(m)
}

// Inbox implements Endpoint.
func (t *TCPMesh) Inbox() <-chan Message { return t.inbox }

// Close implements Endpoint, tearing down the listener and every link.
func (t *TCPMesh) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	links := t.links
	t.links = map[int]*meshLink{}
	in := t.in
	t.in = map[int]net.Conn{}
	t.mu.Unlock()
	close(t.stop)
	t.ln.Close()
	for _, l := range links {
		l.close()
	}
	for _, c := range in {
		c.Close()
	}
	t.senders.Wait()
	close(t.inbox)
	return nil
}

// link returns (creating on first use) the outbound link to peer.
func (t *TCPMesh) link(peer int) *meshLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.links[peer]
	if l == nil {
		l = &meshLink{
			mesh:   t,
			peer:   peer,
			ready:  make(chan struct{}),
			failed: make(chan struct{}),
		}
		t.links[peer] = l
	}
	return l
}

func (t *TCPMesh) deliverLocal(m Message) {
	if m.Kind == KindSpawn {
		t.rec.Load().Record(t.place, 0, obs.KindArrive, -1, int32(m.From), 0)
	}
	// Gate the send on the closed flag so Close can wait out in-flight
	// senders before closing the inbox (close-vs-send is a data race).
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.senders.Add(1)
	t.mu.Unlock()
	defer t.senders.Done()
	select {
	case t.inbox <- m:
	case <-t.stop: // shutdown with a full inbox; the message is moot
	}
}

// linkDown evicts peer after a link failure: subsequent sends fail typed,
// the inbound connection (if any) is dropped, and a synthetic
// KindPlaceDown is posted to the local inbox. First failure wins; no-op
// during shutdown.
func (t *TCPMesh) linkDown(peer int) {
	t.mu.Lock()
	if t.closed || t.down[peer] {
		t.mu.Unlock()
		return
	}
	t.down[peer] = true
	l := t.links[peer]
	c := t.in[peer]
	delete(t.in, peer)
	t.mu.Unlock()
	if l != nil {
		l.close()
	}
	if c != nil {
		c.Close()
	}
	t.rec.Load().Record(t.place, 0, obs.KindCrash, -1, int32(peer), 0)
	t.deliverLocal(Message{Kind: KindPlaceDown, From: peer, To: t.place})
}

func (t *TCPMesh) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handshake(newTCPConn(conn))
	}
}

// handshake reads the dialer's hello and registers the inbound half of
// the pair. The hello's Seq carries the dialer's incarnation: a peer
// marked down may reconnect only with a strictly higher incarnation
// than the one that failed — that un-evicts it (the down mark clears
// and the stale outbound link is discarded so the next send redials).
// Hellos at the old incarnation are rejected, preserving fail-stop
// semantics for the dead process itself.
func (t *TCPMesh) handshake(tc *tcpConn) {
	hello, err := tc.read()
	if err != nil || hello.Kind != KindHello {
		tc.conn.Close()
		return
	}
	peer := hello.From
	inc := uint32(hello.Seq)
	if inc == 0 {
		inc = 1
	}
	var staleLink *meshLink
	t.mu.Lock()
	if t.closed || peer < 0 || peer >= len(t.addrs) || peer == t.place ||
		t.in[peer] != nil {
		t.mu.Unlock()
		tc.conn.Close()
		return
	}
	if t.down[peer] {
		if inc <= t.peerInc[peer] {
			t.mu.Unlock()
			tc.conn.Close()
			return
		}
		delete(t.down, peer)
		staleLink = t.links[peer]
		delete(t.links, peer)
	}
	t.peerInc[peer] = inc
	t.in[peer] = tc.conn
	if !t.everSeen[peer] {
		t.everSeen[peer] = true
		if len(t.everSeen) == len(t.addrs)-1 {
			close(t.joined)
		}
	}
	t.mu.Unlock()
	if staleLink != nil {
		staleLink.close()
		t.rec.Load().Record(t.place, 0, obs.KindHeal, -1, int32(peer), 0)
	}
	t.readLoop(peer, tc)
}

func (t *TCPMesh) readLoop(peer int, tc *tcpConn) {
	for {
		m, err := tc.read()
		if err != nil {
			// The peer's outbound connection died: under fail-stop that
			// means the peer itself is gone.
			t.linkDown(peer)
			return
		}
		t.deliverLocal(m)
	}
}

// meshLink is the outbound half of one ordered place pair: a frame queue
// drained by at most one flusher goroutine, which owns the dial (lazy,
// with backoff retries) and coalesces queued messages into single writes.
type meshLink struct {
	mesh *TCPMesh
	peer int

	mu       sync.Mutex
	queue    []Message
	flushing bool
	conn     net.Conn
	err      error // sticky failure; always a *PlaceDownError

	ready  chan struct{} // closed once dial + hello succeeded
	failed chan struct{} // closed once the link is sticky-failed
	wbuf   []byte        // flusher-owned coalescing buffer
}

func (l *meshLink) stickyErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// enqueue appends m and makes sure a flusher is draining. Beyond the
// configured queue depth, lossy traffic is shed with a typed
// backpressure error; reliable traffic is queued regardless (the protocol
// layer bounds its outstanding work) with the congestion still counted.
func (l *meshLink) enqueue(m Message) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if len(l.queue) >= l.mesh.opts.LinkQueue {
		if c := l.mesh.opts.Counters; c != nil {
			c.Backpressure.Add(1)
		}
		if lossy(m.Kind) {
			l.mu.Unlock()
			return &BackpressureError{Place: l.peer}
		}
	}
	l.queue = append(l.queue, m)
	if !l.flushing {
		l.flushing = true
		go l.flush()
	}
	l.mu.Unlock()
	return nil
}

// kick starts a flusher even with an empty queue, so the link dials and
// handshakes eagerly (used for the join link to place 0).
func (l *meshLink) kick() {
	l.mu.Lock()
	if !l.flushing && l.err == nil {
		l.flushing = true
		go l.flush()
	}
	l.mu.Unlock()
}

// flush drains the queue until it is empty, batching every message that
// accumulated since the last write into one buffer and one conn.Write —
// the per-connection write coalescing that keeps syscall count sublinear
// in message count under load.
func (l *meshLink) flush() {
	if !l.ensureConn() {
		return
	}
	for {
		l.mu.Lock()
		if l.err != nil {
			l.flushing = false
			l.mu.Unlock()
			return
		}
		if len(l.queue) == 0 {
			l.flushing = false
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		conn := l.conn
		l.mu.Unlock()

		l.wbuf = l.wbuf[:0]
		for _, m := range batch {
			l.wbuf = AppendFrame(l.wbuf, m)
		}
		if _, err := conn.Write(l.wbuf); err != nil {
			l.fail(err)
			return
		}
		t := l.mesh
		t.mu.Lock()
		t.wireWrites++
		t.wireFrames += int64(len(batch))
		t.mu.Unlock()
	}
}

// ensureConn dials the peer if this link has no connection yet: bounded
// attempts under exponential backoff with jitter (the same discipline as
// steal retries), with injected link faults able to fail an attempt so
// chaos plans exercise this path deterministically. On success it writes
// the hello frame that identifies this node to the peer's acceptor.
func (l *meshLink) ensureConn() bool {
	l.mu.Lock()
	if l.conn != nil || l.err != nil {
		ok := l.err == nil
		l.mu.Unlock()
		return ok
	}
	l.mu.Unlock()

	t := l.mesh
	var conn net.Conn
	var err error
	backoff := t.opts.DialBackoff
	for attempt := 0; attempt < t.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			if c := t.opts.Counters; c != nil {
				c.Retries.Add(1)
			}
			// Sleeping out the full backoff schedule on a node that is
			// shutting down would leak this flusher for seconds; abort
			// promptly when Close fires instead.
			select {
			case <-t.stop:
				l.fail(fmt.Errorf("comm: mesh closed during dial backoff to place %d", l.peer))
				return false
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if t.inj.Load().Drop(t.place, l.peer) {
			err = fmt.Errorf("comm: injected dial fault to place %d", l.peer)
			if c := t.opts.Counters; c != nil {
				c.DroppedMessages.Add(1)
			}
			continue
		}
		conn, err = net.DialTimeout("tcp", t.addrs[l.peer], 2*time.Second)
		if err == nil {
			break
		}
	}
	if err != nil && conn == nil {
		l.fail(err)
		return false
	}
	hello := AppendFrame(nil, Message{Kind: KindHello, From: t.place, To: l.peer, Seq: uint64(t.opts.Incarnation)})
	if _, werr := conn.Write(hello); werr != nil {
		conn.Close()
		l.fail(werr)
		return false
	}
	l.mu.Lock()
	if l.err != nil {
		// Link was closed while the dial was in flight; discard the
		// connection instead of resurrecting a dead link.
		l.mu.Unlock()
		conn.Close()
		return false
	}
	l.conn = conn
	l.mu.Unlock()
	close(l.ready)
	return true
}

// fail marks the link sticky-failed, drops queued frames (the protocol
// layer's retry machinery re-sends what mattered), and reports the peer
// down to the mesh.
func (l *meshLink) fail(cause error) {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return
	}
	l.err = &PlaceDownError{Place: l.peer}
	l.queue = nil
	l.flushing = false
	conn := l.conn
	l.conn = nil
	l.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	close(l.failed)
	_ = cause // the typed PlaceDownError is the API; cause is connection noise
	l.mesh.linkDown(l.peer)
}

// close tears the link down during shutdown or eviction without posting
// further notifications.
func (l *meshLink) close() {
	l.mu.Lock()
	alreadyFailed := l.err != nil
	if !alreadyFailed {
		l.err = &PlaceDownError{Place: l.peer}
	}
	l.queue = nil
	l.flushing = false
	conn := l.conn
	l.conn = nil
	l.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if !alreadyFailed {
		close(l.failed)
	}
}

var _ Endpoint = (*TCPMesh)(nil)
