package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func wireSamples() []Message {
	return []Message{
		{},
		{Kind: KindSpawn, From: 0, To: 3, Seq: 42, Payload: []byte("task payload")},
		{Kind: KindSpawnDone, From: 3, To: 0, Seq: 42, Payload: []byte{0}},
		{Kind: KindStealReq, From: 7, To: 1, Seq: 1<<64 - 1},
		{Kind: KindStealResp, From: 1, To: 7, Seq: 9, Payload: bytes.Repeat([]byte{0xab}, 1024)},
		{Kind: KindData, From: -1, To: -1, Seq: 0, Payload: []byte{}},
		{Kind: KindLifeline, From: 15, To: 8},
		{Kind: KindShutdown, From: 0, To: 2},
		{Kind: KindHello, From: 5, To: 0},
		{Kind: KindPlaceDown, From: 2, To: 0},
	}
}

func sameMessage(a, b Message) bool {
	return a.Kind == b.Kind && a.From == b.From && a.To == b.To && a.Seq == b.Seq &&
		bytes.Equal(a.Payload, b.Payload)
}

func TestWireRoundTripAllKinds(t *testing.T) {
	for _, m := range wireSamples() {
		frame := AppendFrame(nil, m)
		if len(frame) != FrameLen(m) {
			t.Errorf("%v: frame is %d bytes, FrameLen says %d", m.Kind, len(frame), FrameLen(m))
		}
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%v: DecodeFrame: %v", m.Kind, err)
		}
		if n != len(frame) {
			t.Errorf("%v: consumed %d of %d bytes", m.Kind, n, len(frame))
		}
		if !sameMessage(got, m) {
			t.Errorf("%v: round trip %+v != %+v", m.Kind, got, m)
		}
	}
}

func TestWireStreamRoundTrip(t *testing.T) {
	var stream []byte
	for _, m := range wireSamples() {
		stream = AppendFrame(stream, m)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range wireSamples() {
		var got Message
		var err error
		got, buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !sameMessage(got, want) {
			t.Errorf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("drained stream: err = %v, want io.EOF", err)
	}
}

func TestWireRejectsTruncation(t *testing.T) {
	frame := AppendFrame(nil, Message{Kind: KindSpawn, To: 1, Payload: []byte("hello")})
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrTruncatedFrame) {
			t.Errorf("DecodeFrame of %d/%d bytes: err = %v, want ErrTruncatedFrame", cut, len(frame), err)
		}
	}
	// A reader over a mid-frame-dead connection must also reject. cut == 0
	// is a clean EOF between frames, not a truncation.
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]), nil)
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Errorf("ReadFrame of %d/%d bytes: err = %v, want ErrTruncatedFrame", cut, len(frame), err)
		}
	}
}

func TestWireRejectsOversizedLength(t *testing.T) {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(wireHeaderLen+MaxFramePayload+1))
	if _, _, err := DecodeFrame(prefix[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame oversized: err = %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(prefix[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame oversized: err = %v, want ErrFrameTooLarge", err)
	}
	// An undersized body (smaller than the header) is equally invalid.
	binary.BigEndian.PutUint32(prefix[:], wireHeaderLen-1)
	if _, _, err := DecodeFrame(prefix[:]); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("DecodeFrame undersized: err = %v, want ErrTruncatedFrame", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(prefix[:]), nil); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("ReadFrame undersized: err = %v, want ErrTruncatedFrame", err)
	}
}

func TestWireBufferReuseDoesNotAlias(t *testing.T) {
	// Consecutive ReadFrame calls reuse the scratch buffer: the payload of
	// frame 1 must be consumed (or copied) before frame 2 is read.
	var stream []byte
	stream = AppendFrame(stream, Message{Kind: KindData, To: 1, Payload: []byte("first")})
	stream = AppendFrame(stream, Message{Kind: KindData, To: 1, Payload: []byte("secnd")})
	r := bytes.NewReader(stream)
	m1, buf, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	copied := string(m1.Payload)
	if _, _, err := ReadFrame(r, buf); err != nil {
		t.Fatal(err)
	}
	if copied != "first" {
		t.Fatalf("copied payload = %q, want %q", copied, "first")
	}
}
