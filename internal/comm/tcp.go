package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"distws/internal/metrics"
)

// KindHello is the handshake message a spoke sends right after dialing the
// hub; From carries the spoke's place id.
const KindHello Kind = 200

// tcpConn wraps a net.Conn with gob framing and a write lock.
type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (c *tcpConn) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

func (c *tcpConn) read() (Message, error) {
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

// Hub is place 0's endpoint in a star-topology TCP transport. Spokes dial
// the hub; the hub routes spoke-to-spoke traffic. Routing through the hub
// doubles the hop count for spoke pairs, which the message counters record
// faithfully.
type Hub struct {
	ln       net.Listener
	places   int
	counters *metrics.Counters

	mu     sync.Mutex
	conns  map[int]*tcpConn
	closed bool

	inbox chan Message
	ready chan struct{} // closed once all spokes have joined
}

// ListenHub starts a hub for a cluster of places places (including the
// hub itself) on addr. It returns immediately; Await blocks until all
// places-1 spokes have completed the handshake.
func ListenHub(addr string, places int, counters *metrics.Counters) (*Hub, error) {
	if places < 1 {
		return nil, fmt.Errorf("comm: ListenHub places=%d", places)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: hub listen: %w", err)
	}
	h := &Hub{
		ln:       ln,
		places:   places,
		counters: counters,
		conns:    make(map[int]*tcpConn),
		inbox:    make(chan Message, 1024),
		ready:    make(chan struct{}),
	}
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listening address (useful with ":0").
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Await blocks until every spoke has joined.
func (h *Hub) Await() { <-h.ready }

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.handshake(newTCPConn(conn))
	}
}

func (h *Hub) handshake(tc *tcpConn) {
	hello, err := tc.read()
	if err != nil || hello.Kind != KindHello {
		tc.conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed || hello.From <= 0 || hello.From >= h.places || h.conns[hello.From] != nil {
		h.mu.Unlock()
		tc.conn.Close()
		return
	}
	h.conns[hello.From] = tc
	joined := len(h.conns)
	h.mu.Unlock()
	if joined == h.places-1 {
		close(h.ready)
	}
	h.readLoop(hello.From, tc)
}

func (h *Hub) readLoop(from int, tc *tcpConn) {
	for {
		m, err := tc.read()
		if err != nil {
			return
		}
		if m.To == 0 {
			h.deliverLocal(m)
			continue
		}
		// Spoke-to-spoke traffic transits the hub: forward and count the
		// second hop.
		if err := h.route(m); err != nil {
			continue
		}
	}
}

func (h *Hub) deliverLocal(m Message) {
	defer func() { recover() }() // inbox may close under us
	h.inbox <- m
}

func (h *Hub) route(m Message) error {
	h.mu.Lock()
	tc := h.conns[m.To]
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if tc == nil {
		return fmt.Errorf("comm: no route to place %d", m.To)
	}
	if h.counters != nil {
		h.counters.Messages.Add(1)
		h.counters.BytesTransferred.Add(int64(len(m.Payload)))
	}
	return tc.write(m)
}

// Place implements Endpoint: the hub is always place 0.
func (h *Hub) Place() int { return 0 }

// Send implements Endpoint.
func (h *Hub) Send(m Message) error {
	m.From = 0
	if m.To == 0 {
		h.deliverLocal(m)
		return nil
	}
	return h.route(m)
}

// Inbox implements Endpoint.
func (h *Hub) Inbox() <-chan Message { return h.inbox }

// Close shuts the hub down, closing every spoke connection.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := h.conns
	h.conns = map[int]*tcpConn{}
	h.mu.Unlock()
	h.ln.Close()
	for _, tc := range conns {
		tc.conn.Close()
	}
	close(h.inbox)
	return nil
}

// Spoke is a non-hub place's endpoint in the star transport.
type Spoke struct {
	place    int
	tc       *tcpConn
	counters *metrics.Counters
	inbox    chan Message
	once     sync.Once
}

// DialSpoke connects place (must be > 0) to the hub at addr.
func DialSpoke(addr string, place int, counters *metrics.Counters) (*Spoke, error) {
	if place <= 0 {
		return nil, fmt.Errorf("comm: DialSpoke place=%d, want > 0", place)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dialing hub %s: %w", addr, err)
	}
	s := &Spoke{
		place:    place,
		tc:       newTCPConn(conn),
		counters: counters,
		inbox:    make(chan Message, 1024),
	}
	if err := s.tc.write(Message{Kind: KindHello, From: place}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("comm: hello to hub: %w", err)
	}
	go s.readLoop()
	return s, nil
}

func (s *Spoke) readLoop() {
	defer s.closeInbox()
	for {
		m, err := s.tc.read()
		if err != nil {
			return
		}
		s.inbox <- m
	}
}

func (s *Spoke) closeInbox() {
	s.once.Do(func() { close(s.inbox) })
}

// Place implements Endpoint.
func (s *Spoke) Place() int { return s.place }

// Send implements Endpoint. All traffic goes via the hub.
func (s *Spoke) Send(m Message) error {
	m.From = s.place
	if s.counters != nil {
		s.counters.Messages.Add(1)
		s.counters.BytesTransferred.Add(int64(len(m.Payload)))
	}
	if err := s.tc.write(m); err != nil {
		return fmt.Errorf("comm: spoke %d send: %w", s.place, err)
	}
	return nil
}

// Inbox implements Endpoint.
func (s *Spoke) Inbox() <-chan Message { return s.inbox }

// Close implements Endpoint.
func (s *Spoke) Close() error {
	return s.tc.conn.Close() // readLoop will close the inbox
}

var (
	_ Endpoint = (*Hub)(nil)
	_ Endpoint = (*Spoke)(nil)
)
