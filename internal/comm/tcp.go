package comm

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
)

// KindHello is the handshake message a spoke sends right after dialing the
// hub; From carries the spoke's place id.
const KindHello Kind = 200

// KindPlaceDown is a synthetic message the hub delivers to its own inbox
// when a spoke's connection fails; From carries the dead place's id. It
// never travels on the wire.
const KindPlaceDown Kind = 201

// tcpConn wraps a net.Conn with binary wire framing (see wire.go) and a
// write lock. Read and write each reuse one scratch buffer, so steady-state
// messaging allocates nothing on either side.
type tcpConn struct {
	conn net.Conn
	br   *bufio.Reader
	rbuf []byte
	wmu  sync.Mutex
	wbuf []byte
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{conn: c, br: bufio.NewReader(c)}
}

func (c *tcpConn) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], m)
	_, err := c.conn.Write(c.wbuf)
	return err
}

func (c *tcpConn) read() (Message, error) {
	m, buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return Message{}, err
	}
	// The payload aliases the read buffer, which the next read overwrites;
	// hand the consumer a stable copy.
	if len(m.Payload) > 0 {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	return m, nil
}

// Hub is place 0's endpoint in a star-topology TCP transport. Spokes dial
// the hub; the hub routes spoke-to-spoke traffic. Routing through the hub
// doubles the hop count for spoke pairs, which the message counters record
// faithfully.
type Hub struct {
	ln       net.Listener
	places   int
	counters *metrics.Counters
	inj      *fault.Injector // nil-safe; set via InjectFaults
	rec      *obs.Recorder   // nil-safe; set via SetRecorder

	mu      sync.Mutex
	conns   map[int]*tcpConn
	down    map[int]bool // spokes evicted after a connection failure
	closed  bool
	senders sync.WaitGroup // in-flight deliverLocal sends; see Close

	inbox chan Message
	stop  chan struct{} // closed by Close; unblocks senders on a full inbox
	ready chan struct{} // closed once all spokes have joined
}

// ListenHub starts a hub for a cluster of places places (including the
// hub itself) on addr. It returns immediately; Await blocks until all
// places-1 spokes have completed the handshake.
func ListenHub(addr string, places int, counters *metrics.Counters) (*Hub, error) {
	if places < 1 {
		return nil, fmt.Errorf("comm: ListenHub places=%d", places)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: hub listen: %w", err)
	}
	h := &Hub{
		ln:       ln,
		places:   places,
		counters: counters,
		conns:    make(map[int]*tcpConn),
		down:     make(map[int]bool),
		inbox:    make(chan Message, 1024),
		stop:     make(chan struct{}),
		ready:    make(chan struct{}),
	}
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listening address (useful with ":0").
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Await blocks until every spoke has joined. Prefer AwaitTimeout: if a
// spoke never dials (crashed before the handshake), Await blocks forever.
func (h *Hub) Await() { <-h.ready }

// AwaitTimeout waits up to d for every spoke to join, reporting how many
// made it if the deadline passes.
func (h *Hub) AwaitTimeout(d time.Duration) error {
	select {
	case <-h.ready:
		return nil
	case <-time.After(d):
		h.mu.Lock()
		joined := len(h.conns)
		h.mu.Unlock()
		return fmt.Errorf("comm: %d of %d spokes joined within %v", joined, h.places-1, d)
	}
}

// AwaitPeers waits until at least n spokes have completed the
// handshake, for clusters whose seat count exceeds the places expected
// at start (client seats, late joiners). AwaitTimeout is the
// full-assembly special case.
func (h *Hub) AwaitPeers(n int, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		h.mu.Lock()
		joined := len(h.conns)
		closed := h.closed
		h.mu.Unlock()
		if joined >= n {
			return nil
		}
		if closed {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: %d of %d hub spokes joined within %v", joined, n, d)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// InjectFaults arms the hub with a fault injector: steal messages may be
// silently dropped and any routed message may be delayed by a latency
// spike. Call before traffic starts; nil disarms.
func (h *Hub) InjectFaults(inj *fault.Injector) { h.inj = inj }

// SetRecorder attaches a scheduling-event recorder: task arrivals
// (KindArrive) and place evictions (KindCrash) are recorded on the hub's
// track. Call before traffic starts; nil (the default) records nothing.
func (h *Hub) SetRecorder(rec *obs.Recorder) { h.rec = rec }

// Down reports whether place p's connection has failed and been evicted.
func (h *Hub) Down(p int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[p]
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.handshake(newTCPConn(conn))
	}
}

func (h *Hub) handshake(tc *tcpConn) {
	hello, err := tc.read()
	if err != nil || hello.Kind != KindHello {
		tc.conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed || hello.From <= 0 || hello.From >= h.places ||
		h.conns[hello.From] != nil || h.down[hello.From] {
		// Fail-stop model: an evicted place may not rejoin.
		h.mu.Unlock()
		tc.conn.Close()
		return
	}
	h.conns[hello.From] = tc
	joined := len(h.conns)
	h.mu.Unlock()
	if joined == h.places-1 {
		close(h.ready)
	}
	h.readLoop(hello.From, tc)
}

func (h *Hub) readLoop(from int, tc *tcpConn) {
	defer h.evict(from, tc)
	for {
		m, err := tc.read()
		if err != nil {
			return
		}
		if m.To == 0 {
			h.deliverLocal(m)
			continue
		}
		// Spoke-to-spoke traffic transits the hub: forward and count the
		// second hop.
		if err := h.route(m); err != nil {
			continue
		}
	}
}

func (h *Hub) deliverLocal(m Message) {
	if m.Kind == KindSpawn {
		h.rec.Record(0, 0, obs.KindArrive, -1, int32(m.From), 0)
	}
	// Gate the send on the closed flag so Close can wait out in-flight
	// senders before closing the inbox (close-vs-send is a data race).
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.senders.Add(1)
	h.mu.Unlock()
	defer h.senders.Done()
	select {
	case h.inbox <- m:
	case <-h.stop: // shutdown with a full inbox; the message is moot
	}
}

// evict removes a spoke whose connection failed, so later routes error
// instead of writing into a dead socket, and posts a synthetic
// KindPlaceDown to the hub inbox so the node layer can start recovery.
// No-op during shutdown or if the spoke was already replaced/evicted.
func (h *Hub) evict(place int, tc *tcpConn) {
	h.mu.Lock()
	if h.closed || h.conns[place] != tc {
		h.mu.Unlock()
		return
	}
	delete(h.conns, place)
	h.down[place] = true
	h.mu.Unlock()
	tc.conn.Close()
	h.rec.Record(0, 0, obs.KindCrash, -1, int32(place), 0)
	h.deliverLocal(Message{Kind: KindPlaceDown, From: place, To: 0})
}

func (h *Hub) route(m Message) error {
	h.mu.Lock()
	tc := h.conns[m.To]
	downDst := h.down[m.To]
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if downDst {
		return &PlaceDownError{Place: m.To}
	}
	if tc == nil {
		return fmt.Errorf("comm: no route to place %d", m.To)
	}
	if lossy(m.Kind) && h.inj.Drop(m.From, m.To) {
		if h.counters != nil {
			h.counters.DroppedMessages.Add(1)
		}
		return nil
	}
	if ns := h.inj.SpikeNS(m.From, m.To); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
	if h.counters != nil {
		h.counters.Messages.Add(1)
		h.counters.BytesTransferred.Add(int64(len(m.Payload)))
	}
	if err := tc.write(m); err != nil {
		h.evict(m.To, tc)
		return &PlaceDownError{Place: m.To}
	}
	return nil
}

// Place implements Endpoint: the hub is always place 0.
func (h *Hub) Place() int { return 0 }

// Send implements Endpoint.
func (h *Hub) Send(m Message) error {
	m.From = 0
	if m.To == 0 {
		h.deliverLocal(m)
		return nil
	}
	return h.route(m)
}

// Inbox implements Endpoint.
func (h *Hub) Inbox() <-chan Message { return h.inbox }

// Close shuts the hub down, closing every spoke connection.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := h.conns
	h.conns = map[int]*tcpConn{}
	h.mu.Unlock()
	close(h.stop)
	h.ln.Close()
	for _, tc := range conns {
		tc.conn.Close()
	}
	h.senders.Wait()
	close(h.inbox)
	return nil
}

// Spoke is a non-hub place's endpoint in the star transport.
type Spoke struct {
	place    int
	tc       *tcpConn
	counters *metrics.Counters
	inj      *fault.Injector // nil-safe; set via InjectFaults
	rec      *obs.Recorder   // nil-safe; set via SetRecorder
	inbox    chan Message
	once     sync.Once
}

// DialSpoke connects place (must be > 0) to the hub at addr.
func DialSpoke(addr string, place int, counters *metrics.Counters) (*Spoke, error) {
	if place <= 0 {
		return nil, fmt.Errorf("comm: DialSpoke place=%d, want > 0", place)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dialing hub %s: %w", addr, err)
	}
	s := &Spoke{
		place:    place,
		tc:       newTCPConn(conn),
		counters: counters,
		inbox:    make(chan Message, 1024),
	}
	if err := s.tc.write(Message{Kind: KindHello, From: place}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("comm: hello to hub: %w", err)
	}
	go s.readLoop()
	return s, nil
}

func (s *Spoke) readLoop() {
	defer s.closeInbox()
	for {
		m, err := s.tc.read()
		if err != nil {
			return
		}
		if m.Kind == KindSpawn {
			s.rec.Record(s.place, 0, obs.KindArrive, -1, int32(m.From), 0)
		}
		s.inbox <- m
	}
}

func (s *Spoke) closeInbox() {
	s.once.Do(func() { close(s.inbox) })
}

// Place implements Endpoint.
func (s *Spoke) Place() int { return s.place }

// InjectFaults arms the spoke's sends with a fault injector. Call before
// traffic starts; nil disarms.
func (s *Spoke) InjectFaults(inj *fault.Injector) { s.inj = inj }

// SetRecorder attaches a scheduling-event recorder to inbound task
// arrivals. Call before traffic starts; nil records nothing.
func (s *Spoke) SetRecorder(rec *obs.Recorder) { s.rec = rec }

// AwaitTimeout implements Node: a spoke is joined the moment its dial and
// handshake succeed, so there is nothing to wait for.
func (s *Spoke) AwaitTimeout(time.Duration) error { return nil }

// Down implements Node. A spoke routes everything through the hub and
// learns about dead peers only from typed send errors, so it never marks
// places down itself.
func (s *Spoke) Down(int) bool { return false }

// Send implements Endpoint. All traffic goes via the hub.
func (s *Spoke) Send(m Message) error {
	m.From = s.place
	if lossy(m.Kind) && s.inj.Drop(m.From, m.To) {
		if s.counters != nil {
			s.counters.DroppedMessages.Add(1)
		}
		return nil
	}
	if ns := s.inj.SpikeNS(m.From, m.To); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
	if s.counters != nil {
		s.counters.Messages.Add(1)
		s.counters.BytesTransferred.Add(int64(len(m.Payload)))
	}
	if err := s.tc.write(m); err != nil {
		return fmt.Errorf("comm: spoke %d send: %w", s.place, err)
	}
	return nil
}

// Inbox implements Endpoint.
func (s *Spoke) Inbox() <-chan Message { return s.inbox }

// Close implements Endpoint.
func (s *Spoke) Close() error {
	return s.tc.conn.Close() // readLoop will close the inbox
}

var (
	_ Endpoint = (*Hub)(nil)
	_ Endpoint = (*Spoke)(nil)
)
