// Package comm provides the inter-place message layer of the runtime.
// Three interchangeable transports implement the same Endpoint interface,
// selected by a Transport value (ParseTransport resolves flag strings):
//
//   - TransportInproc (Mesh): in-process channels, used when all places
//     live in one OS process (the common library configuration). Messages
//     still flow through explicit envelopes so that the message and byte
//     counters of Table III are meaningful.
//   - TransportTCPHub (Hub/Spoke): a star-topology transport (place 0 is
//     the hub) where spoke-to-spoke traffic transits the hub — two hops.
//   - TransportTCPMesh (TCPMesh): a peer-to-peer transport where every
//     place listens and links are dialed lazily on first send — one hop,
//     with per-link write coalescing under load.
//
// Both TCP transports frame messages with the length-prefixed binary
// codec in wire.go; gob survives only inside user task payloads, which
// this package treats as opaque bytes. Open builds the distributed
// transports from a NodeConfig; cmd/distws-node is the reference user.
//
// Every send increments the shared metrics.Counters: one message plus the
// payload bytes. This is the accounting source for the paper's Table III —
// which is why the hub's second hop and the mesh's single hop are visible
// in the message counts.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
)

// Kind discriminates message purposes on the wire.
type Kind uint8

const (
	// KindSpawn carries a task envelope to execute at the destination.
	KindSpawn Kind = iota
	// KindSpawnDone acknowledges completion of a remotely spawned task
	// (used for distributed finish accounting).
	KindSpawnDone
	// KindStealReq asks the destination for surplus work.
	KindStealReq
	// KindStealResp answers a steal request (payload empty on failure).
	KindStealResp
	// KindData is an application-level remote data access (at() traffic).
	KindData
	// KindLifeline registers the sender on the destination's lifeline.
	KindLifeline
	// KindShutdown tells the destination to stop its workers.
	KindShutdown
)

// Membership protocol kinds (internal/member). Numbered from 210 to
// stay clear of both the dense scheduler kinds above and the transport
// kinds (KindHello/KindPlaceDown at 200/201).
const (
	// KindHeartbeat carries a liveness beat from a member to the
	// coordinator, and the coordinator's ack back (payload:
	// member.Payload). Heartbeats are lossy — the next beat supersedes
	// a lost one.
	KindHeartbeat Kind = 210
	// KindJoin announces a place joining (or rejoining with a bumped
	// incarnation); payload: member.Payload.
	KindJoin Kind = 211
	// KindDrain announces the start of a graceful drain; payload:
	// member.Payload.
	KindDrain Kind = 212
	// KindSpawnNack returns a queued-but-unstarted batch from a
	// draining place so the coordinator re-dispatches it to a survivor;
	// Seq carries the batch id like KindSpawn/KindSpawnDone.
	KindSpawnNack Kind = 213
)

// Service protocol kinds (internal/service). Numbered from 220: the
// long-lived task service speaks these between client seats and the
// front door (place 0), on top of the same transports.
const (
	// KindSubmit streams one job from a client seat into the service;
	// payload: a service job frame (versioned header + opaque argument).
	KindSubmit Kind = 220
	// KindJobDone returns a completed job's result to the submitting
	// client; payload: a service reply frame carrying the result.
	KindJobDone Kind = 221
	// KindJobNack rejects a submission (admission control, unknown
	// tenant, draining service); payload: a service reply frame whose
	// code names the reason and whose retry-after hints at backoff.
	KindJobNack Kind = 222
)

var kindNames = [...]string{
	KindSpawn:     "spawn",
	KindSpawnDone: "spawn-done",
	KindStealReq:  "steal-req",
	KindStealResp: "steal-resp",
	KindData:      "data",
	KindLifeline:  "lifeline",
	KindShutdown:  "shutdown",
}

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindPlaceDown:
		return "place-down"
	case KindHeartbeat:
		return "heartbeat"
	case KindJoin:
		return "join"
	case KindDrain:
		return "drain"
	case KindSpawnNack:
		return "spawn-nack"
	case KindSubmit:
		return "submit"
	case KindJobDone:
		return "job-done"
	case KindJobNack:
		return "job-nack"
	}
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is one unit of inter-place communication.
type Message struct {
	Kind    Kind
	From    int
	To      int
	Seq     uint64 // request/response correlation
	Payload []byte
}

// ErrClosed is returned by Send after the endpoint has been closed.
var ErrClosed = errors.New("comm: endpoint closed")

// ErrPlaceDown is the sentinel for routing to a place whose connection has
// failed. Match with errors.Is; the concrete error is a *PlaceDownError
// carrying the place id.
var ErrPlaceDown = errors.New("comm: place down")

// PlaceDownError reports which place was unreachable.
type PlaceDownError struct{ Place int }

func (e *PlaceDownError) Error() string { return fmt.Sprintf("comm: place %d down", e.Place) }

// Is makes errors.Is(err, ErrPlaceDown) match.
func (e *PlaceDownError) Is(target error) bool { return target == ErrPlaceDown }

// ErrBackpressure is the sentinel for a lossy send shed because the
// destination inbox (Mesh) or link queue (TCPMesh) was full. Only steal
// traffic is ever shed — the thief's timeout-and-retry machinery absorbs
// the loss; reliable kinds block instead. Match with errors.Is; the
// concrete error is a *BackpressureError carrying the congested place.
var ErrBackpressure = errors.New("comm: destination queue full")

// BackpressureError reports which destination place was congested.
type BackpressureError struct{ Place int }

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("comm: place %d inbox full, steal message shed", e.Place)
}

// Is makes errors.Is(err, ErrBackpressure) match.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// lossy reports whether injected message loss may apply to k. The steal
// protocol tolerates silent loss (the thief times out and retries), and
// so do heartbeats (the next beat supersedes a lost one); spawn,
// completion, membership announcements, and control traffic must be
// delivered for finish accounting to terminate.
func lossy(k Kind) bool {
	return k == KindStealReq || k == KindStealResp || k == KindHeartbeat
}

// Endpoint is one place's attachment to the transport.
type Endpoint interface {
	// Place returns the place id this endpoint serves.
	Place() int
	// Send routes m (by m.To) to the destination endpoint. When the
	// destination queue is full, lossy steal traffic is shed with a typed
	// ErrBackpressure (the thief's retry machinery recovers) and reliable
	// traffic may block until space frees up; either case increments the
	// Backpressure counter. Sends to a failed place return ErrPlaceDown.
	Send(m Message) error
	// Inbox delivers messages addressed to this place. The channel closes
	// when the endpoint is closed.
	Inbox() <-chan Message
	// Close detaches the endpoint and closes its inbox.
	Close() error
}

// Mesh is an in-process transport connecting n places through buffered
// channels. It is safe for concurrent use.
type Mesh struct {
	counters *metrics.Counters
	inj      *fault.Injector // nil-safe; set via InjectFaults
	mu       sync.Mutex
	inboxes  []chan Message
	closed   []bool
}

// NewMesh returns a mesh for places endpoints with per-inbox buffer size
// buf. Counters may be nil to disable accounting.
func NewMesh(places, buf int, counters *metrics.Counters) *Mesh {
	if places <= 0 {
		panic(fmt.Sprintf("comm: NewMesh places=%d", places))
	}
	if buf < 1 {
		buf = 1
	}
	m := &Mesh{
		counters: counters,
		inboxes:  make([]chan Message, places),
		closed:   make([]bool, places),
	}
	for i := range m.inboxes {
		m.inboxes[i] = make(chan Message, buf)
	}
	return m
}

// Endpoint returns place p's attachment.
func (m *Mesh) Endpoint(p int) Endpoint {
	if p < 0 || p >= len(m.inboxes) {
		panic(fmt.Sprintf("comm: Endpoint(%d) of %d-place mesh", p, len(m.inboxes)))
	}
	return &meshEndpoint{mesh: m, place: p}
}

// Places returns the number of endpoints in the mesh.
func (m *Mesh) Places() int { return len(m.inboxes) }

// InjectFaults arms the mesh with a fault injector: steal messages may be
// silently dropped (the sender's timeout recovers) and any message may be
// delayed by a latency spike. Call before traffic starts; nil disarms.
func (m *Mesh) InjectFaults(inj *fault.Injector) { m.inj = inj }

func (m *Mesh) send(msg Message) (err error) {
	if msg.To < 0 || msg.To >= len(m.inboxes) {
		return fmt.Errorf("comm: send to invalid place %d", msg.To)
	}
	m.mu.Lock()
	if m.closed[msg.To] || m.closed[msg.From] {
		m.mu.Unlock()
		return ErrClosed
	}
	inbox := m.inboxes[msg.To]
	m.mu.Unlock()

	if msg.From != msg.To {
		if lossy(msg.Kind) && m.inj.Drop(msg.From, msg.To) {
			if m.counters != nil {
				m.counters.DroppedMessages.Add(1)
			}
			return nil // lost in transit; delivery is the sender's problem
		}
		if ns := m.inj.SpikeNS(msg.From, msg.To); ns > 0 {
			time.Sleep(time.Duration(ns))
		}
	}
	if m.counters != nil && msg.From != msg.To {
		m.counters.Messages.Add(1)
		m.counters.BytesTransferred.Add(int64(len(msg.Payload)))
	}
	// The inbox may be closed concurrently by the receiver's Close; treat
	// the resulting send-on-closed-channel panic as ErrClosed rather than
	// crashing the sender.
	defer func() {
		if recover() != nil {
			err = ErrClosed
		}
	}()
	select {
	case inbox <- msg:
		return nil
	default:
	}
	// Inbox full. Historically this blocked for every kind, which silently
	// turned a congested steal victim into a stalled thief; now congestion
	// is counted, lossy traffic is shed with a typed error, and only
	// traffic that must be delivered (spawn, completion, control) blocks.
	if m.counters != nil {
		m.counters.Backpressure.Add(1)
	}
	if lossy(msg.Kind) {
		return &BackpressureError{Place: msg.To}
	}
	inbox <- msg
	return nil
}

type meshEndpoint struct {
	mesh  *Mesh
	place int
}

func (e *meshEndpoint) Place() int { return e.place }

func (e *meshEndpoint) Send(m Message) error {
	m.From = e.place
	return e.mesh.send(m)
}

func (e *meshEndpoint) Inbox() <-chan Message { return e.mesh.inboxes[e.place] }

func (e *meshEndpoint) Close() error {
	e.mesh.mu.Lock()
	defer e.mesh.mu.Unlock()
	if !e.mesh.closed[e.place] {
		e.mesh.closed[e.place] = true
		close(e.mesh.inboxes[e.place])
	}
	return nil
}
