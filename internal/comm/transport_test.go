package comm

import (
	"net"
	"testing"
	"time"
)

func TestParseTransport(t *testing.T) {
	cases := []struct {
		in   string
		want Transport
	}{
		{"inproc", TransportInproc},
		{"tcp-hub", TransportTCPHub},
		{"tcp-mesh", TransportTCPMesh},
		{" TCP-Mesh ", TransportTCPMesh},
	}
	for _, c := range cases {
		got, err := ParseTransport(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseTransport(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		// String is the inverse spelling.
		if rt, err := ParseTransport(c.want.String()); err != nil || rt != c.want {
			t.Fatalf("round trip of %v via %q failed: %v, %v", c.want, c.want.String(), rt, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatalf("unknown transport should error")
	}
	if s := Transport(42).String(); s == "" {
		t.Fatalf("out-of-range transport should still print")
	}
}

func TestOpenValidation(t *testing.T) {
	bad := []NodeConfig{
		{Transport: TransportTCPHub, Place: 0, Places: 1, Addr: "x"},          // too small
		{Transport: TransportTCPHub, Place: 5, Places: 2, Addr: "x"},          // place out of range
		{Transport: TransportTCPHub, Place: 0, Places: 2},                     // no addr
		{Transport: TransportInproc, Place: 0, Places: 2},                     // inproc not Open-able
		{Transport: TransportTCPMesh, Place: 0, Places: 3, Addrs: []string{}}, // addrs mismatch
		{Transport: Transport(9), Place: 0, Places: 2, Addr: "x"},             // unknown
	}
	for i, cfg := range bad {
		if _, err := Open(cfg); err == nil {
			t.Fatalf("Open(#%d %+v) should fail", i, cfg)
		}
	}
}

func TestOpenHubTopology(t *testing.T) {
	hub, err := Open(NodeConfig{Transport: TransportTCPHub, Place: 0, Places: 2, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Open hub: %v", err)
	}
	defer hub.Close()
	spoke, err := Open(NodeConfig{Transport: TransportTCPHub, Place: 1, Places: 2, Addr: hub.(*Hub).Addr()})
	if err != nil {
		t.Fatalf("Open spoke: %v", err)
	}
	defer spoke.Close()
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := spoke.Send(Message{Kind: KindData, To: 0, Payload: []byte("via-open")}); err != nil {
		t.Fatal(err)
	}
	if got := recvTimeout(t, hub.Inbox()); string(got.Payload) != "via-open" {
		t.Fatalf("hub received %+v", got)
	}
}

func TestOpenMeshTopology(t *testing.T) {
	// Reserve two loopback ports, then hand the addresses to Open. The
	// tiny close-to-listen window is acceptable in a test.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	var nodes [2]Node
	for i := range nodes {
		n, err := Open(NodeConfig{Transport: TransportTCPMesh, Place: i, Places: 2, Addrs: addrs})
		if err != nil {
			t.Fatalf("Open mesh %d: %v", i, err)
		}
		nodes[i] = n
		defer n.Close()
	}
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Send(Message{Kind: KindData, To: 0, Payload: []byte("mesh-open")}); err != nil {
		t.Fatal(err)
	}
	if got := recvTimeout(t, nodes[0].Inbox()); string(got.Payload) != "mesh-open" {
		t.Fatalf("node 0 received %+v", got)
	}
}
