package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary wire format framing every Message on the TCP transports.
//
// Replacing encoding/gob on the hot path matters because steal probes and
// finish acknowledgements are tiny, latency-bound control messages: gob
// spends reflection and per-stream type descriptors on them, while this
// codec is a fixed 17-byte header behind a 4-byte length prefix. User task
// payloads stay opaque []byte here — applications keep encoding them with
// gob (or anything else) via the task registry.
//
//	offset  size  field
//	0       4     frame length N (big endian, header + payload, excl. itself)
//	4       1     Kind
//	5       4     From (int32, big endian)
//	9       4     To (int32, big endian)
//	13      8     Seq (uint64, big endian)
//	21      N-17  Payload
const (
	wireHeaderLen = 17
	wirePrefixLen = 4
)

// MaxFramePayload bounds a frame's payload so a corrupt or hostile length
// prefix cannot make a reader allocate unbounded memory.
const MaxFramePayload = 16 << 20

// Wire-codec error surface. Match with errors.Is.
var (
	// ErrFrameTooLarge reports a length prefix exceeding MaxFramePayload.
	ErrFrameTooLarge = errors.New("comm: frame exceeds max payload")
	// ErrTruncatedFrame reports a frame shorter than its declared length
	// (or shorter than the fixed header).
	ErrTruncatedFrame = errors.New("comm: truncated frame")
)

// FrameLen returns the encoded size of m, including the length prefix.
func FrameLen(m Message) int { return wirePrefixLen + wireHeaderLen + len(m.Payload) }

// AppendFrame appends the wire encoding of m to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so senders
// reuse one scratch buffer across messages (and coalesce many frames into
// it before a single write).
func AppendFrame(dst []byte, m Message) []byte {
	body := wireHeaderLen + len(m.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(m.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.To)))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	return append(dst, m.Payload...)
}

// DecodeFrame parses one frame from the front of b, returning the message
// and the number of bytes consumed. A frame whose length prefix exceeds
// MaxFramePayload is rejected with ErrFrameTooLarge; one that declares
// more bytes than b holds (or fewer than the fixed header) is rejected
// with ErrTruncatedFrame. The returned payload aliases b.
func DecodeFrame(b []byte) (Message, int, error) {
	if len(b) < wirePrefixLen {
		return Message{}, 0, fmt.Errorf("%w: %d-byte prefix", ErrTruncatedFrame, len(b))
	}
	body := int(binary.BigEndian.Uint32(b))
	if body < wireHeaderLen {
		return Message{}, 0, fmt.Errorf("%w: declared body %d < header %d", ErrTruncatedFrame, body, wireHeaderLen)
	}
	if body-wireHeaderLen > MaxFramePayload {
		return Message{}, 0, fmt.Errorf("%w: declared payload %d", ErrFrameTooLarge, body-wireHeaderLen)
	}
	if len(b) < wirePrefixLen+body {
		return Message{}, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncatedFrame, len(b), wirePrefixLen+body)
	}
	m, err := decodeBody(b[wirePrefixLen : wirePrefixLen+body])
	if err != nil {
		return Message{}, 0, err
	}
	return m, wirePrefixLen + body, nil
}

func decodeBody(body []byte) (Message, error) {
	m := Message{
		Kind: Kind(body[0]),
		From: int(int32(binary.BigEndian.Uint32(body[1:]))),
		To:   int(int32(binary.BigEndian.Uint32(body[5:]))),
		Seq:  binary.BigEndian.Uint64(body[9:]),
	}
	if len(body) > wireHeaderLen {
		m.Payload = body[wireHeaderLen:]
	}
	return m, nil
}

// ReadFrame reads one complete frame from r, using buf as scratch storage
// (grown as needed) and returning the possibly regrown buffer for reuse.
// The returned message's payload aliases the buffer, so callers must copy
// it if they read another frame before consuming the message. A clean EOF
// before any byte surfaces as io.EOF; a connection dying mid-frame
// surfaces as ErrTruncatedFrame.
func ReadFrame(r io.Reader, buf []byte) (Message, []byte, error) {
	var prefix [wirePrefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: connection died inside length prefix", ErrTruncatedFrame)
		}
		return Message{}, buf, err
	}
	body := int(binary.BigEndian.Uint32(prefix[:]))
	if body < wireHeaderLen {
		return Message{}, buf, fmt.Errorf("%w: declared body %d < header %d", ErrTruncatedFrame, body, wireHeaderLen)
	}
	if body-wireHeaderLen > MaxFramePayload {
		return Message{}, buf, fmt.Errorf("%w: declared payload %d", ErrFrameTooLarge, body-wireHeaderLen)
	}
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	buf = buf[:body]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: connection died inside %d-byte body", ErrTruncatedFrame, body)
		}
		return Message{}, buf, err
	}
	m, err := decodeBody(buf)
	return m, buf, err
}
