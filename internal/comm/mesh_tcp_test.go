package comm

import (
	"errors"
	"net"
	"testing"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
)

// startTCPMesh boots an n-place mesh on pre-bound loopback listeners (so
// there is no port race) and registers cleanup. opt may be nil.
func startTCPMesh(t *testing.T, n int, opt func(place int) MeshOptions) []*TCPMesh {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*TCPMesh, n)
	for i := range nodes {
		opts := MeshOptions{}
		if opt != nil {
			opts = opt(i)
		}
		opts.Listener = lns[i]
		node, err := ListenMeshTCP(addrs, i, opts)
		if err != nil {
			t.Fatalf("ListenMeshTCP(%d): %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	return nodes
}

func TestTCPMeshRoundTrip(t *testing.T) {
	var ctrs metrics.Counters
	nodes := startTCPMesh(t, 3, func(int) MeshOptions { return MeshOptions{Counters: &ctrs} })
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout: %v", err)
	}

	// Every ordered pair is one hop — including spoke-to-spoke, which the
	// star topology would route through place 0 as two counted hops.
	hops := []struct{ from, to int }{{0, 1}, {1, 2}, {2, 0}}
	for _, h := range hops {
		if err := nodes[h.from].Send(Message{Kind: KindSpawn, To: h.to, Payload: []byte("hop")}); err != nil {
			t.Fatalf("send %d->%d: %v", h.from, h.to, err)
		}
		got := recvTimeout(t, nodes[h.to].Inbox())
		if got.From != h.from || got.To != h.to || string(got.Payload) != "hop" {
			t.Fatalf("%d->%d delivered %+v", h.from, h.to, got)
		}
	}
	s := ctrs.Snapshot()
	if s.Messages != 3 || s.BytesTransferred != 9 {
		t.Fatalf("counters = %d msgs %d bytes, want 3/9 (one hop per send)", s.Messages, s.BytesTransferred)
	}

	// Self-delivery bypasses the wire and the counters.
	if err := nodes[1].Send(Message{Kind: KindData, To: 1, Payload: []byte("self")}); err != nil {
		t.Fatalf("self send: %v", err)
	}
	if got := recvTimeout(t, nodes[1].Inbox()); string(got.Payload) != "self" {
		t.Fatalf("self delivery %+v", got)
	}
	if got := ctrs.Snapshot().Messages; got != 3 {
		t.Fatalf("self send counted as cross-node message: %d", got)
	}
}

func TestTCPMeshAwaitAndValidation(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	// Non-zero places await their eager link to the coordinator.
	if err := nodes[1].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("spoke AwaitTimeout: %v", err)
	}
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("coordinator AwaitTimeout: %v", err)
	}
	if err := nodes[0].Send(Message{To: 9}); err == nil {
		t.Fatalf("send to invalid place should error")
	}
	if _, err := ListenMeshTCP([]string{"127.0.0.1:0"}, 0, MeshOptions{}); err == nil {
		t.Fatalf("1-place mesh should be rejected")
	}
	if _, err := ListenMeshTCP([]string{"a", "b"}, 5, MeshOptions{}); err == nil {
		t.Fatalf("out-of-range place should be rejected")
	}
}

func TestTCPMeshPeerCrash(t *testing.T) {
	nodes := startTCPMesh(t, 3, nil)
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout: %v", err)
	}
	// Establish 0's outbound link to 2, then fail-stop place 2.
	if err := nodes[0].Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("priming send: %v", err)
	}
	recvTimeout(t, nodes[2].Inbox())
	nodes[2].Close()

	// Place 2's eager connection into place 0 dies, so place 0 notices
	// without sending: a synthetic KindPlaceDown shows up in its inbox.
	down := recvTimeout(t, nodes[0].Inbox())
	if down.Kind != KindPlaceDown || down.From != 2 {
		t.Fatalf("expected synthetic place-down for 2, got %+v", down)
	}
	if !nodes[0].Down(2) {
		t.Fatalf("Down(2) should report the evicted peer")
	}
	err := nodes[0].Send(Message{Kind: KindData, To: 2})
	if !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("send to crashed peer = %v, want ErrPlaceDown", err)
	}
	var pde *PlaceDownError
	if !errors.As(err, &pde) || pde.Place != 2 {
		t.Fatalf("error should carry the dead place id, got %v", err)
	}
	// The survivors keep talking.
	if err := nodes[1].Send(Message{Kind: KindData, To: 0, Payload: []byte("alive")}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if got := recvTimeout(t, nodes[0].Inbox()); string(got.Payload) != "alive" {
		t.Fatalf("survivor delivery %+v", got)
	}
}

func TestTCPMeshDeadAddressBackpressureAndEviction(t *testing.T) {
	// Three addresses, but place 2 never starts: its port is reserved and
	// released so dials fail fast, exercising retry-with-backoff, the
	// lossy-shedding queue bound, and eventual eviction.
	var ctrs metrics.Counters
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close() // place 2 is a ghost
	opts := MeshOptions{Counters: &ctrs, DialAttempts: 4, DialBackoff: 50 * time.Millisecond, LinkQueue: 1}
	opts.Listener = lns[0]
	n0, err := ListenMeshTCP(addrs, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	opts1 := opts
	opts1.Listener = lns[1]
	n1, err := ListenMeshTCP(addrs, 1, opts1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	// First send queues and starts the flusher, which is now stuck in dial
	// backoff against the dead address. The queue is over its depth, so a
	// lossy steal probe is shed with a typed error while reliable traffic
	// keeps queueing.
	if err := n0.Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	serr := n0.Send(Message{Kind: KindStealReq, To: 2})
	if !errors.Is(serr, ErrBackpressure) {
		t.Fatalf("steal into stalled link = %v, want ErrBackpressure", serr)
	}
	var bpe *BackpressureError
	if !errors.As(serr, &bpe) || bpe.Place != 2 {
		t.Fatalf("backpressure error should carry place 2, got %v", serr)
	}
	if err := n0.Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("reliable send must queue, got %v", err)
	}
	if got := ctrs.Snapshot().Backpressure; got < 2 {
		t.Fatalf("Backpressure = %d, want >= 2", got)
	}

	// The dial exhausts its retries and the ghost is evicted.
	down := recvTimeout(t, n0.Inbox())
	if down.Kind != KindPlaceDown || down.From != 2 {
		t.Fatalf("expected place-down for 2, got %+v", down)
	}
	if err := n0.Send(Message{Kind: KindData, To: 2}); !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("post-eviction send = %v, want ErrPlaceDown", err)
	}
	if got := ctrs.Snapshot().Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3 (DialAttempts-1 backoff retries)", got)
	}
}

func TestTCPMeshInjectedDialFault(t *testing.T) {
	// A fault plan with certain loss on the 0->1 link makes every dial
	// attempt fail deterministically: the backoff path runs, the drops are
	// counted, and the peer ends up evicted — all without a real network
	// fault.
	var ctrs metrics.Counters
	nodes := startTCPMesh(t, 2, func(int) MeshOptions {
		return MeshOptions{Counters: &ctrs, DialAttempts: 3, DialBackoff: time.Millisecond}
	})
	inj := fault.NewInjector(&fault.Plan{
		Seed:  7,
		Links: []fault.Link{{From: 0, To: 1, DropProb: 1}},
	})
	nodes[0].InjectFaults(inj)

	if err := nodes[0].Send(Message{Kind: KindData, To: 1}); err != nil {
		t.Fatalf("send should enqueue before the dial fails: %v", err)
	}
	down := recvTimeout(t, nodes[0].Inbox())
	if down.Kind != KindPlaceDown || down.From != 1 {
		t.Fatalf("expected place-down for 1, got %+v", down)
	}
	s := ctrs.Snapshot()
	if s.DroppedMessages != 3 {
		t.Fatalf("DroppedMessages = %d, want 3 (one per injected dial fault)", s.DroppedMessages)
	}
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
	if err := nodes[0].Send(Message{Kind: KindData, To: 1}); !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("send after injected eviction = %v, want ErrPlaceDown", err)
	}
}

func TestTCPMeshWriteCoalescing(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	// 0->1 is a lazy link: the first send triggers the dial, and everything
	// enqueued while it is in flight must leave in batched writes.
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := nodes[0].Send(Message{Kind: KindData, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < burst; i++ {
		got := recvTimeout(t, nodes[1].Inbox())
		if got.Seq != uint64(i) {
			t.Fatalf("message %d arrived with seq %d (order lost)", i, got.Seq)
		}
	}
	writes, frames := nodes[0].CoalescingStats()
	if frames != burst {
		t.Fatalf("frames = %d, want %d", frames, burst)
	}
	if writes >= frames {
		t.Fatalf("writes = %d for %d frames: no coalescing happened", writes, frames)
	}
	t.Logf("coalescing: %d frames in %d writes", frames, writes)
}

func TestTCPMeshClose(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := nodes[0].Send(Message{To: 1}); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, open := <-nodes[0].Inbox(); open {
		t.Fatalf("inbox should be closed")
	}
}
