package comm

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
)

// startTCPMesh boots an n-place mesh on pre-bound loopback listeners (so
// there is no port race) and registers cleanup. opt may be nil.
func startTCPMesh(t *testing.T, n int, opt func(place int) MeshOptions) []*TCPMesh {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*TCPMesh, n)
	for i := range nodes {
		opts := MeshOptions{}
		if opt != nil {
			opts = opt(i)
		}
		opts.Listener = lns[i]
		node, err := ListenMeshTCP(addrs, i, opts)
		if err != nil {
			t.Fatalf("ListenMeshTCP(%d): %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	return nodes
}

func TestTCPMeshRoundTrip(t *testing.T) {
	var ctrs metrics.Counters
	nodes := startTCPMesh(t, 3, func(int) MeshOptions { return MeshOptions{Counters: &ctrs} })
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout: %v", err)
	}

	// Every ordered pair is one hop — including spoke-to-spoke, which the
	// star topology would route through place 0 as two counted hops.
	hops := []struct{ from, to int }{{0, 1}, {1, 2}, {2, 0}}
	for _, h := range hops {
		if err := nodes[h.from].Send(Message{Kind: KindSpawn, To: h.to, Payload: []byte("hop")}); err != nil {
			t.Fatalf("send %d->%d: %v", h.from, h.to, err)
		}
		got := recvTimeout(t, nodes[h.to].Inbox())
		if got.From != h.from || got.To != h.to || string(got.Payload) != "hop" {
			t.Fatalf("%d->%d delivered %+v", h.from, h.to, got)
		}
	}
	s := ctrs.Snapshot()
	if s.Messages != 3 || s.BytesTransferred != 9 {
		t.Fatalf("counters = %d msgs %d bytes, want 3/9 (one hop per send)", s.Messages, s.BytesTransferred)
	}

	// Self-delivery bypasses the wire and the counters.
	if err := nodes[1].Send(Message{Kind: KindData, To: 1, Payload: []byte("self")}); err != nil {
		t.Fatalf("self send: %v", err)
	}
	if got := recvTimeout(t, nodes[1].Inbox()); string(got.Payload) != "self" {
		t.Fatalf("self delivery %+v", got)
	}
	if got := ctrs.Snapshot().Messages; got != 3 {
		t.Fatalf("self send counted as cross-node message: %d", got)
	}
}

func TestTCPMeshAwaitAndValidation(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	// Non-zero places await their eager link to the coordinator.
	if err := nodes[1].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("spoke AwaitTimeout: %v", err)
	}
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("coordinator AwaitTimeout: %v", err)
	}
	if err := nodes[0].Send(Message{To: 9}); err == nil {
		t.Fatalf("send to invalid place should error")
	}
	if _, err := ListenMeshTCP([]string{"127.0.0.1:0"}, 0, MeshOptions{}); err == nil {
		t.Fatalf("1-place mesh should be rejected")
	}
	if _, err := ListenMeshTCP([]string{"a", "b"}, 5, MeshOptions{}); err == nil {
		t.Fatalf("out-of-range place should be rejected")
	}
}

func TestTCPMeshPeerCrash(t *testing.T) {
	nodes := startTCPMesh(t, 3, nil)
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout: %v", err)
	}
	// Establish 0's outbound link to 2, then fail-stop place 2.
	if err := nodes[0].Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("priming send: %v", err)
	}
	recvTimeout(t, nodes[2].Inbox())
	nodes[2].Close()

	// Place 2's eager connection into place 0 dies, so place 0 notices
	// without sending: a synthetic KindPlaceDown shows up in its inbox.
	down := recvTimeout(t, nodes[0].Inbox())
	if down.Kind != KindPlaceDown || down.From != 2 {
		t.Fatalf("expected synthetic place-down for 2, got %+v", down)
	}
	if !nodes[0].Down(2) {
		t.Fatalf("Down(2) should report the evicted peer")
	}
	err := nodes[0].Send(Message{Kind: KindData, To: 2})
	if !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("send to crashed peer = %v, want ErrPlaceDown", err)
	}
	var pde *PlaceDownError
	if !errors.As(err, &pde) || pde.Place != 2 {
		t.Fatalf("error should carry the dead place id, got %v", err)
	}
	// The survivors keep talking.
	if err := nodes[1].Send(Message{Kind: KindData, To: 0, Payload: []byte("alive")}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if got := recvTimeout(t, nodes[0].Inbox()); string(got.Payload) != "alive" {
		t.Fatalf("survivor delivery %+v", got)
	}
}

func TestTCPMeshDeadAddressBackpressureAndEviction(t *testing.T) {
	// Three addresses, but place 2 never starts: its port is reserved and
	// released so dials fail fast, exercising retry-with-backoff, the
	// lossy-shedding queue bound, and eventual eviction.
	var ctrs metrics.Counters
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close() // place 2 is a ghost
	opts := MeshOptions{Counters: &ctrs, DialAttempts: 4, DialBackoff: 50 * time.Millisecond, LinkQueue: 1}
	opts.Listener = lns[0]
	n0, err := ListenMeshTCP(addrs, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	opts1 := opts
	opts1.Listener = lns[1]
	n1, err := ListenMeshTCP(addrs, 1, opts1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	// First send queues and starts the flusher, which is now stuck in dial
	// backoff against the dead address. The queue is over its depth, so a
	// lossy steal probe is shed with a typed error while reliable traffic
	// keeps queueing.
	if err := n0.Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	serr := n0.Send(Message{Kind: KindStealReq, To: 2})
	if !errors.Is(serr, ErrBackpressure) {
		t.Fatalf("steal into stalled link = %v, want ErrBackpressure", serr)
	}
	var bpe *BackpressureError
	if !errors.As(serr, &bpe) || bpe.Place != 2 {
		t.Fatalf("backpressure error should carry place 2, got %v", serr)
	}
	if err := n0.Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatalf("reliable send must queue, got %v", err)
	}
	if got := ctrs.Snapshot().Backpressure; got < 2 {
		t.Fatalf("Backpressure = %d, want >= 2", got)
	}

	// The dial exhausts its retries and the ghost is evicted.
	down := recvTimeout(t, n0.Inbox())
	if down.Kind != KindPlaceDown || down.From != 2 {
		t.Fatalf("expected place-down for 2, got %+v", down)
	}
	if err := n0.Send(Message{Kind: KindData, To: 2}); !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("post-eviction send = %v, want ErrPlaceDown", err)
	}
	if got := ctrs.Snapshot().Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3 (DialAttempts-1 backoff retries)", got)
	}
}

func TestTCPMeshInjectedDialFault(t *testing.T) {
	// A fault plan with certain loss on the 0->1 link makes every dial
	// attempt fail deterministically: the backoff path runs, the drops are
	// counted, and the peer ends up evicted — all without a real network
	// fault.
	var ctrs metrics.Counters
	nodes := startTCPMesh(t, 2, func(int) MeshOptions {
		return MeshOptions{Counters: &ctrs, DialAttempts: 3, DialBackoff: time.Millisecond}
	})
	inj := fault.NewInjector(&fault.Plan{
		Seed:  7,
		Links: []fault.Link{{From: 0, To: 1, DropProb: 1}},
	})
	nodes[0].InjectFaults(inj)

	if err := nodes[0].Send(Message{Kind: KindData, To: 1}); err != nil {
		t.Fatalf("send should enqueue before the dial fails: %v", err)
	}
	down := recvTimeout(t, nodes[0].Inbox())
	if down.Kind != KindPlaceDown || down.From != 1 {
		t.Fatalf("expected place-down for 1, got %+v", down)
	}
	s := ctrs.Snapshot()
	if s.DroppedMessages != 3 {
		t.Fatalf("DroppedMessages = %d, want 3 (one per injected dial fault)", s.DroppedMessages)
	}
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
	if err := nodes[0].Send(Message{Kind: KindData, To: 1}); !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("send after injected eviction = %v, want ErrPlaceDown", err)
	}
}

func TestTCPMeshWriteCoalescing(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	// 0->1 is a lazy link: the first send triggers the dial, and everything
	// enqueued while it is in flight must leave in batched writes.
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := nodes[0].Send(Message{Kind: KindData, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < burst; i++ {
		got := recvTimeout(t, nodes[1].Inbox())
		if got.Seq != uint64(i) {
			t.Fatalf("message %d arrived with seq %d (order lost)", i, got.Seq)
		}
	}
	writes, frames := nodes[0].CoalescingStats()
	if frames != burst {
		t.Fatalf("frames = %d, want %d", frames, burst)
	}
	if writes >= frames {
		t.Fatalf("writes = %d for %d frames: no coalescing happened", writes, frames)
	}
	t.Logf("coalescing: %d frames in %d writes", frames, writes)
}

func TestTCPMeshClose(t *testing.T) {
	nodes := startTCPMesh(t, 2, nil)
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := nodes[0].Send(Message{To: 1}); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, open := <-nodes[0].Inbox(); open {
		t.Fatalf("inbox should be closed")
	}
}

// TestTCPMeshRejoinWithBumpedIncarnation exercises the un-eviction
// path: a crashed place is marked down, a restart at the *same*
// incarnation stays rejected (fail-stop semantics for the dead
// process), and a restart with a bumped incarnation is readmitted —
// the healed link is re-established, not left evicted.
func TestTCPMeshRejoinWithBumpedIncarnation(t *testing.T) {
	nodes := startTCPMesh(t, 3, nil)
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 3)
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}

	// Establish 0's outbound link to 2, then fail-stop place 2.
	if err := nodes[0].Send(Message{Kind: KindData, To: 2}); err != nil {
		t.Fatal(err)
	}
	recvTimeout(t, nodes[2].Inbox())
	nodes[2].Close()
	if down := recvTimeout(t, nodes[0].Inbox()); down.Kind != KindPlaceDown || down.From != 2 {
		t.Fatalf("expected place-down for 2, got %+v", down)
	}

	// A process restarted at the old incarnation must stay out.
	stale, err := ListenMeshTCP(addrs, 2, MeshOptions{Incarnation: 1})
	if err != nil {
		t.Fatalf("stale restart: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // let its eager hello be rejected
	if !nodes[0].Down(2) {
		t.Fatalf("stale incarnation must not clear the down mark")
	}
	stale.Close()

	// A bumped incarnation rejoins: down mark clears, traffic flows.
	fresh, err := ListenMeshTCP(addrs, 2, MeshOptions{Incarnation: 2})
	if err != nil {
		t.Fatalf("rejoin restart: %v", err)
	}
	defer fresh.Close()
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].Down(2) {
		if time.Now().After(deadline) {
			t.Fatalf("place 2 still down after rejoin with bumped incarnation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := nodes[0].Send(Message{Kind: KindData, To: 2, Payload: []byte("wb")}); err != nil {
		t.Fatalf("send after rejoin: %v", err)
	}
	if got := recvTimeout(t, fresh.Inbox()); string(got.Payload) != "wb" {
		t.Fatalf("post-rejoin delivery %+v", got)
	}
}

// TestTCPMeshDialBackoffAbortsOnClose is the context-aware-backoff
// regression: a flusher stuck in a multi-second dial backoff must exit
// promptly when the node closes, instead of sleeping out its schedule.
func TestTCPMeshDialBackoffAbortsOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[1].Close() // place 1 is a ghost: dials fail instantly
	opts := MeshOptions{DialAttempts: 10, DialBackoff: 5 * time.Second, Listener: lns[0]}
	n0, err := ListenMeshTCP(addrs, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := n0.Send(Message{Kind: KindData, To: 1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // flusher is now in its 5s backoff
	n0.Close()
	// Without the stop-channel select the flusher holds its goroutine for
	// the remaining backoff (seconds); with it, everything unwinds fast.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive 2s after Close (baseline %d): dial backoff did not abort",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPMeshWindowedFaults drives the wall-clock side of the extended
// fault vocabulary: an active partition swallows traffic until it
// heals, gray failures add latency, and duplication delivers twice.
func TestTCPMeshWindowedFaults(t *testing.T) {
	var ctrs metrics.Counters
	nodes := startTCPMesh(t, 2, func(int) MeshOptions { return MeshOptions{Counters: &ctrs} })
	if err := nodes[0].AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	heal := 300 * time.Millisecond
	nodes[0].InjectFaults(fault.NewInjector(&fault.Plan{
		Partitions: []fault.Partition{{GroupA: []int{0}, AtNS: 1, HealNS: heal.Nanoseconds()}},
	}))
	if err := nodes[0].Send(Message{Kind: KindData, To: 1, Payload: []byte("cut")}); err != nil {
		t.Fatalf("partitioned send must be silently swallowed, got %v", err)
	}
	select {
	case m := <-nodes[1].Inbox():
		t.Fatalf("message crossed an active partition: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	if got := ctrs.Snapshot().DroppedMessages; got != 1 {
		t.Fatalf("DroppedMessages = %d, want 1", got)
	}
	time.Sleep(heal) // wall clock passes the heal instant
	if err := nodes[0].Send(Message{Kind: KindData, To: 1, Payload: []byte("healed")}); err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	if got := recvTimeout(t, nodes[1].Inbox()); string(got.Payload) != "healed" {
		t.Fatalf("post-heal delivery %+v", got)
	}

	// Gray failure: the send path absorbs the extra latency.
	nodes[0].InjectFaults(fault.NewInjector(&fault.Plan{
		Grays: []fault.Gray{{From: 0, To: 1, ExtraNS: (60 * time.Millisecond).Nanoseconds()}},
	}))
	start := time.Now()
	if err := nodes[0].Send(Message{Kind: KindData, To: 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("gray link send took %v, want >= ~60ms", elapsed)
	}
	recvTimeout(t, nodes[1].Inbox())

	// Duplication: two copies arrive, the duplicate is counted.
	nodes[0].InjectFaults(fault.NewInjector(&fault.Plan{DupProb: 1}))
	if err := nodes[0].Send(Message{Kind: KindData, To: 1, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := recvTimeout(t, nodes[1].Inbox()); got.Seq != 9 {
			t.Fatalf("copy %d = %+v", i, got)
		}
	}
	if got := ctrs.Snapshot().DuplicatedMessages; got != 1 {
		t.Fatalf("DuplicatedMessages = %d, want 1", got)
	}
}
