package comm

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// benchMessages are the two shapes that dominate transport traffic: the
// empty-payload steal probe (the latency-bound hot path the mesh exists
// for) and a spawn envelope with a small task payload.
func benchMessages() []Message {
	return []Message{
		{Kind: KindStealReq, From: 3, To: 7, Seq: 99},
		{Kind: KindSpawn, From: 0, To: 5, Seq: 12, Payload: bytes.Repeat([]byte{0x5a}, 64)},
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	msgs := benchMessages()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := msgs[i%len(msgs)]
		buf = AppendFrame(buf[:0], m)
		if _, _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGobEncodeDecode measures the stream-steady-state gob cost the
// wire codec replaced: one encoder/decoder pair per connection (type
// descriptors amortized), one Encode+Decode per message.
func BenchmarkGobEncodeDecode(b *testing.B) {
	msgs := benchMessages()
	var pipe bytes.Buffer
	enc := gob.NewEncoder(&pipe)
	dec := gob.NewDecoder(&pipe)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(msgs[i%len(msgs)]); err != nil {
			b.Fatal(err)
		}
		var out Message
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}
