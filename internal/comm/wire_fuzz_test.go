package comm

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireFrame checks the two safety properties of the binary codec:
//
//  1. Encode→decode identity: any message assembled from the fuzzed
//     fields survives AppendFrame → DecodeFrame and ReadFrame bit-exactly.
//  2. Decoder robustness: arbitrary bytes (including the valid frame
//     truncated at every length, and corrupted length prefixes) either
//     decode cleanly or fail with a typed error — never panic, never
//     over-read, never allocate beyond MaxFramePayload.
func FuzzWireFrame(f *testing.F) {
	f.Add(uint8(0), int32(0), int32(1), uint64(0), []byte{}, []byte{})
	f.Add(uint8(2), int32(3), int32(0), uint64(42), []byte("steal me"), []byte{0, 0, 0, 0})
	f.Add(uint8(200), int32(-1), int32(-1), ^uint64(0), bytes.Repeat([]byte{0xff}, 64), []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, kind uint8, from, to int32, seq uint64, payload, raw []byte) {
		in := Message{Kind: Kind(kind), From: int(from), To: int(to), Seq: seq, Payload: payload}
		frame := AppendFrame(nil, in)

		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame of a valid frame: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(frame))
		}
		if !sameMessage(got, in) {
			t.Fatalf("decode round trip: %+v != %+v", got, in)
		}
		rm, _, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("ReadFrame of a valid frame: %v", err)
		}
		if !sameMessage(rm, in) {
			t.Fatalf("read round trip: %+v != %+v", rm, in)
		}

		// Every strict prefix of a valid frame is a truncation.
		if len(frame) > 0 {
			cut := len(raw) % len(frame) // fuzzer-chosen truncation point
			if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("truncated to %d bytes: err = %v, want ErrTruncatedFrame", cut, err)
			}
		}

		// Arbitrary bytes must never panic the decoder, and every error it
		// returns must be typed (or io.EOF for an empty reader).
		if _, _, err := DecodeFrame(raw); err != nil {
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("DecodeFrame(raw): untyped error %v", err)
			}
		}
		if _, _, err := ReadFrame(bytes.NewReader(raw), nil); err != nil {
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameTooLarge) && err != io.EOF {
				t.Fatalf("ReadFrame(raw): untyped error %v", err)
			}
		}
	})
}
