package comm

import (
	"errors"
	"testing"
	"time"

	"distws/internal/fault"
	"distws/internal/metrics"
)

func TestMeshSendAfterSenderClose(t *testing.T) {
	m := NewMesh(2, 4, nil)
	a := m.Endpoint(0)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(Message{To: 1}); err != ErrClosed {
		t.Fatalf("send from closed endpoint = %v, want ErrClosed", err)
	}
}

func TestMeshDropsOnlyStealTraffic(t *testing.T) {
	var ctrs metrics.Counters
	m := NewMesh(2, 16, &ctrs)
	m.InjectFaults(fault.NewInjector(&fault.Plan{Seed: 1, DropProb: 1}))
	a, b := m.Endpoint(0), m.Endpoint(1)

	// Steal traffic is lossy: with DropProb 1 nothing arrives.
	if err := a.Send(Message{Kind: KindStealReq, To: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case got := <-b.Inbox():
		t.Fatalf("steal request should have been dropped, got %+v", got)
	case <-time.After(50 * time.Millisecond):
	}
	if got := ctrs.Snapshot().DroppedMessages; got != 1 {
		t.Fatalf("DroppedMessages = %d, want 1", got)
	}

	// Spawn traffic must be delivered regardless of the drop plan.
	if err := a.Send(Message{Kind: KindSpawn, To: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := recvTimeout(t, b.Inbox()); got.Kind != KindSpawn {
		t.Fatalf("received %+v, want spawn", got)
	}
}

func TestMeshLatencySpike(t *testing.T) {
	m := NewMesh(2, 4, nil)
	spikeNS := int64(30 * time.Millisecond)
	m.InjectFaults(fault.NewInjector(&fault.Plan{Seed: 1, SpikeProb: 1, SpikeNS: spikeNS}))
	a, b := m.Endpoint(0), m.Endpoint(1)
	start := time.Now()
	if err := a.Send(Message{Kind: KindData, To: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	recvTimeout(t, b.Inbox())
	if elapsed := time.Since(start); elapsed < time.Duration(spikeNS) {
		t.Fatalf("spiked send took %v, want >= %v", elapsed, time.Duration(spikeNS))
	}
}

func TestSpokeDisconnectEvictsAndNotifies(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 3, nil)
	if err != nil {
		t.Fatalf("ListenHub: %v", err)
	}
	defer hub.Close()
	s1, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatalf("DialSpoke(1): %v", err)
	}
	s2, err := DialSpoke(hub.Addr(), 2, nil)
	if err != nil {
		t.Fatalf("DialSpoke(2): %v", err)
	}
	defer s2.Close()
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout: %v", err)
	}

	// Kill spoke 1 mid-run: the hub must evict it and tell the node layer.
	s1.Close()
	got := recvTimeout(t, hub.Inbox())
	if got.Kind != KindPlaceDown || got.From != 1 {
		t.Fatalf("expected place-down for 1, got %+v", got)
	}
	if !hub.Down(1) {
		t.Fatalf("hub should mark place 1 down")
	}

	// Routing to the evicted place now fails typed, both from the hub and
	// for spoke-to-spoke traffic relayed through it.
	err = hub.Send(Message{Kind: KindData, To: 1})
	if !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("send to evicted place = %v, want ErrPlaceDown", err)
	}
	var pde *PlaceDownError
	if !errors.As(err, &pde) || pde.Place != 1 {
		t.Fatalf("error should carry the place id, got %v", err)
	}

	// The survivor is unaffected.
	if err := hub.Send(Message{Kind: KindData, To: 2, Payload: []byte("ok")}); err != nil {
		t.Fatalf("send to survivor: %v", err)
	}
	if got := recvTimeout(t, s2.Inbox()); string(got.Payload) != "ok" {
		t.Fatalf("survivor received %+v", got)
	}
}

func TestEvictedPlaceCannotRejoin(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 2, nil)
	if err != nil {
		t.Fatalf("ListenHub: %v", err)
	}
	defer hub.Close()
	s1, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatalf("DialSpoke: %v", err)
	}
	hub.Await()
	s1.Close()
	if got := recvTimeout(t, hub.Inbox()); got.Kind != KindPlaceDown {
		t.Fatalf("expected place-down, got %+v", got)
	}

	// Fail-stop: a reincarnation of place 1 is refused, surfacing as its
	// inbox closing without any delivery.
	ghost, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	select {
	case _, open := <-ghost.Inbox():
		if open {
			t.Fatalf("evicted place rejoined")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("ghost spoke was not dropped")
	}
}

func TestAwaitTimeout(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 3, nil)
	if err != nil {
		t.Fatalf("ListenHub: %v", err)
	}
	defer hub.Close()
	s1, err := DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatalf("DialSpoke: %v", err)
	}
	defer s1.Close()

	// Only 1 of 2 spokes ever joins: Await would hang; AwaitTimeout reports.
	if err := hub.AwaitTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("AwaitTimeout with a missing spoke should error")
	}

	s2, err := DialSpoke(hub.Addr(), 2, nil)
	if err != nil {
		t.Fatalf("DialSpoke(2): %v", err)
	}
	defer s2.Close()
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("AwaitTimeout after full join: %v", err)
	}
}

func TestPlaceDownErrorFormat(t *testing.T) {
	err := error(&PlaceDownError{Place: 3})
	if !errors.Is(err, ErrPlaceDown) {
		t.Fatalf("errors.Is failed")
	}
	if err.Error() != "comm: place 3 down" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if KindPlaceDown.String() != "place-down" || KindHello.String() != "hello" {
		t.Fatalf("kind names: %v %v", KindPlaceDown, KindHello)
	}
}
