// Package cliutil holds the diagnostic flag plumbing shared by every
// cmd/ binary: file-based pprof profiles (-cpuprofile, -memprofile) and
// the live HTTP introspection listener (-listen, serving /metrics,
// /debug/pprof, and /trace via internal/obs). Factoring it here keeps
// the four mains from each re-implementing profile lifecycle handling.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"distws/internal/obs"
)

// Diagnostics carries the parsed diagnostic flags and the resources
// Start opened. Create with RegisterFlags before flag.Parse; pair
// Start with a deferred Stop.
type Diagnostics struct {
	cpuprofile string
	memprofile string
	listen     string

	cpuFile *os.File
	server  *obs.Server
	stopped bool
}

// RegisterFlags registers the shared diagnostic flags on fs (typically
// flag.CommandLine) and returns the holder to Start after parsing. It
// also registers the shared -version flag; after parsing, a main that
// sees VersionRequested prints with PrintVersion and exits.
func RegisterFlags(fs *flag.FlagSet) *Diagnostics {
	d := &Diagnostics{}
	fs.StringVar(&d.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	fs.StringVar(&d.memprofile, "memprofile", "", "write a pprof heap profile at exit to `file`")
	fs.StringVar(&d.listen, "listen", "", "serve live introspection on `addr`: /metrics, /debug/pprof, /trace")
	RegisterVersionFlag(fs)
	return d
}

// Start begins CPU profiling and the introspection listener, as
// requested by the parsed flags. Both are optional; with no diagnostic
// flags set Start does nothing.
func (d *Diagnostics) Start() error {
	if d.cpuprofile != "" {
		f, err := os.Create(d.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		d.cpuFile = f
	}
	if d.listen != "" {
		srv, err := obs.ListenAndServe(d.listen)
		if err != nil {
			d.Stop()
			return err
		}
		d.server = srv
		fmt.Fprintf(os.Stderr, "diagnostics: serving http://%s/metrics, /debug/pprof, /trace\n", srv.Addr())
	}
	return nil
}

// Server returns the live introspection server, or nil when -listen was
// not given. Callers attach metrics/utilization/trace sources once the
// runtime producing them exists.
func (d *Diagnostics) Server() *obs.Server { return d.server }

// Stop finishes CPU profiling, writes the heap profile if one was
// requested, and closes the listener. Idempotent, so it can be both
// deferred (cleanup on error paths) and called explicitly (to surface
// profile-write errors on the success path).
func (d *Diagnostics) Stop() error {
	if d.stopped {
		return nil
	}
	d.stopped = true
	var first error
	if d.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := d.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		d.cpuFile = nil
	}
	if d.memprofile != "" {
		if err := writeHeapProfile(d.memprofile); err != nil && first == nil {
			first = err
		}
	}
	if d.server != nil {
		if err := d.server.Close(); err != nil && first == nil {
			first = err
		}
		d.server = nil
	}
	return first
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// WriteTraceFile snapshots rec and writes it to path in the given
// format ("events", "chrome", "csv", or "summary") — the shared tail of
// every binary that records a trace.
func WriteTraceFile(rec *obs.Recorder, path, format string, csvBuckets int) error {
	if !rec.Enabled() {
		return fmt.Errorf("trace: recorder was never attached to a run")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := rec.Snapshot().WriteFormat(f, format, csvBuckets); err != nil {
		return err
	}
	return f.Close()
}
