package cliutil

import (
	"flag"
	"runtime"
	"strings"
	"testing"
)

// TestVersionFlag pins the shared -version plumbing: the flag parses,
// the report names the binary, and it always carries the toolchain and
// platform even without stamped VCS metadata.
func TestVersionFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	versionRequested = false
	RegisterVersionFlag(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !VersionRequested() {
		t.Fatal("VersionRequested false after parsing -version")
	}
	var b strings.Builder
	PrintVersion(&b, "distws-serve")
	out := b.String()
	for _, want := range []string{"distws-serve", runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH} {
		if !strings.Contains(out, want) {
			t.Errorf("version output %q missing %q", out, want)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("version output %q not newline-terminated", out)
	}
}

// TestRegisterFlagsIncludesVersion pins that every binary using the
// shared diagnostics flags gets -version for free.
func TestRegisterFlagsIncludesVersion(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	versionRequested = false
	RegisterFlags(fs)
	if fs.Lookup("version") == nil {
		t.Fatal("RegisterFlags did not register -version")
	}
}
