package cliutil

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// versionRequested is set by the shared -version flag.
var versionRequested bool

// RegisterVersionFlag registers the shared -version flag on fs. Every
// cmd/ binary calls this (via RegisterFlags or directly) so `<binary>
// -version` behaves identically across the suite.
func RegisterVersionFlag(fs *flag.FlagSet) {
	fs.BoolVar(&versionRequested, "version", false, "print build information and exit")
}

// VersionRequested reports whether -version was parsed. The caller
// prints with PrintVersion and exits zero.
func VersionRequested() bool { return versionRequested }

// PrintVersion writes the binary's build information: the module
// version/revision stamped by the Go toolchain (VCS metadata when built
// from a checkout, the module version when installed from a proxy) plus
// the toolchain and platform. It never fails — a binary stripped of
// build info still reports the runtime version.
func PrintVersion(w io.Writer, binary string) {
	version, revision, modified := "devel", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	fmt.Fprintf(w, "%s %s", binary, version)
	if revision != "" {
		short := revision
		if len(short) > 12 {
			short = short[:12]
		}
		fmt.Fprintf(w, " (%s", short)
		if modified {
			fmt.Fprint(w, "+dirty")
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintf(w, " %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
