package cliutil

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distws/internal/obs"
)

func TestNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	d := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	if d.Server() != nil {
		t.Fatal("server without -listen")
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("second Stop not idempotent: %v", err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	d := RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestListenServesMetrics(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	d := RegisterFlags(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Stop()
	srv := d.Server()
	if srv == nil {
		t.Fatal("no server despite -listen")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestWriteTraceFile(t *testing.T) {
	if err := WriteTraceFile(nil, filepath.Join(t.TempDir(), "x"), "events", 0); err == nil {
		t.Fatal("WriteTraceFile accepted a disabled recorder")
	}

	rec := obs.NewRecorder(obs.RecorderOptions{})
	rec.Configure(1, 1, obs.ClockFunc(func() int64 { return 5 }), obs.VirtualNS)
	rec.Record(0, 0, obs.KindSpawn, 1, 0, 0)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := WriteTraceFile(rec, path, "events", 0); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format":"distws-trace"`) {
		t.Fatalf("trace file lacks header: %q", data)
	}
	td, err := obs.ReadEvents(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("written trace unreadable: %v", err)
	}
	if len(td.Events) != 1 {
		t.Fatalf("trace holds %d events, want 1", len(td.Events))
	}

	if err := WriteTraceFile(rec, path, "nope", 0); err == nil {
		t.Fatal("WriteTraceFile accepted an unknown format")
	}
}
