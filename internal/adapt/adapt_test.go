package adapt

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"distws/internal/task"
)

func TestSignatureBucketsCollapseAndSeparate(t *testing.T) {
	// Same program point at similar sizes -> one kind.
	if Signature(1000, 8, 0, 512) != Signature(1023, 8, 0, 513) {
		t.Fatalf("near-identical tasks should share a signature")
	}
	// An order of magnitude apart, or a remote-reference burst -> distinct.
	if Signature(1000, 8, 0, 512) == Signature(64_000, 8, 0, 512) {
		t.Fatalf("64x cost difference should separate kinds")
	}
	if Signature(1000, 8, 0, 512) == Signature(1000, 8, 40, 512) {
		t.Fatalf("remote-reference count should separate kinds")
	}
	if Signature(0, 0, 0, 0) != 0 {
		t.Fatalf("zero attributes should give the zero signature")
	}
}

func TestInternDenseAndStable(t *testing.T) {
	c := New(Config{Places: 4})
	a := c.Intern(Signature(1000, 8, 0, 0))
	b := c.Intern(Signature(9000, 8, 0, 0))
	if a == b {
		t.Fatalf("distinct signatures interned to the same kind")
	}
	if got := c.Intern(Signature(1000, 8, 0, 0)); got != a {
		t.Fatalf("re-interning returned %d, want %d", got, a)
	}
	if got := c.NumKinds(); got != 2 {
		t.Fatalf("NumKinds = %d, want 2", got)
	}
	if a != 0 || b != 1 {
		t.Fatalf("kind ids not dense: %d, %d", a, b)
	}
}

func TestClassificationStartsFlexible(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(1000, 64, 50, 4096))
	if got := c.Classify(k); got != task.Flexible {
		t.Fatalf("fresh kind classified %v, want Flexible (optimistic prior)", got)
	}
	// Unknown kinds are Flexible too, not a panic.
	if got := c.Classify(99); got != task.Flexible {
		t.Fatalf("unknown kind classified %v, want Flexible", got)
	}
}

// A kind that runs 3x slower when migrated must be pinned Sensitive, and
// exactly once: with migration stopped there are no further remote
// samples, so the classification is stable.
func TestPinOnRemoteSlowdown(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(10_000, 32, 20, 1024))
	var flips int
	for i := 0; i < 10; i++ {
		if f, _ := c.ObserveExec(k, false, 10_000, 0); f {
			flips++
		}
		if f, cl := c.ObserveExec(k, true, 30_000, 0); f {
			flips++
			if cl != task.Sensitive {
				t.Fatalf("flip landed on %v, want Sensitive", cl)
			}
		}
	}
	if c.Classify(k) != task.Sensitive {
		t.Fatalf("kind with 3x remote slowdown stayed %v", c.Classify(k))
	}
	if flips != 1 {
		t.Fatalf("flips = %d, want exactly 1 (hysteresis must hold the pin)", flips)
	}
	if c.Flips() != 1 || c.KindFlips(k) != 1 {
		t.Fatalf("flip counters = %d/%d, want 1/1", c.Flips(), c.KindFlips(k))
	}
}

// A kind whose migrated runs cost the same as home runs (a genuinely
// flexible task: one cold cache pass, amortized) must stay Flexible.
func TestFlexibleKindStaysFlexible(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(1_000_000, 64, 0, 65536))
	for i := 0; i < 20; i++ {
		c.ObserveExec(k, false, 1_000_000, 0)
		c.ObserveExec(k, true, 1_040_000, 0) // +4%: cold pass, well under PinRatio
	}
	if got := c.Classify(k); got != task.Flexible {
		t.Fatalf("near-par kind classified %v, want Flexible", got)
	}
	if c.Flips() != 0 {
		t.Fatalf("flips = %d, want 0", c.Flips())
	}
}

// The hysteresis band: a ratio between UnpinRatio and PinRatio never
// flips in either direction, so borderline kinds cannot oscillate.
func TestHysteresisBand(t *testing.T) {
	c := New(Config{Places: 4, PinRatio: 1.5, UnpinRatio: 1.2})
	k := c.Intern(Signature(10_000, 0, 0, 0))
	for i := 0; i < 50; i++ {
		c.ObserveExec(k, false, 10_000, 0)
		c.ObserveExec(k, true, 13_500, 0) // ratio 1.35, inside the band
	}
	if c.Flips() != 0 {
		t.Fatalf("in-band ratio flipped %d times, want 0", c.Flips())
	}
}

// A kind whose migrated service time barely moves (coarse work dwarfs
// the penalty) but whose data-locality penalty share is significant must
// still pin: this is the cache-miss/remote-ref criterion, the signal the
// total-service ratio is too noisy to carry.
func TestPinOnPenaltyFraction(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(1_000_000, 32, 20, 1024))
	var flips int
	for i := 0; i < 10; i++ {
		// Ratio 1.08 — far below PinRatio 1.5. Penalty share of home
		// service: home 0, away 8% — above PinPenaltyFrac 5%.
		if f, _ := c.ObserveExec(k, false, 1_000_000, 0); f {
			flips++
		}
		if f, cl := c.ObserveExec(k, true, 1_080_000, 80_000); f {
			flips++
			if cl != task.Sensitive {
				t.Fatalf("flip landed on %v, want Sensitive", cl)
			}
		}
	}
	if c.Classify(k) != task.Sensitive {
		t.Fatalf("kind with 8%% locality penalty stayed %v", c.Classify(k))
	}
	if flips != 1 {
		t.Fatalf("flips = %d, want exactly 1", flips)
	}
}

// A penalty the kind pays at home too (e.g. a cold footprint it always
// misses on) is not a migration cost: only the away-minus-home penalty
// delta counts toward the pin criterion.
func TestHomePenaltyDoesNotPin(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(1_000_000, 64, 0, 0))
	for i := 0; i < 20; i++ {
		c.ObserveExec(k, false, 1_000_000, 90_000)
		c.ObserveExec(k, true, 1_010_000, 100_000) // delta 1% of home service
	}
	if got := c.Classify(k); got != task.Flexible {
		t.Fatalf("kind with matching home/away penalties classified %v, want Flexible", got)
	}
	if c.Flips() != 0 {
		t.Fatalf("flips = %d, want 0", c.Flips())
	}
}

// Unpinning needs BOTH criteria back under their thresholds: a kind whose
// ratio recovered but whose penalty share is still high stays pinned.
func TestUnpinRequiresBothCriteriaClear(t *testing.T) {
	c := New(Config{Places: 4})
	k := c.Intern(Signature(10_000, 32, 20, 1024))
	for i := 0; i < 5; i++ {
		c.ObserveExec(k, false, 10_000, 0)
		c.ObserveExec(k, true, 30_000, 2_000) // pins via ratio 3.0
	}
	if c.Classify(k) != task.Sensitive {
		t.Fatalf("setup failed: kind not pinned")
	}
	// Away samples now at par on service but with 10% penalty share: the
	// penalty criterion holds the pin.
	for i := 0; i < 30; i++ {
		c.ObserveExec(k, false, 10_000, 0)
		c.ObserveExec(k, true, 10_500, 1_000)
	}
	if c.Classify(k) != task.Sensitive {
		t.Fatalf("unpinned while penalty share was above UnpinPenaltyFrac")
	}
	// Penalty gone too: now it may unpin.
	for i := 0; i < 40; i++ {
		c.ObserveExec(k, false, 10_000, 0)
		c.ObserveExec(k, true, 10_200, 0)
	}
	if c.Classify(k) != task.Flexible {
		t.Fatalf("kind with both criteria clear stayed %v", c.Classify(k))
	}
}

func TestMinSamplesGate(t *testing.T) {
	c := New(Config{Places: 4, MinSamples: 3})
	k := c.Intern(Signature(10_000, 0, 0, 0))
	// Two wildly slow remote runs but only two home samples: no flip yet.
	c.ObserveExec(k, false, 10_000, 0)
	c.ObserveExec(k, false, 10_000, 0)
	c.ObserveExec(k, true, 500_000, 0)
	c.ObserveExec(k, true, 500_000, 0)
	c.ObserveExec(k, true, 500_000, 0)
	if c.Flips() != 0 {
		t.Fatalf("flipped before MinSamples home observations")
	}
	if f, _ := c.ObserveExec(k, false, 10_000, 0); !f {
		t.Fatalf("third home sample should complete the evidence and pin")
	}
}

func TestChunkAdaptsDownWhenVictimsDrain(t *testing.T) {
	c := New(Config{Places: 4, ChunkWindow: 8})
	if c.Chunk(0) != 2 {
		t.Fatalf("initial chunk = %d, want the paper's 2", c.Chunk(0))
	}
	// Every steal empties its victim: fine surplus, chunk must shrink to 1.
	for i := 0; i < 16; i++ {
		c.ObserveSteal(0, 1, 10_000, 2, 0)
	}
	if got := c.Chunk(0); got != 1 {
		t.Fatalf("chunk after draining steals = %d, want 1", got)
	}
	// And never below MinChunk.
	for i := 0; i < 64; i++ {
		c.ObserveSteal(0, 1, 10_000, 1, 0)
	}
	if got := c.Chunk(0); got != 1 {
		t.Fatalf("chunk fell below MinChunk: %d", got)
	}
}

func TestChunkAdaptsUpWhenVictimsStayRich(t *testing.T) {
	c := New(Config{Places: 4, ChunkWindow: 8})
	for i := 0; i < 64; i++ {
		c.ObserveSteal(0, 1, 10_000, 2, 50)
	}
	if got := c.Chunk(0); got != 4 {
		t.Fatalf("chunk under rich victims = %d, want MaxChunk 4", got)
	}
	// Other places' controllers are independent.
	if got := c.Chunk(1); got != 2 {
		t.Fatalf("place 1 chunk moved to %d without observations", got)
	}
}

// Victim order is always a permutation of the other places, whatever the
// controller has observed.
func TestVictimOrderPermutationProperty(t *testing.T) {
	f := func(placesRaw, thiefRaw uint8, seed int64, obs []uint16) bool {
		places := int(placesRaw%15) + 2
		thief := int(thiefRaw) % places
		c := New(Config{Places: places})
		rng := rand.New(rand.NewSource(seed))
		for i, o := range obs {
			v := int(o) % places
			if v != thief {
				c.ObserveSteal(thief, v, int64(o)*100, i%3, i%5)
			}
		}
		order := c.VictimOrder(thief, rng)
		if len(order) != places-1 {
			return false
		}
		seen := make(map[int]bool, len(order))
		for _, p := range order {
			if p == thief || p < 0 || p >= places || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A victim with a timeout-laden latency history sorts behind clean ones;
// unobserved victims sort first.
func TestVictimOrderPrefersLowLatency(t *testing.T) {
	c := New(Config{Places: 4})
	for i := 0; i < 8; i++ {
		c.ObserveSteal(0, 1, 800_000, 1, 1) // flaky: timeout-scale latency
		c.ObserveSteal(0, 2, 10_000, 1, 1)  // clean round trips
	}
	for seed := int64(1); seed <= 20; seed++ {
		order := c.VictimOrder(0, rand.New(rand.NewSource(seed)))
		if order[0] != 3 {
			t.Fatalf("seed %d: unobserved victim not probed first: %v", seed, order)
		}
		if order[2] != 1 {
			t.Fatalf("seed %d: flaky victim not probed last: %v", seed, order)
		}
	}
}

// Uniform latencies must degenerate to the caller's randomized sweep:
// the controller may not impose a fixed order when it has no signal.
func TestVictimOrderUniformLatencyIsRandomized(t *testing.T) {
	c := New(Config{Places: 8})
	for v := 1; v < 8; v++ {
		c.ObserveSteal(0, v, 10_000, 1, 1)
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		order := c.VictimOrder(0, rand.New(rand.NewSource(seed)))
		seen[order[0]] = true
	}
	if len(seen) < 3 {
		t.Fatalf("uniform-latency first victims = %v, want randomized spread", seen)
	}
}

func TestVictimOrderSinglePlace(t *testing.T) {
	c := New(Config{Places: 1})
	if got := c.VictimOrder(0, rand.New(rand.NewSource(1))); got != nil {
		t.Fatalf("single place should yield nil order, got %v", got)
	}
}

// Shared-controller use from many goroutines: run under -race.
func TestConcurrentObservations(t *testing.T) {
	c := New(Config{Places: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := c.Intern(Signature(int64(1000*(g+1)), g, g%3, 64*g))
				c.Classify(k)
				c.ObserveExec(k, i%2 == 0, int64(1000+i), int64(i))
				c.ObserveSteal(g%8, (g+1)%8, int64(i), i%3, i%5)
				c.Chunk(g % 8)
				c.VictimOrder(g%8, rng)
			}
		}(g)
	}
	wg.Wait()
	if c.NumKinds() == 0 {
		t.Fatal("no kinds interned")
	}
}
