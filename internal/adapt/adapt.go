// Package adapt is the online locality-classification and steal-tuning
// controller behind the `adaptive` scheduling policy: DistWS without the
// programmer's @AnyPlaceTask annotations.
//
// The paper's central caveat (§XI) is that DistWS's 12–31% gains hinge on
// the programmer classifying tasks as locality-flexible or -sensitive; a
// wrong annotation silently forfeits them. This package replaces the
// annotation with feedback. Tasks are bucketed into *kinds* by the log2
// shape of their observable attributes (granularity, data footprint,
// migration payload, remote-reference count — never the annotation), and
// a per-run Controller consumes three scheduler signals:
//
//   - per-kind service times and data-locality penalties (cache-miss
//     stalls, remote-reference round trips), split by whether the task
//     ran at its home place or migrated, so both the gross remote
//     slowdown of a kind and the migration-attributable share of it are
//     measurable (the cache-miss and remote-reference penalties of
//     §VIII land in exactly this difference);
//   - steal outcomes per (thief place, victim place) pair — acquisition
//     latency and how much surplus the victim held — following the
//     latency-aware analysis of Gast et al.;
//   - how often recent steal chunks drained their victim dry versus left
//     it rich, the signal for tuning the chunk size around the paper's
//     fixed 2 (§V-B3).
//
// From these it (a) reclassifies kinds online between the shared FIFO
// deque and private LIFO deques with hysteresis so classifications
// converge instead of oscillating, (b) adapts each place's remote steal
// chunk size within [MinChunk, MaxChunk], and (c) orders victim sweeps
// by observed acquisition latency, with unobserved victims tried first
// (optimism drives exploration) and ties broken by the caller's RNG so
// the ordering degenerates to DistWS's randomized sweep until latencies
// actually differ.
//
// Every kind starts Flexible: the controller's prior is the non-selective
// end of the design space, and evidence of remote slowdown pins kinds
// Sensitive one by one. A pinned kind stops migrating, so it stops
// producing remote samples and its classification is stable — the flip
// count per kind is bounded in practice by one (see the convergence tests
// in internal/sim).
//
// All methods are safe for concurrent use (the real runtime's workers
// share one Controller); the simulator drives it single-threaded, where
// the uncontended mutex costs a few nanoseconds per event.
package adapt

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"distws/internal/task"
)

// Config parameterizes a Controller. The zero value of every field picks
// the default documented on it.
type Config struct {
	// Places is the cluster's place count (required, >= 1).
	Places int
	// PinRatio: a kind whose migrated service-time EWMA exceeds
	// PinRatio × its home EWMA is pinned Sensitive. Default 1.5 — high
	// enough that a migrated flexible task's one cold cache pass does not
	// pin it, low enough that per-pass remote-reference bursts do.
	PinRatio float64
	// UnpinRatio: a pinned kind whose ratio falls below UnpinRatio is
	// released back to Flexible. The gap between the two ratios is the
	// hysteresis band that prevents flip oscillation. Default 1.2.
	UnpinRatio float64
	// PinPenaltyFrac is the second, sharper pin criterion: a kind whose
	// migrated data-locality penalty (remote-reference round trips plus
	// cache-miss stalls, the penaltyNS input of ObserveExec) exceeds
	// this fraction of its home service time is pinned Sensitive even
	// when the total-service ratio stays under PinRatio. Coarse tasks
	// bury a large absolute migration penalty in an even larger compute
	// time; the penalty fraction resolves what the ratio cannot.
	// Default 0.05.
	PinPenaltyFrac float64
	// UnpinPenaltyFrac releases a pinned kind when its migrated penalty
	// falls below this fraction of home service; with UnpinRatio it forms
	// the hysteresis band. Default half of PinPenaltyFrac.
	UnpinPenaltyFrac float64
	// MinSamples is how many home AND migrated observations a kind needs
	// before it may be reclassified. Default 3.
	MinSamples int
	// Alpha is the EWMA weight of a new service-time sample. Default 0.25.
	Alpha float64
	// MinChunk/MaxChunk bound the adapted remote steal chunk size.
	// Defaults 1 and 4, bracketing the paper's fixed 2.
	MinChunk, MaxChunk int
	// ChunkWindow is how many successful steals a place accumulates
	// before reconsidering its chunk size. Default 16.
	ChunkWindow int
	// LatencyBucketNS quantizes victim latency EWMAs for ordering:
	// victims within one bucket are considered equally attractive and
	// keep their randomized relative order. Default 8192ns (under the
	// default network model a clean probe round trip is ≈10µs and a
	// timeout ≥4× that, so healthy victims share a bucket and flaky ones
	// fall behind).
	LatencyBucketNS int64

	// Unsynchronized skips the controller's internal mutex: the caller
	// guarantees every method call happens from a single goroutine. The
	// simulator's virtual-time loop qualifies and sets it for the
	// controllers it constructs — at one observation per probe and one
	// ordering per sweep, the uncontended lock/unlock atomics alone were
	// a visible slice of the adaptive policy's profile. The runtime's
	// shared controllers must leave it false.
	Unsynchronized bool
}

func (c Config) withDefaults() Config {
	if c.PinRatio == 0 {
		c.PinRatio = 1.5
	}
	if c.UnpinRatio == 0 {
		c.UnpinRatio = 1.2
	}
	if c.PinPenaltyFrac == 0 {
		c.PinPenaltyFrac = 0.05
	}
	if c.UnpinPenaltyFrac == 0 {
		c.UnpinPenaltyFrac = c.PinPenaltyFrac / 2
	}
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.Alpha == 0 {
		c.Alpha = 0.25
	}
	if c.MinChunk == 0 {
		c.MinChunk = 1
	}
	if c.MaxChunk == 0 {
		c.MaxChunk = 4
	}
	if c.ChunkWindow == 0 {
		c.ChunkWindow = 16
	}
	if c.LatencyBucketNS == 0 {
		c.LatencyBucketNS = 8192
	}
	return c
}

// Signature buckets a task's observable attributes into a kind key: the
// log2 magnitude of its cost, footprint, remote-reference count, and
// migration payload, one byte each. Tasks produced by the same program
// point at similar sizes collapse into one kind, while the annotation
// never enters the key — classifying it is the controller's job. Callers
// that do not know an attribute at spawn time (the real runtime never
// knows cost up front) pass zero for it.
func Signature(costNS int64, footprint, migMsgs, migBytes int) uint64 {
	return uint64(log2Bucket(costNS)) |
		uint64(log2Bucket(int64(footprint)))<<8 |
		uint64(log2Bucket(int64(migMsgs)))<<16 |
		uint64(log2Bucket(int64(migBytes)))<<24
}

func log2Bucket(v int64) uint8 {
	if v <= 0 {
		return 0
	}
	return uint8(bits.Len64(uint64(v)))
}

// kindStats is the per-kind classification state.
type kindStats struct {
	class     task.Class
	homeEW    float64 // EWMA service at the home place
	awayEW    float64 // EWMA service when migrated
	homePenEW float64 // EWMA data-locality penalty at home
	awayPenEW float64 // EWMA data-locality penalty when migrated
	homeN     int
	awayN     int
	flips     int64
}

// chunkState is one place's chunk-size controller.
type chunkState struct {
	chunk   int
	steals  int // successful steals in the current window
	emptied int // ...that drained the victim dry
	rich    int // ...that left the victim at least a chunk of surplus
}

// victimStat is one directed (thief place, victim place) link's state.
type victimStat struct {
	latEW float64 // EWMA acquisition latency, ns
	n     int
}

// Controller is the per-run feedback controller. Create with New; share
// one instance across every worker of the run.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	sigs   map[uint64]int32
	kinds  []kindStats
	flips  int64
	chunks []chunkState
	links  []victimStat // [thief*Places + victim]
	scores []int64      // AppendVictimOrder scratch (guarded by mu)

	// latShift is log2(LatencyBucketNS) when the bucket is a power of
	// two (the default is), else -1. Latency EWMAs are non-negative, so
	// quantizing with a shift is exact and spares AppendVictimOrder a
	// 64-bit division per victim per sweep.
	latShift int

	// Lock-free snapshots of the two values the scheduler reads on its
	// hot path. Classify runs once per spawn and Chunk once per steal
	// sweep; taking the controller mutex for a single read there is the
	// dominant adaptive overhead. The mutators (Intern, ObserveExec,
	// ObserveSteal) keep the mutex and mirror their decisions here:
	// classes is copy-on-write grown by Intern with entries stored
	// in-place on a flip, chunkNow is fixed-size per place.
	classes  atomic.Pointer[[]atomic.Int32] // dense kind id -> task.Class
	chunkNow []atomic.Int32                 // per-place current chunk size
}

// New returns a Controller for a cluster of cfg.Places places.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if cfg.Places < 1 {
		panic(fmt.Sprintf("adapt: Config.Places = %d, want >= 1", cfg.Places))
	}
	c := &Controller{
		cfg:      cfg,
		sigs:     make(map[uint64]int32),
		chunks:   make([]chunkState, cfg.Places),
		links:    make([]victimStat, cfg.Places*cfg.Places),
		chunkNow: make([]atomic.Int32, cfg.Places),
		latShift: -1,
	}
	if b := cfg.LatencyBucketNS; b > 0 && b&(b-1) == 0 {
		c.latShift = bits.TrailingZeros64(uint64(b))
	}
	for p := range c.chunks {
		c.chunks[p].chunk = 2 // the paper's §V-B3 starting point
		c.chunkNow[p].Store(2)
	}
	empty := make([]atomic.Int32, 0)
	c.classes.Store(&empty)
	return c
}

// Unsynchronized reports whether the controller was built with
// Config.Unsynchronized — callers that batch observations purely to
// amortize the internal mutex (the simulator) can feed per-probe calls
// directly when it is set.
func (c *Controller) Unsynchronized() bool {
	return c.cfg.Unsynchronized
}

// lock/unlock guard the controller's mutable state; they are the mutex
// unless Config.Unsynchronized promised single-goroutine use.
func (c *Controller) lock() {
	if !c.cfg.Unsynchronized {
		c.mu.Lock()
	}
}

func (c *Controller) unlock() {
	if !c.cfg.Unsynchronized {
		c.mu.Unlock()
	}
}

// Intern resolves a task signature to its kind id, registering it on
// first sight. Kind ids are dense and stable for the Controller's life.
func (c *Controller) Intern(sig uint64) int32 {
	c.lock()
	defer c.unlock()
	if id, ok := c.sigs[sig]; ok {
		return id
	}
	id := int32(len(c.kinds))
	c.sigs[sig] = id
	c.kinds = append(c.kinds, kindStats{class: task.Flexible})
	// Copy-on-write growth of the lock-free class table: concurrent
	// Classify calls see either the old or the new snapshot, both
	// consistent.
	old := *c.classes.Load()
	grown := make([]atomic.Int32, len(c.kinds))
	for i := range old {
		grown[i].Store(old[i].Load())
	}
	grown[id].Store(int32(task.Flexible))
	c.classes.Store(&grown)
	return id
}

// NumKinds returns how many distinct kinds have been interned.
func (c *Controller) NumKinds() int {
	c.lock()
	defer c.unlock()
	return len(c.kinds)
}

// Classify returns kind's current classification — the class the mapper
// feeds into Algorithm 1 lines 1–8 in place of the annotation. It runs
// once per spawn, so it reads the lock-free class snapshot instead of
// taking the controller mutex.
func (c *Controller) Classify(kind int32) task.Class {
	classes := *c.classes.Load()
	if kind < 0 || int(kind) >= len(classes) {
		return task.Flexible
	}
	return task.Class(classes[kind].Load())
}

// ObserveExec feeds one completed execution of a kind task into the
// classifier: serviceNS is the task's service time (execution plus the
// migration penalties it actually paid, excluding acquisition latency),
// penaltyNS is the portion of that service attributable to data
// locality — remote-reference round trips and cache-miss stalls — and
// migrated says whether the task ran away from its home place. In a
// real runtime penaltyNS comes from hardware counters (remote DRAM
// accesses, measured network round trips); producers without such
// instrumentation pass 0 and the classifier falls back to the coarser
// total-service ratio alone. When the observation flips the kind's
// classification, flipped is true and class is the new classification —
// callers surface the flip to metrics and tracing.
func (c *Controller) ObserveExec(kind int32, migrated bool, serviceNS, penaltyNS int64) (flipped bool, class task.Class) {
	if serviceNS < 0 {
		serviceNS = 0
	}
	if penaltyNS < 0 {
		penaltyNS = 0
	}
	s, pen := float64(serviceNS), float64(penaltyNS)
	c.lock()
	defer c.unlock()
	if int(kind) >= len(c.kinds) {
		return false, task.Flexible
	}
	k := &c.kinds[kind]
	if migrated {
		if k.awayN == 0 {
			k.awayEW, k.awayPenEW = s, pen
		} else {
			k.awayEW += c.cfg.Alpha * (s - k.awayEW)
			k.awayPenEW += c.cfg.Alpha * (pen - k.awayPenEW)
		}
		k.awayN++
	} else {
		if k.homeN == 0 {
			k.homeEW, k.homePenEW = s, pen
		} else {
			k.homeEW += c.cfg.Alpha * (s - k.homeEW)
			k.homePenEW += c.cfg.Alpha * (pen - k.homePenEW)
		}
		k.homeN++
	}
	if k.homeN < c.cfg.MinSamples || k.awayN < c.cfg.MinSamples || k.homeEW <= 0 {
		return false, k.class
	}
	// Two pin criteria, with the unpin thresholds of both forming one
	// hysteresis band: the total-service ratio catches gross remote
	// slowdowns without any penalty instrumentation, while the penalty
	// fraction (migration-attributable excess over the home baseline,
	// relative to home service) resolves coarse tasks whose large
	// absolute penalty is buried in an even larger compute time.
	ratio := k.awayEW / k.homeEW
	penFrac := (k.awayPenEW - k.homePenEW) / k.homeEW
	switch {
	case k.class == task.Flexible &&
		(ratio > c.cfg.PinRatio || penFrac > c.cfg.PinPenaltyFrac):
		k.class = task.Sensitive
	case k.class == task.Sensitive &&
		ratio < c.cfg.UnpinRatio && penFrac < c.cfg.UnpinPenaltyFrac:
		k.class = task.Flexible
	default:
		return false, k.class
	}
	k.flips++
	c.flips++
	(*c.classes.Load())[kind].Store(int32(k.class))
	return true, k.class
}

// KindState is an introspection snapshot of one kind's classifier
// state, for tests and exhibits; the scheduler itself only ever calls
// Classify.
type KindState struct {
	Class                task.Class
	HomeEW, AwayEW       float64
	HomePenEW, AwayPenEW float64
	HomeN, AwayN         int
	Flips                int64
}

// State returns kind's current classifier state.
func (c *Controller) State(kind int32) KindState {
	c.lock()
	defer c.unlock()
	if int(kind) >= len(c.kinds) {
		return KindState{Class: task.Flexible}
	}
	k := c.kinds[kind]
	return KindState{Class: k.class, HomeEW: k.homeEW, AwayEW: k.awayEW,
		HomePenEW: k.homePenEW, AwayPenEW: k.awayPenEW,
		HomeN: k.homeN, AwayN: k.awayN, Flips: k.flips}
}

// Flips returns the total number of reclassifications so far.
func (c *Controller) Flips() int64 {
	c.lock()
	defer c.unlock()
	return c.flips
}

// KindFlips returns how often kind has been reclassified.
func (c *Controller) KindFlips(kind int32) int64 {
	c.lock()
	defer c.unlock()
	if int(kind) >= len(c.kinds) {
		return 0
	}
	return c.kinds[kind].flips
}

// Chunk returns place's current remote steal chunk size. It runs once
// per steal sweep, so it reads the lock-free per-place snapshot instead
// of taking the controller mutex.
func (c *Controller) Chunk(place int) int {
	return int(c.chunkNow[place].Load())
}

// ObserveSteal feeds one remote steal outcome into the chunk and victim
// controllers: thief probed victim, waited latencyNS of acquisition
// latency (round trips, timeouts, transfer), and obtained got tasks
// leaving victimLeft behind in the victim's shared deque. A failed or
// empty probe is got == 0; its latency still trains the victim order
// (timeout-laden links fall behind clean ones).
func (c *Controller) ObserveSteal(thief, victim int, latencyNS int64, got, victimLeft int) {
	c.lock()
	defer c.unlock()
	c.observeStealLocked(thief, victim, latencyNS, got, victimLeft)
}

// StealObservation is one probe outcome for ObserveStealBatch, with the
// same fields ObserveSteal takes.
type StealObservation struct {
	Thief, Victim int
	LatencyNS     int64
	Got           int
	VictimLeft    int
}

// ObserveStealBatch feeds a sequence of probe outcomes under a single
// lock acquisition, in order — state-identical to calling ObserveSteal
// once per element. Sweep-scoped callers (the simulator observes every
// probe of a victim sweep before any of the sweep's state is read back)
// use it to pay the controller mutex once per sweep instead of once per
// probe, which profiling showed as the dominant adaptive overhead.
func (c *Controller) ObserveStealBatch(obs []StealObservation) {
	if len(obs) == 0 {
		return
	}
	c.lock()
	defer c.unlock()
	for i := range obs {
		o := &obs[i]
		c.latObserveLocked(o.Thief, o.Victim, o.LatencyNS)
		if o.Got > 0 {
			c.chunkObserveLocked(o.Thief, o.VictimLeft)
		}
	}
}

func (c *Controller) observeStealLocked(thief, victim int, latencyNS int64, got, victimLeft int) {
	c.latObserveLocked(thief, victim, latencyNS)
	if got > 0 {
		c.chunkObserveLocked(thief, victimLeft)
	}
}

// latObserveLocked is the per-probe hot path — most observations are
// failed probes (got == 0) whose only effect is the latency EWMA — and
// is kept small enough for the compiler to inline it into the
// ObserveStealBatch loop; a call per probe on top of three float ops
// showed up in sweep-heavy profiles. The successful-steal bookkeeping
// lives in chunkObserveLocked, off this path.
func (c *Controller) latObserveLocked(thief, victim int, latencyNS int64) {
	if latencyNS < 0 {
		latencyNS = 0
	}
	l := &c.links[thief*c.cfg.Places+victim]
	if l.n == 0 {
		l.latEW = float64(latencyNS)
	} else {
		l.latEW += c.cfg.Alpha * (float64(latencyNS) - l.latEW)
	}
	l.n++
}

func (c *Controller) chunkObserveLocked(thief, victimLeft int) {
	cs := &c.chunks[thief]
	cs.steals++
	if victimLeft == 0 {
		cs.emptied++
	} else if victimLeft >= cs.chunk {
		cs.rich++
	}
	if cs.steals < c.cfg.ChunkWindow {
		return
	}
	// Window full: if most chunks drained their victim, the chunk is
	// over-stealing fine surplus — shrink; if most victims stayed rich,
	// round trips are being wasted on repeat visits — grow.
	if cs.emptied*2 > cs.steals {
		cs.chunk--
	} else if cs.rich*4 > cs.steals*3 {
		cs.chunk++
	}
	if cs.chunk < c.cfg.MinChunk {
		cs.chunk = c.cfg.MinChunk
	}
	if cs.chunk > c.cfg.MaxChunk {
		cs.chunk = c.cfg.MaxChunk
	}
	c.chunkNow[thief].Store(int32(cs.chunk))
	cs.steals, cs.emptied, cs.rich = 0, 0, 0
}

// AppendVictimOrder appends thief's victim sweep order to dst and
// returns the extended slice: every place except thief exactly once,
// randomly permuted by rng, then stably sorted by quantized observed
// acquisition latency. Unobserved victims sort first (optimistic
// exploration); victims within one latency bucket keep their randomized
// relative order, so with uniform latencies the order is exactly the
// DistWS randomized sweep. rng is consumed identically on every call,
// preserving the simulator's determinism.
func (c *Controller) AppendVictimOrder(dst []int, thief int, rng *rand.Rand) []int {
	start := len(dst)
	for p := 0; p < c.cfg.Places; p++ {
		if p != thief {
			dst = append(dst, p)
		}
	}
	order := dst[start:]
	rng.Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	c.lock()
	base := thief * c.cfg.Places
	// Quantize each victim's observed latency once up front — the
	// insertion sort below would otherwise recompute the division (and
	// reload the link state) on every comparison, which profiling showed
	// as the controller's largest per-sweep cost. The scratch lives on
	// the Controller (mutex-guarded, like the link state it caches).
	if cap(c.scores) < len(order) {
		c.scores = make([]int64, len(order))
	}
	scores := c.scores[:len(order)]
	shift, bucket := c.latShift, c.cfg.LatencyBucketNS
	for i, v := range order {
		l := &c.links[base+v]
		switch {
		case l.n == 0:
			scores[i] = 0 // unobserved: optimistic exploration, sorts first
		case shift >= 0:
			scores[i] = 1 + int64(l.latEW)>>shift
		default:
			scores[i] = 1 + int64(l.latEW)/bucket
		}
	}
	// Stable insertion sort: allocation-free (this runs once per steal
	// sweep) and the order is at most places-1 elements long.
	for i := 1; i < len(order); i++ {
		v, s := order[i], scores[i]
		j := i
		for j > 0 && scores[j-1] > s {
			order[j] = order[j-1]
			scores[j] = scores[j-1]
			j--
		}
		order[j], scores[j] = v, s
	}
	c.unlock()
	return dst
}

// VictimOrder is AppendVictimOrder into a fresh slice.
func (c *Controller) VictimOrder(thief int, rng *rand.Rand) []int {
	if c.cfg.Places <= 1 {
		return nil
	}
	return c.AppendVictimOrder(make([]int, 0, c.cfg.Places-1), thief, rng)
}
