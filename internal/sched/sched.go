// Package sched encodes the scheduling *decisions* of the paper — task
// mapping (Algorithm 1 lines 1–8), the work-finding order (lines 9–29),
// victim selection and steal chunk sizes — as pure functions shared by the
// real goroutine runtime (internal/core) and the discrete-event simulator
// (internal/sim). Keeping the decision logic in one place guarantees the
// simulator evaluates exactly the policy the library ships.
//
// Six policies are provided:
//
//   - X10WS: the baseline X10 scheduler — help-first work stealing strictly
//     within a place; no distributed steals (paper §III).
//   - DistWS: the paper's contribution — locality-sensitive tasks pinned to
//     private deques, locality-flexible tasks mapped to the place's shared
//     deque unless the place is idle or under-utilized, distributed steals
//     of flexible tasks only, in chunks of two.
//   - DistWSNS: the non-selective ablation (§VIII-Q3) — tasks mapped round
//     robin between private and shared deques regardless of class, so any
//     task may be stolen remotely.
//   - RandomWS: classic randomized distributed work stealing (the UTS
//     baseline in §X) — every task is stealable, victims chosen uniformly.
//   - LifelineWS: Saraswat-style lifeline-based global load balancing
//     (§X) — random stealing first, then quiesce on a hypercube lifeline
//     graph and wait for work to be pushed.
//   - Adaptive: DistWS's mapping with the programmer's annotation replaced
//     by an online classification from internal/adapt — the runtime
//     observes per-kind remote slowdowns and pins kinds itself, and also
//     tunes the steal chunk size and victim order from feedback. The
//     decision functions here treat Adaptive exactly like DistWS; the
//     class fed into MapTask is the controller's, not the programmer's.
package sched

import (
	"fmt"
	"math/rand"
	"strings"

	"distws/internal/task"
)

// Kind identifies a scheduling policy.
type Kind uint8

const (
	X10WS Kind = iota
	DistWS
	DistWSNS
	RandomWS
	LifelineWS
	Adaptive
	numKinds
)

var kindNames = [...]string{
	X10WS:      "X10WS",
	DistWS:     "DistWS",
	DistWSNS:   "DistWS-NS",
	RandomWS:   "RandomWS",
	LifelineWS: "LifelineWS",
	Adaptive:   "Adaptive",
}

// String returns the paper's name for the policy.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a defined policy.
func Valid(k Kind) bool { return k < numKinds }

// Kinds lists all policies in presentation order.
func Kinds() []Kind {
	return []Kind{X10WS, DistWS, DistWSNS, RandomWS, LifelineWS, Adaptive}
}

// Parse resolves a case-insensitive policy name ("distws", "x10ws",
// "distws-ns", "nonselective", "random", "lifeline", "adaptive").
func Parse(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "x10ws", "x10":
		return X10WS, nil
	case "distws", "dist":
		return DistWS, nil
	case "distws-ns", "distwsns", "ns", "nonselective":
		return DistWSNS, nil
	case "randomws", "random":
		return RandomWS, nil
	case "lifelinews", "lifeline":
		return LifelineWS, nil
	case "adaptive", "adapt":
		return Adaptive, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q (want x10ws, distws, distws-ns, random, lifeline, or adaptive)", s)
	}
}

// Target says which deque flavour a freshly spawned task lands in.
type Target uint8

const (
	// TargetPrivate maps the task to a worker's private deque at its home
	// place: local LIFO execution, stealable only by co-located workers.
	TargetPrivate Target = iota
	// TargetShared maps the task to the home place's shared FIFO deque:
	// available to local workers and to remote thieves.
	TargetShared
)

// String names the target for diagnostics.
func (t Target) String() string {
	if t == TargetPrivate {
		return "private"
	}
	return "shared"
}

// PlaceLoad is the runtime load information Algorithm 1 consults when
// mapping a flexible task (paper §V-B1): whether the place has running
// activities, how many workers are idle, and how much room remains before
// the dynamic-thread ceiling.
type PlaceLoad struct {
	Active     bool // place has at least one running activity
	Spares     int  // workers currently idle / searching for work
	Size       int  // running + queued activities at the place
	MaxThreads int  // upper bound on concurrent activities per place
}

// MapTask implements the task-mapping half of Algorithm 1 (lines 1–8) for
// every policy. seq is a monotonically increasing per-place spawn counter
// used only by DistWS-NS's round-robin mapping.
func MapTask(k Kind, class task.Class, load PlaceLoad, seq uint64) Target {
	switch k {
	case X10WS:
		// Stock X10: every task goes to a private deque; there is no
		// shared deque and no distributed stealing.
		return TargetPrivate
	case DistWS, Adaptive:
		// Adaptive maps exactly like DistWS; the difference is upstream —
		// class is the adapt controller's online classification rather
		// than the programmer's annotation.
		if class == task.Sensitive {
			return TargetPrivate
		}
		// Lines 5–8: on an idle or under-utilized place, map even a
		// flexible task to a private deque — it prioritizes local cores
		// and spares idle local workers a steal through the shared deque.
		if !load.Active || load.Spares > 0 || load.Size < load.MaxThreads {
			return TargetPrivate
		}
		return TargetShared
	case DistWSNS:
		// §VIII-Q3: for a fair non-selective comparison, tasks alternate
		// between private and shared deques regardless of classification,
		// so both local and remote execution opportunities exist.
		if seq%2 == 0 {
			return TargetShared
		}
		return TargetPrivate
	case RandomWS, LifelineWS:
		// Classic distributed stealing: one stealable pool per place.
		return TargetShared
	default:
		panic(fmt.Sprintf("sched: MapTask on invalid policy %v", k))
	}
}

// RemoteStealing reports whether policy k performs cross-place steals.
func RemoteStealing(k Kind) bool { return k != X10WS }

// RemoteChunk returns how many tasks a distributed steal takes at once.
// The paper's empirical sweet spot is 2 for both structured and bursty
// task graphs (§V-B3); the UTS baselines steal single tasks. Adaptive
// starts at the same 2 — its controller then moves each place's chunk
// within [1, 4] from steal feedback, overriding this static value.
func RemoteChunk(k Kind) int {
	switch k {
	case DistWS, DistWSNS, Adaptive:
		return 2
	case RandomWS, LifelineWS:
		return 1
	default:
		return 0
	}
}

// LocalChunk returns how many tasks an intra-place steal takes: always one
// (§V-B3: stealing multiple tasks locally showed no improvement).
func LocalChunk(Kind) int { return 1 }

// StealHalf returns how many tasks a donor hands over from a queue of n
// under the receiver-initiated protocol's steal-half chunking (WSPDR
// style): half the queue rounded up, so a donor with any flexible work
// always donates at least one task and the two sides end up balanced.
// Unlike RemoteChunk's fixed sizes, the donation scales with the victim's
// actual surplus — deep queues split in one round trip.
func StealHalf(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + 1) / 2
}

// VictimOrder returns the order in which a thief at place self probes the
// other places' shared deques. DistWS and DistWS-NS sweep all places in a
// randomized order (the thief tracks visited places per Algorithm 1 lines
// 22–29); RandomWS and LifelineWS sample victims uniformly at random with
// replacement, which is modelled here as a random permutation as well. The
// result never contains self and covers every other place exactly once.
func VictimOrder(k Kind, self, places int, rng *rand.Rand) []int {
	if places <= 1 || !RemoteStealing(k) {
		return nil
	}
	return AppendVictimOrder(make([]int, 0, places-1), k, self, places, rng)
}

// AppendVictimOrder appends the same victim ordering VictimOrder returns to
// dst and returns the extended slice. It draws from rng identically, so the
// two forms are interchangeable; the append form lets hot callers (one
// sweep per failed steal) reuse a scratch buffer instead of allocating a
// permutation per sweep.
func AppendVictimOrder(dst []int, k Kind, self, places int, rng *rand.Rand) []int {
	if places <= 1 || !RemoteStealing(k) {
		return dst
	}
	start := len(dst)
	for p := 0; p < places; p++ {
		if p != self {
			dst = append(dst, p)
		}
	}
	order := dst[start:]
	rng.Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return dst
}

// StealDistance returns the distance between a thief and its victim in
// the linear place ordering — the x-axis of steal-distance histograms
// (the paper's cluster is a single switch, so hop count is uniform and
// index distance is the meaningful locality measure: how far from its
// home community a stolen task landed). Negative only on invalid input.
func StealDistance(thief, victim int) int {
	d := thief - victim
	if d < 0 {
		d = -d
	}
	return d
}

// Lifelines returns the outgoing lifeline edges of place self in a
// hypercube lifeline graph over places nodes (Saraswat et al.): neighbours
// obtained by flipping each bit position below the next power of two,
// skipping non-existent nodes.
func Lifelines(self, places int) []int {
	if places <= 1 {
		return nil
	}
	var out []int
	for bit := 1; bit < places; bit <<= 1 {
		n := self ^ bit
		if n < places {
			out = append(out, n)
		}
	}
	return out
}

// FailedStealQuiesceThreshold returns after how many consecutive failed
// steal sweeps a place marks itself idle (paper §VI-B: n, the number of
// worker threads per place).
func FailedStealQuiesceThreshold(workersPerPlace int) int {
	if workersPerPlace < 1 {
		return 1
	}
	return workersPerPlace
}
