package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distws/internal/task"
)

func busyLoad() PlaceLoad {
	return PlaceLoad{Active: true, Spares: 0, Size: 8, MaxThreads: 8}
}

func TestMapTaskX10WSAlwaysPrivate(t *testing.T) {
	for _, class := range []task.Class{task.Sensitive, task.Flexible} {
		if got := MapTask(X10WS, class, busyLoad(), 0); got != TargetPrivate {
			t.Fatalf("X10WS maps %v to %v, want private", class, got)
		}
	}
}

func TestMapTaskDistWSSensitivePrivate(t *testing.T) {
	// Sensitive tasks are pinned no matter the load.
	loads := []PlaceLoad{busyLoad(), {Active: false}, {Active: true, Spares: 3}}
	for _, load := range loads {
		if got := MapTask(DistWS, task.Sensitive, load, 0); got != TargetPrivate {
			t.Fatalf("DistWS maps sensitive under %+v to %v, want private", load, got)
		}
	}
}

func TestMapTaskDistWSFlexible(t *testing.T) {
	cases := []struct {
		name string
		load PlaceLoad
		want Target
	}{
		{"fully utilized -> shared", busyLoad(), TargetShared},
		{"idle place -> private", PlaceLoad{Active: false, Size: 8, MaxThreads: 8}, TargetPrivate},
		{"spare workers -> private", PlaceLoad{Active: true, Spares: 2, Size: 8, MaxThreads: 8}, TargetPrivate},
		{"room for threads -> private", PlaceLoad{Active: true, Spares: 0, Size: 3, MaxThreads: 8}, TargetPrivate},
	}
	for _, tc := range cases {
		if got := MapTask(DistWS, task.Flexible, tc.load, 0); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMapTaskDistWSNSRoundRobin(t *testing.T) {
	sawShared, sawPrivate := false, false
	for seq := uint64(0); seq < 4; seq++ {
		switch MapTask(DistWSNS, task.Sensitive, busyLoad(), seq) {
		case TargetShared:
			sawShared = true
		case TargetPrivate:
			sawPrivate = true
		}
	}
	if !sawShared || !sawPrivate {
		t.Fatalf("DistWS-NS round robin should alternate targets: shared=%v private=%v",
			sawShared, sawPrivate)
	}
	// Classification must be ignored: same seq, different class, same target.
	for seq := uint64(0); seq < 4; seq++ {
		a := MapTask(DistWSNS, task.Sensitive, busyLoad(), seq)
		b := MapTask(DistWSNS, task.Flexible, busyLoad(), seq)
		if a != b {
			t.Fatalf("DistWS-NS must ignore class: seq=%d got %v vs %v", seq, a, b)
		}
	}
}

// Adaptive maps identically to DistWS for any (class, load) pair: the
// policy's novelty is who supplies the class, not the mapping itself.
func TestMapTaskAdaptiveMatchesDistWS(t *testing.T) {
	loads := []PlaceLoad{
		busyLoad(),
		{Active: false, Size: 8, MaxThreads: 8},
		{Active: true, Spares: 2, Size: 8, MaxThreads: 8},
		{Active: true, Spares: 0, Size: 3, MaxThreads: 8},
	}
	for _, class := range []task.Class{task.Sensitive, task.Flexible} {
		for _, load := range loads {
			a := MapTask(Adaptive, class, load, 0)
			d := MapTask(DistWS, class, load, 0)
			if a != d {
				t.Fatalf("Adaptive maps (%v, %+v) to %v, DistWS to %v", class, load, a, d)
			}
		}
	}
}

func TestMapTaskRandomAndLifelineShared(t *testing.T) {
	for _, k := range []Kind{RandomWS, LifelineWS} {
		for _, class := range []task.Class{task.Sensitive, task.Flexible} {
			if got := MapTask(k, class, busyLoad(), 0); got != TargetShared {
				t.Fatalf("%v maps %v to %v, want shared", k, class, got)
			}
		}
	}
}

func TestRemoteStealing(t *testing.T) {
	if RemoteStealing(X10WS) {
		t.Fatalf("X10WS must not steal remotely")
	}
	for _, k := range []Kind{DistWS, DistWSNS, RandomWS, LifelineWS, Adaptive} {
		if !RemoteStealing(k) {
			t.Fatalf("%v should steal remotely", k)
		}
	}
}

func TestChunks(t *testing.T) {
	if got := RemoteChunk(DistWS); got != 2 {
		t.Fatalf("DistWS RemoteChunk = %d, want 2 (paper §V-B3)", got)
	}
	if got := RemoteChunk(DistWSNS); got != 2 {
		t.Fatalf("DistWS-NS RemoteChunk = %d, want 2", got)
	}
	if got := RemoteChunk(RandomWS); got != 1 {
		t.Fatalf("RandomWS RemoteChunk = %d, want 1", got)
	}
	if got := RemoteChunk(Adaptive); got != 2 {
		t.Fatalf("Adaptive RemoteChunk = %d, want the paper's 2 as starting point", got)
	}
	if got := RemoteChunk(X10WS); got != 0 {
		t.Fatalf("X10WS RemoteChunk = %d, want 0", got)
	}
	if got := LocalChunk(DistWS); got != 1 {
		t.Fatalf("LocalChunk = %d, want 1", got)
	}
}

func TestVictimOrderCoversAllOtherPlaces(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	order := VictimOrder(DistWS, 3, 8, rng)
	if len(order) != 7 {
		t.Fatalf("len(order) = %d, want 7", len(order))
	}
	seen := map[int]bool{}
	for _, p := range order {
		if p == 3 {
			t.Fatalf("victim order contains self")
		}
		if p < 0 || p >= 8 {
			t.Fatalf("victim %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("victim %d repeated", p)
		}
		seen[p] = true
	}
}

func TestVictimOrderDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := VictimOrder(DistWS, 0, 1, rng); got != nil {
		t.Fatalf("single place should yield nil order, got %v", got)
	}
	if got := VictimOrder(X10WS, 0, 8, rng); got != nil {
		t.Fatalf("X10WS should yield nil order, got %v", got)
	}
}

// Property: victim order is a permutation of all places except self.
func TestVictimOrderPermutationProperty(t *testing.T) {
	f := func(selfRaw, placesRaw uint8, seed int64) bool {
		places := int(placesRaw%16) + 2
		self := int(selfRaw) % places
		rng := rand.New(rand.NewSource(seed))
		order := VictimOrder(DistWS, self, places, rng)
		if len(order) != places-1 {
			return false
		}
		seen := make(map[int]bool, len(order))
		for _, p := range order {
			if p == self || p < 0 || p >= places || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLifelinesHypercube(t *testing.T) {
	// 8 places: place 0's hypercube neighbours are 1, 2, 4.
	got := Lifelines(0, 8)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Lifelines(0,8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lifelines(0,8) = %v, want %v", got, want)
		}
	}
}

func TestLifelinesNonPowerOfTwo(t *testing.T) {
	// 6 places: place 5 (101b) flips bits -> 4 (100b), 7 (skip), 1 (001b).
	got := Lifelines(5, 6)
	for _, n := range got {
		if n < 0 || n >= 6 || n == 5 {
			t.Fatalf("invalid lifeline neighbour %d in %v", n, got)
		}
	}
	if len(got) == 0 {
		t.Fatalf("place in a 6-node graph should have lifelines")
	}
}

func TestLifelinesSinglePlace(t *testing.T) {
	if got := Lifelines(0, 1); got != nil {
		t.Fatalf("Lifelines(0,1) = %v, want nil", got)
	}
}

// Property: lifeline graphs are symmetric within power-of-two clusters
// (i is a lifeline of j iff j is a lifeline of i).
func TestLifelinesSymmetryProperty(t *testing.T) {
	for _, places := range []int{2, 4, 8, 16} {
		adj := make(map[[2]int]bool)
		for p := 0; p < places; p++ {
			for _, n := range Lifelines(p, places) {
				adj[[2]int{p, n}] = true
			}
		}
		for e := range adj {
			if !adj[[2]int{e[1], e[0]}] {
				t.Fatalf("lifeline edge %v not symmetric in %d places", e, places)
			}
		}
	}
}

func TestParse(t *testing.T) {
	cases := map[string]Kind{
		"x10ws": X10WS, "X10WS": X10WS, "distws": DistWS,
		"DistWS-NS": DistWSNS, "nonselective": DistWSNS,
		"random": RandomWS, "lifeline": LifelineWS,
		"adaptive": Adaptive, "Adapt": Adaptive,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatalf("Parse of unknown policy should error")
	}
}

func TestKindString(t *testing.T) {
	if DistWS.String() != "DistWS" || DistWSNS.String() != "DistWS-NS" {
		t.Fatalf("unexpected names: %v %v", DistWS, DistWSNS)
	}
	if Kind(250).String() == "" {
		t.Fatalf("out-of-range kind should still print")
	}
}

func TestKindsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%v.String()) = %v, %v", k, got, err)
		}
	}
}

func TestQuiesceThreshold(t *testing.T) {
	if got := FailedStealQuiesceThreshold(8); got != 8 {
		t.Fatalf("threshold(8) = %d, want 8", got)
	}
	if got := FailedStealQuiesceThreshold(0); got != 1 {
		t.Fatalf("threshold(0) = %d, want 1", got)
	}
}

func TestStealDistance(t *testing.T) {
	cases := []struct{ thief, victim, want int }{
		{0, 0, 0},
		{3, 1, 2},
		{1, 3, 2},
		{0, 15, 15},
	}
	for _, c := range cases {
		if got := StealDistance(c.thief, c.victim); got != c.want {
			t.Fatalf("StealDistance(%d, %d) = %d, want %d", c.thief, c.victim, got, c.want)
		}
	}
}
