// Package fault provides the deterministic, seed-driven fault model the
// runtime (internal/core), the transports (internal/comm) and the
// discrete-event simulator (internal/sim) all consume. A Plan declares
// what goes wrong — place crashes at a virtual time or task-count step,
// per-link message loss, latency spikes — and an Injector turns the plan
// into individual yes/no decisions.
//
// Decisions are stateless hashes of (seed, link, decision index), so the
// simulator, which asks in a fixed order, gets an identical fault schedule
// on every run with the same seed: chaos tests can assert exact counter
// values. The real runtime asks from concurrently racing goroutines, so
// there the plan is reproducible in distribution rather than per message.
package fault

import (
	"fmt"
	"sync/atomic"
)

// Crash schedules the fail-stop of one place. A crashed place stops
// executing and answering steals; work queued there must be re-executed
// elsewhere. Exactly one of the two triggers should be set.
type Crash struct {
	// Place is the place that fails.
	Place int
	// AtVirtualNS is the crash instant in simulator virtual time
	// (consumed by internal/sim). Zero or negative means "not
	// time-triggered".
	AtVirtualNS int64
	// AfterTasks crashes the place once it has executed this many tasks
	// (consumed by internal/core, which has no virtual clock). Zero or
	// negative means "not step-triggered".
	AfterTasks int64
}

// Link describes the fault behaviour of one directed place pair.
// From/To of -1 match any place.
type Link struct {
	From, To int
	// DropProb is the probability in [0,1] that a message on the link is
	// silently lost.
	DropProb float64
	// SpikeProb is the probability in [0,1] that a message suffers an
	// extra latency spike of SpikeNS.
	SpikeProb float64
	// SpikeNS is the spike magnitude in nanoseconds.
	SpikeNS int64
}

// Partition splits the cluster into two sides for a time window:
// messages crossing the cut are silently lost while the window is
// active, then flow again after it heals. Time is interpreted in the
// consumer's clock — virtual nanoseconds in the simulator, wall
// nanoseconds since run start in the goroutine/TCP runtime — so the
// same plan describes the same schedule in both.
type Partition struct {
	// GroupA lists the places on one side of the cut; every other place
	// forms the other side.
	GroupA []int
	// AtNS is when the partition takes effect (must be > 0).
	AtNS int64
	// HealNS is when the partition heals. Zero means it never heals.
	HealNS int64
}

// Gray is a gray failure: a persistent latency degradation on a link
// set, active for a time window. From/To of -1 match any place, like
// Link.
type Gray struct {
	From, To int
	// ExtraNS is the added one-way latency in nanoseconds.
	ExtraNS int64
	// AtNS/UntilNS bound the active window. AtNS <= 0 means "from the
	// start"; UntilNS <= 0 means "until the end of the run".
	AtNS    int64
	UntilNS int64
}

// Flap schedules crash/recover cycles for one place: down for DownNS,
// up for UpNS, repeated Cycles times starting at AtNS.
type Flap struct {
	Place int
	// AtNS is the first failure instant (must be > 0).
	AtNS int64
	// DownNS is how long each outage lasts (must be > 0).
	DownNS int64
	// UpNS is how long the place stays recovered between outages.
	UpNS int64
	// Cycles is the number of outages (must be >= 1).
	Cycles int
}

// DownAt reports whether the flapping place is inside one of its
// scheduled outages at nowNS.
func (f Flap) DownAt(nowNS int64) bool {
	if nowNS < f.AtNS {
		return false
	}
	period := f.DownNS + f.UpNS
	for i := 0; i < f.Cycles; i++ {
		start := f.AtNS + int64(i)*period
		if nowNS >= start && nowNS < start+f.DownNS {
			return true
		}
	}
	return false
}

// Join schedules a place to be absent at startup and join the cluster
// at AtNS.
type Join struct {
	Place int
	AtNS  int64
}

// Drain schedules a graceful departure: at AtNS the place refuses new
// steals, offloads its queued work to survivors, finishes its running
// tasks, and leaves without triggering crash recovery.
type Drain struct {
	Place int
	AtNS  int64
}

// Plan is a complete declarative fault schedule for one run. The zero
// value (and a nil *Plan) is the fault-free plan.
type Plan struct {
	// Seed drives every probabilistic decision. Zero picks 1.
	Seed int64
	// Crashes lists the places that fail and when.
	Crashes []Crash
	// DropProb is the cluster-wide message-loss probability, applied to
	// links without a more specific entry in Links.
	DropProb float64
	// SpikeProb/SpikeNS is the cluster-wide latency-spike behaviour,
	// applied to links without a more specific entry in Links.
	SpikeProb float64
	SpikeNS   int64
	// Links overrides the cluster-wide probabilities per directed link.
	Links []Link

	// DupProb is the probability in [0,1] that a message is delivered
	// twice. Duplicates are absorbed by the receivers' idempotence
	// (batch-id dedup, steal-chunk accounting) and surface only in the
	// DuplicatedMessages counter.
	DupProb float64
	// Partitions lists timed network splits.
	Partitions []Partition
	// Grays lists persistent latency degradations.
	Grays []Gray
	// Flaps lists crash/recover cycles.
	Flaps []Flap
	// Joins lists places that start absent and join at runtime.
	Joins []Join
	// Drains lists places that depart gracefully at runtime.
	Drains []Drain
}

// Validate checks the plan against a cluster of places places: crash
// targets must exist, probabilities must be in [0,1], and at least one
// place must survive.
func (p *Plan) Validate(places int) error {
	if p == nil {
		return nil
	}
	crashed := make(map[int]bool)
	for _, c := range p.Crashes {
		if c.Place < 0 || c.Place >= places {
			return fmt.Errorf("fault: crash of invalid place %d (have %d places)", c.Place, places)
		}
		if c.AtVirtualNS <= 0 && c.AfterTasks <= 0 {
			return fmt.Errorf("fault: crash of place %d has no trigger (set AtVirtualNS or AfterTasks)", c.Place)
		}
		crashed[c.Place] = true
	}
	if len(crashed) >= places {
		return fmt.Errorf("fault: plan crashes all %d places; at least one must survive", places)
	}
	if err := checkProb("DropProb", p.DropProb); err != nil {
		return err
	}
	if err := checkProb("SpikeProb", p.SpikeProb); err != nil {
		return err
	}
	for _, l := range p.Links {
		if err := checkProb("link DropProb", l.DropProb); err != nil {
			return err
		}
		if err := checkProb("link SpikeProb", l.SpikeProb); err != nil {
			return err
		}
	}
	if err := checkProb("DupProb", p.DupProb); err != nil {
		return err
	}
	for _, part := range p.Partitions {
		if len(part.GroupA) == 0 || len(part.GroupA) >= places {
			return fmt.Errorf("fault: partition GroupA has %d places, want 1..%d", len(part.GroupA), places-1)
		}
		for _, m := range part.GroupA {
			if m < 0 || m >= places {
				return fmt.Errorf("fault: partition of invalid place %d (have %d places)", m, places)
			}
		}
		if part.AtNS <= 0 {
			return fmt.Errorf("fault: partition AtNS = %d, want > 0", part.AtNS)
		}
		if part.HealNS != 0 && part.HealNS <= part.AtNS {
			return fmt.Errorf("fault: partition HealNS = %d, want > AtNS (%d) or 0", part.HealNS, part.AtNS)
		}
	}
	for _, g := range p.Grays {
		if g.From < -1 || g.From >= places || g.To < -1 || g.To >= places {
			return fmt.Errorf("fault: gray link %d→%d out of range (have %d places)", g.From, g.To, places)
		}
		if g.ExtraNS <= 0 {
			return fmt.Errorf("fault: gray ExtraNS = %d, want > 0", g.ExtraNS)
		}
		if g.UntilNS > 0 && g.UntilNS <= g.AtNS {
			return fmt.Errorf("fault: gray UntilNS = %d, want > AtNS (%d) or 0", g.UntilNS, g.AtNS)
		}
	}
	flapped := make(map[int]bool)
	for _, f := range p.Flaps {
		if f.Place < 0 || f.Place >= places {
			return fmt.Errorf("fault: flap of invalid place %d (have %d places)", f.Place, places)
		}
		if f.AtNS <= 0 || f.DownNS <= 0 || f.Cycles < 1 {
			return fmt.Errorf("fault: flap of place %d needs AtNS > 0, DownNS > 0, Cycles >= 1", f.Place)
		}
		if f.Cycles > 1 && f.UpNS <= 0 {
			return fmt.Errorf("fault: flap of place %d has %d cycles but UpNS <= 0", f.Place, f.Cycles)
		}
		flapped[f.Place] = true
	}
	joined := make(map[int]bool)
	for _, j := range p.Joins {
		if j.Place < 0 || j.Place >= places {
			return fmt.Errorf("fault: join of invalid place %d (have %d places)", j.Place, places)
		}
		if j.AtNS <= 0 {
			return fmt.Errorf("fault: join of place %d needs AtNS > 0", j.Place)
		}
		if joined[j.Place] {
			return fmt.Errorf("fault: place %d joins twice", j.Place)
		}
		joined[j.Place] = true
	}
	if len(joined) >= places {
		return fmt.Errorf("fault: every place joins late; at least one must be present at start")
	}
	gone := make(map[int]bool, len(crashed))
	for pl := range crashed {
		gone[pl] = true
	}
	for _, d := range p.Drains {
		if d.Place < 0 || d.Place >= places {
			return fmt.Errorf("fault: drain of invalid place %d (have %d places)", d.Place, places)
		}
		if d.AtNS <= 0 {
			return fmt.Errorf("fault: drain of place %d needs AtNS > 0", d.Place)
		}
		gone[d.Place] = true
	}
	if len(gone) >= places {
		return fmt.Errorf("fault: plan crashes or drains all %d places; at least one must survive", places)
	}
	return nil
}

func checkProb(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("fault: %s = %v, want [0,1]", name, v)
	}
	return nil
}

// CrashOf returns the crash entry for place, if the plan has one.
func (p *Plan) CrashOf(place int) (Crash, bool) {
	if p == nil {
		return Crash{}, false
	}
	for _, c := range p.Crashes {
		if c.Place == place {
			return c, true
		}
	}
	return Crash{}, false
}

// Injector evaluates a Plan one decision at a time. All methods are safe
// for concurrent use and are no-ops on a nil receiver, so fault-free code
// paths need no branching.
type Injector struct {
	plan  Plan
	nonce atomic.Uint64
}

// NewInjector builds an injector for plan. A nil plan yields a nil
// injector, whose methods all report "no fault".
func NewInjector(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	in := &Injector{plan: *plan}
	if in.plan.Seed == 0 {
		in.plan.Seed = 1
	}
	return in
}

// link resolves the effective fault behaviour of the from→to link.
func (in *Injector) link(from, to int) Link {
	for _, l := range in.plan.Links {
		if (l.From == -1 || l.From == from) && (l.To == -1 || l.To == to) {
			return l
		}
	}
	return Link{
		From: from, To: to,
		DropProb:  in.plan.DropProb,
		SpikeProb: in.plan.SpikeProb,
		SpikeNS:   in.plan.SpikeNS,
	}
}

// Drop decides whether the next message from→to is lost.
func (in *Injector) Drop(from, to int) bool {
	if in == nil {
		return false
	}
	l := in.link(from, to)
	if l.DropProb <= 0 {
		return false
	}
	return in.roll(from, to) < l.DropProb
}

// SpikeNS returns the extra latency, in nanoseconds, the next message
// from→to suffers (zero when no spike fires).
func (in *Injector) SpikeNS(from, to int) int64 {
	if in == nil {
		return 0
	}
	l := in.link(from, to)
	if l.SpikeProb <= 0 || l.SpikeNS <= 0 {
		return 0
	}
	if in.roll(from, to) < l.SpikeProb {
		return l.SpikeNS
	}
	return 0
}

// CrashAtNS returns the virtual-time crash instant of place, if any.
func (in *Injector) CrashAtNS(place int) (int64, bool) {
	if in == nil {
		return 0, false
	}
	c, ok := in.plan.CrashOf(place)
	if !ok || c.AtVirtualNS <= 0 {
		return 0, false
	}
	return c.AtVirtualNS, true
}

// CrashAfterTasks returns the task-count crash trigger of place, if any.
func (in *Injector) CrashAfterTasks(place int) (int64, bool) {
	if in == nil {
		return 0, false
	}
	c, ok := in.plan.CrashOf(place)
	if !ok || c.AfterTasks <= 0 {
		return 0, false
	}
	return c.AfterTasks, true
}

// PartitionedAt reports whether a message from→to at nowNS crosses an
// active partition cut. The decision is a pure function of the link and
// the time, so the simulator (virtual clock) gets an exact schedule and
// the real runtime (wall clock) a faithful one.
func (in *Injector) PartitionedAt(from, to int, nowNS int64) bool {
	if in == nil || from == to {
		return false
	}
	for _, part := range in.plan.Partitions {
		if nowNS < part.AtNS || (part.HealNS > 0 && nowNS >= part.HealNS) {
			continue
		}
		if inGroup(part.GroupA, from) != inGroup(part.GroupA, to) {
			return true
		}
	}
	return false
}

func inGroup(group []int, place int) bool {
	for _, m := range group {
		if m == place {
			return true
		}
	}
	return false
}

// GrayNS returns the extra one-way latency a message from→to suffers at
// nowNS from active gray failures (zero when none match).
func (in *Injector) GrayNS(from, to int, nowNS int64) int64 {
	if in == nil {
		return 0
	}
	var extra int64
	for _, g := range in.plan.Grays {
		if g.From != -1 && g.From != from {
			continue
		}
		if g.To != -1 && g.To != to {
			continue
		}
		if nowNS < g.AtNS || (g.UntilNS > 0 && nowNS >= g.UntilNS) {
			continue
		}
		extra += g.ExtraNS
	}
	return extra
}

// FlapDownAt reports whether place is inside a scheduled flap outage at
// nowNS.
func (in *Injector) FlapDownAt(place int, nowNS int64) bool {
	if in == nil {
		return false
	}
	for _, f := range in.plan.Flaps {
		if f.Place == place && f.DownAt(nowNS) {
			return true
		}
	}
	return false
}

// Duplicate decides whether the next message from→to is delivered twice.
func (in *Injector) Duplicate(from, to int) bool {
	if in == nil || in.plan.DupProb <= 0 {
		return false
	}
	return in.roll(from, to) < in.plan.DupProb
}

// roll draws a deterministic uniform in [0,1) for the next decision on
// the from→to link: a stateless hash of the seed, the link, and a global
// decision counter.
func (in *Injector) roll(from, to int) float64 {
	n := in.nonce.Add(1)
	h := mix(uint64(in.plan.Seed), uint64(from+1)*0x1_0000_01+uint64(to+1))
	h = mix(h, n)
	return float64(h>>11) / float64(1<<53)
}

// mix is the splitmix64 finalizer over a seeded combination of a and b.
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DownSet tracks which places have been observed down. It is the shared
// "places marked down" record thieves consult for victim exclusion and
// dispatchers consult for re-homing. Safe for concurrent use; the zero
// value is unusable — create with NewDownSet.
type DownSet struct {
	down []atomic.Bool
	n    atomic.Int32
}

// NewDownSet returns a tracker over places places.
func NewDownSet(places int) *DownSet {
	if places <= 0 {
		panic(fmt.Sprintf("fault: NewDownSet places=%d, want > 0", places))
	}
	return &DownSet{down: make([]atomic.Bool, places)}
}

// MarkDown records place as down. It reports whether this call was the
// first to mark it (so callers can count PlacesLost exactly once).
func (d *DownSet) MarkDown(place int) bool {
	if place < 0 || place >= len(d.down) {
		return false
	}
	if d.down[place].Swap(true) {
		return false
	}
	d.n.Add(1)
	return true
}

// Revive clears a down mark, readmitting a healed or rejoined place to
// victim selection and re-homing. It reports whether the place was
// actually down.
func (d *DownSet) Revive(place int) bool {
	if place < 0 || place >= len(d.down) {
		return false
	}
	if !d.down[place].Swap(false) {
		return false
	}
	d.n.Add(-1)
	return true
}

// Down reports whether place has been marked down.
func (d *DownSet) Down(place int) bool {
	if d == nil || place < 0 || place >= len(d.down) {
		return false
	}
	return d.down[place].Load()
}

// Count returns how many places are marked down.
func (d *DownSet) Count() int {
	if d == nil {
		return 0
	}
	return int(d.n.Load())
}

// Places returns the tracked place count.
func (d *DownSet) Places() int { return len(d.down) }

// NextAlive returns the first place at or after from (wrapping around)
// that is not marked down, or -1 if every place is down. It is the
// deterministic re-homing rule used when a task's home place has failed.
func (d *DownSet) NextAlive(from int) int {
	n := len(d.down)
	if n == 0 {
		return -1
	}
	from %= n
	if from < 0 {
		from += n
	}
	for i := 0; i < n; i++ {
		p := (from + i) % n
		if !d.down[p].Load() {
			return p
		}
	}
	return -1
}
