package fault

import "testing"

func TestNilPlanAndInjectorAreNoFault(t *testing.T) {
	var p *Plan
	if err := p.Validate(4); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
	var in *Injector
	if in.Drop(0, 1) {
		t.Fatalf("nil injector dropped a message")
	}
	if in.SpikeNS(0, 1) != 0 {
		t.Fatalf("nil injector spiked")
	}
	if _, ok := in.CrashAtNS(0); ok {
		t.Fatalf("nil injector crashed a place")
	}
	if NewInjector(nil) != nil {
		t.Fatalf("NewInjector(nil) should be nil")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"good crash", Plan{Crashes: []Crash{{Place: 1, AtVirtualNS: 5}}}, true},
		{"bad place", Plan{Crashes: []Crash{{Place: 9}}}, false},
		{"negative place", Plan{Crashes: []Crash{{Place: -1}}}, false},
		{"all places crash", Plan{Crashes: []Crash{{Place: 0}, {Place: 1}, {Place: 2}, {Place: 3}}}, false},
		{"bad drop prob", Plan{DropProb: 1.5}, false},
		{"bad link prob", Plan{Links: []Link{{From: -1, To: -1, DropProb: -0.1}}}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate(4)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCrashLookup(t *testing.T) {
	p := &Plan{Crashes: []Crash{
		{Place: 1, AtVirtualNS: 500},
		{Place: 2, AfterTasks: 10},
	}}
	in := NewInjector(p)
	if at, ok := in.CrashAtNS(1); !ok || at != 500 {
		t.Fatalf("CrashAtNS(1) = %d,%v", at, ok)
	}
	if _, ok := in.CrashAtNS(2); ok {
		t.Fatalf("place 2 is step-triggered, not time-triggered")
	}
	if n, ok := in.CrashAfterTasks(2); !ok || n != 10 {
		t.Fatalf("CrashAfterTasks(2) = %d,%v", n, ok)
	}
	if _, ok := in.CrashAfterTasks(0); ok {
		t.Fatalf("place 0 never crashes")
	}
}

// Two injectors with the same plan asked in the same order must make
// identical decisions: this is what makes chaos runs reproducible.
func TestDropDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, DropProb: 0.3}
	a, b := NewInjector(plan), NewInjector(plan)
	drops := 0
	for i := 0; i < 1000; i++ {
		from, to := i%4, (i+1)%4
		da, db := a.Drop(from, to), b.Drop(from, to)
		if da != db {
			t.Fatalf("decision %d diverged: %v vs %v", i, da, db)
		}
		if da {
			drops++
		}
	}
	// 30% nominal over 1000 draws: allow a generous band.
	if drops < 200 || drops > 400 {
		t.Fatalf("dropped %d of 1000 at p=0.3", drops)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := NewInjector(&Plan{Seed: 1, DropProb: 0.5})
	b := NewInjector(&Plan{Seed: 2, DropProb: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		if a.Drop(0, 1) != b.Drop(0, 1) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced an identical 64-decision schedule")
	}
}

func TestLinkOverride(t *testing.T) {
	in := NewInjector(&Plan{
		Seed:     7,
		DropProb: 0, // cluster-wide: lossless
		Links:    []Link{{From: 2, To: -1, DropProb: 1}},
	})
	for i := 0; i < 16; i++ {
		if in.Drop(0, 1) {
			t.Fatalf("lossless link dropped")
		}
		if !in.Drop(2, 3) {
			t.Fatalf("p=1 link delivered")
		}
	}
}

func TestSpike(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3, SpikeProb: 1, SpikeNS: 250})
	if got := in.SpikeNS(0, 1); got != 250 {
		t.Fatalf("SpikeNS = %d, want 250", got)
	}
	none := NewInjector(&Plan{Seed: 3})
	if got := none.SpikeNS(0, 1); got != 0 {
		t.Fatalf("spike-free plan spiked %d", got)
	}
}

func TestDownSet(t *testing.T) {
	d := NewDownSet(4)
	if d.Down(2) || d.Count() != 0 {
		t.Fatalf("fresh set has downs")
	}
	if !d.MarkDown(2) {
		t.Fatalf("first MarkDown should report true")
	}
	if d.MarkDown(2) {
		t.Fatalf("second MarkDown should report false")
	}
	if !d.Down(2) || d.Count() != 1 {
		t.Fatalf("place 2 should be down")
	}
	if got := d.NextAlive(2); got != 3 {
		t.Fatalf("NextAlive(2) = %d, want 3", got)
	}
	d.MarkDown(3)
	if got := d.NextAlive(2); got != 0 {
		t.Fatalf("NextAlive(2) = %d, want wraparound to 0", got)
	}
	if got := d.NextAlive(-1); got != 0 && got != 1 {
		t.Fatalf("NextAlive(-1) = %d", got)
	}
	d.MarkDown(0)
	d.MarkDown(1)
	if got := d.NextAlive(0); got != -1 {
		t.Fatalf("NextAlive with all down = %d, want -1", got)
	}
	// Out-of-range queries are harmless.
	if d.Down(99) || d.MarkDown(99) {
		t.Fatalf("out-of-range place should not be markable")
	}
}
