package fault

import "testing"

func TestNilPlanAndInjectorAreNoFault(t *testing.T) {
	var p *Plan
	if err := p.Validate(4); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
	var in *Injector
	if in.Drop(0, 1) {
		t.Fatalf("nil injector dropped a message")
	}
	if in.SpikeNS(0, 1) != 0 {
		t.Fatalf("nil injector spiked")
	}
	if _, ok := in.CrashAtNS(0); ok {
		t.Fatalf("nil injector crashed a place")
	}
	if NewInjector(nil) != nil {
		t.Fatalf("NewInjector(nil) should be nil")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"good crash", Plan{Crashes: []Crash{{Place: 1, AtVirtualNS: 5}}}, true},
		{"bad place", Plan{Crashes: []Crash{{Place: 9}}}, false},
		{"negative place", Plan{Crashes: []Crash{{Place: -1}}}, false},
		{"all places crash", Plan{Crashes: []Crash{{Place: 0}, {Place: 1}, {Place: 2}, {Place: 3}}}, false},
		{"bad drop prob", Plan{DropProb: 1.5}, false},
		{"bad link prob", Plan{Links: []Link{{From: -1, To: -1, DropProb: -0.1}}}, false},
		{"good partition", Plan{Partitions: []Partition{{GroupA: []int{0, 1}, AtNS: 10, HealNS: 20}}}, true},
		{"partition never heals", Plan{Partitions: []Partition{{GroupA: []int{3}, AtNS: 10}}}, true},
		{"partition covers cluster", Plan{Partitions: []Partition{{GroupA: []int{0, 1, 2, 3}, AtNS: 10}}}, false},
		{"partition heals before split", Plan{Partitions: []Partition{{GroupA: []int{0}, AtNS: 10, HealNS: 5}}}, false},
		{"partition bad place", Plan{Partitions: []Partition{{GroupA: []int{7}, AtNS: 10}}}, false},
		{"good gray", Plan{Grays: []Gray{{From: 0, To: -1, ExtraNS: 100}}}, true},
		{"gray zero latency", Plan{Grays: []Gray{{From: 0, To: 1}}}, false},
		{"gray inverted window", Plan{Grays: []Gray{{From: 0, To: 1, ExtraNS: 5, AtNS: 10, UntilNS: 5}}}, false},
		{"good flap", Plan{Flaps: []Flap{{Place: 1, AtNS: 10, DownNS: 5, UpNS: 5, Cycles: 2}}}, true},
		{"flap no up between cycles", Plan{Flaps: []Flap{{Place: 1, AtNS: 10, DownNS: 5, Cycles: 2}}}, false},
		{"flap no trigger", Plan{Flaps: []Flap{{Place: 1}}}, false},
		{"good join", Plan{Joins: []Join{{Place: 2, AtNS: 50}}}, true},
		{"join twice", Plan{Joins: []Join{{Place: 2, AtNS: 50}, {Place: 2, AtNS: 60}}}, false},
		{"everyone joins late", Plan{Joins: []Join{{Place: 0, AtNS: 1}, {Place: 1, AtNS: 1}, {Place: 2, AtNS: 1}, {Place: 3, AtNS: 1}}}, false},
		{"good drain", Plan{Drains: []Drain{{Place: 1, AtNS: 50}}}, true},
		{"drain no trigger", Plan{Drains: []Drain{{Place: 1}}}, false},
		{"crash+drain leaves none", Plan{
			Crashes: []Crash{{Place: 0, AtVirtualNS: 5}, {Place: 1, AtVirtualNS: 5}},
			Drains:  []Drain{{Place: 2, AtNS: 9}, {Place: 3, AtNS: 9}},
		}, false},
		{"bad dup prob", Plan{DupProb: 2}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate(4)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCrashLookup(t *testing.T) {
	p := &Plan{Crashes: []Crash{
		{Place: 1, AtVirtualNS: 500},
		{Place: 2, AfterTasks: 10},
	}}
	in := NewInjector(p)
	if at, ok := in.CrashAtNS(1); !ok || at != 500 {
		t.Fatalf("CrashAtNS(1) = %d,%v", at, ok)
	}
	if _, ok := in.CrashAtNS(2); ok {
		t.Fatalf("place 2 is step-triggered, not time-triggered")
	}
	if n, ok := in.CrashAfterTasks(2); !ok || n != 10 {
		t.Fatalf("CrashAfterTasks(2) = %d,%v", n, ok)
	}
	if _, ok := in.CrashAfterTasks(0); ok {
		t.Fatalf("place 0 never crashes")
	}
}

// Two injectors with the same plan asked in the same order must make
// identical decisions: this is what makes chaos runs reproducible.
func TestDropDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, DropProb: 0.3}
	a, b := NewInjector(plan), NewInjector(plan)
	drops := 0
	for i := 0; i < 1000; i++ {
		from, to := i%4, (i+1)%4
		da, db := a.Drop(from, to), b.Drop(from, to)
		if da != db {
			t.Fatalf("decision %d diverged: %v vs %v", i, da, db)
		}
		if da {
			drops++
		}
	}
	// 30% nominal over 1000 draws: allow a generous band.
	if drops < 200 || drops > 400 {
		t.Fatalf("dropped %d of 1000 at p=0.3", drops)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := NewInjector(&Plan{Seed: 1, DropProb: 0.5})
	b := NewInjector(&Plan{Seed: 2, DropProb: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		if a.Drop(0, 1) != b.Drop(0, 1) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced an identical 64-decision schedule")
	}
}

func TestLinkOverride(t *testing.T) {
	in := NewInjector(&Plan{
		Seed:     7,
		DropProb: 0, // cluster-wide: lossless
		Links:    []Link{{From: 2, To: -1, DropProb: 1}},
	})
	for i := 0; i < 16; i++ {
		if in.Drop(0, 1) {
			t.Fatalf("lossless link dropped")
		}
		if !in.Drop(2, 3) {
			t.Fatalf("p=1 link delivered")
		}
	}
}

func TestSpike(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3, SpikeProb: 1, SpikeNS: 250})
	if got := in.SpikeNS(0, 1); got != 250 {
		t.Fatalf("SpikeNS = %d, want 250", got)
	}
	none := NewInjector(&Plan{Seed: 3})
	if got := none.SpikeNS(0, 1); got != 0 {
		t.Fatalf("spike-free plan spiked %d", got)
	}
}

func TestDownSet(t *testing.T) {
	d := NewDownSet(4)
	if d.Down(2) || d.Count() != 0 {
		t.Fatalf("fresh set has downs")
	}
	if !d.MarkDown(2) {
		t.Fatalf("first MarkDown should report true")
	}
	if d.MarkDown(2) {
		t.Fatalf("second MarkDown should report false")
	}
	if !d.Down(2) || d.Count() != 1 {
		t.Fatalf("place 2 should be down")
	}
	if got := d.NextAlive(2); got != 3 {
		t.Fatalf("NextAlive(2) = %d, want 3", got)
	}
	d.MarkDown(3)
	if got := d.NextAlive(2); got != 0 {
		t.Fatalf("NextAlive(2) = %d, want wraparound to 0", got)
	}
	if got := d.NextAlive(-1); got != 0 && got != 1 {
		t.Fatalf("NextAlive(-1) = %d", got)
	}
	d.MarkDown(0)
	d.MarkDown(1)
	if got := d.NextAlive(0); got != -1 {
		t.Fatalf("NextAlive with all down = %d, want -1", got)
	}
	// Out-of-range queries are harmless.
	if d.Down(99) || d.MarkDown(99) {
		t.Fatalf("out-of-range place should not be markable")
	}
}

// TestNextAliveTotalLoss is the satellite regression: once every place
// is down, NextAlive must return the -1 sentinel (never spin), and a
// Revive must make the place reachable again.
func TestNextAliveTotalLoss(t *testing.T) {
	d := NewDownSet(3)
	for p := 0; p < 3; p++ {
		d.MarkDown(p)
	}
	for from := -2; from < 5; from++ {
		if got := d.NextAlive(from); got != -1 {
			t.Fatalf("NextAlive(%d) with all down = %d, want -1", from, got)
		}
	}
	if !d.Revive(1) {
		t.Fatalf("Revive(1) of a down place should report true")
	}
	if d.Revive(1) {
		t.Fatalf("second Revive(1) should report false")
	}
	if d.Count() != 2 || d.Down(1) {
		t.Fatalf("after revive: Count=%d Down(1)=%v", d.Count(), d.Down(1))
	}
	if got := d.NextAlive(2); got != 1 {
		t.Fatalf("NextAlive(2) after revive = %d, want 1", got)
	}
	if d.Revive(99) {
		t.Fatalf("out-of-range revive should be a no-op")
	}
}

func TestPartitionWindow(t *testing.T) {
	in := NewInjector(&Plan{Partitions: []Partition{{GroupA: []int{0, 1}, AtNS: 100, HealNS: 200}}})
	if in.PartitionedAt(0, 2, 50) {
		t.Fatalf("partition active before AtNS")
	}
	if !in.PartitionedAt(0, 2, 100) || !in.PartitionedAt(2, 0, 150) {
		t.Fatalf("cross-cut message delivered during partition")
	}
	if in.PartitionedAt(0, 1, 150) || in.PartitionedAt(2, 3, 150) {
		t.Fatalf("same-side message cut")
	}
	if in.PartitionedAt(0, 2, 200) {
		t.Fatalf("partition active after heal")
	}
	if in.PartitionedAt(0, 0, 150) {
		t.Fatalf("self-send partitioned")
	}
	forever := NewInjector(&Plan{Partitions: []Partition{{GroupA: []int{0}, AtNS: 10}}})
	if !forever.PartitionedAt(0, 3, 1<<40) {
		t.Fatalf("HealNS=0 partition should never heal")
	}
	var nilInj *Injector
	if nilInj.PartitionedAt(0, 1, 50) {
		t.Fatalf("nil injector partitioned")
	}
}

func TestGrayWindow(t *testing.T) {
	in := NewInjector(&Plan{Grays: []Gray{
		{From: 0, To: 1, ExtraNS: 100},
		{From: 0, To: -1, ExtraNS: 30, AtNS: 50, UntilNS: 150},
	}})
	if got := in.GrayNS(0, 1, 10); got != 100 {
		t.Fatalf("GrayNS(0,1,10) = %d, want 100 (window-less gray always active)", got)
	}
	if got := in.GrayNS(0, 1, 60); got != 130 {
		t.Fatalf("GrayNS(0,1,60) = %d, want 130 (both grays stack)", got)
	}
	if got := in.GrayNS(0, 2, 60); got != 30 {
		t.Fatalf("GrayNS(0,2,60) = %d, want 30 (wildcard To)", got)
	}
	if got := in.GrayNS(0, 2, 150); got != 0 {
		t.Fatalf("GrayNS(0,2,150) = %d, want 0 after UntilNS", got)
	}
	if got := in.GrayNS(1, 0, 60); got != 0 {
		t.Fatalf("GrayNS(1,0,60) = %d, want 0 (no matching link)", got)
	}
	var nilInj *Injector
	if nilInj.GrayNS(0, 1, 60) != 0 {
		t.Fatalf("nil injector grayed")
	}
}

func TestFlapSchedule(t *testing.T) {
	f := Flap{Place: 2, AtNS: 100, DownNS: 50, UpNS: 30, Cycles: 2}
	cases := []struct {
		now  int64
		down bool
	}{
		{0, false}, {99, false},
		{100, true}, {149, true}, // first outage [100,150)
		{150, false}, {179, false}, // recovered [150,180)
		{180, true}, {229, true}, // second outage [180,230)
		{230, false}, {1 << 40, false}, // cycles exhausted
	}
	in := NewInjector(&Plan{Flaps: []Flap{f}})
	for _, c := range cases {
		if got := f.DownAt(c.now); got != c.down {
			t.Errorf("DownAt(%d) = %v, want %v", c.now, got, c.down)
		}
		if got := in.FlapDownAt(2, c.now); got != c.down {
			t.Errorf("FlapDownAt(2,%d) = %v, want %v", c.now, got, c.down)
		}
		if in.FlapDownAt(1, c.now) {
			t.Errorf("place 1 never flaps")
		}
	}
	var nilInj *Injector
	if nilInj.FlapDownAt(2, 120) {
		t.Fatalf("nil injector flapped")
	}
}

func TestDuplicateDeterminism(t *testing.T) {
	a := NewInjector(&Plan{Seed: 11, DupProb: 0.5})
	b := NewInjector(&Plan{Seed: 11, DupProb: 0.5})
	dups := 0
	for i := 0; i < 1000; i++ {
		da, db := a.Duplicate(0, 1), b.Duplicate(0, 1)
		if da != db {
			t.Fatalf("decision %d diverged", i)
		}
		if da {
			dups++
		}
	}
	if dups < 350 || dups > 650 {
		t.Fatalf("duplicated %d of 1000 at p=0.5", dups)
	}
	var nilInj *Injector
	if nilInj.Duplicate(0, 1) {
		t.Fatalf("nil injector duplicated")
	}
}
