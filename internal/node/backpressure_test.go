package node

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"distws/internal/comm"
	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/task"
)

// inprocNode adapts an in-process mesh endpoint to comm.Node.
type inprocNode struct{ comm.Endpoint }

func (inprocNode) AwaitTimeout(time.Duration) error { return nil }
func (inprocNode) Down(int) bool                    { return false }
func (inprocNode) InjectFaults(*fault.Injector)     {}
func (inprocNode) SetRecorder(*obs.Recorder)        {}

// shedNode wraps a comm.Node and sheds the first shedLeft[p] spawn sends
// to each place p with a typed BackpressureError, counting every spawn
// attempt — the harness for the coordinator's backpressure audit.
type shedNode struct {
	comm.Node
	mu         sync.Mutex
	shedLeft   map[int]int
	spawnSends map[int]int
}

func (s *shedNode) Send(m comm.Message) error {
	if m.Kind == comm.KindSpawn {
		s.mu.Lock()
		if s.spawnSends == nil {
			s.spawnSends = make(map[int]int)
		}
		s.spawnSends[m.To]++
		if s.shedLeft[m.To] > 0 {
			s.shedLeft[m.To]--
			s.mu.Unlock()
			return &comm.BackpressureError{Place: m.To}
		}
		s.mu.Unlock()
	}
	return s.Node.Send(m)
}

func (s *shedNode) sends(p int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawnSends[p]
}

// runBackpressured drives a 3-place coordinator whose sends shed per the
// plan, with executors echoing id*3, and returns the counters and shim.
func runBackpressured(t *testing.T, shedLeft map[int]int, batches int) (*metrics.Counters, *shedNode) {
	t.Helper()
	const places = 3
	m := comm.NewMesh(places, 64, nil)
	reg := task.NewRegistry()
	reg.Register("bp.echo", func([]byte) error { return nil })
	exDone := make(chan error, places-1)
	for p := 1; p < places; p++ {
		ex := &Executor{
			Node:     inprocNode{m.Endpoint(p)},
			Place:    p,
			Registry: reg,
			Run: func(name string, arg []byte) ([]byte, error) {
				return u64(binary.BigEndian.Uint64(arg) * 3), nil
			},
		}
		go func() {
			_, err := ex.Serve()
			exDone <- err
		}()
	}

	shim := &shedNode{Node: inprocNode{m.Endpoint(0)}, shedLeft: shedLeft}
	var ctrs metrics.Counters
	work := make([]Batch, batches)
	for i := range work {
		work[i] = Batch{ID: i, Arg: u64(uint64(i))}
	}
	results := map[int]uint64{}
	calls := map[int]int{}
	coord := &Coordinator{
		Node:     shim,
		Places:   places,
		Counters: &ctrs,
		TaskName: "bp.echo",
		OnResult: func(id int, res []byte) {
			calls[id]++
			results[id] = binary.BigEndian.Uint64(res)
		},
		RetryAfter: 100 * time.Millisecond,
	}
	if err := coord.Run(work); err != nil {
		t.Fatalf("coordinator under backpressure: %v", err)
	}
	for id := 0; id < batches; id++ {
		if calls[id] != 1 {
			t.Fatalf("batch %d accounted %d times, want exactly once", id, calls[id])
		}
		if results[id] != uint64(id*3) {
			t.Fatalf("batch %d result %d, want %d", id, results[id], id*3)
		}
	}
	for p := 1; p < places; p++ {
		select {
		case err := <-exDone:
			if err != nil {
				t.Fatalf("executor: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("executor %d never shut down", p)
		}
	}
	return &ctrs, shim
}

// TestDispatchBackpressureFallsOver pins the typed-shed path: a place
// that sheds every spawn with BackpressureError is skipped — not treated
// as dead, not hammered, not fatal — and the work lands on its peer.
func TestDispatchBackpressureFallsOver(t *testing.T) {
	const batches = 12
	ctrs, shim := runBackpressured(t, map[int]int{1: 1 << 30}, batches)
	if ctrs.Backpressure.Load() == 0 {
		t.Fatalf("Backpressure counter never incremented")
	}
	if got := ctrs.TasksReExecuted.Load(); got != 0 {
		t.Fatalf("TasksReExecuted = %d: a shed is not a failure, nothing ran twice", got)
	}
	if got := ctrs.PlacesLost.Load(); got != 0 {
		t.Fatalf("PlacesLost = %d: a shed must not mark the place down", got)
	}
	// Retry-storm guard: the coordinator may probe the shedding place once
	// per dispatch pass, never spin on it.
	if got := shim.sends(1); got > 4*batches {
		t.Fatalf("place 1 probed %d times for %d batches: retry storm", got, batches)
	}
}

// TestDispatchBackpressureBackoff pins the all-shed path: with every
// executor shedding, batches park in the backlog and go out after the
// backoff — no livelock, no error, nothing lost.
func TestDispatchBackpressureBackoff(t *testing.T) {
	const batches = 12
	ctrs, shim := runBackpressured(t, map[int]int{1: 8, 2: 8}, batches)
	if ctrs.Backpressure.Load() != 16 {
		t.Fatalf("Backpressure = %d, want 16 (every configured shed consumed)", ctrs.Backpressure.Load())
	}
	if got := ctrs.TasksReExecuted.Load(); got != 0 {
		t.Fatalf("TasksReExecuted = %d, want 0", got)
	}
	total := shim.sends(1) + shim.sends(2)
	// 16 sheds + one real send per batch + a bounded number of silent-period
	// retries; far below a storm.
	if total > 16+4*batches {
		t.Fatalf("%d spawn sends for %d batches with 16 sheds: retry storm", total, batches)
	}
}
