package node

import (
	"encoding/binary"
	"testing"
	"time"

	"distws/internal/comm"
	"distws/internal/metrics"
	"distws/internal/task"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// TestCoordinatorExecutorHub runs the protocol over the star transport:
// the coordinator keeps its local share, the executor answers the rest,
// and every batch is accounted exactly once.
func TestCoordinatorExecutorHub(t *testing.T) {
	reg := task.NewRegistry()
	reg.Register("test.echo", func([]byte) error { return nil })

	var ctrs metrics.Counters
	hub, err := comm.ListenHub("127.0.0.1:0", 2, &ctrs)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	spoke, err := comm.DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer spoke.Close()
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	exDone := make(chan error, 1)
	go func() {
		ex := &Executor{
			Node:     spoke,
			Place:    1,
			Registry: reg,
			Run: func(name string, arg []byte) ([]byte, error) {
				id := binary.BigEndian.Uint64(arg)
				return u64(id * 3), nil
			},
		}
		_, err := ex.Serve()
		exDone <- err
	}()

	const batches = 10
	work := make([]Batch, batches)
	for i := range work {
		work[i] = Batch{ID: i, Arg: u64(uint64(i))}
	}
	results := make(map[int]uint64)
	calls := make(map[int]int)
	coord := &Coordinator{
		Node:     hub,
		Places:   2,
		Counters: &ctrs,
		TaskName: "test.echo",
		RunLocal: func(arg []byte) ([]byte, error) {
			id := binary.BigEndian.Uint64(arg)
			return u64(id * 3), nil
		},
		OnResult: func(id int, result []byte) {
			calls[id]++
			results[id] = binary.BigEndian.Uint64(result)
		},
		RetryAfter: 500 * time.Millisecond,
	}
	if err := coord.Run(work); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if len(results) != batches {
		t.Fatalf("accounted %d of %d batches", len(results), batches)
	}
	for id := 0; id < batches; id++ {
		if calls[id] != 1 {
			t.Fatalf("batch %d accounted %d times, want exactly once", id, calls[id])
		}
		if results[id] != uint64(id*3) {
			t.Fatalf("batch %d result %d, want %d", id, results[id], id*3)
		}
	}
	select {
	case err := <-exDone:
		if err != nil {
			t.Fatalf("executor: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("executor never received the shutdown broadcast")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if err := (&Coordinator{}).Run(nil); err == nil {
		t.Fatalf("empty coordinator should be rejected")
	}
	if _, err := (&Executor{}).Serve(); err == nil {
		t.Fatalf("empty executor should be rejected")
	}
}

func TestExecutorUnknownTask(t *testing.T) {
	reg := task.NewRegistry()
	var ctrs metrics.Counters
	hub, err := comm.ListenHub("127.0.0.1:0", 2, &ctrs)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	spoke, err := comm.DialSpoke(hub.Addr(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer spoke.Close()
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	env := &task.Envelope{Name: "not.registered", Origin: 0, Home: 1, Class: task.Flexible}
	payload, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Send(comm.Message{Kind: comm.KindSpawn, To: 1, Seq: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	ex := &Executor{
		Node:     spoke,
		Place:    1,
		Registry: reg,
		Run:      func(string, []byte) ([]byte, error) { return nil, nil },
	}
	if _, err := ex.Serve(); err == nil {
		t.Fatalf("unknown task should fail the executor")
	}
}
