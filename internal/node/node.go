// Package node implements the distributed batch protocol that
// cmd/distws-node drives: a coordinator at place 0 dispatching registry
// tasks across the cluster with at-least-once delivery and exactly-once
// result accounting, and an executor loop at every other place. The
// protocol is transport-agnostic — it speaks through a comm.Node, so the
// same code runs over the star (tcp-hub) and peer-to-peer (tcp-mesh)
// topologies, and payloads stay opaque bytes end to end.
package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/comm"
	"distws/internal/member"
	"distws/internal/metrics"
	"distws/internal/task"
)

// ErrNoSurvivors is the sentinel for a dispatch that found every executor
// down or draining while the coordinator has no RunLocal fallback. Match
// with errors.Is; the concrete error is a *NoSurvivorsError carrying the
// batch id.
var ErrNoSurvivors = errors.New("node: no surviving executor")

// NoSurvivorsError reports which batch could not be placed anywhere.
type NoSurvivorsError struct{ Batch int }

func (e *NoSurvivorsError) Error() string {
	return fmt.Sprintf("node: batch %d undeliverable: every executor is down or draining and no RunLocal fallback is set", e.Batch)
}

// Is makes errors.Is(err, ErrNoSurvivors) match.
func (e *NoSurvivorsError) Is(target error) bool { return target == ErrNoSurvivors }

// Batch is one unit of dispatchable work: an id the result accounting is
// keyed on (carried on the wire as Message.Seq) and an opaque argument for
// the registered task.
type Batch struct {
	ID  int
	Arg []byte
}

// Coordinator is the resilient-finish state of place 0: it tracks which
// batch is outstanding at which place, re-dispatches when a place dies or
// goes silent, and deduplicates results so at-least-once dispatch still
// accounts every batch exactly once.
type Coordinator struct {
	// Node is this process's transport attachment (place 0).
	Node comm.Node
	// Places is the cluster size.
	Places int
	// Counters receives protocol accounting (PlacesLost, TasksReExecuted,
	// Retries); nil disables it.
	Counters *metrics.Counters
	// TaskName is the registry name executors resolve arriving spawns to.
	TaskName string
	// RunLocal executes one batch on the coordinator itself — the local
	// share of the work, and the fallback when no executor survives.
	// Optional: when nil every batch is dispatched remotely and a dispatch
	// with no surviving executor fails with ErrNoSurvivors instead of
	// falling back.
	RunLocal func(arg []byte) ([]byte, error)
	// OnResult consumes each batch's result payload, exactly once per id.
	OnResult func(id int, result []byte)
	// RetryAfter is the silence window after which outstanding batches are
	// re-sent. Defaults to 5s.
	RetryAfter time.Duration
	// Window caps how many batches may be outstanding at one executor.
	// Batches beyond every survivor's window wait in a coordinator-side
	// backlog and are pumped out as results come back, so a slow (or
	// silently partitioned) place never hoards unbounded work. Defaults
	// to 8.
	Window int
	// Heartbeat, when > 0, arms the membership failure detector: executors
	// are expected to beat at roughly this cadence (Executor.Heartbeat),
	// the detector sweeps at it, and a place whose silence exceeds the
	// adaptive timeout (per-link inter-arrival EWMA × the suspect/down
	// multipliers, floored at Heartbeat) moves alive → suspect → down.
	// Zero disables the detector: places are only marked down by transport
	// errors, as before.
	Heartbeat time.Duration
	// Absent lists places that are not present at start and will announce
	// themselves with KindJoin later (runtime join). They receive no work
	// until they do.
	Absent []int
	// Logf reports recovery events; nil is silent.
	Logf func(format string, a ...any)

	alive       []bool
	draining    []bool
	outstanding map[int]map[int]Batch // place -> batch id -> batch
	backlog     []Batch               // dispatchable work waiting for a window slot
	got         map[int]bool          // batch ids whose result is accounted
	pending     int
	members     *member.Table
	start       time.Time
}

// window returns the per-executor outstanding cap.
func (c *Coordinator) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 8
}

// nowNS is the coordinator's clock for the membership table, measured
// from the start of Run.
func (c *Coordinator) nowNS() int64 { return time.Since(c.start).Nanoseconds() }

func (c *Coordinator) logf(format string, a ...any) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// Run dispatches batches across the cluster and blocks until every result
// is accounted, surviving executor crashes and lost messages. Every
// Places'th batch runs locally (the coordinator is a worker too); the rest
// go round robin over places 1..Places-1. On return it broadcasts
// KindShutdown to the surviving executors.
func (c *Coordinator) Run(batches []Batch) error {
	if c.Node == nil || c.OnResult == nil {
		return fmt.Errorf("node: Coordinator needs Node and OnResult")
	}
	if c.Places < 2 {
		return fmt.Errorf("node: Coordinator over %d places, want >= 2", c.Places)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	c.start = time.Now()
	c.alive = make([]bool, c.Places)
	c.draining = make([]bool, c.Places)
	c.members = member.NewTable(c.Places, 0, member.Config{MinTimeoutNS: c.Heartbeat.Nanoseconds()})
	absent := make(map[int]bool, len(c.Absent))
	for _, p := range c.Absent {
		if p > 0 && p < c.Places {
			absent[p] = true
		}
	}
	// Absent places stay Unknown in the member table so their eventual
	// KindJoin is a first contact, not a stale rejoin.
	for p := 1; p < c.Places; p++ {
		if absent[p] {
			continue
		}
		c.alive[p] = true
		c.members.SeedAlive(p, 0)
	}
	c.outstanding = make(map[int]map[int]Batch)
	c.got = make(map[int]bool)
	c.pending = len(batches)

	var tick <-chan time.Time
	if c.Heartbeat > 0 {
		t := time.NewTicker(c.Heartbeat)
		defer t.Stop()
		tick = t.C
	}

	for i, b := range batches {
		if i%c.Places == 0 && c.RunLocal != nil {
			if err := c.runHere(b); err != nil {
				return err
			}
			continue
		}
		if err := c.dispatch(b, i%c.Places); err != nil {
			return err
		}
	}

	for c.pending > 0 {
		select {
		case m, ok := <-c.Node.Inbox():
			if !ok {
				return fmt.Errorf("node: inbox closed with %d batches outstanding", c.pending)
			}
			if err := c.handle(m); err != nil {
				return err
			}
		case <-tick:
			if err := c.detect(); err != nil {
				return err
			}
		case <-time.After(c.RetryAfter):
			c.logf("coordinator: no progress for %v, re-sending %d batch(es)", c.RetryAfter, c.pending)
			if err := c.retryOutstanding(); err != nil {
				return err
			}
			// Backpressure-shed batches wait in the backlog with nothing
			// outstanding to retry; the backoff expiring is their cue too.
			if err := c.pump(); err != nil {
				return err
			}
		}
	}
	for p := 1; p < c.Places; p++ {
		if c.alive[p] {
			c.Node.Send(comm.Message{Kind: comm.KindShutdown, To: p})
		}
	}
	return nil
}

// handle processes one protocol message.
func (c *Coordinator) handle(m comm.Message) error {
	switch m.Kind {
	case comm.KindPlaceDown:
		return c.markDown(m.From)
	case comm.KindSpawnDone:
		id := int(m.Seq)
		if om := c.outstanding[m.From]; om != nil {
			delete(om, id)
		}
		c.finish(id, m.Payload)
		if err := c.maybeCompleteDrain(m.From); err != nil {
			return err
		}
		return c.pump() // a window slot freed
	case comm.KindSpawnNack:
		// A draining executor returned a queued-but-unstarted batch: move
		// it to a survivor. The work never ran, so this is an offload,
		// not a re-execution.
		id := int(m.Seq)
		if om := c.outstanding[m.From]; om != nil {
			if b, ok := om[id]; ok {
				delete(om, id)
				if c.Counters != nil {
					c.Counters.TasksOffloaded.Add(1)
				}
				if err := c.dispatch(b, m.From+1); err != nil {
					return err
				}
			}
		}
		return c.maybeCompleteDrain(m.From)
	case comm.KindHeartbeat:
		return c.onHeartbeat(m)
	case comm.KindJoin:
		return c.onJoin(m)
	case comm.KindDrain:
		return c.onDrain(m)
	}
	return nil
}

// detect runs one failure-detector sweep: silence beyond the adaptive
// suspect timeout is a heartbeat miss; beyond the down timeout the place
// is marked down and its work re-dispatched.
func (c *Coordinator) detect() error {
	for _, tr := range c.members.Tick(c.nowNS()) {
		switch tr.To {
		case member.Suspect:
			if c.Counters != nil {
				c.Counters.HeartbeatMisses.Add(1)
			}
			c.logf("coordinator: place %d suspected (silent too long)", tr.Place)
		case member.Down:
			c.logf("coordinator: place %d declared down by failure detector", tr.Place)
			if err := c.markDown(tr.Place); err != nil {
				return err
			}
		}
	}
	return nil
}

// onHeartbeat refreshes the member table and acks with the coordinator's
// view of the sender. A partitioned-then-healed executor learns from the
// Down in the ack that it must rejoin with a bumped incarnation; a beat
// that already carries the bumped incarnation is itself the rejoin.
func (c *Coordinator) onHeartbeat(m comm.Message) error {
	p, err := member.DecodePayload(m.Payload)
	if err != nil {
		return nil // malformed beat: ignore, the next one supersedes it
	}
	now := c.nowNS()
	if tr, ok := c.members.Heartbeat(m.From, p.Incarnation, now); ok && tr.To == member.Alive {
		switch tr.From {
		case member.Suspect:
			c.logf("coordinator: place %d refuted suspicion", m.From)
		case member.Down, member.Left, member.Unknown:
			// The beat rejoined the table (bumped incarnation after a
			// healed partition, or first contact): admit the place for
			// dispatch too, or it would stay sidelined forever.
			if err := c.admit(m.From, tr); err != nil {
				return err
			}
		}
	}
	ack := member.Payload{
		Incarnation: c.members.Incarnation(m.From),
		Epoch:       c.members.Epoch(),
		State:       c.members.State(m.From),
	}
	c.Node.Send(comm.Message{Kind: comm.KindHeartbeat, To: m.From,
		Payload: member.AppendPayload(nil, ack)})
	return nil
}

// onJoin admits a joining (or rejoining) place: it becomes eligible for
// dispatch again, and the transport's incarnation handshake has already
// re-established the link if it was evicted.
func (c *Coordinator) onJoin(m comm.Message) error {
	p, err := member.DecodePayload(m.Payload)
	if err != nil {
		return nil
	}
	tr, ok := c.members.Join(m.From, p.Incarnation, c.nowNS())
	if !ok {
		c.logf("coordinator: stale join from place %d (incarnation %d)", m.From, p.Incarnation)
		return nil
	}
	return c.admit(m.From, tr)
}

// admit makes a joined (or rejoined) place eligible for dispatch and
// pumps backlogged work into its fresh window.
func (c *Coordinator) admit(p int, tr member.Transition) error {
	rejoin := tr.From == member.Down || tr.From == member.Left
	c.alive[p] = true
	c.draining[p] = false
	if c.Counters != nil {
		if rejoin {
			c.Counters.MembershipRejoins.Add(1)
		} else {
			c.Counters.MembershipJoins.Add(1)
		}
	}
	c.logf("coordinator: place %d joined (incarnation %d, rejoin=%v)", p, tr.Incarnation, rejoin)
	return c.pump()
}

// onDrain starts a graceful departure: no new work is dispatched to the
// place; results and nacks for what is already outstanding flow back, and
// once nothing is left the coordinator releases the place with
// KindShutdown. Nothing is re-executed and the place is not counted lost.
func (c *Coordinator) onDrain(m comm.Message) error {
	if m.From <= 0 || m.From >= c.Places || c.draining[m.From] || !c.alive[m.From] {
		return nil
	}
	c.draining[m.From] = true
	c.members.Drain(m.From, c.nowNS())
	if c.Counters != nil {
		c.Counters.MembershipDrains.Add(1)
	}
	c.logf("coordinator: place %d draining (%d batch(es) outstanding there)",
		m.From, len(c.outstanding[m.From]))
	return c.maybeCompleteDrain(m.From)
}

// maybeCompleteDrain finishes a drain once nothing is outstanding at the
// draining place: the executor is released and recorded as departed.
func (c *Coordinator) maybeCompleteDrain(p int) error {
	if p <= 0 || p >= c.Places || !c.draining[p] || !c.alive[p] {
		return nil
	}
	if len(c.outstanding[p]) > 0 {
		return nil
	}
	c.alive[p] = false
	delete(c.outstanding, p)
	c.members.Left(p, c.nowNS())
	c.logf("coordinator: place %d drain complete, released", p)
	c.Node.Send(comm.Message{Kind: comm.KindShutdown, To: p})
	return nil
}

// slot returns the first alive, non-draining place at or after preferred
// (skipping the coordinator and any place in skip) with window capacity
// left, or -1.
func (c *Coordinator) slot(preferred int, skip map[int]bool) int {
	for try := 0; try < c.Places; try++ {
		dest := (preferred + try) % c.Places
		if dest == 0 || !c.alive[dest] || c.draining[dest] || skip[dest] {
			continue
		}
		if len(c.outstanding[dest]) >= c.window() {
			continue
		}
		return dest
	}
	return -1
}

// survivors reports whether any executor is still eligible for work.
func (c *Coordinator) survivors() bool {
	for p := 1; p < c.Places; p++ {
		if c.alive[p] && !c.draining[p] {
			return true
		}
	}
	return false
}

// dispatch sends b to the first eligible place with window capacity at
// or after preferred. With every survivor saturated the batch waits in
// the backlog; with no survivor at all it runs locally, or fails with a
// *NoSurvivorsError if RunLocal is unset.
func (c *Coordinator) dispatch(b Batch, preferred int) error {
	env := &task.Envelope{Name: c.TaskName, Arg: b.Arg, Origin: 0, Class: task.Flexible}
	var shed map[int]bool
	for {
		dest := c.slot(preferred, shed)
		if dest < 0 {
			break
		}
		env.Home = dest
		payload, err := env.Encode()
		if err != nil {
			return err
		}
		err = c.Node.Send(comm.Message{Kind: comm.KindSpawn, To: dest, Seq: uint64(b.ID), Payload: payload})
		if errors.Is(err, comm.ErrPlaceDown) {
			if err := c.markDown(dest); err != nil {
				return err
			}
			continue
		}
		if errors.Is(err, comm.ErrBackpressure) {
			// A typed shed — the destination's queue is full, not broken.
			// Retrying the same place immediately is a retry storm; instead
			// skip it for this dispatch and, if everyone sheds, park the
			// batch in the backlog for the RetryAfter backoff to re-pump.
			if c.Counters != nil {
				c.Counters.Backpressure.Add(1)
			}
			c.logf("coordinator: place %d shed batch %d (backpressure), backing off", dest, b.ID)
			if shed == nil {
				shed = make(map[int]bool)
			}
			shed[dest] = true
			continue
		}
		if err != nil {
			return err
		}
		if c.outstanding[dest] == nil {
			c.outstanding[dest] = make(map[int]Batch)
		}
		c.outstanding[dest][b.ID] = b
		return nil
	}
	if c.survivors() {
		c.backlog = append(c.backlog, b)
		return nil
	}
	if c.RunLocal == nil {
		return &NoSurvivorsError{Batch: b.ID}
	}
	return c.runHere(b)
}

// pump drains the backlog into freed window slots. Called whenever
// capacity may have appeared: a result or nack came back, a place
// joined, a place went down (its work re-homed elsewhere), or the
// RetryAfter backoff expired after a backpressure shed.
func (c *Coordinator) pump() error {
	for len(c.backlog) > 0 {
		b := c.backlog[0]
		if c.got[b.ID] {
			c.backlog = c.backlog[1:] // a re-dispatched twin already finished
			continue
		}
		if c.slot(b.ID, nil) < 0 {
			if c.survivors() {
				return nil // every survivor saturated; wait for results
			}
			if c.RunLocal == nil {
				return &NoSurvivorsError{Batch: b.ID}
			}
			c.backlog = c.backlog[1:]
			if err := c.runHere(b); err != nil {
				return err
			}
			continue
		}
		before := len(c.backlog)
		c.backlog = c.backlog[1:]
		if err := c.dispatch(b, b.ID); err != nil {
			return err
		}
		if len(c.backlog) >= before {
			// dispatch re-parked the batch (every survivor shed it with
			// backpressure): stop pumping instead of spinning on a queue
			// that cannot move until the backoff or an inbound event.
			return nil
		}
	}
	return nil
}

// runHere executes b on the coordinator and accounts its result.
func (c *Coordinator) runHere(b Batch) error {
	res, err := c.RunLocal(b.Arg)
	if err != nil {
		return err
	}
	c.finish(b.ID, res)
	return nil
}

// markDown records a place's failure and re-dispatches every batch that
// was outstanding there.
func (c *Coordinator) markDown(p int) error {
	if p <= 0 || p >= c.Places || !c.alive[p] {
		return nil
	}
	c.alive[p] = false
	c.draining[p] = false
	c.members.MarkDown(p, c.nowNS())
	if c.Counters != nil {
		c.Counters.PlacesLost.Add(1)
	}
	orphans := c.outstanding[p]
	delete(c.outstanding, p)
	c.logf("coordinator: place %d down, re-dispatching %d batch(es)", p, len(orphans))
	spread := 0
	for _, b := range orphans {
		if c.Counters != nil {
			c.Counters.TasksReExecuted.Add(1)
		}
		// Rotate the preferred destination so a large orphan set spreads
		// over the survivors instead of piling onto one place.
		if err := c.dispatch(b, p+1+spread); err != nil {
			return err
		}
		spread++
	}
	return c.pump() // re-homed work may have freed or reordered slots
}

// retryOutstanding re-sends every outstanding batch after a silent period —
// the per-request timeout of the dispatch protocol.
func (c *Coordinator) retryOutstanding() error {
	type entry struct {
		place int
		b     Batch
	}
	var stale []entry
	for p, m := range c.outstanding {
		for _, b := range m {
			stale = append(stale, entry{p, b})
		}
	}
	for _, e := range stale {
		if c.got[e.b.ID] {
			continue // completed while we were resending
		}
		if c.Counters != nil {
			c.Counters.Retries.Add(1)
		}
		delete(c.outstanding[e.place], e.b.ID)
		if err := c.dispatch(e.b, e.place); err != nil {
			return err
		}
	}
	return nil
}

// finish accounts a batch result exactly once.
func (c *Coordinator) finish(id int, result []byte) {
	if c.got[id] {
		return
	}
	c.got[id] = true
	c.OnResult(id, result)
	c.pending--
}

// Executor is the serve loop of a non-coordinator place: it resolves
// arriving spawn envelopes against the task registry, runs them, and
// replies with the result under the same Seq.
type Executor struct {
	// Node is this process's transport attachment.
	Node comm.Node
	// Place is this executor's place id.
	Place int
	// Registry resolves envelope names; nil uses task.DefaultRegistry.
	Registry *task.Registry
	// Run executes one resolved task and returns the reply payload.
	Run func(name string, arg []byte) ([]byte, error)
	// Concurrency, when > 1, runs up to that many spawns at once in a
	// bounded worker pool — concurrent Finish scopes within one place, the
	// shape a long-lived service executor wants. Run must then be safe for
	// concurrent use. The default (<= 1) keeps the serial loop, where
	// CrashAfter fail-stops at an exact batch count; in the pool the
	// crash/drain knobs trigger on completion order, which is approximate
	// by nature.
	Concurrency int
	// CrashAfter > 0 makes the executor fail-stop (return without a
	// goodbye) after that many batches — the chaos knob.
	CrashAfter int
	// DrainAfter > 0 makes the executor start a graceful drain after that
	// many batches: it announces KindDrain, nacks queued spawns back to
	// the coordinator, and departs when released with KindShutdown.
	DrainAfter int
	// Heartbeat, when > 0, beats KindHeartbeat to the coordinator at this
	// cadence so its failure detector can tell silence from death. Pair
	// with Coordinator.Heartbeat.
	Heartbeat time.Duration
	// Incarnation is this executor's starting incarnation (default 1). A
	// restarted executor passes a strictly higher value than its previous
	// life so the cluster can tell a rejoin from a stale announcement.
	Incarnation uint32
	// Announce makes Serve send KindJoin before serving — required for
	// places the coordinator lists in Absent (runtime join) and for
	// rejoins after a restart.
	Announce bool
	// Logf reports lifecycle events; nil is silent.
	Logf func(format string, a ...any)

	inc      atomic.Uint32 // current incarnation (bumped on forced rejoin)
	draining atomic.Bool
}

// incarnation returns the current incarnation, initializing it from the
// configured start value on first use.
func (e *Executor) incarnation() uint32 {
	if v := e.inc.Load(); v != 0 {
		return v
	}
	start := e.Incarnation
	if start == 0 {
		start = 1
	}
	e.inc.CompareAndSwap(0, start)
	return e.inc.Load()
}

// membershipPayload encodes this executor's current membership claim.
func (e *Executor) membershipPayload() []byte {
	st := member.Alive
	if e.draining.Load() {
		st = member.Draining
	}
	return member.AppendPayload(nil, member.Payload{Incarnation: e.incarnation(), State: st})
}

// Drain starts a graceful departure from outside the serve loop: the
// executor announces the drain, finishes what it is running, returns
// queued batches, and exits once the coordinator releases it. Safe to
// call concurrently with Serve; idempotent.
func (e *Executor) Drain() {
	if e.draining.Swap(true) {
		return
	}
	if e.Logf != nil {
		e.Logf("node %d: drain requested", e.Place)
	}
	e.Node.Send(comm.Message{Kind: comm.KindDrain, To: 0, Payload: e.membershipPayload()})
}

// Serve processes messages until a KindShutdown arrives, the inbox
// closes, or the CrashAfter budget is spent. It returns the number of
// batches executed.
func (e *Executor) Serve() (int, error) {
	if e.Node == nil || e.Run == nil {
		return 0, fmt.Errorf("node: Executor needs Node and Run")
	}
	reg := e.Registry
	if reg == nil {
		reg = task.DefaultRegistry
	}
	if e.Announce {
		if err := e.Node.Send(comm.Message{Kind: comm.KindJoin, To: 0, Payload: e.membershipPayload()}); err != nil {
			return 0, fmt.Errorf("node %d: join announcement: %w", e.Place, err)
		}
	}
	if e.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(e.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// Lossy by design: a shed beat is superseded by the next.
					e.Node.Send(comm.Message{Kind: comm.KindHeartbeat, To: 0, Payload: e.membershipPayload()})
				}
			}
		}()
	}
	if e.Concurrency > 1 {
		return e.serveConcurrent(reg)
	}
	done := 0
	for m := range e.Node.Inbox() {
		switch m.Kind {
		case comm.KindShutdown:
			if e.Logf != nil {
				e.Logf("node %d: done after %d batches", e.Place, done)
			}
			return done, nil
		case comm.KindHeartbeat:
			// The coordinator's ack carries its view of us. Seeing Down
			// means a partition healed under our feet: the coordinator
			// evicted us while we kept running. Bump the incarnation and
			// rejoin — exactly-once is safe because results are
			// deduplicated by batch id.
			p, err := member.DecodePayload(m.Payload)
			if err == nil && p.State == member.Down && !e.draining.Load() &&
				p.Incarnation >= e.incarnation() {
				// The ack's incarnation proves the verdict is about our
				// CURRENT life — a stale ack about an incarnation we
				// already bumped past (queued behind a work backlog)
				// must not trigger another rejoin.
				e.inc.Add(1)
				if e.Logf != nil {
					e.Logf("node %d: coordinator saw us down, rejoining with incarnation %d", e.Place, e.inc.Load())
				}
				e.Node.Send(comm.Message{Kind: comm.KindJoin, To: 0, Payload: e.membershipPayload()})
			}
		case comm.KindSpawn:
			if e.draining.Load() {
				// Return the batch unstarted; the coordinator re-homes it.
				if err := e.Node.Send(comm.Message{Kind: comm.KindSpawnNack, To: 0, Seq: m.Seq}); err != nil {
					return done, err
				}
				continue
			}
			env, err := task.DecodeEnvelope(m.Payload)
			if err != nil {
				return done, err
			}
			if _, ok := reg.Lookup(env.Name); !ok {
				return done, fmt.Errorf("node %d: unknown remote task %q", e.Place, env.Name)
			}
			reply, err := e.Run(env.Name, env.Arg)
			if err != nil {
				return done, err
			}
			if err := e.Node.Send(comm.Message{Kind: comm.KindSpawnDone, To: env.Origin, Seq: m.Seq, Payload: reply}); err != nil {
				return done, err
			}
			done++
			if e.CrashAfter > 0 && done >= e.CrashAfter {
				if e.Logf != nil {
					e.Logf("node %d: fail-stop after %d batches", e.Place, done)
				}
				return done, nil
			}
			if e.DrainAfter > 0 && done >= e.DrainAfter {
				e.Drain()
			}
		}
	}
	return done, nil
}

// errCrashStop signals a CrashAfter fail-stop out of the worker pool.
var errCrashStop = errors.New("node: crash budget spent")

// serveConcurrent is the Concurrency > 1 serve loop: envelopes are decoded
// and validated in order on the loop, then executed by up to Concurrency
// workers, each replying under its own Seq as it finishes. Replies may
// therefore overtake each other — the coordinator and the service front
// door both correlate by Seq, never by order.
func (e *Executor) serveConcurrent(reg *task.Registry) (int, error) {
	sem := make(chan struct{}, e.Concurrency)
	errCh := make(chan error, e.Concurrency)
	var wg sync.WaitGroup
	var done atomic.Int64
	finish := func(err error) (int, error) {
		wg.Wait()
		if errors.Is(err, errCrashStop) {
			err = nil // fail-stop: return without a goodbye, like the serial loop
		}
		return int(done.Load()), err
	}
	for {
		select {
		case err := <-errCh:
			return finish(err)
		case m, ok := <-e.Node.Inbox():
			if !ok {
				return finish(nil)
			}
			switch m.Kind {
			case comm.KindShutdown:
				n, err := finish(nil)
				if e.Logf != nil {
					e.Logf("node %d: done after %d batches", e.Place, n)
				}
				return n, err
			case comm.KindHeartbeat:
				p, err := member.DecodePayload(m.Payload)
				if err == nil && p.State == member.Down && !e.draining.Load() &&
					p.Incarnation >= e.incarnation() {
					e.inc.Add(1)
					if e.Logf != nil {
						e.Logf("node %d: coordinator saw us down, rejoining with incarnation %d", e.Place, e.inc.Load())
					}
					e.Node.Send(comm.Message{Kind: comm.KindJoin, To: 0, Payload: e.membershipPayload()})
				}
			case comm.KindSpawn:
				if e.draining.Load() {
					if err := e.Node.Send(comm.Message{Kind: comm.KindSpawnNack, To: 0, Seq: m.Seq}); err != nil {
						return finish(err)
					}
					continue
				}
				env, err := task.DecodeEnvelope(m.Payload)
				if err != nil {
					return finish(err)
				}
				if _, ok := reg.Lookup(env.Name); !ok {
					return finish(fmt.Errorf("node %d: unknown remote task %q", e.Place, env.Name))
				}
				sem <- struct{}{} // bound the pool; blocks when saturated
				wg.Add(1)
				go func(seq uint64, origin int, env *task.Envelope) {
					defer wg.Done()
					defer func() { <-sem }()
					fail := func(err error) {
						select {
						case errCh <- err:
						default: // an earlier error already stops the loop
						}
					}
					reply, err := e.Run(env.Name, env.Arg)
					if err != nil {
						fail(err)
						return
					}
					if err := e.Node.Send(comm.Message{Kind: comm.KindSpawnDone, To: origin, Seq: seq, Payload: reply}); err != nil {
						fail(err)
						return
					}
					n := int(done.Add(1))
					if e.CrashAfter > 0 && n >= e.CrashAfter {
						if e.Logf != nil {
							e.Logf("node %d: fail-stop after %d batches", e.Place, n)
						}
						fail(errCrashStop)
						return
					}
					if e.DrainAfter > 0 && n >= e.DrainAfter {
						e.Drain()
					}
				}(m.Seq, env.Origin, env)
			}
		}
	}
}
