// Package node implements the distributed batch protocol that
// cmd/distws-node drives: a coordinator at place 0 dispatching registry
// tasks across the cluster with at-least-once delivery and exactly-once
// result accounting, and an executor loop at every other place. The
// protocol is transport-agnostic — it speaks through a comm.Node, so the
// same code runs over the star (tcp-hub) and peer-to-peer (tcp-mesh)
// topologies, and payloads stay opaque bytes end to end.
package node

import (
	"errors"
	"fmt"
	"time"

	"distws/internal/comm"
	"distws/internal/metrics"
	"distws/internal/task"
)

// Batch is one unit of dispatchable work: an id the result accounting is
// keyed on (carried on the wire as Message.Seq) and an opaque argument for
// the registered task.
type Batch struct {
	ID  int
	Arg []byte
}

// Coordinator is the resilient-finish state of place 0: it tracks which
// batch is outstanding at which place, re-dispatches when a place dies or
// goes silent, and deduplicates results so at-least-once dispatch still
// accounts every batch exactly once.
type Coordinator struct {
	// Node is this process's transport attachment (place 0).
	Node comm.Node
	// Places is the cluster size.
	Places int
	// Counters receives protocol accounting (PlacesLost, TasksReExecuted,
	// Retries); nil disables it.
	Counters *metrics.Counters
	// TaskName is the registry name executors resolve arriving spawns to.
	TaskName string
	// RunLocal executes one batch on the coordinator itself — the local
	// share of the work, and the fallback when no executor survives.
	RunLocal func(arg []byte) ([]byte, error)
	// OnResult consumes each batch's result payload, exactly once per id.
	OnResult func(id int, result []byte)
	// RetryAfter is the silence window after which outstanding batches are
	// re-sent. Defaults to 5s.
	RetryAfter time.Duration
	// Logf reports recovery events; nil is silent.
	Logf func(format string, a ...any)

	alive       []bool
	outstanding map[int]map[int]Batch // place -> batch id -> batch
	got         map[int]bool          // batch ids whose result is accounted
	pending     int
}

func (c *Coordinator) logf(format string, a ...any) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// Run dispatches batches across the cluster and blocks until every result
// is accounted, surviving executor crashes and lost messages. Every
// Places'th batch runs locally (the coordinator is a worker too); the rest
// go round robin over places 1..Places-1. On return it broadcasts
// KindShutdown to the surviving executors.
func (c *Coordinator) Run(batches []Batch) error {
	if c.Node == nil || c.RunLocal == nil || c.OnResult == nil {
		return fmt.Errorf("node: Coordinator needs Node, RunLocal, and OnResult")
	}
	if c.Places < 2 {
		return fmt.Errorf("node: Coordinator over %d places, want >= 2", c.Places)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	c.alive = make([]bool, c.Places)
	for p := 1; p < c.Places; p++ {
		c.alive[p] = true
	}
	c.outstanding = make(map[int]map[int]Batch)
	c.got = make(map[int]bool)
	c.pending = len(batches)

	for i, b := range batches {
		if i%c.Places == 0 {
			if err := c.runHere(b); err != nil {
				return err
			}
			continue
		}
		if err := c.dispatch(b, i%c.Places); err != nil {
			return err
		}
	}

	for c.pending > 0 {
		select {
		case m, ok := <-c.Node.Inbox():
			if !ok {
				return fmt.Errorf("node: inbox closed with %d batches outstanding", c.pending)
			}
			switch m.Kind {
			case comm.KindPlaceDown:
				if err := c.markDown(m.From); err != nil {
					return err
				}
			case comm.KindSpawnDone:
				id := int(m.Seq)
				if om := c.outstanding[m.From]; om != nil {
					delete(om, id)
				}
				c.finish(id, m.Payload)
			}
		case <-time.After(c.RetryAfter):
			c.logf("coordinator: no progress for %v, re-sending %d batch(es)", c.RetryAfter, c.pending)
			if err := c.retryOutstanding(); err != nil {
				return err
			}
		}
	}
	for p := 1; p < c.Places; p++ {
		if c.alive[p] {
			c.Node.Send(comm.Message{Kind: comm.KindShutdown, To: p})
		}
	}
	return nil
}

// dispatch sends b to the first alive place at or after preferred
// (skipping the coordinator), executing locally when no executor survives.
func (c *Coordinator) dispatch(b Batch, preferred int) error {
	env := &task.Envelope{Name: c.TaskName, Arg: b.Arg, Origin: 0, Class: task.Flexible}
	for try := 0; try < c.Places; try++ {
		dest := (preferred + try) % c.Places
		if dest == 0 || !c.alive[dest] {
			continue
		}
		env.Home = dest
		payload, err := env.Encode()
		if err != nil {
			return err
		}
		err = c.Node.Send(comm.Message{Kind: comm.KindSpawn, To: dest, Seq: uint64(b.ID), Payload: payload})
		if errors.Is(err, comm.ErrPlaceDown) {
			if err := c.markDown(dest); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if c.outstanding[dest] == nil {
			c.outstanding[dest] = make(map[int]Batch)
		}
		c.outstanding[dest][b.ID] = b
		return nil
	}
	return c.runHere(b)
}

// runHere executes b on the coordinator and accounts its result.
func (c *Coordinator) runHere(b Batch) error {
	res, err := c.RunLocal(b.Arg)
	if err != nil {
		return err
	}
	c.finish(b.ID, res)
	return nil
}

// markDown records a place's failure and re-dispatches every batch that
// was outstanding there.
func (c *Coordinator) markDown(p int) error {
	if p <= 0 || p >= c.Places || !c.alive[p] {
		return nil
	}
	c.alive[p] = false
	if c.Counters != nil {
		c.Counters.PlacesLost.Add(1)
	}
	orphans := c.outstanding[p]
	delete(c.outstanding, p)
	c.logf("coordinator: place %d down, re-dispatching %d batch(es)", p, len(orphans))
	for _, b := range orphans {
		if c.Counters != nil {
			c.Counters.TasksReExecuted.Add(1)
		}
		if err := c.dispatch(b, p+1); err != nil {
			return err
		}
	}
	return nil
}

// retryOutstanding re-sends every outstanding batch after a silent period —
// the per-request timeout of the dispatch protocol.
func (c *Coordinator) retryOutstanding() error {
	type entry struct {
		place int
		b     Batch
	}
	var stale []entry
	for p, m := range c.outstanding {
		for _, b := range m {
			stale = append(stale, entry{p, b})
		}
	}
	for _, e := range stale {
		if c.got[e.b.ID] {
			continue // completed while we were resending
		}
		if c.Counters != nil {
			c.Counters.Retries.Add(1)
		}
		delete(c.outstanding[e.place], e.b.ID)
		if err := c.dispatch(e.b, e.place); err != nil {
			return err
		}
	}
	return nil
}

// finish accounts a batch result exactly once.
func (c *Coordinator) finish(id int, result []byte) {
	if c.got[id] {
		return
	}
	c.got[id] = true
	c.OnResult(id, result)
	c.pending--
}

// Executor is the serve loop of a non-coordinator place: it resolves
// arriving spawn envelopes against the task registry, runs them, and
// replies with the result under the same Seq.
type Executor struct {
	// Node is this process's transport attachment.
	Node comm.Node
	// Place is this executor's place id.
	Place int
	// Registry resolves envelope names; nil uses task.DefaultRegistry.
	Registry *task.Registry
	// Run executes one resolved task and returns the reply payload.
	Run func(name string, arg []byte) ([]byte, error)
	// CrashAfter > 0 makes the executor fail-stop (return without a
	// goodbye) after that many batches — the chaos knob.
	CrashAfter int
	// Logf reports lifecycle events; nil is silent.
	Logf func(format string, a ...any)
}

// Serve processes messages until a KindShutdown arrives, the inbox
// closes, or the CrashAfter budget is spent. It returns the number of
// batches executed.
func (e *Executor) Serve() (int, error) {
	if e.Node == nil || e.Run == nil {
		return 0, fmt.Errorf("node: Executor needs Node and Run")
	}
	reg := e.Registry
	if reg == nil {
		reg = task.DefaultRegistry
	}
	done := 0
	for m := range e.Node.Inbox() {
		switch m.Kind {
		case comm.KindShutdown:
			if e.Logf != nil {
				e.Logf("node %d: done after %d batches", e.Place, done)
			}
			return done, nil
		case comm.KindSpawn:
			env, err := task.DecodeEnvelope(m.Payload)
			if err != nil {
				return done, err
			}
			if _, ok := reg.Lookup(env.Name); !ok {
				return done, fmt.Errorf("node %d: unknown remote task %q", e.Place, env.Name)
			}
			reply, err := e.Run(env.Name, env.Arg)
			if err != nil {
				return done, err
			}
			if err := e.Node.Send(comm.Message{Kind: comm.KindSpawnDone, To: env.Origin, Seq: m.Seq, Payload: reply}); err != nil {
				return done, err
			}
			done++
			if e.CrashAfter > 0 && done >= e.CrashAfter {
				if e.Logf != nil {
					e.Logf("node %d: fail-stop after %d batches", e.Place, done)
				}
				return done, nil
			}
		}
	}
	return done, nil
}
