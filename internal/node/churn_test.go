// Churn tests for the batch protocol: graceful drain with offloaded
// (never re-executed) batches, runtime join of an absent place, the
// heartbeat failure detector catching a gray failure the transport
// cannot see, the typed no-survivors error, and retries racing the
// concurrent loss of several places.
package node

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"distws/internal/comm"
	"distws/internal/metrics"
	"distws/internal/task"
)

// churnHub builds a hub with n-1 connected spokes and a registry with
// one echo task, returning everything the churn tests share.
func churnHub(t *testing.T, places int) (*comm.Hub, []*comm.Spoke, *task.Registry, *metrics.Counters) {
	t.Helper()
	reg := task.NewRegistry()
	reg.Register("test.echo", func([]byte) error { return nil })
	var ctrs metrics.Counters
	hub, err := comm.ListenHub("127.0.0.1:0", places, &ctrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	spokes := make([]*comm.Spoke, places)
	for p := 1; p < places; p++ {
		s, err := comm.DialSpoke(hub.Addr(), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		spokes[p] = s
		t.Cleanup(func() { s.Close() })
	}
	if err := hub.AwaitTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return hub, spokes, reg, &ctrs
}

// echoRun is the executor work function: reply with 3× the batch id,
// after an optional delay that keeps the run alive long enough for the
// scheduled churn to land mid-flight.
func echoRun(delay time.Duration) func(string, []byte) ([]byte, error) {
	return func(name string, arg []byte) ([]byte, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return u64(binary.BigEndian.Uint64(arg) * 3), nil
	}
}

// runCoordinator drives batches through coord and checks the
// exactly-once contract: every id accounted once, with the right value.
func runCoordinator(t *testing.T, coord *Coordinator, batches int) error {
	t.Helper()
	work := make([]Batch, batches)
	for i := range work {
		work[i] = Batch{ID: i, Arg: u64(uint64(i))}
	}
	results := make(map[int]uint64)
	calls := make(map[int]int)
	var mu sync.Mutex
	coord.OnResult = func(id int, result []byte) {
		mu.Lock()
		defer mu.Unlock()
		calls[id]++
		results[id] = binary.BigEndian.Uint64(result)
	}
	err := coord.Run(work)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < batches; i++ {
		if calls[i] != 1 {
			t.Fatalf("batch %d accounted %d times, want exactly once", i, calls[i])
		}
		if results[i] != uint64(i)*3 {
			t.Fatalf("batch %d result = %d, want %d", i, results[i], uint64(i)*3)
		}
	}
	return nil
}

// TestExecutorDrainGraceful drains an executor mid-run: it announces
// after two batches, nacks its queued spawns back, and the coordinator
// offloads them to the survivor — nothing re-executed, nothing lost.
func TestExecutorDrainGraceful(t *testing.T) {
	hub, spokes, reg, ctrs := churnHub(t, 3)

	type served struct {
		done int
		err  error
	}
	exDone := make(chan served, 2)
	go func() {
		ex := &Executor{Node: spokes[1], Place: 1, Registry: reg,
			Run: echoRun(2 * time.Millisecond), DrainAfter: 2}
		done, err := ex.Serve()
		exDone <- served{done, err}
	}()
	go func() {
		ex := &Executor{Node: spokes[2], Place: 2, Registry: reg,
			Run: echoRun(time.Millisecond)}
		done, err := ex.Serve()
		exDone <- served{done, err}
	}()

	coord := &Coordinator{
		Node:       hub,
		Places:     3,
		Counters:   ctrs,
		TaskName:   "test.echo",
		RetryAfter: 2 * time.Second,
	}
	if err := runCoordinator(t, coord, 18); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	var drained served
	for i := 0; i < 2; i++ {
		s := <-exDone
		if s.err != nil {
			t.Fatalf("executor: %v", s.err)
		}
		if s.done == 2 {
			drained = s
		}
	}
	if drained.done != 2 {
		t.Fatalf("draining executor served %d batches, want exactly its DrainAfter=2", drained.done)
	}
	if got := ctrs.MembershipDrains.Load(); got != 1 {
		t.Fatalf("MembershipDrains = %d, want 1", got)
	}
	if ctrs.TasksOffloaded.Load() == 0 {
		t.Fatalf("drain returned no queued batches; expected offloads")
	}
	if got := ctrs.TasksReExecuted.Load(); got != 0 {
		t.Fatalf("graceful drain re-executed %d batches, want 0", got)
	}
	if got := ctrs.PlacesLost.Load(); got != 0 {
		t.Fatalf("graceful drain counted as place loss: %d", got)
	}
}

// TestExecutorJoinAbsent starts place 2 absent: its transport link is
// up but it has not announced, so it gets no work until its KindJoin
// lands mid-run.
func TestExecutorJoinAbsent(t *testing.T) {
	hub, spokes, reg, ctrs := churnHub(t, 3)

	exDone := make(chan error, 2)
	go func() {
		ex := &Executor{Node: spokes[1], Place: 1, Registry: reg,
			Run: echoRun(4 * time.Millisecond)}
		_, err := ex.Serve()
		exDone <- err
	}()
	go func() {
		// The joiner: silent for 80ms, then announces and serves.
		time.Sleep(80 * time.Millisecond)
		ex := &Executor{Node: spokes[2], Place: 2, Registry: reg,
			Run: echoRun(time.Millisecond), Announce: true}
		_, err := ex.Serve()
		exDone <- err
	}()

	coord := &Coordinator{
		Node:       hub,
		Places:     3,
		Counters:   ctrs,
		TaskName:   "test.echo",
		Absent:     []int{2},
		RetryAfter: 2 * time.Second,
	}
	if err := runCoordinator(t, coord, 40); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-exDone; err != nil {
			t.Fatalf("executor: %v", err)
		}
	}
	if got := ctrs.MembershipJoins.Load(); got != 1 {
		t.Fatalf("MembershipJoins = %d, want 1", got)
	}
	if got := ctrs.TasksReExecuted.Load(); got != 0 {
		t.Fatalf("a join must not re-execute batches, got %d", got)
	}
}

// TestHeartbeatDetectorGrayFailure is the failure the transport cannot
// see: place 2's process stops serving but its connection stays open,
// so no KindPlaceDown ever fires. Only the heartbeat detector notices
// the silence, declares the place down, and re-dispatches its work.
func TestHeartbeatDetectorGrayFailure(t *testing.T) {
	hub, spokes, reg, ctrs := churnHub(t, 3)

	exDone := make(chan error, 2)
	go func() {
		ex := &Executor{Node: spokes[1], Place: 1, Registry: reg,
			Run: echoRun(time.Millisecond), Heartbeat: 15 * time.Millisecond}
		_, err := ex.Serve()
		exDone <- err
	}()
	go func() {
		// Gray failure: beat a few times (the detector needs a last-heard
		// baseline), burn 60ms on one batch, then go silent with the
		// connection still open.
		ex := &Executor{Node: spokes[2], Place: 2, Registry: reg,
			Run: echoRun(60 * time.Millisecond), Heartbeat: 15 * time.Millisecond,
			CrashAfter: 1}
		_, err := ex.Serve()
		exDone <- err
	}()

	coord := &Coordinator{
		Node:       hub,
		Places:     3,
		Counters:   ctrs,
		TaskName:   "test.echo",
		Heartbeat:  20 * time.Millisecond,
		RetryAfter: 10 * time.Second, // only the detector may recover this run
	}
	if err := runCoordinator(t, coord, 12); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := <-exDone; err != nil {
		t.Fatalf("executor: %v", err)
	}
	if got := ctrs.HeartbeatMisses.Load(); got == 0 {
		t.Fatalf("the silent place was never suspected")
	}
	if got := ctrs.PlacesLost.Load(); got != 1 {
		t.Fatalf("PlacesLost = %d, want 1 (detector-declared down)", got)
	}
	if got := ctrs.TasksReExecuted.Load(); got == 0 {
		t.Fatalf("the dead place's outstanding batches were never re-dispatched")
	}
}

// TestNoSurvivorsTyped removes the last executor under a coordinator
// with no RunLocal fallback: Run must fail with the typed, matchable
// no-survivors error instead of wedging or silently running locally.
func TestNoSurvivorsTyped(t *testing.T) {
	hub, spokes, reg, ctrs := churnHub(t, 2)

	exDone := make(chan error, 1)
	go func() {
		ex := &Executor{Node: spokes[1], Place: 1, Registry: reg,
			Run: echoRun(time.Millisecond), CrashAfter: 1}
		_, err := ex.Serve()
		spokes[1].Close() // fail-stop: the transport sees the link die
		exDone <- err
	}()

	coord := &Coordinator{
		Node:       hub,
		Places:     2,
		Counters:   ctrs,
		TaskName:   "test.echo",
		RetryAfter: 2 * time.Second,
	}
	err := runCoordinator(t, coord, 5)
	if err == nil {
		t.Fatalf("coordinator with no survivors and no RunLocal should fail")
	}
	if !errors.Is(err, ErrNoSurvivors) {
		t.Fatalf("error = %v, want errors.Is(_, ErrNoSurvivors)", err)
	}
	var nse *NoSurvivorsError
	if !errors.As(err, &nse) {
		t.Fatalf("error %T does not unwrap to *NoSurvivorsError", err)
	}
	if nse.Batch < 0 || nse.Batch >= 5 {
		t.Fatalf("NoSurvivorsError.Batch = %d, want a dispatched batch id", nse.Batch)
	}
	if err := <-exDone; err != nil {
		t.Fatalf("executor: %v", err)
	}
}

// TestRetryRacesConcurrentCrashes crashes every executor at staggered
// points while a short retry timer keeps re-sending outstanding work:
// retryOutstanding races the markDown of multiple places, and the
// RunLocal fallback must still account every batch exactly once. Run
// with -race.
func TestRetryRacesConcurrentCrashes(t *testing.T) {
	hub, spokes, reg, ctrs := churnHub(t, 4)

	exDone := make(chan error, 3)
	for p := 1; p <= 3; p++ {
		go func(p int) {
			ex := &Executor{Node: spokes[p], Place: p, Registry: reg,
				Run: echoRun(time.Millisecond), CrashAfter: p + 1}
			_, err := ex.Serve()
			spokes[p].Close()
			exDone <- err
		}(p)
	}

	coord := &Coordinator{
		Node:     hub,
		Places:   4,
		Counters: ctrs,
		TaskName: "test.echo",
		RunLocal: func(arg []byte) ([]byte, error) {
			return u64(binary.BigEndian.Uint64(arg) * 3), nil
		},
		RetryAfter: 50 * time.Millisecond,
	}
	if err := runCoordinator(t, coord, 30); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := <-exDone; err != nil {
			t.Fatalf("executor: %v", err)
		}
	}
	if got := ctrs.PlacesLost.Load(); got != 3 {
		t.Fatalf("PlacesLost = %d, want 3", got)
	}
	if ctrs.TasksReExecuted.Load() == 0 {
		t.Fatalf("crashing every executor re-dispatched nothing")
	}
}
