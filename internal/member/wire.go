package member

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Payload is the body of every membership message (heartbeat, join,
// drain, heartbeat ack). It rides inside a comm.Message frame, so it
// needs no own length prefix — just a fixed binary layout:
//
//	offset 0: version (1 byte, payloadVersion)
//	offset 1: state   (1 byte, the sender's view of the subject place)
//	offset 2: incarnation (4 bytes, big-endian)
//	offset 6: epoch       (8 bytes, big-endian)
type Payload struct {
	// Incarnation is the subject place's incarnation number.
	Incarnation uint32
	// Epoch is the sender's membership-table epoch (0 when the sender
	// keeps no table, e.g. a plain executor heartbeat).
	Epoch uint64
	// State is the sender's view of the subject place. In a heartbeat
	// ack it tells the executor what the coordinator thinks of it —
	// seeing Down here is how a partitioned executor learns it must
	// rejoin with a bumped incarnation.
	State State
}

const (
	payloadVersion = 1
	// PayloadSize is the encoded size of a Payload in bytes.
	PayloadSize = 14
)

// ErrBadPayload is wrapped by every DecodePayload failure, so callers
// can errors.Is it without parsing messages.
var ErrBadPayload = errors.New("member: malformed membership payload")

// AppendPayload appends the encoded payload to dst and returns the
// extended slice.
func AppendPayload(dst []byte, p Payload) []byte {
	var buf [PayloadSize]byte
	buf[0] = payloadVersion
	buf[1] = byte(p.State)
	binary.BigEndian.PutUint32(buf[2:6], p.Incarnation)
	binary.BigEndian.PutUint64(buf[6:14], p.Epoch)
	return append(dst, buf[:]...)
}

// DecodePayload parses an encoded membership payload.
func DecodePayload(b []byte) (Payload, error) {
	if len(b) != PayloadSize {
		return Payload{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadPayload, len(b), PayloadSize)
	}
	if b[0] != payloadVersion {
		return Payload{}, fmt.Errorf("%w: version %d, want %d", ErrBadPayload, b[0], payloadVersion)
	}
	if b[1] >= uint8(len(stateNames)) {
		return Payload{}, fmt.Errorf("%w: unknown state %d", ErrBadPayload, b[1])
	}
	return Payload{
		State:       State(b[1]),
		Incarnation: binary.BigEndian.Uint32(b[2:6]),
		Epoch:       binary.BigEndian.Uint64(b[6:14]),
	}, nil
}
