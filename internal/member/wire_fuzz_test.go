package member

import (
	"bytes"
	"testing"
)

// FuzzMemberPayload feeds arbitrary bytes to the membership payload
// decoder (DecodePayload must never panic and must reject malformed
// input with ErrBadPayload) and round-trips every accepted payload,
// mirroring comm's FuzzWireFrame for the frames these payloads ride in.
func FuzzMemberPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendPayload(nil, Payload{Incarnation: 1}))
	f.Add(AppendPayload(nil, Payload{Incarnation: 1 << 31, Epoch: 1 << 60, State: Left}))
	f.Add(bytes.Repeat([]byte{0xff}, PayloadSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		re := AppendPayload(nil, p)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %x -> %+v -> %x", data, p, re)
		}
		p2, err := DecodePayload(re)
		if err != nil || p2 != p {
			t.Fatalf("round trip: %+v, %v", p2, err)
		}
	})
}
