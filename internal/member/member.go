// Package member is the dynamic-membership layer: an epoch/incarnation
// membership table with a heartbeat-based failure detector, shared by
// the batch coordinator (internal/node) and usable over any transport.
//
// It replaces the fail-stop "sticky dead" model — where a place that
// misses traffic is down forever and the cluster only shrinks — with a
// partition-tolerant state machine:
//
//	unknown → alive → suspect → down → alive (rejoin, bumped incarnation)
//	                 ↘ draining → left (graceful departure)
//
// A place that falls silent is first *suspected* (its outstanding work
// is left alone), then declared *down* (work is re-dispatched) only
// after a second, longer timeout. A down place is not evicted: when the
// partition heals it rejoins by announcing itself with a bumped
// incarnation number, SWIM-style, which distinguishes a genuinely new
// process from delayed messages of the old one. Stale announcements
// (incarnation not newer than what the table already saw at down time)
// are rejected.
//
// # Adaptive timeouts
//
// Like the adapt policy's per-victim latency EWMA, the detector keeps a
// per-peer EWMA of heartbeat inter-arrival gaps and derives its
// timeouts from it: suspect after SuspectMult×gap, down after
// DownMult×gap, floored at MinTimeout. A peer on a slow or gray link
// earns a proportionally longer grace period instead of being declared
// down by a fixed global constant.
//
// The table is clock-agnostic: callers pass nanosecond timestamps, so
// the simulator can drive it with virtual time and the runtime with
// wall time, and transitions are a pure function of the observation
// sequence — deterministic under a deterministic schedule.
package member

import (
	"fmt"
	"sync"
)

// State is one place's membership state.
type State uint8

const (
	// Unknown is a provisioned seat that has not joined yet.
	Unknown State = iota
	// Alive is a healthy member.
	Alive
	// Suspect is a member that missed heartbeats but is not yet
	// declared down; its work is not re-dispatched.
	Suspect
	// Down is a member declared failed (or unreachable). It may rejoin
	// with a bumped incarnation.
	Down
	// Draining is a member departing gracefully: it refuses new work
	// but its in-flight work is still expected to complete.
	Draining
	// Left is a member that completed a graceful departure.
	Left
)

var stateNames = [...]string{
	Unknown:  "unknown",
	Alive:    "alive",
	Suspect:  "suspect",
	Down:     "down",
	Draining: "draining",
	Left:     "left",
}

// String returns the stable wire name of the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Eligible reports whether a member in this state may be handed new
// work.
func (s State) Eligible() bool { return s == Alive }

// Transition is one observed state change, returned so callers can
// count and log membership churn.
type Transition struct {
	Place       int
	From, To    State
	Incarnation uint32
	AtNS        int64
}

// Config tunes the failure detector. The zero value disables timeouts
// entirely (no Tick-driven transitions), which is the legacy fail-stop
// behaviour.
type Config struct {
	// MinTimeoutNS floors both adaptive timeouts, guarding against a
	// burst of fast heartbeats shrinking the gap EWMA to nothing.
	MinTimeoutNS int64
	// SuspectMult: silence longer than SuspectMult×gapEWMA moves an
	// alive peer to suspect. Zero picks 4.
	SuspectMult int64
	// DownMult: silence longer than DownMult×gapEWMA moves a suspect
	// peer to down. Zero picks 8. Must exceed SuspectMult.
	DownMult int64
}

func (c Config) suspectMult() int64 {
	if c.SuspectMult <= 0 {
		return 4
	}
	return c.SuspectMult
}

func (c Config) downMult() int64 {
	if c.DownMult <= 0 {
		return 8
	}
	return c.DownMult
}

// gapAlpha is the EWMA smoothing factor for heartbeat inter-arrival
// gaps, matching the adapt controller's latency EWMA.
const gapAlpha = 0.25

type row struct {
	state       State
	incarnation uint32
	lastHeardNS int64
	gapEWMA     float64 // smoothed heartbeat inter-arrival gap, ns
}

// Table is the membership table one coordinator (or peer) maintains
// over a fixed address space of provisioned seats. Safe for concurrent
// use. Every state change bumps the table epoch, so "has anything
// changed" is one comparison.
type Table struct {
	mu    sync.Mutex
	cfg   Config
	self  int
	epoch uint64
	rows  []row
}

// NewTable provisions a table for places seats, with self alive and
// every other seat unknown until it joins or is seeded with SeedAlive.
func NewTable(places, self int, cfg Config) *Table {
	if places <= 0 || self < 0 || self >= places {
		panic(fmt.Sprintf("member: NewTable(%d, %d)", places, self))
	}
	t := &Table{cfg: cfg, self: self, rows: make([]row, places)}
	t.rows[self] = row{state: Alive, incarnation: 1}
	return t
}

// SeedAlive marks place alive at incarnation 1 without a join message,
// for members known present at startup (the legacy fixed-cluster case).
func (t *Table) SeedAlive(place int, nowNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &t.rows[place]
	if r.state == Alive {
		return
	}
	t.epoch++
	r.state = Alive
	if r.incarnation == 0 {
		r.incarnation = 1
	}
	r.lastHeardNS = nowNS
}

// Join processes a join/rejoin announcement from place at incarnation
// inc. A first join admits any incarnation ≥ 1; a rejoin after Down or
// Left requires a strictly newer incarnation than the table recorded,
// rejecting replayed announcements from the failed process. Returns the
// transition and whether the announcement was accepted.
func (t *Table) Join(place int, inc uint32, nowNS int64) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) || inc == 0 {
		return Transition{}, false
	}
	r := &t.rows[place]
	switch r.state {
	case Unknown:
		// First contact: any live incarnation is news.
	case Down, Left:
		if inc <= r.incarnation {
			return Transition{}, false // stale announcement from the dead process
		}
	case Suspect:
		// An explicit join refutes the suspicion even at the same
		// incarnation.
	case Alive, Draining:
		if inc <= r.incarnation {
			return Transition{}, false // duplicate
		}
		// The process restarted faster than we noticed it die.
	}
	tr := Transition{Place: place, From: r.state, To: Alive, Incarnation: inc, AtNS: nowNS}
	t.epoch++
	r.state = Alive
	r.incarnation = inc
	r.lastHeardNS = nowNS
	r.gapEWMA = 0
	return tr, true
}

// Heartbeat processes one heartbeat from place at incarnation inc,
// refreshing its liveness and the gap EWMA. A heartbeat refutes
// suspicion; from Down it is accepted only with a newer incarnation
// (that is a rejoin). Returns a non-zero Transition when the state
// changed.
func (t *Table) Heartbeat(place int, inc uint32, nowNS int64) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) || inc == 0 {
		return Transition{}, false
	}
	r := &t.rows[place]
	switch r.state {
	case Alive, Draining:
		if inc < r.incarnation {
			return Transition{}, false
		}
		if r.lastHeardNS > 0 {
			gap := float64(nowNS - r.lastHeardNS)
			if gap > 0 {
				if r.gapEWMA == 0 {
					r.gapEWMA = gap
				} else {
					r.gapEWMA += gapAlpha * (gap - r.gapEWMA)
				}
			}
		}
		r.lastHeardNS = nowNS
		r.incarnation = inc
		return Transition{}, true
	case Suspect:
		if inc < r.incarnation {
			return Transition{}, false
		}
		tr := Transition{Place: place, From: Suspect, To: Alive, Incarnation: inc, AtNS: nowNS}
		t.epoch++
		r.state = Alive
		r.incarnation = inc
		r.lastHeardNS = nowNS
		return tr, true
	case Down, Left, Unknown:
		if r.state != Unknown && inc <= r.incarnation {
			return Transition{}, false // echo of the failed process
		}
		tr := Transition{Place: place, From: r.state, To: Alive, Incarnation: inc, AtNS: nowNS}
		t.epoch++
		r.state = Alive
		r.incarnation = inc
		r.lastHeardNS = nowNS
		r.gapEWMA = 0
		return tr, true
	}
	return Transition{}, false
}

// Drain moves place to Draining: no new work, in-flight work still
// expected. Returns false if the place was not alive or suspect.
func (t *Table) Drain(place int, nowNS int64) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) {
		return Transition{}, false
	}
	r := &t.rows[place]
	if r.state != Alive && r.state != Suspect {
		return Transition{}, false
	}
	tr := Transition{Place: place, From: r.state, To: Draining, Incarnation: r.incarnation, AtNS: nowNS}
	t.epoch++
	r.state = Draining
	r.lastHeardNS = nowNS
	return tr, true
}

// Left completes a graceful departure. Returns false unless the place
// was draining.
func (t *Table) Left(place int, nowNS int64) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) || t.rows[place].state != Draining {
		return Transition{}, false
	}
	r := &t.rows[place]
	tr := Transition{Place: place, From: Draining, To: Left, Incarnation: r.incarnation, AtNS: nowNS}
	t.epoch++
	r.state = Left
	return tr, true
}

// MarkDown force-declares place down, bypassing the detector — the path
// for transport-level failure notices (connection reset, handshake
// loss). Returns false if the place was already down, left, or unknown.
func (t *Table) MarkDown(place int, nowNS int64) (Transition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) {
		return Transition{}, false
	}
	r := &t.rows[place]
	if r.state != Alive && r.state != Suspect && r.state != Draining {
		return Transition{}, false
	}
	tr := Transition{Place: place, From: r.state, To: Down, Incarnation: r.incarnation, AtNS: nowNS}
	t.epoch++
	r.state = Down
	return tr, true
}

// Tick sweeps the table at nowNS, applying the adaptive timeouts:
// silent alive peers become suspect, silent suspect peers become down.
// The self seat never times out. Returns every transition, in place
// order. With a zero Config (no MinTimeoutNS and no observed gaps) the
// sweep is a no-op.
func (t *Table) Tick(nowNS int64) []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Transition
	for p := range t.rows {
		if p == t.self {
			continue
		}
		r := &t.rows[p]
		if r.state != Alive && r.state != Suspect {
			continue
		}
		gap := r.gapEWMA
		if float64(t.cfg.MinTimeoutNS) > gap {
			gap = float64(t.cfg.MinTimeoutNS)
		}
		if gap <= 0 || r.lastHeardNS == 0 {
			continue
		}
		silence := float64(nowNS - r.lastHeardNS)
		var to State
		switch {
		case r.state == Alive && silence > gap*float64(t.cfg.suspectMult()):
			to = Suspect
		case r.state == Suspect && silence > gap*float64(t.cfg.downMult()):
			to = Down
		default:
			continue
		}
		out = append(out, Transition{Place: p, From: r.state, To: to, Incarnation: r.incarnation, AtNS: nowNS})
		t.epoch++
		r.state = to
	}
	return out
}

// State returns place's current state (Unknown for out-of-range).
func (t *Table) State(place int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) {
		return Unknown
	}
	return t.rows[place].state
}

// Incarnation returns the last incarnation recorded for place.
func (t *Table) Incarnation(place int) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if place < 0 || place >= len(t.rows) {
		return 0
	}
	return t.rows[place].incarnation
}

// Epoch returns the table epoch, bumped by every state change.
func (t *Table) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// AliveCount returns how many seats (including self) are alive.
func (t *Table) AliveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.rows {
		if t.rows[i].state == Alive {
			n++
		}
	}
	return n
}

// Places returns the provisioned seat count.
func (t *Table) Places() int { return len(t.rows) }

// States returns a snapshot of every seat's state, indexed by place.
func (t *Table) States() []State {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]State, len(t.rows))
	for i := range t.rows {
		out[i] = t.rows[i].state
	}
	return out
}
