package member

import (
	"errors"
	"testing"
)

func ms(n int64) int64 { return n * 1e6 }

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Unknown: "unknown", Alive: "alive", Suspect: "suspect",
		Down: "down", Draining: "draining", Left: "left",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() != "state(99)" {
		t.Errorf("out-of-range state name = %q", State(99).String())
	}
	if !Alive.Eligible() || Suspect.Eligible() || Draining.Eligible() {
		t.Fatalf("only Alive should be dispatch-eligible")
	}
}

// TestLifecycle walks the full state machine of the package doc:
// unknown → alive → suspect → down → alive (rejoin, bumped incarnation).
func TestLifecycle(t *testing.T) {
	tab := NewTable(3, 0, Config{MinTimeoutNS: ms(10)})
	if tab.State(1) != Unknown || tab.State(0) != Alive {
		t.Fatalf("fresh table: self alive, others unknown")
	}
	epoch0 := tab.Epoch()

	tr, ok := tab.Join(1, 1, ms(1))
	if !ok || tr.From != Unknown || tr.To != Alive {
		t.Fatalf("join: %+v ok=%v", tr, ok)
	}
	if tab.Epoch() == epoch0 {
		t.Fatalf("join must bump the epoch")
	}

	// Heartbeats keep it alive...
	for i := int64(2); i <= 5; i++ {
		if _, ok := tab.Heartbeat(1, 1, ms(i)); !ok {
			t.Fatalf("heartbeat at %dms rejected", i)
		}
	}
	if got := tab.Tick(ms(6)); len(got) != 0 {
		t.Fatalf("tick with fresh heartbeats produced %v", got)
	}

	// ...silence > 4×timeout suspects it (gap EWMA ≈ 1ms, floored at 10ms).
	trs := tab.Tick(ms(50))
	if len(trs) != 1 || trs[0].To != Suspect || trs[0].Place != 1 {
		t.Fatalf("suspect sweep: %v", trs)
	}
	// Suspicion is not eviction: a late heartbeat refutes it.
	tr, ok = tab.Heartbeat(1, 1, ms(51))
	if !ok || tr.To != Alive || tr.From != Suspect {
		t.Fatalf("refutation: %+v ok=%v", tr, ok)
	}

	// Full silence: suspect, then down.
	if trs = tab.Tick(ms(100)); len(trs) != 1 || trs[0].To != Suspect {
		t.Fatalf("re-suspect: %v", trs)
	}
	if trs = tab.Tick(ms(200)); len(trs) != 1 || trs[0].To != Down {
		t.Fatalf("down sweep: %v", trs)
	}

	// Echoes of the dead process are rejected; a bumped incarnation rejoins.
	if _, ok = tab.Heartbeat(1, 1, ms(201)); ok {
		t.Fatalf("stale-incarnation heartbeat must not resurrect a down place")
	}
	if _, ok = tab.Join(1, 1, ms(202)); ok {
		t.Fatalf("stale-incarnation join must be rejected")
	}
	tr, ok = tab.Join(1, 2, ms(203))
	if !ok || tr.From != Down || tr.To != Alive || tr.Incarnation != 2 {
		t.Fatalf("rejoin: %+v ok=%v", tr, ok)
	}
	if tab.Incarnation(1) != 2 {
		t.Fatalf("incarnation not recorded")
	}
}

func TestDrainLifecycle(t *testing.T) {
	tab := NewTable(3, 0, Config{MinTimeoutNS: ms(10)})
	tab.SeedAlive(1, 0)
	tab.SeedAlive(2, 0)
	if tab.AliveCount() != 3 {
		t.Fatalf("AliveCount = %d, want 3", tab.AliveCount())
	}
	tr, ok := tab.Drain(1, ms(5))
	if !ok || tr.To != Draining {
		t.Fatalf("drain: %+v ok=%v", tr, ok)
	}
	if _, ok := tab.Drain(1, ms(6)); ok {
		t.Fatalf("double drain should be rejected")
	}
	// A draining place still heartbeats (flushing results) without
	// changing state.
	if tr, ok := tab.Heartbeat(1, 1, ms(7)); !ok || tr.To != Unknown {
		t.Fatalf("draining heartbeat: %+v ok=%v", tr, ok)
	}
	if tab.State(1) != Draining {
		t.Fatalf("heartbeat must not cancel a drain")
	}
	tr, ok = tab.Left(1, ms(9))
	if !ok || tr.To != Left {
		t.Fatalf("left: %+v ok=%v", tr, ok)
	}
	if _, ok := tab.Left(2, ms(9)); ok {
		t.Fatalf("non-draining place cannot leave")
	}
	// A left place can come back as a new process.
	if _, ok := tab.Join(1, 1, ms(20)); ok {
		t.Fatalf("left place rejoining needs a bumped incarnation")
	}
	if tr, ok := tab.Join(1, 2, ms(21)); !ok || tr.From != Left || tr.To != Alive {
		t.Fatalf("rejoin after leave: %+v ok=%v", tr, ok)
	}
}

func TestMarkDownAndUnknownTickInert(t *testing.T) {
	tab := NewTable(4, 0, Config{MinTimeoutNS: ms(10)})
	tab.SeedAlive(1, 0)
	tr, ok := tab.MarkDown(1, ms(1))
	if !ok || tr.To != Down {
		t.Fatalf("MarkDown: %+v ok=%v", tr, ok)
	}
	if _, ok := tab.MarkDown(1, ms(2)); ok {
		t.Fatalf("double MarkDown should report false")
	}
	// Seats that never joined and the self seat never time out.
	if trs := tab.Tick(ms(1e6)); len(trs) != 0 {
		t.Fatalf("unknown seats timed out: %v", trs)
	}
}

// TestAdaptiveTimeout shows the detector scaling with the observed
// heartbeat cadence: a slow-but-steady peer outlives a fixed-timeout
// detector's patience.
func TestAdaptiveTimeout(t *testing.T) {
	tab := NewTable(2, 0, Config{MinTimeoutNS: ms(1)})
	tab.SeedAlive(1, 0)
	// 100ms cadence → gap EWMA converges to 100ms.
	for i := int64(1); i <= 20; i++ {
		tab.Heartbeat(1, 1, ms(100*i))
	}
	// 300ms of silence is < 4×100ms: still alive.
	if trs := tab.Tick(ms(2000 + 300)); len(trs) != 0 {
		t.Fatalf("silence within adaptive bound suspected: %v", trs)
	}
	// 450ms of silence is > 4×100ms: suspect.
	if trs := tab.Tick(ms(2000 + 450)); len(trs) != 1 || trs[0].To != Suspect {
		t.Fatalf("silence beyond adaptive bound: %v", trs)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	in := Payload{Incarnation: 7, Epoch: 1 << 40, State: Suspect}
	b := AppendPayload(nil, in)
	if len(b) != PayloadSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), PayloadSize)
	}
	out, err := DecodePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestPayloadDecodeErrors(t *testing.T) {
	good := AppendPayload(nil, Payload{Incarnation: 1})
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:PayloadSize-1],
		"long":        append(append([]byte{}, good...), 0),
		"bad version": append([]byte{99}, good[1:]...),
		"bad state":   append([]byte{payloadVersion, 200}, good[2:]...),
	}
	for name, b := range cases {
		if _, err := DecodePayload(b); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: err = %v, want ErrBadPayload", name, err)
		}
	}
}
