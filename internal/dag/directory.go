package dag

import (
	"fmt"
	"strings"
)

// Directory records which places hold a current copy of each block. A
// producer completing at a place makes that place the block's sole
// resident (earlier copies are stale); a consumer fetching the block to
// another place adds a replica. Single-consumer like Tracker: the run's
// coordinator owns it.
type Directory struct {
	places int
	words  int
	bits   map[uint64][]uint64
}

// NewDirectory returns an empty directory for a cluster of places.
func NewDirectory(places int) *Directory {
	if places <= 0 {
		panic(fmt.Sprintf("dag: NewDirectory(%d), want > 0", places))
	}
	return &Directory{
		places: places,
		words:  (places + 63) / 64,
		bits:   make(map[uint64][]uint64),
	}
}

// SeedFrom installs the graph's initial block residency, wrapping
// declared owners into the cluster (a graph built for 16 places still
// seeds correctly on 4).
func (d *Directory) SeedFrom(g *Graph) {
	for b, p := range g.Seed {
		d.Produce(b, ((p%d.places)+d.places)%d.places)
	}
}

func (d *Directory) set(b uint64, place int) {
	w := d.bits[b]
	if w == nil {
		w = make([]uint64, d.words)
		d.bits[b] = w
	}
	w[place>>6] |= 1 << (uint(place) & 63)
}

// Produce records place as the block's sole resident: the producer just
// wrote it, so every other copy is stale.
func (d *Directory) Produce(b uint64, place int) {
	w := d.bits[b]
	if w == nil {
		d.set(b, place)
		return
	}
	for i := range w {
		w[i] = 0
	}
	w[place>>6] |= 1 << (uint(place) & 63)
}

// Replicate records that place now also holds a copy of b (a consumer
// fetched it).
func (d *Directory) Replicate(b uint64, place int) { d.set(b, place) }

// Resident reports whether place holds a current copy of b.
func (d *Directory) Resident(b uint64, place int) bool {
	w := d.bits[b]
	if w == nil {
		return false
	}
	return w[place>>6]&(1<<(uint(place)&63)) != 0
}

// Anywhere reports whether any place holds b (false for blocks never
// produced nor seeded — e.g. constants materialized wherever needed).
func (d *Directory) Anywhere(b uint64) bool {
	for _, word := range d.bits[b] {
		if word != 0 {
			return true
		}
	}
	return false
}

// ResidentBytes returns how many of task t's input bytes are already
// resident at place, and FetchBytes the complement that would have to
// move there — only counting blocks that exist somewhere (a block with
// no copy anywhere costs nothing to "fetch"; it has no source).
func (d *Directory) ResidentBytes(g *Graph, t, place int) int {
	var sum int
	for _, b := range g.Tasks[t].Inputs {
		if d.Resident(b, place) {
			sum += g.BlockBytes[b]
		}
	}
	return sum
}

// FetchBytes returns the input bytes task t would have to pull to place.
func (d *Directory) FetchBytes(g *Graph, t, place int) int {
	var sum int
	for _, b := range g.Tasks[t].Inputs {
		if !d.Resident(b, place) && d.Anywhere(b) {
			sum += g.BlockBytes[b]
		}
	}
	return sum
}

// MoveBytes is FetchBytes plus half the bytes of output blocks not
// resident at place. Running a task away from an output block's current
// home drags the block there — its sole copy after the Produce
// invalidation — so read-modify-write accumulators (Cholesky's trailing
// tiles, say) charge extra for displacement beyond the input fetch. The
// displacement weight is half a block, not a full one: once moved, the
// accumulator re-homes (later writers follow it via this same score)
// rather than being chased back, so a full-weight penalty would forbid
// moves that save real traffic — e.g. running a GEMM where both its
// panel tiles already reside. This is the placement score; FetchBytes
// alone is what a schedule actually pays.
func (d *Directory) MoveBytes(g *Graph, t, place int) int {
	sum := d.FetchBytes(g, t, place)
	for _, b := range g.Tasks[t].Outputs {
		if !d.Resident(b, place) && d.Anywhere(b) {
			sum += g.BlockBytes[b] / 2
		}
	}
	return sum
}

// Policy selects how the scheduler places and steals DAG tasks.
type Policy uint8

const (
	// PolicyBlind ignores the directory: tasks run at their declared
	// (owner-computes) home and thieves take the oldest queued task —
	// the locality-oblivious baseline.
	PolicyBlind Policy = iota
	// PolicyDataAware scores candidate places by resident-input bytes
	// versus migration cost and queue backlog, and thieves prefer the
	// queued task whose inputs are already resident at the thief.
	PolicyDataAware
	numPolicies
)

// String returns the canonical -dag-policy spelling.
func (p Policy) String() string {
	switch p {
	case PolicyBlind:
		return "blind"
	case PolicyDataAware:
		return "data-aware"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Valid reports whether p names a known policy.
func (p Policy) Valid() bool { return p < numPolicies }

// PolicyNames lists the valid -dag-policy spellings.
func PolicyNames() []string { return []string{"blind", "data-aware"} }

// ParsePolicy resolves a case-insensitive -dag-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "blind":
		return PolicyBlind, nil
	case "data-aware", "dataaware", "aware":
		return PolicyDataAware, nil
	default:
		return 0, fmt.Errorf("dag: unknown policy %q (valid: %s)",
			s, strings.Join(PolicyNames(), ", "))
	}
}

// BestPlace returns the place minimizing the data-aware placement score
// for task t:
//
//	score(p) = transfer(MoveBytes(t, p)) + backlogNS(p)
//
// — the modelled cost of moving the non-resident inputs (and displaced
// output blocks; see MoveBytes) to p plus the caller's estimate of how
// long p's queue delays a new task. transfer is the runtime's migration
// cost model (the simulator passes topology.Network.TransferNS; Execute
// passes a measured-bytes proxy). The declared home wins ties, then the
// lowest place id; the scan order is fixed, so the choice is
// deterministic.
func BestPlace(g *Graph, d *Directory, t int, backlogNS []int64, transfer func(bytes int) int64) int {
	home := g.Tasks[t].Home
	if home < 0 || home >= len(backlogNS) {
		home = 0
	}
	best := home
	bestScore := transfer(d.MoveBytes(g, t, home)) + backlogNS[home]
	for p := range backlogNS {
		if p == home {
			continue
		}
		score := transfer(d.MoveBytes(g, t, p)) + backlogNS[p]
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	return best
}
