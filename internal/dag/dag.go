// Package dag extends the task model beyond fork-join Finish scopes to
// dependency DAGs with dataflow-aware scheduling, following John,
// Milthorpe & Strazdins' distributed work stealing in a task-based
// dataflow runtime (arXiv:2211.00838). Tasks declare the data blocks
// they read and write (the same block-id namespace as
// task.Locality.Blocks); dependencies are derived from the dataflow —
// read-after-write, write-after-write and write-after-read in program
// order — plus any explicit control edges. A per-run Tracker releases a
// task into the scheduler only when its last dependency completes, and a
// block Directory records which places hold each block after its
// producer runs, so placement and stealing can weigh resident-input
// bytes against migration cost (see Policy and BestPlace).
//
// The package is runtime-agnostic: internal/sim replays a Graph in
// virtual time with the exact topology.Network.TransferNS cost model,
// and Execute (exec.go) drives the real goroutine runtime
// (internal/core) using measured payload sizes.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// Task is one node of a dataflow graph.
type Task struct {
	// ID is the task's index in Graph.Tasks.
	ID int
	// Label names the task for traces and debugging ("potrf(3)", ...).
	Label string
	// CostNS is the modelled single-worker execution time (simulator).
	CostNS int64
	// Home is the task's declared home place — where an owner-computes
	// decomposition would run it. Locality-blind placement uses it
	// verbatim; data-aware placement treats it as a tie-break preference.
	Home int
	// Inputs are the block ids the task reads. Each input whose producer
	// is another task adds a dependency edge.
	Inputs []uint64
	// Outputs are the block ids the task writes. Writing a block makes
	// this task the producer for subsequent readers and orders it after
	// the block's previous writer and readers.
	Outputs []uint64
	// Deps are explicit extra dependencies (task ids), for control edges
	// the dataflow does not capture. Most graphs leave this nil.
	Deps []int
}

// Graph is a complete dataflow program.
type Graph struct {
	// Name labels the workload ("cholesky", "lu", "pipeline").
	Name string
	// Tasks holds every task; Tasks[i].ID == i. Dependencies are derived
	// from block dataflow in slice order (the program order).
	Tasks []Task
	// BlockBytes gives each block's payload size, the unit of the
	// data-movement accounting. Blocks referenced by a task but absent
	// here are rejected by Validate.
	BlockBytes map[uint64]int
	// Seed records where each initially-materialized input block is
	// resident before any task runs (e.g. the block-cyclic owner of a
	// matrix tile). Blocks first written by a task need no seed entry.
	Seed map[uint64]int
	// SeqNS optionally records the modelled sequential execution time.
	// Zero means "sum of task costs".
	SeqNS int64
}

// NumTasks returns the task count.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// TotalWorkNS sums all task costs.
func (g *Graph) TotalWorkNS() int64 {
	var sum int64
	for i := range g.Tasks {
		sum += g.Tasks[i].CostNS
	}
	return sum
}

// Sequential returns the single-worker time: SeqNS when recorded, else
// the total work.
func (g *Graph) Sequential() int64 {
	if g.SeqNS > 0 {
		return g.SeqNS
	}
	return g.TotalWorkNS()
}

// InputBytes returns the total payload of t's input blocks.
func (g *Graph) InputBytes(t int) int {
	var sum int
	for _, b := range g.Tasks[t].Inputs {
		sum += g.BlockBytes[b]
	}
	return sum
}

// CycleError reports a dependency cycle: the explicit Deps edges closed
// a loop the program-order dataflow cannot produce on its own. Match
// with errors.As.
type CycleError struct {
	// Tasks are the ids left unreleasable once every acyclic task has
	// been peeled away (every member is on or downstream of a cycle).
	Tasks []int
}

// Error implements error.
func (e *CycleError) Error() string {
	ids := make([]string, 0, len(e.Tasks))
	for i, t := range e.Tasks {
		if i == 8 {
			ids = append(ids, "...")
			break
		}
		ids = append(ids, fmt.Sprintf("%d", t))
	}
	return fmt.Sprintf("dag: dependency cycle among %d task(s): %s",
		len(e.Tasks), strings.Join(ids, " "))
}

// Validate checks structural invariants — ids match indices, costs are
// non-negative, every referenced block has a size, explicit deps are in
// range — and rejects cyclic graphs with a *CycleError. Graphs whose
// edges come only from block dataflow are acyclic by construction
// (edges always point forward in program order); explicit Deps can
// close a loop, which this catches.
func (g *Graph) Validate() error {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != i {
			return fmt.Errorf("dag: task at index %d has ID %d", i, t.ID)
		}
		if t.CostNS < 0 {
			return fmt.Errorf("dag: task %d (%s) has negative cost %d", i, t.Label, t.CostNS)
		}
		for _, b := range t.Inputs {
			if _, ok := g.BlockBytes[b]; !ok {
				return fmt.Errorf("dag: task %d (%s) reads block %#x with no size", i, t.Label, b)
			}
		}
		for _, b := range t.Outputs {
			if _, ok := g.BlockBytes[b]; !ok {
				return fmt.Errorf("dag: task %d (%s) writes block %#x with no size", i, t.Label, b)
			}
		}
		for _, d := range t.Deps {
			if d < 0 || d >= len(g.Tasks) {
				return fmt.Errorf("dag: task %d (%s) depends on out-of-range task %d", i, t.Label, d)
			}
			if d == i {
				return fmt.Errorf("dag: task %d (%s) depends on itself", i, t.Label)
			}
		}
	}
	s := NewSchedule(g)
	// Kahn's algorithm: peel zero-in-degree tasks; anything left sits on
	// or behind a cycle.
	indeg := append([]int(nil), s.InDegree...)
	queue := make([]int, 0, len(g.Tasks))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	released := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		released++
		for _, m := range s.Dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if released != len(g.Tasks) {
		var stuck []int
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, i)
			}
		}
		return &CycleError{Tasks: stuck}
	}
	return nil
}

// Schedule is the derived dependency structure of a Graph: the edge
// lists a run needs, computed once and shared read-only across runs.
type Schedule struct {
	// Dependents[i] lists the tasks with an edge from i (sorted, deduped).
	Dependents [][]int
	// InDegree[i] is the number of distinct predecessors of task i.
	InDegree []int
}

// NewSchedule derives the dependency edges of g: for every block, its
// last writer precedes later readers (RAW) and its readers and previous
// writer precede the next writer (WAR, WAW), all in program order;
// explicit Deps edges are added on top. Parallel edges between the same
// task pair collapse to one.
func NewSchedule(g *Graph) *Schedule {
	n := len(g.Tasks)
	preds := make([][]int, n)
	lastWriter := make(map[uint64]int, len(g.BlockBytes))
	readers := make(map[uint64][]int, len(g.BlockBytes))
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for _, b := range t.Inputs {
			if w, ok := lastWriter[b]; ok && w != i {
				preds[i] = append(preds[i], w) // RAW
			}
			readers[b] = append(readers[b], i)
		}
		for _, b := range t.Outputs {
			if w, ok := lastWriter[b]; ok && w != i {
				preds[i] = append(preds[i], w) // WAW
			}
			for _, r := range readers[b] {
				if r != i {
					preds[i] = append(preds[i], r) // WAR
				}
			}
			lastWriter[b] = i
			delete(readers, b)
		}
		for _, d := range t.Deps {
			if d != i && d >= 0 && d < n {
				preds[i] = append(preds[i], d)
			}
		}
	}
	s := &Schedule{
		Dependents: make([][]int, n),
		InDegree:   make([]int, n),
	}
	for i, ps := range preds {
		sort.Ints(ps)
		prev := -1
		for _, p := range ps {
			if p == prev {
				continue
			}
			prev = p
			s.Dependents[p] = append(s.Dependents[p], i)
			s.InDegree[i]++
		}
	}
	return s
}

// Tracker is the per-run readiness state: a mutable in-degree vector
// over a shared Schedule. Not safe for concurrent use; each run owns
// one (the simulator's event loop and Execute's coordinator are both
// single-consumer).
type Tracker struct {
	s      *Schedule
	indeg  []int
	nDone  int
	nTasks int
}

// NewTracker returns a fresh readiness tracker over s.
func NewTracker(s *Schedule) *Tracker {
	return &Tracker{
		s:      s,
		indeg:  append([]int(nil), s.InDegree...),
		nTasks: len(s.InDegree),
	}
}

// Ready appends the initially-released tasks (in-degree zero, in id
// order) to dst and returns the extended slice.
func (tr *Tracker) Ready(dst []int) []int {
	for i, d := range tr.indeg {
		if d == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// Complete marks task id done and appends every dependent this releases
// (in id order) to dst, returning the extended slice.
func (tr *Tracker) Complete(id int, dst []int) []int {
	tr.nDone++
	for _, m := range tr.s.Dependents[id] {
		tr.indeg[m]--
		if tr.indeg[m] == 0 {
			dst = append(dst, m)
		}
	}
	return dst
}

// Done reports whether every task has completed.
func (tr *Tracker) Done() bool { return tr.nDone == tr.nTasks }
