package dag

import (
	"fmt"

	"distws/internal/core"
	"distws/internal/task"
)

// ExecOptions configures Execute.
type ExecOptions struct {
	// Policy selects locality-blind (declared homes) or data-aware
	// (directory-scored) placement.
	Policy Policy
	// Kernel runs one task's computation. It executes on a runtime
	// worker, possibly away from the task's home place; per-task data
	// races are excluded by the dependency graph, not by Kernel.
	Kernel func(t *Task)
}

// ExecStats reports the data-movement accounting of one Execute run,
// mirroring the simulator's DAG counters with measured payload sizes.
type ExecStats struct {
	Released       int64 // tasks released into the scheduler
	ResidentHits   int64 // input blocks resident at the executing place
	ResidentMisses int64 // input blocks fetched from another place
	FetchedBytes   int64 // bytes moved by those fetches
}

// ResidencyRate returns the hit fraction in percent (0 when nothing ran).
func (s ExecStats) ResidencyRate() float64 {
	total := s.ResidentHits + s.ResidentMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.ResidentHits) / float64(total)
}

// Execute runs dataflow graph g on the real goroutine runtime. A single
// coordinator goroutine (the Finish body) owns the tracker and the block
// directory: it launches the ready frontier, collects completions over a
// channel, accounts residency at the place each task actually executed,
// and releases dependents. The channel receive also publishes each
// producer's writes to its consumers, so kernels need no locking of
// their own.
//
// Placement under PolicyDataAware scores candidate places by the input
// bytes that would have to move there plus a backlog estimate
// (outstanding tasks × mean input payload) — the measured-bytes analogue
// of the simulator's TransferNS scoring.
func Execute(rt *core.Runtime, g *Graph, opts ExecOptions) (ExecStats, error) {
	if err := g.Validate(); err != nil {
		return ExecStats{}, err
	}
	if !opts.Policy.Valid() {
		return ExecStats{}, fmt.Errorf("dag: invalid policy %v", opts.Policy)
	}
	places := rt.Places()
	sch := NewSchedule(g)
	tr := NewTracker(sch)
	dir := NewDirectory(places)
	dir.SeedFrom(g)

	var meanBytes int64 = 1
	if n := len(g.Tasks); n > 0 {
		var total int64
		for i := range g.Tasks {
			total += int64(g.InputBytes(i))
		}
		if m := total / int64(n); m > 1 {
			meanBytes = m
		}
	}

	var stats ExecStats
	type doneMsg struct{ id, place int }
	done := make(chan doneMsg, len(g.Tasks))
	outstanding := make([]int64, places)
	backlog := make([]int64, places)
	chosen := make([]int, len(g.Tasks))

	pickHome := func(t int) int {
		declared := g.Tasks[t].Home % places
		if declared < 0 {
			declared += places
		}
		if opts.Policy == PolicyBlind {
			return declared
		}
		for p := range backlog {
			backlog[p] = outstanding[p] * meanBytes
		}
		// The graph's declared home may exceed the runtime's place count;
		// score against the wrapped one so the incumbent is placeable.
		saved := g.Tasks[t].Home
		g.Tasks[t].Home = declared
		best := BestPlace(g, dir, t, backlog, func(b int) int64 { return int64(b) })
		g.Tasks[t].Home = saved
		return best
	}

	err := rt.Run(func(c *core.Ctx) {
		c.Finish(func(fx *core.Ctx) {
			launch := func(id int) {
				h := pickHome(id)
				chosen[id] = h
				outstanding[h]++
				stats.Released++
				t := &g.Tasks[id]
				fx.AsyncLoc(h, task.Locality{
					Class:          task.Flexible,
					Blocks:         t.Inputs,
					MigrationBytes: g.InputBytes(id),
				}, func(ac *core.Ctx) {
					if opts.Kernel != nil {
						opts.Kernel(t)
					}
					done <- doneMsg{id: id, place: ac.Place()}
				})
			}
			for _, id := range tr.Ready(nil) {
				launch(id)
			}
			var rel []int
			for remaining := len(g.Tasks); remaining > 0; remaining-- {
				m := <-done
				outstanding[chosen[m.id]]--
				for _, b := range g.Tasks[m.id].Inputs {
					switch {
					case dir.Resident(b, m.place):
						stats.ResidentHits++
					case dir.Anywhere(b):
						stats.ResidentMisses++
						stats.FetchedBytes += int64(g.BlockBytes[b])
						dir.Replicate(b, m.place)
					default:
						// Never materialized anywhere: created in place.
						stats.ResidentHits++
					}
				}
				for _, b := range g.Tasks[m.id].Outputs {
					dir.Produce(b, m.place)
				}
				rel = tr.Complete(m.id, rel[:0])
				for _, id := range rel {
					launch(id)
				}
			}
		})
	})
	if err != nil {
		return stats, fmt.Errorf("dag: executing %q: %w", g.Name, err)
	}
	if !tr.Done() {
		return stats, fmt.Errorf("dag: %q finished with unreleased tasks", g.Name)
	}
	return stats, nil
}
