package dag

import (
	"errors"
	"reflect"
	"testing"
)

// chain builds a 3-task RAW chain: t0 writes b1, t1 reads b1 writes b2,
// t2 reads b2.
func chain() *Graph {
	return &Graph{
		Name: "chain",
		Tasks: []Task{
			{ID: 0, CostNS: 10, Outputs: []uint64{1}},
			{ID: 1, CostNS: 10, Inputs: []uint64{1}, Outputs: []uint64{2}},
			{ID: 2, CostNS: 10, Inputs: []uint64{2}},
		},
		BlockBytes: map[uint64]int{1: 100, 2: 200},
	}
}

func TestScheduleRAW(t *testing.T) {
	s := NewSchedule(chain())
	if got := s.InDegree; !reflect.DeepEqual(got, []int{0, 1, 1}) {
		t.Fatalf("InDegree = %v", got)
	}
	if got := s.Dependents[0]; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Dependents[0] = %v", got)
	}
	if got := s.Dependents[1]; !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Dependents[1] = %v", got)
	}
}

func TestScheduleWAWAndWAR(t *testing.T) {
	// t0 writes b, t1 reads b, t2 writes b again: t2 must wait for both
	// the previous writer (WAW) and the reader (WAR).
	g := &Graph{
		Tasks: []Task{
			{ID: 0, Outputs: []uint64{7}},
			{ID: 1, Inputs: []uint64{7}},
			{ID: 2, Outputs: []uint64{7}},
		},
		BlockBytes: map[uint64]int{7: 8},
	}
	s := NewSchedule(g)
	if got := s.Dependents[0]; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Dependents[0] = %v", got)
	}
	if got := s.Dependents[1]; !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Dependents[1] = %v", got)
	}
	if got := s.InDegree[2]; got != 2 {
		t.Fatalf("InDegree[2] = %d, want 2 (WAW + WAR)", got)
	}
}

func TestScheduleDedupsParallelEdges(t *testing.T) {
	// t1 reads two blocks both written by t0: one edge, in-degree 1.
	g := &Graph{
		Tasks: []Task{
			{ID: 0, Outputs: []uint64{1, 2}},
			{ID: 1, Inputs: []uint64{1, 2}, Deps: []int{0}},
		},
		BlockBytes: map[uint64]int{1: 8, 2: 8},
	}
	s := NewSchedule(g)
	if got := s.Dependents[0]; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Dependents[0] = %v", got)
	}
	if got := s.InDegree[1]; got != 1 {
		t.Fatalf("InDegree[1] = %d, want 1 after dedup", got)
	}
}

func TestReadModifyWriteHasNoSelfEdge(t *testing.T) {
	// A task reading and writing the same block (GEMM update in place)
	// must not depend on itself.
	g := &Graph{
		Tasks: []Task{
			{ID: 0, Outputs: []uint64{1}},
			{ID: 1, Inputs: []uint64{1}, Outputs: []uint64{1}},
		},
		BlockBytes: map[uint64]int{1: 8},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := NewSchedule(g).InDegree[1]; got != 1 {
		t.Fatalf("InDegree[1] = %d, want 1", got)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := chain()
	g.Tasks[0].Deps = []int{2} // close the loop
	err := g.Validate()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("Validate = %v, want *CycleError", err)
	}
	if len(ce.Tasks) != 3 {
		t.Fatalf("CycleError.Tasks = %v, want all 3", ce.Tasks)
	}
	if ce.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Graph)
	}{
		{"bad id", func(g *Graph) { g.Tasks[1].ID = 7 }},
		{"negative cost", func(g *Graph) { g.Tasks[0].CostNS = -1 }},
		{"unsized input", func(g *Graph) { g.Tasks[2].Inputs = []uint64{99} }},
		{"unsized output", func(g *Graph) { g.Tasks[0].Outputs = append(g.Tasks[0].Outputs, 99) }},
		{"dep out of range", func(g *Graph) { g.Tasks[1].Deps = []int{5} }},
		{"self dep", func(g *Graph) { g.Tasks[1].Deps = []int{1} }},
	} {
		g := chain()
		tc.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed graph", tc.name)
		}
	}
}

func TestTrackerReleaseOrder(t *testing.T) {
	// Diamond: 0 → {1,2} → 3.
	g := &Graph{
		Tasks: []Task{
			{ID: 0, Outputs: []uint64{1}},
			{ID: 1, Inputs: []uint64{1}, Outputs: []uint64{2}},
			{ID: 2, Inputs: []uint64{1}, Outputs: []uint64{3}},
			{ID: 3, Inputs: []uint64{2, 3}},
		},
		BlockBytes: map[uint64]int{1: 8, 2: 8, 3: 8},
	}
	tr := NewTracker(NewSchedule(g))
	if got := tr.Ready(nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Ready = %v", got)
	}
	if got := tr.Complete(0, nil); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Complete(0) = %v, want id order", got)
	}
	if got := tr.Complete(1, nil); len(got) != 0 {
		t.Fatalf("Complete(1) = %v, want none", got)
	}
	if tr.Done() {
		t.Fatal("Done too early")
	}
	if got := tr.Complete(2, nil); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Complete(2) = %v", got)
	}
	tr.Complete(3, nil)
	if !tr.Done() {
		t.Fatal("not Done after all completions")
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory(4)
	if d.Anywhere(1) {
		t.Fatal("empty directory claims residency")
	}
	d.Produce(1, 2)
	if !d.Resident(1, 2) || d.Resident(1, 0) {
		t.Fatal("Produce residency wrong")
	}
	d.Replicate(1, 0)
	if !d.Resident(1, 0) || !d.Resident(1, 2) {
		t.Fatal("Replicate lost a copy")
	}
	// A new producer invalidates every other copy.
	d.Produce(1, 3)
	if d.Resident(1, 0) || d.Resident(1, 2) || !d.Resident(1, 3) {
		t.Fatal("Produce did not invalidate stale copies")
	}
}

func TestDirectorySeedWraps(t *testing.T) {
	g := chain()
	g.Seed = map[uint64]int{1: 6} // built for more places than we have
	d := NewDirectory(4)
	d.SeedFrom(g)
	if !d.Resident(1, 2) {
		t.Fatal("seed owner not wrapped mod places")
	}
}

func TestFetchAndResidentBytes(t *testing.T) {
	g := chain()
	d := NewDirectory(2)
	d.Produce(1, 0)
	d.Produce(2, 1)
	// t2 reads block 2 (200B, resident at 1).
	if got := d.FetchBytes(g, 2, 1); got != 0 {
		t.Fatalf("FetchBytes at home = %d", got)
	}
	if got := d.FetchBytes(g, 2, 0); got != 200 {
		t.Fatalf("FetchBytes away = %d", got)
	}
	if got := d.ResidentBytes(g, 2, 1); got != 200 {
		t.Fatalf("ResidentBytes = %d", got)
	}
	// Blocks resident nowhere cost nothing to fetch.
	g.Tasks[2].Inputs = append(g.Tasks[2].Inputs, 1)
	d2 := NewDirectory(2)
	if got := d2.FetchBytes(g, 2, 0); got != 0 {
		t.Fatalf("FetchBytes of unmaterialized blocks = %d", got)
	}
}

func TestBestPlace(t *testing.T) {
	g := chain()
	g.Tasks[2].Home = 0
	d := NewDirectory(3)
	d.Produce(2, 1)
	transfer := func(b int) int64 { return int64(b) } // 1 ns per byte
	// No backlog: the resident place wins over the declared home.
	if got := BestPlace(g, d, 2, []int64{0, 0, 0}, transfer); got != 1 {
		t.Fatalf("BestPlace = %d, want resident place 1", got)
	}
	// Enough backlog at the resident place flips it back home.
	if got := BestPlace(g, d, 2, []int64{0, 500, 0}, transfer); got != 0 {
		t.Fatalf("BestPlace with backlog = %d, want home 0", got)
	}
	// Ties go to the declared home.
	if got := BestPlace(g, d, 2, []int64{0, 200, 0}, transfer); got != 0 {
		t.Fatalf("BestPlace tie = %d, want home 0", got)
	}
	// Task 0 has no inputs: everything ties, home wins.
	g.Tasks[0].Home = 2
	if got := BestPlace(g, d, 0, []int64{0, 0, 0}, transfer); got != 2 {
		t.Fatalf("BestPlace no-input = %d, want home 2", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"blind": PolicyBlind, "Data-Aware": PolicyDataAware, " aware ": PolicyDataAware,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
	if PolicyBlind.String() != "blind" || PolicyDataAware.String() != "data-aware" {
		t.Fatal("Policy.String mismatch")
	}
	if !PolicyBlind.Valid() || Policy(9).Valid() {
		t.Fatal("Policy.Valid mismatch")
	}
}

func TestGraphAccounting(t *testing.T) {
	g := chain()
	if g.NumTasks() != 3 || g.TotalWorkNS() != 30 || g.Sequential() != 30 {
		t.Fatal("accounting mismatch")
	}
	g.SeqNS = 25
	if g.Sequential() != 25 {
		t.Fatal("SeqNS not honored")
	}
	if got := g.InputBytes(2); got != 200 {
		t.Fatalf("InputBytes = %d", got)
	}
}
