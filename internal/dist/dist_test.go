package dist

import (
	"testing"
	"testing/quick"
)

func TestPlaceLocalHandle(t *testing.T) {
	h := NewPlaceLocalHandle(4, func(p int) int { return p * 10 })
	for p := 0; p < 4; p++ {
		if got := h.At(p); got != p*10 {
			t.Fatalf("At(%d) = %d, want %d", p, got, p*10)
		}
	}
	h.Set(2, 99)
	if h.At(2) != 99 {
		t.Fatalf("Set did not stick")
	}
	if h.Places() != 4 {
		t.Fatalf("Places() = %d", h.Places())
	}
}

func TestPlaceLocalHandlePanics(t *testing.T) {
	h := NewPlaceLocalHandle(2, func(int) int { return 0 })
	assertPanics(t, func() { h.At(2) })
	assertPanics(t, func() { h.At(-1) })
	assertPanics(t, func() { h.Set(5, 1) })
	assertPanics(t, func() { NewPlaceLocalHandle(0, func(int) int { return 0 }) })
}

func TestDistArrayBlockDistribution(t *testing.T) {
	d := NewDistArray(100, 4, func(i int) int { return i })
	// 100 over 4 places: 25 each.
	for p := 0; p < 4; p++ {
		lo, hi := d.Range(p)
		if hi-lo != 25 {
			t.Fatalf("place %d owns %d elements, want 25", p, hi-lo)
		}
		for i := lo; i < hi; i++ {
			if d.PlaceOf(i) != p {
				t.Fatalf("PlaceOf(%d) = %d, want %d", i, d.PlaceOf(i), p)
			}
		}
	}
}

func TestDistArrayUnevenDistribution(t *testing.T) {
	d := NewDistArray[int](10, 3, nil)
	total := 0
	for p := 0; p < 3; p++ {
		lo, hi := d.Range(p)
		if hi < lo {
			t.Fatalf("place %d has negative range [%d,%d)", p, lo, hi)
		}
		total += hi - lo
	}
	if total != 10 {
		t.Fatalf("ranges cover %d elements, want 10", total)
	}
}

func TestDistArrayGetSetLocal(t *testing.T) {
	d := NewDistArray(8, 2, func(i int) string { return "" })
	d.Set(5, "x")
	if d.Get(5) != "x" {
		t.Fatalf("Get after Set failed")
	}
	local := d.Local(1)
	if len(local) != 4 {
		t.Fatalf("Local(1) has %d elements, want 4", len(local))
	}
	local[1] = "y" // index 5 globally
	if d.Get(5) != "y" {
		t.Fatalf("Local must share storage with the array")
	}
}

func TestDistArrayPanics(t *testing.T) {
	d := NewDistArray[int](4, 2, nil)
	assertPanics(t, func() { d.Get(4) })
	assertPanics(t, func() { d.Set(-1, 0) })
	assertPanics(t, func() { d.Range(2) })
	assertPanics(t, func() { NewDistArray[int](-1, 2, nil) })
	assertPanics(t, func() { NewDistArray[int](4, 0, nil) })
}

// Property: every index belongs to exactly the place whose Range contains
// it, and ranges partition [0, n).
func TestDistArrayPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%200 + 1
		places := int(pRaw)%16 + 1
		d := NewDistArray[int](n, places, nil)
		covered := 0
		for p := 0; p < places; p++ {
			lo, hi := d.Range(p)
			covered += hi - lo
			for i := lo; i < hi; i++ {
				if d.PlaceOf(i) != p {
					return false
				}
			}
		}
		return covered == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: block sizes differ by at most one element.
func TestDistArrayBalanceProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%500 + 1
		places := int(pRaw)%16 + 1
		d := NewDistArray[int](n, places, nil)
		minSz, maxSz := n, 0
		for p := 0; p < places; p++ {
			lo, hi := d.Range(p)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}
