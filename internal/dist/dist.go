// Package dist provides the PGAS collection abstractions the paper's
// applications are written against: PlaceLocalHandle (X10's per-place
// storage resolved by a globally valid handle, §VI-B) and DistArray
// (a block-distributed array, as used by the Turing Ring pseudo-code in
// §IV-B and the Limitation example in §IX).
//
// In this in-process realization all places share an address space, so
// the collections enforce the place discipline logically: every element
// has an owning place, and applications consult PlaceOf to spawn work
// where the data lives. Accounting for remote access is the caller's job
// via Ctx.At.
package dist

import "fmt"

// PlaceLocalHandle resolves to one T per place — X10's PlaceLocalHandle.
// The scheduler itself uses the same idea for its per-place load objects.
type PlaceLocalHandle[T any] struct {
	vals []T
}

// NewPlaceLocalHandle builds a handle over places places, initializing
// each place's value with init.
func NewPlaceLocalHandle[T any](places int, init func(place int) T) *PlaceLocalHandle[T] {
	if places <= 0 {
		panic(fmt.Sprintf("dist: NewPlaceLocalHandle places=%d", places))
	}
	h := &PlaceLocalHandle[T]{vals: make([]T, places)}
	for p := range h.vals {
		h.vals[p] = init(p)
	}
	return h
}

// At returns the value local to place p.
func (h *PlaceLocalHandle[T]) At(p int) T {
	if p < 0 || p >= len(h.vals) {
		panic(fmt.Sprintf("dist: PlaceLocalHandle.At(%d) of %d places", p, len(h.vals)))
	}
	return h.vals[p]
}

// Set replaces the value local to place p. Only the owning place's workers
// should call this (the handle performs no synchronization, mirroring
// X10's place-local objects which are mutated by co-located workers only).
func (h *PlaceLocalHandle[T]) Set(p int, v T) {
	if p < 0 || p >= len(h.vals) {
		panic(fmt.Sprintf("dist: PlaceLocalHandle.Set(%d) of %d places", p, len(h.vals)))
	}
	h.vals[p] = v
}

// Places returns the number of places the handle spans.
func (h *PlaceLocalHandle[T]) Places() int { return len(h.vals) }

// DistArray is a block-distributed array: place p owns the contiguous
// index range [p·n/P, (p+1)·n/P).
type DistArray[T any] struct {
	n      int
	places int
	data   []T
}

// NewDistArray builds an n-element array distributed over places places,
// initialized by init (which may be nil for zero values).
func NewDistArray[T any](n, places int, init func(i int) T) *DistArray[T] {
	if n < 0 {
		panic(fmt.Sprintf("dist: NewDistArray n=%d", n))
	}
	if places <= 0 {
		panic(fmt.Sprintf("dist: NewDistArray places=%d", places))
	}
	d := &DistArray[T]{n: n, places: places, data: make([]T, n)}
	if init != nil {
		for i := range d.data {
			d.data[i] = init(i)
		}
	}
	return d
}

// Len returns the element count.
func (d *DistArray[T]) Len() int { return d.n }

// Places returns the number of places the array is distributed over.
func (d *DistArray[T]) Places() int { return d.places }

// PlaceOf returns the place owning index i under the block distribution.
func (d *DistArray[T]) PlaceOf(i int) int {
	d.check(i)
	if d.n == 0 {
		return 0
	}
	// Inverse of the block bounds: the place whose range contains i.
	p := i * d.places / d.n
	// Guard against rounding at block boundaries.
	for p > 0 && i < d.lo(p) {
		p--
	}
	for p < d.places-1 && i >= d.hi(p) {
		p++
	}
	return p
}

func (d *DistArray[T]) lo(p int) int { return p * d.n / d.places }
func (d *DistArray[T]) hi(p int) int { return (p + 1) * d.n / d.places }

// Range returns the index interval [lo, hi) owned by place p.
func (d *DistArray[T]) Range(p int) (lo, hi int) {
	if p < 0 || p >= d.places {
		panic(fmt.Sprintf("dist: Range(%d) of %d places", p, d.places))
	}
	return d.lo(p), d.hi(p)
}

// Local returns the slice of elements owned by place p, sharing storage
// with the array.
func (d *DistArray[T]) Local(p int) []T {
	lo, hi := d.Range(p)
	return d.data[lo:hi:hi]
}

// Get returns element i.
func (d *DistArray[T]) Get(i int) T {
	d.check(i)
	return d.data[i]
}

// Set stores v at index i.
func (d *DistArray[T]) Set(i int, v T) {
	d.check(i)
	d.data[i] = v
}

func (d *DistArray[T]) check(i int) {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", i, d.n))
	}
}
