package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTransferNS(t *testing.T) {
	n := Network{LatencyNS: 1000, BytesPerNS: 2, MsgOverheadBytes: 0}
	if got := n.TransferNS(0); got != 1000 {
		t.Fatalf("TransferNS(0) = %d, want 1000", got)
	}
	if got := n.TransferNS(2000); got != 2000 {
		t.Fatalf("TransferNS(2000) = %d, want 2000 (1000 latency + 1000 xfer)", got)
	}
}

func TestTransferNSNegativePayload(t *testing.T) {
	n := Network{LatencyNS: 100, BytesPerNS: 1}
	if got := n.TransferNS(-5); got != 100 {
		t.Fatalf("TransferNS(-5) = %d, want latency only", got)
	}
}

func TestTransferNSZeroBandwidth(t *testing.T) {
	n := Network{LatencyNS: 42}
	if got := n.TransferNS(1 << 20); got != 42 {
		t.Fatalf("zero bandwidth should degrade to latency-only, got %d", got)
	}
}

func TestTransferNSNegativeBandwidth(t *testing.T) {
	// A misconfigured (negative) bandwidth must behave like the zero
	// case — latency only — not divide into a negative transfer time.
	n := Network{LatencyNS: 42, BytesPerNS: -3}
	if got := n.TransferNS(1 << 20); got != 42 {
		t.Fatalf("negative bandwidth should degrade to latency-only, got %d", got)
	}
}

func TestTransferNSNegativePayloadWithOverhead(t *testing.T) {
	// The clamp applies to the payload alone: the per-message overhead
	// still transfers.
	n := Network{LatencyNS: 100, BytesPerNS: 1, MsgOverheadBytes: 64}
	if got := n.TransferNS(-1 << 30); got != 164 {
		t.Fatalf("TransferNS(negative) = %d, want 164 (latency + overhead)", got)
	}
}

func TestRoundTripNSEdgeCases(t *testing.T) {
	// Each leg clamps its payload independently.
	n := Network{LatencyNS: 10, BytesPerNS: 1}
	if got, want := n.RoundTripNS(-5, 3), int64(10+10+3); got != want {
		t.Fatalf("RoundTripNS(-5, 3) = %d, want %d", got, want)
	}
	if got, want := n.RoundTripNS(-5, -3), int64(10+10); got != want {
		t.Fatalf("RoundTripNS(-5, -3) = %d, want %d", got, want)
	}
	// Zero bandwidth degrades both legs to latency-only.
	n = Network{LatencyNS: 7}
	if got, want := n.RoundTripNS(1<<20, 1<<20), int64(14); got != want {
		t.Fatalf("RoundTripNS at zero bandwidth = %d, want %d", got, want)
	}
}

func TestTransferNSIncludesOverhead(t *testing.T) {
	n := Network{LatencyNS: 0, BytesPerNS: 1, MsgOverheadBytes: 64}
	if got := n.TransferNS(0); got != 64 {
		t.Fatalf("TransferNS(0) = %d, want 64 overhead bytes at 1 B/ns", got)
	}
}

func TestRoundTripNS(t *testing.T) {
	n := Network{LatencyNS: 10, BytesPerNS: 1}
	if got, want := n.RoundTripNS(5, 3), int64(10+5+10+3); got != want {
		t.Fatalf("RoundTripNS = %d, want %d", got, want)
	}
}

// Property: transfer time is monotone in payload size.
func TestTransferMonotoneProperty(t *testing.T) {
	n := DefaultNetwork()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return n.TransferNS(x) <= n.TransferNS(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCluster(t *testing.T) {
	c := Paper()
	if c.Places != 16 || c.WorkersPerPlace != 8 {
		t.Fatalf("Paper() = %d×%d, want 16×8", c.Places, c.WorkersPerPlace)
	}
	if c.Workers() != 128 {
		t.Fatalf("Workers() = %d, want 128", c.Workers())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Paper().Validate() = %v", err)
	}
}

func TestWithPlaces(t *testing.T) {
	c := Paper().WithPlaces(4)
	if c.Places != 4 || c.WorkersPerPlace != 8 || c.Workers() != 32 {
		t.Fatalf("WithPlaces(4) = %v", c)
	}
	if Paper().Places != 16 {
		t.Fatalf("WithPlaces must not mutate the receiver source")
	}
}

func TestValidate(t *testing.T) {
	bad := Cluster{Places: 0, WorkersPerPlace: 8}
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero places should not validate")
	}
	bad = Cluster{Places: 2, WorkersPerPlace: -1}
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative workers should not validate")
	}
	if err := Laptop().Validate(); err != nil {
		t.Fatalf("Laptop().Validate() = %v", err)
	}
}

func TestClusterString(t *testing.T) {
	s := Paper().String()
	if !strings.Contains(s, "16×8") || !strings.Contains(s, "128") {
		t.Fatalf("String() = %q", s)
	}
}
