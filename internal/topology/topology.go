// Package topology describes the cluster a run executes on — place and
// worker counts plus an interconnect/overhead cost model — for both the
// real runtime (which uses it for accounting) and the discrete-event
// simulator (which uses it to advance virtual time).
//
// The default model is calibrated to the paper's platform (§VII): a
// 16-node blade cluster, two quad-core 2 GHz Opterons per node (8 workers
// per place), connected by 10 Gbit/s InfiniBand via MVAPICH2.
package topology

import "fmt"

// Network models the cluster interconnect.
type Network struct {
	// LatencyNS is the one-way latency of a message between two places in
	// nanoseconds. InfiniBand with an MPI layer: a few microseconds.
	LatencyNS int64
	// BytesPerNS is the effective bandwidth. 10 Gbit/s = 1.25 GB/s =
	// 1.25 bytes/ns.
	BytesPerNS float64
	// MsgOverheadBytes is the fixed per-message envelope size (headers,
	// MPI matching info) added to every payload.
	MsgOverheadBytes int
}

// TransferNS returns the virtual time to move payloadBytes between two
// places: one-way latency plus serialization at the modelled bandwidth.
func (n Network) TransferNS(payloadBytes int) int64 {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	bytes := float64(payloadBytes + n.MsgOverheadBytes)
	if n.BytesPerNS <= 0 {
		return n.LatencyNS
	}
	return n.LatencyNS + int64(bytes/n.BytesPerNS)
}

// RoundTripNS returns the time for a request/reply exchange carrying
// reqBytes out and replyBytes back.
func (n Network) RoundTripNS(reqBytes, replyBytes int) int64 {
	return n.TransferNS(reqBytes) + n.TransferNS(replyBytes)
}

// Overheads models the scheduler's fixed software costs. These are the
// knobs behind the paper's observation that DistWS is slightly slower than
// X10WS on a single node (extra deque management and load-status
// exploration) but wins once cross-node steals become possible.
type Overheads struct {
	// DispatchNS: cost to pop a task from a private deque and start it.
	DispatchNS int64
	// SharedDequeNS: extra cost of the lock-guarded shared deque per
	// operation (push, poll, or steal).
	SharedDequeNS int64
	// MapDecisionNS: cost of the Algorithm-1 mapping decision (inspecting
	// place load) paid per flexible task under DistWS and DistWS-NS.
	MapDecisionNS int64
	// LocalStealNS: cost of a steal from a co-located worker's deque.
	LocalStealNS int64
	// IdlePollNS: how long an idle worker waits between failed work-finding
	// sweeps.
	IdlePollNS int64
}

// Cluster is a full machine description.
type Cluster struct {
	Places          int
	WorkersPerPlace int
	Net             Network
	Over            Overheads
}

// Workers returns the total worker count (places × workers per place).
func (c Cluster) Workers() int { return c.Places * c.WorkersPerPlace }

// Validate reports a descriptive error for nonsensical configurations.
func (c Cluster) Validate() error {
	if c.Places <= 0 {
		return fmt.Errorf("topology: Places = %d, want > 0", c.Places)
	}
	if c.WorkersPerPlace <= 0 {
		return fmt.Errorf("topology: WorkersPerPlace = %d, want > 0", c.WorkersPerPlace)
	}
	return nil
}

// String renders the cluster compactly, e.g. "16×8 (128 workers)".
func (c Cluster) String() string {
	return fmt.Sprintf("%d×%d (%d workers)", c.Places, c.WorkersPerPlace, c.Workers())
}

// DefaultNetwork models the paper's 10 Gbit/s InfiniBand + MVAPICH2 stack.
func DefaultNetwork() Network {
	return Network{
		LatencyNS:        5_000, // ~5 µs one-way through the MPI layer
		BytesPerNS:       1.25,  // 10 Gbit/s
		MsgOverheadBytes: 64,
	}
}

// DefaultOverheads provides software costs in line with the paper's
// description of steal-operation expense.
func DefaultOverheads() Overheads {
	return Overheads{
		DispatchNS:    200,
		SharedDequeNS: 400,
		MapDecisionNS: 150,
		LocalStealNS:  1_000,
		IdlePollNS:    20_000,
	}
}

// Paper returns the evaluation platform of §VII: 16 places × 8 workers.
func Paper() Cluster {
	return Cluster{
		Places:          16,
		WorkersPerPlace: 8,
		Net:             DefaultNetwork(),
		Over:            DefaultOverheads(),
	}
}

// WithPlaces returns a copy of the cluster scaled to p places, keeping the
// per-place worker count and cost model — the shape of the paper's Fig. 5
// sweep (1, 2, 4, 8, 16 places at X10_NTHREADS=8).
func (c Cluster) WithPlaces(p int) Cluster {
	c.Places = p
	return c
}

// Laptop returns a host-friendly configuration for examples and tests.
func Laptop() Cluster {
	return Cluster{
		Places:          4,
		WorkersPerPlace: 2,
		Net:             DefaultNetwork(),
		Over:            DefaultOverheads(),
	}
}
