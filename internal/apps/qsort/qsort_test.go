package qsort

import (
	"sort"
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(20_000, 7) }

func TestSequentialDeterministic(t *testing.T) {
	a, b := small().Sequential(), small().Sequential()
	if a != b {
		t.Fatalf("sequential checksum not deterministic: %x vs %x", a, b)
	}
}

func TestSequentialMatchesStdlibSort(t *testing.T) {
	a := small()
	data := a.gen()
	a.seqSort(data)
	want := small().gen()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("element %d = %d, want %d", i, data[i], want[i])
		}
	}
}

func TestPartitionSplitsAroundPivot(t *testing.T) {
	d := []int64{5, 3, 9, 1, 7, 2, 8}
	l, r := partition(d)
	if len(l) == 0 || len(r) == 0 || len(l)+len(r) != len(d) {
		t.Fatalf("partition sizes %d/%d", len(l), len(r))
	}
	maxL := l[0]
	for _, v := range l {
		if v > maxL {
			maxL = v
		}
	}
	for _, v := range r {
		if v < maxL {
			t.Fatalf("right element %d below left max %d", v, maxL)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS, sched.DistWSNS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel checksum %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if g.NumTasks() < 50 {
		t.Fatalf("trace too small: %d tasks", g.NumTasks())
	}
	if f := g.FlexibleFraction(); f <= 0 || f >= 1 {
		t.Fatalf("flexible fraction = %v, want in (0,1)", f)
	}
	// Calibration pins the mean flexible cost to Table I's 1.1 ms.
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 1_000_000 || mean > 1_200_000 {
		t.Fatalf("mean flexible granularity = %dns, want ~1.1ms", mean)
	}
	// Roots are spread over the places.
	if len(g.Roots) != 4 {
		t.Fatalf("roots = %d, want 4", len(g.Roots))
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places = 4
	cl.WorkersPerPlace = 2
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS, sched.DistWSNS} {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
	}
}

func TestChecksumDetectsUnsorted(t *testing.T) {
	sorted := []int64{1, 2, 3, 4}
	unsorted := []int64{1, 3, 2, 4}
	if checksum(sorted) == checksum(unsorted) {
		t.Fatalf("checksum should distinguish sorted from unsorted")
	}
}

func TestBucketsPartitionByRange(t *testing.T) {
	data := []int64{0, 1 << 61, (1 << 61) + 5, 1 << 60, (1 << 62) - 1}
	bks := buckets(data, 2)
	total := 0
	for p, b := range bks {
		total += len(b)
		width := (int64(1) << 62) / 2
		for _, v := range b {
			if got := int(v / width); got != p {
				t.Fatalf("value %d landed in bucket %d, want %d", v, p, got)
			}
		}
	}
	if total != len(data) {
		t.Fatalf("buckets lost elements: %d of %d", total, len(data))
	}
}

func TestBucketsAreSkewed(t *testing.T) {
	// The quadratic value transform concentrates keys in low buckets.
	a := small()
	bks := buckets(a.gen(), 8)
	if len(bks[0]) < 2*len(bks[7])+1 {
		t.Fatalf("bucket sizes not skewed: first=%d last=%d", len(bks[0]), len(bks[7]))
	}
}
