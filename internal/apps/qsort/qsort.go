// Package qsort implements the Cowichan Quicksort benchmark (paper §VII:
// sorting 100M elements). The parallel version is a task-parallel
// quicksort over a block-distributed array: every recursive segment is a
// task homed at the place owning the segment's start, and segments large
// enough to amortize a migration are annotated locality-flexible — they
// encapsulate their data (the sub-array) and keep a thief busy, matching
// the paper's task model (§II).
package qsort

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/task"
	"distws/internal/trace"
)

// App configures one Quicksort instance.
type App struct {
	// N is the number of elements (paper scale: 100_000_000).
	N int
	// Seed drives the input distribution.
	Seed int64
	// SeqCutoff is the segment size below which tasks sort sequentially.
	SeqCutoff int
	// FlexMin is the minimum segment size annotated @AnyPlaceTask.
	FlexMin int
	// GranularityNS is the Table I calibration target (1.1 ms).
	GranularityNS int64
}

// New returns a Quicksort app over n elements.
func New(n int, seed int64) *App {
	cutoff := n / 2048
	if cutoff < 64 {
		cutoff = 64
	}
	return &App{
		N:             n,
		Seed:          seed,
		SeqCutoff:     cutoff,
		FlexMin:       4 * cutoff,
		GranularityNS: 1_100_000, // Table I: 1.1 ms
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "quicksort" }

// gen produces the deterministic input array. The value distribution is
// deliberately skewed (quadratic transform): with range partitioning over
// places, low-range places own far more elements than high-range ones —
// the static imbalance the Cowichan distributed sort exhibits on
// non-uniform keys.
func (a *App) gen() []int64 {
	rng := rand.New(rand.NewSource(a.Seed))
	data := make([]int64, a.N)
	for i := range data {
		u := rng.Float64()
		data[i] = int64(u * u * float64(1<<62))
	}
	return data
}

// buckets partitions data by value range into places buckets (bucket p
// holds values in [p, p+1)·2^62/places), preserving input order within a
// bucket. Concatenating the sorted buckets yields the sorted array.
func buckets(data []int64, places int) [][]int64 {
	out := make([][]int64, places)
	width := (int64(1) << 62) / int64(places)
	for _, v := range data {
		p := int(v / width)
		if p < 0 {
			p = 0
		}
		if p >= places {
			p = places - 1
		}
		out[p] = append(out[p], v)
	}
	return out
}

// checksum hashes a sorted array: length, a sample of elements, and a
// sortedness witness.
func checksum(data []int64) uint64 {
	h := apps.NewFnv()
	h.Add(uint64(len(data)))
	step := len(data)/1024 + 1
	for i := 0; i < len(data); i += step {
		h.Add(uint64(data[i]))
	}
	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			h.Add(0xdead) // poison the checksum if unsorted
		}
	}
	return h.Sum()
}

// medianOfThree picks a deterministic pivot.
func medianOfThree(d []int64) int64 {
	a, b, c := d[0], d[len(d)/2], d[len(d)-1]
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	default:
		return c
	}
}

// partition splits d around a median-of-three pivot, returning the two
// halves (Hoare-style; both non-empty for len >= 2).
func partition(d []int64) (left, right []int64) {
	pivot := medianOfThree(d)
	i, j := 0, len(d)-1
	for {
		for d[i] < pivot {
			i++
		}
		for d[j] > pivot {
			j--
		}
		if i >= j {
			break
		}
		d[i], d[j] = d[j], d[i]
		i++
		j--
	}
	return d[:j+1], d[j+1:]
}

// seqSort sorts d with the same recursion the tasks use.
func (a *App) seqSort(d []int64) {
	for len(d) > a.SeqCutoff {
		l, r := partition(d)
		if len(l) == len(d) || len(r) == len(d) {
			break // all-equal segment; cutoff sort finishes it
		}
		if len(l) < len(r) {
			a.seqSort(l)
			d = r
		} else {
			a.seqSort(r)
			d = l
		}
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	data := a.gen()
	a.seqSort(data)
	return checksum(data)
}

// Parallel implements apps.App: a range-partitioned task-parallel sort.
// Each place owns a key range (bucket) and sorts it with recursive tasks
// (big segments flexible); concatenating the buckets yields the result.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	data := a.gen()
	places := rt.Places()
	bks := buckets(data, places)
	var taskCount atomic.Int64
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for p := 0; p < places; p++ {
				seg := bks[p]
				if len(seg) == 0 {
					continue
				}
				home := p
				c.AsyncLoc(home, a.locality(len(seg)), func(cc *core.Ctx) {
					a.sortTask(cc, seg, &taskCount)
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("qsort: %w", err)
	}
	merged := make([]int64, 0, a.N)
	for _, b := range bks {
		merged = append(merged, b...)
	}
	return checksum(merged), nil
}

// sortTask recursively sorts seg, spawning subtasks for both halves.
func (a *App) sortTask(ctx *core.Ctx, seg []int64, count *atomic.Int64) {
	count.Add(1)
	if len(seg) <= a.SeqCutoff {
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		return
	}
	l, r := partition(seg)
	if len(l) == len(seg) || len(r) == len(seg) {
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		return
	}
	ctx.Finish(func(c *core.Ctx) {
		c.AsyncLoc(c.Place(), a.locality(len(l)), func(cc *core.Ctx) {
			a.sortTask(cc, l, count)
		})
		a.sortTask(c, r, count)
	})
}

// locality classifies a segment task per the paper's model: coarse
// segments encapsulate their data and are flexible.
func (a *App) locality(segLen int) task.Locality {
	if segLen >= a.FlexMin {
		return task.Locality{
			Class:          task.Flexible,
			MigrationBytes: 8 * segLen,
		}
	}
	return task.SensitiveLocality
}

// Trace implements apps.App: it replays the real recursion on the real
// input, recording one task per segment with cost proportional to the
// partition work (and n·log n at the leaves), then calibrates the mean
// flexible granularity to Table I (1.1 ms).
func (a *App) Trace(places int) (*trace.Graph, error) {
	data := a.gen()
	bks := buckets(data, places)
	b := trace.NewBuilder(a.Name())
	for p := 0; p < places; p++ {
		seg := bks[p]
		if len(seg) == 0 {
			continue
		}
		root := b.Root(a.traceTask(len(seg), p, p, trace.HomeFixed))
		a.traceRec(b, root, seg, p)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("qsort: %w", err)
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("qsort: %w", err)
	}
	return g, nil
}

// traceRec partitions seg exactly like the parallel code and records the
// child tasks.
func (a *App) traceRec(b *trace.Builder, parent int, seg []int64, region int) {
	if len(seg) <= a.SeqCutoff {
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		return
	}
	l, r := partition(seg)
	if len(l) == len(seg) || len(r) == len(seg) {
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		return
	}
	lt := b.Child(parent, a.traceTask(len(l), 0, region, trace.HomeInherit))
	a.traceRec(b, lt, l, region)
	rt := b.Child(parent, a.traceTask(len(r), 0, region, trace.HomeInherit))
	a.traceRec(b, rt, r, region)
}

// traceTask models one segment task's costs and communication; region
// namespaces the footprint blocks by the owning data block.
func (a *App) traceTask(segLen, home, region int, mode trace.HomeMode) trace.Task {
	cost := int64(segLen) // one partition pass
	if segLen <= a.SeqCutoff {
		lg := math.Log2(float64(segLen) + 2)
		cost = int64(float64(segLen) * lg) // leaf sort
	}
	t := trace.Task{
		HomeMode: mode,
		Home:     home,
		CostNS:   cost,
		Flexible: segLen >= a.FlexMin,
		MigBytes: 8 * segLen,
		// Distributed-array traffic: the partition streams the segment
		// through the network layer in ~1 KiB chunks (Table III's
		// millions of messages for quicksort at 100M elements).
		BaseMsgs:  segLen / 128,
		BaseBytes: 8 * segLen / 128,
		Blocks:    segBlocks(segLen, region),
		BlockReps: 4,
	}
	if t.Flexible {
		// Writing the sorted segment back to the owner: page-sized chunks.
		t.MigMsgs = segLen / 4096
	}
	return t
}

// segBlocks gives a coarse footprint: one block per 512 elements, capped,
// namespaced by the data region the segment belongs to.
func segBlocks(segLen, region int) []uint64 {
	n := segLen / 512
	if n > 64 {
		n = 64
	}
	if n == 0 {
		n = 1
	}
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = uint64(region)<<32 | uint64(i)
	}
	return blocks
}

var _ apps.App = (*App)(nil)
