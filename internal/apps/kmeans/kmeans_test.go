package kmeans

import (
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(4_000, 5, 11) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestGenIsClusteredAndSorted(t *testing.T) {
	pts := small().gen()
	if len(pts) != 4_000 {
		t.Fatalf("gen produced %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X > pts[i].X {
			t.Fatalf("points not sorted by x at %d", i)
		}
	}
}

func TestSpatialPlacementIsSkewed(t *testing.T) {
	a := small()
	pts := a.gen()
	counts := make([]int, 4)
	for _, ch := range a.chunks() {
		counts[chunkPlace(pts, ch[0], 4)]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 2*minC+1 {
		t.Fatalf("chunk placement not skewed enough for the benchmark: %v", counts)
	}
}

func TestAssignChunkBasic(t *testing.T) {
	a := small()
	pts := []Point{{0, 0}, {1, 1}, {0.1, 0}, {0.9, 1}}
	cents := []Point{{0, 0}, {1, 1}, {-5, -5}, {5, 5}}
	p := a.assignChunk(pts, cents, 0, 4)
	if p.count[0] != 2 || p.count[1] != 2 {
		t.Fatalf("counts = %v, want [2 2 0 0]", p.count)
	}
}

func TestReduceHandlesEmptyCluster(t *testing.T) {
	a := small()
	p := newPartial(a.K)
	p.sumX[0], p.sumY[0], p.count[0] = 10, 20, 2
	prev := []Point{{9, 9}, {7, 7}, {6, 6}, {5, 5}}
	next := a.reduce([]*partial{p}, prev)
	if next[0].X != 5 || next[0].Y != 10 {
		t.Fatalf("cluster 0 centroid = %v", next[0])
	}
	if next[1] != prev[1] {
		t.Fatalf("empty cluster should keep previous centroid")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	a := small()
	g, err := a.Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	nChunks := len(a.chunks())
	want := (nChunks + 1) * a.Iters // chunk tasks + reduce task per iter
	if g.NumTasks() != want {
		t.Fatalf("NumTasks = %d, want %d", g.NumTasks(), want)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 350_000_000 || mean > 420_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~383ms", mean)
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS, sched.DistWSNS} {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
	}
}
