// Package kmeans implements the Cowichan k-Means benchmark (paper §VII:
// k-means clustering into four clusters over 1000 iterations). Points are
// distributed across places by spatial stripe, so clustered inputs give
// places very different point counts — the static imbalance DistWS
// repairs by stealing flexible assignment chunks.
//
// The reference "sequential" implementation uses the same chunked
// reduction order as the parallel one, so both produce bit-identical
// centroids and checksums.
package kmeans

import (
	"fmt"
	"math"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/task"
	"distws/internal/trace"
)

// Point is a 2-D sample.
type Point struct{ X, Y float64 }

// App configures one k-Means instance.
type App struct {
	// N is the number of points.
	N int
	// K is the number of clusters (the paper uses 4).
	K int
	// Iters is the number of Lloyd iterations (the paper uses 1000).
	Iters int
	// Seed drives the input distribution.
	Seed int64
	// ChunkSize is the number of points per assignment task.
	ChunkSize int
	// GranularityNS is the Table I calibration target (383 ms).
	GranularityNS int64
}

// New returns a k-Means app over n points for iters iterations.
func New(n, iters int, seed int64) *App {
	chunk := n / 256
	if chunk < 32 {
		chunk = 32
	}
	return &App{
		N:             n,
		K:             4,
		Iters:         iters,
		Seed:          seed,
		ChunkSize:     chunk,
		GranularityNS: 383_000_000, // Table I: 383 ms
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "kmeans" }

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gen produces clustered points: several Gaussian-ish blobs of very
// different sizes, sorted by x so that stripe distribution over places is
// skewed.
func (a *App) gen() []Point {
	pts := make([]Point, 0, a.N)
	blobs := []struct {
		cx, cy, r float64
		weight    int
	}{
		{0.15, 0.2, 0.05, 5},
		{0.2, 0.7, 0.08, 1},
		{0.55, 0.4, 0.1, 2},
		{0.85, 0.8, 0.04, 8},
	}
	totalW := 0
	for _, b := range blobs {
		totalW += b.weight
	}
	i := 0
	for len(pts) < a.N {
		h := mix(uint64(a.Seed), uint64(i))
		i++
		w := int(h % uint64(totalW))
		var blob int
		for bi, b := range blobs {
			if w < b.weight {
				blob = bi
				break
			}
			w -= b.weight
		}
		bl := blobs[blob]
		// Two hashes give a rough 2-D Gaussian via sum of uniforms.
		u1 := unit(mix(h, 1)) + unit(mix(h, 2)) - 1
		u2 := unit(mix(h, 3)) + unit(mix(h, 4)) - 1
		pts = append(pts, Point{bl.cx + bl.r*u1, bl.cy + bl.r*u2})
	}
	// Sort by x (deterministic) so stripes over places carry skewed counts.
	sortPointsByX(pts)
	return pts
}

func sortPointsByX(p []Point) {
	// Insertion-free deterministic sort: simple mergesort to avoid pulling
	// in sort.Slice's unstable ordering on ties (full determinism).
	if len(p) < 2 {
		return
	}
	mid := len(p) / 2
	left := append([]Point(nil), p[:mid]...)
	right := append([]Point(nil), p[mid:]...)
	sortPointsByX(left)
	sortPointsByX(right)
	i, j := 0, 0
	for k := range p {
		if i < len(left) && (j >= len(right) || left[i].X <= right[j].X) {
			p[k] = left[i]
			i++
		} else {
			p[k] = right[j]
			j++
		}
	}
}

// chunks returns the [lo,hi) chunk boundaries over n points.
func (a *App) chunks() [][2]int {
	var out [][2]int
	for lo := 0; lo < a.N; lo += a.ChunkSize {
		hi := lo + a.ChunkSize
		if hi > a.N {
			hi = a.N
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// partial accumulates one chunk's contribution to the new centroids.
type partial struct {
	sumX, sumY []float64
	count      []int64
}

func newPartial(k int) *partial {
	return &partial{sumX: make([]float64, k), sumY: make([]float64, k), count: make([]int64, k)}
}

// assignChunk assigns pts[lo:hi) to the nearest centroid, accumulating
// into a fresh partial.
func (a *App) assignChunk(pts []Point, cents []Point, lo, hi int) *partial {
	p := newPartial(a.K)
	for i := lo; i < hi; i++ {
		best, bestD := 0, math.MaxFloat64
		for k := 0; k < a.K; k++ {
			dx, dy := pts[i].X-cents[k].X, pts[i].Y-cents[k].Y
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = k, d
			}
		}
		p.sumX[best] += pts[i].X
		p.sumY[best] += pts[i].Y
		p.count[best]++
	}
	return p
}

// reduce folds partials (in chunk order) into new centroids; empty
// clusters keep their previous centroid.
func (a *App) reduce(parts []*partial, prev []Point) []Point {
	acc := newPartial(a.K)
	for _, p := range parts {
		for k := 0; k < a.K; k++ {
			acc.sumX[k] += p.sumX[k]
			acc.sumY[k] += p.sumY[k]
			acc.count[k] += p.count[k]
		}
	}
	next := make([]Point, a.K)
	for k := 0; k < a.K; k++ {
		if acc.count[k] == 0 {
			next[k] = prev[k]
			continue
		}
		next[k] = Point{acc.sumX[k] / float64(acc.count[k]), acc.sumY[k] / float64(acc.count[k])}
	}
	return next
}

// initialCentroids picks K deterministic spread seeds.
func (a *App) initialCentroids(pts []Point) []Point {
	cents := make([]Point, a.K)
	for k := 0; k < a.K; k++ {
		cents[k] = pts[(k*len(pts))/a.K+len(pts)/(2*a.K)]
	}
	return cents
}

func (a *App) checksum(cents []Point, counts []int64) uint64 {
	h := apps.NewFnv()
	for k := range cents {
		h.AddFloat(cents[k].X)
		h.AddFloat(cents[k].Y)
		h.Add(uint64(counts[k]))
	}
	return h.Sum()
}

// run executes the algorithm with a pluggable chunk executor, so the
// sequential and parallel paths share every line of numeric code.
func (a *App) run(eachIter func(pts, cents []Point, chunks [][2]int, parts []*partial)) uint64 {
	pts := a.gen()
	cents := a.initialCentroids(pts)
	chunks := a.chunks()
	var lastCounts []int64
	for iter := 0; iter < a.Iters; iter++ {
		parts := make([]*partial, len(chunks))
		eachIter(pts, cents, chunks, parts)
		cents = a.reduce(parts, cents)
		lastCounts = make([]int64, a.K)
		for _, p := range parts {
			for k := 0; k < a.K; k++ {
				lastCounts[k] += p.count[k]
			}
		}
	}
	return a.checksum(cents, lastCounts)
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	return a.run(func(pts, cents []Point, chunks [][2]int, parts []*partial) {
		for ci, ch := range chunks {
			parts[ci] = a.assignChunk(pts, cents, ch[0], ch[1])
		}
	})
}

// chunkPlace maps a chunk to the place owning its spatial region: the
// domain [0,1) is cut into equal x-stripes, one per place. Clustered
// inputs therefore give places very different chunk counts — the static
// imbalance the paper's scheduler repairs.
func chunkPlace(pts []Point, lo, places int) int {
	x := pts[lo].X
	p := int(x * float64(places))
	if p < 0 {
		p = 0
	}
	if p >= places {
		p = places - 1
	}
	return p
}

// Parallel implements apps.App.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	var sum uint64
	err := rt.Run(func(ctx *core.Ctx) {
		sum = a.run(func(pts, cents []Point, chunks [][2]int, parts []*partial) {
			ctx.Finish(func(c *core.Ctx) {
				for ci, ch := range chunks {
					ci, ch := ci, ch
					home := chunkPlace(pts, ch[0], places)
					loc := task.Locality{
						Class:          task.Flexible,
						MigrationBytes: 16 * (ch[1] - ch[0]),
						Blocks:         []uint64{uint64(ci)},
					}
					c.AsyncLoc(home, loc, func(*core.Ctx) {
						parts[ci] = a.assignChunk(pts, cents, ch[0], ch[1])
					})
				}
			})
		})
	})
	if err != nil {
		return 0, fmt.Errorf("kmeans: %w", err)
	}
	return sum, nil
}

// Trace implements apps.App: per iteration one flexible task per chunk
// (cost ∝ chunk×K distance evaluations), chained per chunk across
// iterations, plus a centroid-reduction task per iteration that exchanges
// messages with every place.
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	pts := a.gen()
	chunks := a.chunks()
	prev := make([]int, len(chunks))
	prevReduce := -1
	for iter := 0; iter < a.Iters; iter++ {
		for ci, ch := range chunks {
			sz := ch[1] - ch[0]
			t := trace.Task{
				HomeMode: trace.HomeFixed,
				Home:     chunkPlace(pts, ch[0], places),
				CostNS:   int64(sz * a.K),
				Flexible: true,
				MigBytes: 16 * sz,
				// Publishing the partial sums back to the reducer.
				BaseMsgs:  1,
				BaseBytes: 16 * a.K,
				Blocks:    chunkBlocks(ci, sz),
				BlockReps: 4,
			}
			if iter == 0 {
				prev[ci] = b.Root(t)
			} else {
				t.HomeMode = trace.HomeFixed // chunks stay with their stripe
				id := b.Child(prev[ci], t)
				prev[ci] = id
			}
		}
		// The reduction joins all partials; modelled as a sensitive task
		// at place 0 chained across iterations, gathering from and
		// broadcasting to every other place.
		rt := trace.Task{
			HomeMode:  trace.HomeFixed,
			Home:      0,
			CostNS:    int64(a.K * len(chunks)),
			Flexible:  false,
			BaseMsgs:  2 * (places - 1),
			BaseBytes: 32 * a.K * (places - 1),
		}
		if prevReduce < 0 {
			prevReduce = b.Root(rt)
		} else {
			prevReduce = b.Child(prevReduce, rt)
		}
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("kmeans: %w", err)
	}
	// Iteration ordering: children spawn at their parent's end.
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("kmeans: %w", err)
	}
	return g, nil
}

func chunkBlocks(ci, sz int) []uint64 {
	n := sz/256 + 1
	if n > 32 {
		n = 32
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(ci)<<16 | uint64(i)
	}
	return out
}

var _ apps.App = (*App)(nil)
