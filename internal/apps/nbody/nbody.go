// Package nbody implements the Cowichan n-Body benchmark with the
// Barnes–Hut algorithm (paper §VII: 220K bodies). Each step builds a
// quadtree and computes forces per body with the θ-criterion; bodies in
// dense regions traverse deeper subtrees, so equal-count body chunks have
// very different interaction counts — the irregular parallelism the paper
// highlights for this app.
//
// Force chunks are locality-flexible: they carry their bodies (one copy)
// and read the globally shared tree, matching the paper's observation
// that n-Body benefits strongly from selective distributed stealing
// (19% at 128 workers).
package nbody

import (
	"fmt"
	"math"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/task"
	"distws/internal/trace"
)

// Body is a point mass with velocity.
type Body struct {
	X, Y, VX, VY, M float64
}

// App configures one n-Body instance.
type App struct {
	// N is the number of bodies (paper scale: 220_000).
	N int
	// Steps is the number of leapfrog steps.
	Steps int
	// Theta is the Barnes–Hut opening angle (0.5 in the paper era).
	Theta float64
	// Seed drives the initial distribution.
	Seed int64
	// ChunkSize is the number of bodies per force task.
	ChunkSize int
	// GranularityNS is the Table I calibration target (623 ms).
	GranularityNS int64
}

// New returns an n-Body app over n bodies for steps steps.
func New(n, steps int, seed int64) *App {
	chunk := n / 256
	if chunk < 32 {
		chunk = 32
	}
	return &App{
		N:             n,
		Steps:         steps,
		Theta:         0.5,
		Seed:          seed,
		ChunkSize:     chunk,
		GranularityNS: 623_000_000, // Table I: 623 ms
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "nbody" }

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gen produces a clustered body distribution: a dense core plus a sparse
// halo, sorted by x so index chunks map to spatial stripes.
func (a *App) gen() []Body {
	bodies := make([]Body, a.N)
	for i := range bodies {
		h := mix(uint64(a.Seed), uint64(i))
		var x, y float64
		if h%10 < 7 {
			// Dense core around (0.3, 0.3).
			r := 0.08 * math.Sqrt(unit(mix(h, 1)))
			th := 2 * math.Pi * unit(mix(h, 2))
			x, y = 0.3+r*math.Cos(th), 0.3+r*math.Sin(th)
		} else {
			// Sparse halo over the whole domain.
			x, y = unit(mix(h, 3)), unit(mix(h, 4))
		}
		bodies[i] = Body{X: x, Y: y, M: 0.5 + unit(mix(h, 5))}
	}
	sortBodiesByX(bodies)
	return bodies
}

func sortBodiesByX(b []Body) {
	if len(b) < 2 {
		return
	}
	mid := len(b) / 2
	left := append([]Body(nil), b[:mid]...)
	right := append([]Body(nil), b[mid:]...)
	sortBodiesByX(left)
	sortBodiesByX(right)
	i, j := 0, 0
	for k := range b {
		if i < len(left) && (j >= len(right) || left[i].X <= right[j].X) {
			b[k] = left[i]
			i++
		} else {
			b[k] = right[j]
			j++
		}
	}
}

// node is a quadtree node.
type node struct {
	x, y, size     float64 // square cell: lower-left corner and side
	cmx, cmy, mass float64 // centre of mass
	body           int     // body index for leaves, -1 otherwise
	kids           [4]int32
	n              int // bodies under this node
}

// tree is a quadtree over the unit square.
type tree struct {
	nodes []node
}

const noKid = int32(-1)

func newNode(x, y, size float64) node {
	return node{x: x, y: y, size: size, body: -1, kids: [4]int32{noKid, noKid, noKid, noKid}}
}

// build constructs the quadtree for the bodies.
func build(bodies []Body) *tree {
	t := &tree{}
	t.nodes = append(t.nodes, newNode(0, 0, 1))
	for i := range bodies {
		t.insert(0, bodies, i, 0)
	}
	t.summarize(0, bodies)
	return t
}

// quadrant returns which child quadrant of nd contains (x, y).
func (nd *node) quadrant(x, y float64) int {
	q := 0
	if x >= nd.x+nd.size/2 {
		q |= 1
	}
	if y >= nd.y+nd.size/2 {
		q |= 2
	}
	return q
}

const maxDepth = 48

// insert adds body bi under node ni.
func (t *tree) insert(ni int, bodies []Body, bi, depth int) {
	nd := &t.nodes[ni]
	nd.n++
	if nd.n == 1 {
		nd.body = bi
		return
	}
	if depth >= maxDepth {
		// Coincident points: keep the node as a multi-body leaf.
		return
	}
	// Push any resident body down, then descend with the new one.
	if nd.body >= 0 {
		old := nd.body
		nd.body = -1
		t.child(ni, bodies[old].X, bodies[old].Y)
		// t.nodes may have been reallocated; re-take the pointer.
		ci := t.kid(ni, bodies[old].X, bodies[old].Y)
		t.insert(int(ci), bodies, old, depth+1)
	}
	t.child(ni, bodies[bi].X, bodies[bi].Y)
	ci := t.kid(ni, bodies[bi].X, bodies[bi].Y)
	t.insert(int(ci), bodies, bi, depth+1)
}

// child ensures the child quadrant containing (x,y) exists.
func (t *tree) child(ni int, x, y float64) {
	nd := &t.nodes[ni]
	q := nd.quadrant(x, y)
	if nd.kids[q] != noKid {
		return
	}
	half := nd.size / 2
	cx, cy := nd.x, nd.y
	if q&1 != 0 {
		cx += half
	}
	if q&2 != 0 {
		cy += half
	}
	t.nodes = append(t.nodes, newNode(cx, cy, half))
	t.nodes[ni].kids[q] = int32(len(t.nodes) - 1)
}

// kid returns the child of ni containing (x,y).
func (t *tree) kid(ni int, x, y float64) int32 {
	nd := &t.nodes[ni]
	return nd.kids[nd.quadrant(x, y)]
}

// summarize computes centres of mass bottom-up.
func (t *tree) summarize(ni int, bodies []Body) (mass, mx, my float64) {
	nd := &t.nodes[ni]
	if nd.body >= 0 {
		b := bodies[nd.body]
		nd.mass, nd.cmx, nd.cmy = b.M, b.X, b.Y
		return nd.mass, nd.cmx * nd.mass, nd.cmy * nd.mass
	}
	var m, sx, sy float64
	for _, k := range nd.kids {
		if k == noKid {
			continue
		}
		km, kx, ky := t.summarize(int(k), bodies)
		m += km
		sx += kx
		sy += ky
	}
	nd.mass = m
	if m > 0 {
		nd.cmx, nd.cmy = sx/m, sy/m
	}
	return m, sx, sy
}

// force computes the acceleration on body bi with the θ-criterion,
// returning (ax, ay, interactions).
func (t *tree) force(bodies []Body, bi int, theta float64) (float64, float64, int) {
	const soft = 1e-4
	b := bodies[bi]
	var ax, ay float64
	inter := 0
	var rec func(ni int)
	rec = func(ni int) {
		nd := &t.nodes[ni]
		if nd.n == 0 || nd.mass == 0 {
			return
		}
		dx, dy := nd.cmx-b.X, nd.cmy-b.Y
		d2 := dx*dx + dy*dy + soft
		if nd.body == bi && nd.n == 1 {
			return // self
		}
		if nd.body >= 0 || nd.size*nd.size < theta*theta*d2 {
			// Leaf or far enough: treat as a point mass.
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += nd.mass * dx * inv
			ay += nd.mass * dy * inv
			inter++
			return
		}
		for _, k := range nd.kids {
			if k != noKid {
				rec(int(k))
			}
		}
	}
	rec(0)
	return ax, ay, inter
}

// chunks returns the chunk boundaries.
func (a *App) chunks() [][2]int {
	var out [][2]int
	for lo := 0; lo < a.N; lo += a.ChunkSize {
		hi := lo + a.ChunkSize
		if hi > a.N {
			hi = a.N
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// forceChunk computes accelerations for bodies[lo:hi), returning the
// total interaction count (the chunk's work units).
func (a *App) forceChunk(t *tree, bodies []Body, ax, ay []float64, lo, hi int) int {
	total := 0
	for i := lo; i < hi; i++ {
		x, y, n := t.force(bodies, i, a.Theta)
		ax[i], ay[i] = x, y
		total += n
	}
	return total
}

// integrate advances bodies[lo:hi) one leapfrog step, clamping to the
// unit square.
func integrate(bodies []Body, ax, ay []float64, lo, hi int) {
	const dt = 1e-3
	for i := lo; i < hi; i++ {
		bodies[i].VX += ax[i] * dt
		bodies[i].VY += ay[i] * dt
		bodies[i].X += bodies[i].VX * dt
		bodies[i].Y += bodies[i].VY * dt
		if bodies[i].X < 0 {
			bodies[i].X, bodies[i].VX = 0, -bodies[i].VX
		}
		if bodies[i].X >= 1 {
			bodies[i].X, bodies[i].VX = 0.999999, -bodies[i].VX
		}
		if bodies[i].Y < 0 {
			bodies[i].Y, bodies[i].VY = 0, -bodies[i].VY
		}
		if bodies[i].Y >= 1 {
			bodies[i].Y, bodies[i].VY = 0.999999, -bodies[i].VY
		}
	}
}

func checksum(bodies []Body) uint64 {
	h := apps.NewFnv()
	for i := range bodies {
		h.AddFloat(bodies[i].X)
		h.AddFloat(bodies[i].Y)
	}
	return h.Sum()
}

// run executes the simulation with a pluggable chunk executor.
func (a *App) run(eachStep func(t *tree, bodies []Body, ax, ay []float64, chunks [][2]int)) uint64 {
	bodies := a.gen()
	ax := make([]float64, a.N)
	ay := make([]float64, a.N)
	chunks := a.chunks()
	for s := 0; s < a.Steps; s++ {
		t := build(bodies)
		eachStep(t, bodies, ax, ay, chunks)
		integrate(bodies, ax, ay, 0, a.N)
	}
	return checksum(bodies)
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	return a.run(func(t *tree, bodies []Body, ax, ay []float64, chunks [][2]int) {
		for _, ch := range chunks {
			a.forceChunk(t, bodies, ax, ay, ch[0], ch[1])
		}
	})
}

// chunkPlace assigns a chunk to the place owning its spatial stripe.
func chunkPlace(bodies []Body, lo, places int) int {
	p := int(bodies[lo].X * float64(places))
	if p < 0 {
		p = 0
	}
	if p >= places {
		p = places - 1
	}
	return p
}

// Parallel implements apps.App.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	var sum uint64
	err := rt.Run(func(ctx *core.Ctx) {
		sum = a.run(func(t *tree, bodies []Body, ax, ay []float64, chunks [][2]int) {
			ctx.Finish(func(c *core.Ctx) {
				for _, ch := range chunks {
					ch := ch
					home := chunkPlace(bodies, ch[0], places)
					loc := task.Locality{
						Class:          task.Flexible,
						MigrationBytes: 40 * (ch[1] - ch[0]),
						Blocks:         []uint64{uint64(ch[0])},
					}
					c.AsyncLoc(home, loc, func(*core.Ctx) {
						a.forceChunk(t, bodies, ax, ay, ch[0], ch[1])
					})
				}
			})
		})
	})
	if err != nil {
		return 0, fmt.Errorf("nbody: %w", err)
	}
	return sum, nil
}

// Trace implements apps.App: the real simulation runs and each force
// chunk becomes a flexible task whose cost is its measured interaction
// count; a tree-build task per step (sensitive, place 0) parents the
// step's chunks.
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	bodies := a.gen()
	ax := make([]float64, a.N)
	ay := make([]float64, a.N)
	chunks := a.chunks()
	prevBuild := -1
	for s := 0; s < a.Steps; s++ {
		t := build(bodies)
		buildTask := trace.Task{
			HomeMode: trace.HomeFixed,
			Home:     0,
			CostNS:   int64(a.N), // tree build ~ O(n log n); n is fine at trace scale
			Flexible: false,
			// Broadcasting the tree summary to every place.
			BaseMsgs:  places - 1,
			BaseBytes: 64 * (places - 1),
		}
		var bt int
		if prevBuild < 0 {
			bt = b.Root(buildTask)
		} else {
			bt = b.Child(prevBuild, buildTask)
		}
		prevBuild = bt
		for ci, ch := range chunks {
			inter := a.forceChunk(t, bodies, ax, ay, ch[0], ch[1])
			sz := ch[1] - ch[0]
			fc := b.Child(bt, trace.Task{
				HomeMode: trace.HomeFixed,
				Home:     chunkPlace(bodies, ch[0], places),
				CostNS:   int64(inter + sz),
				Flexible: true,
				MigBytes: 40 * sz,
				// Remote tree reads when executed off-home: a fraction of
				// traversals miss the replicated top levels.
				MigMsgs:   inter / 200,
				BaseMsgs:  1 + sz/256, // publishing updated accelerations
				BaseBytes: 16 * sz,
				Blocks:    chunkBlocks(ci, sz),
				BlockReps: 4,
			})
			// Leapfrog integration of the chunk: locality-sensitive — it
			// writes the chunk's bodies in place, so executing it away
			// from the bodies means a remote reference per few bodies.
			b.Child(fc, trace.Task{
				HomeMode:  trace.HomeInherit,
				CostNS:    int64(sz/4 + 1),
				Flexible:  false,
				MigBytes:  40 * sz,
				MigMsgs:   sz/16 + 2,
				Blocks:    chunkBlocks(ci, sz),
				BlockReps: 2,
			})
		}
		integrate(bodies, ax, ay, 0, a.N)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("nbody: %w", err)
	}
	// Chunks of step s spawn at the end of the build task; the next build
	// spawns after this one's chunks are modelled via its own SpawnFrac 1.
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("nbody: %w", err)
	}
	return g, nil
}

func chunkBlocks(ci, sz int) []uint64 {
	n := sz/128 + 1
	if n > 48 {
		n = 48
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(ci)<<20 | uint64(i)
	}
	return out
}

var _ apps.App = (*App)(nil)
