package nbody

import (
	"math"
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(1_500, 2, 9) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestTreeMassConservation(t *testing.T) {
	a := small()
	bodies := a.gen()
	tr := build(bodies)
	var want float64
	for i := range bodies {
		want += bodies[i].M
	}
	if got := tr.nodes[0].mass; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("root mass = %v, want %v", got, want)
	}
}

func TestTreeCountsBodies(t *testing.T) {
	a := small()
	bodies := a.gen()
	tr := build(bodies)
	if tr.nodes[0].n != len(bodies) {
		t.Fatalf("root body count = %d, want %d", tr.nodes[0].n, len(bodies))
	}
}

func TestForceMatchesDirectSummationOnTinySystem(t *testing.T) {
	// With theta=0 Barnes-Hut degenerates to direct summation.
	bodies := []Body{
		{X: 0.2, Y: 0.2, M: 1},
		{X: 0.8, Y: 0.8, M: 2},
		{X: 0.5, Y: 0.1, M: 1.5},
	}
	tr := build(bodies)
	const soft = 1e-4
	for i := range bodies {
		ax, ay, _ := tr.force(bodies, i, 0)
		var wx, wy float64
		for j := range bodies {
			if i == j {
				continue
			}
			dx, dy := bodies[j].X-bodies[i].X, bodies[j].Y-bodies[i].Y
			d2 := dx*dx + dy*dy + soft
			inv := 1 / (d2 * math.Sqrt(d2))
			wx += bodies[j].M * dx * inv
			wy += bodies[j].M * dy * inv
		}
		if math.Abs(ax-wx) > 1e-9 || math.Abs(ay-wy) > 1e-9 {
			t.Fatalf("body %d: force (%v,%v), want (%v,%v)", i, ax, ay, wx, wy)
		}
	}
}

func TestThetaReducesInteractions(t *testing.T) {
	a := small()
	bodies := a.gen()
	tr := build(bodies)
	_, _, exact := tr.force(bodies, 0, 0)
	_, _, approx := tr.force(bodies, 0, 0.7)
	if approx >= exact {
		t.Fatalf("theta=0.7 interactions (%d) should be below direct (%d)", approx, exact)
	}
}

func TestDenseChunksCostMore(t *testing.T) {
	// The dense core must make some chunks much more expensive than
	// others — the imbalance this benchmark exists to provide.
	a := small()
	bodies := a.gen()
	tr := build(bodies)
	ax := make([]float64, a.N)
	ay := make([]float64, a.N)
	minI, maxI := math.MaxInt, 0
	for _, ch := range a.chunks() {
		inter := a.forceChunk(tr, bodies, ax, ay, ch[0], ch[1])
		if inter < minI {
			minI = inter
		}
		if inter > maxI {
			maxI = inter
		}
	}
	if maxI < minI*3/2 {
		t.Fatalf("interaction counts too uniform: min %d max %d", minI, maxI)
	}
}

func TestBodiesStayInDomain(t *testing.T) {
	a := small()
	a.run(func(tr *tree, bodies []Body, ax, ay []float64, chunks [][2]int) {
		for _, ch := range chunks {
			a.forceChunk(tr, bodies, ax, ay, ch[0], ch[1])
		}
		for i := range bodies {
			if bodies[i].X < 0 || bodies[i].X >= 1 || bodies[i].Y < 0 || bodies[i].Y >= 1 {
				t.Fatalf("body %d escaped: %+v", i, bodies[i])
			}
		}
	})
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	a := small()
	g, err := a.Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	// Per step: one build task, one force task and one integrate task per
	// chunk.
	want := a.Steps * (2*len(a.chunks()) + 1)
	if g.NumTasks() != want {
		t.Fatalf("NumTasks = %d, want %d", g.NumTasks(), want)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 560_000_000 || mean > 690_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~623ms", mean)
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	r, err := sim.Run(g, cl, sched.DistWS, sim.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.TasksExecuted != int64(g.NumTasks()) {
		t.Fatalf("executed %d of %d", r.Counters.TasksExecuted, g.NumTasks())
	}
}
