// Package linalg is the dataflow workload family the DAG task model
// (internal/dag) exists for: tiled dense linear algebra — right-looking
// Cholesky and LU factorizations — plus a multi-stage item pipeline.
// These graphs cannot be expressed as fork-join Finish scopes: a tile's
// consumers are released by its producer completing, not by a parent
// returning, and the scheduler's placement choice is a genuine
// data-movement-versus-load trade per task.
//
// Every app provides the same three faces as the fork-join suite
// (internal/apps): a checksummed sequential reference, a parallel run on
// the real runtime, and a graph for the simulator. The parallel
// checksums are bit-exact against the sequential ones — the dependency
// edges totally order all writes to each tile, so the floating-point
// result is identical regardless of schedule — which makes the checksum
// a scheduler-correctness test, not just a smoke test.
package linalg

import (
	"fmt"
	"math"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/dag"
)

// App is one dataflow benchmark.
type App interface {
	// Name returns the short name used in tables and flags
	// ("cholesky", "lu", "pipeline").
	Name() string
	// Sequential runs the reference tiled-sequential implementation and
	// returns its result checksum.
	Sequential() uint64
	// Parallel runs the app on rt under pol via dag.Execute and returns
	// the result checksum — bit-identical to Sequential() — plus the
	// run's data-movement stats.
	Parallel(rt *core.Runtime, pol dag.Policy) (uint64, dag.ExecStats, error)
	// Graph builds the app's dataflow graph for a cluster of places
	// places: blocks seeded by the app's physical distribution, declared
	// homes data-obliviously round-robin (see the builders' comments).
	Graph(places int) (*dag.Graph, error)
}

// Suite returns the dataflow apps at their benchmark scales.
func Suite(seed int64) []App {
	return []App{
		NewCholesky(512, 32, seed),
		NewLU(384, 32, seed),
		NewPipeline(64, 8, 2048, seed),
	}
}

// ByName resolves one app by its table name.
func ByName(name string, seed int64) (App, error) {
	for _, a := range Suite(seed) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("linalg: unknown app %q (have cholesky, lu, pipeline)", name)
}

// Names lists the suite's app names.
func Names() []string { return []string{"cholesky", "lu", "pipeline"} }

// hash01 returns a deterministic pseudo-random value in [0, 1) from
// (seed, i, j) — a splitmix64-style finalizer, so matrix generation is
// O(1) per entry with no rng state to share.
func hash01(seed int64, i, j int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9 + uint64(j+1)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// checksum folds the exact bit patterns of every value in every tile:
// dataflow ordering makes parallel results bit-identical to sequential
// ones, so no quantization is needed (or wanted — it would mask
// scheduler-induced reorderings).
func checksum(tiles [][]float64) uint64 {
	h := apps.NewFnv()
	for _, t := range tiles {
		for _, v := range t {
			h.Add(math.Float64bits(v))
		}
	}
	return h.Sum()
}

// gridOwner returns the 2D block-cyclic owner map over places — the
// ScaLAPACK-standard decomposition: tile (i, j) belongs to place
// (i mod pr)·pc + (j mod pc) on the most-square pr×pc grid with
// pr·pc = places. It balances both row and column panels across the
// cluster, unlike 1D cyclic maps that collapse a whole panel onto one
// place when the tile count divides the place count.
func gridOwner(places int) func(i, j int) int {
	pr := 1
	for d := 1; d*d <= places; d++ {
		if places%d == 0 {
			pr = d
		}
	}
	pc := places / pr
	return func(i, j int) int { return (i%pr)*pc + (j % pc) }
}

// flopNS converts a kernel's flop count into modelled virtual
// nanoseconds at 4 flops/ns — a contemporary core running a tuned
// kernel — keeping tile transfer times (§ topology.DefaultNetwork) a
// meaningful fraction of task cost, as they are on real clusters.
func flopNS(flops int64) int64 {
	ns := flops / 4
	if ns < 1 {
		ns = 1
	}
	return ns
}
