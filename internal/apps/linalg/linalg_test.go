package linalg

import (
	"testing"
	"time"

	"distws/internal/core"
	"distws/internal/dag"
	"distws/internal/sched"
	"distws/internal/topology"
)

// small returns the suite at test scale: the same structure, far fewer
// flops.
func small(seed int64) []App {
	return []App{
		NewCholesky(128, 32, seed),
		NewLU(96, 32, seed),
		NewPipeline(8, 4, 256, seed),
	}
}

func newTestRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.Config{
		Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
		Policy:   sched.DistWS,
		Seed:     1,
		IdlePoll: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestParallelMatchesSequential pins the bit-exact checksum contract:
// the dependency edges totally order all writes per tile, so any legal
// schedule produces the identical floating-point result.
func TestParallelMatchesSequential(t *testing.T) {
	for _, app := range small(1) {
		app := app
		for _, pol := range []dag.Policy{dag.PolicyBlind, dag.PolicyDataAware} {
			pol := pol
			t.Run(app.Name()+"/"+pol.String(), func(t *testing.T) {
				want := app.Sequential()
				rt := newTestRuntime(t)
				defer rt.Shutdown()
				got, stats, err := app.Parallel(rt, pol)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("parallel checksum %#x != sequential %#x", got, want)
				}
				g, err := app.Graph(rt.Places())
				if err != nil {
					t.Fatal(err)
				}
				if stats.Released != int64(g.NumTasks()) {
					t.Fatalf("released %d of %d tasks", stats.Released, g.NumTasks())
				}
				if stats.ResidentHits+stats.ResidentMisses == 0 {
					t.Fatal("no residency lookups recorded")
				}
			})
		}
	}
}

// TestGraphsValidate checks the benchmark-scale graphs are well-formed
// at several cluster sizes, including more places than any task's home.
func TestGraphsValidate(t *testing.T) {
	for _, app := range Suite(1) {
		for _, places := range []int{1, 4, 16} {
			g, err := app.Graph(places)
			if err != nil {
				t.Fatalf("%s at %d places: %v", app.Name(), places, err)
			}
			if g.NumTasks() == 0 || g.TotalWorkNS() <= 0 {
				t.Fatalf("%s: empty graph", app.Name())
			}
		}
	}
}

// TestGraphShapes pins the task counts implied by the tiled algorithms.
func TestGraphShapes(t *testing.T) {
	// Cholesky over T tiles: T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk +
	// T(T-1)(T-2)/6 gemm.
	g, err := NewCholesky(128, 32, 1).Graph(4) // T = 4
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 6 + 6 + 4; g.NumTasks() != want {
		t.Fatalf("cholesky T=4: %d tasks, want %d", g.NumTasks(), want)
	}
	// LU over T tiles: T getrf + T(T-1) trsm + T(T-1)(2T-1)/6 gemm.
	g, err = NewLU(96, 32, 1).Graph(4) // T = 3
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 6 + 5; g.NumTasks() != want {
		t.Fatalf("lu T=3: %d tasks, want %d", g.NumTasks(), want)
	}
	g, err = NewPipeline(8, 4, 256, 1).Graph(4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 4; g.NumTasks() != want {
		t.Fatalf("pipeline: %d tasks, want %d", g.NumTasks(), want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("ByName accepted an unknown app")
	}
}

// TestSequentialDeterministic pins that reference checksums depend only
// on the seed.
func TestSequentialDeterministic(t *testing.T) {
	for _, name := range Names() {
		a1, _ := ByName(name, 7)
		a2, _ := ByName(name, 7)
		if c1, c2 := a1.Sequential(), a2.Sequential(); c1 != c2 {
			t.Fatalf("%s: sequential checksums diverged: %#x vs %#x", name, c1, c2)
		}
	}
}
