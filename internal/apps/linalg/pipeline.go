package linalg

import (
	"fmt"

	"distws/internal/core"
	"distws/internal/dag"
)

// Pipeline is a multi-stage streaming graph: items independent chains of
// stages tasks each, task (i, s) reading the item's stage-s block and
// writing the stage-s+1 block. The blind decomposition is systolic —
// stage s of item i is homed at place (i+s) mod places — which balances
// load perfectly but moves every item's buffer at every stage; the
// data-aware policy instead keeps an item where its buffer already is.
type Pipeline struct {
	items, stages, width int
	seed                 int64
}

// NewPipeline returns a pipeline of items chains × stages stages over
// blocks of width float64 values.
func NewPipeline(items, stages, width int, seed int64) *Pipeline {
	if items <= 0 || stages <= 0 || width <= 0 {
		panic(fmt.Sprintf("linalg: Pipeline items=%d stages=%d width=%d", items, stages, width))
	}
	return &Pipeline{items: items, stages: stages, width: width, seed: seed}
}

// Name implements App.
func (a *Pipeline) Name() string { return "pipeline" }

// stageReps is how many sweeps each stage makes over its block, sizing
// task cost against the block's transfer time.
const stageReps = 8

func blkID(i, s int) uint64 { return uint64(i+1)<<20 | uint64(s) }

func (a *Pipeline) generate() [][]float64 {
	bufs := make([][]float64, a.items)
	for i := range bufs {
		b := make([]float64, a.width)
		for e := range b {
			b[e] = hash01(a.seed, i, e)
		}
		bufs[i] = b
	}
	return bufs
}

// stage advances buf by one sweep family: stageReps passes of a
// multiply-accumulate with stage-specific constants.
func stage(buf []float64, seed int64, s int) {
	for rep := 0; rep < stageReps; rep++ {
		c := 1 + hash01(seed, 1<<20+s, rep)/(1<<10)
		d := hash01(seed, 2<<20+s, rep)
		for e := range buf {
			buf[e] = buf[e]*c + d
		}
	}
}

// build emits the graph stage-by-stage; each item owns one physical
// buffer, with the per-stage blocks naming its successive versions.
func (a *Pipeline) build(places int, bufs [][]float64) (*dag.Graph, []func()) {
	g := &dag.Graph{
		Name:       "pipeline",
		BlockBytes: make(map[uint64]int, a.items*(a.stages+1)),
		Seed:       make(map[uint64]int, a.items),
	}
	for i := 0; i < a.items; i++ {
		for s := 0; s <= a.stages; s++ {
			g.BlockBytes[blkID(i, s)] = a.width * 8
		}
		g.Seed[blkID(i, 0)] = i % places
	}
	cost := flopNS(2 * int64(stageReps) * int64(a.width))
	var ops []func()
	for s := 0; s < a.stages; s++ {
		s := s
		for i := 0; i < a.items; i++ {
			i := i
			g.Tasks = append(g.Tasks, dag.Task{
				ID:      len(g.Tasks),
				Label:   fmt.Sprintf("stage(%d,%d)", i, s),
				CostNS:  cost,
				Home:    (i + s) % places,
				Inputs:  []uint64{blkID(i, s)},
				Outputs: []uint64{blkID(i, s+1)},
			})
			if bufs != nil {
				ops = append(ops, func() { stage(bufs[i], a.seed, s) })
			}
		}
	}
	return g, ops
}

// Graph implements App.
func (a *Pipeline) Graph(places int) (*dag.Graph, error) {
	g, _ := a.build(places, nil)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Sequential implements App: the same kernels in program order.
func (a *Pipeline) Sequential() uint64 {
	bufs := a.generate()
	_, ops := a.build(1, bufs)
	for _, op := range ops {
		op()
	}
	return checksum(bufs)
}

// Parallel implements App.
func (a *Pipeline) Parallel(rt *core.Runtime, pol dag.Policy) (uint64, dag.ExecStats, error) {
	bufs := a.generate()
	g, ops := a.build(rt.Places(), bufs)
	stats, err := dag.Execute(rt, g, dag.ExecOptions{
		Policy: pol,
		Kernel: func(t *dag.Task) { ops[t.ID]() },
	})
	if err != nil {
		return 0, stats, err
	}
	return checksum(bufs), stats, nil
}
