package linalg

import (
	"fmt"
	"math"

	"distws/internal/core"
	"distws/internal/dag"
)

// Cholesky is the tiled right-looking Cholesky factorization A = L·Lᵀ of
// a symmetric positive-definite matrix: the canonical dataflow
// linear-algebra workload. Per elimination step k: POTRF factors the
// diagonal tile, TRSM applies it down the panel, and SYRK/GEMM update
// the trailing submatrix — each kernel a task whose dependencies follow
// from the tiles it reads and writes.
type Cholesky struct {
	n, b int
	seed int64
}

// NewCholesky returns the workload for an n×n matrix in b×b tiles
// (b must divide n).
func NewCholesky(n, b int, seed int64) *Cholesky {
	if n <= 0 || b <= 0 || n%b != 0 {
		panic(fmt.Sprintf("linalg: Cholesky n=%d b=%d, want b | n", n, b))
	}
	return &Cholesky{n: n, b: b, seed: seed}
}

// Name implements App.
func (a *Cholesky) Name() string { return "cholesky" }

func (a *Cholesky) tiles() int { return a.n / a.b }

// tileID names tile (i, j) in the graph's block namespace.
func tileID(i, j int) uint64 { return uint64(i+1)<<20 | uint64(j+1) }

// generate materializes the lower tiles of a symmetric strictly
// diagonally dominant matrix (off-diagonal entries in [0,1), diagonal
// raised by n), which is positive definite, so the factorization never
// hits a non-positive pivot.
func (a *Cholesky) generate() [][]float64 {
	T, b := a.tiles(), a.b
	tiles := make([][]float64, T*T)
	for ti := 0; ti < T; ti++ {
		for tj := 0; tj <= ti; tj++ {
			t := make([]float64, b*b)
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					gi, gj := ti*b+r, tj*b+c
					lo, hi := gi, gj
					if lo > hi {
						lo, hi = hi, lo
					}
					v := hash01(a.seed, lo, hi)
					if gi == gj {
						v += float64(a.n)
					}
					t[r*b+c] = v
				}
			}
			tiles[ti*T+tj] = t
		}
	}
	return tiles
}

// potrf factors tile a in place: lower-triangular L with a[r][c] for
// r >= c; the strictly-upper entries are left untouched.
func potrf(a []float64, b int) {
	for c := 0; c < b; c++ {
		d := a[c*b+c]
		for k := 0; k < c; k++ {
			d -= a[c*b+k] * a[c*b+k]
		}
		d = math.Sqrt(d)
		a[c*b+c] = d
		for r := c + 1; r < b; r++ {
			x := a[r*b+c]
			for k := 0; k < c; k++ {
				x -= a[r*b+k] * a[c*b+k]
			}
			a[r*b+c] = x / d
		}
	}
}

// trsmRT solves X·Lᵀ = A in place (A := A·L⁻ᵀ) against the lower
// factor l.
func trsmRT(l, a []float64, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			x := a[r*b+c]
			for m := 0; m < c; m++ {
				x -= a[r*b+m] * l[c*b+m]
			}
			a[r*b+c] = x / l[c*b+c]
		}
	}
}

// syrkL updates the lower triangle of c with -a·aᵀ.
func syrkL(a, c []float64, b int) {
	for r := 0; r < b; r++ {
		for s := 0; s <= r; s++ {
			x := c[r*b+s]
			for k := 0; k < b; k++ {
				x -= a[r*b+k] * a[s*b+k]
			}
			c[r*b+s] = x
		}
	}
}

// gemmNT updates c with -a·btᵀ.
func gemmNT(a, bt, c []float64, b int) {
	for r := 0; r < b; r++ {
		for s := 0; s < b; s++ {
			x := c[r*b+s]
			for k := 0; k < b; k++ {
				x -= a[r*b+k] * bt[s*b+k]
			}
			c[r*b+s] = x
		}
	}
}

// build emits the task graph in right-looking program order; when tiles
// is non-nil it also binds one kernel closure per task. The initial
// tiles are distributed 2D block-cyclic (gridOwner) — the standard
// physical layout — while declared task homes are round-robin in spawn
// order: the placement a data-oblivious scheduler uses to spread load.
// PolicyBlind runs exactly that; PolicyDataAware must rediscover the
// tile locality from the block directory.
func (a *Cholesky) build(places int, tiles [][]float64) (*dag.Graph, []func()) {
	T, b := a.tiles(), a.b
	b3 := int64(b) * int64(b) * int64(b)
	owner := gridOwner(places)
	g := &dag.Graph{
		Name:       "cholesky",
		BlockBytes: make(map[uint64]int, T*T),
		Seed:       make(map[uint64]int, T*T),
	}
	for i := 0; i < T; i++ {
		for j := 0; j <= i; j++ {
			g.BlockBytes[tileID(i, j)] = b * b * 8
			g.Seed[tileID(i, j)] = owner(i, j)
		}
	}
	var ops []func()
	add := func(label string, cost int64, in []uint64, out uint64, op func()) {
		g.Tasks = append(g.Tasks, dag.Task{
			ID:      len(g.Tasks),
			Label:   label,
			CostNS:  flopNS(cost),
			Home:    len(g.Tasks) % places,
			Inputs:  in,
			Outputs: []uint64{out},
		})
		if tiles != nil {
			ops = append(ops, op)
		}
	}
	at := func(i, j int) []float64 {
		if tiles == nil {
			return nil
		}
		return tiles[i*T+j]
	}
	for k := 0; k < T; k++ {
		k := k
		add(fmt.Sprintf("potrf(%d)", k), b3/3,
			[]uint64{tileID(k, k)}, tileID(k, k),
			func() { potrf(at(k, k), b) })
		for i := k + 1; i < T; i++ {
			i := i
			add(fmt.Sprintf("trsm(%d,%d)", i, k), b3,
				[]uint64{tileID(k, k), tileID(i, k)}, tileID(i, k),
				func() { trsmRT(at(k, k), at(i, k), b) })
		}
		for i := k + 1; i < T; i++ {
			i := i
			for j := k + 1; j <= i; j++ {
				j := j
				if i == j {
					add(fmt.Sprintf("syrk(%d,%d)", i, k), b3,
						[]uint64{tileID(i, k), tileID(i, i)}, tileID(i, i),
						func() { syrkL(at(i, k), at(i, i), b) })
				} else {
					add(fmt.Sprintf("gemm(%d,%d,%d)", i, j, k), 2*b3,
						[]uint64{tileID(i, k), tileID(j, k), tileID(i, j)}, tileID(i, j),
						func() { gemmNT(at(i, k), at(j, k), at(i, j), b) })
				}
			}
		}
	}
	return g, ops
}

// Graph implements App.
func (a *Cholesky) Graph(places int) (*dag.Graph, error) {
	g, _ := a.build(places, nil)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Sequential implements App: the same kernels in program order.
func (a *Cholesky) Sequential() uint64 {
	tiles := a.generate()
	_, ops := a.build(1, tiles)
	for _, op := range ops {
		op()
	}
	return checksum(tiles)
}

// Parallel implements App.
func (a *Cholesky) Parallel(rt *core.Runtime, pol dag.Policy) (uint64, dag.ExecStats, error) {
	tiles := a.generate()
	g, ops := a.build(rt.Places(), tiles)
	stats, err := dag.Execute(rt, g, dag.ExecOptions{
		Policy: pol,
		Kernel: func(t *dag.Task) { ops[t.ID]() },
	})
	if err != nil {
		return 0, stats, err
	}
	return checksum(tiles), stats, nil
}
