package linalg

import (
	"fmt"

	"distws/internal/core"
	"distws/internal/dag"
)

// LU is the tiled right-looking LU factorization A = L·U without
// pivoting. Per elimination step k: GETRF factors the diagonal tile,
// TRSM solves the row panel against L(k,k) and the column panel against
// U(k,k), and GEMM updates the trailing submatrix. The generated matrix
// is strictly diagonally dominant, which stays diagonally dominant
// through elimination, so no pivot ever vanishes.
type LU struct {
	n, b int
	seed int64
}

// NewLU returns the workload for an n×n matrix in b×b tiles (b must
// divide n).
func NewLU(n, b int, seed int64) *LU {
	if n <= 0 || b <= 0 || n%b != 0 {
		panic(fmt.Sprintf("linalg: LU n=%d b=%d, want b | n", n, b))
	}
	return &LU{n: n, b: b, seed: seed}
}

// Name implements App.
func (a *LU) Name() string { return "lu" }

func (a *LU) tiles() int { return a.n / a.b }

func (a *LU) generate() [][]float64 {
	T, b := a.tiles(), a.b
	tiles := make([][]float64, T*T)
	for ti := 0; ti < T; ti++ {
		for tj := 0; tj < T; tj++ {
			t := make([]float64, b*b)
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					gi, gj := ti*b+r, tj*b+c
					v := hash01(a.seed, gi, gj)
					if gi == gj {
						v += float64(a.n)
					}
					t[r*b+c] = v
				}
			}
			tiles[ti*T+tj] = t
		}
	}
	return tiles
}

// getrf factors tile a in place into unit-lower L and upper U.
func getrf(a []float64, b int) {
	for k := 0; k < b; k++ {
		piv := a[k*b+k]
		for r := k + 1; r < b; r++ {
			l := a[r*b+k] / piv
			a[r*b+k] = l
			for s := k + 1; s < b; s++ {
				a[r*b+s] -= l * a[k*b+s]
			}
		}
	}
}

// trsmLL solves L·X = A in place (A := L⁻¹·A) against the unit-lower
// factor packed in lu.
func trsmLL(lu, a []float64, b int) {
	for c := 0; c < b; c++ {
		for r := 0; r < b; r++ {
			x := a[r*b+c]
			for m := 0; m < r; m++ {
				x -= lu[r*b+m] * a[m*b+c]
			}
			a[r*b+c] = x
		}
	}
}

// trsmRU solves X·U = A in place (A := A·U⁻¹) against the upper factor
// packed in lu.
func trsmRU(lu, a []float64, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			x := a[r*b+c]
			for m := 0; m < c; m++ {
				x -= a[r*b+m] * lu[m*b+c]
			}
			a[r*b+c] = x / lu[c*b+c]
		}
	}
}

// gemmNN updates c with -a·bm.
func gemmNN(a, bm, c []float64, b int) {
	for r := 0; r < b; r++ {
		for s := 0; s < b; s++ {
			x := c[r*b+s]
			for k := 0; k < b; k++ {
				x -= a[r*b+k] * bm[k*b+s]
			}
			c[r*b+s] = x
		}
	}
}

// build emits the task graph in right-looking program order; see
// (*Cholesky).build for the shared conventions (block-cyclic seeds,
// round-robin data-oblivious homes).
func (a *LU) build(places int, tiles [][]float64) (*dag.Graph, []func()) {
	T, b := a.tiles(), a.b
	b3 := int64(b) * int64(b) * int64(b)
	owner := gridOwner(places)
	g := &dag.Graph{
		Name:       "lu",
		BlockBytes: make(map[uint64]int, T*T),
		Seed:       make(map[uint64]int, T*T),
	}
	for i := 0; i < T; i++ {
		for j := 0; j < T; j++ {
			g.BlockBytes[tileID(i, j)] = b * b * 8
			g.Seed[tileID(i, j)] = owner(i, j)
		}
	}
	var ops []func()
	add := func(label string, cost int64, in []uint64, out uint64, op func()) {
		g.Tasks = append(g.Tasks, dag.Task{
			ID:      len(g.Tasks),
			Label:   label,
			CostNS:  flopNS(cost),
			Home:    len(g.Tasks) % places,
			Inputs:  in,
			Outputs: []uint64{out},
		})
		if tiles != nil {
			ops = append(ops, op)
		}
	}
	at := func(i, j int) []float64 {
		if tiles == nil {
			return nil
		}
		return tiles[i*T+j]
	}
	for k := 0; k < T; k++ {
		k := k
		add(fmt.Sprintf("getrf(%d)", k), 2*b3/3,
			[]uint64{tileID(k, k)}, tileID(k, k),
			func() { getrf(at(k, k), b) })
		for j := k + 1; j < T; j++ {
			j := j
			add(fmt.Sprintf("trsmL(%d,%d)", k, j), b3,
				[]uint64{tileID(k, k), tileID(k, j)}, tileID(k, j),
				func() { trsmLL(at(k, k), at(k, j), b) })
		}
		for i := k + 1; i < T; i++ {
			i := i
			add(fmt.Sprintf("trsmU(%d,%d)", i, k), b3,
				[]uint64{tileID(k, k), tileID(i, k)}, tileID(i, k),
				func() { trsmRU(at(k, k), at(i, k), b) })
		}
		for i := k + 1; i < T; i++ {
			i := i
			for j := k + 1; j < T; j++ {
				j := j
				add(fmt.Sprintf("gemm(%d,%d,%d)", i, j, k), 2*b3,
					[]uint64{tileID(i, k), tileID(k, j), tileID(i, j)}, tileID(i, j),
					func() { gemmNN(at(i, k), at(k, j), at(i, j), b) })
			}
		}
	}
	return g, ops
}

// Graph implements App.
func (a *LU) Graph(places int) (*dag.Graph, error) {
	g, _ := a.build(places, nil)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Sequential implements App: the same kernels in program order.
func (a *LU) Sequential() uint64 {
	tiles := a.generate()
	_, ops := a.build(1, tiles)
	for _, op := range ops {
		op()
	}
	return checksum(tiles)
}

// Parallel implements App.
func (a *LU) Parallel(rt *core.Runtime, pol dag.Policy) (uint64, dag.ExecStats, error) {
	tiles := a.generate()
	g, ops := a.build(rt.Places(), tiles)
	stats, err := dag.Execute(rt, g, dag.ExecOptions{
		Policy: pol,
		Kernel: func(t *dag.Task) { ops[t.ID]() },
	})
	if err != nil {
		return 0, stats, err
	}
	return checksum(tiles), stats, nil
}
