// Package micro implements the five fine-grained applications of the
// paper's granularity study (§VIII-Q2): merge sort (0.12 ms tasks),
// skyline matrix multiplication (0.93 ms), Monte-Carlo estimation of π
// (0.005 ms), matrix chain multiplication (0.09 ms), and random access
// (0.006 ms). Their task granularities sit well below the cost of a
// distributed steal, so DistWS gains nothing — and may lose slightly —
// against X10WS on them, supporting the paper's claim that only tasks
// with significant computation are candidates for distributed stealing.
package micro

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/task"
	"distws/internal/trace"
)

func mixU(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unitF(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// flatTrace builds a flat graph of nTasks flexible tasks with the given
// granularity, distributed evenly over the places: the micro apps are
// regular workloads, so there is essentially no imbalance for DistWS to
// repair — only overhead to pay (§VIII-Q2).
func flatTrace(name string, nTasks int, granNS int64, places int, migBytes int) (*trace.Graph, error) {
	b := trace.NewBuilder(name)
	for i := 0; i < nTasks; i++ {
		home := i % places
		b.Root(trace.Task{
			HomeMode: trace.HomeFixed,
			Home:     home,
			CostNS:   granNS,
			Flexible: true,
			MigBytes: migBytes,
			Blocks:   []uint64{uint64(i % 256)},
		})
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("micro: %w", err)
	}
	return g, nil
}

// ---------------------------------------------------------------------
// Merge sort — 0.12 ms tasks.

// MergeSort sorts N int32 keys with task-parallel merge sort.
type MergeSort struct {
	N       int
	Seed    int64
	Cutoff  int
	GranNS  int64
	nameStr string
}

// NewMergeSort returns the merge-sort micro app.
func NewMergeSort(n int, seed int64) *MergeSort {
	cutoff := n / 128
	if cutoff < 32 {
		cutoff = 32
	}
	return &MergeSort{N: n, Seed: seed, Cutoff: cutoff, GranNS: 120_000, nameStr: "mergesort"}
}

// Name implements apps.App.
func (m *MergeSort) Name() string { return m.nameStr }

func (m *MergeSort) gen() []int32 {
	out := make([]int32, m.N)
	for i := range out {
		out[i] = int32(mixU(uint64(m.Seed), uint64(i)))
	}
	return out
}

func msort(d []int32, cutoff int) {
	if len(d) <= cutoff {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return
	}
	mid := len(d) / 2
	msort(d[:mid], cutoff)
	msort(d[mid:], cutoff)
	mergeInt32(d, mid)
}

func mergeInt32(d []int32, mid int) {
	tmp := make([]int32, 0, len(d))
	i, j := 0, mid
	for i < mid && j < len(d) {
		if d[i] <= d[j] {
			tmp = append(tmp, d[i])
			i++
		} else {
			tmp = append(tmp, d[j])
			j++
		}
	}
	tmp = append(tmp, d[i:mid]...)
	tmp = append(tmp, d[j:]...)
	copy(d, tmp)
}

func checksumInt32(d []int32) uint64 {
	h := apps.NewFnv()
	step := len(d)/512 + 1
	for i := 0; i < len(d); i += step {
		h.Add(uint64(uint32(d[i])))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1] > d[i] {
			h.Add(0xbad)
		}
	}
	return h.Sum()
}

// Sequential implements apps.App.
func (m *MergeSort) Sequential() uint64 {
	d := m.gen()
	msort(d, m.Cutoff)
	return checksumInt32(d)
}

// Parallel implements apps.App.
func (m *MergeSort) Parallel(rt *core.Runtime) (uint64, error) {
	d := m.gen()
	var rec func(c *core.Ctx, seg []int32)
	rec = func(c *core.Ctx, seg []int32) {
		if len(seg) <= m.Cutoff {
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			return
		}
		mid := len(seg) / 2
		c.Finish(func(cc *core.Ctx) {
			cc.AsyncAny(cc.Place(), func(c3 *core.Ctx) { rec(c3, seg[:mid]) })
			rec(cc, seg[mid:])
		})
		mergeInt32(seg, mid)
	}
	err := rt.Run(func(ctx *core.Ctx) { rec(ctx, d) })
	if err != nil {
		return 0, fmt.Errorf("mergesort: %w", err)
	}
	return checksumInt32(d), nil
}

// Trace implements apps.App: the merge recursion, calibrated to 0.12 ms.
func (m *MergeSort) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(m.nameStr)
	var rec func(parent, n int)
	rec = func(parent, n int) {
		if n <= m.Cutoff {
			return
		}
		mid := n / 2
		for _, sz := range []int{mid, n - mid} {
			id := b.Child(parent, trace.Task{
				HomeMode: trace.HomeInherit,
				CostNS:   int64(sz),
				Flexible: true,
				MigBytes: 4 * sz,
			})
			rec(id, sz)
		}
	}
	per := m.N / places
	for p := 0; p < places; p++ {
		root := b.Root(trace.Task{
			HomeMode: trace.HomeFixed, Home: p,
			CostNS: int64(per), Flexible: true, MigBytes: 4 * per,
		})
		rec(root, per)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("mergesort: %w", err)
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, m.GranNS); err != nil {
		return nil, err
	}
	return g, nil
}

// ---------------------------------------------------------------------
// Skyline matrix multiplication — 0.93 ms tasks.

// Skyline multiplies two banded (skyline) matrices row-block-parallel.
type Skyline struct {
	N, Band int
	Seed    int64
	GranNS  int64
}

// NewSkyline returns the skyline matmul micro app.
func NewSkyline(n, band int, seed int64) *Skyline {
	return &Skyline{N: n, Band: band, Seed: seed, GranNS: 930_000}
}

// Name implements apps.App.
func (s *Skyline) Name() string { return "skyline" }

func (s *Skyline) gen() []float64 {
	a := make([]float64, s.N*s.N)
	for i := 0; i < s.N; i++ {
		lo, hi := s.bandOf(i)
		for j := lo; j < hi; j++ {
			a[i*s.N+j] = unitF(mixU(uint64(s.Seed), uint64(i*s.N+j)))
		}
	}
	return a
}

// bandOf returns row i's occupied column interval.
func (s *Skyline) bandOf(i int) (int, int) {
	lo := i - s.Band
	if lo < 0 {
		lo = 0
	}
	hi := i + s.Band + 1
	if hi > s.N {
		hi = s.N
	}
	return lo, hi
}

// mulRow computes row i of A·A into out, returning flop count.
func (s *Skyline) mulRow(a, out []float64, i int) int {
	flops := 0
	lo, hi := s.bandOf(i)
	for j := 0; j < s.N; j++ {
		var acc float64
		for k := lo; k < hi; k++ {
			if a[k*s.N+j] != 0 {
				acc += a[i*s.N+k] * a[k*s.N+j]
				flops++
			}
		}
		out[i*s.N+j] = acc
	}
	return flops
}

func (s *Skyline) checksum(c []float64) uint64 {
	h := apps.NewFnv()
	for i := 0; i < len(c); i += s.N/4 + 1 {
		h.AddFloat(c[i])
	}
	return h.Sum()
}

// Sequential implements apps.App.
func (s *Skyline) Sequential() uint64 {
	a := s.gen()
	out := make([]float64, s.N*s.N)
	for i := 0; i < s.N; i++ {
		s.mulRow(a, out, i)
	}
	return s.checksum(out)
}

// Parallel implements apps.App.
func (s *Skyline) Parallel(rt *core.Runtime) (uint64, error) {
	a := s.gen()
	out := make([]float64, s.N*s.N)
	places := rt.Places()
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for i := 0; i < s.N; i++ {
				i := i
				c.AsyncLoc(i*places/s.N, task.FlexibleLocality, func(*core.Ctx) {
					s.mulRow(a, out, i)
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("skyline: %w", err)
	}
	return s.checksum(out), nil
}

// Trace implements apps.App: one flexible task per row, calibrated.
func (s *Skyline) Trace(places int) (*trace.Graph, error) {
	g, err := flatTrace("skyline", s.N, s.GranNS, places, 8*(2*s.Band+1)*4)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ---------------------------------------------------------------------
// Monte-Carlo π — 0.005 ms tasks.

// MonteCarloPi estimates π with deterministic quasi-random batches.
type MonteCarloPi struct {
	Samples, Batch int
	Seed           int64
	GranNS         int64
}

// NewMonteCarloPi returns the Monte-Carlo π micro app.
func NewMonteCarloPi(samples, batch int, seed int64) *MonteCarloPi {
	return &MonteCarloPi{Samples: samples, Batch: batch, Seed: seed, GranNS: 5_000}
}

// Name implements apps.App.
func (m *MonteCarloPi) Name() string { return "montecarlo-pi" }

// inside counts batch samples falling inside the unit quarter circle.
func (m *MonteCarloPi) inside(batch int) int {
	n := 0
	base := uint64(batch) * uint64(m.Batch)
	for i := 0; i < m.Batch; i++ {
		h := mixU(uint64(m.Seed), base+uint64(i))
		x := unitF(h)
		y := unitF(mixU(h, 77))
		if x*x+y*y <= 1 {
			n++
		}
	}
	return n
}

func (m *MonteCarloPi) batches() int { return (m.Samples + m.Batch - 1) / m.Batch }

// Sequential implements apps.App.
func (m *MonteCarloPi) Sequential() uint64 {
	total := 0
	for b := 0; b < m.batches(); b++ {
		total += m.inside(b)
	}
	h := apps.NewFnv()
	h.Add(uint64(total))
	return h.Sum()
}

// Parallel implements apps.App.
func (m *MonteCarloPi) Parallel(rt *core.Runtime) (uint64, error) {
	var total atomic.Int64
	places := rt.Places()
	nb := m.batches()
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for b := 0; b < nb; b++ {
				b := b
				c.AsyncAny(b*places/nb, func(*core.Ctx) {
					total.Add(int64(m.inside(b)))
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("montecarlo: %w", err)
	}
	h := apps.NewFnv()
	h.Add(uint64(total.Load()))
	return h.Sum(), nil
}

// Trace implements apps.App.
func (m *MonteCarloPi) Trace(places int) (*trace.Graph, error) {
	return flatTrace("montecarlo-pi", m.batches(), m.GranNS, places, 16)
}

// ---------------------------------------------------------------------
// Matrix chain multiplication — 0.09 ms tasks.

// MatChain solves the matrix-chain-order DP; each cell of a diagonal is
// a task, diagonals are barriers.
type MatChain struct {
	N      int // number of matrices
	Seed   int64
	GranNS int64
}

// NewMatChain returns the matrix-chain micro app.
func NewMatChain(n int, seed int64) *MatChain {
	return &MatChain{N: n, Seed: seed, GranNS: 90_000}
}

// Name implements apps.App.
func (m *MatChain) Name() string { return "matchain" }

func (m *MatChain) dims() []int64 {
	d := make([]int64, m.N+1)
	for i := range d {
		d[i] = 5 + int64(mixU(uint64(m.Seed), uint64(i))%95)
	}
	return d
}

// cell computes dp[i][j] for chain length L given the completed shorter
// diagonals.
func cell(dp [][]int64, d []int64, i, j int) int64 {
	best := int64(math.MaxInt64)
	for k := i; k < j; k++ {
		c := dp[i][k] + dp[k+1][j] + d[i]*d[k+1]*d[j+1]
		if c < best {
			best = c
		}
	}
	return best
}

// Sequential implements apps.App.
func (m *MatChain) Sequential() uint64 {
	d := m.dims()
	dp := make([][]int64, m.N)
	for i := range dp {
		dp[i] = make([]int64, m.N)
	}
	for l := 1; l < m.N; l++ {
		for i := 0; i+l < m.N; i++ {
			dp[i][i+l] = cell(dp, d, i, i+l)
		}
	}
	h := apps.NewFnv()
	h.Add(uint64(dp[0][m.N-1]))
	return h.Sum()
}

// Parallel implements apps.App: one task per cell, one finish per
// diagonal (the DP dependency structure).
func (m *MatChain) Parallel(rt *core.Runtime) (uint64, error) {
	d := m.dims()
	dp := make([][]int64, m.N)
	for i := range dp {
		dp[i] = make([]int64, m.N)
	}
	places := rt.Places()
	err := rt.Run(func(ctx *core.Ctx) {
		for l := 1; l < m.N; l++ {
			l := l
			ctx.Finish(func(c *core.Ctx) {
				for i := 0; i+l < m.N; i++ {
					i := i
					c.AsyncAny(i*places/m.N, func(*core.Ctx) {
						dp[i][i+l] = cell(dp, d, i, i+l)
					})
				}
			})
		}
	})
	if err != nil {
		return 0, fmt.Errorf("matchain: %w", err)
	}
	h := apps.NewFnv()
	h.Add(uint64(dp[0][m.N-1]))
	return h.Sum(), nil
}

// Trace implements apps.App: cells as tasks, chained diagonal
// coordinators as barriers.
func (m *MatChain) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder("matchain")
	prev := -1
	for l := 1; l < m.N; l++ {
		coord := trace.Task{
			HomeMode: trace.HomeFixed, Home: 0,
			CostNS: 1000, Flexible: false,
			BaseMsgs: places - 1, BaseBytes: 8 * (places - 1),
		}
		var cid int
		if prev < 0 {
			cid = b.Root(coord)
		} else {
			cid = b.Child(prev, coord)
		}
		prev = cid
		for i := 0; i+l < m.N; i++ {
			b.Child(cid, trace.Task{
				HomeMode: trace.HomeFixed,
				Home:     i * places / m.N,
				CostNS:   int64(l + 1), // k-loop length
				Flexible: true,
				MigBytes: 16 * (l + 1),
			})
		}
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("matchain: %w", err)
	}
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, m.GranNS); err != nil {
		return nil, err
	}
	return g, nil
}

// ---------------------------------------------------------------------
// Random access — 0.006 ms tasks.

// RandomAccess performs GUPS-style XOR updates; the table is partitioned
// per place and updates are grouped by target partition, so the result is
// deterministic (XOR commutes within a partition).
type RandomAccess struct {
	TableSize, Updates, Batch int
	Seed                      int64
	GranNS                    int64
}

// NewRandomAccess returns the random-access micro app.
func NewRandomAccess(tableSize, updates, batch int, seed int64) *RandomAccess {
	return &RandomAccess{TableSize: tableSize, Updates: updates, Batch: batch, Seed: seed, GranNS: 6_000}
}

// Name implements apps.App.
func (r *RandomAccess) Name() string { return "randomaccess" }

// apply performs batch b's updates into table (global slice).
func (r *RandomAccess) apply(table []uint64, b int) {
	base := uint64(b) * uint64(r.Batch)
	for i := 0; i < r.Batch && int(base)+i < r.Updates; i++ {
		h := mixU(uint64(r.Seed), base+uint64(i))
		table[h%uint64(r.TableSize)] ^= h
	}
}

func (r *RandomAccess) batches() int { return (r.Updates + r.Batch - 1) / r.Batch }

func checksumTable(table []uint64) uint64 {
	h := apps.NewFnv()
	var x uint64
	for _, v := range table {
		x ^= v
	}
	h.Add(x)
	return h.Sum()
}

// Sequential implements apps.App.
func (r *RandomAccess) Sequential() uint64 {
	table := make([]uint64, r.TableSize)
	for b := 0; b < r.batches(); b++ {
		r.apply(table, b)
	}
	return checksumTable(table)
}

// Parallel implements apps.App: per-place private tables merged by XOR at
// the end (XOR is associative and commutative, so races are avoided by
// giving each place its own accumulation table).
func (r *RandomAccess) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	tables := make([][]uint64, places)
	for p := range tables {
		tables[p] = make([]uint64, r.TableSize)
	}
	nb := r.batches()
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for b := 0; b < nb; b++ {
				b := b
				home := b * places / nb
				// Sensitive: updates must land in the home partition copy.
				c.Async(home, func(cc *core.Ctx) {
					r.apply(tables[home], b)
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("randomaccess: %w", err)
	}
	merged := make([]uint64, r.TableSize)
	for p := range tables {
		for i, v := range tables[p] {
			merged[i] ^= v
		}
	}
	return checksumTable(merged), nil
}

// Trace implements apps.App.
func (r *RandomAccess) Trace(places int) (*trace.Graph, error) {
	return flatTrace("randomaccess", r.batches(), r.GranNS, places, 64)
}

// Suite returns the five micro apps at a small default scale.
func Suite(seed int64) []apps.App {
	return []apps.App{
		NewMergeSort(30_000, seed),
		NewSkyline(384, 8, seed),
		NewMonteCarloPi(100_000, 500, seed),
		NewMatChain(48, seed),
		NewRandomAccess(1<<14, 60_000, 400, seed),
	}
}

var (
	_ apps.App = (*MergeSort)(nil)
	_ apps.App = (*Skyline)(nil)
	_ apps.App = (*MonteCarloPi)(nil)
	_ apps.App = (*MatChain)(nil)
	_ apps.App = (*RandomAccess)(nil)
)
