package micro

import (
	"math"
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func newRT(t *testing.T, policy sched.Kind) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.Config{
		Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
		Policy:   policy,
		Seed:     1,
		IdlePoll: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// All five micro apps: sequential determinism, parallel equivalence, and
// a valid simulator trace.
func TestSuiteSequentialParallelTrace(t *testing.T) {
	for _, app := range Suite(3) {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			want := app.Sequential()
			if want != app.Sequential() {
				t.Fatalf("sequential checksum not deterministic")
			}
			rt := newRT(t, sched.DistWS)
			got, err := app.Parallel(rt)
			if err != nil {
				t.Fatalf("Parallel: %v", err)
			}
			if got != want {
				t.Fatalf("parallel %x != sequential %x", got, want)
			}
			g, err := app.Trace(4)
			if err != nil {
				t.Fatalf("Trace: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			cl := topology.Paper()
			cl.Places, cl.WorkersPerPlace = 4, 2
			r, err := sim.Run(g, cl, sched.DistWS, sim.Options{Seed: 2})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if r.Counters.TasksExecuted != int64(g.NumTasks()) {
				t.Fatalf("executed %d of %d", r.Counters.TasksExecuted, g.NumTasks())
			}
		})
	}
}

// The granularities must match the paper's Table (§VIII-Q2): 0.12, 0.93,
// 0.005, 0.09, 0.006 ms.
func TestGranularitiesMatchPaper(t *testing.T) {
	wantMS := map[string]float64{
		"mergesort":     0.12,
		"skyline":       0.93,
		"montecarlo-pi": 0.005,
		"matchain":      0.09,
		"randomaccess":  0.006,
	}
	for _, app := range Suite(3) {
		g, err := app.Trace(4)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		got := float64(apps.MeanFlexibleCostNS(g)) / 1e6
		want := wantMS[app.Name()]
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%s: granularity %.4f ms, want ~%.4f ms", app.Name(), got, want)
		}
	}
}

func TestMergeSortSortsCorrectly(t *testing.T) {
	m := NewMergeSort(5_000, 9)
	d := m.gen()
	msort(d, m.Cutoff)
	for i := 1; i < len(d); i++ {
		if d[i-1] > d[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestMonteCarloPiEstimate(t *testing.T) {
	m := NewMonteCarloPi(200_000, 1000, 7)
	total := 0
	for b := 0; b < m.batches(); b++ {
		total += m.inside(b)
	}
	pi := 4 * float64(total) / float64(m.Samples)
	if math.Abs(pi-math.Pi) > 0.05 {
		t.Fatalf("π estimate %v too far off", pi)
	}
}

func TestMatChainKnownSmallCase(t *testing.T) {
	// Chain of 3 matrices with dims 10x20, 20x5, 5x15:
	// best = min(10*20*5 + 10*5*15 = 1750, 20*5*15 + 10*20*15 = 4500).
	m := &MatChain{N: 3, Seed: 0}
	d := []int64{10, 20, 5, 15}
	dp := [][]int64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	dp[0][1] = cell(dp, d, 0, 1)
	dp[1][2] = cell(dp, d, 1, 2)
	if got := cell(dp, d, 0, 2); got != 1750 {
		t.Fatalf("matrix chain cost = %d, want 1750", got)
	}
	_ = m
}

func TestRandomAccessXORCommutes(t *testing.T) {
	r := NewRandomAccess(1024, 5_000, 100, 5)
	// Applying batches in reverse yields the same table checksum.
	fwd := make([]uint64, r.TableSize)
	rev := make([]uint64, r.TableSize)
	for b := 0; b < r.batches(); b++ {
		r.apply(fwd, b)
	}
	for b := r.batches() - 1; b >= 0; b-- {
		r.apply(rev, b)
	}
	if checksumTable(fwd) != checksumTable(rev) {
		t.Fatalf("XOR updates should commute")
	}
}

func TestSkylineBandStructure(t *testing.T) {
	s := NewSkyline(32, 4, 2)
	a := s.gen()
	for i := 0; i < s.N; i++ {
		lo, hi := s.bandOf(i)
		for j := 0; j < s.N; j++ {
			if (j < lo || j >= hi) && a[i*s.N+j] != 0 {
				t.Fatalf("element (%d,%d) outside band is nonzero", i, j)
			}
		}
	}
}
