// Package turingring implements the Cowichan Turing Ring benchmark
// (paper §IV-B, §VII: coupled differential equations over 1M bodies in a
// ring of cells). Each iteration updates predator and prey populations in
// every cell and migrates bodies between neighbouring cells; migration can
// shift a cell's workload by two orders of magnitude in one iteration,
// which is exactly the dynamic imbalance the paper's scheduler targets.
//
// Following the paper's Fig. 1 decomposition, the *outer* per-cell task —
// which updates both populations and performs migration bookkeeping — is
// locality-flexible: once the cell is copied to a thief, all further
// operations are local and nothing must be copied back. The *inner* prey
// update (`async (thisPlace) c.updatePreyPop()`) is locality-sensitive: if
// it alone were stolen, populations would have to be copied both ways.
package turingring

import (
	"fmt"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/dist"
	"distws/internal/task"
	"distws/internal/trace"
)

// Cell holds the two populations of one ring cell.
type Cell struct {
	Prey, Pred float64
}

// App configures one Turing Ring instance.
type App struct {
	// Cells is the ring size.
	Cells int
	// Iters is the number of simulated iterations.
	Iters int
	// Seed drives the initial population layout.
	Seed int64
	// GranularityNS is the Table I calibration target (1.86 ms).
	GranularityNS int64
	// WorkPerBody controls how much real arithmetic each body costs in
	// the runnable implementations (kept tiny so tests stay fast).
	WorkPerBody int
}

// New returns a Turing Ring over cells cells for iters iterations.
func New(cells, iters int, seed int64) *App {
	return &App{
		Cells:         cells,
		Iters:         iters,
		Seed:          seed,
		GranularityNS: 1_860_000, // Table I: 1.86 ms
		WorkPerBody:   1,
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "turingring" }

// initial builds the deterministic starting populations: a modest
// background plus a few dense blooms.
func (a *App) initial() []Cell {
	cells := make([]Cell, a.Cells)
	for i := range cells {
		h := mix(uint64(a.Seed), uint64(i))
		cells[i].Prey = 20 + float64(h%50)
		cells[i].Pred = 5 + float64((h>>8)%10)
	}
	// Dense blooms every ~64 cells seed travelling spikes.
	for i := 0; i < a.Cells; i += 64 {
		cells[i].Prey += 3000
		cells[i].Pred += 200
	}
	return cells
}

// mix is a deterministic 64-bit hash (splitmix64 finalizer).
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// grow applies one step of the predator–prey dynamics to a single cell.
func grow(c Cell) Cell {
	prey := c.Prey + 0.25*c.Prey*(1-c.Prey/5000) - 0.0003*c.Pred*c.Prey
	pred := c.Pred + 0.00008*c.Pred*c.Prey - 0.05*c.Pred
	if prey < 0 {
		prey = 0
	}
	if pred < 0 {
		pred = 0
	}
	if prey > 50_000 {
		prey = 50_000
	}
	if pred > 50_000 {
		pred = 50_000
	}
	return Cell{Prey: prey, Pred: pred}
}

// outflow returns the fraction of each population leaving cell i at
// iteration iter and the direction (+1 right, -1 left). Bursts — the
// paper's two-orders-of-magnitude load shifts — dump 90% of a bloom onto
// one neighbour.
func (a *App) outflow(i, iter int, c Cell) (preyOut, predOut float64, dir int) {
	h := mix(uint64(a.Seed)^uint64(iter)*1315423911, uint64(i))
	dir = 1
	if h&1 == 0 {
		dir = -1
	}
	preyFrac, predFrac := 0.05, 0.05
	if c.Prey > 1000 && h%5 == 0 {
		preyFrac = 0.9 // bloom collapse
	}
	if c.Pred > 300 && h%7 == 0 {
		predFrac = 0.9 // predator swarm chases it
	}
	return preyFrac * c.Prey, predFrac * c.Pred, dir
}

// step computes iteration iter: next[i] from cur (pure function of cur,
// so per-cell tasks parallelize without races).
func (a *App) stepCell(cur []Cell, i, iter int) Cell {
	n := len(cur)
	g := grow(cur[i])
	pOut, dOut, _ := a.outflow(i, iter, g)
	next := Cell{Prey: g.Prey - pOut, Pred: g.Pred - dOut}
	// Inflow from the two neighbours whose outflow points at us.
	for _, d := range []int{-1, 1} {
		j := (i + d + n) % n
		gj := grow(cur[j])
		pj, dj, dirj := a.outflow(j, iter, gj)
		if (j+dirj+n)%n == i {
			next.Prey += pj
			next.Pred += dj
		}
	}
	// Burn real per-body work so the runnable versions have genuine
	// granularity proportional to the cell's population.
	bodies := int(next.Prey+next.Pred) * a.WorkPerBody
	acc := 1.0
	for k := 0; k < bodies; k++ {
		acc += acc * 1e-9
	}
	if acc < 0 { // never true; defeats dead-code elimination
		next.Prey += acc
	}
	return next
}

// bodies returns the body count of a cell (its task cost unit).
func bodies(c Cell) int { return int(c.Prey + c.Pred) }

// checksum quantizes and hashes the final populations.
func checksum(cells []Cell) uint64 {
	h := apps.NewFnv()
	for i := range cells {
		h.AddFloat(cells[i].Prey)
		h.AddFloat(cells[i].Pred)
	}
	return h.Sum()
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	cur := a.initial()
	next := make([]Cell, len(cur))
	for iter := 0; iter < a.Iters; iter++ {
		for i := range cur {
			next[i] = a.stepCell(cur, i, iter)
		}
		cur, next = next, cur
	}
	return checksum(cur)
}

// Parallel implements apps.App: the ring is a DistArray over the places;
// each iteration spawns one flexible outer task per cell (which spawns
// the sensitive inner prey task), with a finish barrier per iteration as
// in the paper's pseudo-code.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	cur := a.initial()
	next := make([]Cell, len(cur))
	ring := dist.NewDistArray[struct{}](a.Cells, rt.Places(), nil)
	err := rt.Run(func(ctx *core.Ctx) {
		for iter := 0; iter < a.Iters; iter++ {
			it := iter
			ctx.Finish(func(c *core.Ctx) {
				for i := range cur {
					cell := i
					home := ring.PlaceOf(cell)
					loc := task.Locality{
						Class:          task.Flexible,
						MigrationBytes: 16 * (bodies(cur[cell]) + 1),
						Blocks:         []uint64{uint64(cell)},
					}
					c.AsyncLoc(home, loc, func(cc *core.Ctx) {
						// Outer task: full cell update (predators,
						// migration bookkeeping) ...
						res := a.stepCell(cur, cell, it)
						// ... with the prey refinement as an inner
						// sensitive task at the executing place, as in
						// Fig. 1 line 6.
						cc.Finish(func(c3 *core.Ctx) {
							c3.Async(c3.Place(), func(*core.Ctx) {
								next[cell] = res
							})
						})
					})
				}
			})
			cur, next = next, cur
		}
	})
	if err != nil {
		return 0, fmt.Errorf("turingring: %w", err)
	}
	return checksum(cur), nil
}

// Trace implements apps.App: the real dynamics are simulated; each
// iteration is a barrier (as in the parallel implementation's per-
// iteration finish): an iteration-coordinator task parents one flexible
// outer task per cell (cost ∝ bodies), each with a sensitive inner child.
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	ring := dist.NewDistArray[struct{}](a.Cells, places, nil)
	cur := a.initial()
	next := make([]Cell, len(cur))
	saveWork := a.WorkPerBody
	a.WorkPerBody = 0 // trace generation skips the artificial flop burn
	defer func() { a.WorkPerBody = saveWork }()

	prevIter := -1
	for iter := 0; iter < a.Iters; iter++ {
		coord := trace.Task{
			HomeMode:  trace.HomeFixed,
			Home:      0,
			CostNS:    int64(a.Cells),
			Flexible:  false,
			BaseMsgs:  places - 1, // iteration barrier/broadcast
			BaseBytes: 16 * (places - 1),
		}
		var cid int
		if prevIter < 0 {
			cid = b.Root(coord)
		} else {
			cid = b.Child(prevIter, coord)
		}
		prevIter = cid
		for i := range cur {
			nb := bodies(cur[i])
			id := b.Child(cid, a.outerTask(ring, i, nb, ring.PlaceOf(i)))
			// Inner sensitive prey update, local to wherever the outer ran.
			b.Child(id, trace.Task{
				HomeMode: trace.HomeInherit,
				CostNS:   int64(nb/4 + 1),
				Flexible: false,
				MigBytes: 8 * (nb + 1),
				// If stolen alone (DistWS-NS), populations are copied to
				// the thief and the result copied back: remote refs.
				MigMsgs:   nb/64 + 2,
				Blocks:    cellBlocks(i, nb),
				BlockReps: 4,
			})
			next[i] = a.stepCell(cur, i, iter)
		}
		cur, next = next, cur
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("turingring: %w", err)
	}
	// Children (the inner task and the next iteration's outer task) spawn
	// at the end of their parent, preserving per-cell iteration order.
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1.0
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("turingring: %w", err)
	}
	return g, nil
}

// outerTask models the flexible whole-cell task.
func (a *App) outerTask(ring *dist.DistArray[struct{}], cell, nb, home int) trace.Task {
	t := trace.Task{
		HomeMode: trace.HomeFixed,
		Home:     home,
		CostNS:   int64(nb + 1),
		Flexible: true,
		// The entire cell is copied once; afterwards everything is local
		// (paper §IV-B), so no MigMsgs.
		MigBytes:  16 * (nb + 1),
		Blocks:    cellBlocks(cell, nb),
		BlockReps: 4,
	}
	// Neighbour exchange crosses a place boundary for edge cells.
	n := a.Cells
	left := (cell - 1 + n) % n
	right := (cell + 1) % n
	if ring.PlaceOf(left) != home {
		t.BaseMsgs++
		t.BaseBytes += 32
	}
	if ring.PlaceOf(right) != home {
		t.BaseMsgs++
		t.BaseBytes += 32
	}
	return t
}

// cellBlocks derives a cell's footprint: one block per 32 bodies.
func cellBlocks(cell, nb int) []uint64 {
	n := nb/32 + 1
	if n > 32 {
		n = 32
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(cell)<<16 | uint64(i)
	}
	return out
}

var _ apps.App = (*App)(nil)

// DebugMaxShift reports the largest single-iteration body-count ratio seen
// across a full run (used to validate the burst model).
func (a *App) DebugMaxShift() float64 {
	cur := a.initial()
	next := make([]Cell, len(cur))
	maxRatio := 1.0
	for iter := 0; iter < a.Iters; iter++ {
		for i := range cur {
			next[i] = a.stepCell(cur, i, iter)
			before, after := float64(bodies(cur[i])+1), float64(bodies(next[i])+1)
			r := after / before
			if r < 1 {
				r = 1 / r
			}
			if r > maxRatio {
				maxRatio = r
			}
		}
		cur, next = next, cur
	}
	return maxRatio
}
