package turingring

import (
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(64, 6, 3) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestPopulationsStayBounded(t *testing.T) {
	a := small()
	cur := a.initial()
	next := make([]Cell, len(cur))
	for iter := 0; iter < a.Iters; iter++ {
		for i := range cur {
			next[i] = a.stepCell(cur, i, iter)
			if next[i].Prey < 0 || next[i].Pred < 0 {
				t.Fatalf("negative population at cell %d iter %d: %+v", i, iter, next[i])
			}
			if next[i].Prey > 200_000 || next[i].Pred > 200_000 {
				t.Fatalf("population blew up at cell %d iter %d: %+v", i, iter, next[i])
			}
		}
		cur, next = next, cur
	}
}

func TestMigrationConservesAtQuietCells(t *testing.T) {
	// outflow direction must be ±1 and fractions within (0,1].
	a := small()
	c := Cell{Prey: 5000, Pred: 500}
	for i := 0; i < 32; i++ {
		pOut, dOut, dir := a.outflow(i, 1, c)
		if dir != 1 && dir != -1 {
			t.Fatalf("direction = %d", dir)
		}
		if pOut < 0 || pOut > c.Prey || dOut < 0 || dOut > c.Pred {
			t.Fatalf("outflow out of range: %v %v", pOut, dOut)
		}
	}
}

func TestBurstsCreateLargeLoadShifts(t *testing.T) {
	// Somewhere in the run a cell's body count must change by >10x in one
	// iteration — the imbalance the paper attributes to migration.
	a := New(128, 12, 5)
	cur := a.initial()
	next := make([]Cell, len(cur))
	sawBurst := false
	for iter := 0; iter < a.Iters; iter++ {
		for i := range cur {
			next[i] = a.stepCell(cur, i, iter)
			before, after := bodies(cur[i])+1, bodies(next[i])+1
			if after > 10*before || before > 10*after {
				sawBurst = true
			}
		}
		cur, next = next, cur
	}
	if !sawBurst {
		t.Fatalf("no order-of-magnitude load shift observed")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel checksum %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndShaped(t *testing.T) {
	a := small()
	g, err := a.Trace(4)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// One outer + one inner task per cell-iteration plus one coordinator
	// per iteration.
	want := a.Cells*a.Iters*2 + a.Iters
	if g.NumTasks() != want {
		t.Fatalf("NumTasks = %d, want %d", g.NumTasks(), want)
	}
	if len(g.Roots) != 1 {
		t.Fatalf("roots = %d, want the iteration-0 coordinator only", len(g.Roots))
	}
	// Half the tasks (the outers) are flexible.
	if f := g.FlexibleFraction(); f < 0.45 || f > 0.55 {
		t.Fatalf("flexible fraction = %v, want ~0.5", f)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 1_700_000 || mean > 2_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~1.86ms", mean)
	}
}

func TestTraceRunsInSimulatorAllPolicies(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	for _, policy := range sched.Kinds() {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
	}
}

func TestWorkPerBodyRestoredAfterTrace(t *testing.T) {
	a := small()
	if _, err := a.Trace(2); err != nil {
		t.Fatal(err)
	}
	if a.WorkPerBody != 1 {
		t.Fatalf("WorkPerBody = %d after Trace, want restored 1", a.WorkPerBody)
	}
}
