// Package dmg implements the Lonestar Delaunay Mesh Generation benchmark
// (paper §IV-A, §VII: 2-D triangular mesh over 80,000 points). The
// decomposition follows the paper's description: the domain is split into
// regions (triangles in the paper, quadrants here) that encapsulate their
// points; a region task either splits into four child tasks or
// triangulates its points with the Bowyer–Watson kernel (internal/geom).
// Region tasks are locality-flexible — they carry all the data they need,
// are coarse, and spawn work for the thief's co-located workers — the
// paper's archetype of a profitably stealable task (31% gain at 64
// workers).
//
// Regions are triangulated independently (no cross-region stitching);
// both the reference sequential implementation and the parallel one use
// the same decomposition, so checksums are directly comparable.
package dmg

import (
	"fmt"
	"sync"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/geom"
	"distws/internal/task"
	"distws/internal/trace"
)

// region is an axis-aligned box with its points.
type region struct {
	minX, minY, maxX, maxY float64
	pts                    []geom.Point
}

// App configures one DMG instance.
type App struct {
	// N is the number of points (paper scale: 80_000).
	N int
	// Seed drives the input distribution.
	Seed int64
	// Cutoff is the region size below which points are triangulated
	// rather than split further.
	Cutoff int
	// RootGrid is the number of top-level column stripes (one root region
	// per stripe), distributed over the places.
	RootGrid int
	// GranularityNS is the Table I calibration target (732 ms).
	GranularityNS int64
}

// New returns a DMG app over n points.
func New(n int, seed int64) *App {
	cutoff := n / 96
	if cutoff < 64 {
		cutoff = 64
	}
	return &App{
		N:             n,
		Seed:          seed,
		Cutoff:        cutoff,
		RootGrid:      16,
		GranularityNS: 732_000_000, // Table I: 732 ms
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "dmg" }

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gen produces clustered points in the unit square.
func (a *App) gen() []geom.Point {
	pts := make([]geom.Point, a.N)
	for i := range pts {
		h := mix(uint64(a.Seed), uint64(i))
		var x, y float64
		switch h % 8 {
		case 0, 1, 2, 3: // dense cluster
			x = 0.1 + 0.25*unit(mix(h, 1))
			y = 0.55 + 0.3*unit(mix(h, 2))
		case 4, 5: // medium band
			x = 0.5 + 0.45*unit(mix(h, 3))
			y = 0.05 + 0.35*unit(mix(h, 4))
		default: // background
			x, y = unit(mix(h, 5)), unit(mix(h, 6))
		}
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// rootRegions splits the domain into RootGrid column stripes.
func (a *App) rootRegions(pts []geom.Point) []region {
	regs := make([]region, a.RootGrid)
	for i := range regs {
		regs[i] = region{
			minX: float64(i) / float64(a.RootGrid),
			maxX: float64(i+1) / float64(a.RootGrid),
			minY: 0, maxY: 1,
		}
	}
	for _, p := range pts {
		i := int(p.X * float64(a.RootGrid))
		if i < 0 {
			i = 0
		}
		if i >= a.RootGrid {
			i = a.RootGrid - 1
		}
		regs[i].pts = append(regs[i].pts, p)
	}
	return regs
}

// split quarters a region by its midlines.
func split(r region) [4]region {
	mx, my := (r.minX+r.maxX)/2, (r.minY+r.maxY)/2
	quads := [4]region{
		{r.minX, r.minY, mx, my, nil},
		{mx, r.minY, r.maxX, my, nil},
		{r.minX, my, mx, r.maxY, nil},
		{mx, my, r.maxX, r.maxY, nil},
	}
	for _, p := range r.pts {
		q := 0
		if p.X >= mx {
			q |= 1
		}
		if p.Y >= my {
			q |= 2
		}
		quads[q].pts = append(quads[q].pts, p)
	}
	return quads
}

// triangulate builds the region's local mesh and returns (live triangles,
// cavity work units).
func triangulate(r region) (alive, steps int) {
	if len(r.pts) == 0 {
		return 0, 0
	}
	m := geom.NewMesh(r.minX, r.minY, r.maxX, r.maxY)
	for _, p := range r.pts {
		m.Insert(p) // duplicates are skipped with an error; that's fine
	}
	return m.NumAlive(), m.InsertSteps
}

// leafStat is the checksummable output of one leaf region.
type leafStat struct {
	npts, alive int
}

// checksum folds leaf statistics in deterministic (leaf-id) order.
func checksum(stats map[string]leafStat, keys []string) uint64 {
	h := apps.NewFnv()
	for _, k := range keys {
		s := stats[k]
		h.Add(uint64(len(k)))
		h.Add(uint64(s.npts))
		h.Add(uint64(s.alive))
	}
	return h.Sum()
}

// leafKey identifies a leaf region stably.
func leafKey(r region) string {
	return fmt.Sprintf("%.6f:%.6f:%.6f:%.6f", r.minX, r.minY, r.maxX, r.maxY)
}

// seqRec triangulates r, splitting recursively, accumulating leaf stats.
func (a *App) seqRec(r region, stats map[string]leafStat, keys *[]string) {
	if len(r.pts) > a.Cutoff {
		for _, q := range split(r) {
			a.seqRec(q, stats, keys)
		}
		return
	}
	alive, _ := triangulate(r)
	k := leafKey(r)
	stats[k] = leafStat{npts: len(r.pts), alive: alive}
	*keys = append(*keys, k)
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	stats := make(map[string]leafStat)
	var keys []string
	for _, r := range a.rootRegions(a.gen()) {
		a.seqRec(r, stats, &keys)
	}
	return checksum(stats, keys)
}

// regionPlace maps a root stripe to a place.
func (a *App) regionPlace(i, places int) int {
	return i * places / a.RootGrid
}

// Parallel implements apps.App.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	var mu sync.Mutex
	stats := make(map[string]leafStat)
	var parRec func(c *core.Ctx, r region)
	parRec = func(c *core.Ctx, r region) {
		if len(r.pts) > a.Cutoff {
			c.Finish(func(cc *core.Ctx) {
				for _, q := range split(r) {
					q := q
					cc.AsyncLoc(cc.Place(), a.locality(len(q.pts)), func(c3 *core.Ctx) {
						parRec(c3, q)
					})
				}
			})
			return
		}
		alive, _ := triangulate(r)
		mu.Lock()
		stats[leafKey(r)] = leafStat{npts: len(r.pts), alive: alive}
		mu.Unlock()
	}
	roots := a.rootRegions(a.gen())
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for i, r := range roots {
				i, r := i, r
				c.AsyncLoc(a.regionPlace(i, places), a.locality(len(r.pts)), func(cc *core.Ctx) {
					parRec(cc, r)
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("dmg: %w", err)
	}
	// Reconstruct the deterministic key order from a sequential walk of
	// the same decomposition; the parallel run filled stats for exactly
	// these leaves.
	var keys []string
	for _, r := range a.rootRegions(a.gen()) {
		a.seqKeys(r, &keys)
	}
	return checksum(stats, keys), nil
}

// seqKeys walks the decomposition recording leaf keys only.
func (a *App) seqKeys(r region, keys *[]string) {
	if len(r.pts) > a.Cutoff {
		for _, q := range split(r) {
			a.seqKeys(q, keys)
		}
		return
	}
	*keys = append(*keys, leafKey(r))
}

func (a *App) locality(npts int) task.Locality {
	return task.Locality{
		Class:          task.Flexible,
		MigrationBytes: 16*npts + 64,
	}
}

// Trace implements apps.App: the decomposition is replayed; split tasks
// cost ∝ their point count, leaf tasks cost their measured cavity work.
// All region tasks are flexible; children inherit the executing place
// (paper §II condition b).
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	roots := a.rootRegions(a.gen())
	var rec func(parent int, r region)
	rec = func(parent int, r region) {
		if len(r.pts) > a.Cutoff {
			for _, q := range split(r) {
				child := b.Child(parent, trace.Task{
					HomeMode:  trace.HomeInherit,
					CostNS:    int64(len(q.pts) + 1),
					Flexible:  true,
					MigBytes:  16*len(q.pts) + 64,
					BaseMsgs:  1,
					BaseBytes: 64,
					Blocks:    regionBlocks(q),
					BlockReps: 6,
				})
				rec(child, q)
			}
			return
		}
		_, steps := triangulate(r)
		// The leaf's triangulation work happens in the region task itself;
		// fold it in as a child so the cavity work is a distinct cost unit.
		leaf := b.Child(parent, trace.Task{
			HomeMode: trace.HomeInherit,
			CostNS:   int64(steps*8 + len(r.pts)),
			Flexible: true,
			MigBytes: 16*len(r.pts) + 64,
			// Once copied, everything is local (paper §IV-A): no MigMsgs.
			BaseMsgs:  1,
			BaseBytes: 32,
			Blocks:    regionBlocks(r),
			BlockReps: 6,
		})
		// Folding the leaf's triangles into the region's mesh fragment is
		// locality-sensitive: it mutates the region data in place, so a
		// non-selective steal of this task pays a remote reference per
		// few triangles.
		b.Child(leaf, trace.Task{
			HomeMode:  trace.HomeInherit,
			CostNS:    int64(len(r.pts)/2 + 1),
			Flexible:  false,
			MigBytes:  8*len(r.pts) + 32,
			MigMsgs:   len(r.pts)/8 + 2,
			Blocks:    regionBlocks(r),
			BlockReps: 3,
		})
	}
	for i, r := range roots {
		root := b.Root(trace.Task{
			HomeMode:  trace.HomeFixed,
			Home:      a.regionPlace(i, places),
			CostNS:    int64(len(r.pts) + 1),
			Flexible:  true,
			MigBytes:  16*len(r.pts) + 64,
			BaseMsgs:  1,
			BaseBytes: 64,
			Blocks:    regionBlocks(r),
			BlockReps: 6,
		})
		rec(root, r)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("dmg: %w", err)
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("dmg: %w", err)
	}
	return g, nil
}

// regionBlocks derives a footprint shared across a root stripe: every
// region nested in the same column stripe draws from the stripe's block
// namespace, so a subtree processed at its home place stays warm while a
// stolen subtree starts cold at the thief.
func regionBlocks(r region) []uint64 {
	stripe := uint64(int64(r.minX * 1024)) // stable per column stripe
	n := len(r.pts)/64 + 1
	if n > 48 {
		n = 48
	}
	// Offset sub-blocks by the region's y position so sibling quadrants
	// overlap partially, not fully.
	off := uint64(int64(r.minY*64)) % 16
	out := make([]uint64, n)
	for i := range out {
		out[i] = stripe<<32 | (off + uint64(i))
	}
	return out
}

var _ apps.App = (*App)(nil)
