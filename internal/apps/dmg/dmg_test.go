package dmg

import (
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(1_200, 17) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestRootRegionsPartitionPoints(t *testing.T) {
	a := small()
	pts := a.gen()
	regs := a.rootRegions(pts)
	if len(regs) != a.RootGrid {
		t.Fatalf("regions = %d, want %d", len(regs), a.RootGrid)
	}
	total := 0
	for _, r := range regs {
		total += len(r.pts)
		for _, p := range r.pts {
			if p.X < r.minX || p.X > r.maxX {
				t.Fatalf("point %v outside region [%v,%v]", p, r.minX, r.maxX)
			}
		}
	}
	if total != a.N {
		t.Fatalf("regions hold %d points, want %d", total, a.N)
	}
}

func TestRegionLoadIsSkewed(t *testing.T) {
	a := small()
	regs := a.rootRegions(a.gen())
	minC, maxC := a.N, 0
	for _, r := range regs {
		if len(r.pts) < minC {
			minC = len(r.pts)
		}
		if len(r.pts) > maxC {
			maxC = len(r.pts)
		}
	}
	if maxC < 2*(minC+1) {
		t.Fatalf("region loads too uniform: min %d max %d", minC, maxC)
	}
}

func TestSplitConservesPoints(t *testing.T) {
	r := region{minX: 0, minY: 0, maxX: 1, maxY: 1}
	a := small()
	r.pts = a.gen()[:500]
	quads := split(r)
	total := 0
	for _, q := range quads {
		total += len(q.pts)
		for _, p := range q.pts {
			if p.X < q.minX || p.X > q.maxX || p.Y < q.minY || p.Y > q.maxY {
				t.Fatalf("point %v escaped its quadrant", p)
			}
		}
	}
	if total != 500 {
		t.Fatalf("split lost points: %d", total)
	}
}

func TestTriangulateProducesMesh(t *testing.T) {
	a := small()
	r := region{minX: 0, minY: 0, maxX: 1, maxY: 1, pts: a.gen()[:200]}
	alive, steps := triangulate(r)
	if alive < 200 {
		t.Fatalf("alive triangles = %d, want >= n", alive)
	}
	if steps == 0 {
		t.Fatalf("no cavity work recorded")
	}
}

func TestTriangulateEmptyRegion(t *testing.T) {
	alive, steps := triangulate(region{minX: 0, minY: 0, maxX: 1, maxY: 1})
	if alive != 0 || steps != 0 {
		t.Fatalf("empty region should be free: %d/%d", alive, steps)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() <= small().RootGrid {
		t.Fatalf("trace has no recursion: %d tasks", g.NumTasks())
	}
	// DMG is the paper's flexible archetype: region tasks dominate, with
	// one sensitive mesh-fold child per leaf.
	if f := g.FlexibleFraction(); f < 0.6 {
		t.Fatalf("flexible fraction = %v, want > 0.6", f)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 650_000_000 || mean > 810_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~732ms", mean)
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
	}
}
