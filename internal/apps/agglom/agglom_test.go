package agglom

import (
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(600, 13) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestNNChunkFindsNearest(t *testing.T) {
	act := []Cluster{{X: 0, Y: 0, Size: 1}, {X: 1, Y: 0, Size: 1}, {X: 0.1, Y: 0, Size: 1}}
	nn := make([]int, 3)
	work := nnChunk(act, nn, 0, 3)
	if nn[0] != 2 || nn[2] != 0 || nn[1] != 2 {
		t.Fatalf("nn = %v, want [2 2 0]", nn)
	}
	if work != 6 {
		t.Fatalf("work = %d, want 6 distance evaluations", work)
	}
}

func TestMergeMutualPairs(t *testing.T) {
	act := []Cluster{
		{X: 0, Y: 0, Size: 1}, {X: 0.1, Y: 0, Size: 3}, // mutual pair
		{X: 10, Y: 10, Size: 1}, // loner (its nn is not mutual)
	}
	nn := []int{1, 0, 1}
	next, merges := mergeMutual(act, nn, nil)
	if merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
	if len(next) != 2 {
		t.Fatalf("survivors = %d, want 2", len(next))
	}
	// Weighted centroid: (0*1 + 0.1*3)/4 = 0.075.
	if next[0].Size != 4 || next[0].X < 0.0749 || next[0].X > 0.0751 {
		t.Fatalf("merged cluster = %+v", next[0])
	}
}

func TestClusteringConvergesToOne(t *testing.T) {
	a := small()
	act := a.gen()
	rounds := 0
	for len(act) > 1 && rounds < a.MaxRounds {
		nn := make([]int, len(act))
		nnChunk(act, nn, 0, len(act))
		var merges int
		act, merges = mergeMutual(act, nn, nil)
		if merges == 0 {
			break
		}
		rounds++
	}
	if len(act) != 1 {
		t.Fatalf("clustering stopped at %d clusters after %d rounds", len(act), rounds)
	}
	if act[0].Size != a.N {
		t.Fatalf("final cluster size %d, want %d", act[0].Size, a.N)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < 10 {
		t.Fatalf("trace too small: %d", g.NumTasks())
	}
	if f := g.FlexibleFraction(); f < 0.5 {
		t.Fatalf("flexible fraction = %v, want > 0.5 (chunk tasks dominate)", f)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 480_000_000 || mean > 580_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~529ms", mean)
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	r, err := sim.Run(g, cl, sched.DistWS, sim.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.TasksExecuted != int64(g.NumTasks()) {
		t.Fatalf("executed %d of %d", r.Counters.TasksExecuted, g.NumTasks())
	}
}
