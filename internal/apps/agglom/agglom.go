// Package agglom implements the Lonestar Agglomerative Clustering
// benchmark (paper §VII: 2M points clustered by building a hierarchical
// tree bottom-up). The algorithm is round-based mutual-nearest-neighbour
// merging: every round each active cluster finds its nearest neighbour
// (parallel, chunked) and mutual pairs merge (sequential, deterministic).
// Rounds shrink geometrically, so chunk counts and costs vary across the
// run, and clustered inputs give places skewed chunk loads.
package agglom

import (
	"fmt"
	"math"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/task"
	"distws/internal/trace"
)

// Cluster is an active cluster: centroid and size.
type Cluster struct {
	X, Y float64
	Size int
}

// App configures one clustering instance.
type App struct {
	// N is the number of input points (paper scale: 2_000_000).
	N int
	// Seed drives the input distribution.
	Seed int64
	// ChunkSize is the number of clusters per nearest-neighbour task.
	ChunkSize int
	// GranularityNS is the Table I calibration target (529 ms).
	GranularityNS int64
	// MaxRounds bounds the merge rounds (safety; log2(N) suffices).
	MaxRounds int
}

// New returns an agglomerative clustering app over n points.
func New(n int, seed int64) *App {
	chunk := n / 128
	if chunk < 16 {
		chunk = 16
	}
	return &App{
		N:             n,
		Seed:          seed,
		ChunkSize:     chunk,
		GranularityNS: 529_000_000, // Table I: 529 ms
		MaxRounds:     64,
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "agglom" }

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gen produces clustered points (dense and sparse blobs).
func (a *App) gen() []Cluster {
	out := make([]Cluster, a.N)
	for i := range out {
		h := mix(uint64(a.Seed), uint64(i))
		var x, y float64
		switch h % 8 {
		case 0, 1, 2, 3: // heavy blob left
			x, y = 0.2+0.1*unit(mix(h, 1)), 0.3+0.1*unit(mix(h, 2))
		case 4, 5: // medium blob right
			x, y = 0.75+0.08*unit(mix(h, 3)), 0.6+0.08*unit(mix(h, 4))
		default: // scattered
			x, y = unit(mix(h, 5)), unit(mix(h, 6))
		}
		out[i] = Cluster{X: x, Y: y, Size: 1}
	}
	return out
}

// nnChunk finds, for each cluster in [lo,hi), the nearest other active
// cluster (ties broken by lower index), writing into nn. It returns the
// number of distance evaluations (the chunk's work units).
func nnChunk(act []Cluster, nn []int, lo, hi int) int {
	work := 0
	for i := lo; i < hi; i++ {
		best, bestD := -1, math.MaxFloat64
		for j := range act {
			if j == i {
				continue
			}
			dx, dy := act[i].X-act[j].X, act[i].Y-act[j].Y
			d := dx*dx + dy*dy
			work++
			if d < bestD || (d == bestD && j < best) {
				best, bestD = j, d
			}
		}
		nn[i] = best
	}
	return work
}

// mergeMutual merges mutual nearest-neighbour pairs (i<j, nn[i]=j,
// nn[j]=i) and returns the next round's clusters plus the merge count.
// Clusters not in a mutual pair survive unchanged. Deterministic.
func mergeMutual(act []Cluster, nn []int, h *apps.Fnv1a) ([]Cluster, int) {
	merged := make([]bool, len(act))
	var next []Cluster
	merges := 0
	for i := range act {
		if merged[i] {
			continue
		}
		j := nn[i]
		if j > i && !merged[j] && nn[j] == i {
			si, sj := float64(act[i].Size), float64(act[j].Size)
			tot := si + sj
			nc := Cluster{
				X:    (act[i].X*si + act[j].X*sj) / tot,
				Y:    (act[i].Y*si + act[j].Y*sj) / tot,
				Size: act[i].Size + act[j].Size,
			}
			merged[i], merged[j] = true, true
			next = append(next, nc)
			merges++
			if h != nil {
				h.Add(uint64(nc.Size))
				h.AddFloat(nc.X)
				h.AddFloat(nc.Y)
			}
			continue
		}
	}
	for i := range act {
		if !merged[i] {
			next = append(next, act[i])
		}
	}
	return next, merges
}

// chunksOf returns chunk boundaries over m clusters.
func (a *App) chunksOf(m int) [][2]int {
	var out [][2]int
	for lo := 0; lo < m; lo += a.ChunkSize {
		hi := lo + a.ChunkSize
		if hi > m {
			hi = m
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// run executes the clustering with a pluggable per-round chunk executor.
func (a *App) run(eachRound func(act []Cluster, nn []int, chunks [][2]int)) uint64 {
	act := a.gen()
	h := apps.NewFnv()
	for round := 0; len(act) > 1 && round < a.MaxRounds; round++ {
		nn := make([]int, len(act))
		eachRound(act, nn, a.chunksOf(len(act)))
		var merges int
		act, merges = mergeMutual(act, nn, &h)
		if merges == 0 {
			break // numerically stuck (coincident centroids); terminate
		}
	}
	h.Add(uint64(len(act)))
	return h.Sum()
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	return a.run(func(act []Cluster, nn []int, chunks [][2]int) {
		for _, ch := range chunks {
			nnChunk(act, nn, ch[0], ch[1])
		}
	})
}

// clusterPlace maps a chunk to a place by its first centroid's x-stripe.
func clusterPlace(act []Cluster, lo, places int) int {
	p := int(act[lo].X * float64(places))
	if p < 0 {
		p = 0
	}
	if p >= places {
		p = places - 1
	}
	return p
}

// Parallel implements apps.App.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	var sum uint64
	err := rt.Run(func(ctx *core.Ctx) {
		sum = a.run(func(act []Cluster, nn []int, chunks [][2]int) {
			ctx.Finish(func(c *core.Ctx) {
				for _, ch := range chunks {
					ch := ch
					loc := task.Locality{
						Class:          task.Flexible,
						MigrationBytes: 24 * (ch[1] - ch[0]),
						Blocks:         []uint64{uint64(ch[0])},
					}
					c.AsyncLoc(clusterPlace(act, ch[0], places), loc, func(*core.Ctx) {
						nnChunk(act, nn, ch[0], ch[1])
					})
				}
			})
		})
	})
	if err != nil {
		return 0, fmt.Errorf("agglom: %w", err)
	}
	return sum, nil
}

// Trace implements apps.App: the real rounds are replayed; each chunk's
// nearest-neighbour scan is a flexible task whose cost is its measured
// distance evaluations. A sequential merge task per round (sensitive,
// place 0) parents the next round's chunks.
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	act := a.gen()
	prevMerge := -1
	for round := 0; len(act) > 1 && round < a.MaxRounds; round++ {
		nn := make([]int, len(act))
		chunks := a.chunksOf(len(act))
		// The merge/coordination task for this round.
		mt := trace.Task{
			HomeMode:  trace.HomeFixed,
			Home:      0,
			CostNS:    int64(len(act)),
			Flexible:  false,
			BaseMsgs:  2 * (places - 1), // gather nn[], broadcast survivors
			BaseBytes: 8 * len(act),
		}
		var mid int
		if prevMerge < 0 {
			mid = b.Root(mt)
		} else {
			mid = b.Child(prevMerge, mt)
		}
		prevMerge = mid
		for _, ch := range chunks {
			work := nnChunk(act, nn, ch[0], ch[1])
			sz := ch[1] - ch[0]
			b.Child(mid, trace.Task{
				HomeMode:  trace.HomeFixed,
				Home:      clusterPlace(act, ch[0], places),
				CostNS:    int64(work + sz),
				Flexible:  true,
				MigBytes:  24 * sz,
				MigMsgs:   sz / 64, // remote reads of off-place centroids
				BaseMsgs:  1,
				BaseBytes: 8 * sz,
				Blocks:    spatialBlocks(act, ch[0], ch[1]),
				BlockReps: 4,
			})
		}
		var merges int
		act, merges = mergeMutual(act, nn, nil)
		if merges == 0 {
			break
		}
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("agglom: %w", err)
	}
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("agglom: %w", err)
	}
	return g, nil
}

// spatialBlocks maps a chunk's clusters to blocks by their position in a
// 64×64 grid: chunks over the same area share blocks across rounds, so a
// place that keeps processing its own region stays warm.
func spatialBlocks(act []Cluster, lo, hi int) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for i := lo; i < hi && len(out) < 32; i++ {
		bx := uint64(act[i].X * 64)
		by := uint64(act[i].Y * 64)
		blk := bx<<8 | by
		if !seen[blk] {
			seen[blk] = true
			out = append(out, blk)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

var _ apps.App = (*App)(nil)
