// Package apps defines the benchmark application suite of the paper's
// evaluation (§VII): four Cowichan problems (Quicksort, Turing Ring,
// k-Means, n-Body) and three Lonestar problems (Agglomerative clustering,
// Delaunay mesh generation, Delaunay mesh refinement), plus the five
// fine-grained micro-applications of the granularity study (§VIII-Q2) and
// Unbalanced Tree Search (§X).
//
// Every application provides three things:
//
//   - a reference sequential implementation (checksummed),
//   - a parallel implementation against the real runtime (internal/core)
//     whose result must match the sequential checksum, and
//   - a trace generator that runs the real algorithm instrumented at task
//     boundaries and emits a trace.Graph for the cluster simulator.
package apps

import (
	"fmt"

	"distws/internal/core"
	"distws/internal/trace"
)

// App is one benchmark application.
type App interface {
	// Name returns the short name used in tables ("quicksort", "dmg", ...).
	Name() string
	// Sequential runs the reference implementation and returns its result
	// checksum.
	Sequential() uint64
	// Parallel runs the application on rt and returns the result checksum,
	// which must equal Sequential() for the same parameters.
	Parallel(rt *core.Runtime) (uint64, error)
	// Trace generates the simulator task graph for a cluster of places
	// places. The graph reflects the real algorithm's task structure and
	// work distribution at the app's configured scale.
	Trace(places int) (*trace.Graph, error)
}

// Fnv1a implements the FNV-1a hash over a stream of uint64 words; apps use
// it for order-independent-free (sequential) checksums.
type Fnv1a uint64

// NewFnv returns the FNV-1a offset basis.
func NewFnv() Fnv1a { return 0xcbf29ce484222325 }

// Add folds one word into the hash.
func (h *Fnv1a) Add(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= 0x100000001b3
		v >>= 8
	}
	*h = Fnv1a(x)
}

// AddFloat folds a float64 into the hash, quantized to 1e-6 so that
// reassociation-level numeric noise does not flip checksums.
func (h *Fnv1a) AddFloat(f float64) {
	h.Add(uint64(int64(f * 1e6)))
}

// Sum returns the hash value.
func (h Fnv1a) Sum() uint64 { return uint64(h) }

// CalibrateFlexibleGranularity rescales every task cost in g by a common
// factor so the mean cost of flexible tasks equals targetNS (the paper's
// Table I granularity for the app). Graphs with no flexible tasks are
// scaled against the mean of all tasks. It returns the applied factor.
func CalibrateFlexibleGranularity(g *trace.Graph, targetNS int64) (float64, error) {
	if targetNS <= 0 {
		return 0, fmt.Errorf("apps: target granularity %d, want > 0", targetNS)
	}
	var sum int64
	var n int64
	for i := range g.Tasks {
		if g.Tasks[i].Flexible {
			sum += g.Tasks[i].CostNS
			n++
		}
	}
	if n == 0 {
		for i := range g.Tasks {
			sum += g.Tasks[i].CostNS
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0, fmt.Errorf("apps: graph %q has no costed tasks to calibrate", g.Name)
	}
	factor := float64(targetNS) * float64(n) / float64(sum)
	for i := range g.Tasks {
		g.Tasks[i].CostNS = int64(float64(g.Tasks[i].CostNS) * factor)
	}
	if g.SeqNS > 0 {
		g.SeqNS = int64(float64(g.SeqNS) * factor)
	}
	return factor, nil
}

// MeanFlexibleCostNS returns the mean cost of flexible tasks (or of all
// tasks when none are flexible) — the measured Table I granularity.
func MeanFlexibleCostNS(g *trace.Graph) int64 {
	var sum int64
	var n int64
	for i := range g.Tasks {
		if g.Tasks[i].Flexible {
			sum += g.Tasks[i].CostNS
			n++
		}
	}
	if n == 0 {
		for i := range g.Tasks {
			sum += g.Tasks[i].CostNS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
