package dmr

import (
	"testing"
	"time"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/geom"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(900, 23) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestRefinementImprovesQuality(t *testing.T) {
	a := small()
	regs := a.partition(a.gen())
	// Pick the densest region and verify refinement reduces the number of
	// bad triangles (excluding border-blocked ones it cannot fix).
	ri, best := 0, 0
	for i, pts := range regs {
		if len(pts) > best {
			ri, best = i, len(pts)
		}
	}
	st := a.refineRegion(ri, regs[ri])
	if st.inserts == 0 {
		t.Fatalf("refinement made no inserts on a clustered region")
	}
	if st.alive <= 2*st.pts {
		t.Fatalf("refined mesh should have grown: %d triangles for %d pts", st.alive, st.pts)
	}
}

func TestRefineRegionBounded(t *testing.T) {
	a := small()
	regs := a.partition(a.gen())
	for i, pts := range regs {
		st := a.refineRegion(i, pts)
		if st.inserts > a.CapFactor*len(pts)+64 {
			t.Fatalf("region %d exceeded the insert cap: %d", i, st.inserts)
		}
		if len(st.cavities) != st.inserts {
			t.Fatalf("cavity record (%d) disagrees with inserts (%d)", len(st.cavities), st.inserts)
		}
	}
}

func TestIsBad(t *testing.T) {
	a := small()
	m := geom.NewMesh(0, 0, 1, 1)
	// The initial super-triangle is never "bad".
	if a.isBad(m, 0) {
		t.Fatalf("super-triangle flagged bad")
	}
	// A skinny interior triangle is bad.
	m.Insert(geom.Point{X: 0.5, Y: 0.5})
	m.Insert(geom.Point{X: 0.52, Y: 0.5})
	m.Insert(geom.Point{X: 0.51, Y: 0.9})
	found := false
	for ti := range m.Tris {
		if m.Tris[ti].Alive && !m.HasSuperVertex(ti) && a.isBad(m, ti) {
			found = true
		}
	}
	if !found {
		t.Fatalf("skinny triangle not flagged bad")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	want := small().Sequential()
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := small().Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != sequential %x", policy, got, want)
		}
	}
}

func TestTraceValidAndCalibrated(t *testing.T) {
	a := small()
	g, err := a.Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() <= a.RootGrid {
		t.Fatalf("trace has no cavity chains: %d tasks", g.NumTasks())
	}
	if len(g.Roots) != a.RootGrid {
		t.Fatalf("roots = %d, want %d", len(g.Roots), a.RootGrid)
	}
	mean := apps.MeanFlexibleCostNS(g)
	if mean < 800_000_000 || mean > 1_000_000_000 {
		t.Fatalf("mean flexible granularity = %d, want ~899ms", mean)
	}
}

func TestTraceRunsInSimulator(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	for _, policy := range []sched.Kind{sched.X10WS, sched.DistWS, sched.DistWSNS} {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
	}
}
