// Package dmr implements the Lonestar Delaunay Mesh Refinement benchmark
// (paper §VII: refining a mesh of 550K triangles so no angle is below 30
// degrees). Each domain region owns a mesh; bad triangles (small minimum
// angle) are fixed by inserting their circumcenter — a Bowyer–Watson
// cavity operation that kills the bad triangle and may create new bad
// ones, the classic irregular, dynamically unfolding workload.
//
// The region task is locality-flexible: it encapsulates its mesh and
// points, and every cavity operation it spawns is local to wherever the
// region landed (paper §II conditions a–d). The per-insert cavity tasks
// are locality-sensitive children that inherit the executing place.
package dmr

import (
	"fmt"
	"sync"

	"distws/internal/apps"
	"distws/internal/core"
	"distws/internal/geom"
	"distws/internal/task"
	"distws/internal/trace"
)

// App configures one DMR instance.
type App struct {
	// N is the number of seed points (the initial mesh has ~2N triangles;
	// paper scale works out to ~275_000 points for 550K triangles).
	N int
	// Seed drives the input distribution.
	Seed int64
	// MinAngleDeg is the refinement quality bound (the paper uses 30; the
	// default here is 26 to keep cascades bounded without boundary
	// segment handling).
	MinAngleDeg float64
	// RootGrid is the number of domain regions.
	RootGrid int
	// CapFactor bounds inserts per region at CapFactor×points (safety
	// against pathological cascades near region borders).
	CapFactor int
	// GranularityNS is the Table I calibration target (899 ms).
	GranularityNS int64
}

// New returns a DMR app over n seed points.
func New(n int, seed int64) *App {
	return &App{
		N:             n,
		Seed:          seed,
		MinAngleDeg:   26,
		RootGrid:      64,
		CapFactor:     8,
		GranularityNS: 899_000_000, // Table I: 899 ms
	}
}

// Name implements apps.App.
func (a *App) Name() string { return "dmr" }

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// gen produces clustered seed points (clusters produce skinny triangles
// at their borders — plenty of refinement work, unevenly distributed).
func (a *App) gen() []geom.Point {
	pts := make([]geom.Point, a.N)
	for i := range pts {
		h := mix(uint64(a.Seed), uint64(i))
		var x, y float64
		switch h % 8 {
		case 0, 1, 2, 3:
			x = 0.05 + 0.3*unit(mix(h, 1))
			y = 0.1 + 0.25*unit(mix(h, 2))
		case 4, 5:
			x = 0.6 + 0.35*unit(mix(h, 3))
			y = 0.55 + 0.4*unit(mix(h, 4))
		default:
			x, y = unit(mix(h, 5)), unit(mix(h, 6))
		}
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// regionOf assigns a point to a column stripe.
func (a *App) regionOf(p geom.Point) int {
	i := int(p.X * float64(a.RootGrid))
	if i < 0 {
		i = 0
	}
	if i >= a.RootGrid {
		i = a.RootGrid - 1
	}
	return i
}

// regionBounds returns stripe i's box.
func (a *App) regionBounds(i int) (minX, minY, maxX, maxY float64) {
	return float64(i) / float64(a.RootGrid), 0, float64(i+1) / float64(a.RootGrid), 1
}

// isBad reports whether triangle t of m needs refinement.
func (a *App) isBad(m *geom.Mesh, t int) bool {
	if !m.Tris[t].Alive || m.HasSuperVertex(t) {
		return false
	}
	v := m.Tris[t].V
	return geom.MinAngleDeg(m.Pts[v[0]], m.Pts[v[1]], m.Pts[v[2]]) < a.MinAngleDeg
}

// cavityRec records one refinement insert: the cavity size (work) and
// the cascade generation (0 = initial bad triangle; g+1 = created by a
// generation-g cavity). Cavities of the same generation are independent
// and refine in parallel, as in Galois-style optimistic DMR.
type cavityRec struct {
	Size int
	Gen  int
}

// refineStats records one region's refinement outcome.
type refineStats struct {
	pts      int
	inserts  int
	alive    int
	cavities []cavityRec
}

// refineRegion builds and refines one region's mesh.
func (a *App) refineRegion(ri int, pts []geom.Point) refineStats {
	minX, minY, maxX, maxY := a.regionBounds(ri)
	m := geom.NewMesh(minX, minY, maxX, maxY)
	for _, p := range pts {
		m.Insert(p)
	}
	st := refineStats{pts: len(pts)}
	// Seed the work queue with all bad triangles (cascade generation 0).
	type workItem struct {
		tri, gen int
	}
	var queue []workItem
	for t := range m.Tris {
		if a.isBad(m, t) {
			queue = append(queue, workItem{t, 0})
		}
	}
	cap := a.CapFactor*len(pts) + 64
	for len(queue) > 0 && st.inserts < cap {
		it := queue[0]
		queue = queue[1:]
		if !a.isBad(m, it.tri) {
			continue // killed or fixed by an earlier cavity
		}
		v := m.Tris[it.tri].V
		cc, ok := geom.Circumcenter(m.Pts[v[0]], m.Pts[v[1]], m.Pts[v[2]])
		if !ok || cc.X <= minX || cc.X >= maxX || cc.Y <= minY || cc.Y >= maxY {
			continue // no boundary splitting across regions; skip
		}
		before := m.InsertSteps
		created, err := m.Insert(cc)
		if err != nil {
			continue
		}
		st.inserts++
		st.cavities = append(st.cavities, cavityRec{Size: m.InsertSteps - before, Gen: it.gen})
		for _, nt := range created {
			if a.isBad(m, nt) {
				queue = append(queue, workItem{nt, it.gen + 1})
			}
		}
	}
	st.alive = m.NumAlive()
	return st
}

// partition groups the points by region.
func (a *App) partition(pts []geom.Point) [][]geom.Point {
	regs := make([][]geom.Point, a.RootGrid)
	for _, p := range pts {
		i := a.regionOf(p)
		regs[i] = append(regs[i], p)
	}
	return regs
}

func checksum(stats []refineStats) uint64 {
	h := apps.NewFnv()
	for _, s := range stats {
		h.Add(uint64(s.pts))
		h.Add(uint64(s.inserts))
		h.Add(uint64(s.alive))
	}
	return h.Sum()
}

// Sequential implements apps.App.
func (a *App) Sequential() uint64 {
	regs := a.partition(a.gen())
	stats := make([]refineStats, a.RootGrid)
	for i, pts := range regs {
		stats[i] = a.refineRegion(i, pts)
	}
	return checksum(stats)
}

// regionPlace maps region i to a place.
func (a *App) regionPlace(i, places int) int { return i * places / a.RootGrid }

// Parallel implements apps.App.
func (a *App) Parallel(rt *core.Runtime) (uint64, error) {
	places := rt.Places()
	regs := a.partition(a.gen())
	stats := make([]refineStats, a.RootGrid)
	var mu sync.Mutex
	err := rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for i, pts := range regs {
				i, pts := i, pts
				loc := task.Locality{
					Class:          task.Flexible,
					MigrationBytes: 16*len(pts) + 128,
					Blocks:         []uint64{uint64(i)},
				}
				c.AsyncLoc(a.regionPlace(i, places), loc, func(*core.Ctx) {
					st := a.refineRegion(i, pts)
					mu.Lock()
					stats[i] = st
					mu.Unlock()
				})
			}
		})
	})
	if err != nil {
		return 0, fmt.Errorf("dmr: %w", err)
	}
	return checksum(stats), nil
}

// Trace implements apps.App: the real refinement runs per region; the
// region task (flexible, cost ∝ initial triangulation) parents a chain of
// cascade generations. All cavities of one generation are independent
// flexible tasks (they encapsulate their cavity); each carries a small
// sensitive bookkeeping child (adjacency updates against the region mesh)
// that is expensive to execute remotely — the task DistWS refuses to
// migrate but DistWS-NS happily steals.
func (a *App) Trace(places int) (*trace.Graph, error) {
	b := trace.NewBuilder(a.Name())
	regs := a.partition(a.gen())
	for i, pts := range regs {
		st := a.refineRegion(i, pts)
		root := b.Root(trace.Task{
			HomeMode:  trace.HomeFixed,
			Home:      a.regionPlace(i, places),
			CostNS:    int64(8*len(pts) + 1),
			Flexible:  true,
			MigBytes:  16*len(pts) + 128,
			BaseMsgs:  1,
			BaseBytes: 64,
			Blocks:    regionBlocks(i, len(pts)),
			BlockReps: 6,
		})
		// Group cavities by cascade generation.
		maxGen := 0
		for _, c := range st.cavities {
			if c.Gen > maxGen {
				maxGen = c.Gen
			}
		}
		byGen := make([][]cavityRec, maxGen+1)
		for _, c := range st.cavities {
			byGen[c.Gen] = append(byGen[c.Gen], c)
		}
		prev := root
		ci := 0
		for g, gen := range byGen {
			if len(gen) == 0 {
				continue
			}
			// Generation coordinator: the mesh-commit point between waves.
			coord := b.Child(prev, trace.Task{
				HomeMode: trace.HomeInherit,
				CostNS:   int64(len(gen) + 1),
				Flexible: false,
				Blocks:   regionBlocks(i, len(pts)),
			})
			for _, c := range gen {
				cav := c.Size
				id := b.Child(coord, trace.Task{
					HomeMode: trace.HomeInherit,
					CostNS:   int64(cav*8 + 1),
					Flexible: true,
					MigBytes: 64 * cav,
					// Boundary write-back when the cavity ran off-home.
					MigMsgs: 2,
					// Mesh bookkeeping through the PGAS runtime.
					BaseMsgs:  1 + cav/4,
					BaseBytes: 32 * cav,
					Blocks:    cavityBlocks(i, ci),
					BlockReps: 6,
				})
				// Sensitive adjacency update against the region's mesh: if
				// stolen in isolation it must reference the mesh remotely.
				b.Child(id, trace.Task{
					HomeMode:  trace.HomeInherit,
					CostNS:    int64(cav*2 + 1),
					Flexible:  false,
					MigBytes:  32 * cav,
					MigMsgs:   cav + 2,
					Blocks:    regionBlocks(i, len(pts)),
					BlockReps: 4,
				})
				ci++
			}
			prev = coord
			_ = g
		}
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("dmr: %w", err)
	}
	for i := range g.Tasks {
		if n := len(g.Tasks[i].Children); n > 0 {
			fr := make([]float64, n)
			for j := range fr {
				fr[j] = 1
			}
			g.Tasks[i].SpawnFrac = fr
		}
	}
	if _, err := apps.CalibrateFlexibleGranularity(g, a.GranularityNS); err != nil {
		return nil, fmt.Errorf("dmr: %w", err)
	}
	return g, nil
}

func regionBlocks(ri, npts int) []uint64 {
	n := npts/64 + 1
	if n > 48 {
		n = 48
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(ri)<<32 | uint64(i)
	}
	return out
}

func cavityBlocks(ri, ci int) []uint64 {
	return []uint64{uint64(ri)<<32 | uint64(ci%48)}
}

var _ apps.App = (*App)(nil)
