package uts

import (
	"testing"
	"time"

	"distws/internal/core"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
)

func small() *App { return New(4, 8, 100_000, 5) }

func TestSequentialDeterministic(t *testing.T) {
	if small().Sequential() != small().Sequential() {
		t.Fatalf("sequential checksum not deterministic")
	}
}

func TestTreeIsNontrivialAndBounded(t *testing.T) {
	n := small().Count()
	if n < 100 {
		t.Fatalf("tree too small (%d nodes); pick a better seed/shape", n)
	}
	if n >= small().MaxNodes {
		t.Fatalf("tree hit the cap")
	}
}

func TestTreeIsUnbalanced(t *testing.T) {
	// Subtree sizes under the root must differ substantially.
	a := small()
	sizes := make([]int, a.RootKids)
	for i := 0; i < a.RootKids; i++ {
		sub := &App{RootKids: 0, Warmup: a.Warmup, MaxNodes: a.MaxNodes, Seed: a.Seed}
		// Count the subtree rooted at child i by walking manually.
		type frame struct {
			id    uint64
			depth int
		}
		stack := []frame{{childID(1, i), 1}}
		for len(stack) > 0 && sizes[i] < a.MaxNodes {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sizes[i]++
			for k := 0; k < sub.kids(f.id, f.depth); k++ {
				stack = append(stack, frame{childID(f.id, k), f.depth + 1})
			}
		}
	}
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS < 2*minS {
		t.Fatalf("subtrees too balanced for UTS: %v", sizes)
	}
}

func TestParallelMatchesChecksumXOR(t *testing.T) {
	a := New(4, 6, 100_000, 5) // keep the runtime run small
	want := a.ChecksumXOR()
	for _, policy := range []sched.Kind{sched.DistWS, sched.RandomWS, sched.LifelineWS} {
		rt, err := core.New(core.Config{
			Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
			Policy:   policy,
			Seed:     1,
			IdlePoll: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Parallel(rt)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if got != want {
			t.Fatalf("%v: parallel %x != reference %x", policy, got, want)
		}
	}
}

func TestParallelRejectsCappedTree(t *testing.T) {
	a := New(4, 8, 10, 5) // cap guaranteed hit
	rt, err := core.New(core.Config{
		Cluster: topology.Cluster{Places: 1, WorkersPerPlace: 1},
		Policy:  sched.DistWS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if _, err := a.Parallel(rt); err == nil {
		t.Fatalf("capped tree should be rejected for parallel runs")
	}
}

func TestTraceShape(t *testing.T) {
	a := small()
	g, err := a.Trace(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != a.Count() {
		t.Fatalf("trace has %d tasks, tree has %d nodes", g.NumTasks(), a.Count())
	}
	if len(g.Roots) != 1 {
		t.Fatalf("UTS has one root, got %d", len(g.Roots))
	}
	if f := g.FlexibleFraction(); f != 1 {
		t.Fatalf("all UTS tasks are flexible, got fraction %v", f)
	}
}

func TestTraceRunsUnderUTSBaselines(t *testing.T) {
	g, err := small().Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	for _, policy := range []sched.Kind{sched.DistWS, sched.RandomWS, sched.LifelineWS} {
		r, err := sim.Run(g, cl, policy, sim.Options{Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if r.Counters.TasksExecuted != int64(g.NumTasks()) {
			t.Fatalf("%v executed %d of %d", policy, r.Counters.TasksExecuted, g.NumTasks())
		}
		if r.Counters.TasksMigrated == 0 {
			t.Fatalf("%v moved no work on a single-root UTS tree", policy)
		}
	}
}
