package suite

import "testing"

func TestPaperSuiteShape(t *testing.T) {
	apps := Paper(Small, 1)
	if len(apps) != 7 {
		t.Fatalf("paper suite has %d apps, want 7", len(apps))
	}
	want := []string{"quicksort", "turingring", "kmeans", "agglom", "dmg", "dmr", "nbody"}
	for i, a := range apps {
		if a.Name() != want[i] {
			t.Fatalf("app %d = %q, want %q", i, a.Name(), want[i])
		}
	}
}

func TestMicroSuiteShape(t *testing.T) {
	apps := Micro(1)
	if len(apps) != 5 {
		t.Fatalf("micro suite has %d apps, want 5", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name()] {
			t.Fatalf("duplicate micro app %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

func TestByNameResolvesEverything(t *testing.T) {
	names := append(Names(), "uts", "mergesort", "skyline", "montecarlo-pi", "matchain", "randomaccess")
	for _, n := range names {
		a, err := ByName(n, Small, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if a.Name() != n {
			t.Fatalf("ByName(%q) returned %q", n, a.Name())
		}
	}
	if _, err := ByName("nope", Small, 1); err == nil {
		t.Fatalf("unknown name should error")
	}
}

func TestScaleGrowsWorkloads(t *testing.T) {
	small := Paper(Small, 1)
	medium := Paper(Medium, 1)
	for i := range small {
		gs, err := small[i].Trace(2)
		if err != nil {
			t.Fatalf("%s small trace: %v", small[i].Name(), err)
		}
		_ = medium[i] // medium traces are exercised in the expt benchmarks
		if gs.NumTasks() == 0 {
			t.Fatalf("%s produced an empty trace", small[i].Name())
		}
	}
}

func TestUTSInstanceBounded(t *testing.T) {
	u := UTS(1)
	n := u.Count()
	if n < 1000 || n >= u.MaxNodes {
		t.Fatalf("UTS default tree size %d out of range [1000, %d)", n, u.MaxNodes)
	}
}
