// Package suite assembles the paper's benchmark applications at runnable
// scales. The paper's own input sizes (§VII: 100M-element quicksort, 1M
// Turing Ring bodies, 220K n-Body bodies, 2M clustering points, 80K DMG
// points, 550K DMR triangles) are recorded in each app's doc comment; the
// default scales here preserve every workload's *shape* — task structure,
// skew, and Table I granularities (imposed by calibration) — while
// keeping trace generation and simulation fast enough to rerun the whole
// evaluation in seconds.
package suite

import (
	"fmt"

	"distws/internal/apps"
	"distws/internal/apps/agglom"
	"distws/internal/apps/dmg"
	"distws/internal/apps/dmr"
	"distws/internal/apps/kmeans"
	"distws/internal/apps/micro"
	"distws/internal/apps/nbody"
	"distws/internal/apps/qsort"
	"distws/internal/apps/turingring"
	"distws/internal/apps/uts"
)

// Scale multiplies the default workload sizes.
type Scale int

const (
	// Small is the default evaluation scale (seconds per experiment).
	Small Scale = 1
	// Medium is 4× Small (a few minutes for the full evaluation).
	Medium Scale = 4
)

// Paper returns the seven applications of the paper's evaluation (§VII)
// in presentation order.
func Paper(scale Scale, seed int64) []apps.App {
	s := int(scale)
	if s < 1 {
		s = 1
	}
	return []apps.App{
		qsort.New(30_000*s, seed),
		turingring.New(256*s, 10, seed),
		kmeans.New(8_000*s, 5, seed),
		agglom.New(1_200*s, seed),
		dmg.New(5_000*s, seed),
		dmr.New(2_000*s, seed),
		nbody.New(4_000*s, 2, seed),
	}
}

// Micro returns the five fine-grained apps of the granularity study
// (§VIII-Q2).
func Micro(seed int64) []apps.App { return micro.Suite(seed) }

// UTS returns the Unbalanced Tree Search instance for the §X comparison.
func UTS(seed int64) *uts.App { return uts.New(4, 11, 400_000, seed) }

// ByName resolves an application by its table name, including the micro
// apps and UTS.
func ByName(name string, scale Scale, seed int64) (apps.App, error) {
	for _, a := range Paper(scale, seed) {
		if a.Name() == name {
			return a, nil
		}
	}
	for _, a := range Micro(seed) {
		if a.Name() == name {
			return a, nil
		}
	}
	if name == "uts" {
		return UTS(seed), nil
	}
	return nil, fmt.Errorf("suite: unknown application %q", name)
}

// Names lists the paper-suite application names in order.
func Names() []string {
	out := make([]string, 0, 7)
	for _, a := range Paper(Small, 1) {
		out = append(out, a.Name())
	}
	return out
}
