// Package cachesim models a per-worker L1 data cache as an LRU set of
// application data-block identifiers. It exists to reproduce the mechanism
// behind Table II of the paper: stealing a random task from a remote node
// disrupts the victim's and the thief's working sets, so non-selective
// distributed stealing (DistWS-NS) shows higher L1d miss rates than either
// X10WS or selective DistWS.
//
// The model deliberately abstracts away associativity and line size:
// applications declare their working sets as abstract block IDs (one block
// ≈ one cache-line-sized or page-sized chunk of the structure being
// processed), and the cache tracks which blocks a worker has touched
// recently. That is exactly the fidelity the paper's argument needs — a
// migrated task whose blocks are absent from the thief's cache misses on
// all of them, while a task re-run near its data hits.
package cachesim

// Cache is a fixed-capacity LRU set of block IDs. Not safe for concurrent
// use: each worker owns one cache, mirroring private L1s.
type Cache struct {
	capacity int
	// Intrusive LRU: map into ring of nodes. We keep it simple with a
	// doubly linked list threaded through a slice-backed node pool.
	nodes map[uint64]*node
	head  *node // most recently used
	tail  *node // least recently used
	refs  int64
	miss  int64
}

type node struct {
	block      uint64
	prev, next *node
}

// New returns a cache holding at most capacity blocks. Capacity must be
// positive; a typical L1d of 32 KiB with 64-byte lines is capacity 512.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("cachesim: capacity must be positive")
	}
	return &Cache{capacity: capacity, nodes: make(map[uint64]*node, capacity)}
}

// Capacity returns the configured block capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.nodes) }

// Touch references one block, returning true on a hit. On a miss the block
// is installed, evicting the least recently used block if necessary.
func (c *Cache) Touch(block uint64) bool {
	c.refs++
	if n, ok := c.nodes[block]; ok {
		c.moveToFront(n)
		return true
	}
	c.miss++
	n := &node{block: block}
	c.nodes[block] = n
	c.pushFront(n)
	if len(c.nodes) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.nodes, lru.block)
	}
	return false
}

// TouchAll references every block in blocks, returning the number of hits
// and misses.
func (c *Cache) TouchAll(blocks []uint64) (hits, misses int) {
	for _, b := range blocks {
		if c.Touch(b) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Contains reports whether block is resident without touching it.
func (c *Cache) Contains(block uint64) bool {
	_, ok := c.nodes[block]
	return ok
}

// Stats returns the cumulative references and misses.
func (c *Cache) Stats() (refs, misses int64) { return c.refs, c.miss }

// MissRate returns misses per reference in percent (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return 100 * float64(c.miss) / float64(c.refs)
}

// Reset empties the cache and zeroes the statistics.
func (c *Cache) Reset() {
	c.nodes = make(map[uint64]*node, c.capacity)
	c.head, c.tail = nil, nil
	c.refs, c.miss = 0, 0
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
