// Package cachesim models a per-worker L1 data cache as an LRU set of
// application data-block identifiers. It exists to reproduce the mechanism
// behind Table II of the paper: stealing a random task from a remote node
// disrupts the victim's and the thief's working sets, so non-selective
// distributed stealing (DistWS-NS) shows higher L1d miss rates than either
// X10WS or selective DistWS.
//
// The model deliberately abstracts away associativity and line size:
// applications declare their working sets as abstract block IDs (one block
// ≈ one cache-line-sized or page-sized chunk of the structure being
// processed), and the cache tracks which blocks a worker has touched
// recently. That is exactly the fidelity the paper's argument needs — a
// migrated task whose blocks are absent from the thief's cache misses on
// all of them, while a task re-run near its data hits.
package cachesim

// Cache is a fixed-capacity LRU set of block IDs. Not safe for concurrent
// use: each worker owns one cache, mirroring private L1s.
//
// Internally the LRU list is intrusive over a preallocated slab of nodes
// indexed by int32, with a map from block ID to slab index. Once the slab
// is full every insertion reuses the evicted node in place, so steady-state
// operation — including Reset — allocates nothing: Touch is on the
// simulator's per-task hot path, where a pointer-based list would create
// one garbage node per miss.
type Cache struct {
	capacity int
	idx      map[uint64]int32
	slab     []node
	head     int32 // most recently used, -1 when empty
	tail     int32 // least recently used, -1 when empty
	used     int32 // slab nodes in use; nodes [0, used) are live
	refs     int64
	miss     int64
}

type node struct {
	block      uint64
	prev, next int32 // slab indices, -1 terminated
}

// New returns a cache holding at most capacity blocks. Capacity must be
// positive; a typical L1d of 32 KiB with 64-byte lines is capacity 512.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("cachesim: capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		idx:      make(map[uint64]int32, capacity),
		slab:     make([]node, capacity),
		head:     -1,
		tail:     -1,
	}
}

// Capacity returns the configured block capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return int(c.used) }

// Touch references one block, returning true on a hit. On a miss the block
// is installed, evicting the least recently used block if necessary.
func (c *Cache) Touch(block uint64) bool {
	c.refs++
	if i, ok := c.idx[block]; ok {
		c.moveToFront(i)
		return true
	}
	c.miss++
	var i int32
	if int(c.used) < c.capacity {
		i = c.used
		c.used++
	} else {
		// Full: reuse the LRU node in place.
		i = c.tail
		c.unlink(i)
		delete(c.idx, c.slab[i].block)
	}
	c.slab[i].block = block
	c.idx[block] = i
	c.pushFront(i)
	return false
}

// TouchAll references every block in blocks, returning the number of hits
// and misses.
func (c *Cache) TouchAll(blocks []uint64) (hits, misses int) {
	for _, b := range blocks {
		if c.Touch(b) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Contains reports whether block is resident without touching it.
func (c *Cache) Contains(block uint64) bool {
	_, ok := c.idx[block]
	return ok
}

// Stats returns the cumulative references and misses.
func (c *Cache) Stats() (refs, misses int64) { return c.refs, c.miss }

// MissRate returns misses per reference in percent (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return 100 * float64(c.miss) / float64(c.refs)
}

// Reset empties the cache and zeroes the statistics. It reuses the node
// slab and the map's storage (clear keeps a map's buckets), so resetting
// between runs is garbage-free.
func (c *Cache) Reset() {
	clear(c.idx)
	c.head, c.tail = -1, -1
	c.used = 0
	c.refs, c.miss = 0, 0
}

func (c *Cache) pushFront(i int32) {
	n := &c.slab[i]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.slab[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *Cache) unlink(i int32) {
	n := &c.slab[i]
	if n.prev >= 0 {
		c.slab[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.slab[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

func (c *Cache) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}
