package cachesim

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(4)
	if c.Touch(1) {
		t.Fatalf("first touch should miss")
	}
	if !c.Touch(1) {
		t.Fatalf("second touch should hit")
	}
	refs, misses := c.Stats()
	if refs != 2 || misses != 1 {
		t.Fatalf("stats = %d refs %d misses, want 2/1", refs, misses)
	}
	if got := c.MissRate(); got != 50 {
		t.Fatalf("MissRate = %v, want 50", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Touch(1)
	c.Touch(2)
	c.Touch(1) // 1 is now MRU, 2 is LRU
	c.Touch(3) // evicts 2
	if !c.Contains(1) {
		t.Fatalf("block 1 should survive (was MRU)")
	}
	if c.Contains(2) {
		t.Fatalf("block 2 should have been evicted (was LRU)")
	}
	if !c.Contains(3) {
		t.Fatalf("block 3 should be resident")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestTouchAll(t *testing.T) {
	c := New(8)
	hits, misses := c.TouchAll([]uint64{1, 2, 3, 1})
	if hits != 1 || misses != 3 {
		t.Fatalf("TouchAll = %d hits %d misses, want 1/3", hits, misses)
	}
}

func TestCapacityOne(t *testing.T) {
	c := New(1)
	c.Touch(1)
	c.Touch(2)
	if c.Contains(1) || !c.Contains(2) {
		t.Fatalf("capacity-1 cache should hold only the last block")
	}
	if !c.Touch(2) {
		t.Fatalf("resident block should hit")
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.TouchAll([]uint64{1, 2, 3})
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	refs, misses := c.Stats()
	if refs != 0 || misses != 0 {
		t.Fatalf("stats after Reset = %d/%d", refs, misses)
	}
	if c.Touch(1) {
		t.Fatalf("touch after reset should miss")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(0) should panic")
		}
	}()
	New(0)
}

func TestMissRateEmptyCache(t *testing.T) {
	if got := New(4).MissRate(); got != 0 {
		t.Fatalf("untouched cache MissRate = %v, want 0", got)
	}
}

// Property: Len never exceeds capacity and Contains agrees with a model map
// maintained under the same LRU discipline.
func TestLRUModelEquivalence(t *testing.T) {
	f := func(blocks []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := New(capacity)
		// Reference model: ordered slice, most recent first.
		var model []uint64
		touchModel := func(b uint64) bool {
			for i, x := range model {
				if x == b {
					model = append(model[:i], model[i+1:]...)
					model = append([]uint64{b}, model...)
					return true
				}
			}
			model = append([]uint64{b}, model...)
			if len(model) > capacity {
				model = model[:capacity]
			}
			return false
		}
		for _, raw := range blocks {
			b := uint64(raw % 32)
			gotHit := c.Touch(b)
			wantHit := touchModel(b)
			if gotHit != wantHit {
				return false
			}
			if c.Len() > capacity || c.Len() != len(model) {
				return false
			}
		}
		for _, b := range model {
			if !c.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set that fits in the cache converges to a 100% hit
// rate after the first pass.
func TestResidentWorkingSetHits(t *testing.T) {
	c := New(64)
	ws := make([]uint64, 64)
	for i := range ws {
		ws[i] = uint64(i)
	}
	c.TouchAll(ws) // cold pass
	for pass := 0; pass < 3; pass++ {
		hits, misses := c.TouchAll(ws)
		if misses != 0 || hits != len(ws) {
			t.Fatalf("pass %d: %d hits %d misses, want all hits", pass, hits, misses)
		}
	}
}

func BenchmarkTouchResident(b *testing.B) {
	c := New(512)
	for i := 0; i < 512; i++ {
		c.Touch(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(uint64(i % 512))
	}
}

func BenchmarkTouchStreaming(b *testing.B) {
	c := New(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(uint64(i))
	}
}
