package service

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// SimTenant is one tenant's traffic model in the service simulator.
type SimTenant struct {
	// Tenant is the tenant id.
	Tenant uint32
	// Config is the tenant's admission/fair-share contract.
	Config TenantConfig
	// ArrivalHz is the Poisson submission rate.
	ArrivalHz float64
	// MeanServiceNS is the mean of the exponential service-time draw.
	MeanServiceNS int64
	// Priority tags every simulated job.
	Priority uint8
}

// SimChurn changes the executor capacity mid-run: positive DeltaSlots
// models places joining, negative models graceful drains (running jobs
// finish; the capacity loss lands as they complete).
type SimChurn struct {
	AtNS       int64
	DeltaSlots int
}

// SimConfig is one deterministic service simulation: virtual time only,
// all randomness from Seed, so equal configs produce bit-identical
// reports — the property the fixed-seed soak pins.
type SimConfig struct {
	Seed int64
	// Slots is the initial executor capacity (concurrent jobs).
	Slots int
	// Quantum scales the DRR credit per visit (0 = 1).
	Quantum int
	// DurationNS bounds the arrival processes; the run then drains.
	DurationNS int64
	Tenants    []SimTenant
	Churn      []SimChurn
}

// simEvent is one heap entry; seq breaks time ties deterministically.
type simEvent struct {
	t    int64
	seq  uint64
	kind int  // 0 arrival, 1 completion, 2 churn
	idx  int  // tenant index (arrival) or churn index
	item Item // completion only
}

type simHeap []simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *simHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// SimTenantResult is one tenant's simulated outcome.
type SimTenantResult struct {
	Tenant                                   uint32
	Weight                                   int
	Submitted, Admitted, Rejected, Completed int64
	// P50/P99/P999 are virtual-time latency quantile bounds (admission to
	// completion), straight from the log2 histogram.
	P50, P99, P999 int64
	// MeanWaitNS is the mean admission-to-dispatch wait.
	MeanWaitNS int64
}

// SimReport is a deterministic function of its SimConfig.
type SimReport struct {
	Config  SimConfig
	Tenants []SimTenantResult // ascending tenant id
	// EndNS is the virtual instant the last job completed.
	EndNS int64
	// Jain is the fairness index over completed-per-weight shares.
	Jain float64
}

// Format renders the report; equal reports render equal strings, which is
// how the soak compares two runs bit for bit.
func (r *SimReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: seed=%d slots=%d horizon=%s end=%s jain=%.6f\n",
		r.Config.Seed, r.Config.Slots,
		time.Duration(r.Config.DurationNS), time.Duration(r.EndNS), r.Jain)
	fmt.Fprintf(&b, "%8s %6s %9s %9s %9s %9s %12s %12s %12s %12s\n",
		"tenant", "weight", "submit", "admit", "reject", "complete", "p50", "p99", "p999", "wait")
	for i := range r.Tenants {
		t := &r.Tenants[i]
		fmt.Fprintf(&b, "%8d %6d %9d %9d %9d %9d %12s %12s %12s %12s\n",
			t.Tenant, t.Weight, t.Submitted, t.Admitted, t.Rejected, t.Completed,
			time.Duration(t.P50), time.Duration(t.P99), time.Duration(t.P999),
			time.Duration(t.MeanWaitNS))
	}
	return b.String()
}

// Simulate runs the service model on virtual time: Poisson arrivals per
// tenant feed the real Admission and FairShare code (the same structs the
// live server runs), jobs occupy executor slots for exponential service
// times, and churn events grow or shrink capacity mid-stream. Everything
// derives from cfg.Seed — no wall clock, no map-order dependence — so the
// report is bit-identical across runs.
func Simulate(cfg SimConfig) (*SimReport, error) {
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("service: simulate with %d slots, want >= 1", cfg.Slots)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("service: simulate with no tenants")
	}
	if cfg.DurationNS <= 0 {
		return nil, fmt.Errorf("service: simulate with horizon %d, want > 0", cfg.DurationNS)
	}
	tcfg := make(map[uint32]TenantConfig, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		tcfg[t.Tenant] = t.Config
	}
	adm := NewAdmission(tcfg)
	fs := NewFairShare(cfg.Quantum, adm.Weights())
	stats := NewStats()

	// Independent arrival streams and one service-time stream: dispatch
	// order is deterministic, so drawing service times at dispatch is too.
	arrival := make([]*rand.Rand, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		arrival[i] = rand.New(rand.NewSource(cfg.Seed + int64(t.Tenant)))
	}
	svc := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	var h simHeap
	var seq uint64
	push := func(e simEvent) {
		seq++
		e.seq = seq
		heap.Push(&h, e)
	}
	for i, t := range cfg.Tenants {
		if t.ArrivalHz <= 0 {
			return nil, fmt.Errorf("service: tenant %d arrival rate %g, want > 0", t.Tenant, t.ArrivalHz)
		}
		push(simEvent{t: int64(arrival[i].ExpFloat64() / t.ArrivalHz * 1e9), kind: 0, idx: i})
	}
	for i, c := range cfg.Churn {
		push(simEvent{t: c.AtNS, kind: 2, idx: i})
	}

	slots, busy := cfg.Slots, 0
	var now, endNS int64
	meanSvc := make(map[uint32]int64, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		m := t.MeanServiceNS
		if m < 1 {
			m = 1
		}
		meanSvc[t.Tenant] = m
	}
	pump := func() {
		for busy < slots {
			it, ok := fs.Pop()
			if !ok {
				return
			}
			busy++
			stats.Tenant(it.Job.Tenant).QueueWait.Record(now - it.AdmittedNS)
			d := int64(svc.ExpFloat64() * float64(meanSvc[it.Job.Tenant]))
			if d < 1 {
				d = 1
			}
			push(simEvent{t: now + d, kind: 1, item: it})
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(simEvent)
		now = e.t
		switch e.kind {
		case 0: // arrival
			t := cfg.Tenants[e.idx]
			st := stats.Tenant(t.Tenant)
			st.Submitted.Add(1)
			if err := adm.Admit(t.Tenant, now); err != nil {
				st.Rejected.Add(1)
			} else {
				st.Admitted.Add(1)
				fs.Push(t.Tenant, Item{Job: Job{Tenant: t.Tenant, Priority: t.Priority}, AdmittedNS: now})
				pump()
			}
			next := now + int64(arrival[e.idx].ExpFloat64()/t.ArrivalHz*1e9)
			if next < cfg.DurationNS {
				push(simEvent{t: next, kind: 0, idx: e.idx})
			}
		case 1: // completion
			busy--
			adm.Complete(e.item.Job.Tenant)
			st := stats.Tenant(e.item.Job.Tenant)
			st.Completed.Add(1)
			st.Latency.Record(now - e.item.AdmittedNS)
			endNS = now
			pump()
		case 2: // churn
			slots += cfg.Churn[e.idx].DeltaSlots
			if slots < 1 {
				slots = 1 // the cluster never loses its last slot
			}
			pump()
		}
	}
	if fs.Len() != 0 {
		return nil, fmt.Errorf("service: simulation ended with %d jobs stranded", fs.Len())
	}

	report := &SimReport{Config: cfg, EndNS: endNS}
	ids := make([]uint32, 0, len(cfg.Tenants))
	weights := adm.Weights()
	for _, t := range cfg.Tenants {
		ids = append(ids, t.Tenant)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	shares := make([]float64, 0, len(ids))
	for _, id := range ids {
		st := stats.Tenant(id)
		report.Tenants = append(report.Tenants, SimTenantResult{
			Tenant:     id,
			Weight:     weights[id],
			Submitted:  st.Submitted.Load(),
			Admitted:   st.Admitted.Load(),
			Rejected:   st.Rejected.Load(),
			Completed:  st.Completed.Load(),
			P50:        st.Latency.Quantile(0.5),
			P99:        st.Latency.Quantile(0.99),
			P999:       st.Latency.Quantile(0.999),
			MeanWaitNS: st.QueueWait.Mean(),
		})
		shares = append(shares, float64(st.Completed.Load())/float64(weights[id]))
	}
	report.Jain = JainIndex(shares)
	return report, nil
}
