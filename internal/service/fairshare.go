package service

import "sort"

// Item is one admitted job waiting for a dispatch slot, with the
// bookkeeping the server needs when it finally goes out.
type Item struct {
	// Job is the admitted job.
	Job Job
	// Client is the submitting client's place id (where the reply goes).
	Client int
	// AdmittedNS is the admission instant (queue-wait accounting).
	AdmittedNS int64
}

// tenantQueue is one tenant's backlog plus its deficit-round-robin state.
type tenantQueue struct {
	items   []Item
	deficit int
	active  bool // member of the service ring
}

// FairShare schedules admitted jobs across tenants with weighted deficit
// round robin (Shreedhar & Varghese): tenants sit on a service ring; each
// visit adds quantum×weight credit to the visited tenant's deficit, and a
// job is dispatched whenever the tenant at the cursor has a job and at
// least one job's worth of credit. With unit job cost this degenerates to
// weighted round robin with per-visit bursts of `weight` jobs — the
// starvation bound pinned by test: a backlogged tenant waits at most
// ΣWeights−w_i+1 dispatches between two of its own.
//
// The structure is deterministic (ring order = first-push order, ties
// broken by tenant id at Reset) and clock-free, so the simulator replays
// it bit-identically. Not safe for concurrent use.
type FairShare struct {
	quantum int
	weights map[uint32]int
	queues  map[uint32]*tenantQueue
	ring    []uint32 // tenants with queued work, service order
	cursor  int
	queued  int
}

// NewFairShare builds a scheduler with the given per-tenant weights.
// quantum scales the credit added per visit (0 means 1); with unit job
// cost it is the per-visit burst multiplier.
func NewFairShare(quantum int, weights map[uint32]int) *FairShare {
	if quantum < 1 {
		quantum = 1
	}
	return &FairShare{
		quantum: quantum,
		weights: weights,
		queues:  make(map[uint32]*tenantQueue),
	}
}

// weight returns the tenant's effective weight.
func (f *FairShare) weight(tenant uint32) int {
	if w := f.weights[tenant]; w > 1 {
		return w
	}
	return 1
}

// Push enqueues an admitted job at the tail of its tenant's queue.
// Within one tenant, higher Priority jobs are served before lower ones
// (stable among equals); tenants never preempt each other.
func (f *FairShare) Push(tenant uint32, it Item) {
	q := f.queues[tenant]
	if q == nil {
		q = &tenantQueue{}
		f.queues[tenant] = q
	}
	// Insert before the first strictly-lower-priority item from the tail,
	// keeping arrival order among equal priorities.
	pos := len(q.items)
	for pos > 0 && q.items[pos-1].Job.Priority < it.Job.Priority {
		pos--
	}
	q.items = append(q.items, Item{})
	copy(q.items[pos+1:], q.items[pos:])
	q.items[pos] = it
	f.queued++
	if !q.active {
		q.active = true
		f.ring = append(f.ring, tenant)
	}
}

// Len returns the total queued job count across tenants.
func (f *FairShare) Len() int { return f.queued }

// QueuedFor returns one tenant's backlog depth.
func (f *FairShare) QueuedFor(tenant uint32) int {
	if q := f.queues[tenant]; q != nil {
		return len(q.items)
	}
	return 0
}

// Pop removes and returns the next job under the DRR discipline. The
// second result is false when nothing is queued.
func (f *FairShare) Pop() (Item, bool) {
	for len(f.ring) > 0 {
		if f.cursor >= len(f.ring) {
			f.cursor = 0
		}
		tenant := f.ring[f.cursor]
		q := f.queues[tenant]
		if len(q.items) == 0 {
			// Emptied since its last service: drop from the ring and
			// reset its credit (classic DRR: idle tenants accrue nothing).
			q.active = false
			q.deficit = 0
			f.ring = append(f.ring[:f.cursor], f.ring[f.cursor+1:]...)
			continue
		}
		if q.deficit < 1 {
			q.deficit += f.quantum * f.weight(tenant)
			if q.deficit < 1 {
				f.cursor++
				continue
			}
		}
		q.deficit--
		it := q.items[0]
		q.items = q.items[1:]
		f.queued--
		if len(q.items) == 0 {
			q.active = false
			q.deficit = 0
			f.ring = append(f.ring[:f.cursor], f.ring[f.cursor+1:]...)
		} else if q.deficit < 1 {
			f.cursor++ // credit spent: next tenant's turn
		}
		return it, true
	}
	return Item{}, false
}

// DrainAll empties every queue, returning the stranded items ordered by
// tenant id then queue position — the shutdown path, where everything
// still queued is nacked back to its client.
func (f *FairShare) DrainAll() []Item {
	ids := make([]uint32, 0, len(f.queues))
	for id, q := range f.queues {
		if len(q.items) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Item
	for _, id := range ids {
		q := f.queues[id]
		out = append(out, q.items...)
		q.items = nil
		q.active = false
		q.deficit = 0
	}
	f.ring = f.ring[:0]
	f.cursor = 0
	f.queued = 0
	return out
}
