package service

import (
	"context"
	"fmt"
	"sync"

	"distws/internal/comm"
)

// Client is one tenant-side session with a service front door: it owns a
// client seat on the transport (place id >= the cluster's compute size),
// streams job submissions to the server place, and routes replies back to
// whoever asked. Safe for concurrent use; the receive loop starts on
// construction and ends when the node's inbox closes.
type Client struct {
	node   comm.Node
	server int

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Reply
	done    chan struct{}
}

// NewClient wraps an attached comm node (already Open-ed on a client
// seat) talking to the front door at server. It spawns the receive loop.
func NewClient(node comm.Node, server int) *Client {
	c := &Client{
		node:    node,
		server:  server,
		pending: make(map[uint64]chan Reply),
		done:    make(chan struct{}),
	}
	go c.recv()
	return c
}

// recv routes replies to their waiting calls until the inbox closes.
func (c *Client) recv() {
	defer close(c.done)
	for m := range c.node.Inbox() {
		if m.Kind != comm.KindJobDone && m.Kind != comm.KindJobNack {
			continue
		}
		r, err := DecodeReply(m.Payload)
		if err != nil {
			continue // a malformed reply orphans one call; its ctx bounds the wait
		}
		r.Result = append([]byte(nil), r.Result...) // outlive the inbox buffer
		c.mu.Lock()
		ch := c.pending[r.ID]
		delete(c.pending, r.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- r
		}
	}
}

// Submit streams one job to the server and registers a reply channel.
// The job's ID field is assigned here (client-scoped). The returned
// channel receives exactly one Reply — a completion (Code OK) or a nack.
func (c *Client) Submit(j Job) (<-chan Reply, error) {
	ch := make(chan Reply, 1)
	c.mu.Lock()
	c.nextID++
	j.ID = c.nextID
	c.pending[j.ID] = ch
	c.mu.Unlock()
	err := c.node.Send(comm.Message{
		Kind:    comm.KindSubmit,
		To:      c.server,
		Seq:     j.ID,
		Payload: AppendJob(nil, j),
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, j.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("service: submit job %d: %w", j.ID, err)
	}
	return ch, nil
}

// Call submits a job and blocks for its reply (RPC convenience over
// Submit). A nack is returned as a Reply, not an error; err is reserved
// for transport failures and ctx expiry.
func (c *Client) Call(ctx context.Context, j Job) (Reply, error) {
	ch, err := c.Submit(j)
	if err != nil {
		return Reply{}, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-c.done:
		return Reply{}, fmt.Errorf("service: connection closed awaiting job reply")
	case <-ctx.Done():
		return Reply{}, ctx.Err()
	}
}

// Done is closed when the receive loop exits (transport closed).
func (c *Client) Done() <-chan struct{} { return c.done }
