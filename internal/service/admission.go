package service

import (
	"fmt"
	"math"

	"distws/internal/comm"
)

// TenantConfig describes one tenant's contract with the service: its
// fair-share weight and its admission limits.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight (>= 1; 0 means 1). At
	// saturation a tenant receives Weight/ΣWeights of the dispatch slots.
	Weight int
	// Rate is the sustained admission rate in jobs per second refilling
	// the tenant's token bucket. 0 means unlimited.
	Rate float64
	// Burst is the token-bucket capacity — how many jobs may be admitted
	// back to back after an idle period. 0 defaults to max(1, ⌈Rate⌉).
	Burst int
	// MaxInFlight caps the tenant's admitted-but-uncompleted jobs
	// (queued + dispatched). 0 means unlimited. This is also the bound
	// on the tenant's queue: admission is the only door into it.
	MaxInFlight int
}

// weight returns the effective fair-share weight.
func (c TenantConfig) weight() int {
	if c.Weight < 1 {
		return 1
	}
	return c.Weight
}

// burst returns the effective token-bucket capacity.
func (c TenantConfig) burst() int {
	if c.Burst > 0 {
		return c.Burst
	}
	if c.Rate <= 0 {
		return 1
	}
	return int(math.Max(1, math.Ceil(c.Rate)))
}

// AdmissionError is the typed rejection of a job submission. It joins the
// existing backpressure surface: errors.Is(err, comm.ErrBackpressure)
// matches, because an admission rejection is the service-level form of
// "the destination cannot take this right now".
type AdmissionError struct {
	// Tenant is the rejected tenant.
	Tenant uint32
	// Code names the reason (NackRate, NackQuota, NackUnknownTenant).
	Code NackCode
	// RetryAfterNS hints how long to back off: for a rate rejection, the
	// time until the next token lands; 0 when only external progress (a
	// completion) can help.
	RetryAfterNS int64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("service: tenant %d rejected (%s)", e.Tenant, e.Code)
}

// Is makes errors.Is(err, comm.ErrBackpressure) match.
func (e *AdmissionError) Is(target error) bool { return target == comm.ErrBackpressure }

// tenantState is one tenant's live admission state.
type tenantState struct {
	cfg      TenantConfig
	tokens   float64 // current token-bucket level
	lastNS   int64   // clock of the last refill
	inflight int     // admitted jobs not yet completed
}

// Admission is the per-tenant admission controller: a deterministic
// token bucket (rate + burst) and an in-flight quota per tenant. It is
// clock-explicit — callers pass nowNS — so the simulator drives it on
// virtual time and fixed-seed runs replay bit-identically. Not safe for
// concurrent use; the owning event loop serializes access.
type Admission struct {
	tenants map[uint32]*tenantState
}

// NewAdmission builds a controller for the configured tenants. Tenants
// absent from cfg are rejected with NackUnknownTenant.
func NewAdmission(cfg map[uint32]TenantConfig) *Admission {
	a := &Admission{tenants: make(map[uint32]*tenantState, len(cfg))}
	for id, c := range cfg {
		a.tenants[id] = &tenantState{cfg: c, tokens: float64(c.burst())}
	}
	return a
}

// Config returns the tenant's configuration and whether it is known.
func (a *Admission) Config(tenant uint32) (TenantConfig, bool) {
	st, ok := a.tenants[tenant]
	if !ok {
		return TenantConfig{}, false
	}
	return st.cfg, true
}

// Weights returns the fair-share weight of every configured tenant.
func (a *Admission) Weights() map[uint32]int {
	w := make(map[uint32]int, len(a.tenants))
	for id, st := range a.tenants {
		w[id] = st.cfg.weight()
	}
	return w
}

// refill tops the bucket up for the time elapsed since the last refill.
func (st *tenantState) refill(nowNS int64) {
	if st.cfg.Rate <= 0 {
		return
	}
	if dt := nowNS - st.lastNS; dt > 0 {
		st.tokens = math.Min(float64(st.cfg.burst()),
			st.tokens+st.cfg.Rate*float64(dt)/1e9)
	}
	st.lastNS = nowNS
}

// Admit charges one job to the tenant at nowNS. On success it returns nil
// and the job counts against the in-flight quota until Complete. On
// rejection it returns a typed *AdmissionError (which also matches
// comm.ErrBackpressure) carrying the reason and a backoff hint.
func (a *Admission) Admit(tenant uint32, nowNS int64) error {
	st, ok := a.tenants[tenant]
	if !ok {
		return &AdmissionError{Tenant: tenant, Code: NackUnknownTenant}
	}
	if st.cfg.MaxInFlight > 0 && st.inflight >= st.cfg.MaxInFlight {
		return &AdmissionError{Tenant: tenant, Code: NackQuota}
	}
	if st.cfg.Rate > 0 {
		st.refill(nowNS)
		if st.tokens < 1 {
			// Hint the time until the next whole token accrues.
			wait := int64((1 - st.tokens) / st.cfg.Rate * 1e9)
			return &AdmissionError{Tenant: tenant, Code: NackRate, RetryAfterNS: wait}
		}
		st.tokens--
	}
	st.inflight++
	return nil
}

// Complete releases one in-flight slot for the tenant (job completed,
// expired, or failed after admission). Unknown tenants are ignored.
func (a *Admission) Complete(tenant uint32) {
	if st, ok := a.tenants[tenant]; ok && st.inflight > 0 {
		st.inflight--
	}
}

// InFlight returns the tenant's admitted-but-uncompleted job count.
func (a *Admission) InFlight(tenant uint32) int {
	if st, ok := a.tenants[tenant]; ok {
		return st.inflight
	}
	return 0
}
