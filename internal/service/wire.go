// Package service turns the batch-oriented runtime into a long-lived
// multi-tenant task service: clients stream jobs over any comm transport
// into a front door at place 0, per-tenant admission control (token-bucket
// rate + in-flight quota) decides what enters, a weighted deficit
// round-robin scheduler shares the executor cluster fairly across tenants,
// and every admitted job completes exactly once — through executor joins,
// graceful drains, and failures — before its result is acked back to the
// submitting client.
//
// The package splits into the wire protocol (this file), admission control
// (admission.go), the fair-share dispatcher (fairshare.go), per-tenant
// statistics (stats.go), the streaming front door (server.go), the client
// session (client.go), a network load generator (loadgen.go), and a
// deterministic virtual-time service simulator (sim.go) that reuses the
// same admission and fair-share code for bit-identical fixed-seed runs.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The service job frame is the payload of every comm.KindSubmit message: a
// versioned binary header followed by the job's opaque argument. Like the
// membership payload it rides inside a comm frame, so it needs no own
// length prefix.
//
//	offset 0:  version (1 byte, frameVersion)
//	offset 1:  priority (1 byte; 0 = lowest)
//	offset 2:  tenant id (4 bytes, big endian)
//	offset 6:  job id (8 bytes, big endian; client-scoped)
//	offset 14: deadline (8 bytes, big endian, server-clock ns; 0 = none)
//	offset 22: task-name length n (2 bytes, big endian, <= MaxTaskName)
//	offset 24: task name (n bytes)
//	offset 24+n: argument (the rest of the frame)
const (
	frameVersion = 1
	jobHeaderLen = 24
	// MaxTaskName bounds the registry name a job may carry, so a corrupt
	// length field cannot smuggle an oversized allocation.
	MaxTaskName = 255
)

// Job is one unit of client-submitted work: which tenant it bills to,
// a client-scoped id the reply is correlated by, an optional deadline and
// priority, and the registered task it resolves to at an executor.
type Job struct {
	// Tenant is the tenant the job bills to (admission + fair share).
	Tenant uint32
	// ID correlates the reply; ids are scoped to the submitting client.
	ID uint64
	// Priority orders jobs within one tenant's queue (higher first);
	// tenants never preempt each other through it.
	Priority uint8
	// DeadlineNS, when nonzero, is the server-clock instant after which
	// the job is dropped with NackDeadline instead of dispatched.
	DeadlineNS int64
	// Name is the task-registry name executors resolve the job to.
	Name string
	// Arg is the job's opaque argument.
	Arg []byte
}

// The service reply frame is the payload of KindJobDone and KindJobNack:
//
//	offset 0:  version (1 byte, frameVersion)
//	offset 1:  code (1 byte; 0 = OK, otherwise a NackCode)
//	offset 2:  tenant id (4 bytes, big endian)
//	offset 6:  job id (8 bytes, big endian)
//	offset 14: retry-after (8 bytes, big endian ns; backoff hint, nacks only)
//	offset 22: result (the rest of the frame, completions only)
const replyHeaderLen = 22

// NackCode names why a submission was rejected.
type NackCode uint8

const (
	// OK is not a nack: the reply carries a completed job's result.
	OK NackCode = iota
	// NackUnknownTenant rejects a tenant the service has no config for.
	NackUnknownTenant
	// NackUnknownTask rejects a job naming an unregistered task.
	NackUnknownTask
	// NackRate rejects a submission that exceeded the tenant's
	// token-bucket rate; retry-after hints when the next token lands.
	NackRate
	// NackQuota rejects a submission while the tenant's in-flight quota
	// is exhausted; retry on a completion.
	NackQuota
	// NackOverload rejects a submission the dispatcher could not place
	// because every executor path was saturated (backpressure).
	NackOverload
	// NackDraining rejects a submission because the service is shutting
	// down gracefully.
	NackDraining
	// NackDeadline drops a job whose deadline passed before dispatch.
	NackDeadline
	numNackCodes
)

var nackNames = [...]string{
	OK:                "ok",
	NackUnknownTenant: "unknown-tenant",
	NackUnknownTask:   "unknown-task",
	NackRate:          "over-rate",
	NackQuota:         "over-quota",
	NackOverload:      "overload",
	NackDraining:      "draining",
	NackDeadline:      "deadline",
}

// String names the code for diagnostics.
func (c NackCode) String() string {
	if int(c) < len(nackNames) {
		return nackNames[c]
	}
	return fmt.Sprintf("NackCode(%d)", uint8(c))
}

// Reply is the decoded form of a KindJobDone or KindJobNack payload.
type Reply struct {
	// Tenant and ID echo the submission being answered.
	Tenant uint32
	ID     uint64
	// Code is OK for a completion, otherwise the rejection reason.
	Code NackCode
	// RetryAfterNS hints how long the client should back off before
	// resubmitting a nacked job (0 = retry on external progress).
	RetryAfterNS int64
	// Result is the completed job's opaque result (nil on nacks).
	Result []byte
}

// ErrBadFrame is wrapped by every service frame decoding failure, so
// callers can errors.Is it without parsing messages.
var ErrBadFrame = errors.New("service: malformed service frame")

// AppendJob appends the job frame encoding of j to dst and returns the
// extended slice.
func AppendJob(dst []byte, j Job) []byte {
	dst = append(dst, frameVersion, j.Priority)
	dst = binary.BigEndian.AppendUint32(dst, j.Tenant)
	dst = binary.BigEndian.AppendUint64(dst, j.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(j.DeadlineNS))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(j.Name)))
	dst = append(dst, j.Name...)
	return append(dst, j.Arg...)
}

// DecodeJob parses a job frame. The returned job's Arg aliases b. A name
// longer than MaxTaskName, a truncated header, or an unknown version is
// rejected with a wrapped ErrBadFrame.
func DecodeJob(b []byte) (Job, error) {
	if len(b) < jobHeaderLen {
		return Job{}, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadFrame, len(b), jobHeaderLen)
	}
	if b[0] != frameVersion {
		return Job{}, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, b[0], frameVersion)
	}
	n := int(binary.BigEndian.Uint16(b[22:24]))
	if n > MaxTaskName {
		return Job{}, fmt.Errorf("%w: task name %d bytes, max %d", ErrBadFrame, n, MaxTaskName)
	}
	if len(b) < jobHeaderLen+n {
		return Job{}, fmt.Errorf("%w: name needs %d bytes, have %d", ErrBadFrame, n, len(b)-jobHeaderLen)
	}
	j := Job{
		Priority:   b[1],
		Tenant:     binary.BigEndian.Uint32(b[2:6]),
		ID:         binary.BigEndian.Uint64(b[6:14]),
		DeadlineNS: int64(binary.BigEndian.Uint64(b[14:22])),
		Name:       string(b[jobHeaderLen : jobHeaderLen+n]),
	}
	if rest := b[jobHeaderLen+n:]; len(rest) > 0 {
		j.Arg = rest
	}
	return j, nil
}

// AppendReply appends the reply frame encoding of r to dst and returns
// the extended slice.
func AppendReply(dst []byte, r Reply) []byte {
	dst = append(dst, frameVersion, byte(r.Code))
	dst = binary.BigEndian.AppendUint32(dst, r.Tenant)
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.RetryAfterNS))
	return append(dst, r.Result...)
}

// DecodeReply parses a reply frame. The returned reply's Result aliases b.
func DecodeReply(b []byte) (Reply, error) {
	if len(b) < replyHeaderLen {
		return Reply{}, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadFrame, len(b), replyHeaderLen)
	}
	if b[0] != frameVersion {
		return Reply{}, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, b[0], frameVersion)
	}
	if b[1] >= uint8(numNackCodes) {
		return Reply{}, fmt.Errorf("%w: unknown code %d", ErrBadFrame, b[1])
	}
	r := Reply{
		Code:         NackCode(b[1]),
		Tenant:       binary.BigEndian.Uint32(b[2:6]),
		ID:           binary.BigEndian.Uint64(b[6:14]),
		RetryAfterNS: int64(binary.BigEndian.Uint64(b[14:22])),
	}
	if rest := b[replyHeaderLen:]; len(rest) > 0 {
		r.Result = rest
	}
	return r, nil
}
