package service

import "testing"

// push enqueues n unit jobs for a tenant.
func push(f *FairShare, tenant uint32, n int) {
	for i := 0; i < n; i++ {
		push1(f, tenant, 0)
	}
}

func push1(f *FairShare, tenant uint32, prio uint8) {
	f.Push(tenant, Item{Job: Job{Tenant: tenant, Priority: prio}})
}

// TestFairShareWeightedSplit pins the saturation contract the service
// advertises: with every tenant backlogged, each receives its weight's
// proportion of dispatches, never deviating by more than 10%.
func TestFairShareWeightedSplit(t *testing.T) {
	weights := map[uint32]int{1: 1, 2: 3, 3: 4}
	f := NewFairShare(1, weights)
	const per = 400
	for id := range weights {
		push(f, id, per)
	}
	// Count shares over a window in which every tenant stays backlogged.
	const window = 320 // < per: nobody drains inside the window
	counts := map[uint32]int{}
	for i := 0; i < window; i++ {
		it, ok := f.Pop()
		if !ok {
			t.Fatalf("queue dried up at pop %d", i)
		}
		counts[it.Job.Tenant]++
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	for id, w := range weights {
		want := float64(w) / float64(total)
		got := float64(counts[id]) / float64(window)
		if dev := (got - want) / want; dev > 0.10 || dev < -0.10 {
			t.Errorf("tenant %d share %.3f, want %.3f ±10%% (weights %v, counts %v)",
				id, got, want, weights, counts)
		}
	}
}

// TestFairShareStarvationBound pins the DRR starvation bound: a
// backlogged tenant waits at most quantum×(ΣW−w)+1 dispatches between two
// of its own.
func TestFairShareStarvationBound(t *testing.T) {
	weights := map[uint32]int{1: 1, 2: 5, 3: 5}
	const quantum = 1
	f := NewFairShare(quantum, weights)
	for id := range weights {
		push(f, id, 300)
	}
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	bound := quantum*(sumW-1) + 1 // for tenant 1 (weight 1)
	last := -1
	for i := 0; i < 900; i++ {
		it, ok := f.Pop()
		if !ok {
			break
		}
		if it.Job.Tenant != 1 {
			continue
		}
		if last >= 0 && i-last > bound {
			t.Fatalf("tenant 1 starved for %d dispatches (pops %d..%d), bound %d",
				i-last, last, i, bound)
		}
		last = i
	}
	if last < 0 {
		t.Fatalf("tenant 1 never served")
	}
}

// TestFairSharePriority pins intra-tenant priority order: higher first,
// stable among equals, and never across tenants.
func TestFairSharePriority(t *testing.T) {
	f := NewFairShare(1, map[uint32]int{1: 1})
	for i, prio := range []uint8{0, 2, 1, 2} {
		f.Push(1, Item{Job: Job{Tenant: 1, ID: uint64(i), Priority: prio}})
	}
	var order []uint64
	for {
		it, ok := f.Pop()
		if !ok {
			break
		}
		order = append(order, it.Job.ID)
	}
	want := []uint64{1, 3, 2, 0} // prio 2 (ids 1,3 in arrival order), 1, 0
	if len(order) != len(want) {
		t.Fatalf("popped %d items, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

// TestFairShareDrainAll pins the shutdown path: everything queued comes
// back ordered by tenant, and the scheduler resets clean.
func TestFairShareDrainAll(t *testing.T) {
	f := NewFairShare(1, map[uint32]int{5: 1, 2: 1})
	push(f, 5, 2)
	push(f, 2, 3)
	out := f.DrainAll()
	if len(out) != 5 {
		t.Fatalf("drained %d items, want 5", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Job.Tenant < out[i-1].Job.Tenant {
			t.Fatalf("drain not tenant-ordered: %v then %v", out[i-1].Job.Tenant, out[i].Job.Tenant)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after DrainAll, want 0", f.Len())
	}
	if _, ok := f.Pop(); ok {
		t.Fatalf("Pop succeeded after DrainAll")
	}
	// The scheduler is reusable after a drain.
	push(f, 5, 1)
	if it, ok := f.Pop(); !ok || it.Job.Tenant != 5 {
		t.Fatalf("post-drain pop = %+v, %v", it, ok)
	}
}
