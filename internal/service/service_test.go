package service

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distws/internal/comm"
	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/node"
	"distws/internal/obs"
	"distws/internal/task"
)

// meshNode adapts an in-process mesh endpoint to the comm.Node surface
// the server, executors, and clients speak.
type meshNode struct{ comm.Endpoint }

func (meshNode) AwaitTimeout(time.Duration) error { return nil }
func (meshNode) Down(int) bool                    { return false }
func (meshNode) InjectFaults(*fault.Injector)     {}
func (meshNode) SetRecorder(*obs.Recorder)        {}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// startExecutor runs a node.Executor on seat p and returns its exit channel.
func startExecutor(m *comm.Mesh, p int, reg *task.Registry, conc int, announce bool) (*node.Executor, chan error) {
	ex := &node.Executor{
		Node:        meshNode{m.Endpoint(p)},
		Place:       p,
		Registry:    reg,
		Concurrency: conc,
		Announce:    announce,
		Run: func(name string, arg []byte) ([]byte, error) {
			if name == "svc.slow" {
				time.Sleep(20 * time.Millisecond)
			}
			return u64(binary.BigEndian.Uint64(arg) * 2), nil
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := ex.Serve()
		done <- err
	}()
	return ex, done
}

// TestServiceEndToEnd streams jobs from three concurrent tenants through
// the front door over an in-process mesh: results come back correct,
// admission rejects over-quota and unknown traffic with typed nacks, and
// a graceful drain completes every admitted job.
func TestServiceEndToEnd(t *testing.T) {
	const places = 3 // server + 2 executors; seats 3,4 are clients
	m := comm.NewMesh(places+2, 256, nil)
	reg := task.NewRegistry()
	reg.Register("svc.double", func([]byte) error { return nil })
	reg.Register("svc.slow", func([]byte) error { return nil })
	_, ex1 := startExecutor(m, 1, reg, 2, false)
	_, ex2 := startExecutor(m, 2, reg, 2, false)

	var ctrs metrics.Counters
	stats := NewStats()
	srv := &Server{
		Node:   meshNode{m.Endpoint(0)},
		Places: places,
		Tenants: map[uint32]TenantConfig{
			1: {MaxInFlight: 8},
			2: {Weight: 2, MaxInFlight: 8},
			3: {MaxInFlight: 1},
		},
		Registry:   reg,
		Counters:   &ctrs,
		Stats:      stats,
		RetryAfter: 2 * time.Second,
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	ca := NewClient(meshNode{m.Endpoint(places)}, 0)
	cb := NewClient(meshNode{m.Endpoint(places + 1)}, 0)

	var wg sync.WaitGroup
	var bad atomic.Int64
	for _, tenant := range []uint32{1, 2} {
		wg.Add(1)
		go func(tenant uint32) {
			defer wg.Done()
			for i := uint64(0); i < 20; i++ {
				r, err := ca.Call(ctx, Job{Tenant: tenant, Name: "svc.double", Arg: u64(i)})
				if err != nil || r.Code != OK || binary.BigEndian.Uint64(r.Result) != i*2 {
					t.Errorf("tenant %d job %d: reply %+v err %v", tenant, i, r, err)
					bad.Add(1)
					return
				}
			}
		}(tenant)
	}
	// Tenant 3 bursts 10 concurrent calls against an in-flight quota of 1:
	// some must be nacked with NackQuota, none may vanish.
	var quotaNacks, okReplies atomic.Int64
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			r, err := cb.Call(ctx, Job{Tenant: 3, Name: "svc.slow", Arg: u64(i)})
			if err != nil {
				t.Errorf("tenant 3 job %d: %v", i, err)
				return
			}
			switch r.Code {
			case OK:
				okReplies.Add(1)
			case NackQuota:
				quotaNacks.Add(1)
			default:
				t.Errorf("tenant 3 job %d: unexpected code %v", i, r.Code)
			}
		}(uint64(i))
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d failed calls", bad.Load())
	}
	if got := okReplies.Load() + quotaNacks.Load(); got != 10 {
		t.Fatalf("tenant 3 accounted %d of 10 calls", got)
	}
	if quotaNacks.Load() == 0 {
		t.Fatalf("no quota nacks for a 10-deep burst against MaxInFlight=1")
	}

	// Unknown tenant and unknown task are typed rejections, not drops.
	if r, err := ca.Call(ctx, Job{Tenant: 99, Name: "svc.double", Arg: u64(1)}); err != nil || r.Code != NackUnknownTenant {
		t.Fatalf("unknown tenant: reply %+v err %v", r, err)
	}
	if r, err := ca.Call(ctx, Job{Tenant: 1, Name: "no.such.task", Arg: u64(1)}); err != nil || r.Code != NackUnknownTask {
		t.Fatalf("unknown task: reply %+v err %v", r, err)
	}

	// Per-tenant accounting: everything admitted completed, exactly once.
	for _, tenant := range []uint32{1, 2, 3} {
		st := stats.Tenant(tenant)
		if st.Admitted.Load() != st.Completed.Load() {
			t.Errorf("tenant %d: admitted %d != completed %d",
				tenant, st.Admitted.Load(), st.Completed.Load())
		}
	}
	if got := ctrs.JobsCompleted.Load(); got != 40+okReplies.Load() {
		t.Errorf("JobsCompleted = %d, want %d", got, 40+okReplies.Load())
	}
	if ctrs.JobsRejected.Load() == 0 {
		t.Errorf("JobsRejected = 0, want > 0")
	}

	srv.Drain()
	if err := <-srvDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	for i, ch := range []chan error{ex1, ex2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("executor %d: %v", i+1, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("executor %d never released", i+1)
		}
	}
}

// TestServiceFairShareSaturation pins the end-to-end fairness contract:
// with two tenants fully backlogged behind one serial executor, the
// dispatch share of each tenant deviates from its weight proportion by
// no more than 10%.
func TestServiceFairShareSaturation(t *testing.T) {
	const places = 2
	m := comm.NewMesh(places+1, 1024, nil)
	reg := task.NewRegistry()
	reg.Register("svc.gate", func([]byte) error { return nil })

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []uint32 // tenant of each job, in execution order
	ex := &node.Executor{
		Node:     meshNode{m.Endpoint(1)},
		Place:    1,
		Registry: reg,
		Run: func(name string, arg []byte) ([]byte, error) {
			<-gate
			mu.Lock()
			order = append(order, binary.BigEndian.Uint32(arg))
			mu.Unlock()
			return nil, nil
		},
	}
	exDone := make(chan error, 1)
	go func() { _, err := ex.Serve(); exDone <- err }()

	stats := NewStats()
	srv := &Server{
		Node:   meshNode{m.Endpoint(0)},
		Places: places,
		Tenants: map[uint32]TenantConfig{
			1: {Weight: 1},
			2: {Weight: 3},
		},
		Registry:   reg,
		Stats:      stats,
		RetryAfter: time.Minute, // no spurious re-dispatch while gated
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(context.Background()) }()

	c := NewClient(meshNode{m.Endpoint(places)}, 0)
	const per = 300
	arg := func(tenant uint32) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint32(b, tenant)
		return b
	}
	for i := 0; i < per; i++ {
		for _, tenant := range []uint32{1, 2} {
			if _, err := c.Submit(Job{Tenant: tenant, Name: "svc.gate", Arg: arg(tenant)}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	// Wait until both backlogs sit in the fair-share queues, then open the
	// gate: from here each completion pops exactly one job in DRR order.
	deadline := time.Now().Add(10 * time.Second)
	for stats.Tenant(1).Admitted.Load()+stats.Tenant(2).Admitted.Load() < 2*per {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs admitted",
				stats.Tenant(1).Admitted.Load()+stats.Tenant(2).Admitted.Load(), 2*per)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for stats.Tenant(1).Completed.Load()+stats.Tenant(2).Completed.Load() < 2*per {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs completed",
				stats.Tenant(1).Completed.Load()+stats.Tenant(2).Completed.Load(), 2*per)
		}
		time.Sleep(time.Millisecond)
	}

	// Skip the pre-saturation head (dispatched on arrival, before both
	// tenants were backlogged), and stop before tenant 2's queue dries.
	mu.Lock()
	window := order[16:316]
	mu.Unlock()
	counts := map[uint32]int{}
	for _, tenant := range window {
		counts[tenant]++
	}
	for tenant, weight := range map[uint32]float64{1: 1, 2: 3} {
		want := weight / 4
		got := float64(counts[tenant]) / float64(len(window))
		if dev := (got - want) / want; dev > 0.10 || dev < -0.10 {
			t.Errorf("tenant %d dispatch share %.3f, want %.3f ±10%% (counts %v)",
				tenant, got, want, counts)
		}
	}

	srv.Drain()
	if err := <-srvDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	<-exDone
}

// TestServiceChurnExactlyOnce streams one tenant's jobs through a mid-run
// executor join and a graceful drain: every admitted job completes
// exactly once, and nothing is re-executed by the churn.
func TestServiceChurnExactlyOnce(t *testing.T) {
	const places = 4 // server + 3 executor seats (seat 3 joins late)
	m := comm.NewMesh(places+1, 512, nil)
	reg := task.NewRegistry()
	reg.Register("svc.double", func([]byte) error { return nil })
	exA, exADone := startExecutor(m, 1, reg, 2, false)
	_, exBDone := startExecutor(m, 2, reg, 2, false)

	var ctrs metrics.Counters
	stats := NewStats()
	srv := &Server{
		Node:       meshNode{m.Endpoint(0)},
		Places:     places,
		Tenants:    map[uint32]TenantConfig{1: {MaxInFlight: 16}},
		Registry:   reg,
		Counters:   &ctrs,
		Stats:      stats,
		Absent:     []int{3},
		RetryAfter: 2 * time.Second,
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := NewClient(meshNode{m.Endpoint(places)}, 0)

	const total = 200
	var replies atomic.Int64
	var churn sync.Once
	var wg sync.WaitGroup
	var exCDone chan error
	churnDone := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				id := uint64(w*total/8 + i)
				r, err := c.Call(ctx, Job{Tenant: 1, Name: "svc.double", Arg: u64(id)})
				if err != nil || r.Code != OK || binary.BigEndian.Uint64(r.Result) != id*2 {
					t.Errorf("job %d: reply %+v err %v", id, r, err)
					return
				}
				if replies.Add(1) == total/4 {
					// A quarter in: seat 3 joins, then executor 1 drains.
					churn.Do(func() {
						_, exCDone = startExecutor(m, 3, reg, 2, true)
						// The announcement is sent from the executor's own
						// goroutine; hold the drain until the server has
						// admitted the joiner so both transitions happen
						// mid-stream.
						for ctrs.MembershipJoins.Load() == 0 {
							time.Sleep(time.Millisecond)
						}
						exA.Drain()
						close(churnDone)
					})
				}
			}
		}(w)
	}
	wg.Wait()
	<-churnDone
	// The drain announcement races the tail of the stream: Drain() returns
	// once the message is enqueued, not once the server has processed it,
	// so wait for the counter before asserting on it.
	for deadline := time.Now().Add(5 * time.Second); ctrs.MembershipDrains.Load() == 0 &&
		time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	st := stats.Tenant(1)
	if st.Admitted.Load() != total || st.Completed.Load() != total {
		t.Fatalf("admitted %d completed %d, want %d of each",
			st.Admitted.Load(), st.Completed.Load(), total)
	}
	if st.Rejected.Load() != 0 {
		t.Fatalf("rejected %d jobs, want 0", st.Rejected.Load())
	}
	if got := ctrs.TasksReExecuted.Load(); got != 0 {
		t.Fatalf("TasksReExecuted = %d: churn re-ran completed work", got)
	}
	if ctrs.MembershipJoins.Load() == 0 || ctrs.MembershipDrains.Load() == 0 {
		t.Fatalf("churn not observed: joins=%d drains=%d",
			ctrs.MembershipJoins.Load(), ctrs.MembershipDrains.Load())
	}

	srv.Drain()
	if err := <-srvDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	for name, ch := range map[string]chan error{"A": exADone, "B": exBDone, "C": exCDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("executor %s: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("executor %s never released", name)
		}
	}
}

// TestRunLoadMesh drives the load generator against a live service and
// checks its accounting adds up.
func TestRunLoadMesh(t *testing.T) {
	const places = 3
	m := comm.NewMesh(places+1, 512, nil)
	reg := task.NewRegistry()
	reg.Register("svc.double", func([]byte) error { return nil })
	reg.Register("svc.slow", func([]byte) error { return nil })
	_, ex1 := startExecutor(m, 1, reg, 2, false)
	_, ex2 := startExecutor(m, 2, reg, 2, false)

	stats := NewStats()
	srv := &Server{
		Node:   meshNode{m.Endpoint(0)},
		Places: places,
		Tenants: map[uint32]TenantConfig{
			1: {Weight: 1, MaxInFlight: 8},
			2: {Weight: 2, MaxInFlight: 8},
			3: {Weight: 1, MaxInFlight: 1},
		},
		Registry:   reg,
		Stats:      stats,
		RetryAfter: 2 * time.Second,
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := NewClient(meshNode{m.Endpoint(places)}, 0)
	report, err := RunLoad(ctx, c, LoadConfig{
		Seed: 42,
		Tenants: []TenantLoad{
			{Tenant: 1, Weight: 1, Clients: 2, Jobs: 40, Task: "svc.double", Arg: u64(5)},
			{Tenant: 2, Weight: 2, Clients: 2, Jobs: 40, Task: "svc.double", Arg: u64(5)},
			{Tenant: 3, Weight: 1, Clients: 4, Jobs: 20, Task: "svc.slow", Arg: u64(5)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("report has %d transport errors", report.Errors)
	}
	if len(report.Tenants) != 3 {
		t.Fatalf("report covers %d tenants, want 3", len(report.Tenants))
	}
	for i := range report.Tenants {
		tr := &report.Tenants[i]
		if i > 0 && tr.Tenant <= report.Tenants[i-1].Tenant {
			t.Fatalf("tenants not sorted: %v", report.Tenants)
		}
		if tr.Completed+tr.Rejected != tr.Attempted {
			t.Errorf("tenant %d: completed %d + rejected %d != attempted %d",
				tr.Tenant, tr.Completed, tr.Rejected, tr.Attempted)
		}
		if tr.Completed == 0 {
			t.Errorf("tenant %d completed nothing", tr.Tenant)
		}
	}
	// Tenant 3's 4 clients against MaxInFlight=1 must see quota nacks.
	if report.Tenants[2].Nacks[NackQuota] == 0 {
		t.Errorf("tenant 3 saw no quota nacks (rejected %d of %d attempts)",
			report.Tenants[2].Rejected, report.Tenants[2].Attempted)
	}
	if report.Jain <= 0 || report.Jain > 1 {
		t.Errorf("Jain index %v out of (0,1]", report.Jain)
	}
	if report.Format() == "" {
		t.Errorf("empty formatted report")
	}

	srv.Drain()
	if err := <-srvDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	<-ex1
	<-ex2
}

// TestParseTenantSpec pins the tenant-mix flag grammar.
func TestParseTenantSpec(t *testing.T) {
	cfg, err := ParseTenantSpec("1:w=1,rate=100,burst=10,inflight=8; 2:w=3")
	if err != nil {
		t.Fatal(err)
	}
	want1 := TenantConfig{Weight: 1, Rate: 100, Burst: 10, MaxInFlight: 8}
	if cfg[1] != want1 {
		t.Fatalf("tenant 1 = %+v, want %+v", cfg[1], want1)
	}
	if cfg[2].Weight != 3 {
		t.Fatalf("tenant 2 = %+v, want weight 3", cfg[2])
	}
	for _, bad := range []string{"", "x", "1:w", "1:z=3", "1:w=x"} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("ParseTenantSpec(%q) accepted", bad)
		}
	}
}
