package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TenantLoad describes one tenant's traffic in a load run.
type TenantLoad struct {
	// Tenant is the tenant id jobs bill to.
	Tenant uint32
	// Weight is the tenant's fair-share weight, echoed into the report so
	// fairness is judged per weight unit.
	Weight int
	// Clients is the closed-loop concurrency: that many workers each keep
	// one call in flight (default 1). Ignored in open loop.
	Clients int
	// RateHz, when > 0, switches the tenant to open loop: submissions
	// arrive in a Poisson stream at this rate regardless of completions.
	RateHz float64
	// Jobs caps the tenant's total submission attempts (0 = until ctx).
	Jobs int
	// Task names the registered task each job runs.
	Task string
	// Arg is the opaque argument sent with every job.
	Arg []byte
	// Priority tags every job (intra-tenant ordering).
	Priority uint8
}

// LoadConfig is one load-generator run.
type LoadConfig struct {
	// Seed drives the open-loop arrival processes.
	Seed int64
	// Tenants is the traffic mix.
	Tenants []TenantLoad
	// CallTimeout bounds one submission's wait for a reply (default 30s).
	CallTimeout time.Duration
}

// TenantResult is one tenant's client-observed outcome.
type TenantResult struct {
	Tenant    uint32
	Weight    int
	Attempted int64
	Completed int64
	Rejected  int64
	// Nacks counts rejections by reason, indexed by NackCode.
	Nacks [numNackCodes]int64
	// Latency observes client-side submit→reply time for completions.
	Latency Histogram
}

// LoadReport aggregates a load run.
type LoadReport struct {
	ElapsedNS int64
	Tenants   []TenantResult // ascending tenant id
	// Jain is Jain's fairness index over completed-per-weight shares: 1.0
	// means the cluster split exactly along the configured weights.
	Jain float64
	// Errors counts transport-level submission failures (not nacks).
	Errors int64
}

// Throughput returns completed jobs per second across tenants.
func (r *LoadReport) Throughput() float64 {
	if r.ElapsedNS <= 0 {
		return 0
	}
	var done int64
	for i := range r.Tenants {
		done += r.Tenants[i].Completed
	}
	return float64(done) / (float64(r.ElapsedNS) / 1e9)
}

// Format renders the report as an aligned human-readable table.
func (r *LoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %.2fs elapsed, %.1f jobs/s, Jain fairness %.4f, %d transport error(s)\n",
		float64(r.ElapsedNS)/1e9, r.Throughput(), r.Jain, r.Errors)
	fmt.Fprintf(&b, "%8s %6s %9s %9s %9s %12s %12s %12s  nacks\n",
		"tenant", "weight", "attempt", "complete", "reject", "p50", "p99", "p999")
	for i := range r.Tenants {
		t := &r.Tenants[i]
		var nacks []string
		for c := NackCode(1); c < numNackCodes; c++ {
			if n := t.Nacks[c]; n > 0 {
				nacks = append(nacks, fmt.Sprintf("%s=%d", c, n))
			}
		}
		fmt.Fprintf(&b, "%8d %6d %9d %9d %9d %12s %12s %12s  %s\n",
			t.Tenant, t.Weight, t.Attempted, t.Completed, t.Rejected,
			time.Duration(t.Latency.Quantile(0.5)), time.Duration(t.Latency.Quantile(0.99)),
			time.Duration(t.Latency.Quantile(0.999)), strings.Join(nacks, " "))
	}
	return b.String()
}

// jain computes the report's fairness index from completed-per-weight.
func (r *LoadReport) jain() float64 {
	shares := make([]float64, 0, len(r.Tenants))
	for i := range r.Tenants {
		t := &r.Tenants[i]
		w := t.Weight
		if w < 1 {
			w = 1
		}
		shares = append(shares, float64(t.Completed)/float64(w))
	}
	return JainIndex(shares)
}

// RunLoad drives the configured traffic mix through one client session
// until every tenant's job budget is spent or ctx expires, then reports
// per-tenant outcomes and overall fairness. Closed-loop tenants keep
// Clients calls in flight; open-loop tenants submit on a seeded Poisson
// clock independent of completions (the tail-latency-honest mode).
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (*LoadReport, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("service: load run with no tenants")
	}
	timeout := cfg.CallTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	results := make([]TenantResult, len(cfg.Tenants))
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := range cfg.Tenants {
		tl := cfg.Tenants[i]
		res := &results[i]
		res.Tenant, res.Weight = tl.Tenant, tl.Weight
		if tl.RateHz > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				openLoop(ctx, c, tl, res, &errs, timeout, cfg.Seed)
			}()
			continue
		}
		workers := tl.Clients
		if workers < 1 {
			workers = 1
		}
		var budget *atomic.Int64 // submissions still allowed; nil = unlimited
		if tl.Jobs > 0 {
			budget = new(atomic.Int64)
			budget.Store(int64(tl.Jobs))
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				closedLoop(ctx, c, tl, res, &errs, timeout, budget)
			}()
		}
	}
	wg.Wait()
	report := &LoadReport{ElapsedNS: time.Since(start).Nanoseconds(), Errors: errs.Load()}
	sort.Slice(results, func(i, j int) bool { return results[i].Tenant < results[j].Tenant })
	report.Tenants = results
	report.Jain = report.jain()
	return report, nil
}

// account records one call outcome into the tenant's result. Counter
// fields are updated atomically: several workers share one TenantResult.
func account(res *TenantResult, r Reply, elapsedNS int64) {
	if r.Code == OK {
		atomic.AddInt64(&res.Completed, 1)
		res.Latency.Record(elapsedNS)
		return
	}
	atomic.AddInt64(&res.Rejected, 1)
	atomic.AddInt64(&res.Nacks[r.Code], 1)
}

// closedLoop is one worker holding a single call in flight. Rate nacks
// back off by the server's hint so the worker probes, not hammers.
func closedLoop(ctx context.Context, c *Client, tl TenantLoad, res *TenantResult,
	errs *atomic.Int64, timeout time.Duration, budget *atomic.Int64) {
	for ctx.Err() == nil {
		if budget != nil && budget.Add(-1) < 0 {
			return
		}
		atomic.AddInt64(&res.Attempted, 1)
		cctx, cancel := context.WithTimeout(ctx, timeout)
		t0 := time.Now()
		r, err := c.Call(cctx, Job{Tenant: tl.Tenant, Priority: tl.Priority, Name: tl.Task, Arg: tl.Arg})
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			errs.Add(1)
			continue
		}
		account(res, r, time.Since(t0).Nanoseconds())
		if r.Code == NackRate && r.RetryAfterNS > 0 {
			select {
			case <-time.After(time.Duration(r.RetryAfterNS)):
			case <-ctx.Done():
				return
			}
		}
	}
}

// openLoop submits on a seeded Poisson arrival clock, decoupling the
// arrival process from completions; replies are collected concurrently.
func openLoop(ctx context.Context, c *Client, tl TenantLoad, res *TenantResult,
	errs *atomic.Int64, timeout time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed + int64(tl.Tenant)))
	var collectors sync.WaitGroup
	defer collectors.Wait()
	for n := 0; ctx.Err() == nil && (tl.Jobs == 0 || n < tl.Jobs); n++ {
		// Exponential inter-arrival at RateHz.
		wait := time.Duration(rng.ExpFloat64() / tl.RateHz * float64(time.Second))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return
		}
		atomic.AddInt64(&res.Attempted, 1)
		t0 := time.Now()
		ch, err := c.Submit(Job{Tenant: tl.Tenant, Priority: tl.Priority, Name: tl.Task, Arg: tl.Arg})
		if err != nil {
			errs.Add(1)
			continue
		}
		collectors.Add(1)
		go func() {
			defer collectors.Done()
			select {
			case r := <-ch:
				account(res, r, time.Since(t0).Nanoseconds())
			case <-time.After(timeout):
			case <-c.Done():
			}
		}()
	}
}

// ParseTenantSpec parses a tenant-mix flag of the form
//
//	"1:w=1,rate=100,burst=10,inflight=8;2:w=3,inflight=16"
//
// into service tenant configs: one clause per tenant, `id:` followed by
// comma-separated key=value pairs (w, rate, burst, inflight).
func ParseTenantSpec(spec string) (map[uint32]TenantConfig, error) {
	out := make(map[uint32]TenantConfig)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		id, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("service: tenant clause %q, want id:k=v,...", clause)
		}
		var tenant uint32
		if _, err := fmt.Sscanf(strings.TrimSpace(id), "%d", &tenant); err != nil {
			return nil, fmt.Errorf("service: tenant id %q: %w", id, err)
		}
		var cfg TenantConfig
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("service: tenant %d option %q, want k=v", tenant, kv)
			}
			var err error
			switch k {
			case "w":
				_, err = fmt.Sscanf(v, "%d", &cfg.Weight)
			case "rate":
				_, err = fmt.Sscanf(v, "%g", &cfg.Rate)
			case "burst":
				_, err = fmt.Sscanf(v, "%d", &cfg.Burst)
			case "inflight":
				_, err = fmt.Sscanf(v, "%d", &cfg.MaxInFlight)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("service: tenant %d option %q: %w", tenant, kv, err)
			}
		}
		out[tenant] = cfg
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: tenant spec %q has no tenants", spec)
	}
	return out, nil
}
