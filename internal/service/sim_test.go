package service

import (
	"math"
	"testing"
)

// simSoakConfig is a saturated two-tenant service with mid-run churn:
// capacity drops by two slots at 0.5s (drain) and recovers at 1s (join).
func simSoakConfig(seed int64) SimConfig {
	return SimConfig{
		Seed:       seed,
		Slots:      4,
		DurationNS: 2_000_000_000,
		Tenants: []SimTenant{
			{Tenant: 1, Config: TenantConfig{Weight: 1, MaxInFlight: 32},
				ArrivalHz: 5000, MeanServiceNS: 1_000_000},
			{Tenant: 2, Config: TenantConfig{Weight: 3, MaxInFlight: 32},
				ArrivalHz: 5000, MeanServiceNS: 1_000_000},
		},
		Churn: []SimChurn{
			{AtNS: 500_000_000, DeltaSlots: -2},
			{AtNS: 1_000_000_000, DeltaSlots: 2},
		},
	}
}

// TestSimulateDeterministic pins the fixed-seed contract: two runs of the
// same config render bit-identical reports, and a different seed does not.
func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(simSoakConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(simSoakConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatalf("fixed-seed sim is nondeterministic:\n%s\n%s", a.Format(), b.Format())
	}
	other, err := Simulate(simSoakConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() == other.Format() {
		t.Fatalf("different seeds produced identical reports — seed unused?")
	}
}

// TestSimulateAccounting pins conservation and saturation behavior: every
// submission is admitted or rejected, every admitted job completes, the
// quota generates rejections under overload, and the weighted tenant
// completes proportionally more.
func TestSimulateAccounting(t *testing.T) {
	r, err := Simulate(simSoakConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range r.Tenants {
		if tr.Admitted+tr.Rejected != tr.Submitted {
			t.Errorf("tenant %d: admitted %d + rejected %d != submitted %d",
				tr.Tenant, tr.Admitted, tr.Rejected, tr.Submitted)
		}
		if tr.Completed != tr.Admitted {
			t.Errorf("tenant %d: completed %d != admitted %d", tr.Tenant, tr.Completed, tr.Admitted)
		}
		if tr.Rejected == 0 {
			t.Errorf("tenant %d: no rejections under 2.5x overload", tr.Tenant)
		}
		if tr.P50 > tr.P99 || tr.P99 > tr.P999 {
			t.Errorf("tenant %d: quantiles not monotone: %d/%d/%d", tr.Tenant, tr.P50, tr.P99, tr.P999)
		}
	}
	// At saturation the DRR split tracks the weights: completed-per-weight
	// shares are near-equal, so Jain's index approaches 1 and tenant 1's
	// share of completions stays within 10% of its 1/4 weight fraction.
	if r.Jain < 0.95 {
		t.Errorf("Jain fairness %v under saturation, want >= 0.95\n%s", r.Jain, r.Format())
	}
	t1, t2 := r.Tenants[0], r.Tenants[1]
	share := float64(t1.Completed) / float64(t1.Completed+t2.Completed)
	if math.Abs(share-0.25)/0.25 > 0.10 {
		t.Errorf("tenant 1 completion share %.3f, want 0.25 ±10%%\n%s", share, r.Format())
	}
}

// TestSimulateRejectsBadConfig pins the config validation.
func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := simSoakConfig(1)
	cfg.Tenants[0].ArrivalHz = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
}
