package service

import (
	"errors"
	"testing"

	"distws/internal/comm"
)

// TestAdmissionUnknownTenant pins the typed rejection for unconfigured
// tenants, and that every admission error joins the backpressure surface.
func TestAdmissionUnknownTenant(t *testing.T) {
	a := NewAdmission(map[uint32]TenantConfig{1: {}})
	err := a.Admit(99, 0)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Code != NackUnknownTenant {
		t.Fatalf("admit unknown tenant: %v, want NackUnknownTenant", err)
	}
	if !errors.Is(err, comm.ErrBackpressure) {
		t.Fatalf("admission error does not match comm.ErrBackpressure")
	}
}

// TestAdmissionQuota pins the in-flight cap: admissions beyond
// MaxInFlight are nacked until completions free slots.
func TestAdmissionQuota(t *testing.T) {
	a := NewAdmission(map[uint32]TenantConfig{1: {MaxInFlight: 2}})
	for i := 0; i < 2; i++ {
		if err := a.Admit(1, 0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	var ae *AdmissionError
	if err := a.Admit(1, 0); !errors.As(err, &ae) || ae.Code != NackQuota {
		t.Fatalf("admit over quota: %v, want NackQuota", err)
	}
	if got := a.InFlight(1); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	a.Complete(1)
	if err := a.Admit(1, 0); err != nil {
		t.Fatalf("admit after completion: %v", err)
	}
}

// TestAdmissionRate pins the token bucket on an explicit clock: Burst
// admissions pass back to back, the next is nacked with a positive
// retry-after hint, and the hinted wait indeed frees a token.
func TestAdmissionRate(t *testing.T) {
	a := NewAdmission(map[uint32]TenantConfig{1: {Rate: 1000, Burst: 2}})
	for i := 0; i < 2; i++ {
		if err := a.Admit(1, 0); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := a.Admit(1, 0)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Code != NackRate {
		t.Fatalf("admit over rate: %v, want NackRate", err)
	}
	if ae.RetryAfterNS <= 0 {
		t.Fatalf("RetryAfterNS = %d, want > 0", ae.RetryAfterNS)
	}
	// At 1000 jobs/s one token accrues per ms; the hint says so.
	if ae.RetryAfterNS > 1_000_000 {
		t.Fatalf("RetryAfterNS = %d, want <= 1ms at 1000/s", ae.RetryAfterNS)
	}
	if err := a.Admit(1, ae.RetryAfterNS); err != nil {
		t.Fatalf("admit after hinted wait: %v", err)
	}
}

// TestAdmissionDefaults pins the effective weight and burst defaults.
func TestAdmissionDefaults(t *testing.T) {
	a := NewAdmission(map[uint32]TenantConfig{
		1: {},                     // weight 1, no rate
		2: {Weight: 3, Rate: 2.5}, // burst defaults to ceil(2.5) = 3
	})
	w := a.Weights()
	if w[1] != 1 || w[2] != 3 {
		t.Fatalf("Weights = %v, want {1:1, 2:3}", w)
	}
	for i := 0; i < 3; i++ {
		if err := a.Admit(2, 0); err != nil {
			t.Fatalf("default-burst admit %d: %v", i, err)
		}
	}
	if err := a.Admit(2, 0); err == nil {
		t.Fatalf("admit past default burst succeeded, want rate nack")
	}
	// Unlimited tenants never rate-nack.
	for i := 0; i < 100; i++ {
		if err := a.Admit(1, 0); err != nil {
			t.Fatalf("unlimited admit %d: %v", i, err)
		}
	}
}
