package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of log2 latency buckets: bucket i counts
// observations in [2^i, 2^(i+1)) ns, so the range spans 1ns to ~2.3
// hours — wide enough for queue waits under overload.
const histBuckets = 43

// Histogram is a fixed-size log2 histogram of nanosecond durations.
// Recording is lock-free and allocation-free; quantiles are read from a
// snapshot of the bucket counts, so a concurrent scrape never tears.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf returns the bucket index for a duration.
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	b := 0
	for v := ns; v > 1; v >>= 1 {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation in ns (0 when empty).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in ns:
// the top of the first bucket at which the cumulative count reaches
// q×total. Resolution is one octave — exactly what tail-latency
// monitoring needs, with no per-sample storage.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			return int64(1) << uint(i+1) // bucket upper bound
		}
	}
	return int64(1) << histBuckets
}

// TenantStats aggregates one tenant's service-side accounting. Counter
// fields are atomics so the owning event loop increments while the HTTP
// exposition scrapes.
type TenantStats struct {
	Submitted atomic.Int64 // submissions that named this tenant
	Admitted  atomic.Int64 // submissions past admission control
	Rejected  atomic.Int64 // submissions nacked
	Completed atomic.Int64 // jobs completed and acked
	Expired   atomic.Int64 // jobs dropped at their deadline
	// QueueWait observes admission→dispatch latency per job.
	QueueWait Histogram
	// Latency observes submission→completion latency per job.
	Latency Histogram
}

// Stats is the per-tenant statistics registry of one service instance.
// Tenant entries are created lazily on first touch and never removed.
type Stats struct {
	mu      sync.Mutex
	tenants map[uint32]*TenantStats
}

// NewStats returns an empty registry.
func NewStats() *Stats { return &Stats{tenants: make(map[uint32]*TenantStats)} }

// Tenant returns the stats bucket for id, creating it if needed.
func (s *Stats) Tenant(id uint32) *TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.tenants[id]
	if st == nil {
		st = &TenantStats{}
		s.tenants[id] = st
	}
	return st
}

// ids returns the known tenant ids in ascending order.
func (s *Stats) ids() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint32, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// tenantExpoFields is the per-tenant counter exposition: names and order
// are pinned by a golden test, because the live /metrics endpoint is a
// public contract — append, never rename or reorder.
var tenantExpoFields = []struct {
	name string
	help string
	get  func(*TenantStats) int64
}{
	{"distws_tenant_jobs_submitted_total", "Job submissions per tenant.", func(t *TenantStats) int64 { return t.Submitted.Load() }},
	{"distws_tenant_jobs_admitted_total", "Jobs past admission control per tenant.", func(t *TenantStats) int64 { return t.Admitted.Load() }},
	{"distws_tenant_jobs_rejected_total", "Jobs nacked by admission control per tenant.", func(t *TenantStats) int64 { return t.Rejected.Load() }},
	{"distws_tenant_jobs_completed_total", "Jobs completed and acked per tenant.", func(t *TenantStats) int64 { return t.Completed.Load() }},
	{"distws_tenant_jobs_expired_total", "Jobs dropped at their deadline per tenant.", func(t *TenantStats) int64 { return t.Expired.Load() }},
}

// tenantQuantiles are the exported latency quantiles (Prometheus summary
// convention: a quantile label per line).
var tenantQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus writes the per-tenant counters and latency quantiles in
// the Prometheus text exposition format, tenants in ascending id order.
func (s *Stats) WritePrometheus(w io.Writer) error {
	ids := s.ids()
	if len(ids) == 0 {
		return nil
	}
	for _, f := range tenantExpoFields {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
			return err
		}
		for _, id := range ids {
			if _, err := fmt.Fprintf(w, "%s{tenant=\"%d\"} %d\n", f.name, id, f.get(s.Tenant(id))); err != nil {
				return err
			}
		}
	}
	for _, h := range []struct {
		name string
		help string
		get  func(*TenantStats) *Histogram
	}{
		{"distws_tenant_queue_wait_ns", "Admission-to-dispatch wait per tenant (log2-bucket quantile upper bounds).", func(t *TenantStats) *Histogram { return &t.QueueWait }},
		{"distws_tenant_latency_ns", "Submission-to-completion latency per tenant (log2-bucket quantile upper bounds).", func(t *TenantStats) *Histogram { return &t.Latency }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", h.name, h.help, h.name); err != nil {
			return err
		}
		for _, id := range ids {
			hist := h.get(s.Tenant(id))
			for _, tq := range tenantQuantiles {
				if _, err := fmt.Fprintf(w, "%s{tenant=\"%d\",quantile=\"%s\"} %d\n",
					h.name, id, tq.label, hist.Quantile(tq.q)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// JainIndex computes Jain's fairness index of the shares xs:
// (Σx)² / (n·Σx²), which is 1 for perfect fairness and 1/n when one
// tenant hoards everything. Weighted fairness is measured by passing
// throughput-per-weight shares. Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
