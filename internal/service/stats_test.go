package service

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantiles pins the log2 histogram's quantile semantics:
// each quantile is an upper bound, and they are monotone.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	p50, p99, p999 := h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999)
	if p50 < 500 {
		t.Fatalf("p50 bound %d below the true median 500", p50)
	}
	if p50 > p99 || p99 > p999 {
		t.Fatalf("quantiles not monotone: p50=%d p99=%d p999=%d", p50, p99, p999)
	}
	if got := h.Mean(); got != 500 {
		t.Fatalf("Mean = %d, want 500", got)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
}

// TestTenantPrometheusGolden pins the per-tenant exposition byte for
// byte: the /metrics endpoint is a public contract, so any rename,
// reorder, or format drift must fail here. New series may only be
// appended.
func TestTenantPrometheusGolden(t *testing.T) {
	s := NewStats()
	t1 := s.Tenant(1)
	t1.Submitted.Store(3)
	t1.Admitted.Store(2)
	t1.Rejected.Store(1)
	t1.Completed.Store(2)
	t1.QueueWait.Record(100) // bucket [64,128) -> bound 128
	t1.Latency.Record(1000)  // bucket [512,1024) -> bound 1024
	t1.Latency.Record(1000)
	t2 := s.Tenant(2)
	t2.Submitted.Store(1)
	t2.Rejected.Store(1)

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP distws_tenant_jobs_submitted_total Job submissions per tenant.
# TYPE distws_tenant_jobs_submitted_total counter
distws_tenant_jobs_submitted_total{tenant="1"} 3
distws_tenant_jobs_submitted_total{tenant="2"} 1
# HELP distws_tenant_jobs_admitted_total Jobs past admission control per tenant.
# TYPE distws_tenant_jobs_admitted_total counter
distws_tenant_jobs_admitted_total{tenant="1"} 2
distws_tenant_jobs_admitted_total{tenant="2"} 0
# HELP distws_tenant_jobs_rejected_total Jobs nacked by admission control per tenant.
# TYPE distws_tenant_jobs_rejected_total counter
distws_tenant_jobs_rejected_total{tenant="1"} 1
distws_tenant_jobs_rejected_total{tenant="2"} 1
# HELP distws_tenant_jobs_completed_total Jobs completed and acked per tenant.
# TYPE distws_tenant_jobs_completed_total counter
distws_tenant_jobs_completed_total{tenant="1"} 2
distws_tenant_jobs_completed_total{tenant="2"} 0
# HELP distws_tenant_jobs_expired_total Jobs dropped at their deadline per tenant.
# TYPE distws_tenant_jobs_expired_total counter
distws_tenant_jobs_expired_total{tenant="1"} 0
distws_tenant_jobs_expired_total{tenant="2"} 0
# HELP distws_tenant_queue_wait_ns Admission-to-dispatch wait per tenant (log2-bucket quantile upper bounds).
# TYPE distws_tenant_queue_wait_ns summary
distws_tenant_queue_wait_ns{tenant="1",quantile="0.5"} 128
distws_tenant_queue_wait_ns{tenant="1",quantile="0.99"} 128
distws_tenant_queue_wait_ns{tenant="1",quantile="0.999"} 128
distws_tenant_queue_wait_ns{tenant="2",quantile="0.5"} 0
distws_tenant_queue_wait_ns{tenant="2",quantile="0.99"} 0
distws_tenant_queue_wait_ns{tenant="2",quantile="0.999"} 0
# HELP distws_tenant_latency_ns Submission-to-completion latency per tenant (log2-bucket quantile upper bounds).
# TYPE distws_tenant_latency_ns summary
distws_tenant_latency_ns{tenant="1",quantile="0.5"} 1024
distws_tenant_latency_ns{tenant="1",quantile="0.99"} 1024
distws_tenant_latency_ns{tenant="1",quantile="0.999"} 1024
distws_tenant_latency_ns{tenant="2",quantile="0.5"} 0
distws_tenant_latency_ns{tenant="2",quantile="0.99"} 0
distws_tenant_latency_ns{tenant="2",quantile="0.999"} 0
`
	if got := b.String(); got != want {
		t.Errorf("tenant exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTenantPrometheusEmpty pins that an untouched registry writes no
// series at all (a fresh daemon's /metrics has no tenant block yet).
func TestTenantPrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewStats().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry wrote %q", b.String())
	}
}

// TestJainIndex pins the fairness index at its landmarks.
func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("one-hot shares: %v, want 1/3", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty shares: %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero shares: %v, want 0", got)
	}
}
