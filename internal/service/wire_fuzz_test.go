package service

import (
	"bytes"
	"errors"
	"testing"
)

// TestJobRoundTrip pins the job frame codec on representative jobs.
func TestJobRoundTrip(t *testing.T) {
	jobs := []Job{
		{},
		{Tenant: 7, ID: 42, Priority: 3, DeadlineNS: 1 << 40, Name: "svc.spin", Arg: []byte{1, 2, 3}},
		{Tenant: ^uint32(0), ID: ^uint64(0), Priority: 255, DeadlineNS: -1, Name: "x"},
		{Name: string(bytes.Repeat([]byte("n"), MaxTaskName)), Arg: bytes.Repeat([]byte{9}, 4096)},
	}
	for i, j := range jobs {
		got, err := DecodeJob(AppendJob(nil, j))
		if err != nil {
			t.Fatalf("job %d: decode: %v", i, err)
		}
		if got.Tenant != j.Tenant || got.ID != j.ID || got.Priority != j.Priority ||
			got.DeadlineNS != j.DeadlineNS || got.Name != j.Name || !bytes.Equal(got.Arg, j.Arg) {
			t.Fatalf("job %d: round trip %+v -> %+v", i, j, got)
		}
	}
}

// TestJobDecodeRejects pins the typed failure on malformed job frames.
func TestJobDecodeRejects(t *testing.T) {
	good := AppendJob(nil, Job{Tenant: 1, ID: 2, Name: "t", Arg: []byte{3}})
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": good[:jobHeaderLen-1],
		"version":   append([]byte{99}, good[1:]...),
		"name-len":  append(append([]byte{}, good[:22]...), 0xFF, 0xFF), // claims 65535-byte name
	}
	for name, b := range cases {
		if _, err := DecodeJob(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// TestReplyRoundTrip pins the reply frame codec.
func TestReplyRoundTrip(t *testing.T) {
	replies := []Reply{
		{},
		{Tenant: 9, ID: 77, Code: OK, Result: []byte("out")},
		{Tenant: 1, ID: 2, Code: NackRate, RetryAfterNS: 5_000_000},
		{Code: NackDeadline, RetryAfterNS: -1},
	}
	for i, r := range replies {
		got, err := DecodeReply(AppendReply(nil, r))
		if err != nil {
			t.Fatalf("reply %d: decode: %v", i, err)
		}
		if got.Tenant != r.Tenant || got.ID != r.ID || got.Code != r.Code ||
			got.RetryAfterNS != r.RetryAfterNS || !bytes.Equal(got.Result, r.Result) {
			t.Fatalf("reply %d: round trip %+v -> %+v", i, r, got)
		}
	}
	bad := AppendReply(nil, Reply{})
	bad[1] = byte(numNackCodes)
	if _, err := DecodeReply(bad); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown code: err = %v, want ErrBadFrame", err)
	}
}

// FuzzServiceFrame shakes both service codecs with arbitrary bytes: any
// input must either fail with a typed error or round-trip identically
// after re-encoding — and never panic (every submit payload crosses
// DecodeJob with network-controlled bytes).
func FuzzServiceFrame(f *testing.F) {
	f.Add(AppendJob(nil, Job{Tenant: 3, ID: 9, Priority: 1, DeadlineNS: 1e9, Name: "svc.spin", Arg: []byte{4, 5}}))
	f.Add(AppendReply(nil, Reply{Tenant: 3, ID: 9, Code: NackQuota, RetryAfterNS: 77}))
	f.Add([]byte{frameVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if j, err := DecodeJob(data); err == nil {
			again, err := DecodeJob(AppendJob(nil, j))
			if err != nil {
				t.Fatalf("re-decode job: %v", err)
			}
			if again.Tenant != j.Tenant || again.ID != j.ID || again.Priority != j.Priority ||
				again.DeadlineNS != j.DeadlineNS || again.Name != j.Name || !bytes.Equal(again.Arg, j.Arg) {
				t.Fatalf("job not canonical: %+v -> %+v", j, again)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("job decode error %v is not ErrBadFrame", err)
		}
		if r, err := DecodeReply(data); err == nil {
			again, err := DecodeReply(AppendReply(nil, r))
			if err != nil {
				t.Fatalf("re-decode reply: %v", err)
			}
			if again.Tenant != r.Tenant || again.ID != r.ID || again.Code != r.Code ||
				again.RetryAfterNS != r.RetryAfterNS || !bytes.Equal(again.Result, r.Result) {
				t.Fatalf("reply not canonical: %+v -> %+v", r, again)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("reply decode error %v is not ErrBadFrame", err)
		}
	})
}
