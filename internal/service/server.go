package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"distws/internal/comm"
	"distws/internal/member"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/task"
)

// Server is the service front door at place 0 of a compute cluster:
// a long-lived event loop that admits streamed job submissions from
// client seats, schedules them across executor places with weighted
// deficit round robin, and accounts every admitted job exactly once
// through executor joins, drains, and failures.
//
// Seat layout: places 0..Places-1 are the compute cluster (0 = this
// server, 1..Places-1 executors running node.Executor); every transport
// seat >= Places is a client, allowed only to submit jobs and receive
// replies. The same comm transports carry both roles, so a client is
// just another mesh peer or hub spoke.
type Server struct {
	// Node is the transport attachment at place 0.
	Node comm.Node
	// Places is the compute cluster size (server + executors). Transport
	// seats at or beyond Places are client seats.
	Places int
	// Tenants is the admission/fair-share contract per tenant id.
	Tenants map[uint32]TenantConfig
	// Registry resolves job task names; nil uses task.DefaultRegistry.
	Registry *task.Registry
	// Counters receives aggregate job/membership accounting; nil disables.
	Counters *metrics.Counters
	// Stats receives per-tenant accounting; nil disables.
	Stats *Stats
	// Recorder receives job admit/reject/done events; nil records nothing.
	Recorder *obs.Recorder
	// Window caps outstanding jobs per executor (default 8).
	Window int
	// Quantum scales the DRR credit per scheduler visit (default 1).
	Quantum int
	// RetryAfter is the silence window after which outstanding jobs are
	// re-dispatched (at-least-once; replies dedupe). Default 5s.
	RetryAfter time.Duration
	// Heartbeat, when > 0, arms the membership failure detector exactly
	// as in node.Coordinator: executors beat at this cadence and silence
	// beyond the adaptive timeout marks them down.
	Heartbeat time.Duration
	// Absent lists executor places that will announce with KindJoin later.
	Absent []int
	// Clock returns the server-relative time in ns; nil uses the wall
	// clock since Serve started. Deadlines are interpreted on this clock.
	Clock func() int64
	// Logf reports lifecycle events; nil is silent.
	Logf func(format string, a ...any)

	adm      *Admission
	fs       *FairShare
	alive    []bool
	draining []bool
	members  *member.Table
	// outstanding tracks dispatched jobs per executor by dispatch seq;
	// seqs indexes the same entries globally for completion lookup.
	outstanding map[int]map[uint64]*inflight
	seqs        map[uint64]*inflight
	nextSeq     uint64
	rr          int // round-robin dispatch preference
	start       time.Time
	drainCh     chan struct{}
	stopping    bool
}

// inflight is one admitted job from dispatch to completion.
type inflight struct {
	it    Item
	seq   uint64
	place int
}

// ErrServerClosed is returned by Serve after a graceful drain completes.
var ErrServerClosed = errors.New("service: server drained and closed")

func (s *Server) logf(format string, a ...any) {
	if s.Logf != nil {
		s.Logf(format, a...)
	}
}

// now returns the server-relative clock in ns.
func (s *Server) now() int64 {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Since(s.start).Nanoseconds()
}

func (s *Server) window() int {
	if s.Window > 0 {
		return s.Window
	}
	return 8
}

// Drain begins a graceful shutdown from any goroutine (the daemon's
// SIGTERM handler): new submissions are nacked with NackDraining, every
// already-admitted job still completes, then executors are released and
// Serve returns ErrServerClosed. Idempotent.
func (s *Server) Drain() {
	defer func() { recover() }() // concurrent Drain: second close is a no-op
	close(s.drainCh)
}

// Serve runs the front-door event loop until ctx is cancelled (hard stop:
// queued jobs are nacked back) or a Drain completes (every admitted job
// finished). It must be called once.
func (s *Server) Serve(ctx context.Context) error {
	if s.Node == nil {
		return fmt.Errorf("service: Server needs Node")
	}
	if s.Places < 2 {
		return fmt.Errorf("service: Server over %d compute places, want >= 2", s.Places)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("service: Server needs at least one tenant config")
	}
	if s.RetryAfter <= 0 {
		s.RetryAfter = 5 * time.Second
	}
	s.start = time.Now()
	s.adm = NewAdmission(s.Tenants)
	s.fs = NewFairShare(s.Quantum, s.adm.Weights())
	s.alive = make([]bool, s.Places)
	s.draining = make([]bool, s.Places)
	s.outstanding = make(map[int]map[uint64]*inflight)
	s.seqs = make(map[uint64]*inflight)
	s.drainCh = make(chan struct{})
	s.members = member.NewTable(s.Places, 0, member.Config{MinTimeoutNS: s.Heartbeat.Nanoseconds()})
	absent := make(map[int]bool, len(s.Absent))
	for _, p := range s.Absent {
		if p > 0 && p < s.Places {
			absent[p] = true
		}
	}
	for p := 1; p < s.Places; p++ {
		if absent[p] {
			continue
		}
		s.alive[p] = true
		s.members.SeedAlive(p, 0)
	}

	var tick <-chan time.Time
	if s.Heartbeat > 0 {
		t := time.NewTicker(s.Heartbeat)
		defer t.Stop()
		tick = t.C
	}

	drainCh := s.drainCh
	for {
		if s.stopping && s.fs.Len() == 0 && len(s.seqs) == 0 {
			s.release()
			return ErrServerClosed
		}
		select {
		case <-ctx.Done():
			s.nackQueued(NackDraining)
			s.release()
			return ctx.Err()
		case <-drainCh:
			s.stopping = true
			drainCh = nil // fire once
			s.logf("server: draining (%d queued, %d dispatched)", s.fs.Len(), len(s.seqs))
		case m, ok := <-s.Node.Inbox():
			if !ok {
				return fmt.Errorf("service: inbox closed with %d jobs in flight", len(s.seqs))
			}
			if err := s.handle(m); err != nil {
				return err
			}
		case <-tick:
			if err := s.detect(); err != nil {
				return err
			}
		case <-time.After(s.RetryAfter):
			if len(s.seqs) == 0 {
				continue
			}
			s.logf("server: no progress for %v, re-dispatching %d job(s)", s.RetryAfter, len(s.seqs))
			if err := s.retryOutstanding(); err != nil {
				return err
			}
		}
	}
}

// release broadcasts shutdown to the surviving executors.
func (s *Server) release() {
	for p := 1; p < s.Places; p++ {
		if s.alive[p] {
			s.Node.Send(comm.Message{Kind: comm.KindShutdown, To: p})
		}
	}
}

// nackQueued bounces every queued job back to its client (hard stop).
func (s *Server) nackQueued(code NackCode) {
	for _, it := range s.fs.DrainAll() {
		s.adm.Complete(it.Job.Tenant)
		s.reject(it.Client, it.Job, code, 0)
	}
}

// handle processes one protocol message.
func (s *Server) handle(m comm.Message) error {
	switch m.Kind {
	case comm.KindSubmit:
		return s.onSubmit(m)
	case comm.KindSpawnDone:
		return s.onDone(m)
	case comm.KindSpawnNack:
		return s.onExecutorNack(m)
	case comm.KindPlaceDown:
		if m.From > 0 && m.From < s.Places {
			if err := s.markDown(m.From); err != nil {
				return err
			}
		}
		return nil
	case comm.KindHeartbeat:
		return s.onHeartbeat(m)
	case comm.KindJoin:
		return s.onJoin(m)
	case comm.KindDrain:
		return s.onDrain(m)
	}
	return nil
}

// record emits a job lifecycle event at the front door's track.
func (s *Server) record(kind obs.Kind, tenant uint32) {
	if s.Recorder.Enabled() {
		s.Recorder.Record(0, 0, kind, -1, int32(tenant), 0)
	}
}

// reject nacks a submission back to its client.
func (s *Server) reject(client int, j Job, code NackCode, retryNS int64) {
	if s.Counters != nil {
		s.Counters.JobsRejected.Add(1)
	}
	if s.Stats != nil {
		s.Stats.Tenant(j.Tenant).Rejected.Add(1)
	}
	s.record(obs.KindJobReject, j.Tenant)
	payload := AppendReply(nil, Reply{Tenant: j.Tenant, ID: j.ID, Code: code, RetryAfterNS: retryNS})
	s.Node.Send(comm.Message{Kind: comm.KindJobNack, To: client, Seq: j.ID, Payload: payload})
}

// onSubmit runs admission control on one streamed job and either queues
// it for dispatch or nacks it with a typed reason.
func (s *Server) onSubmit(m comm.Message) error {
	if m.From < s.Places {
		return nil // compute places do not submit; ignore
	}
	j, err := DecodeJob(m.Payload)
	if err != nil {
		s.logf("server: malformed submit from seat %d: %v", m.From, err)
		return nil // a bad frame poisons nothing; drop it
	}
	// The payload aliases the inbox buffer on TCP transports; copy what
	// outlives this message.
	j.Arg = append([]byte(nil), j.Arg...)
	now := s.now()
	if s.Counters != nil {
		s.Counters.JobsSubmitted.Add(1)
	}
	if s.Stats != nil {
		s.Stats.Tenant(j.Tenant).Submitted.Add(1)
	}
	if s.stopping {
		s.reject(m.From, j, NackDraining, 0)
		return nil
	}
	reg := s.Registry
	if reg == nil {
		reg = task.DefaultRegistry
	}
	if _, ok := reg.Lookup(j.Name); !ok {
		s.reject(m.From, j, NackUnknownTask, 0)
		return nil
	}
	if j.DeadlineNS > 0 && now >= j.DeadlineNS {
		s.reject(m.From, j, NackDeadline, 0)
		return nil
	}
	if err := s.adm.Admit(j.Tenant, now); err != nil {
		var ae *AdmissionError
		code, retry := NackOverload, int64(0)
		if errors.As(err, &ae) {
			code, retry = ae.Code, ae.RetryAfterNS
		}
		s.reject(m.From, j, code, retry)
		return nil
	}
	if s.Counters != nil {
		s.Counters.JobsAdmitted.Add(1)
	}
	if s.Stats != nil {
		s.Stats.Tenant(j.Tenant).Admitted.Add(1)
	}
	s.record(obs.KindJobAdmit, j.Tenant)
	s.fs.Push(j.Tenant, Item{Job: j, Client: m.From, AdmittedNS: now})
	return s.pump()
}

// onDone completes a dispatched job exactly once and acks its client.
func (s *Server) onDone(m comm.Message) error {
	e := s.seqs[m.Seq]
	if e == nil || e.place != m.From {
		return nil // stale twin from a re-dispatch or a healed partition
	}
	delete(s.seqs, e.seq)
	if om := s.outstanding[e.place]; om != nil {
		delete(om, e.seq)
	}
	now := s.now()
	s.adm.Complete(e.it.Job.Tenant)
	if s.Counters != nil {
		s.Counters.JobsCompleted.Add(1)
	}
	if s.Stats != nil {
		st := s.Stats.Tenant(e.it.Job.Tenant)
		st.Completed.Add(1)
		st.Latency.Record(now - e.it.AdmittedNS)
	}
	s.record(obs.KindJobDone, e.it.Job.Tenant)
	payload := AppendReply(nil, Reply{Tenant: e.it.Job.Tenant, ID: e.it.Job.ID, Result: m.Payload})
	s.Node.Send(comm.Message{Kind: comm.KindJobDone, To: e.it.Client, Seq: e.it.Job.ID, Payload: payload})
	if err := s.maybeCompleteDrain(m.From); err != nil {
		return err
	}
	return s.pump()
}

// onExecutorNack re-homes a job a draining executor returned unstarted.
func (s *Server) onExecutorNack(m comm.Message) error {
	e := s.seqs[m.Seq]
	if e != nil && e.place == m.From {
		s.unlink(e)
		if s.Counters != nil {
			s.Counters.TasksOffloaded.Add(1)
		}
		s.requeue(e)
	}
	if err := s.maybeCompleteDrain(m.From); err != nil {
		return err
	}
	return s.pump()
}

// unlink removes a dispatched entry from both indexes.
func (s *Server) unlink(e *inflight) {
	delete(s.seqs, e.seq)
	if om := s.outstanding[e.place]; om != nil {
		delete(om, e.seq)
	}
}

// requeue returns a job to the head of the fair-share discipline (its
// admission slot is still held, so no re-admission).
func (s *Server) requeue(e *inflight) {
	s.fs.Push(e.it.Job.Tenant, e.it)
}

// slot returns the first alive, non-draining executor at or after
// preferred with window capacity, skipping places in skip; -1 if none.
func (s *Server) slot(preferred int, skip map[int]bool) int {
	if preferred < 1 {
		preferred = 1
	}
	for try := 0; try < s.Places; try++ {
		dest := 1 + (preferred-1+try)%(s.Places-1)
		if !s.alive[dest] || s.draining[dest] || skip[dest] {
			continue
		}
		if len(s.outstanding[dest]) >= s.window() {
			continue
		}
		return dest
	}
	return -1
}

// pump moves queued jobs into free executor windows under the DRR
// discipline, stopping when capacity runs out, every reachable executor
// sheds with backpressure, or the queues drain.
func (s *Server) pump() error {
	skip := map[int]bool(nil)
	for s.fs.Len() > 0 {
		dest := s.slot(s.rr, skip)
		if dest < 0 {
			return nil // saturated (or momentarily shed): resume on the next event
		}
		it, ok := s.fs.Pop()
		if !ok {
			return nil
		}
		now := s.now()
		if it.Job.DeadlineNS > 0 && now >= it.Job.DeadlineNS {
			s.expire(it)
			continue
		}
		err := s.place(it, dest, now)
		if errors.Is(err, comm.ErrPlaceDown) {
			if err := s.markDown(dest); err != nil {
				return err
			}
			s.fs.Push(it.Job.Tenant, it)
			continue
		}
		if errors.Is(err, comm.ErrBackpressure) {
			// The executor's queue is full: a typed shed, not a failure.
			// Park the job back in its tenant queue and stop hammering
			// this destination until the next event frees it.
			if skip == nil {
				skip = make(map[int]bool)
			}
			skip[dest] = true
			s.fs.Push(it.Job.Tenant, it)
			continue
		}
		if err != nil {
			// Any other send failure (a route still assembling, a transient
			// link error) is treated like a shed: the job keeps its admission
			// slot and goes out on a later pump or the RetryAfter sweep. A
			// genuinely dead executor is caught by typed errors or the
			// failure detector.
			s.logf("server: dispatch to executor %d: %v", dest, err)
			if skip == nil {
				skip = make(map[int]bool)
			}
			skip[dest] = true
			s.fs.Push(it.Job.Tenant, it)
			continue
		}
		s.rr = dest + 1
	}
	return nil
}

// expire drops a deadline-passed job and nacks its client.
func (s *Server) expire(it Item) {
	s.adm.Complete(it.Job.Tenant)
	if s.Stats != nil {
		s.Stats.Tenant(it.Job.Tenant).Expired.Add(1)
	}
	s.reject(it.Client, it.Job, NackDeadline, 0)
}

// place dispatches one job to dest, registering it as in flight.
func (s *Server) place(it Item, dest int, nowNS int64) error {
	env := &task.Envelope{
		Name:   it.Job.Name,
		Arg:    it.Job.Arg,
		Home:   dest,
		Origin: 0,
		Class:  task.Flexible,
		Tenant: it.Job.Tenant,
	}
	payload, err := env.Encode()
	if err != nil {
		return err
	}
	s.nextSeq++
	seq := s.nextSeq
	if err := s.Node.Send(comm.Message{Kind: comm.KindSpawn, To: dest, Seq: seq, Payload: payload}); err != nil {
		return err
	}
	e := &inflight{it: it, seq: seq, place: dest}
	if s.outstanding[dest] == nil {
		s.outstanding[dest] = make(map[uint64]*inflight)
	}
	s.outstanding[dest][seq] = e
	s.seqs[seq] = e
	if s.Stats != nil {
		s.Stats.Tenant(it.Job.Tenant).QueueWait.Record(nowNS - it.AdmittedNS)
	}
	return nil
}

// markDown records an executor failure and requeues its in-flight jobs.
func (s *Server) markDown(p int) error {
	if p <= 0 || p >= s.Places || !s.alive[p] {
		return nil
	}
	s.alive[p] = false
	s.draining[p] = false
	s.members.MarkDown(p, s.now())
	if s.Counters != nil {
		s.Counters.PlacesLost.Add(1)
	}
	orphans := s.outstanding[p]
	delete(s.outstanding, p)
	s.logf("server: executor %d down, re-homing %d job(s)", p, len(orphans))
	for _, e := range orphans {
		delete(s.seqs, e.seq)
		if s.Counters != nil {
			s.Counters.TasksReExecuted.Add(1)
		}
		s.requeue(e)
	}
	return s.pump()
}

// retryOutstanding re-dispatches every in-flight job after a silent
// period. Completions deduplicate by dispatch seq, so the twin that
// loses the race is dropped.
func (s *Server) retryOutstanding() error {
	var stale []*inflight
	for _, e := range s.seqs {
		stale = append(stale, e)
	}
	for _, e := range stale {
		if s.seqs[e.seq] == nil {
			continue // completed while we were resending
		}
		if s.Counters != nil {
			s.Counters.Retries.Add(1)
		}
		s.unlink(e)
		s.requeue(e)
	}
	return s.pump()
}

// detect runs one failure-detector sweep (see node.Coordinator.detect).
func (s *Server) detect() error {
	for _, tr := range s.members.Tick(s.now()) {
		switch tr.To {
		case member.Suspect:
			if s.Counters != nil {
				s.Counters.HeartbeatMisses.Add(1)
			}
			s.logf("server: executor %d suspected (silent too long)", tr.Place)
		case member.Down:
			s.logf("server: executor %d declared down by failure detector", tr.Place)
			if err := s.markDown(tr.Place); err != nil {
				return err
			}
		}
	}
	return nil
}

// onHeartbeat refreshes the member table and acks with the server's view
// (see node.Coordinator.onHeartbeat for the rejoin contract).
func (s *Server) onHeartbeat(m comm.Message) error {
	if m.From <= 0 || m.From >= s.Places {
		return nil
	}
	p, err := member.DecodePayload(m.Payload)
	if err != nil {
		return nil
	}
	now := s.now()
	if tr, ok := s.members.Heartbeat(m.From, p.Incarnation, now); ok && tr.To == member.Alive {
		switch tr.From {
		case member.Suspect:
			s.logf("server: executor %d refuted suspicion", m.From)
		case member.Down, member.Left, member.Unknown:
			if err := s.admit(m.From, tr); err != nil {
				return err
			}
		}
	}
	ack := member.Payload{
		Incarnation: s.members.Incarnation(m.From),
		Epoch:       s.members.Epoch(),
		State:       s.members.State(m.From),
	}
	s.Node.Send(comm.Message{Kind: comm.KindHeartbeat, To: m.From,
		Payload: member.AppendPayload(nil, ack)})
	return nil
}

// onJoin admits a joining or rejoining executor.
func (s *Server) onJoin(m comm.Message) error {
	if m.From <= 0 || m.From >= s.Places {
		return nil
	}
	p, err := member.DecodePayload(m.Payload)
	if err != nil {
		return nil
	}
	tr, ok := s.members.Join(m.From, p.Incarnation, s.now())
	if !ok {
		s.logf("server: stale join from executor %d (incarnation %d)", m.From, p.Incarnation)
		return nil
	}
	return s.admit(m.From, tr)
}

// admit makes an executor eligible for dispatch and pumps the backlog.
func (s *Server) admit(p int, tr member.Transition) error {
	rejoin := tr.From == member.Down || tr.From == member.Left
	s.alive[p] = true
	s.draining[p] = false
	if s.Counters != nil {
		if rejoin {
			s.Counters.MembershipRejoins.Add(1)
		} else {
			s.Counters.MembershipJoins.Add(1)
		}
	}
	s.logf("server: executor %d joined (incarnation %d, rejoin=%v)", p, tr.Incarnation, rejoin)
	return s.pump()
}

// onDrain starts an executor's graceful departure.
func (s *Server) onDrain(m comm.Message) error {
	if m.From <= 0 || m.From >= s.Places || s.draining[m.From] || !s.alive[m.From] {
		return nil
	}
	s.draining[m.From] = true
	s.members.Drain(m.From, s.now())
	if s.Counters != nil {
		s.Counters.MembershipDrains.Add(1)
	}
	s.logf("server: executor %d draining (%d job(s) outstanding there)",
		m.From, len(s.outstanding[m.From]))
	if err := s.maybeCompleteDrain(m.From); err != nil {
		return err
	}
	return s.pump()
}

// maybeCompleteDrain releases a draining executor once it is empty.
func (s *Server) maybeCompleteDrain(p int) error {
	if p <= 0 || p >= s.Places || !s.draining[p] || !s.alive[p] {
		return nil
	}
	if len(s.outstanding[p]) > 0 {
		return nil
	}
	s.alive[p] = false
	delete(s.outstanding, p)
	s.members.Left(p, s.now())
	s.logf("server: executor %d drain complete, released", p)
	s.Node.Send(comm.Message{Kind: comm.KindShutdown, To: p})
	return nil
}
