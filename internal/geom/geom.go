// Package geom provides the 2-D computational-geometry kernel behind the
// Delaunay mesh generation (DMG) and refinement (DMR) applications of the
// paper's evaluation: points, orientation and in-circumcircle predicates,
// and an incremental Bowyer–Watson triangulator with walking point
// location and full edge adjacency.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist2 returns the squared distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Orient2D returns a positive value when a, b, c wind counter-clockwise,
// negative when clockwise, and ~0 when collinear.
func Orient2D(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircumcircle reports whether p lies strictly inside the circumcircle
// of the counter-clockwise triangle (a, b, c).
func InCircumcircle(a, b, c, p Point) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// Circumcenter returns the circumcenter of triangle (a, b, c). The second
// result is false for (near-)degenerate triangles.
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * ((a.X-c.X)*(b.Y-c.Y) - (b.X-c.X)*(a.Y-c.Y))
	if math.Abs(d) < 1e-12 {
		return Point{}, false
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := ((a2-c2)*(b.Y-c.Y) - (b2-c2)*(a.Y-c.Y)) / d
	uy := ((b2-c2)*(a.X-c.X) - (a2-c2)*(b.X-c.X)) / d
	return Point{ux, uy}, true
}

// MinAngleDeg returns the smallest interior angle of triangle (a, b, c)
// in degrees.
func MinAngleDeg(a, b, c Point) float64 {
	la := math.Sqrt(b.Dist2(c)) // side opposite a
	lb := math.Sqrt(a.Dist2(c))
	lc := math.Sqrt(a.Dist2(b))
	angle := func(opp, s1, s2 float64) float64 {
		if s1 == 0 || s2 == 0 {
			return 0
		}
		cos := (s1*s1 + s2*s2 - opp*opp) / (2 * s1 * s2)
		if cos > 1 {
			cos = 1
		}
		if cos < -1 {
			cos = -1
		}
		return math.Acos(cos) * 180 / math.Pi
	}
	return math.Min(angle(la, lb, lc), math.Min(angle(lb, la, lc), angle(lc, la, lb)))
}

// Tri is one triangle of a Mesh: vertex indices in counter-clockwise
// order and, per edge i (from V[i] to V[(i+1)%3]), the index of the
// neighbouring triangle across that edge (-1 on the hull).
type Tri struct {
	V     [3]int
	N     [3]int
	Alive bool
}

// Mesh is an incrementally built Delaunay triangulation. Vertices 0–2 are
// the super-triangle enclosing the domain; Insert adds points one at a
// time via the Bowyer–Watson cavity algorithm.
type Mesh struct {
	Pts  []Point
	Tris []Tri
	free []int // indices of dead triangle slots for reuse
	hint int   // last triangle touched, seeds the locate walk

	// InsertSteps accumulates the number of cavity triangles processed
	// across all inserts — the app layer uses it as a work-unit measure.
	InsertSteps int
}

// NewMesh creates a mesh whose super-triangle comfortably encloses the
// axis-aligned box (minX, minY)–(maxX, maxY).
func NewMesh(minX, minY, maxX, maxY float64) *Mesh {
	w, h := maxX-minX, maxY-minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	r := 3 * math.Max(w, h)
	m := &Mesh{
		Pts: []Point{
			{cx - 2*r, cy - r},
			{cx + 2*r, cy - r},
			{cx, cy + 2*r},
		},
	}
	m.Tris = append(m.Tris, Tri{V: [3]int{0, 1, 2}, N: [3]int{-1, -1, -1}, Alive: true})
	return m
}

// NumAlive returns the number of live triangles.
func (m *Mesh) NumAlive() int {
	n := 0
	for i := range m.Tris {
		if m.Tris[i].Alive {
			n++
		}
	}
	return n
}

// IsSuperVertex reports whether vertex v belongs to the super-triangle.
func (m *Mesh) IsSuperVertex(v int) bool { return v < 3 }

// HasSuperVertex reports whether triangle t touches the super-triangle.
func (m *Mesh) HasSuperVertex(t int) bool {
	tri := &m.Tris[t]
	return m.IsSuperVertex(tri.V[0]) || m.IsSuperVertex(tri.V[1]) || m.IsSuperVertex(tri.V[2])
}

// contains reports whether point p lies inside or on triangle t.
func (m *Mesh) contains(t int, p Point) bool {
	tri := &m.Tris[t]
	const eps = 1e-12
	for i := 0; i < 3; i++ {
		a, b := m.Pts[tri.V[i]], m.Pts[tri.V[(i+1)%3]]
		if Orient2D(a, b, p) < -eps {
			return false
		}
	}
	return true
}

// Locate returns a live triangle containing p, walking from the last
// insertion site. It falls back to a linear scan if the walk cycles
// (possible with near-degenerate geometry). Returns -1 if p is outside
// every triangle (outside the super-triangle).
func (m *Mesh) Locate(p Point) int {
	t := m.hint
	if t < 0 || t >= len(m.Tris) || !m.Tris[t].Alive {
		t = m.anyAlive()
		if t < 0 {
			return -1
		}
	}
	maxSteps := 4 * (len(m.Tris) + 16)
	for step := 0; step < maxSteps; step++ {
		tri := &m.Tris[t]
		next := -1
		for i := 0; i < 3; i++ {
			a, b := m.Pts[tri.V[i]], m.Pts[tri.V[(i+1)%3]]
			if Orient2D(a, b, p) < 0 {
				next = tri.N[i]
				break
			}
		}
		if next == -1 {
			if m.contains(t, p) {
				return t
			}
			break // hull reached without containing: outside
		}
		t = next
	}
	// Robust fallback.
	for i := range m.Tris {
		if m.Tris[i].Alive && m.contains(i, p) {
			return i
		}
	}
	return -1
}

func (m *Mesh) anyAlive() int {
	for i := range m.Tris {
		if m.Tris[i].Alive {
			return i
		}
	}
	return -1
}

// Insert adds point p to the triangulation, returning the indices of the
// newly created triangles. It returns an error when p falls outside the
// super-triangle or coincides with an existing vertex.
func (m *Mesh) Insert(p Point) ([]int, error) {
	t0 := m.Locate(p)
	if t0 < 0 {
		return nil, fmt.Errorf("geom: point (%v,%v) outside the mesh", p.X, p.Y)
	}
	// Reject duplicates of the containing triangle's vertices.
	for _, v := range m.Tris[t0].V {
		if m.Pts[v].Dist2(p) < 1e-20 {
			return nil, fmt.Errorf("geom: duplicate point (%v,%v)", p.X, p.Y)
		}
	}

	// Grow the cavity: BFS over triangles whose circumcircle contains p.
	inCavity := map[int]bool{t0: true}
	stack := []int{t0}
	var cavity []int
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cavity = append(cavity, t)
		for _, n := range m.Tris[t].N {
			if n < 0 || inCavity[n] {
				continue
			}
			tri := &m.Tris[n]
			if InCircumcircle(m.Pts[tri.V[0]], m.Pts[tri.V[1]], m.Pts[tri.V[2]], p) {
				inCavity[n] = true
				stack = append(stack, n)
			}
		}
	}
	m.InsertSteps += len(cavity)

	// Collect the cavity boundary: directed edges (a -> b) whose opposite
	// triangle is outside the cavity, with that outside neighbour.
	type bEdge struct {
		a, b    int
		outside int
	}
	var boundary []bEdge
	for _, t := range cavity {
		tri := &m.Tris[t]
		for i := 0; i < 3; i++ {
			n := tri.N[i]
			if n < 0 || !inCavity[n] {
				boundary = append(boundary, bEdge{tri.V[i], tri.V[(i+1)%3], n})
			}
		}
	}

	// Kill cavity triangles, freeing their slots.
	for _, t := range cavity {
		m.Tris[t].Alive = false
		m.free = append(m.free, t)
	}

	// Add the new vertex and fan new triangles over the boundary.
	pv := len(m.Pts)
	m.Pts = append(m.Pts, p)
	newTris := make([]int, 0, len(boundary))
	// edgeOwner maps directed edge (x,y) of a *new* triangle to its index
	// so adjacent fan triangles can be stitched together.
	edgeOwner := make(map[[2]int]int, 3*len(boundary))
	for _, e := range boundary {
		nt := m.alloc(Tri{V: [3]int{e.a, e.b, pv}, N: [3]int{e.outside, -1, -1}, Alive: true})
		// Hook the outside neighbour back to us across edge (a,b).
		if e.outside >= 0 {
			out := &m.Tris[e.outside]
			for i := 0; i < 3; i++ {
				if out.V[i] == e.b && out.V[(i+1)%3] == e.a {
					out.N[i] = nt
					break
				}
			}
		}
		edgeOwner[[2]int{e.a, e.b}] = nt
		newTris = append(newTris, nt)
	}
	// Stitch fan neighbours: new triangle (a,b,p) has edges (b,p) and
	// (p,a); its neighbour across (b,p) is the new triangle starting with
	// b — i.e. owner of directed boundary edge (b, x).
	for _, nt := range newTris {
		tri := &m.Tris[nt]
		a, b := tri.V[0], tri.V[1]
		for e, owner := range edgeOwner {
			if e[0] == b { // neighbour across (b, p)
				tri.N[1] = owner
			}
			if e[1] == a { // neighbour across (p, a)
				tri.N[2] = owner
			}
			_ = e
		}
	}
	m.hint = newTris[0]
	return newTris, nil
}

// alloc stores t in a free slot or appends, returning its index.
func (m *Mesh) alloc(t Tri) int {
	if n := len(m.free); n > 0 {
		idx := m.free[n-1]
		m.free = m.free[:n-1]
		m.Tris[idx] = t
		return idx
	}
	m.Tris = append(m.Tris, t)
	return len(m.Tris) - 1
}

// Validate checks structural invariants: CCW orientation, symmetric
// adjacency, and (optionally expensive) the Delaunay empty-circumcircle
// property against all mesh vertices when full is true.
func (m *Mesh) Validate(full bool) error {
	for i := range m.Tris {
		tri := &m.Tris[i]
		if !tri.Alive {
			continue
		}
		a, b, c := m.Pts[tri.V[0]], m.Pts[tri.V[1]], m.Pts[tri.V[2]]
		if Orient2D(a, b, c) <= 0 {
			return fmt.Errorf("geom: triangle %d not CCW", i)
		}
		for e := 0; e < 3; e++ {
			n := tri.N[e]
			if n < 0 {
				continue
			}
			if n >= len(m.Tris) || !m.Tris[n].Alive {
				return fmt.Errorf("geom: triangle %d edge %d points at dead neighbour %d", i, e, n)
			}
			// The neighbour must reference us back across the shared edge.
			va, vb := tri.V[e], tri.V[(e+1)%3]
			back := false
			nt := &m.Tris[n]
			for e2 := 0; e2 < 3; e2++ {
				if nt.V[e2] == vb && nt.V[(e2+1)%3] == va && nt.N[e2] == i {
					back = true
				}
			}
			if !back {
				return fmt.Errorf("geom: adjacency %d<->%d not symmetric", i, n)
			}
		}
	}
	if full {
		for i := range m.Tris {
			tri := &m.Tris[i]
			if !tri.Alive {
				continue
			}
			a, b, c := m.Pts[tri.V[0]], m.Pts[tri.V[1]], m.Pts[tri.V[2]]
			for v := range m.Pts {
				if v == tri.V[0] || v == tri.V[1] || v == tri.V[2] {
					continue
				}
				if InCircumcircle(a, b, c, m.Pts[v]) {
					return fmt.Errorf("geom: triangle %d circumcircle contains vertex %d", i, v)
				}
			}
		}
	}
	return nil
}
