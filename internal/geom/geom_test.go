package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrient2D(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient2D(a, b, Point{0, 1}) <= 0 {
		t.Fatalf("CCW triple should be positive")
	}
	if Orient2D(a, b, Point{0, -1}) >= 0 {
		t.Fatalf("CW triple should be negative")
	}
	if Orient2D(a, b, Point{2, 0}) != 0 {
		t.Fatalf("collinear triple should be zero")
	}
}

func TestInCircumcircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) — CCW.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if !InCircumcircle(a, b, c, Point{0, 0}) {
		t.Fatalf("center should be inside")
	}
	if InCircumcircle(a, b, c, Point{2, 2}) {
		t.Fatalf("far point should be outside")
	}
}

func TestCircumcenter(t *testing.T) {
	cc, ok := Circumcenter(Point{1, 0}, Point{0, 1}, Point{-1, 0})
	if !ok {
		t.Fatalf("circumcenter of proper triangle should exist")
	}
	if math.Abs(cc.X) > 1e-9 || math.Abs(cc.Y) > 1e-9 {
		t.Fatalf("circumcenter = %v, want origin", cc)
	}
	if _, ok := Circumcenter(Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Fatalf("degenerate triangle should have no circumcenter")
	}
}

func TestMinAngleDeg(t *testing.T) {
	// Equilateral: all angles 60.
	h := math.Sqrt(3) / 2
	got := MinAngleDeg(Point{0, 0}, Point{1, 0}, Point{0.5, h})
	if math.Abs(got-60) > 1e-6 {
		t.Fatalf("equilateral min angle = %v, want 60", got)
	}
	// Right isoceles: min angle 45.
	got = MinAngleDeg(Point{0, 0}, Point{1, 0}, Point{0, 1})
	if math.Abs(got-45) > 1e-6 {
		t.Fatalf("right isoceles min angle = %v, want 45", got)
	}
}

func TestInsertSinglePoint(t *testing.T) {
	m := NewMesh(0, 0, 1, 1)
	created, err := m.Insert(Point{0.5, 0.5})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if len(created) != 3 {
		t.Fatalf("inserting into one triangle should create 3, got %d", len(created))
	}
	if m.NumAlive() != 3 {
		t.Fatalf("NumAlive = %d, want 3", m.NumAlive())
	}
	if err := m.Validate(true); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestInsertManyPointsStaysDelaunay(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMesh(0, 0, 1, 1)
	n := 120
	for i := 0; i < n; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		if _, err := m.Insert(p); err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
	}
	if err := m.Validate(true); err != nil {
		t.Fatalf("mesh invalid after %d inserts: %v", n, err)
	}
	// Euler: with s super vertices, n inner points, all inside the super
	// triangle: triangles = 2*(n+3) - 2 - 3 = 2n+1.
	if got, want := m.NumAlive(), 2*n+1; got != want {
		t.Fatalf("NumAlive = %d, want %d", got, want)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	m := NewMesh(0, 0, 1, 1)
	if _, err := m.Insert(Point{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(Point{0.5, 0.5}); err == nil {
		t.Fatalf("duplicate insert should fail")
	}
}

func TestInsertOutsideRejected(t *testing.T) {
	m := NewMesh(0, 0, 1, 1)
	if _, err := m.Insert(Point{1e9, 1e9}); err == nil {
		t.Fatalf("point outside the super-triangle should be rejected")
	}
}

func TestLocateFindsContainingTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMesh(0, 0, 1, 1)
	for i := 0; i < 60; i++ {
		m.Insert(Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 100; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		ti := m.Locate(p)
		if ti < 0 {
			t.Fatalf("Locate failed for in-domain point %v", p)
		}
		if !m.contains(ti, p) {
			t.Fatalf("Locate returned triangle not containing %v", p)
		}
	}
}

func TestInsertStepsAccumulate(t *testing.T) {
	m := NewMesh(0, 0, 1, 1)
	m.Insert(Point{0.3, 0.3})
	if m.InsertSteps == 0 {
		t.Fatalf("InsertSteps should accumulate cavity work")
	}
}

func TestHasSuperVertex(t *testing.T) {
	m := NewMesh(0, 0, 1, 1)
	if !m.HasSuperVertex(0) {
		t.Fatalf("initial triangle is the super-triangle")
	}
	// Three interior points form one triangle with no super vertices.
	m.Insert(Point{0.4, 0.4})
	m.Insert(Point{0.6, 0.4})
	m.Insert(Point{0.5, 0.6})
	any := false
	for i := range m.Tris {
		if m.Tris[i].Alive && !m.HasSuperVertex(i) {
			any = true
		}
	}
	if !any {
		t.Fatalf("after 3 inserts some triangle should be fully interior")
	}
}

// Property: for random point sets, the mesh remains structurally valid and
// triangle count follows Euler's formula.
func TestMeshInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMesh(0, 0, 1, 1)
		inserted := 0
		for i := 0; i < n; i++ {
			if _, err := m.Insert(Point{rng.Float64(), rng.Float64()}); err == nil {
				inserted++
			}
		}
		if err := m.Validate(true); err != nil {
			return false
		}
		return m.NumAlive() == 2*inserted+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the in-circumcircle predicate is symmetric under rotation of
// the triangle's vertices.
func TestInCircumcircleRotationProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, px, py int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		p := Point{float64(px), float64(py)}
		if Orient2D(a, b, c) <= 0 {
			a, b = b, a // force CCW; skip degenerate
			if Orient2D(a, b, c) <= 0 {
				return true
			}
		}
		r1 := InCircumcircle(a, b, c, p)
		r2 := InCircumcircle(b, c, a, p)
		r3 := InCircumcircle(c, a, b, p)
		return r1 == r2 && r2 == r3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMesh(0, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(Point{rng.Float64(), rng.Float64()})
	}
}
