// Package task defines the locality task model at the heart of the paper
// (§II): every task is either locality-sensitive (pinned to its home place)
// or locality-flexible (eligible for distributed stealing, the X10
// @AnyPlaceTask annotation). The package also carries the descriptive
// attributes the scheduler and the cache/communication models consume —
// granularity, data footprint, and migration payload size — and a registry
// of named functions so tasks can be spawned across process boundaries,
// where closures cannot travel.
package task

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// Class partitions tasks by locality preference (paper §II).
type Class uint8

const (
	// Sensitive tasks bear strong affinity to their home place and are
	// never stolen across places. They map to per-worker private deques.
	Sensitive Class = iota
	// Flexible tasks (@AnyPlaceTask) qualify for distributed stealing:
	// they encapsulate their data, are coarse enough to amortize the steal,
	// or are cache-neutral for the thief. They map to per-place shared
	// deques on fully-utilized places.
	Flexible
)

// String returns the annotation-style name of the class.
func (c Class) String() string {
	switch c {
	case Sensitive:
		return "locality-sensitive"
	case Flexible:
		return "locality-flexible"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Locality bundles the attributes that characterize a task's locality
// behaviour (paper §II: size, referenced data, spawned sub-tasks, local
// accesses). The runtime uses Class for scheduling; the cache and
// communication models use the remaining fields for accounting.
type Locality struct {
	Class Class
	// Blocks identifies the data blocks (application-defined granularity,
	// e.g. one block per cache-line-sized chunk of the working set) the
	// task touches. Used by the L1d cache model (Table II).
	Blocks []uint64
	// MigrationBytes estimates the payload copied to a thief node when the
	// task migrates (Table III byte accounting). Zero means "measure with
	// gob if accounting is enabled".
	MigrationBytes int
	// RemoteRefs is the number of remote data references the task performs
	// per execution when it runs away from its home place. Flexible tasks
	// that truly encapsulate their data have RemoteRefs == 0.
	RemoteRefs int
}

// Sensitive and Flexible are convenience constructors for the common case
// of a bare classification with no modelling attributes.
var (
	SensitiveLocality = Locality{Class: Sensitive}
	FlexibleLocality  = Locality{Class: Flexible}
)

// Func is the signature of a remotely invocable function. The argument is
// the gob-encoded payload the spawner supplied; implementations decode it
// themselves. It runs inside a worker of the destination place.
type Func func(arg []byte) error

// Registry maps stable names to Funcs so that a task can be shipped to
// another process as (name, payload) and re-bound on arrival. A single
// process-global registry (DefaultRegistry) serves the common case; tests
// can build private registries.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fns: make(map[string]Func)} }

// DefaultRegistry is the process-global registry used by the TCP transport.
var DefaultRegistry = NewRegistry()

// Register binds name to fn. It panics if the name is empty, fn is nil, or
// the name is already taken — duplicate registration is a programming
// error that would silently misroute remote spawns.
func (r *Registry) Register(name string, fn Func) {
	if name == "" {
		panic("task: Register with empty name")
	}
	if fn == nil {
		panic(fmt.Sprintf("task: Register(%q) with nil func", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fns[name]; dup {
		panic(fmt.Sprintf("task: Register(%q) called twice", name))
	}
	r.fns[name] = fn
}

// Lookup resolves a registered function by name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	fn, ok := r.fns[name]
	r.mu.RUnlock()
	return fn, ok
}

// Len returns the number of registered functions (for diagnostics).
func (r *Registry) Len() int {
	r.mu.RLock()
	n := len(r.fns)
	r.mu.RUnlock()
	return n
}

// Names returns the number of registered functions.
//
// Deprecated: the name is a historical accident — it never returned
// names, only their count. Use Len.
func (r *Registry) Names() int { return r.Len() }

// Envelope is the wire representation of a task spawned across a process
// boundary: the registered function name, its encoded argument, and the
// scheduling metadata the destination needs to map it (Algorithm 1).
type Envelope struct {
	Name   string
	Arg    []byte
	Home   int   // destination place
	Origin int   // spawning place
	Class  Class // locality classification
	Blocks []uint64
	// Tenant tags the task's provenance in a multi-tenant service
	// (internal/service): every task a job spawns carries its tenant id,
	// so concurrent tenants' work stays attributable end to end. Zero for
	// single-tenant batch runs.
	Tenant uint32
	// Inputs and Outputs are the dataflow block ids a DAG task
	// (internal/dag) reads and writes, so a remotely spawned dataflow
	// task carries its dependency footprint with it. Empty for fork-join
	// tasks.
	Inputs  []uint64
	Outputs []uint64
}

// GobSize returns the number of bytes v occupies when gob-encoded, used to
// account migration payload sizes (Table III). It returns 0 and an error
// for unencodable values.
func GobSize(v any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, fmt.Errorf("task: sizing value: %w", err)
	}
	return buf.Len(), nil
}
