package task

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

// wireEnvelope is a fully-populated envelope exercising every section of
// the binary format, DAG fields included.
func wireEnvelope() *Envelope {
	return &Envelope{
		Name:    "dag.cholesky.gemm",
		Arg:     []byte{0xde, 0xad, 0xbe, 0xef},
		Home:    5,
		Origin:  2,
		Class:   Flexible,
		Tenant:  3,
		Blocks:  []uint64{1, 2, 3},
		Inputs:  []uint64{1<<20 | 1, 2<<20 | 2},
		Outputs: []uint64{3<<20 | 3},
	}
}

func sameEnvelope(a, b *Envelope) bool {
	if a.Name != b.Name || a.Home != b.Home || a.Origin != b.Origin ||
		a.Class != b.Class || a.Tenant != b.Tenant {
		return false
	}
	if !bytes.Equal(a.Arg, b.Arg) {
		return false
	}
	for _, pair := range [][2][]uint64{{a.Blocks, b.Blocks}, {a.Inputs, b.Inputs}, {a.Outputs, b.Outputs}} {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				return false
			}
		}
	}
	return true
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	for _, e := range []*Envelope{{}, {Name: "x"}, wireEnvelope()} {
		p, err := e.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", e, err)
		}
		if len(p) != e.EncodedLen() {
			t.Fatalf("EncodedLen = %d, Encode produced %d bytes", e.EncodedLen(), len(p))
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := wireEnvelope()
	p1, _ := e.Encode()
	p2, _ := e.Encode()
	if !bytes.Equal(p1, p2) {
		t.Fatalf("Encode is not deterministic")
	}
	if p1[0] != envMagic || p1[1] != envVersion {
		t.Fatalf("frame starts %x %x, want magic %x version %x", p1[0], p1[1], envMagic, envVersion)
	}
}

func TestEncodeBounds(t *testing.T) {
	cases := []struct {
		name string
		e    Envelope
	}{
		{"name", Envelope{Name: strings.Repeat("n", 0x10000)}},
		{"arg", Envelope{Arg: make([]byte, MaxEnvelopeArg+1)}},
		{"blocks", Envelope{Blocks: make([]uint64, MaxEnvelopeBlocks+1)}},
		{"inputs", Envelope{Inputs: make([]uint64, MaxEnvelopeBlocks+1)}},
		{"outputs", Envelope{Outputs: make([]uint64, MaxEnvelopeBlocks+1)}},
	}
	for _, tc := range cases {
		if _, err := tc.e.Encode(); !errors.Is(err, ErrEnvelopeTooLarge) {
			t.Fatalf("%s over bound: err = %v, want ErrEnvelopeTooLarge", tc.name, err)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	p, err := wireEnvelope().Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a valid envelope is a truncation.
	for cut := 1; cut < len(p); cut++ {
		if _, err := DecodeEnvelope(p[:cut]); !errors.Is(err, ErrEnvelopeTruncated) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrEnvelopeTruncated", cut, err)
		}
	}
	if _, err := DecodeEnvelope(nil); !errors.Is(err, ErrEnvelopeTruncated) {
		t.Fatalf("empty payload: err = %v, want ErrEnvelopeTruncated", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	p, err := wireEnvelope().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(append(p, 0)); err == nil {
		t.Fatalf("trailing byte should be rejected")
	}
}

func TestDecodeBadVersion(t *testing.T) {
	p, err := wireEnvelope().Encode()
	if err != nil {
		t.Fatal(err)
	}
	p[1] = envVersion + 1
	if _, err := DecodeEnvelope(p); !errors.Is(err, ErrEnvelopeVersion) {
		t.Fatalf("bumped version: err = %v, want ErrEnvelopeVersion", err)
	}
}

func TestDecodeOversizedDeclaredLength(t *testing.T) {
	p, err := (&Envelope{Name: "x"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the arg length (right after the 2-byte name length + name)
	// to declare more than MaxEnvelopeArg: the decoder must refuse before
	// allocating.
	off := envFixed + 2 + 1
	p[off], p[off+1], p[off+2], p[off+3] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeEnvelope(p); !errors.Is(err, ErrEnvelopeTooLarge) {
		t.Fatalf("corrupt arg length: err = %v, want ErrEnvelopeTooLarge", err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	p, err := wireEnvelope().Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEnvelope(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		p[i] = 0xAA
	}
	if !bytes.Equal(out.Arg, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("decoded Arg aliases the input buffer: %x", out.Arg)
	}
}

// TestDecodeGobFallback pins compatibility with the previous wire format:
// a gob-encoded envelope from an older peer must still decode.
func TestDecodeGobFallback(t *testing.T) {
	in := wireEnvelope()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == envMagic {
		t.Fatalf("gob stream begins with the binary magic byte — discriminator is broken")
	}
	out, err := DecodeEnvelope(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding gob envelope: %v", err)
	}
	if !sameEnvelope(in, out) {
		t.Fatalf("gob fallback round-trip mismatch: %+v vs %+v", out, in)
	}
}
