package task

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	if got := Sensitive.String(); got != "locality-sensitive" {
		t.Fatalf("Sensitive.String() = %q", got)
	}
	if got := Flexible.String(); got != "locality-flexible" {
		t.Fatalf("Flexible.String() = %q", got)
	}
	if got := Class(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown class String() = %q", got)
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	called := false
	r.Register("demo.fn", func(arg []byte) error {
		called = string(arg) == "payload"
		return nil
	})
	fn, ok := r.Lookup("demo.fn")
	if !ok {
		t.Fatalf("Lookup failed for registered name")
	}
	if err := fn([]byte("payload")); err != nil || !called {
		t.Fatalf("registered fn not invoked correctly: err=%v called=%v", err, called)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatalf("Lookup of unregistered name should fail")
	}
	if r.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", r.Len())
	}
	if r.Names() != r.Len() { // deprecated alias must agree
		t.Fatalf("Names() = %d, Len() = %d", r.Names(), r.Len())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("x", func([]byte) error { return nil })
	assertPanics(t, func() { r.Register("x", func([]byte) error { return nil }) })
}

func TestRegistryEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	assertPanics(t, func() { r.Register("", func([]byte) error { return nil }) })
}

func TestRegistryNilFuncPanics(t *testing.T) {
	r := NewRegistry()
	assertPanics(t, func() { r.Register("y", nil) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

func TestEnvelopeRoundTrip(t *testing.T) {
	in := &Envelope{
		Name:    "apps.kmeans.assign",
		Arg:     []byte{1, 2, 3, 4},
		Home:    3,
		Origin:  0,
		Class:   Flexible,
		Blocks:  []uint64{10, 11, 12},
		Tenant:  7,
		Inputs:  []uint64{1 << 40, 2},
		Outputs: []uint64{3},
	}
	p, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeEnvelope(p)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if out.Name != in.Name || out.Home != in.Home || out.Origin != in.Origin ||
		out.Class != in.Class || out.Tenant != in.Tenant ||
		len(out.Arg) != 4 || len(out.Blocks) != 3 ||
		len(out.Inputs) != 2 || out.Inputs[0] != 1<<40 ||
		len(out.Outputs) != 1 || out.Outputs[0] != 3 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", out, in)
	}
}

func TestDecodeEnvelopeGarbage(t *testing.T) {
	if _, err := DecodeEnvelope([]byte("not gob")); err == nil {
		t.Fatalf("decoding garbage should fail")
	}
}

// Property: Envelope round-trips for arbitrary payloads and metadata.
// Home and Origin are int32 on the wire — place ids are small — so the
// generator draws from that range.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(name string, arg []byte, home, origin int32, flexible bool) bool {
		class := Sensitive
		if flexible {
			class = Flexible
		}
		in := &Envelope{Name: name, Arg: arg, Home: int(home), Origin: int(origin), Class: class}
		p, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeEnvelope(p)
		if err != nil {
			return false
		}
		if out.Name != in.Name || out.Home != in.Home ||
			out.Origin != in.Origin || out.Class != in.Class {
			return false
		}
		if len(out.Arg) != len(in.Arg) {
			return false
		}
		for i := range in.Arg {
			if out.Arg[i] != in.Arg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGobSize(t *testing.T) {
	n, err := GobSize([]float64{1, 2, 3})
	if err != nil || n <= 0 {
		t.Fatalf("GobSize = %d, %v", n, err)
	}
	big, err := GobSize(make([]float64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if big <= n {
		t.Fatalf("larger value should gob-encode larger: %d vs %d", big, n)
	}
}

func TestGobSizeUnencodable(t *testing.T) {
	if _, err := GobSize(func() {}); err == nil {
		t.Fatalf("GobSize of a func should error")
	}
}

func TestGobSizeError(t *testing.T) {
	_, err := GobSize(make(chan int))
	if err == nil {
		t.Fatalf("GobSize of a channel should error")
	}
	if !strings.Contains(err.Error(), "task: sizing value") {
		t.Fatalf("error should carry the package prefix, got %q", err)
	}
}
