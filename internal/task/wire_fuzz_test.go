package task

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDAGEnvelope checks the two safety properties of the envelope codec,
// with the DAG dataflow fields (Inputs/Outputs) in play:
//
//  1. Encode→decode identity: any envelope assembled from the fuzzed
//     fields either round-trips bit-exactly or Encode refuses it with a
//     typed bounds error.
//  2. Decoder robustness: arbitrary bytes (including the valid envelope
//     truncated at a fuzzer-chosen point) either decode cleanly or fail
//     with an error — never panic, never allocate beyond the section
//     bounds.
func FuzzDAGEnvelope(f *testing.F) {
	f.Add("dag.cholesky.potrf", []byte{1, 2, 3}, int32(0), int32(1), uint32(0),
		uint64(1<<20|1), uint64(2<<20|2), uint64(3<<20|3), []byte{})
	f.Add("", []byte{}, int32(-1), int32(-1), ^uint32(0),
		^uint64(0), uint64(0), uint64(0), []byte{0xE7, 0x01})
	f.Add(strings.Repeat("n", 300), []byte{0xff}, int32(1<<30), int32(42), uint32(7),
		uint64(5), uint64(6), uint64(7), []byte{0xE7, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, name string, arg []byte, home, origin int32, tenant uint32,
		in1, in2, out1 uint64, raw []byte) {
		e := &Envelope{
			Name:    name,
			Arg:     arg,
			Home:    int(home),
			Origin:  int(origin),
			Class:   Flexible,
			Tenant:  tenant,
			Inputs:  []uint64{in1, in2},
			Outputs: []uint64{out1},
		}
		p, err := e.Encode()
		if err != nil {
			if !errors.Is(err, ErrEnvelopeTooLarge) {
				t.Fatalf("Encode: untyped error %v", err)
			}
			return
		}
		if len(p) != e.EncodedLen() {
			t.Fatalf("EncodedLen = %d, Encode produced %d", e.EncodedLen(), len(p))
		}
		got, err := DecodeEnvelope(p)
		if err != nil {
			t.Fatalf("DecodeEnvelope of a valid envelope: %v", err)
		}
		if !sameEnvelope(e, got) {
			t.Fatalf("round trip: %+v != %+v", got, e)
		}

		// Every strict prefix of a valid envelope is a truncation.
		cut := len(raw) % len(p) // fuzzer-chosen truncation point; len(p) >= envFixed
		if cut > 0 {
			if _, err := DecodeEnvelope(p[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(p))
			}
		}

		// Arbitrary bytes must never panic the decoder. Errors are fine
		// (non-magic payloads land in the gob fallback, which has its own
		// error surface), but a successful decode must stay within bounds.
		if d, err := DecodeEnvelope(raw); err == nil {
			if len(d.Arg) > MaxEnvelopeArg ||
				len(d.Blocks) > MaxEnvelopeBlocks ||
				len(d.Inputs) > MaxEnvelopeBlocks ||
				len(d.Outputs) > MaxEnvelopeBlocks {
				t.Fatalf("decoded envelope exceeds bounds: %+v", d)
			}
		}
	})
}
