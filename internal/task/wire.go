package task

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
)

// The binary envelope format. Envelopes cross process boundaries on
// every remote spawn, steal reply, and service submission; gob spent
// reflection and a per-message type descriptor on each one (the
// descriptor alone dwarfed a typical envelope). This codec is the
// internal/comm wire.go style instead: fixed header, length-prefixed
// variable sections, no reflection, byte-for-byte deterministic.
//
//	offset  size  field
//	0       1     magic 0xE7
//	1       1     format version (1)
//	2       1     Class
//	3       4     Tenant (uint32, big endian)
//	7       4     Home (int32, big endian)
//	11      4     Origin (int32, big endian)
//	15      2     len(Name) (uint16) followed by the name bytes
//	...     4     len(Arg) (uint32) followed by the arg bytes
//	...     4     len(Blocks) (uint32) followed by 8-byte block ids
//	...     4     len(Inputs), same shape
//	...     4     len(Outputs), same shape
//
// The magic byte doubles as the gob discriminator: 0xE7 begins the
// second half of a two-byte uvarint and can never be the first byte of
// a gob stream (a gob stream opens with a small one-byte section
// length), so DecodeEnvelope still accepts envelopes encoded by older
// gob-speaking peers and routes them to the gob path.
const (
	envMagic   = 0xE7
	envVersion = 1
	envFixed   = 15 // magic through Origin
)

// Envelope payload bounds, mirroring comm.MaxFramePayload's role: a
// corrupt length field must not drive allocation.
const (
	// MaxEnvelopeArg bounds the encoded argument payload.
	MaxEnvelopeArg = 16 << 20
	// MaxEnvelopeBlocks bounds each block-id list (Blocks, Inputs,
	// Outputs).
	MaxEnvelopeBlocks = 1 << 20
)

// Envelope-codec error surface. Match with errors.Is.
var (
	// ErrEnvelopeTooLarge reports a section exceeding its bound, on
	// either side of the wire.
	ErrEnvelopeTooLarge = errors.New("task: envelope section exceeds bound")
	// ErrEnvelopeTruncated reports an envelope shorter than its declared
	// sections.
	ErrEnvelopeTruncated = errors.New("task: truncated envelope")
	// ErrEnvelopeVersion reports an unknown format version behind a
	// valid magic byte.
	ErrEnvelopeVersion = errors.New("task: unknown envelope version")
)

// EncodedLen returns the exact size Encode produces for e.
func (e *Envelope) EncodedLen() int {
	return envFixed +
		2 + len(e.Name) +
		4 + len(e.Arg) +
		4 + 8*len(e.Blocks) +
		4 + 8*len(e.Inputs) +
		4 + 8*len(e.Outputs)
}

// Encode serializes the envelope in the binary format above.
func (e *Envelope) Encode() ([]byte, error) {
	switch {
	case len(e.Name) > 0xFFFF:
		return nil, fmt.Errorf("%w: name %d bytes", ErrEnvelopeTooLarge, len(e.Name))
	case len(e.Arg) > MaxEnvelopeArg:
		return nil, fmt.Errorf("%w: arg %d bytes", ErrEnvelopeTooLarge, len(e.Arg))
	case len(e.Blocks) > MaxEnvelopeBlocks,
		len(e.Inputs) > MaxEnvelopeBlocks,
		len(e.Outputs) > MaxEnvelopeBlocks:
		return nil, fmt.Errorf("%w: %d+%d+%d block ids",
			ErrEnvelopeTooLarge, len(e.Blocks), len(e.Inputs), len(e.Outputs))
	}
	out := make([]byte, 0, e.EncodedLen())
	out = append(out, envMagic, envVersion, byte(e.Class))
	out = binary.BigEndian.AppendUint32(out, e.Tenant)
	out = binary.BigEndian.AppendUint32(out, uint32(int32(e.Home)))
	out = binary.BigEndian.AppendUint32(out, uint32(int32(e.Origin)))
	out = binary.BigEndian.AppendUint16(out, uint16(len(e.Name)))
	out = append(out, e.Name...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(e.Arg)))
	out = append(out, e.Arg...)
	for _, ids := range [][]uint64{e.Blocks, e.Inputs, e.Outputs} {
		out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
		for _, id := range ids {
			out = binary.BigEndian.AppendUint64(out, id)
		}
	}
	return out, nil
}

// DecodeEnvelope deserializes an envelope produced by Encode. Payloads
// that do not start with the binary format's magic byte fall back to the
// gob decoder, so peers running the previous gob-encoded protocol stay
// decodable.
func DecodeEnvelope(p []byte) (*Envelope, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrEnvelopeTruncated)
	}
	if p[0] != envMagic {
		return decodeGobEnvelope(p)
	}
	if len(p) < envFixed {
		return nil, fmt.Errorf("%w: %d of %d header bytes", ErrEnvelopeTruncated, len(p), envFixed)
	}
	if p[1] != envVersion {
		return nil, fmt.Errorf("%w: %d", ErrEnvelopeVersion, p[1])
	}
	e := &Envelope{
		Class:  Class(p[2]),
		Tenant: binary.BigEndian.Uint32(p[3:]),
		Home:   int(int32(binary.BigEndian.Uint32(p[7:]))),
		Origin: int(int32(binary.BigEndian.Uint32(p[11:]))),
	}
	rest := p[envFixed:]

	take := func(n int, what string) ([]byte, error) {
		if len(rest) < n {
			return nil, fmt.Errorf("%w: %s needs %d bytes, have %d", ErrEnvelopeTruncated, what, n, len(rest))
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}

	b, err := take(2, "name length")
	if err != nil {
		return nil, err
	}
	if b, err = take(int(binary.BigEndian.Uint16(b)), "name"); err != nil {
		return nil, err
	}
	e.Name = string(b)

	if b, err = take(4, "arg length"); err != nil {
		return nil, err
	}
	argLen := int(binary.BigEndian.Uint32(b))
	if argLen > MaxEnvelopeArg {
		return nil, fmt.Errorf("%w: declared arg %d bytes", ErrEnvelopeTooLarge, argLen)
	}
	if b, err = take(argLen, "arg"); err != nil {
		return nil, err
	}
	if argLen > 0 {
		e.Arg = append([]byte(nil), b...) // do not alias the caller's buffer
	}

	for _, dst := range []*[]uint64{&e.Blocks, &e.Inputs, &e.Outputs} {
		if b, err = take(4, "block count"); err != nil {
			return nil, err
		}
		n := int(binary.BigEndian.Uint32(b))
		if n > MaxEnvelopeBlocks {
			return nil, fmt.Errorf("%w: declared %d block ids", ErrEnvelopeTooLarge, n)
		}
		if n == 0 {
			continue
		}
		if b, err = take(8*n, "block ids"); err != nil {
			return nil, err
		}
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = binary.BigEndian.Uint64(b[8*i:])
		}
		*dst = ids
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("task: envelope has %d trailing bytes", len(rest))
	}
	return e, nil
}

// decodeGobEnvelope is the legacy-format fallback path.
func decodeGobEnvelope(p []byte) (*Envelope, error) {
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&e); err != nil {
		return nil, fmt.Errorf("task: decoding envelope: %w", err)
	}
	return &e, nil
}
