package deque

import (
	"strings"
	"sync"
	"testing"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"mutex", KindMutex},
		{"lock", KindMutex},
		{" Mutex ", KindMutex},
		{"chaselev", KindChaseLev},
		{"chase-lev", KindChaseLev},
		{"lockfree", KindChaseLev},
		{"relaxed", KindRelaxed},
		{"fence-free", KindRelaxed},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v,%v, want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatalf("ParseKind(bogus) should fail")
	} else if !strings.Contains(err.Error(), "mutex, chaselev, relaxed") {
		t.Fatalf("error should list the valid kinds, got %v", err)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Fatalf("registry kind %v not Valid", k)
		}
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%v.String()) = %v,%v", k, got, err)
		}
	}
	if Kind(200).Valid() {
		t.Fatalf("Kind(200) should be invalid")
	}
}

// Every kind behind the factory honours the WorkQueue contract under the
// single-owner discipline: LIFO pops, oldest-first steals, conservation.
func TestNewFactoryContract(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			q := New[int](k)
			for i := 0; i < 100; i++ {
				q.Push(i)
			}
			if q.Len() != 100 {
				t.Fatalf("Len = %d, want 100", q.Len())
			}
			if v, ok := q.Steal(); !ok || v != 0 {
				t.Fatalf("Steal = %d,%v, want 0,true", v, ok)
			}
			for want := 99; want >= 1; want-- {
				v, ok := q.Pop()
				if !ok || v != want {
					t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
				}
			}
			if _, ok := q.Pop(); ok {
				t.Fatalf("Pop on empty should report false")
			}
			if _, ok := q.Steal(); ok {
				t.Fatalf("Steal on empty should report false")
			}
		})
	}
}

// Satellite: ChaseLev buffer growth under active thieves, run with -race.
// The owner repeatedly drains and refills so the buffer is forced through
// doublings while three thieves hammer the top; exactly-once must hold
// through every grow.
func TestChaseLevGrowthUnderActiveThieves(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 30000
	taken := make([]bool, n)
	var mu sync.Mutex
	record := func(v int) {
		mu.Lock()
		if taken[v] {
			mu.Unlock()
			t.Errorf("element %d consumed twice", v)
			return
		}
		taken[v] = true
		mu.Unlock()
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}
	// Push in bursts with interleaved pops: the live window oscillates
	// through the 8→16→…→4096 growth sizes while thieves race each copy.
	next := 0
	for next < n {
		burst := 512
		if n-next < burst {
			burst = n - next
		}
		for i := 0; i < burst; i++ {
			d.Push(next)
			next++
		}
		for i := 0; i < burst/2; i++ {
			if v, ok := d.Pop(); ok {
				record(v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for i, ok := range taken {
		if !ok {
			t.Fatalf("element %d lost", i)
		}
	}
}
