package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRelaxedLIFOOwner(t *testing.T) {
	d := NewRelaxed[int]()
	for i := 1; i <= 3; i++ {
		d.Push(i)
	}
	for want := 3; want >= 1; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatalf("Pop() on empty queue should report false")
	}
}

func TestRelaxedStealOldest(t *testing.T) {
	d := NewRelaxed[string]()
	d.Push("oldest")
	d.Push("newest")
	if v, ok := d.Steal(); !ok || v != "oldest" {
		t.Fatalf("Steal() = %q,%v, want oldest,true", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != "newest" {
		t.Fatalf("Pop() = %q,%v, want newest,true", v, ok)
	}
	if _, ok := d.Steal(); ok {
		t.Fatalf("Steal() on empty queue should report false")
	}
}

func TestRelaxedGrowth(t *testing.T) {
	d := NewRelaxed[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for want := n - 1; want >= 0; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d", v, ok, want)
		}
	}
}

// Reuse after a last-element take: the resync paths in Push and Pop must
// keep the window consistent across many empty/non-empty transitions.
func TestRelaxedReuseAfterEmpty(t *testing.T) {
	d := NewRelaxed[int]()
	for round := 0; round < 50; round++ {
		d.Push(round * 2)
		d.Push(round*2 + 1)
		if v, ok := d.Steal(); !ok || v != round*2 {
			t.Fatalf("round %d: Steal = %d,%v, want %d", round, v, ok, round*2)
		}
		if v, ok := d.Pop(); !ok || v != round*2+1 {
			t.Fatalf("round %d: Pop = %d,%v, want %d", round, v, ok, round*2+1)
		}
		if d.Len() != 0 {
			t.Fatalf("round %d: Len = %d after draining", round, d.Len())
		}
	}
}

// Property: with no concurrency there are no races, so the relaxed queue
// must behave exactly like the strict ones — mixed Pop/Steal conserves
// every element with no duplicates.
func TestRelaxedSequentialConservation(t *testing.T) {
	f := func(xs []uint8, stealMask []bool) bool {
		d := NewRelaxed[uint8]()
		counts := map[uint8]int{}
		for _, x := range xs {
			d.Push(x)
			counts[x]++
		}
		for i := 0; i < len(xs); i++ {
			var v uint8
			var ok bool
			if i < len(stealMask) && stealMask[i] {
				v, ok = d.Steal()
			} else {
				v, ok = d.Pop()
			}
			if !ok {
				return false
			}
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The multiplicity property (satellite): under owner/thief concurrency the
// relaxed queue may deliver an element more than once but must never lose
// one, and the batch-accounting dedup pattern — an atomic claim per
// element, exactly how internal/core and internal/sim consume it — must
// absorb every duplicate exactly once. We assert: (a) every element is
// delivered at least once; (b) the claim layer accepts each element
// exactly once; (c) duplicates observed == deliveries − claims, i.e. every
// extra delivery was seen and rejected by dedup, none slipped through.
func TestRelaxedMultiplicityDedupedByBatchAccounting(t *testing.T) {
	d := NewRelaxed[int]()
	const n = 50000
	claimed := make([]atomic.Bool, n) // stand-in for dispatch-seq/batch accounting
	var deliveries, claims, duplicates atomic.Int64
	record := func(v int) {
		deliveries.Add(1)
		if claimed[v].CompareAndSwap(false, true) {
			claims.Add(1)
		} else {
			duplicates.Add(1)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				record(v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	// Concurrency is over: drain sequentially. Anything still visible in
	// the window (including re-exposed elements from a regressed top) is
	// delivered here and deduped like the rest.
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	if got := claims.Load(); got != n {
		t.Fatalf("claimed %d of %d elements exactly once (loss!)", got, n)
	}
	for i := range claimed {
		if !claimed[i].Load() {
			t.Fatalf("element %d never delivered", i)
		}
	}
	if dels, dups := deliveries.Load(), duplicates.Load(); dels-n != dups {
		t.Fatalf("duplicate accounting off: %d deliveries, %d claims, %d dups",
			dels, n, dups)
	} else if dups > 0 {
		t.Logf("multiplicity observed: %d duplicate takes over %d elements, all deduped", dups, n)
	}
}

// A stale thief's backwards top store may re-expose indices a grow
// discarded — their slots are nil in the new buffer. The owner draining
// down past the grow point must treat a nil slot as already-taken and
// resync, not dereference it.
func TestRelaxedPopSurvivesStaleTopAfterGrow(t *testing.T) {
	d := NewRelaxed[int]()
	// Advance top to 4, then fill until the initial capacity (8) forces a
	// grow: the new buffer's slots below index 4 stay nil.
	for i := 0; i < 4; i++ {
		d.Push(i)
	}
	for i := 0; i < 4; i++ {
		if _, ok := d.Steal(); !ok {
			t.Fatalf("setup Steal %d failed", i)
		}
	}
	for i := 4; i < 13; i++ {
		d.Push(i)
	}
	// Simulate the stale thief: top regresses to 0, re-exposing the nil
	// slots 0..3 to the owner.
	d.top.Store(0)
	seen := map[int]bool{}
	for {
		v, ok := d.Pop() // must not panic on the nil slots
		if !ok {
			break
		}
		seen[v] = true
	}
	for i := 4; i < 13; i++ {
		if !seen[i] {
			t.Fatalf("element %d lost draining past the grow point", i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", d.Len())
	}
	// The queue must remain usable after the resync.
	d.Push(99)
	if v, ok := d.Pop(); !ok || v != 99 {
		t.Fatalf("Pop after resync = %d,%v, want 99,true", v, ok)
	}
}

// A stale thief's backwards top store can widen bottom-top beyond twice
// the current capacity; the grow must keep doubling until the window fits
// instead of wrapping the mask and overwriting live slots.
func TestRelaxedGrowWithStaleTopKeepsLiveElements(t *testing.T) {
	d := NewRelaxed[int]()
	// Walk top and bottom to 16 without growing (capacity stays 8), then
	// queue 7 live elements.
	for round := 0; round < 4; round++ {
		for i := 0; i < 4; i++ {
			d.Push(-1)
		}
		for i := 0; i < 4; i++ {
			if _, ok := d.Steal(); !ok {
				t.Fatalf("setup Steal failed")
			}
		}
	}
	for i := 0; i < 7; i++ {
		d.Push(100 + i)
	}
	// Stale thief regresses top to 0: bottom-top = 23 > 2*cap = 16, so
	// the next Push must grow past a single doubling.
	d.top.Store(0)
	d.Push(107)
	seen := map[int]bool{}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		seen[v] = true
	}
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		seen[v] = true
	}
	for i := 0; i < 8; i++ {
		if !seen[100+i] {
			t.Fatalf("live element %d lost across the over-wide grow", 100+i)
		}
	}
}

func BenchmarkRelaxedPushPop(b *testing.B) {
	d := NewRelaxed[int]()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}
