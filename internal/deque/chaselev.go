package deque

import "sync/atomic"

// ChaseLev is a lock-free work-stealing deque in the style of Chase and
// Lev (SPAA 2005): the owner pushes and pops at the bottom without locks,
// thieves steal from the top with a single CAS. It is the classic
// alternative to the mutex-guarded Private deque — the paper (§V)
// discusses exactly this trade-off: software steal operations interrupt
// the victim, and lock-free deques bound that interruption.
//
// Semantics match Private: owner Push/Pop are LIFO; Steal takes the
// oldest element. Push and Pop must be called by a single owner
// goroutine; Steal may be called concurrently by any number of thieves.
type ChaseLev[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[clBuf[T]]
}

type clBuf[T any] struct {
	items []atomic.Pointer[T]
	mask  int64
}

func newCLBuf[T any](capacity int64) *clBuf[T] {
	return &clBuf[T]{items: make([]atomic.Pointer[T], capacity), mask: capacity - 1}
}

func (b *clBuf[T]) load(i int64) *T     { return b.items[i&b.mask].Load() }
func (b *clBuf[T]) store(i int64, v *T) { b.items[i&b.mask].Store(v) }

// NewChaseLev returns an empty deque with a small initial capacity.
func NewChaseLev[T any]() *ChaseLev[T] {
	d := &ChaseLev[T]{}
	d.buf.Store(newCLBuf[T](8))
	return d
}

// Push appends v at the bottom (owner only).
func (d *ChaseLev[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= int64(len(buf.items)) {
		// Grow: copy live elements into a buffer twice the size. Thieves
		// may still read the old buffer; both hold the same pointers.
		nb := newCLBuf[T](int64(len(buf.items)) * 2)
		for i := t; i < b; i++ {
			nb.store(i, buf.load(i))
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.store(b, &v)
	d.bottom.Store(b + 1)
}

// Pop removes the most recently pushed element (owner only, LIFO).
func (d *ChaseLev[T]) Pop() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return zero, false
	}
	vp := buf.load(b)
	if t != b {
		return *vp, true
	}
	// Last element: race against thieves for it.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return zero, false
	}
	return *vp, true
}

// Steal removes the oldest element (any goroutine, FIFO end). It returns
// false when the deque is empty or the steal lost a race.
func (d *ChaseLev[T]) Steal() (T, bool) {
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	buf := d.buf.Load()
	vp := buf.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false // lost to the owner or another thief; caller retries
	}
	return *vp, true
}

// Len returns an instantaneous (racy) size estimate.
func (d *ChaseLev[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
