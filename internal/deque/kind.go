package deque

import (
	"fmt"
	"strings"
)

// Kind selects the work-queue implementation workers schedule from. It is
// the axis of the paper's §V synchronization discussion made configurable:
// how much a steal interrupts the victim, and what the victim pays on its
// own hot path, are properties of the queue, not of the policy.
type Kind uint8

const (
	// KindMutex is the paper-faithful default: a mutex-guarded deque with
	// an observable lock — exactly the structure whose contention the
	// paper's selective design reasons about.
	KindMutex Kind = iota
	// KindChaseLev is the classic lock-free deque of Chase and Lev (SPAA
	// 2005): owner push/pop without locks, one CAS per steal. Steals are
	// linearizable; no task is ever handed out twice.
	KindChaseLev
	// KindRelaxed is the fence-free queue with multiplicity semantics in
	// the style of Castañeda and Piña (arXiv:2008.04424): no locks and no
	// read-modify-write anywhere — owner and thieves synchronize through
	// plain atomic reads and writes only. The relaxation: under a race a
	// task may be taken twice, and the scheduler dedups at dispatch (the
	// runtime claims each task once; the simulator's batch accounting
	// marks task ids taken). Selecting this kind also switches the
	// runtime's remote stealing to the receiver-initiated private-deques
	// protocol (see internal/core): the lock-guarded per-place shared
	// structure disappears from the hot path entirely.
	KindRelaxed
	numKinds
)

var kindNames = [...]string{
	KindMutex:    "mutex",
	KindChaseLev: "chaselev",
	KindRelaxed:  "relaxed",
}

// String returns the canonical flag spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a defined queue kind.
func (k Kind) Valid() bool { return k < numKinds }

// Kinds lists all queue kinds in presentation order.
func Kinds() []Kind { return []Kind{KindMutex, KindChaseLev, KindRelaxed} }

// KindNames lists the canonical flag spellings, derived from the registry
// so CLI help and validation stay in sync with the implementations.
func KindNames() []string {
	ks := Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.String()
	}
	return out
}

// ParseKind resolves a case-insensitive queue-kind name ("mutex",
// "chaselev", "relaxed"), mirroring comm.ParseTransport.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mutex", "lock", "locked":
		return KindMutex, nil
	case "chaselev", "chase-lev", "lockfree", "lock-free":
		return KindChaseLev, nil
	case "relaxed", "fencefree", "fence-free":
		return KindRelaxed, nil
	default:
		return 0, fmt.Errorf("deque: unknown queue kind %q (want %s)",
			s, strings.Join(KindNames(), ", "))
	}
}

// WorkQueue is the private-deque discipline every worker schedules from:
// the owner pushes and pops at the bottom (LIFO, maximizing cache reuse of
// the most recently spawned task); thieves take the oldest element from
// the top. Push and Pop are owner-side operations — KindMutex tolerates
// any caller, the lock-free kinds require a single owner goroutine; Steal
// and Len are safe from any goroutine on every kind.
//
// KindRelaxed weakens the exactly-once guarantee: a racy Pop/Steal or
// Steal/Steal pair may return the same element twice (multiplicity).
// Callers selecting it must dedup at dispatch; no element is ever lost.
type WorkQueue[T any] interface {
	Push(T)
	Pop() (T, bool)
	Steal() (T, bool)
	Len() int
}

// New returns an empty work queue of the requested kind.
func New[T any](k Kind) WorkQueue[T] {
	switch k {
	case KindMutex:
		return &Private[T]{}
	case KindChaseLev:
		return NewChaseLev[T]()
	case KindRelaxed:
		return NewRelaxed[T]()
	default:
		panic(fmt.Sprintf("deque: New on invalid kind %v", k))
	}
}
