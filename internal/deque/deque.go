// Package deque implements the two queue flavours the DistWS scheduler is
// built on (paper §V-A, Fig. 2):
//
//   - Private: one per worker. The owning worker pushes and pops at the
//     bottom (LIFO, maximizing cache reuse of the most recently spawned
//     task); co-located thieves steal the oldest task from the top.
//   - Shared: one per place. Strict FIFO so that any steal — local or
//     remote — receives the oldest task in the deque, which potentially
//     roots the largest remaining subtree of work. Supports chunked steals
//     (the paper uses chunks of 2 for distributed stealing).
//
// Both types are safe for concurrent use. Synchronization is a per-deque
// mutex: the private deque's mutex is virtually uncontended (only its owner
// and the occasional co-located thief touch it), and the shared deque's
// mutex is exactly the lock the paper describes remote thieves contending
// on. Keeping that lock observable, rather than hiding it behind a
// lock-free structure, preserves the contention behaviour the paper's
// design is reacting to.
//
// The worker-side queue is pluggable beyond that paper-faithful default:
// Kind selects among Private (mutex), ChaseLev (lock-free, CAS steals) and
// Relaxed (fence-free with multiplicity) behind the common WorkQueue
// interface — see kind.go. Selecting Relaxed also flips the runtime to
// receiver-initiated stealing, removing the Shared structure from the hot
// path entirely.
package deque

import "sync"

// ring is a growable circular buffer. Capacity is always a power of two
// (grow doubles from 8), so index wrap is a mask instead of a division.
// Not safe for concurrent use; callers hold their own lock.
type ring[T any] struct {
	buf  []T
	head int // index of oldest element
	n    int // number of elements
}

func (r *ring[T]) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&mask]
	}
	r.buf, r.head = buf, 0
}

func (r *ring[T]) pushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) popBack() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	v := r.buf[i]
	r.buf[i] = zero // release reference for GC
	r.n--
	return v, true
}

func (r *ring[T]) popFront() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

// Private is a per-worker double-ended queue. The owner uses Push/Pop
// (LIFO); thieves use Steal (FIFO end). The zero value is ready to use.
type Private[T any] struct {
	mu sync.Mutex
	r  ring[T]
}

// Push appends v at the bottom of the deque (owner operation).
func (d *Private[T]) Push(v T) {
	d.mu.Lock()
	d.r.pushBack(v)
	d.mu.Unlock()
}

// Pop removes and returns the most recently pushed element (owner
// operation, LIFO). The second result is false when the deque is empty.
func (d *Private[T]) Pop() (T, bool) {
	d.mu.Lock()
	v, ok := d.r.popBack()
	d.mu.Unlock()
	return v, ok
}

// Steal removes and returns the oldest element (thief operation, FIFO
// end). The second result is false when the deque is empty.
func (d *Private[T]) Steal() (T, bool) {
	d.mu.Lock()
	v, ok := d.r.popFront()
	d.mu.Unlock()
	return v, ok
}

// Len returns the current number of queued elements.
func (d *Private[T]) Len() int {
	d.mu.Lock()
	n := d.r.n
	d.mu.Unlock()
	return n
}

// Shared is a per-place FIFO deque holding locality-flexible tasks. Every
// consumer — the place's own workers and remote thieves — receives the
// oldest task. The zero value is ready to use.
type Shared[T any] struct {
	mu sync.Mutex
	r  ring[T]
}

// Push appends v at the tail.
func (d *Shared[T]) Push(v T) {
	d.mu.Lock()
	d.r.pushBack(v)
	d.mu.Unlock()
}

// Poll removes and returns the oldest element. The second result is false
// when the deque is empty.
func (d *Shared[T]) Poll() (T, bool) {
	d.mu.Lock()
	v, ok := d.r.popFront()
	d.mu.Unlock()
	return v, ok
}

// StealChunk removes and returns up to k oldest elements in one critical
// section, implementing the paper's chunked distributed steal (§V-B3,
// chunk size 2). It returns nil when the deque is empty or k <= 0.
func (d *Shared[T]) StealChunk(k int) []T {
	out := d.StealChunkAppend(nil, k)
	if len(out) == 0 {
		return nil
	}
	return out
}

// StealChunkAppend removes up to k oldest elements in one critical section
// and appends them to dst, returning the extended slice (dst unchanged when
// the deque is empty or k <= 0). It is the allocation-free form of
// StealChunk: callers that steal in a loop pass a reused scratch buffer.
func (d *Shared[T]) StealChunkAppend(dst []T, k int) []T {
	if k <= 0 {
		return dst
	}
	d.mu.Lock()
	if k > d.r.n {
		k = d.r.n
	}
	for i := 0; i < k; i++ {
		v, _ := d.r.popFront()
		dst = append(dst, v)
	}
	d.mu.Unlock()
	return dst
}

// StealBestAppend removes up to k elements chosen by score — highest
// first, ties broken oldest-first — and appends them to dst, returning
// the extended slice. It is the data-aware variant of StealChunkAppend:
// a thief that knows which queued tasks' inputs are already resident
// locally passes a score favouring them (e.g. negated fetch bytes).
// Elements not taken keep their relative order, so with a constant
// score the result is exactly StealChunkAppend.
func (d *Shared[T]) StealBestAppend(dst []T, k int, score func(T) int64) []T {
	if k <= 0 {
		return dst
	}
	d.mu.Lock()
	if k > d.r.n {
		k = d.r.n
	}
	for i := 0; i < k; i++ {
		mask := len(d.r.buf) - 1
		bestAt := 0
		bestScore := score(d.r.buf[d.r.head])
		for j := 1; j < d.r.n; j++ {
			if s := score(d.r.buf[(d.r.head+j)&mask]); s > bestScore {
				bestAt, bestScore = j, s
			}
		}
		v := d.r.buf[(d.r.head+bestAt)&mask]
		// Close the gap: shift the elements older than the chosen one back
		// by a slot, then drop the now-duplicated front. Order among the
		// remaining elements is preserved.
		for j := bestAt; j > 0; j-- {
			d.r.buf[(d.r.head+j)&mask] = d.r.buf[(d.r.head+j-1)&mask]
		}
		d.r.popFront()
		dst = append(dst, v)
	}
	d.mu.Unlock()
	return dst
}

// Len returns the current number of queued elements.
func (d *Shared[T]) Len() int {
	d.mu.Lock()
	n := d.r.n
	d.mu.Unlock()
	return n
}
