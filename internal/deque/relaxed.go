package deque

import "sync/atomic"

// Relaxed is a work-stealing queue with multiplicity semantics in the
// style of Castañeda and Piña (arXiv:2008.04424): it is fully fence-free —
// every synchronization step is a plain atomic load or store; there is no
// CAS or any other read-modify-write anywhere, so neither the owner's hot
// path nor a steal ever spins on contended hardware primitives.
//
// The relaxation that buys this: a take is published by *storing* top+1
// rather than compare-and-swapping it, so two thieves (or a thief and the
// owner popping the last element) that read the same top may both return
// the same element. The multiplicity guarantee is one-sided:
//
//   - no element is ever lost — top only advances to i+1 via a thread
//     that has already read element i, so the window [top, bottom) never
//     skips an untaken element;
//   - an element may be returned more than once, and a stale thief's
//     store may even move top backwards, re-exposing recently taken
//     elements. Every such re-delivery is a duplicate of a previously
//     delivered element, never garbage.
//
// Callers must therefore dedup at dispatch: the goroutine runtime claims
// each activity with a single atomic flag before running it, and the
// simulator's batch accounting marks task ids taken. That machinery
// already exists for exactly-once execution across faults, which is what
// makes this queue's weaker contract free to adopt.
//
// Like ChaseLev: Push and Pop are owner-only, Steal and Len are safe from
// any goroutine, and the element window lives in a grow-only buffer of
// atomic pointer slots shared with concurrent readers.
type Relaxed[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[clBuf[T]]
}

// NewRelaxed returns an empty queue with a small initial capacity.
func NewRelaxed[T any]() *Relaxed[T] {
	d := &Relaxed[T]{}
	d.buf.Store(newCLBuf[T](8))
	return d
}

// Push appends v at the bottom (owner only).
func (d *Relaxed[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	if t > b {
		// A duplicate take of the last element advanced top past bottom;
		// resync so the new element lands inside the visible window.
		b = t
	}
	buf := d.buf.Load()
	if b-t >= int64(len(buf.items)) {
		// Grow: copy the live window into a buffer twice the size. A stale
		// thief still holding an index below t finds a nil slot in the new
		// buffer and reports a lost race rather than reading garbage.
		//
		// A stale thief's backwards top store can widen b-t beyond twice
		// the old capacity, so doubling once is not always enough: keep
		// doubling until the whole window fits, or the copy loop would
		// wrap the power-of-two mask and overwrite live slots.
		newCap := int64(len(buf.items)) * 2
		for b-t >= newCap {
			newCap *= 2
		}
		nb := newCLBuf[T](newCap)
		for i := t; i < b; i++ {
			nb.store(i, buf.load(i))
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.store(b, &v)
	d.bottom.Store(b + 1)
}

// Pop removes the most recently pushed element (owner only, LIFO). When it
// races a thief for the last element both may receive it; the dispatch
// layer dedups.
func (d *Relaxed[T]) Pop() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	t := d.top.Load()
	if t > b {
		// Empty: resync bottom with however far the thieves got.
		d.bottom.Store(t)
		return zero, false
	}
	vp := d.buf.Load().load(b)
	if vp == nil {
		// A stale thief's backwards top store re-exposed indices a grow
		// discarded; a nil slot proves b predates the grow-time top, so
		// everything at or below it was already taken. Collapse the
		// window to empty at b+1 (top never legitimately exceeded
		// bottom, so this store cannot skip a live element).
		d.top.Store(b + 1)
		d.bottom.Store(b + 1)
		return zero, false
	}
	if t == b {
		// Last element: take it by plain stores. No CAS — a thief that
		// read the same top may take it too (multiplicity).
		d.top.Store(b + 1)
		d.bottom.Store(b + 1)
	} else {
		d.bottom.Store(b)
	}
	return *vp, true
}

// Steal removes the oldest element (any goroutine, FIFO end). It returns
// false when the queue looks empty or the thief observed a buffer it is
// too stale for; it never spins and never executes a read-modify-write.
func (d *Relaxed[T]) Steal() (T, bool) {
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	vp := d.buf.Load().load(t)
	if vp == nil {
		// The owner grew the buffer past this index; the element was
		// copied only if still live, so it is owned by someone else now.
		return zero, false
	}
	d.top.Store(t + 1)
	return *vp, true
}

// Len returns an instantaneous (racy) size estimate.
func (d *Relaxed[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
