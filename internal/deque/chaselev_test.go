package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChaseLevLIFOOwner(t *testing.T) {
	d := NewChaseLev[int]()
	for i := 1; i <= 3; i++ {
		d.Push(i)
	}
	for want := 3; want >= 1; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatalf("Pop() on empty deque should report false")
	}
}

func TestChaseLevStealOldest(t *testing.T) {
	d := NewChaseLev[string]()
	d.Push("oldest")
	d.Push("newest")
	if v, ok := d.Steal(); !ok || v != "oldest" {
		t.Fatalf("Steal() = %q,%v, want oldest,true", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != "newest" {
		t.Fatalf("Pop() = %q,%v, want newest,true", v, ok)
	}
}

func TestChaseLevStealEmpty(t *testing.T) {
	d := NewChaseLev[int]()
	if _, ok := d.Steal(); ok {
		t.Fatalf("Steal() on empty deque should report false")
	}
}

func TestChaseLevGrowth(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 1000 // forces several buffer doublings
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for want := n - 1; want >= 0; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d", v, ok, want)
		}
	}
}

func TestChaseLevInterleavedGrowthAndSteal(t *testing.T) {
	d := NewChaseLev[int]()
	for i := 0; i < 6; i++ {
		d.Push(i)
	}
	d.Steal() // 0
	d.Steal() // 1
	for i := 6; i < 40; i++ {
		d.Push(i) // grows with top > 0
	}
	seen := map[int]bool{}
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("element %d stolen twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 38 {
		t.Fatalf("stole %d elements, want 38", len(seen))
	}
}

// Property: sequential mixed Pop/Steal never loses or duplicates
// elements (conservation).
func TestChaseLevConservationProperty(t *testing.T) {
	f := func(xs []uint8, stealMask []bool) bool {
		d := NewChaseLev[uint8]()
		counts := map[uint8]int{}
		for _, x := range xs {
			d.Push(x)
			counts[x]++
		}
		for i := 0; i < len(xs); i++ {
			var v uint8
			var ok bool
			if i < len(stealMask) && stealMask[i] {
				v, ok = d.Steal()
			} else {
				v, ok = d.Pop()
			}
			if !ok {
				return false // sequentially, nothing can be lost
			}
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The critical concurrent property: one owner pushing/popping against
// many thieves — every element consumed exactly once.
func TestChaseLevConcurrentOwnerAndThieves(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 20000
	var consumed sync.Map
	var total atomic.Int64
	record := func(v int) {
		if _, dup := consumed.LoadOrStore(v, true); dup {
			t.Errorf("element %d consumed twice", v)
		}
		total.Add(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					// Drain whatever remains visible.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}
	// Owner: push all, interleaving pops.
	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				record(v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	// A Pop that loses its CAS race leaves the element to the winning
	// thief, and vice versa, so after both sides drain everything is
	// consumed exactly once.
	if got := total.Load(); got != n {
		t.Fatalf("consumed %d of %d elements", got, n)
	}
}

func BenchmarkChaseLevPushPop(b *testing.B) {
	d := NewChaseLev[int]()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkMutexVsChaseLevUncontended(b *testing.B) {
	b.Run("mutex", func(b *testing.B) {
		var d Private[int]
		for i := 0; i < b.N; i++ {
			d.Push(i)
			d.Pop()
		}
	})
	b.Run("chaselev", func(b *testing.B) {
		d := NewChaseLev[int]()
		for i := 0; i < b.N; i++ {
			d.Push(i)
			d.Pop()
		}
	})
}
