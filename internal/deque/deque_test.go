package deque

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPrivateLIFOOwner(t *testing.T) {
	var d Private[int]
	for i := 1; i <= 3; i++ {
		d.Push(i)
	}
	for want := 3; want >= 1; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatalf("Pop() on empty deque should report false")
	}
}

func TestPrivateStealFIFOEnd(t *testing.T) {
	var d Private[string]
	d.Push("oldest")
	d.Push("middle")
	d.Push("newest")
	if v, ok := d.Steal(); !ok || v != "oldest" {
		t.Fatalf("Steal() = %q,%v, want oldest,true", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != "newest" {
		t.Fatalf("Pop() after steal = %q,%v, want newest,true", v, ok)
	}
}

func TestPrivateStealEmpty(t *testing.T) {
	var d Private[int]
	if _, ok := d.Steal(); ok {
		t.Fatalf("Steal() on empty deque should report false")
	}
}

func TestPrivateLen(t *testing.T) {
	var d Private[int]
	if d.Len() != 0 {
		t.Fatalf("empty Len() = %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		d.Push(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", d.Len())
	}
	d.Pop()
	d.Steal()
	if d.Len() != 98 {
		t.Fatalf("Len() = %d, want 98", d.Len())
	}
}

func TestSharedFIFO(t *testing.T) {
	var d Shared[int]
	for i := 0; i < 5; i++ {
		d.Push(i)
	}
	for want := 0; want < 5; want++ {
		v, ok := d.Poll()
		if !ok || v != want {
			t.Fatalf("Poll() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.Poll(); ok {
		t.Fatalf("Poll() on empty shared deque should report false")
	}
}

func TestSharedStealChunk(t *testing.T) {
	var d Shared[int]
	for i := 0; i < 5; i++ {
		d.Push(i)
	}
	got := d.StealChunk(2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("StealChunk(2) = %v, want [0 1]", got)
	}
	got = d.StealChunk(10) // more than available
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("StealChunk(10) = %v, want [2 3 4]", got)
	}
	if d.StealChunk(2) != nil {
		t.Fatalf("StealChunk on empty deque should return nil")
	}
}

func TestSharedStealChunkNonPositive(t *testing.T) {
	var d Shared[int]
	d.Push(1)
	if got := d.StealChunk(0); got != nil {
		t.Fatalf("StealChunk(0) = %v, want nil", got)
	}
	if got := d.StealChunk(-3); got != nil {
		t.Fatalf("StealChunk(-3) = %v, want nil", got)
	}
	if d.Len() != 1 {
		t.Fatalf("non-positive chunk must not consume elements")
	}
}

func TestSharedStealBest(t *testing.T) {
	var d Shared[int]
	for _, v := range []int{10, 30, 20, 30} {
		d.Push(v)
	}
	// Highest score first; the tied 30s come out oldest-first.
	got := d.StealBestAppend(nil, 3, func(v int) int64 { return int64(v) })
	if len(got) != 3 || got[0] != 30 || got[1] != 30 || got[2] != 20 {
		t.Fatalf("StealBestAppend = %v, want [30 30 20]", got)
	}
	// The untaken remainder keeps FIFO order.
	if v, ok := d.Poll(); !ok || v != 10 {
		t.Fatalf("Poll after StealBestAppend = %v, %v", v, ok)
	}
	if got := d.StealBestAppend(nil, 2, func(int) int64 { return 0 }); len(got) != 0 {
		t.Fatalf("StealBestAppend on empty = %v", got)
	}
}

func TestSharedStealBestConstantScoreIsFIFO(t *testing.T) {
	var a, b Shared[int]
	for i := 0; i < 9; i++ {
		a.Push(i)
		b.Push(i)
	}
	fifo := a.StealChunkAppend(nil, 4)
	best := b.StealBestAppend(nil, 4, func(int) int64 { return 7 })
	for i := range fifo {
		if fifo[i] != best[i] {
			t.Fatalf("constant score diverged from FIFO: %v vs %v", fifo, best)
		}
	}
	if got := b.StealBestAppend(nil, -1, func(int) int64 { return 0 }); got != nil {
		t.Fatalf("StealBestAppend(-1) = %v, want nil", got)
	}
}

func TestRingGrowthWrapAround(t *testing.T) {
	var d Shared[int]
	// Interleave pushes and polls to force head to wrap before growth.
	for i := 0; i < 6; i++ {
		d.Push(i)
	}
	for i := 0; i < 4; i++ {
		d.Poll()
	}
	for i := 6; i < 30; i++ {
		d.Push(i)
	}
	for want := 4; want < 30; want++ {
		v, ok := d.Poll()
		if !ok || v != want {
			t.Fatalf("Poll() = %d,%v, want %d,true", v, ok, want)
		}
	}
}

// Property: for any sequence of pushes, draining via Poll yields the exact
// push order (FIFO invariant of the shared deque).
func TestSharedFIFOProperty(t *testing.T) {
	f := func(xs []int16) bool {
		var d Shared[int16]
		for _, x := range xs {
			d.Push(x)
		}
		for _, want := range xs {
			v, ok := d.Poll()
			if !ok || v != want {
				return false
			}
		}
		_, ok := d.Poll()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: owner Pop sequence of a private deque is the reverse of the
// push order (LIFO invariant).
func TestPrivateLIFOProperty(t *testing.T) {
	f := func(xs []int16) bool {
		var d Private[int16]
		for _, x := range xs {
			d.Push(x)
		}
		for i := len(xs) - 1; i >= 0; i-- {
			v, ok := d.Pop()
			if !ok || v != xs[i] {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mixing Pop and Steal never loses or duplicates elements.
func TestPrivateConservationProperty(t *testing.T) {
	f := func(xs []uint8, stealMask []bool) bool {
		var d Private[uint8]
		counts := map[uint8]int{}
		for _, x := range xs {
			d.Push(x)
			counts[x]++
		}
		for i := 0; i < len(xs); i++ {
			var v uint8
			var ok bool
			if i < len(stealMask) && stealMask[i] {
				v, ok = d.Steal()
			} else {
				v, ok = d.Pop()
			}
			if !ok {
				return false
			}
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrivateConcurrentOwnerAndThieves(t *testing.T) {
	var d Private[int]
	const n = 10000
	got := make(chan int, n)
	var wg sync.WaitGroup
	// Owner: pushes all, then pops what it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.Push(i)
		}
		for {
			v, ok := d.Pop()
			if !ok {
				return
			}
			got <- v
		}
	}()
	// Two thieves stealing concurrently.
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			misses := 0
			for misses < 1000 {
				if v, ok := d.Steal(); ok {
					got <- v
					misses = 0
				} else {
					misses++
				}
			}
		}()
	}
	wg.Wait()
	close(got)
	seen := make(map[int]bool, n)
	for v := range got {
		if seen[v] {
			t.Fatalf("element %d consumed twice", v)
		}
		seen[v] = true
	}
	// The owner drains the deque after pushing everything, so together with
	// the thieves every element must be consumed exactly once.
	if len(seen)+d.Len() != n {
		t.Fatalf("consumed %d + remaining %d != pushed %d", len(seen), d.Len(), n)
	}
}

func TestSharedConcurrentChunkSteals(t *testing.T) {
	var d Shared[int]
	const n = 8192
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				chunk := d.StealChunk(2)
				if chunk == nil {
					return
				}
				mu.Lock()
				for _, v := range chunk {
					if seen[v] {
						mu.Unlock()
						t.Errorf("element %d stolen twice", v)
						return
					}
					seen[v] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("stole %d distinct elements, want %d", len(seen), n)
	}
}

func BenchmarkPrivatePushPop(b *testing.B) {
	var d Private[int]
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkSharedPushPoll(b *testing.B) {
	var d Shared[int]
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Poll()
	}
}
