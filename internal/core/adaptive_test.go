package core

import (
	"sync/atomic"
	"testing"

	"distws/internal/adapt"
	"distws/internal/sched"
	"distws/internal/task"
)

// Adaptive runtime-mode smoke: a spawn-heavy mixed workload on the real
// goroutine runtime, exercising the controller's Intern/Classify path on
// every spawn and the ObserveExec/ObserveSteal paths concurrently from
// all workers. Run under -race (make race), this is the data-race gate
// for the adapt wiring in internal/core.
func TestAdaptiveRuntimeSmoke(t *testing.T) {
	const places, tasks = 4, 400
	ctrl := adapt.New(adapt.Config{Places: places})
	cfg := testConfig(sched.Adaptive, places, 2)
	cfg.Adapt = ctrl
	cfg.CacheBlocks = 64
	rt := mustNew(t, cfg)

	var ran atomic.Int64
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < tasks; i++ {
				home := i % places
				// Alternate two kinds: a plain compute task and one that
				// declares a footprint plus remote references, so the
				// controller interns more than one signature.
				loc := task.FlexibleLocality
				if i%2 == 1 {
					loc = task.Locality{
						Class:          task.Flexible,
						Blocks:         []uint64{uint64(i % 8)},
						RemoteRefs:     3,
						MigrationBytes: 256,
					}
				}
				c.AsyncLoc(home, loc, func(*Ctx) {
					ran.Add(1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ran.Load(); got != tasks {
		t.Fatalf("ran %d of %d tasks", got, tasks)
	}
	if ctrl.NumKinds() < 2 {
		t.Fatalf("controller interned %d kinds, want >= 2", ctrl.NumKinds())
	}
	// The counter mirrors the controller.
	if got := rt.Metrics().Reclassifications; got != ctrl.Flips() {
		t.Fatalf("Reclassifications %d != controller flips %d", got, ctrl.Flips())
	}
}

// An adaptive runtime with no controller supplied builds its own.
func TestAdaptiveRuntimeDefaultController(t *testing.T) {
	rt := mustNew(t, testConfig(sched.Adaptive, 2, 2))
	var ran atomic.Bool
	if err := rt.Run(func(ctx *Ctx) { ran.Store(true) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran.Load() {
		t.Fatalf("body did not run")
	}
}
