package core

import (
	"math/rand"
	"sync/atomic"
	"time"

	"distws/internal/cachesim"
	"distws/internal/deque"
	"distws/internal/sched"
	"distws/internal/task"
)

// activity is one schedulable unit of work — the X10 async.
type activity struct {
	body func(*Ctx)
	loc  task.Locality
	home int // programmer-specified place
	fin  *finish
}

// place mirrors the paper's Fig. 2: several workers with private deques
// plus one shared deque for locality-flexible tasks, and the place-local
// status object of §VI-B.
type place struct {
	id int
	rt *Runtime

	workers []*worker
	shared  deque.Shared[*activity]

	running  atomic.Int32  // activities currently executing here
	queued   atomic.Int32  // activities queued here (private + shared)
	spawnSeq atomic.Uint64 // per-place spawn counter (DistWS-NS round robin)

	// active is the §VI-B place status bit: set when an activity is
	// assigned, cleared after n successive failed steal sweeps.
	active       atomic.Bool
	failedSweeps atomic.Int32

	// lifelineWaiters holds place ids registered on this place's incoming
	// lifelines (LifelineWS only); a bit set per place.
	lifelineWaiters []atomic.Bool

	rrWorker atomic.Uint32 // round-robin target for externally spawned tasks
	wake     chan struct{}
}

func newPlace(rt *Runtime, id int) *place {
	p := &place{
		id:              id,
		rt:              rt,
		lifelineWaiters: make([]atomic.Bool, rt.cfg.Cluster.Places),
		wake:            make(chan struct{}, rt.cfg.Cluster.WorkersPerPlace),
	}
	p.workers = make([]*worker, rt.cfg.Cluster.WorkersPerPlace)
	for i := range p.workers {
		w := &worker{
			place: p,
			local: i,
			rng:   rand.New(rand.NewSource(rt.cfg.Seed + int64(id*1000+i))),
		}
		if rt.cfg.LockFreeDeques {
			w.priv = deque.NewChaseLev[*activity]()
		} else {
			w.priv = &deque.Private[*activity]{}
		}
		if rt.cfg.CacheBlocks > 0 {
			w.cache = cachesim.New(rt.cfg.CacheBlocks)
		}
		p.workers[i] = w
	}
	return p
}

func (p *place) startWorkers() {
	for _, w := range p.workers {
		p.rt.workerWG.Add(1)
		go w.loop()
	}
}

// load captures the Algorithm-1 inputs for task mapping.
func (p *place) load() sched.PlaceLoad {
	running := int(p.running.Load())
	return sched.PlaceLoad{
		Active:     p.active.Load(),
		Spares:     p.rt.cfg.Cluster.WorkersPerPlace - running,
		Size:       running + int(p.queued.Load()),
		MaxThreads: p.rt.cfg.MaxThreads,
	}
}

func (p *place) nextSeq() uint64 { return p.spawnSeq.Add(1) }

// enqueue places a freshly mapped activity in the chosen deque flavour and
// wakes idle workers. Assigning work (re)activates the place (§VI-B).
// spawner, when non-nil and co-located, receives private-target tasks in
// its own deque (X10 help-first: spawned work stays with the spawner until
// stolen).
func (p *place) enqueue(a *activity, target sched.Target, spawner *worker) {
	p.queued.Add(1)
	p.active.Store(true)
	p.failedSweeps.Store(0)
	if target == sched.TargetShared {
		p.shared.Push(a)
		p.serveLifelines()
	} else {
		w := spawner
		if w == nil || w.place != p {
			w = p.workers[int(p.rrWorker.Add(1))%len(p.workers)]
		}
		w.priv.Push(a)
	}
	p.wakeAll()
}

// enqueueStolen inserts tasks obtained by a distributed steal into this
// (thief) place's shared deque so co-located workers can pick them up
// without their own distributed steal (§V-B3).
func (p *place) enqueueStolen(chunk []*activity) {
	for _, a := range chunk {
		p.queued.Add(1)
		p.shared.Push(a)
	}
	p.active.Store(true)
	p.failedSweeps.Store(0)
	p.wakeAll()
}

// wakeAll nudges every idle worker at the place.
func (p *place) wakeAll() {
	for i := 0; i < cap(p.wake); i++ {
		select {
		case p.wake <- struct{}{}:
		default:
			return
		}
	}
}

// serveLifelines pushes surplus shared-deque work to places that have
// registered on this place's lifelines (LifelineWS only).
func (p *place) serveLifelines() {
	if p.rt.cfg.Policy != sched.LifelineWS {
		return
	}
	for q := range p.lifelineWaiters {
		if p.shared.Len() <= 1 {
			return
		}
		if !p.lifelineWaiters[q].Swap(false) {
			continue
		}
		if a, ok := p.shared.Poll(); ok {
			p.queued.Add(-1)
			p.rt.counters.Messages.Add(1)
			p.rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
			p.rt.counters.RemoteSteals.Add(1) // lifeline push counts as a balanced transfer
			p.rt.places[q].enqueueStolen([]*activity{a})
		}
	}
}

// noteFailedSweep records one fully failed work-finding sweep; after n
// consecutive failures (n = workers per place) the place marks itself
// inactive (§VI-B).
func (p *place) noteFailedSweep() {
	n := p.failedSweeps.Add(1)
	if int(n) >= sched.FailedStealQuiesceThreshold(p.rt.cfg.Cluster.WorkersPerPlace) {
		p.active.Store(false)
	}
}

// workerDeque is the private-deque discipline a worker schedules from:
// owner LIFO push/pop plus a FIFO-end steal for co-located thieves. Two
// implementations ship: the mutex-guarded deque.Private (default, the
// observable-lock design the paper reasons about) and the lock-free
// deque.ChaseLev (Config.LockFreeDeques), which bounds the interruption
// a steal inflicts on the victim (§V).
type workerDeque interface {
	Push(*activity)
	Pop() (*activity, bool)
	Steal() (*activity, bool)
	Len() int
}

// worker is one scheduling thread within a place.
type worker struct {
	place *place
	local int // index within the place
	priv  workerDeque
	cache *cachesim.Cache
	rng   *rand.Rand
}

// loop is Algorithm 1 lines 9–29.
func (w *worker) loop() {
	rt := w.place.rt
	defer rt.workerWG.Done()
	for !rt.shutdown.Load() {
		a, how := w.findWork()
		if a == nil {
			w.place.noteFailedSweep()
			rt.counters.FailedSteals.Add(1)
			if rt.cfg.Policy == sched.LifelineWS {
				w.registerLifelines()
			}
			select {
			case <-w.place.wake:
			case <-time.After(rt.cfg.IdlePoll):
			}
			continue
		}
		w.run(a, how)
	}
}

// stealKind says how a task was obtained, for accounting.
type stealKind uint8

const (
	tookOwn stealKind = iota
	tookLocalSteal
	tookSharedLocal
	tookRemote
)

// findWork performs one sweep of the Algorithm-1 work-finding order.
func (w *worker) findWork() (*activity, stealKind) {
	p := w.place
	// 1. Own private deque (line 9).
	if a, ok := w.priv.Pop(); ok {
		p.queued.Add(-1)
		return a, tookOwn
	}
	// 2. Steal from co-located workers' private deques (line 12).
	for off := 1; off < len(p.workers); off++ {
		peer := p.workers[(w.local+off)%len(p.workers)]
		if a, ok := peer.priv.Steal(); ok {
			p.queued.Add(-1)
			return a, tookLocalSteal
		}
	}
	// 3. Local shared deque (line 13).
	if a, ok := p.shared.Poll(); ok {
		p.queued.Add(-1)
		return a, tookSharedLocal
	}
	// 4. Distributed steal (lines 14–29), policy permitting.
	if sched.RemoteStealing(w.place.rt.cfg.Policy) {
		if a := w.stealRemote(); a != nil {
			return a, tookRemote
		}
	}
	return nil, tookOwn
}

// stealRemote sweeps remote places' shared deques in randomized order,
// taking a chunk from the first victim with surplus. The first task is
// returned for execution; the remainder go to the thief place's shared
// deque. Every probe is a request/reply message pair.
func (w *worker) stealRemote() *activity {
	rt := w.place.rt
	chunkSize := sched.RemoteChunk(rt.cfg.Policy)
	for _, v := range sched.VictimOrder(rt.cfg.Policy, w.place.id, len(rt.places), w.rng) {
		victim := rt.places[v]
		rt.counters.RemoteProbes.Add(1)
		rt.counters.Messages.Add(2) // steal-req + steal-resp
		chunk := victim.shared.StealChunk(chunkSize)
		if chunk == nil {
			continue
		}
		victim.queued.Add(-int32(len(chunk)))
		rt.counters.RemoteSteals.Add(int64(len(chunk)))
		var bytes int64
		for _, a := range chunk {
			bytes += int64(a.loc.MigrationBytes)
		}
		rt.counters.BytesTransferred.Add(bytes)
		first := chunk[0]
		if len(chunk) > 1 {
			w.place.enqueueStolen(chunk[1:])
		}
		return first
	}
	return nil
}

// registerLifelines marks this place on its hypercube lifeline neighbours
// (LifelineWS) so they push surplus work here.
func (w *worker) registerLifelines() {
	rt := w.place.rt
	for _, q := range sched.Lifelines(w.place.id, len(rt.places)) {
		neighbour := rt.places[q]
		if !neighbour.lifelineWaiters[w.place.id].Swap(true) {
			rt.counters.Messages.Add(1) // lifeline registration message
		}
		neighbour.serveLifelines()
	}
}

// run executes one activity and performs all the paper's accounting: busy
// time for Fig. 7, migration/cache effects for Tables II–III.
func (w *worker) run(a *activity, how stealKind) {
	rt := w.place.rt
	p := w.place
	p.running.Add(1)
	p.active.Store(true)
	p.failedSweeps.Store(0)

	// Only genuine steals count (Fig. 3): taking a task from a co-located
	// worker's private deque. Polling the own place's shared deque is the
	// designated dequeue path for flexible tasks, not a steal.
	if how == tookLocalSteal {
		rt.counters.LocalSteals.Add(1)
	}
	migrated := p.id != a.home
	if migrated {
		rt.counters.TasksMigrated.Add(1)
		// Remote data references the task performs when run off-home.
		if a.loc.RemoteRefs > 0 {
			rt.counters.RemoteDataAccess.Add(int64(a.loc.RemoteRefs))
			rt.counters.Messages.Add(int64(a.loc.RemoteRefs))
		}
	}
	if w.cache != nil && len(a.loc.Blocks) > 0 {
		hits, misses := w.cache.TouchAll(a.loc.Blocks)
		rt.counters.CacheRefs.Add(int64(hits + misses))
		rt.counters.CacheMisses.Add(int64(misses))
	}

	start := time.Now()
	ctx := &Ctx{rt: rt, placeID: p.id, worker: w, fin: a.fin}
	func() {
		defer a.fin.done()
		defer func() {
			if v := recover(); v != nil {
				a.fin.fail(v)
			}
		}()
		a.body(ctx)
	}()
	rt.util.AddBusy(p.id, time.Since(start).Nanoseconds())
	rt.counters.TasksExecuted.Add(1)
	p.running.Add(-1)
}
