package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/cachesim"
	"distws/internal/deque"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/task"
)

// activity is one schedulable unit of work — the X10 async.
type activity struct {
	body func(*Ctx)
	loc  task.Locality
	home int // programmer-specified place
	fin  *finish
	// kind is the adapt controller's interned id for this activity's
	// locality signature (adaptive policy only; see Runtime.mapClass).
	kind     int32
	interned bool
	// claimed is the dispatch-level dedup for the relaxed queues
	// (multiplicity semantics): whichever taker wins this flag runs the
	// activity; every other take of the same activity is discarded.
	claimed atomic.Bool
}

// place mirrors the paper's Fig. 2: several workers with private deques
// plus one shared deque for locality-flexible tasks, and the place-local
// status object of §VI-B.
type place struct {
	id int
	rt *Runtime

	workers []*worker
	shared  deque.Shared[*activity]

	running  atomic.Int32  // activities currently executing here
	queued   atomic.Int32  // activities queued here (private + shared)
	spawnSeq atomic.Uint64 // per-place spawn counter (DistWS-NS round robin)

	// active is the §VI-B place status bit: set when an activity is
	// assigned, cleared after n successive failed steal sweeps.
	active       atomic.Bool
	failedSweeps atomic.Int32

	// dead marks a fail-stopped place (fault injection): workers exit,
	// thieves exclude it, and queued work is re-homed to survivors.
	dead atomic.Bool
	// draining marks a place departing gracefully (Runtime.DrainPlace):
	// it refuses new steals and spawns re-home, but in-flight activities
	// complete normally; once they have, the place flips to dead.
	draining atomic.Bool
	// executed counts activities completed here, for the fault plan's
	// AfterTasks crash trigger.
	executed atomic.Int64

	// lifelineWaiters holds place ids registered on this place's incoming
	// lifelines (LifelineWS only); a bit set per place.
	lifelineWaiters []atomic.Bool

	rrWorker atomic.Uint32 // round-robin target for externally spawned tasks
	wake     chan struct{}

	// wg tracks this place's live worker goroutines so a heal/join can
	// wait for a crashed generation to fully exit before restarting —
	// worker structs (rng, deque) are reused across generations.
	wg sync.WaitGroup
}

func newPlace(rt *Runtime, id int) *place {
	p := &place{
		id:              id,
		rt:              rt,
		lifelineWaiters: make([]atomic.Bool, rt.cfg.Cluster.Places),
		wake:            make(chan struct{}, rt.cfg.Cluster.WorkersPerPlace),
	}
	p.workers = make([]*worker, rt.cfg.Cluster.WorkersPerPlace)
	for i := range p.workers {
		w := &worker{
			place: p,
			local: i,
			rng:   rand.New(rand.NewSource(rt.cfg.Seed + int64(id*1000+i))),
			priv:  deque.New[*activity](rt.cfg.Deque),
		}
		if rt.receiver {
			// Receiver-initiated mode: each worker owns a fence-free
			// flexible queue; the place's shared deque survives only as a
			// cold-path inbox for cross-place arrivals.
			w.flex = deque.NewRelaxed[*activity]()
		}
		if rt.cfg.CacheBlocks > 0 {
			w.cache = cachesim.New(rt.cfg.CacheBlocks)
		}
		p.workers[i] = w
	}
	return p
}

// queuesEmpty reports whether nothing is queued at the place. The queued
// counter is exact under the strict deque kinds; under the relaxed queues
// duplicate takes make it a heuristic, so drain logic inspects the queues
// themselves.
func (p *place) queuesEmpty() bool {
	if !p.rt.receiver {
		return p.queued.Load() == 0
	}
	if p.shared.Len() != 0 {
		return false
	}
	for _, w := range p.workers {
		if w.priv.Len() != 0 || w.inbox.Len() != 0 || w.flex.Len() != 0 {
			return false
		}
	}
	return true
}

// donatable reports whether any worker's flexible queue holds work a
// receiver-initiated donation could hand out. Remote thieves use this for
// their skip heuristic instead of the queued counter: duplicate takes
// under multiplicity drift that counter (serveMail decrements for a task
// whose other copy was already claimed and decremented), and a negative
// drift would otherwise hide a victim with real backlog from every remote
// thief permanently.
func (p *place) donatable() int {
	n := 0
	for _, w := range p.workers {
		n += w.flex.Len()
	}
	return n
}

func (p *place) startWorkers() {
	for _, w := range p.workers {
		p.rt.workerWG.Add(1)
		p.wg.Add(1)
		go func(w *worker) {
			defer p.wg.Done()
			w.loop()
		}(w)
	}
}

// load captures the Algorithm-1 inputs for task mapping. The queued
// counter can drift negative under the relaxed queues' duplicate takes;
// clamp it so a drifted place does not under-report its Size.
func (p *place) load() sched.PlaceLoad {
	running := int(p.running.Load())
	queued := int(p.queued.Load())
	if queued < 0 {
		queued = 0
	}
	return sched.PlaceLoad{
		Active:     p.active.Load(),
		Spares:     p.rt.cfg.Cluster.WorkersPerPlace - running,
		Size:       running + queued,
		MaxThreads: p.rt.cfg.MaxThreads,
	}
}

func (p *place) nextSeq() uint64 { return p.spawnSeq.Add(1) }

// enqueue places a freshly mapped activity in the chosen deque flavour and
// wakes idle workers. Assigning work (re)activates the place (§VI-B).
// spawner, when non-nil and co-located, receives private-target tasks in
// its own deque (X10 help-first: spawned work stays with the spawner until
// stolen).
func (p *place) enqueue(a *activity, target sched.Target, spawner *worker) {
	p.queued.Add(1)
	p.active.Store(true)
	p.failedSweeps.Store(0)
	if target == sched.TargetShared {
		if w := spawner; p.rt.receiver && w != nil && w.place == p {
			// Receiver-initiated mode, spawn boundary: the spawning owner
			// keeps flexible work in its own fence-free queue and serves
			// any parked steal request — this is the only point where a
			// busy owner communicates with thieves.
			w.flex.Push(a)
			w.serveMail()
		} else {
			p.shared.Push(a)
			p.serveLifelines()
		}
	} else if w := spawner; w != nil && w.place == p {
		// The spawning worker pushes onto its own private deque — the
		// only caller the lock-free kinds' owner-only Push contract
		// admits.
		w.priv.Push(a)
	} else {
		// External submit, cross-place spawn, or re-homed orphan: a
		// foreign Push racing the owner on a ChaseLev/Relaxed priv deque
		// races on bottom and can drop or duplicate tasks, so foreign
		// affinitized arrivals go through a round-robin-chosen worker's
		// mutex-guarded inbox instead.
		w := p.workers[int(p.rrWorker.Add(1))%len(p.workers)]
		w.inbox.Push(a)
	}
	p.wakeAll()
	// A spawn racing the place's crash or drain may land after the
	// respective queue sweep: both paths set their flag before sweeping,
	// so re-checking here and re-sweeping guarantees the activity is not
	// stranded.
	if p.dead.Load() {
		p.rt.rescue(p)
	} else if p.draining.Load() {
		p.rt.offload(p)
	}
}

// enqueueStolen inserts tasks obtained by a distributed steal into this
// (thief) place's shared deque so co-located workers can pick them up
// without their own distributed steal (§V-B3).
func (p *place) enqueueStolen(chunk []*activity) {
	p.rt.record(p.id, 0, obs.KindArrive, -1, int32(len(chunk)), 0)
	for _, a := range chunk {
		p.queued.Add(1)
		p.shared.Push(a)
	}
	p.active.Store(true)
	p.failedSweeps.Store(0)
	p.wakeAll()
	if p.dead.Load() {
		p.rt.rescue(p)
	} else if p.draining.Load() {
		p.rt.offload(p)
	}
}

// wakeAll nudges every idle worker at the place.
func (p *place) wakeAll() {
	for i := 0; i < cap(p.wake); i++ {
		select {
		case p.wake <- struct{}{}:
		default:
			return
		}
	}
}

// serveLifelines pushes surplus shared-deque work to places that have
// registered on this place's lifelines (LifelineWS only). Waiters that
// crashed after registering are dropped rather than served.
func (p *place) serveLifelines() {
	if p.rt.cfg.Policy != sched.LifelineWS {
		return
	}
	for q := range p.lifelineWaiters {
		if p.shared.Len() <= 1 {
			return
		}
		if !p.lifelineWaiters[q].Swap(false) {
			continue
		}
		if p.rt.places[q].dead.Load() || p.rt.places[q].draining.Load() {
			continue
		}
		if a, ok := p.shared.Poll(); ok {
			p.queued.Add(-1)
			p.rt.counters.Messages.Add(1)
			p.rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
			p.rt.counters.RemoteSteals.Add(1) // lifeline push counts as a balanced transfer
			p.rt.places[q].enqueueStolen([]*activity{a})
		}
	}
}

// noteFailedSweep records one fully failed work-finding sweep; after n
// consecutive failures (n = workers per place) the place marks itself
// inactive (§VI-B).
func (p *place) noteFailedSweep() {
	n := p.failedSweeps.Add(1)
	if int(n) >= sched.FailedStealQuiesceThreshold(p.rt.cfg.Cluster.WorkersPerPlace) {
		p.active.Store(false)
	}
}

// donateReq is one receiver-initiated steal request parked in a victim
// worker's mailbox. The reply channel is buffered so the donor's send
// never blocks; an empty donation tells the thief to move on.
type donateReq struct {
	reply chan []*activity
}

// worker is one scheduling thread within a place. priv is the
// private-deque discipline it schedules from — owner LIFO push/pop plus a
// FIFO-end steal for co-located thieves — behind deque.WorkQueue:
// Config.Deque selects the mutex-guarded deque.Private (default, the
// observable-lock design the paper reasons about), the lock-free
// deque.ChaseLev, which bounds the interruption a steal inflicts on the
// victim (§V), or the fence-free deque.Relaxed.
type worker struct {
	place *place
	local int // index within the place
	priv  deque.WorkQueue[*activity]
	// inbox receives affinitized tasks pushed by anyone other than this
	// worker's own goroutine — external submits, cross-place spawns,
	// re-homed orphans. Push/Pop on the lock-free priv kinds are
	// owner-only, so foreign enqueues must not touch priv; the inbox is
	// mutex-guarded and safe from any goroutine. The owner drains it once
	// its own priv is empty, and co-located thieves may steal from it.
	inbox deque.Private[*activity]
	cache *cachesim.Cache
	rng   *rand.Rand
	// victims is sweep-order scratch reused across adaptive remote
	// steals so victim ordering does not allocate per sweep.
	victims []int

	// flex is this worker's fence-free queue of locality-flexible tasks
	// (receiver-initiated mode only, nil otherwise): the owner pushes its
	// flexible spawns here instead of the place's shared deque, co-located
	// thieves steal from it directly, and remote thieves receive halves of
	// it as donations.
	flex *deque.Relaxed[*activity]
	// mail is the worker's steal-request mailbox: an idle remote thief
	// CASes a request in; the owner answers at its next task-spawn or
	// task-completion boundary. At most one request parks at a time.
	mail atomic.Pointer[donateReq]
}

// claim marks a as dispatched exactly once. The relaxed queues may hand a
// task out twice (multiplicity semantics); the loser of the claim discards
// its copy. The strict kinds hand out each task at most once, so the check
// short-circuits to true.
func (w *worker) claim(a *activity) bool {
	rt := w.place.rt
	if !rt.receiver {
		return true
	}
	if a.claimed.CompareAndSwap(false, true) {
		return true
	}
	rt.counters.DuplicateTakes.Add(1)
	rt.record(w.place.id, w.local, obs.KindDupTake, -1, int32(w.place.id), 0)
	return false
}

// serveMail answers a parked steal request by donating half of this
// worker's flexible queue (WSPDR-style steal-half). It runs at the
// receiver-initiated protocol's communication points — task-spawn and
// task-completion boundaries — so a busy owner is never interrupted
// mid-task. An owner with nothing to give replies with an empty donation
// so the thief moves on instead of waiting out its timeout.
func (w *worker) serveMail() {
	if w.mail.Load() == nil {
		return // hot path: one atomic load when no request is parked
	}
	req := w.mail.Swap(nil)
	if req == nil {
		return
	}
	rt := w.place.rt
	var chunk []*activity
	for n := sched.StealHalf(w.flex.Len()); n > 0; n-- {
		a, ok := w.flex.Steal()
		if !ok {
			break
		}
		chunk = append(chunk, a)
	}
	if len(chunk) > 0 {
		w.place.queued.Add(-int32(len(chunk)))
		rt.counters.Donations.Add(1)
		rt.record(w.place.id, w.local, obs.KindDonate, -1, int32(len(chunk)), 0)
	}
	req.reply <- chunk
}

// loop is Algorithm 1 lines 9–29. A worker whose place fail-stops exits
// the loop: the crash model is fail-stop at the next scheduling point.
func (w *worker) loop() {
	rt := w.place.rt
	defer rt.workerWG.Done()
	for !rt.shutdown.Load() && !w.place.dead.Load() {
		a, how := w.findWork()
		if a == nil {
			w.place.noteFailedSweep()
			rt.counters.FailedSteals.Add(1)
			rt.record(w.place.id, w.local, obs.KindStealFail, -1, 0, 0)
			if rt.cfg.Policy == sched.LifelineWS {
				w.registerLifelines()
			}
			select {
			case <-w.place.wake:
			case <-time.After(rt.cfg.IdlePoll):
			}
			continue
		}
		w.run(a, how)
	}
}

// stealKind says how a task was obtained, for accounting.
type stealKind uint8

const (
	tookOwn stealKind = iota
	tookLocalSteal
	tookSharedLocal
	tookRemote
)

// findWork performs one sweep of the Algorithm-1 work-finding order.
func (w *worker) findWork() (*activity, stealKind) {
	p := w.place
	// A dead place schedules nothing: its queues were drained by the
	// crash and survivors own the work now. A draining place starts
	// nothing new — its queue was offloaded and only in-flight
	// activities may finish.
	if p.dead.Load() || p.draining.Load() {
		return nil, tookOwn
	}
	rcv := p.rt.receiver
	if rcv {
		// Task-completion boundary: serve a parked steal request before
		// looking for own work.
		w.serveMail()
	}
	// 1. Own private deque (line 9). The take loops skip claim-losing
	// duplicates from the relaxed queues; under the strict kinds claim is
	// always true and each loop runs at most one full iteration.
	for {
		a, ok := w.priv.Pop()
		if !ok {
			break
		}
		if w.claim(a) {
			p.queued.Add(-1)
			return a, tookOwn
		}
	}
	// 1a. Own inbox: foreign affinitized arrivals (FIFO — oldest first).
	for {
		a, ok := w.inbox.Steal()
		if !ok {
			break
		}
		if w.claim(a) {
			p.queued.Add(-1)
			return a, tookOwn
		}
	}
	// 1b. Own flexible queue (receiver-initiated mode).
	if rcv {
		for {
			a, ok := w.flex.Pop()
			if !ok {
				break
			}
			if w.claim(a) {
				p.queued.Add(-1)
				return a, tookOwn
			}
		}
	}
	// 2. Steal from co-located workers' private deques, inboxes and, in
	// receiver mode, flexible queues (line 12). Affinity is place-level,
	// so a peer's inbox is fair game for a co-located thief.
	for off := 1; off < len(p.workers); off++ {
		peer := p.workers[(w.local+off)%len(p.workers)]
		if a, ok := peer.priv.Steal(); ok && w.claim(a) {
			p.queued.Add(-1)
			p.rt.record(p.id, w.local, obs.KindStealLocal, -1, int32(peer.local), 0)
			return a, tookLocalSteal
		}
		if a, ok := peer.inbox.Steal(); ok && w.claim(a) {
			p.queued.Add(-1)
			p.rt.record(p.id, w.local, obs.KindStealLocal, -1, int32(peer.local), 0)
			return a, tookLocalSteal
		}
		if rcv {
			if a, ok := peer.flex.Steal(); ok && w.claim(a) {
				p.queued.Add(-1)
				p.rt.record(p.id, w.local, obs.KindStealLocal, -1, int32(peer.local), 0)
				return a, tookLocalSteal
			}
		}
	}
	// 3. Local shared deque (line 13) — in receiver mode the cold-path
	// inbox holding cross-place arrivals.
	for {
		a, ok := p.shared.Poll()
		if !ok {
			break
		}
		if w.claim(a) {
			p.queued.Add(-1)
			return a, tookSharedLocal
		}
	}
	// 4. Distributed steal (lines 14–29), policy permitting.
	if sched.RemoteStealing(w.place.rt.cfg.Policy) {
		if a := w.stealRemote(); a != nil {
			return a, tookRemote
		}
	}
	return nil, tookOwn
}

// stealRemote sweeps remote places' shared deques in randomized order,
// taking a chunk from the first victim with surplus. The first task is
// returned for execution; the remainder go to the thief place's shared
// deque. Every probe is a request/reply message pair. Places marked down
// are excluded from the sweep, and a probe lost to an injected link fault
// costs the thief a steal timeout followed by retries under exponential
// backoff with jitter.
func (w *worker) stealRemote() *activity {
	rt := w.place.rt
	if rt.receiver {
		return w.stealRemoteReceiver()
	}
	chunkSize := sched.RemoteChunk(rt.cfg.Policy)
	if rt.ctrl != nil {
		chunkSize = rt.ctrl.Chunk(w.place.id)
	}
	// Acquisition latency (probe round trips, backoff waits, transfer) is
	// only measured when tracing is on or the adapt controller needs it to
	// bias victim selection; the plain path stays clock-free.
	timing := rt.rec != nil || rt.ctrl != nil
	var sweepStart time.Time
	if timing {
		sweepStart = time.Now()
	}
	victims := sched.VictimOrder(rt.cfg.Policy, w.place.id, len(rt.places), w.rng)
	if rt.ctrl != nil {
		w.victims = rt.ctrl.AppendVictimOrder(w.victims[:0], w.place.id, w.rng)
		victims = w.victims
	}
	for _, v := range victims {
		victim := rt.places[v]
		if victim.dead.Load() || victim.draining.Load() {
			continue
		}
		var probeStart time.Time
		if rt.ctrl != nil {
			probeStart = time.Now()
		}
		chunk := w.probeVictim(victim, chunkSize)
		if chunk == nil {
			if rt.ctrl != nil {
				rt.ctrl.ObserveSteal(w.place.id, v, time.Since(probeStart).Nanoseconds(), 0, 0)
			}
			continue
		}
		if rt.ctrl != nil {
			rt.ctrl.ObserveSteal(w.place.id, v, time.Since(probeStart).Nanoseconds(),
				len(chunk), victim.shared.Len())
		}
		victim.queued.Add(-int32(len(chunk)))
		rt.counters.RemoteSteals.Add(int64(len(chunk)))
		if rt.rec != nil {
			rt.rec.Record(w.place.id, w.local, obs.KindStealRemote, -1, int32(v),
				time.Since(sweepStart).Nanoseconds())
		}
		var bytes int64
		for _, a := range chunk {
			bytes += int64(a.loc.MigrationBytes)
		}
		rt.counters.BytesTransferred.Add(bytes)
		first := chunk[0]
		if len(chunk) > 1 {
			w.place.enqueueStolen(chunk[1:])
		}
		return first
	}
	return nil
}

// stealRemoteReceiver is the receiver-initiated counterpart of
// stealRemote (deque.KindRelaxed): instead of reaching into a victim's
// shared deque, the idle thief posts a steal request into one victim
// worker's mailbox and waits for that owner to donate half its flexible
// queue at its next task boundary. The victim's hot path never takes a
// lock on the thief's behalf.
func (w *worker) stealRemoteReceiver() *activity {
	rt := w.place.rt
	timing := rt.rec != nil || rt.ctrl != nil
	var sweepStart time.Time
	if timing {
		sweepStart = time.Now()
	}
	victims := sched.VictimOrder(rt.cfg.Policy, w.place.id, len(rt.places), w.rng)
	if rt.ctrl != nil {
		w.victims = rt.ctrl.AppendVictimOrder(w.victims[:0], w.place.id, w.rng)
		victims = w.victims
	}
	for _, v := range victims {
		victim := rt.places[v]
		if victim.dead.Load() || victim.draining.Load() {
			continue
		}
		if victim.donatable() == 0 {
			continue // nothing to donate; don't park a request for nothing
		}
		var probeStart time.Time
		if rt.ctrl != nil {
			probeStart = time.Now()
		}
		chunk := w.receiverProbe(victim)
		if len(chunk) == 0 {
			if rt.ctrl != nil {
				rt.ctrl.ObserveSteal(w.place.id, v, time.Since(probeStart).Nanoseconds(), 0, 0)
			}
			continue
		}
		if rt.ctrl != nil {
			rt.ctrl.ObserveSteal(w.place.id, v, time.Since(probeStart).Nanoseconds(),
				len(chunk), victim.donatable())
		}
		rt.counters.RemoteSteals.Add(int64(len(chunk)))
		if rt.rec != nil {
			rt.rec.Record(w.place.id, w.local, obs.KindStealRemote, -1, int32(v),
				time.Since(sweepStart).Nanoseconds())
		}
		var bytes int64
		for _, a := range chunk {
			bytes += int64(a.loc.MigrationBytes)
		}
		rt.counters.BytesTransferred.Add(bytes)
		// The first claimable task runs now; the rest go into this
		// worker's own flexible queue (an owner push — no shared
		// structure involved) where co-located workers can steal them.
		p := w.place
		var first *activity
		kept := 0
		for _, a := range chunk {
			if first == nil {
				if w.claim(a) {
					first = a
				}
				continue
			}
			w.flex.Push(a)
			kept++
		}
		if kept > 0 {
			p.queued.Add(int32(kept))
			p.active.Store(true)
			p.failedSweeps.Store(0)
			rt.record(p.id, w.local, obs.KindArrive, -1, int32(kept), 0)
			p.wakeAll()
			if p.dead.Load() {
				rt.rescue(p)
			} else if p.draining.Load() {
				rt.offload(p)
			}
		}
		if first != nil {
			return first
		}
		// Every task in the donation was a duplicate; keep sweeping.
	}
	return nil
}

// receiverProbe runs one receiver-initiated steal round trip: CAS a
// request into a victim worker's mailbox, wake the victim's idle workers,
// and wait for the donation. The same injected-fault vocabulary as
// probeVictim applies — a lost request or reply burns a steal timeout and
// retries under backoff. A mailbox already occupied by another thief
// counts as a failed probe; requests never queue. A request the owner has
// not answered within the steal timeout is withdrawn, unless the owner
// claimed it concurrently, in which case the donation is already in
// flight on the buffered reply channel.
func (w *worker) receiverProbe(victim *place) []*activity {
	rt := w.place.rt
	for attempt := 0; ; attempt++ {
		rt.counters.RemoteProbes.Add(1)
		rt.counters.StealRequests.Add(1)
		rt.counters.Messages.Add(2) // steal-req + donation reply
		rt.record(w.place.id, w.local, obs.KindProbe, -1, int32(victim.id), 0)
		now := rt.nowNS()
		if rt.inj.PartitionedAt(w.place.id, victim.id, now) ||
			rt.inj.Drop(w.place.id, victim.id) || rt.inj.Drop(victim.id, w.place.id) {
			rt.counters.DroppedMessages.Add(1)
			rt.counters.StealTimeouts.Add(1)
			rt.record(w.place.id, w.local, obs.KindTimeout, -1, int32(victim.id), 0)
			if attempt+1 >= rt.cfg.StealMaxAttempts {
				return nil
			}
			rt.counters.Retries.Add(1)
			time.Sleep(backoffJitter(rt.cfg.StealTimeout, attempt, w.rng))
			if victim.dead.Load() || victim.draining.Load() || rt.shutdown.Load() {
				return nil
			}
			continue
		}
		delay := rt.inj.SpikeNS(w.place.id, victim.id) +
			rt.inj.GrayNS(w.place.id, victim.id, now) + rt.inj.GrayNS(victim.id, w.place.id, now)
		if delay > 0 {
			time.Sleep(time.Duration(delay))
		}
		if rt.inj.Duplicate(victim.id, w.place.id) {
			rt.counters.Messages.Add(1)
			rt.counters.DuplicatedMessages.Add(1)
		}
		target := victim.workers[int(victim.rrWorker.Add(1))%len(victim.workers)]
		req := &donateReq{reply: make(chan []*activity, 1)}
		if !target.mail.CompareAndSwap(nil, req) {
			return nil // another thief's request is parked there
		}
		victim.wakeAll() // idle victim workers answer promptly
		select {
		case chunk := <-req.reply:
			return chunk
		case <-time.After(rt.cfg.StealTimeout):
			if target.mail.CompareAndSwap(req, nil) {
				// Withdrawn: the owner never reached a communication
				// boundary in time.
				rt.counters.StealTimeouts.Add(1)
				rt.record(w.place.id, w.local, obs.KindTimeout, -1, int32(victim.id), 0)
				return nil
			}
			return <-req.reply
		case <-rt.stopCh:
			if target.mail.CompareAndSwap(req, nil) {
				return nil
			}
			// The owner claimed the request before we could withdraw it:
			// a donation (already deducted from the victim's accounting)
			// is in flight on the buffered reply. Drain it and re-home
			// the tasks rather than dropping them on the floor.
			if chunk := <-req.reply; len(chunk) > 0 {
				w.place.enqueueStolen(chunk)
			}
			return nil
		}
	}
}

// probeVictim performs the steal request/reply round trip against one
// victim. When fault injection loses the request or the reply, the thief
// waits out one steal timeout, then retries under exponential backoff
// with jitter, up to Config.StealMaxAttempts requests, before giving the
// victim up for this sweep.
func (w *worker) probeVictim(victim *place, chunkSize int) []*activity {
	rt := w.place.rt
	for attempt := 0; ; attempt++ {
		rt.counters.RemoteProbes.Add(1)
		rt.counters.Messages.Add(2) // steal-req + steal-resp
		rt.record(w.place.id, w.local, obs.KindProbe, -1, int32(victim.id), 0)
		now := rt.nowNS()
		if rt.inj.PartitionedAt(w.place.id, victim.id, now) ||
			rt.inj.Drop(w.place.id, victim.id) || rt.inj.Drop(victim.id, w.place.id) {
			// Request or reply lost — to a link fault or an active
			// partition window: the thief burns a timeout and retries.
			rt.counters.DroppedMessages.Add(1)
			rt.counters.StealTimeouts.Add(1)
			rt.record(w.place.id, w.local, obs.KindTimeout, -1, int32(victim.id), 0)
			if attempt+1 >= rt.cfg.StealMaxAttempts {
				return nil
			}
			rt.counters.Retries.Add(1)
			time.Sleep(backoffJitter(rt.cfg.StealTimeout, attempt, w.rng))
			if victim.dead.Load() || victim.draining.Load() || rt.shutdown.Load() {
				return nil
			}
			continue
		}
		// Gray links degrade silently: both directions pay the injected
		// extra latency on top of any spike.
		delay := rt.inj.SpikeNS(w.place.id, victim.id) +
			rt.inj.GrayNS(w.place.id, victim.id, now) + rt.inj.GrayNS(victim.id, w.place.id, now)
		if delay > 0 {
			time.Sleep(time.Duration(delay))
		}
		if rt.inj.Duplicate(victim.id, w.place.id) {
			// The reply arrives twice; dedup absorbs the copy, but the
			// extra message is real traffic.
			rt.counters.Messages.Add(1)
			rt.counters.DuplicatedMessages.Add(1)
		}
		return victim.shared.StealChunk(chunkSize)
	}
}

// backoffJitter returns the wait before retry attempt (0-based): the base
// timeout doubled per attempt, with full jitter in [d/2, d) so racing
// thieves desynchronize.
func backoffJitter(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << attempt
	if d <= 0 {
		return base
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rng.Int63n(half+1))
}

// registerLifelines marks this place on its hypercube lifeline neighbours
// (LifelineWS) so they push surplus work here. A crashed neighbour is
// re-homed: the registration goes to the next surviving place, keeping
// the lifeline graph connected as places fail.
func (w *worker) registerLifelines() {
	rt := w.place.rt
	for _, q := range sched.Lifelines(w.place.id, len(rt.places)) {
		if rt.places[q].dead.Load() || rt.places[q].draining.Load() {
			q = rt.down.NextAlive(q + 1)
			if q < 0 || q == w.place.id {
				continue
			}
		}
		neighbour := rt.places[q]
		if !neighbour.lifelineWaiters[w.place.id].Swap(true) {
			rt.counters.Messages.Add(1) // lifeline registration message
		}
		neighbour.serveLifelines()
	}
}

// run executes one activity and performs all the paper's accounting: busy
// time for Fig. 7, migration/cache effects for Tables II–III.
func (w *worker) run(a *activity, how stealKind) {
	rt := w.place.rt
	p := w.place
	p.running.Add(1)
	p.active.Store(true)
	p.failedSweeps.Store(0)

	// Only genuine steals count (Fig. 3): taking a task from a co-located
	// worker's private deque. Polling the own place's shared deque is the
	// designated dequeue path for flexible tasks, not a steal.
	if how == tookLocalSteal {
		rt.counters.LocalSteals.Add(1)
	}
	migrated := p.id != a.home
	if migrated {
		rt.counters.TasksMigrated.Add(1)
		// Remote data references the task performs when run off-home.
		if a.loc.RemoteRefs > 0 {
			rt.counters.RemoteDataAccess.Add(int64(a.loc.RemoteRefs))
			rt.counters.Messages.Add(int64(a.loc.RemoteRefs))
		}
	}
	if w.cache != nil && len(a.loc.Blocks) > 0 {
		hits, misses := w.cache.TouchAll(a.loc.Blocks)
		rt.counters.CacheRefs.Add(int64(hits + misses))
		rt.counters.CacheMisses.Add(int64(misses))
	}

	rt.record(p.id, w.local, obs.KindTaskStart, -1, int32(a.home), 0)
	start := time.Now()
	ctx := &Ctx{rt: rt, placeID: p.id, worker: w, fin: a.fin}
	func() {
		defer a.fin.done()
		defer func() {
			if v := recover(); v != nil {
				a.fin.fail(v)
			}
		}()
		a.body(ctx)
	}()
	elapsed := time.Since(start).Nanoseconds()
	rt.util.AddBusy(p.id, elapsed)
	rt.record(p.id, w.local, obs.KindTaskEnd, -1, 0, elapsed)
	rt.counters.TasksExecuted.Add(1)
	p.running.Add(-1)

	// Feed the measured service time back to the adapt controller. The
	// in-process runtime has no instrumented data-locality penalty (no
	// hardware counters), so it passes 0 and the controller falls back to
	// the home/away service-time ratio alone.
	if rt.ctrl != nil {
		if flipped, cls := rt.ctrl.ObserveExec(a.kind, migrated, elapsed, 0); flipped {
			rt.counters.Reclassifications.Add(1)
			rt.record(p.id, w.local, obs.KindReclassify, -1, int32(cls), 0)
		}
	}

	// Fault plan: fail-stop this place once it has executed its quota.
	if n, ok := rt.inj.CrashAfterTasks(p.id); ok && p.executed.Add(1) >= n {
		rt.crashPlace(p)
	}
}
