package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"distws/internal/comm"
	"distws/internal/sched"
)

func TestRunContextCompletes(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	defer rt.Shutdown()
	var n atomic.Int32
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := rt.RunContext(ctx, func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			for i := 0; i < 8; i++ {
				c.AsyncAny(i%2, func(*Ctx) { n.Add(1) })
			}
		})
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if n.Load() != 8 {
		t.Fatalf("executed %d, want 8", n.Load())
	}
}

func TestRunContextCancellation(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	defer rt.Shutdown()

	// Already-cancelled context: nothing is spawned.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := rt.RunContext(pre, func(*Ctx) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatalf("body must not run under a cancelled context")
	}

	// Deadline expiring mid-run: RunContext returns promptly with the
	// context error while the stuck activity keeps draining in background.
	release := make(chan struct{})
	done := make(chan struct{})
	ctx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	err := rt.RunContext(ctx, func(*Ctx) {
		<-release
		close(done)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext past deadline = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, should be prompt", elapsed)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("abandoned activity never drained")
	}
}

func TestRunAfterShutdownIsErrShutdown(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	rt.Shutdown()
	if err := rt.Run(func(*Ctx) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Run after Shutdown = %v, want ErrShutdown", err)
	}
	if err := rt.RunContext(context.Background(), func(*Ctx) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("RunContext after Shutdown = %v, want ErrShutdown", err)
	}
}

func TestShutdownContext(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.ShutdownContext(ctx); err != nil {
		t.Fatalf("ShutdownContext: %v", err)
	}
	// Idempotent, including after completion.
	if err := rt.ShutdownContext(ctx); err != nil {
		t.Fatalf("second ShutdownContext: %v", err)
	}
}

func TestShutdownContextDeadline(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	block := make(chan struct{})
	started := make(chan struct{})
	go rt.Run(func(*Ctx) { close(started); <-block })
	<-started
	// A worker is pinned inside an activity, so a tight deadline gives up
	// on the wait — but the stop flag is already delivered.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.ShutdownContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ShutdownContext with pinned worker = %v, want DeadlineExceeded", err)
	}
	close(block)
	// With the activity released the remaining workers exit.
	if err := rt.ShutdownContext(context.Background()); err != nil {
		t.Fatalf("follow-up ShutdownContext: %v", err)
	}
}

func TestConfigRejectsDistributedTransport(t *testing.T) {
	for _, tr := range []comm.Transport{comm.TransportTCPHub, comm.TransportTCPMesh} {
		cfg := testConfig(sched.DistWS, 2, 1)
		cfg.Transport = tr
		if _, err := New(cfg); err == nil {
			t.Fatalf("New with %v should fail: a Runtime is single-process", tr)
		}
	}
	cfg := testConfig(sched.DistWS, 2, 1)
	cfg.Transport = comm.TransportInproc
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("inproc transport must stay accepted: %v", err)
	}
	rt.Shutdown()
}
