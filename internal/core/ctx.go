package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/metrics"
	"distws/internal/task"
)

// finish tracks the X10 finish construct: a counter of outstanding
// activities in the scope, with parent chaining for nested finishes.
// Panics raised by activities in the scope are collected and re-thrown at
// the finish point, mirroring X10's rooted exception model.
type finish struct {
	parent  *finish
	pending atomic.Int64
	doneCh  chan struct{}
	closed  atomic.Bool

	errMu sync.Mutex
	errs  []any
}

func newFinish(parent *finish) *finish {
	return &finish{parent: parent, doneCh: make(chan struct{})}
}

func (f *finish) add(n int64) { f.pending.Add(n) }

func (f *finish) done() {
	if f.pending.Add(-1) == 0 {
		if !f.closed.Swap(true) {
			close(f.doneCh)
		}
	}
}

func (f *finish) fail(v any) {
	f.errMu.Lock()
	f.errs = append(f.errs, v)
	f.errMu.Unlock()
}

// firstErr returns the first collected panic value, or nil.
func (f *finish) firstErr() any {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	if len(f.errs) == 0 {
		return nil
	}
	return f.errs[0]
}

func (f *finish) isDone() bool { return f.pending.Load() == 0 }

// Ctx is the execution context passed to every activity body. It carries
// the current place and the enclosing finish scope, and exposes the APGAS
// spawning operations.
type Ctx struct {
	rt      *Runtime
	placeID int
	worker  *worker // nil inside At bodies executed on a borrowed goroutine
	fin     *finish
}

// Place returns the id of the place this activity is executing at.
func (c *Ctx) Place() int { return c.placeID }

// Places returns the number of places in the runtime.
func (c *Ctx) Places() int { return len(c.rt.places) }

// Home asserts p is a valid place id.
func (c *Ctx) checkPlace(p int) {
	if p < 0 || p >= len(c.rt.places) {
		panic(fmt.Sprintf("core: invalid place %d (have %d places)", p, len(c.rt.places)))
	}
}

// Async spawns a locality-sensitive activity at place p — the X10
// `async (p) S`. It never migrates: it will execute at p.
func (c *Ctx) Async(p int, body func(*Ctx)) {
	c.AsyncLoc(p, task.SensitiveLocality, body)
}

// AsyncAny spawns a locality-flexible activity with home place p — the
// paper's `@AnyPlaceTask async (p) S`. It prefers to run at p but may be
// stolen by any other place when p is saturated.
func (c *Ctx) AsyncAny(p int, body func(*Ctx)) {
	c.AsyncLoc(p, task.FlexibleLocality, body)
}

// AsyncLoc spawns an activity with full locality attributes: class, data
// footprint for the cache model, migration payload size and remote
// reference count for the communication model.
func (c *Ctx) AsyncLoc(p int, loc task.Locality, body func(*Ctx)) {
	c.checkPlace(p)
	if body == nil {
		panic("core: Async with nil body")
	}
	c.fin.add(1)
	c.rt.spawn(&activity{body: body, loc: loc, home: p, fin: c.fin}, c.placeID, c.worker)
}

// Finish runs body and blocks until every activity transitively spawned
// inside it has completed — the X10 `finish { S }`. While waiting, the
// calling worker helps by executing queued tasks, so nested finishes never
// deadlock the pool.
func (c *Ctx) Finish(body func(*Ctx)) {
	inner := newFinish(c.fin)
	inner.add(1) // the body itself
	child := &Ctx{rt: c.rt, placeID: c.placeID, worker: c.worker, fin: inner}
	func() {
		defer inner.done()
		defer func() {
			if v := recover(); v != nil {
				inner.fail(v)
			}
		}()
		body(child)
	}()
	c.waitHelping(inner)
	if v := inner.firstErr(); v != nil {
		// Re-throw at the finish point; the enclosing activity's recovery
		// hands it to *its* finish, so failures climb to Run.
		panic(v)
	}
}

// waitHelping blocks until fin completes, executing other queued work in
// the meantime (help-first semantics of the X10 scheduler). A runtime
// shutdown releases the wait: pending activities in the scope are
// abandoned (the documented Shutdown contract), which keeps a worker
// parked inside a nested finish from deadlocking ShutdownContext after
// its peers — the only ones who could have completed the scope — exited.
func (c *Ctx) waitHelping(fin *finish) {
	if c.worker == nil {
		select {
		case <-fin.doneCh:
		case <-c.rt.stopCh:
		}
		return
	}
	for !fin.isDone() {
		if c.rt.shutdown.Load() {
			return
		}
		a, how := c.worker.findWork()
		if a != nil {
			c.worker.run(a, how)
			continue
		}
		select {
		case <-c.worker.place.wake:
		case <-fin.doneCh:
			return
		case <-c.rt.stopCh:
			return
		case <-time.After(c.rt.cfg.IdlePoll):
		}
	}
}

// At synchronously executes body at place p and returns when it is done —
// the X10 `at (p) S` place-shift. Data conceptually moves with the control
// transfer: the runtime accounts one request and one reply message of
// bytes payload size each way (pass 0 when unknown). The body runs on the
// calling goroutine with the context re-homed to p, which is deadlock-free
// and mirrors X10's blocked-worker semantics.
func (c *Ctx) At(p int, bytes int, body func(*Ctx)) {
	c.checkPlace(p)
	if p != c.placeID {
		c.rt.counters.Messages.Add(2)
		c.rt.counters.BytesTransferred.Add(2 * int64(bytes))
		c.rt.counters.RemoteDataAccess.Add(1)
	}
	shifted := &Ctx{rt: c.rt, placeID: p, worker: nil, fin: c.fin}
	start := time.Now()
	body(shifted)
	c.rt.util.AddBusy(p, time.Since(start).Nanoseconds())
}

// Metrics exposes a snapshot of the runtime counters to activity bodies
// (useful in examples and tests).
func (c *Ctx) Metrics() metrics.Snapshot { return c.rt.counters.Snapshot() }
