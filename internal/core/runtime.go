// Package core implements the DistWS runtime: an APGAS (asynchronous
// partitioned global address space) execution model in the style of X10,
// with places, asyncs, finish, and the paper's selective locality-aware
// distributed work-stealing scheduler.
//
// A Runtime hosts P places, each with W worker goroutines. Every worker
// owns a private LIFO deque for locality-sensitive tasks; every place owns
// one shared FIFO deque for locality-flexible tasks (paper Fig. 2). The
// worker loop follows Algorithm 1: poll the private deque, steal from
// co-located workers, poll the local shared deque, and — policy
// permitting — steal chunks from remote places' shared deques.
//
// The package is wrapped by the public distws facade at the module root;
// see that package for usage examples.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/adapt"
	"distws/internal/comm"
	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/task"
	"distws/internal/topology"
)

// ErrShutdown is returned by Run and RunContext once the runtime has been
// shut down. Match with errors.Is.
var ErrShutdown = errors.New("core: runtime is shut down")

// Config parameterizes a Runtime.
type Config struct {
	// Cluster describes places and workers per place. Defaults to
	// topology.Laptop() when zero.
	Cluster topology.Cluster
	// Transport selects the inter-place message layer. A Runtime hosts all
	// places in one process, so only comm.TransportInproc (the zero value)
	// is accepted here; the distributed transports (tcp-hub, tcp-mesh) are
	// opened with comm.Open and driven by the node layer — see
	// cmd/distws-node.
	Transport comm.Transport
	// Policy selects the scheduling algorithm. Default DistWS.
	Policy sched.Kind
	// MaxThreads is the per-place activity ceiling used by the
	// under-utilization test of Algorithm 1. Defaults to WorkersPerPlace.
	MaxThreads int
	// Seed makes victim selection deterministic for tests. Zero picks 1.
	Seed int64
	// CacheBlocks sets the per-worker modelled L1d capacity in blocks; 0
	// disables cache modelling.
	CacheBlocks int
	// IdlePoll is how long an idle worker sleeps between failed
	// work-finding sweeps. Defaults to 200µs.
	IdlePoll time.Duration
	// LockFreeDeques selects Chase–Lev lock-free private deques instead
	// of the default mutex-guarded ones.
	LockFreeDeques bool
	// Fault injects failures: place crashes after a task count, message
	// loss and latency spikes on the remote-steal path. Nil runs
	// fault-free. A crashed place fail-stops (its workers exit after the
	// activity they are running); queued work is re-homed to survivors.
	Fault *fault.Plan
	// StealTimeout is how long a thief waits before declaring a remote
	// steal round trip lost; it is also the base of the exponential
	// backoff between retries. Defaults to 200µs.
	StealTimeout time.Duration
	// StealMaxAttempts bounds the requests sent to one victim (first try
	// plus backoff retries). Defaults to 3.
	StealMaxAttempts int
	// Recorder, when non-nil, receives per-worker scheduling events
	// (activity start/end, spawns, steal attempts and outcomes, chunk
	// arrivals, crashes) stamped in wall-clock nanoseconds since New.
	// Nil (the default) records nothing and costs one branch per event.
	Recorder *obs.Recorder
	// Adapt, when non-nil and Policy is sched.Adaptive, is the online
	// classification controller driving the run; callers pass one to
	// inspect its learned state after the run. Nil under sched.Adaptive
	// creates a fresh controller with default thresholds. Ignored under
	// other policies.
	Adapt *adapt.Controller
}

func (c Config) withDefaults() Config {
	if c.Cluster.Places == 0 && c.Cluster.WorkersPerPlace == 0 {
		c.Cluster = topology.Laptop()
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = c.Cluster.WorkersPerPlace
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.IdlePoll <= 0 {
		c.IdlePoll = 200 * time.Microsecond
	}
	if c.StealTimeout <= 0 {
		c.StealTimeout = 200 * time.Microsecond
	}
	if c.StealMaxAttempts <= 0 {
		c.StealMaxAttempts = 3
	}
	return c
}

// Runtime is a running APGAS instance. Create with New, release with
// Shutdown.
type Runtime struct {
	cfg      Config
	places   []*place
	counters metrics.Counters
	util     *metrics.Utilization
	rec      *obs.Recorder // scheduling-event recorder (nil = tracing off)
	// ctrl is the adapt feedback controller (non-nil only under
	// sched.Adaptive): it supplies each activity's online classification
	// in place of the annotation, the per-place steal chunk size, and
	// the latency-biased victim order.
	ctrl *adapt.Controller

	// inj evaluates the injected fault plan (nil-safe when fault-free);
	// down records which places have failed, for victim exclusion and
	// re-homing.
	inj  *fault.Injector
	down *fault.DownSet

	shutdown atomic.Bool
	// stopCh is closed by the first Shutdown so blocked RunContext calls
	// unblock with ErrShutdown instead of waiting on a finish that the
	// exiting workers will never complete.
	stopCh   chan struct{}
	workerWG sync.WaitGroup

	started time.Time
}

// New starts a runtime: all worker goroutines are live on return.
func New(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport != comm.TransportInproc {
		return nil, fmt.Errorf("core: transport %v needs one process per place — open it with comm.Open (see cmd/distws-node); a Runtime only runs %v", cfg.Transport, comm.TransportInproc)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !sched.Valid(cfg.Policy) {
		return nil, fmt.Errorf("core: invalid policy %v", cfg.Policy)
	}
	if err := cfg.Fault.Validate(cfg.Cluster.Places); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rt := &Runtime{
		cfg:     cfg,
		util:    metrics.NewUtilization(cfg.Cluster.Places),
		rec:     cfg.Recorder,
		inj:     fault.NewInjector(cfg.Fault),
		down:    fault.NewDownSet(cfg.Cluster.Places),
		stopCh:  make(chan struct{}),
		started: time.Now(),
	}
	if rt.rec != nil {
		rt.rec.Configure(cfg.Cluster.Places, cfg.Cluster.WorkersPerPlace,
			obs.WallClockSince(rt.started), obs.WallNS)
	}
	if cfg.Policy == sched.Adaptive {
		rt.ctrl = cfg.Adapt
		if rt.ctrl == nil {
			rt.ctrl = adapt.New(adapt.Config{Places: cfg.Cluster.Places})
		}
	}
	rt.places = make([]*place, cfg.Cluster.Places)
	for p := range rt.places {
		rt.places[p] = newPlace(rt, p)
	}
	for _, p := range rt.places {
		p.startWorkers()
	}
	return rt, nil
}

// Places returns the number of places.
func (rt *Runtime) Places() int { return len(rt.places) }

// WorkersPerPlace returns the per-place worker count.
func (rt *Runtime) WorkersPerPlace() int { return rt.cfg.Cluster.WorkersPerPlace }

// Policy returns the active scheduling policy.
func (rt *Runtime) Policy() sched.Kind { return rt.cfg.Policy }

// Metrics returns a snapshot of the run's counters.
func (rt *Runtime) Metrics() metrics.Snapshot { return rt.counters.Snapshot() }

// record logs one scheduling event when tracing is on. The nil check is
// the disabled fast path: one predictable branch, no call, no allocation.
func (rt *Runtime) record(place, worker int, k obs.Kind, taskID, arg int32, dur int64) {
	if rt.rec != nil {
		rt.rec.Record(place, worker, k, taskID, arg, dur)
	}
}

// Utilization returns per-place busy fractions since New, in percent.
func (rt *Runtime) Utilization() []float64 {
	elapsed := time.Since(rt.started).Nanoseconds()
	return rt.util.Fractions(elapsed, rt.cfg.Cluster.WorkersPerPlace)
}

// Shutdown stops all workers and waits for them to exit. Pending tasks are
// abandoned; call only after Run has returned. Idempotent.
func (rt *Runtime) Shutdown() { _ = rt.ShutdownContext(context.Background()) }

// ShutdownContext stops all workers and waits for them to exit, bounded by
// ctx. The stop signal is delivered regardless of the outcome; a non-nil
// return (ctx.Err()) only means the wait was abandoned while workers were
// still winding down — they keep exiting in the background and a later
// call waits for the remainder. Idempotent.
func (rt *Runtime) ShutdownContext(ctx context.Context) error {
	if !rt.shutdown.Swap(true) {
		close(rt.stopCh)
		for _, p := range rt.places {
			p.wakeAll()
		}
	}
	done := make(chan struct{})
	go func() {
		rt.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run executes body as the root activity at place 0 and blocks until body
// and everything it transitively spawned have finished (an implicit
// top-level X10 finish).
func (rt *Runtime) Run(body func(*Ctx)) error {
	return rt.RunContext(context.Background(), body)
}

// RunContext is Run bounded by a context: it executes body as the root
// activity at place 0 and blocks until the implicit top-level finish
// completes or ctx is done, whichever comes first. On cancellation it
// returns ctx.Err() immediately, but the activities already spawned are
// not interrupted — they drain in the background on the worker pool, and
// Shutdown still waits for the workers themselves. A runtime that has been
// shut down returns ErrShutdown — including a runtime shut down while the
// run is in flight: the workers exit at their next scheduling point and
// would never complete the finish, so the blocked run unblocks with
// ErrShutdown instead of hanging (distws-run -timeout relies on this).
func (rt *Runtime) RunContext(ctx context.Context, body func(*Ctx)) error {
	if rt.shutdown.Load() {
		return ErrShutdown
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fin := newFinish(nil)
	fin.add(1)
	rt.spawn(&activity{
		body: body,
		loc:  task.SensitiveLocality,
		home: 0,
		fin:  fin,
	}, -1, nil)
	select {
	case <-fin.doneCh:
	case <-rt.stopCh:
		return ErrShutdown
	case <-ctx.Done():
		return ctx.Err()
	}
	if v := fin.firstErr(); v != nil {
		return fmt.Errorf("core: activity panicked: %v", v)
	}
	return nil
}

// spawn enqueues a (per Algorithm 1 lines 1–8). from is the spawning place
// (-1 when spawned from outside the runtime) and spawner the spawning
// worker (nil outside the pool); a cross-place spawn is accounted as one
// message carrying the task payload. A spawn addressed to a crashed place
// is re-homed to the next surviving place.
func (rt *Runtime) spawn(a *activity, from int, spawner *worker) {
	rt.counters.TasksSpawned.Add(1)
	if rt.places[a.home].dead.Load() {
		a.home = rt.down.NextAlive(a.home)
	}
	home := rt.places[a.home]
	rt.record(a.home, 0, obs.KindSpawn, -1, int32(from), 0)
	if from >= 0 && from != a.home {
		rt.counters.Messages.Add(1)
		rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
	}
	target := sched.MapTask(rt.cfg.Policy, rt.mapClass(a), home.load(), home.nextSeq())
	home.enqueue(a, target, spawner)
}

// mapClass resolves the class Algorithm 1 maps an activity by: the
// programmer's annotation, or — under the adaptive policy — the
// controller's learned classification of the activity's kind, interned
// on first sight from observable locality attributes (footprint, remote
// references, migration payload; cost is unknown up front in a real
// runtime and enters the signature as zero).
func (rt *Runtime) mapClass(a *activity) task.Class {
	if rt.ctrl == nil {
		return a.loc.Class
	}
	if !a.interned {
		a.kind = rt.ctrl.Intern(adapt.Signature(0, len(a.loc.Blocks), a.loc.RemoteRefs, a.loc.MigrationBytes))
		a.interned = true
	}
	return rt.ctrl.Classify(a.kind)
}

// crashPlace fail-stops p: its workers exit after the activity they are
// currently running, and every activity queued in its shared or private
// deques is re-homed to surviving places and re-executed there. The
// ordering (mark dead, then drain) together with enqueue's dead re-check
// guarantees no activity is stranded by a racing spawn.
func (rt *Runtime) crashPlace(p *place) {
	if p.dead.Swap(true) {
		return
	}
	rt.down.MarkDown(p.id)
	rt.counters.PlacesLost.Add(1)
	rt.record(p.id, 0, obs.KindCrash, -1, 0, 0)
	p.wakeAll() // idle workers notice the death and exit
	rt.rescue(p)
}

// rescue drains everything queued at the dead place p and re-enqueues it
// at survivors. Idempotent: deque operations hand out each activity at
// most once, so concurrent rescuers cannot duplicate work.
func (rt *Runtime) rescue(p *place) {
	var orphans []*activity
	for {
		a, ok := p.shared.Poll()
		if !ok {
			break
		}
		orphans = append(orphans, a)
	}
	for _, w := range p.workers {
		for {
			a, ok := w.priv.Steal()
			if !ok {
				break
			}
			orphans = append(orphans, a)
		}
	}
	if len(orphans) == 0 {
		return
	}
	p.queued.Add(-int32(len(orphans)))
	for i, a := range orphans {
		rt.counters.TasksReExecuted.Add(1)
		// Recovery ships the task once to its new home.
		rt.counters.Messages.Add(1)
		rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
		a.home = rt.down.NextAlive(p.id + 1 + i)
		home := rt.places[a.home]
		target := sched.MapTask(rt.cfg.Policy, rt.mapClass(a), home.load(), home.nextSeq())
		home.enqueue(a, target, nil)
	}
}

// placeLoad exposes load introspection to white-box tests.
func (rt *Runtime) placeLoad(p int) sched.PlaceLoad { return rt.places[p].load() }
