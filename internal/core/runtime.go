// Package core implements the DistWS runtime: an APGAS (asynchronous
// partitioned global address space) execution model in the style of X10,
// with places, asyncs, finish, and the paper's selective locality-aware
// distributed work-stealing scheduler.
//
// A Runtime hosts P places, each with W worker goroutines. Every worker
// owns a private LIFO deque for locality-sensitive tasks; every place owns
// one shared FIFO deque for locality-flexible tasks (paper Fig. 2). The
// worker loop follows Algorithm 1: poll the private deque, steal from
// co-located workers, poll the local shared deque, and — policy
// permitting — steal chunks from remote places' shared deques.
//
// The package is wrapped by the public distws facade at the module root;
// see that package for usage examples.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/adapt"
	"distws/internal/comm"
	"distws/internal/deque"
	"distws/internal/fault"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/task"
	"distws/internal/topology"
)

// ErrShutdown is returned by Run and RunContext once the runtime has been
// shut down. Match with errors.Is.
var ErrShutdown = errors.New("core: runtime is shut down")

// Config parameterizes a Runtime.
type Config struct {
	// Cluster describes places and workers per place. Defaults to
	// topology.Laptop() when zero.
	Cluster topology.Cluster
	// Transport selects the inter-place message layer. A Runtime hosts all
	// places in one process, so only comm.TransportInproc (the zero value)
	// is accepted here; the distributed transports (tcp-hub, tcp-mesh) are
	// opened with comm.Open and driven by the node layer — see
	// cmd/distws-node.
	Transport comm.Transport
	// Policy selects the scheduling algorithm. Default DistWS.
	Policy sched.Kind
	// MaxThreads is the per-place activity ceiling used by the
	// under-utilization test of Algorithm 1. Defaults to WorkersPerPlace.
	MaxThreads int
	// Seed makes victim selection deterministic for tests. Zero picks 1.
	Seed int64
	// CacheBlocks sets the per-worker modelled L1d capacity in blocks; 0
	// disables cache modelling.
	CacheBlocks int
	// IdlePoll is how long an idle worker sleeps between failed
	// work-finding sweeps. Defaults to 200µs.
	IdlePoll time.Duration
	// Deque selects the worker-queue implementation (deque.Kinds):
	// deque.KindMutex (zero value) is the paper-faithful mutex-guarded
	// deque; deque.KindChaseLev swaps in lock-free Chase–Lev private
	// deques; deque.KindRelaxed selects the fence-free multiplicity
	// queues AND switches remote stealing to the receiver-initiated
	// private-deques protocol — thieves post steal requests into
	// per-worker mailboxes and busy owners donate half their flexible
	// queue at task-spawn boundaries, so no remote thief ever touches a
	// shared structure on the victim's hot path.
	Deque deque.Kind
	// Fault injects failures: place crashes after a task count, message
	// loss and latency spikes on the remote-steal path. Nil runs
	// fault-free. A crashed place fail-stops (its workers exit after the
	// activity they are running); queued work is re-homed to survivors.
	Fault *fault.Plan
	// StealTimeout is how long a thief waits before declaring a remote
	// steal round trip lost; it is also the base of the exponential
	// backoff between retries. Defaults to 200µs.
	StealTimeout time.Duration
	// StealMaxAttempts bounds the requests sent to one victim (first try
	// plus backoff retries). Defaults to 3.
	StealMaxAttempts int
	// Recorder, when non-nil, receives per-worker scheduling events
	// (activity start/end, spawns, steal attempts and outcomes, chunk
	// arrivals, crashes) stamped in wall-clock nanoseconds since New.
	// Nil (the default) records nothing and costs one branch per event.
	Recorder *obs.Recorder
	// Adapt, when non-nil and Policy is sched.Adaptive, is the online
	// classification controller driving the run; callers pass one to
	// inspect its learned state after the run. Nil under sched.Adaptive
	// creates a fresh controller with default thresholds. Ignored under
	// other policies.
	Adapt *adapt.Controller
}

func (c Config) withDefaults() Config {
	if c.Cluster.Places == 0 && c.Cluster.WorkersPerPlace == 0 {
		c.Cluster = topology.Laptop()
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = c.Cluster.WorkersPerPlace
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.IdlePoll <= 0 {
		c.IdlePoll = 200 * time.Microsecond
	}
	if c.StealTimeout <= 0 {
		c.StealTimeout = 200 * time.Microsecond
	}
	if c.StealMaxAttempts <= 0 {
		c.StealMaxAttempts = 3
	}
	return c
}

// Runtime is a running APGAS instance. Create with New, release with
// Shutdown.
type Runtime struct {
	cfg      Config
	places   []*place
	counters metrics.Counters
	util     *metrics.Utilization
	rec      *obs.Recorder // scheduling-event recorder (nil = tracing off)
	// ctrl is the adapt feedback controller (non-nil only under
	// sched.Adaptive): it supplies each activity's online classification
	// in place of the annotation, the per-place steal chunk size, and
	// the latency-biased victim order.
	ctrl *adapt.Controller
	// receiver is true under deque.KindRelaxed: remote stealing runs the
	// receiver-initiated private-deques protocol and every take is
	// claim-checked because the relaxed queues may hand a task out twice.
	receiver bool

	// inj evaluates the injected fault plan (nil-safe when fault-free);
	// down records which places have failed, for victim exclusion and
	// re-homing.
	inj  *fault.Injector
	down *fault.DownSet

	shutdown atomic.Bool
	// stopCh is closed by the first Shutdown so blocked RunContext calls
	// unblock with ErrShutdown instead of waiting on a finish that the
	// exiting workers will never complete.
	stopCh   chan struct{}
	workerWG sync.WaitGroup

	// timers fire the fault plan's wall-clock churn schedule (joins,
	// drains, flap down/up cycles); Shutdown stops any still pending.
	timers []*time.Timer
	// churnMu serializes worker restarts (join/heal) against Shutdown so
	// workerWG.Add never races the final Wait.
	churnMu sync.Mutex

	started time.Time
}

// nowNS is the runtime's wall clock for time-windowed fault decisions,
// measured from New — the same origin the sim's virtual clock uses from
// its t=0, so one Plan drives both.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.started).Nanoseconds() }

// sleepUntil blocks until the runtime clock reaches atNS or the runtime
// shuts down; it reports whether the caller should proceed.
func (rt *Runtime) sleepUntil(atNS int64) bool {
	if d := time.Duration(atNS) - time.Since(rt.started); d > 0 {
		select {
		case <-rt.stopCh:
			return false
		case <-time.After(d):
		}
	}
	return !rt.shutdown.Load()
}

// New starts a runtime: all worker goroutines are live on return.
func New(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport != comm.TransportInproc {
		return nil, fmt.Errorf("core: transport %v needs one process per place — open it with comm.Open (see cmd/distws-node); a Runtime only runs %v", cfg.Transport, comm.TransportInproc)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !sched.Valid(cfg.Policy) {
		return nil, fmt.Errorf("core: invalid policy %v", cfg.Policy)
	}
	if !cfg.Deque.Valid() {
		return nil, fmt.Errorf("core: invalid deque kind %v", cfg.Deque)
	}
	if err := cfg.Fault.Validate(cfg.Cluster.Places); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rt := &Runtime{
		cfg:      cfg,
		receiver: cfg.Deque == deque.KindRelaxed,
		util:     metrics.NewUtilization(cfg.Cluster.Places),
		rec:      cfg.Recorder,
		inj:      fault.NewInjector(cfg.Fault),
		down:     fault.NewDownSet(cfg.Cluster.Places),
		stopCh:   make(chan struct{}),
		started:  time.Now(),
	}
	if rt.rec != nil {
		rt.rec.Configure(cfg.Cluster.Places, cfg.Cluster.WorkersPerPlace,
			obs.WallClockSince(rt.started), obs.WallNS)
	}
	if cfg.Policy == sched.Adaptive {
		rt.ctrl = cfg.Adapt
		if rt.ctrl == nil {
			rt.ctrl = adapt.New(adapt.Config{Places: cfg.Cluster.Places})
		}
	}
	rt.places = make([]*place, cfg.Cluster.Places)
	for p := range rt.places {
		rt.places[p] = newPlace(rt, p)
	}
	// Late joiners from the fault plan start absent: no workers, excluded
	// from homing and victim sweeps until their join instant.
	joining := make(map[int]bool)
	if cfg.Fault != nil {
		for _, j := range cfg.Fault.Joins {
			joining[j.Place] = true
			rt.places[j.Place].dead.Store(true)
			rt.down.MarkDown(j.Place)
		}
	}
	for _, p := range rt.places {
		if !joining[p.id] {
			p.startWorkers()
		}
	}
	if cfg.Fault != nil {
		for _, j := range cfg.Fault.Joins {
			p := rt.places[j.Place]
			rt.timers = append(rt.timers, time.AfterFunc(time.Duration(j.AtNS), func() {
				rt.joinPlace(p)
			}))
		}
		for _, d := range cfg.Fault.Drains {
			p := d.Place
			rt.timers = append(rt.timers, time.AfterFunc(time.Duration(d.AtNS), func() {
				_ = rt.DrainPlace(p)
			}))
		}
		for _, fl := range cfg.Fault.Flaps {
			// One goroutine walks the whole down/up schedule so a late
			// down edge can never land after its own heal (independent
			// timers offer no ordering guarantee).
			p := rt.places[fl.Place]
			fl := fl
			go func() {
				period := fl.DownNS + fl.UpNS
				for i := 0; i < fl.Cycles; i++ {
					at := fl.AtNS + int64(i)*period
					if !rt.sleepUntil(at) {
						return
					}
					rt.crashPlace(p)
					if !rt.sleepUntil(at + fl.DownNS) {
						return
					}
					rt.healPlace(p)
				}
			}()
		}
	}
	return rt, nil
}

// Places returns the number of places.
func (rt *Runtime) Places() int { return len(rt.places) }

// WorkersPerPlace returns the per-place worker count.
func (rt *Runtime) WorkersPerPlace() int { return rt.cfg.Cluster.WorkersPerPlace }

// Policy returns the active scheduling policy.
func (rt *Runtime) Policy() sched.Kind { return rt.cfg.Policy }

// Metrics returns a snapshot of the run's counters.
func (rt *Runtime) Metrics() metrics.Snapshot { return rt.counters.Snapshot() }

// record logs one scheduling event when tracing is on. The nil check is
// the disabled fast path: one predictable branch, no call, no allocation.
func (rt *Runtime) record(place, worker int, k obs.Kind, taskID, arg int32, dur int64) {
	if rt.rec != nil {
		rt.rec.Record(place, worker, k, taskID, arg, dur)
	}
}

// Utilization returns per-place busy fractions since New, in percent.
func (rt *Runtime) Utilization() []float64 {
	elapsed := time.Since(rt.started).Nanoseconds()
	return rt.util.Fractions(elapsed, rt.cfg.Cluster.WorkersPerPlace)
}

// Shutdown stops all workers and waits for them to exit. Pending tasks are
// abandoned; call only after Run has returned. Idempotent.
func (rt *Runtime) Shutdown() { _ = rt.ShutdownContext(context.Background()) }

// ShutdownContext stops all workers and waits for them to exit, bounded by
// ctx. The stop signal is delivered regardless of the outcome; a non-nil
// return (ctx.Err()) only means the wait was abandoned while workers were
// still winding down — they keep exiting in the background and a later
// call waits for the remainder. Idempotent.
func (rt *Runtime) ShutdownContext(ctx context.Context) error {
	rt.churnMu.Lock()
	first := !rt.shutdown.Swap(true)
	rt.churnMu.Unlock()
	if first {
		close(rt.stopCh)
		for _, t := range rt.timers {
			t.Stop()
		}
		for _, p := range rt.places {
			p.wakeAll()
		}
	}
	done := make(chan struct{})
	go func() {
		rt.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run executes body as the root activity at place 0 and blocks until body
// and everything it transitively spawned have finished (an implicit
// top-level X10 finish).
func (rt *Runtime) Run(body func(*Ctx)) error {
	return rt.RunContext(context.Background(), body)
}

// RunContext is Run bounded by a context: it executes body as the root
// activity at place 0 and blocks until the implicit top-level finish
// completes or ctx is done, whichever comes first. On cancellation it
// returns ctx.Err() immediately, but the activities already spawned are
// not interrupted — they drain in the background on the worker pool, and
// Shutdown still waits for the workers themselves. A runtime that has been
// shut down returns ErrShutdown — including a runtime shut down while the
// run is in flight: the workers exit at their next scheduling point and
// would never complete the finish, so the blocked run unblocks with
// ErrShutdown instead of hanging (distws-run -timeout relies on this).
func (rt *Runtime) RunContext(ctx context.Context, body func(*Ctx)) error {
	if rt.shutdown.Load() {
		return ErrShutdown
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fin := newFinish(nil)
	fin.add(1)
	rt.spawn(&activity{
		body: body,
		loc:  task.SensitiveLocality,
		home: 0,
		fin:  fin,
	}, -1, nil)
	select {
	case <-fin.doneCh:
	case <-rt.stopCh:
		return ErrShutdown
	case <-ctx.Done():
		return ctx.Err()
	}
	if v := fin.firstErr(); v != nil {
		return fmt.Errorf("core: activity panicked: %v", v)
	}
	return nil
}

// spawn enqueues a (per Algorithm 1 lines 1–8). from is the spawning place
// (-1 when spawned from outside the runtime) and spawner the spawning
// worker (nil outside the pool); a cross-place spawn is accounted as one
// message carrying the task payload. A spawn addressed to a crashed place
// is re-homed to the next surviving place.
func (rt *Runtime) spawn(a *activity, from int, spawner *worker) {
	rt.counters.TasksSpawned.Add(1)
	if rt.places[a.home].dead.Load() || rt.places[a.home].draining.Load() {
		a.home = rt.down.NextAlive(a.home)
	}
	home := rt.places[a.home]
	rt.record(a.home, 0, obs.KindSpawn, -1, int32(from), 0)
	if from >= 0 && from != a.home {
		rt.counters.Messages.Add(1)
		rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
	}
	target := sched.MapTask(rt.cfg.Policy, rt.mapClass(a), home.load(), home.nextSeq())
	home.enqueue(a, target, spawner)
}

// mapClass resolves the class Algorithm 1 maps an activity by: the
// programmer's annotation, or — under the adaptive policy — the
// controller's learned classification of the activity's kind, interned
// on first sight from observable locality attributes (footprint, remote
// references, migration payload; cost is unknown up front in a real
// runtime and enters the signature as zero).
func (rt *Runtime) mapClass(a *activity) task.Class {
	if rt.ctrl == nil {
		return a.loc.Class
	}
	if !a.interned {
		a.kind = rt.ctrl.Intern(adapt.Signature(0, len(a.loc.Blocks), a.loc.RemoteRefs, a.loc.MigrationBytes))
		a.interned = true
	}
	return rt.ctrl.Classify(a.kind)
}

// crashPlace fail-stops p: its workers exit after the activity they are
// currently running, and every activity queued in its shared or private
// deques is re-homed to surviving places and re-executed there. The
// ordering (mark dead, then drain) together with enqueue's dead re-check
// guarantees no activity is stranded by a racing spawn.
func (rt *Runtime) crashPlace(p *place) {
	if p.dead.Swap(true) {
		return
	}
	rt.down.MarkDown(p.id)
	rt.counters.PlacesLost.Add(1)
	rt.record(p.id, 0, obs.KindCrash, -1, 0, 0)
	p.wakeAll() // idle workers notice the death and exit
	rt.rescue(p)
}

// rescue drains everything queued at the dead place p and re-enqueues it
// at survivors. Idempotent: deque operations hand out each activity at
// most once, so concurrent rescuers cannot duplicate work.
func (rt *Runtime) rescue(p *place) { rt.rehomeQueued(p, true) }

// offload is rescue's graceful twin: the moved activities never started,
// so they count as offloaded rather than re-executed.
func (rt *Runtime) offload(p *place) { rt.rehomeQueued(p, false) }

func (rt *Runtime) rehomeQueued(p *place, reexec bool) {
	var orphans []*activity
	for {
		a, ok := p.shared.Poll()
		if !ok {
			break
		}
		orphans = append(orphans, a)
	}
	for _, w := range p.workers {
		for {
			a, ok := w.priv.Steal()
			if !ok {
				break
			}
			orphans = append(orphans, a)
		}
		for {
			a, ok := w.inbox.Steal()
			if !ok {
				break
			}
			orphans = append(orphans, a)
		}
		if w.flex != nil {
			for {
				a, ok := w.flex.Steal()
				if !ok {
					break
				}
				orphans = append(orphans, a)
			}
		}
	}
	if len(orphans) == 0 {
		return
	}
	if rt.receiver {
		// Relaxed queues may hand an activity out twice under concurrent
		// drains; dedup the orphan list so nothing is double-homed. (The
		// claim check would still keep execution exactly-once, but the
		// re-homing counters and queue accounting should see each task
		// once.)
		seen := make(map[*activity]bool, len(orphans))
		uniq := orphans[:0]
		for _, a := range orphans {
			if !seen[a] {
				seen[a] = true
				uniq = append(uniq, a)
			}
		}
		orphans = uniq
	}
	p.queued.Add(-int32(len(orphans)))
	for i, a := range orphans {
		if reexec {
			rt.counters.TasksReExecuted.Add(1)
		} else {
			rt.counters.TasksOffloaded.Add(1)
		}
		// Recovery ships the task once to its new home.
		rt.counters.Messages.Add(1)
		rt.counters.BytesTransferred.Add(int64(a.loc.MigrationBytes))
		a.home = rt.down.NextAlive(p.id + 1 + i)
		home := rt.places[a.home]
		target := sched.MapTask(rt.cfg.Policy, rt.mapClass(a), home.load(), home.nextSeq())
		home.enqueue(a, target, nil)
	}
}

// joinPlace brings an absent (late-joining) place into the cluster: its
// workers start and acquire work by stealing, and spawns may be homed
// there from now on.
func (rt *Runtime) joinPlace(p *place) {
	rt.churnMu.Lock()
	defer rt.churnMu.Unlock()
	if rt.shutdown.Load() || !p.dead.Load() {
		return
	}
	p.wg.Wait() // let any previous worker generation exit fully
	rt.down.Revive(p.id)
	p.draining.Store(false)
	p.dead.Store(false)
	rt.counters.MembershipJoins.Add(1)
	rt.record(p.id, 0, obs.KindJoin, -1, 1, 0)
	p.startWorkers()
}

// healPlace recovers a flapped place: the outage was a crash (queued work
// was re-homed and re-executed), but the place rejoins with fresh workers
// instead of staying evicted, and steals its way back in.
func (rt *Runtime) healPlace(p *place) {
	rt.churnMu.Lock()
	defer rt.churnMu.Unlock()
	if rt.shutdown.Load() || !p.dead.Load() {
		return
	}
	p.wg.Wait() // let the crashed worker generation exit fully
	rt.down.Revive(p.id)
	p.draining.Store(false)
	p.dead.Store(false)
	rt.counters.MembershipRejoins.Add(1)
	rt.record(p.id, 0, obs.KindHeal, -1, int32(p.id), 0)
	p.startWorkers()
}

// DrainPlace gracefully removes place p from the runtime: the place stops
// accepting new work (spawns re-home, thieves exclude it), its
// queued-but-unstarted activities are offloaded to survivors (counted as
// TasksOffloaded — nothing is re-executed), and the call blocks until the
// activities already running there have finished, at which point the
// place's workers exit. Draining the last available place is refused.
func (rt *Runtime) DrainPlace(pid int) error {
	if rt.shutdown.Load() {
		return ErrShutdown
	}
	if pid < 0 || pid >= len(rt.places) {
		return fmt.Errorf("core: DrainPlace(%d) of %d places", pid, len(rt.places))
	}
	alive := 0
	for _, q := range rt.places {
		if !q.dead.Load() && !q.draining.Load() {
			alive++
		}
	}
	p := rt.places[pid]
	if p.dead.Load() {
		return fmt.Errorf("core: place %d is down", pid)
	}
	if p.draining.Swap(true) {
		return nil // already draining
	}
	if alive <= 1 {
		p.draining.Store(false)
		return fmt.Errorf("core: cannot drain place %d: no other place available", pid)
	}
	// From here on spawns and steals avoid p; mark it down for re-homing
	// (NextAlive skips it) before moving its queue so no activity bounces
	// back.
	rt.down.MarkDown(pid)
	rt.counters.MembershipDrains.Add(1)
	rt.record(pid, 0, obs.KindDrain, -1, int32(p.queued.Load()), 0)
	rt.offload(p)
	// Wait for in-flight activities to finish, then release the workers.
	// Two consecutive idle observations close the window where a worker
	// has dequeued an activity but not yet marked itself running.
	for idle := 0; idle < 2; {
		if rt.shutdown.Load() {
			return ErrShutdown
		}
		if p.running.Load() == 0 && p.queuesEmpty() {
			idle++
		} else {
			idle = 0
			rt.offload(p) // a racing spawn may have slipped in
		}
		time.Sleep(time.Millisecond)
	}
	p.dead.Store(true)
	p.wakeAll()
	return nil
}

// placeLoad exposes load introspection to white-box tests.
func (rt *Runtime) placeLoad(p int) sched.PlaceLoad { return rt.places[p].load() }
