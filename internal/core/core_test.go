package core

import (
	"sync/atomic"
	"testing"
	"time"

	"distws/internal/deque"
	"distws/internal/sched"
	"distws/internal/task"
	"distws/internal/topology"
)

func testConfig(policy sched.Kind, places, workers int) Config {
	return Config{
		Cluster: topology.Cluster{Places: places, WorkersPerPlace: workers},
		Policy:  policy,
		Seed:    42,
		// Short poll so tests converge quickly even on one CPU.
		IdlePoll: 50 * time.Microsecond,
	}
}

func mustNew(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestRunSimpleBody(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	var ran atomic.Bool
	if err := rt.Run(func(ctx *Ctx) {
		if ctx.Place() != 0 {
			t.Errorf("root activity at place %d, want 0", ctx.Place())
		}
		ran.Store(true)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran.Load() {
		t.Fatalf("body did not run")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Cluster: topology.Cluster{Places: -1, WorkersPerPlace: 1}}); err == nil {
		t.Fatalf("negative places should be rejected")
	}
	if _, err := New(Config{Cluster: topology.Cluster{Places: 1, WorkersPerPlace: 1}, Policy: sched.Kind(99)}); err == nil {
		t.Fatalf("invalid policy should be rejected")
	}
}

func TestSensitiveTasksRunAtHomePlace(t *testing.T) {
	const places = 4
	rt := mustNew(t, testConfig(sched.DistWS, places, 2))
	var wrong atomic.Int32
	var count atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(ctx *Ctx) {
			for p := 0; p < places; p++ {
				for i := 0; i < 8; i++ {
					home := p
					ctx.Async(home, func(c *Ctx) {
						count.Add(1)
						if c.Place() != home {
							wrong.Add(1)
						}
					})
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := count.Load(); got != places*8 {
		t.Fatalf("executed %d tasks, want %d", got, places*8)
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d locality-sensitive tasks ran away from home", wrong.Load())
	}
	if m := rt.Metrics(); m.TasksMigrated != 0 {
		t.Fatalf("TasksMigrated = %d for all-sensitive workload under DistWS", m.TasksMigrated)
	}
}

func TestX10WSNeverStealsRemotely(t *testing.T) {
	rt := mustNew(t, testConfig(sched.X10WS, 2, 1))
	var count atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(ctx *Ctx) {
			for i := 0; i < 32; i++ {
				ctx.AsyncAny(0, func(*Ctx) {
					count.Add(1)
					time.Sleep(time.Millisecond)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := rt.Metrics()
	if count.Load() != 32 {
		t.Fatalf("executed %d, want 32", count.Load())
	}
	if m.RemoteSteals != 0 || m.TasksMigrated != 0 {
		t.Fatalf("X10WS stole remotely: steals=%d migrated=%d", m.RemoteSteals, m.TasksMigrated)
	}
}

func TestDistWSMigratesFlexibleTasksUnderImbalance(t *testing.T) {
	// One worker per place; all work spawned at place 0. The flexible
	// tasks land in place 0's shared deque (it is saturated by the root)
	// and place 1's idle worker must steal some of them.
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	var count atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(ctx *Ctx) {
			for i := 0; i < 64; i++ {
				ctx.AsyncAny(0, func(*Ctx) {
					count.Add(1)
					time.Sleep(500 * time.Microsecond)
				})
			}
			// Keep the root worker busy so place 0 stays saturated while
			// the asyncs are queued.
			time.Sleep(5 * time.Millisecond)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 64 {
		t.Fatalf("executed %d, want 64", count.Load())
	}
	m := rt.Metrics()
	if m.RemoteSteals == 0 {
		t.Fatalf("expected remote steals under imbalance, got none (metrics: %v)", m)
	}
	if m.TasksMigrated == 0 {
		t.Fatalf("expected migrated tasks, got none")
	}
	if m.Messages == 0 {
		t.Fatalf("remote steals should produce messages")
	}
}

func TestDistWSSensitiveNeverMigratesEvenUnderImbalance(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	var wrong atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(ctx *Ctx) {
			for i := 0; i < 32; i++ {
				ctx.Async(0, func(c *Ctx) {
					if c.Place() != 0 {
						wrong.Add(1)
					}
					time.Sleep(200 * time.Microsecond)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d sensitive tasks migrated", wrong.Load())
	}
}

func TestDistWSNSMigratesAnything(t *testing.T) {
	// Non-selective: sensitive tasks mapped to shared deques round robin
	// may be stolen by the other place.
	rt := mustNew(t, testConfig(sched.DistWSNS, 2, 1))
	var migrated atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(ctx *Ctx) {
			for i := 0; i < 64; i++ {
				ctx.Async(0, func(c *Ctx) {
					if c.Place() != 0 {
						migrated.Add(1)
					}
					time.Sleep(500 * time.Microsecond)
				})
			}
			time.Sleep(5 * time.Millisecond)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if migrated.Load() == 0 {
		t.Fatalf("DistWS-NS should migrate sensitive tasks under imbalance")
	}
}

func TestNestedFinish(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	var order []string
	err := rt.Run(func(ctx *Ctx) {
		var inner atomic.Int32
		ctx.Finish(func(ctx *Ctx) {
			for i := 0; i < 10; i++ {
				ctx.AsyncAny(1, func(c *Ctx) {
					c.Finish(func(c2 *Ctx) {
						for j := 0; j < 3; j++ {
							c2.Async(c2.Place(), func(*Ctx) { inner.Add(1) })
						}
					})
				})
			}
		})
		if inner.Load() != 30 {
			t.Errorf("inner tasks after outer finish = %d, want 30", inner.Load())
		}
		order = append(order, "after-finish")
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 1 {
		t.Fatalf("finish did not complete")
	}
}

func TestRecursiveSpawnDoesNotDeadlock(t *testing.T) {
	// Fibonacci-style recursion with nested finishes exercises helping:
	// with only 2 workers, blocked finishes must execute queued children.
	rt := mustNew(t, testConfig(sched.DistWS, 1, 2))
	var fib func(ctx *Ctx, n int) int
	fib = func(ctx *Ctx, n int) int {
		if n < 2 {
			return n
		}
		var a, b int
		ctx.Finish(func(c *Ctx) {
			c.Async(c.Place(), func(c2 *Ctx) { a = fib(c2, n-1) })
			b = fib(c, n-2)
		})
		return a + b
	}
	var got int
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.Run(func(ctx *Ctx) { got = fib(ctx, 10) })
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("deadlocked")
	}
	if got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestPanicPropagatesToRun(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			c.Async(1, func(*Ctx) { panic("boom") })
		})
	})
	if err == nil {
		t.Fatalf("panic in activity should surface from Run")
	}
}

func TestAtShiftsPlaceAndCounts(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 3, 1))
	var seen atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.At(2, 128, func(c *Ctx) {
			seen.Store(int32(c.Place()))
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen.Load() != 2 {
		t.Fatalf("At body saw place %d, want 2", seen.Load())
	}
	m := rt.Metrics()
	if m.Messages < 2 || m.BytesTransferred < 256 || m.RemoteDataAccess != 1 {
		t.Fatalf("At accounting wrong: %v", m)
	}
}

func TestAtSamePlaceIsFree(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	err := rt.Run(func(ctx *Ctx) {
		ctx.At(0, 1024, func(*Ctx) {})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Note: idle workers at other places probe for steals, so Messages is
	// nonzero even here; same-place At must not add remote data accesses.
	if m := rt.Metrics(); m.RemoteDataAccess != 0 {
		t.Fatalf("same-place At counted %d remote accesses, want 0", m.RemoteDataAccess)
	}
}

func TestAsyncLocAccountsCacheAndRemoteRefs(t *testing.T) {
	cfg := testConfig(sched.DistWS, 2, 1)
	cfg.CacheBlocks = 16
	rt := mustNew(t, cfg)
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			loc := task.Locality{
				Class:  task.Sensitive,
				Blocks: []uint64{1, 2, 3, 1}, // 3 cold misses + 1 hit
			}
			c.AsyncLoc(0, loc, func(*Ctx) {})
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := rt.Metrics()
	if m.CacheRefs != 4 {
		t.Fatalf("CacheRefs = %d, want 4", m.CacheRefs)
	}
	if m.CacheMisses < 3 {
		t.Fatalf("CacheMisses = %d, want >= 3", m.CacheMisses)
	}
}

func TestSpawnedEqualsExecuted(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < 100; i++ {
				c.AsyncAny(i%2, func(*Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := rt.Metrics()
	if m.TasksSpawned != m.TasksExecuted {
		t.Fatalf("spawned %d != executed %d", m.TasksSpawned, m.TasksExecuted)
	}
}

func TestAsyncInvalidPlacePanics(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			c.Async(7, func(*Ctx) {})
		})
	})
	if err == nil {
		t.Fatalf("Async to invalid place should fail the run")
	}
}

func TestAsyncNilBodyPanics(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	if err := rt.Run(func(ctx *Ctx) { ctx.Async(0, nil) }); err == nil {
		t.Fatalf("nil body should fail the run")
	}
}

func TestShutdownIdempotentAndRunAfterShutdown(t *testing.T) {
	rt, err := New(testConfig(sched.DistWS, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	rt.Shutdown() // must not hang or panic
	if err := rt.Run(func(*Ctx) {}); err == nil {
		t.Fatalf("Run after Shutdown should error")
	}
}

func TestSequentialRunsReuseRuntime(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 2))
	for i := 0; i < 3; i++ {
		var n atomic.Int32
		err := rt.Run(func(ctx *Ctx) {
			ctx.Finish(func(c *Ctx) {
				for j := 0; j < 10; j++ {
					c.AsyncAny(j%2, func(*Ctx) { n.Add(1) })
				}
			})
		})
		if err != nil {
			t.Fatalf("Run #%d: %v", i, err)
		}
		if n.Load() != 10 {
			t.Fatalf("Run #%d executed %d, want 10", i, n.Load())
		}
	}
}

func TestPlaceLoadIdleAfterFailedSweeps(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	// Let workers spin with no work: they must mark the place inactive.
	deadline := time.After(5 * time.Second)
	for rt.placeLoad(1).Active {
		select {
		case <-deadline:
			t.Fatalf("place 1 never went inactive")
		case <-time.After(time.Millisecond):
		}
	}
	load := rt.placeLoad(1)
	if load.Spares != 1 || load.Size != 0 {
		t.Fatalf("idle load = %+v", load)
	}
}

func TestLifelinePolicyCompletesAndBalances(t *testing.T) {
	rt := mustNew(t, testConfig(sched.LifelineWS, 4, 1))
	var count atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < 64; i++ {
				c.AsyncAny(0, func(*Ctx) {
					count.Add(1)
					time.Sleep(300 * time.Microsecond)
				})
			}
			time.Sleep(3 * time.Millisecond)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 64 {
		t.Fatalf("executed %d, want 64", count.Load())
	}
	if m := rt.Metrics(); m.RemoteSteals == 0 {
		t.Fatalf("lifeline runtime should transfer work across places")
	}
}

func TestRandomWSCompletes(t *testing.T) {
	rt := mustNew(t, testConfig(sched.RandomWS, 3, 1))
	var count atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < 48; i++ {
				c.Async(i%3, func(*Ctx) { count.Add(1) })
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 48 {
		t.Fatalf("executed %d, want 48", count.Load())
	}
}

func TestUtilizationRecorded(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for p := 0; p < 2; p++ {
				c.Async(p, func(*Ctx) { time.Sleep(2 * time.Millisecond) })
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	u := rt.Utilization()
	if len(u) != 2 {
		t.Fatalf("utilization has %d places, want 2", len(u))
	}
	for p, f := range u {
		if f <= 0 {
			t.Fatalf("place %d has zero utilization: %v", p, u)
		}
	}
}

// TestDequeKindsRunCorrectly runs the same mixed sensitive/flexible
// workload under every worker-queue kind: the lock-free and fence-free
// queues must execute every task exactly once — for relaxed, that is the
// claim-based dedup absorbing any duplicate takes.
func TestDequeKindsRunCorrectly(t *testing.T) {
	for _, k := range deque.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			cfg := testConfig(sched.DistWS, 2, 2)
			cfg.Deque = k
			rt := mustNew(t, cfg)
			var count atomic.Int32
			err := rt.Run(func(ctx *Ctx) {
				ctx.Finish(func(c *Ctx) {
					for i := 0; i < 200; i++ {
						c.AsyncAny(i%2, func(*Ctx) { count.Add(1) })
						c.Async(i%2, func(*Ctx) { count.Add(1) })
					}
				})
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if count.Load() != 400 {
				t.Fatalf("executed %d, want 400", count.Load())
			}
			m := rt.Metrics()
			if m.TasksExecuted != 401 { // 400 spawned + the root activity
				t.Fatalf("TasksExecuted = %d, want 401 (duplicates must not execute)", m.TasksExecuted)
			}
		})
	}
}

// TestReceiverInitiatedStealing grows a recursive flexible fan-out from
// place 0 under the relaxed deques. Spawning from inside running tasks
// keeps the place saturated (Algorithm 1 maps flexible spawns to the
// stealable queues only when no worker is spare), so the surplus lands
// in the spawners' fence-free flexible queues — which remote places can
// only acquire through the receiver-initiated protocol: post a mailbox
// request, receive a steal-half donation. A one-shot burst from the root
// would not do: the root outruns its sibling worker, every load sample
// sees a spare, and all work stays private. Completion plus the protocol
// counters prove the request/donate round trip delivers work.
func TestReceiverInitiatedStealing(t *testing.T) {
	cfg := testConfig(sched.DistWS, 4, 2)
	cfg.Deque = deque.KindRelaxed
	rt := mustNew(t, cfg)
	var count atomic.Int32
	var spawn func(c *Ctx, depth int)
	spawn = func(c *Ctx, depth int) {
		count.Add(1)
		time.Sleep(10 * time.Microsecond)
		if depth == 0 {
			return
		}
		for i := 0; i < 2; i++ {
			d := depth - 1
			c.AsyncAny(c.Place(), func(c *Ctx) { spawn(c, d) })
		}
	}
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) { spawn(c, 9) }) // 2^10-1 = 1023 tasks
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 1023 {
		t.Fatalf("executed %d, want 1023", count.Load())
	}
	m := rt.Metrics()
	if m.TasksExecuted != 1023 {
		t.Fatalf("TasksExecuted = %d, want 1023 (dedup must absorb duplicate takes)", m.TasksExecuted)
	}
	if m.StealRequests == 0 {
		t.Fatal("no receiver-initiated steal requests were posted")
	}
	if m.Donations == 0 || m.RemoteSteals == 0 {
		t.Fatalf("no donations served (donations=%d remoteSteals=%d)", m.Donations, m.RemoteSteals)
	}
}

func TestInvalidDequeKindRejected(t *testing.T) {
	cfg := testConfig(sched.DistWS, 2, 2)
	cfg.Deque = deque.Kind(99)
	if _, err := New(cfg); err == nil {
		t.Fatal("New should reject an invalid deque kind")
	}
}

func TestLockFreeRecursionDoesNotDeadlock(t *testing.T) {
	cfg := testConfig(sched.DistWS, 1, 2)
	cfg.Deque = deque.KindChaseLev
	rt := mustNew(t, cfg)
	var fib func(ctx *Ctx, n int) int
	fib = func(ctx *Ctx, n int) int {
		if n < 2 {
			return n
		}
		var a, b int
		ctx.Finish(func(c *Ctx) {
			c.Async(c.Place(), func(c2 *Ctx) { a = fib(c2, n-1) })
			b = fib(c, n-2)
		})
		return a + b
	}
	var got int
	if err := rt.Run(func(ctx *Ctx) { got = fib(ctx, 12) }); err != nil {
		t.Fatal(err)
	}
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

func TestAtInsideFinishCountsTowardIt(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 3, 1))
	var order []int
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			c.At(1, 64, func(c2 *Ctx) {
				order = append(order, c2.Place())
				c2.At(2, 64, func(c3 *Ctx) {
					order = append(order, c3.Place())
				})
			})
		})
		order = append(order, ctx.Place())
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("At nesting order = %v, want [1 2 0]", order)
	}
	if m := rt.Metrics(); m.RemoteDataAccess != 2 {
		t.Fatalf("RemoteDataAccess = %d, want 2", m.RemoteDataAccess)
	}
}

func TestAsyncFromAtShiftedContext(t *testing.T) {
	// Spawning from inside an At body must home tasks correctly even
	// though the goroutine is borrowed (worker == nil).
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	var ran atomic.Int32
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			c.At(1, 0, func(c2 *Ctx) {
				c2.Async(1, func(c3 *Ctx) {
					if c3.Place() != 1 {
						t.Errorf("task ran at place %d, want 1", c3.Place())
					}
					ran.Add(1)
				})
			})
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("task spawned from At did not run")
	}
}

func TestUtilizationVectorLength(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 5, 1))
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Utilization()); got != 5 {
		t.Fatalf("Utilization has %d entries, want 5", got)
	}
}

func TestCtxMetricsVisibleToActivities(t *testing.T) {
	rt := mustNew(t, testConfig(sched.DistWS, 2, 1))
	var spawned int64
	err := rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < 5; i++ {
				c.Async(0, func(*Ctx) {})
			}
		})
		spawned = ctx.Metrics().TasksSpawned
	})
	if err != nil {
		t.Fatal(err)
	}
	if spawned < 6 { // root + 5
		t.Fatalf("Metrics().TasksSpawned = %d, want >= 6", spawned)
	}
}
