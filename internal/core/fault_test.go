package core

import (
	"sync/atomic"
	"testing"
	"time"

	"distws/internal/fault"
	"distws/internal/sched"
	"distws/internal/topology"
)

// chaosSum runs n small activities spread over all places under cfg and
// checks that every one of them executed exactly once — the recovery
// invariant: a crash may move work, never lose or duplicate it.
func chaosSum(t *testing.T, cfg Config, n int) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sum atomic.Int64
	var count atomic.Int64
	err = rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < n; i++ {
				i := i
				home := i % c.Places()
				spawn := c.AsyncAny
				if cfg.Policy == sched.X10WS {
					spawn = c.Async
				}
				spawn(home, func(*Ctx) {
					time.Sleep(20 * time.Microsecond)
					sum.Add(int64(i))
					count.Add(1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(n) * int64(n-1) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d (count=%d of %d)", got, want, count.Load(), n)
	}
	if got := count.Load(); got != int64(n) {
		t.Fatalf("executed %d activities, want %d", got, n)
	}
	return rt
}

func chaosCluster() topology.Cluster {
	return topology.Cluster{Places: 4, WorkersPerPlace: 2}
}

func TestCrashedPlaceWorkIsReExecuted(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Crashes: []fault.Crash{{Place: 1, AfterTasks: 3}},
		},
	}, 400)
	defer rt.Shutdown()
	s := rt.Metrics()
	if s.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", s.PlacesLost)
	}
	if s.TasksReExecuted == 0 {
		t.Fatalf("a loaded place crashed; queued tasks should be re-executed")
	}
}

func TestCrashUnderX10WSStillCompletes(t *testing.T) {
	// X10WS never migrates tasks in steady state, but fail-stop recovery
	// must still re-home a crashed place's queues.
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.X10WS,
		Seed:    7,
		Fault: &fault.Plan{
			Crashes: []fault.Crash{{Place: 2, AfterTasks: 3}},
		},
	}, 400)
	defer rt.Shutdown()
	s := rt.Metrics()
	if s.PlacesLost != 1 || s.TasksReExecuted == 0 {
		t.Fatalf("recovery counters: placesLost=%d reExecuted=%d", s.PlacesLost, s.TasksReExecuted)
	}
}

func TestLossySteals(t *testing.T) {
	// All work homed at place 0: remote thieves must steal through a
	// lossy fabric, so timeouts, retries, and drops accumulate while the
	// result stays exact.
	rt, err := New(Config{
		Cluster:      chaosCluster(),
		Policy:       sched.DistWS,
		Seed:         7,
		StealTimeout: 20 * time.Microsecond,
		Fault:        &fault.Plan{Seed: 3, DropProb: 0.3},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()
	const n = 300
	var count atomic.Int64
	err = rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			for i := 0; i < n; i++ {
				c.AsyncAny(0, func(*Ctx) {
					time.Sleep(20 * time.Microsecond)
					count.Add(1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != n {
		t.Fatalf("executed %d of %d under loss", count.Load(), n)
	}
	s := rt.Metrics()
	if s.DroppedMessages == 0 || s.StealTimeouts == 0 {
		t.Fatalf("30%% loss recorded no faults: %v", s)
	}
	if s.Retries == 0 {
		t.Fatalf("timeouts should be retried with backoff: %v", s)
	}
}

func TestCrashWithLifelines(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.LifelineWS,
		Seed:    7,
		Fault: &fault.Plan{
			Crashes: []fault.Crash{{Place: 3, AfterTasks: 2}},
		},
	}, 300)
	defer rt.Shutdown()
	if s := rt.Metrics(); s.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", s.PlacesLost)
	}
}

func TestSpawnToDeadPlaceIsRehomed(t *testing.T) {
	rt, err := New(Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Crashes: []fault.Crash{{Place: 1, AfterTasks: 1}},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()
	var ran atomic.Int64
	err = rt.Run(func(ctx *Ctx) {
		ctx.Finish(func(c *Ctx) {
			// Feed place 1 its crash quota, then keep spawning at it: the
			// later spawns must be re-homed, not stranded.
			for i := 0; i < 50; i++ {
				c.Async(1, func(*Ctx) {
					time.Sleep(10 * time.Microsecond)
					ran.Add(1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("executed %d of 50", ran.Load())
	}
	if s := rt.Metrics(); s.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", s.PlacesLost)
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	_, err := New(Config{
		Cluster: chaosCluster(),
		Fault:   &fault.Plan{Crashes: []fault.Crash{{Place: 9, AfterTasks: 1}}},
	})
	if err == nil {
		t.Fatalf("crash of place 9 on 4 places should be rejected")
	}
	_, err = New(Config{
		Cluster: chaosCluster(),
		Fault:   &fault.Plan{DropProb: 2},
	})
	if err == nil {
		t.Fatalf("DropProb=2 should be rejected")
	}
}
