package core

import (
	"errors"
	"testing"
	"time"

	"distws/internal/fault"
	"distws/internal/sched"
)

// TestDrainPlaceGraceful drains a place mid-run via the fault plan's
// wall-clock schedule: the run completes exactly once, the moved tasks
// count as offloaded, and nothing is re-executed or counted lost.
func TestDrainPlaceGraceful(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Drains: []fault.Drain{{Place: 1, AtNS: int64(500 * time.Microsecond)}},
		},
	}, 800)
	defer rt.Shutdown()
	// The drain timer fired mid-run; give its goroutine a beat to finish
	// flushing before reading the counters.
	time.Sleep(20 * time.Millisecond)
	s := rt.Metrics()
	if s.MembershipDrains != 1 {
		t.Fatalf("MembershipDrains = %d, want 1", s.MembershipDrains)
	}
	if s.TasksReExecuted != 0 {
		t.Fatalf("graceful drain re-executed %d tasks, want 0", s.TasksReExecuted)
	}
	if s.PlacesLost != 0 {
		t.Fatalf("graceful drain counted as place loss: %d", s.PlacesLost)
	}
}

// TestDrainPlaceAPI exercises the synchronous entry point directly: the
// drained place refuses further drains, out-of-range ids error, and the
// last available place cannot be drained.
func TestDrainPlaceAPI(t *testing.T) {
	rt, err := New(Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()
	if err := rt.DrainPlace(99); err == nil {
		t.Fatalf("DrainPlace(99) should be rejected")
	}
	for p := 1; p < rt.Places(); p++ {
		if err := rt.DrainPlace(p); err != nil {
			t.Fatalf("DrainPlace(%d): %v", p, err)
		}
	}
	if err := rt.DrainPlace(0); err == nil {
		t.Fatalf("draining the last place should be refused")
	}
	if err := rt.DrainPlace(1); err == nil {
		t.Fatalf("draining a drained (now dead) place should error")
	}
	s := rt.Metrics()
	if s.MembershipDrains != int64(rt.Places()-1) {
		t.Fatalf("MembershipDrains = %d, want %d", s.MembershipDrains, rt.Places()-1)
	}
}

// TestJoinLateRuntime starts one place absent; it joins mid-run and the
// workload completes exactly once with no re-execution.
func TestJoinLateRuntime(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Joins: []fault.Join{{Place: 3, AtNS: int64(300 * time.Microsecond)}},
		},
	}, 800)
	defer rt.Shutdown()
	time.Sleep(5 * time.Millisecond)
	s := rt.Metrics()
	if s.MembershipJoins != 1 {
		t.Fatalf("MembershipJoins = %d, want 1", s.MembershipJoins)
	}
	if s.TasksReExecuted != 0 {
		t.Fatalf("a join must not re-execute tasks, got %d", s.TasksReExecuted)
	}
}

// TestFlapRuntime flaps a place once: the down edge is a crash (work
// re-homed), the up edge a rejoin with fresh workers rather than a
// permanent eviction.
func TestFlapRuntime(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Flaps: []fault.Flap{{
				Place:  2,
				AtNS:   int64(300 * time.Microsecond),
				DownNS: int64(2 * time.Millisecond),
				UpNS:   int64(2 * time.Millisecond),
				Cycles: 1,
			}},
		},
	}, 800)
	defer rt.Shutdown()
	// Wait out the up edge (down at 300µs + 2ms) regardless of how fast
	// the workload finished.
	time.Sleep(20 * time.Millisecond)
	s := rt.Metrics()
	if s.PlacesLost != 1 {
		t.Fatalf("PlacesLost = %d, want 1", s.PlacesLost)
	}
	if s.MembershipRejoins != 1 {
		t.Fatalf("MembershipRejoins = %d, want 1", s.MembershipRejoins)
	}
}

// TestPartitionWindowRuntime cuts the cluster for a wall-clock window:
// cross-cut steal probes burn timeouts while it lasts, and the run still
// completes exactly once.
func TestPartitionWindowRuntime(t *testing.T) {
	rt := chaosSum(t, Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Partitions: []fault.Partition{{
				GroupA: []int{0, 1},
				AtNS:   1,
				HealNS: int64(3 * time.Millisecond),
			}},
		},
	}, 800)
	defer rt.Shutdown()
	s := rt.Metrics()
	if s.TasksReExecuted != 0 {
		t.Fatalf("a partition (no crash) must not re-execute tasks, got %d", s.TasksReExecuted)
	}
	if s.PlacesLost != 0 {
		t.Fatalf("a partition must not evict places, got %d lost", s.PlacesLost)
	}
}

// TestShutdownCancelsChurnTimers makes sure a pending churn schedule does
// not fire into a shut-down runtime.
func TestShutdownCancelsChurnTimers(t *testing.T) {
	rt, err := New(Config{
		Cluster: chaosCluster(),
		Policy:  sched.DistWS,
		Seed:    7,
		Fault: &fault.Plan{
			Drains: []fault.Drain{{Place: 1, AtNS: int64(time.Hour)}},
			Joins:  []fault.Join{{Place: 3, AtNS: int64(time.Hour)}},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Shutdown()
	if err := rt.DrainPlace(2); !errors.Is(err, ErrShutdown) && err == nil {
		t.Fatalf("DrainPlace after shutdown: %v", err)
	}
	s := rt.Metrics()
	if s.MembershipDrains != 0 || s.MembershipJoins != 0 {
		t.Fatalf("cancelled timers still fired: %+v", s)
	}
}
