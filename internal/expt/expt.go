package expt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distws/internal/apps"
	"distws/internal/apps/suite"
	"distws/internal/deque"
	"distws/internal/metrics"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/trace"
)

// Runner executes experiments against a fixed application suite and
// cluster, caching generated traces. Every table and figure enumerates its
// independent simulation cells into a job list executed by a bounded
// worker pool (see forEach); results are collected by cell index and rows
// are assembled in the original presentation order, so the rendered output
// is byte-identical to a sequential run. Safe for concurrent use.
type Runner struct {
	Seed    int64
	Cluster topology.Cluster
	Apps    []apps.App

	// Deque selects the simulated worker-queue synchronization kind for
	// every cell the runner executes (see sim.Options.Deque). The zero
	// value is the paper-faithful mutex deque. Without
	// sim.Options.LockContention the kind only models synchronization
	// cost that the paper configuration does not charge, so every exhibit
	// is byte-identical across kinds — the cross-kind parity gate in
	// `make check` pins that down. Only the contention study, which turns
	// LockContention on, separates the kinds.
	Deque deque.Kind

	// Workers bounds how many simulation cells run concurrently. Zero
	// means GOMAXPROCS; 1 forces fully sequential execution (useful to
	// verify determinism or to profile a single-threaded run).
	Workers int

	mu    sync.Mutex
	cache map[string]*traceEntry
	// appLocks serializes trace generation per application: App.Trace
	// implementations may use receiver fields as scratch state (e.g.
	// turingring zeroes its flop-burn knob during generation), so two
	// place counts of the same app must not generate concurrently.
	appLocks map[string]*sync.Mutex
}

// traceEntry is a singleflight slot: concurrent requests for the same
// (app, places) trace share one generation instead of racing to build
// duplicate graphs.
type traceEntry struct {
	once sync.Once
	g    *trace.Graph
	err  error
}

// New returns a Runner over the paper suite at the given scale with the
// paper's 16×8 cluster.
func New(scale suite.Scale, seed int64) *Runner {
	return &Runner{
		Seed:     seed,
		Cluster:  topology.Paper(),
		Apps:     suite.Paper(scale, seed),
		cache:    make(map[string]*traceEntry),
		appLocks: make(map[string]*sync.Mutex),
	}
}

// Trace returns (and caches) app's task graph for a cluster with places
// places. The graph is generated exactly once per (app, places) key — even
// under concurrent callers — and shared read-only across every policy run
// that replays it (the simulator never mutates a graph; see
// TestPoliciesDoNotMutateSharedGraph).
func (r *Runner) Trace(a apps.App, places int) (*trace.Graph, error) {
	key := fmt.Sprintf("%s/%d", a.Name(), places)
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &traceEntry{}
		r.cache[key] = e
	}
	lk, ok := r.appLocks[a.Name()]
	if !ok {
		lk = new(sync.Mutex)
		r.appLocks[a.Name()] = lk
	}
	r.mu.Unlock()
	e.once.Do(func() {
		lk.Lock()
		defer lk.Unlock()
		e.g, e.err = a.Trace(places)
	})
	return e.g, e.err
}

// workers resolves the effective pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs job(0..n-1) on a bounded worker pool and returns the
// lowest-index error (so the reported failure does not depend on
// scheduling). Jobs must be independent and write only to their own cell.
func (r *Runner) forEach(n int, job func(i int) error) error {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) simulate(a apps.App, places int, policy sched.Kind) (*sim.Result, error) {
	g, err := r.Trace(a, places)
	if err != nil {
		return nil, fmt.Errorf("expt: trace %s: %w", a.Name(), err)
	}
	cl := r.Cluster.WithPlaces(places)
	res, err := sim.Run(g, cl, policy, sim.Options{Seed: r.Seed, Deque: r.Deque})
	if err != nil {
		return nil, fmt.Errorf("expt: sim %s/%v: %w", a.Name(), policy, err)
	}
	return res, nil
}

// threePolicies is the presentation order of the selective-stealing
// comparison exhibits (Tables II/III, Figs. 6/7).
var threePolicies = [3]sched.Kind{sched.X10WS, sched.DistWSNS, sched.DistWS}

// perAppPolicy runs one simulation per (app, policy) cell at the full
// cluster, fanning the |apps|×|policies| grid across the worker pool, and
// returns results indexed [app][policy].
func (r *Runner) perAppPolicy(appList []apps.App, policies []sched.Kind) ([][]*sim.Result, error) {
	out := make([][]*sim.Result, len(appList))
	for i := range out {
		out[i] = make([]*sim.Result, len(policies))
	}
	err := r.forEach(len(appList)*len(policies), func(i int) error {
		ai, ki := i/len(policies), i%len(policies)
		res, err := r.simulate(appList[ai], r.Cluster.Places, policies[ki])
		if err != nil {
			return err
		}
		out[ai][ki] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --------------------------------------------------------------------
// Fig. 3 — steals-to-task ratio.

// Fig3Row is one bar of Fig. 3.
type Fig3Row struct {
	App    string
	Steals int64
	Tasks  int64
	Ratio  float64
}

// Fig3 runs every app under DistWS on the full cluster and reports the
// steals-to-task ratio (paper: between 1e-4 and 1e-5... at benchmark
// scale; at reduced scale the ratio is correspondingly larger, and the
// comparison of interest is that it stays ≪ 1).
func (r *Runner) Fig3() ([]Fig3Row, error) {
	rows := make([]Fig3Row, len(r.Apps))
	err := r.forEach(len(r.Apps), func(i int) error {
		a := r.Apps[i]
		res, err := r.simulate(a, r.Cluster.Places, sched.DistWS)
		if err != nil {
			return err
		}
		rows[i] = Fig3Row{
			App:    a.Name(),
			Steals: res.Counters.Steals(),
			Tasks:  res.Counters.TasksExecuted,
			Ratio:  res.Counters.StealsToTaskRatio(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig3 formats Fig. 3.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — Steals-to-task ratio (DistWS, 128 workers)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "App", "Steals", "Tasks", "Ratio")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %12d %12d %12.2e\n",
			PaperName[row.App], row.Steals, row.Tasks, row.Ratio)
	}
	return b.String()
}

// --------------------------------------------------------------------
// Fig. 4 — sequential execution time.

// Fig4Row is one bar of Fig. 4.
type Fig4Row struct {
	App string
	// VirtualMS is the trace's sequential time in virtual milliseconds
	// (what the simulator's speedups are measured against).
	VirtualMS float64
	// WallMS is the measured wall-clock time of the real sequential
	// implementation at the configured scale on this host.
	WallMS float64
}

// Fig4 measures sequential execution times. Trace generation is fanned out
// across the pool, but the wall-clock measurements themselves run strictly
// one at a time: concurrent sequential runs would contend for cores and
// inflate each other's measured times.
func (r *Runner) Fig4() ([]Fig4Row, error) {
	if err := r.forEach(len(r.Apps), func(i int) error {
		_, err := r.Trace(r.Apps[i], r.Cluster.Places)
		return err
	}); err != nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, a := range r.Apps {
		g, err := r.Trace(a, r.Cluster.Places)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		a.Sequential()
		wall := time.Since(start)
		rows = append(rows, Fig4Row{
			App:       a.Name(),
			VirtualMS: float64(g.Sequential()) / 1e6,
			WallMS:    float64(wall.Nanoseconds()) / 1e6,
		})
	}
	return rows, nil
}

// RenderFig4 formats Fig. 4.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — Sequential execution time\n")
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "App", "Virtual (ms)", "Host wall (ms)")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %16.1f %16.1f\n", PaperName[row.App], row.VirtualMS, row.WallMS)
	}
	return b.String()
}

// --------------------------------------------------------------------
// Fig. 5 — speedup sweep X10WS vs DistWS.

// Fig5Cell is one (worker count, policy pair) sample.
type Fig5Cell struct {
	Places  int
	Workers int
	X10WS   float64
	DistWS  float64
}

// Fig5Row is one application's speedup curves.
type Fig5Row struct {
	App   string
	Cells []Fig5Cell
	// BestGainPct is the largest DistWS improvement over X10WS across the
	// sweep, in percent.
	BestGainPct float64
	// PaperGainPct is the paper's quoted best improvement, if any.
	PaperGainPct float64
}

// Fig5 sweeps places 1..16 (8 workers each) under both schedulers. The
// |apps| × |placeCounts| × 2 cells are independent simulations and run on
// the worker pool; rows are assembled app-major afterwards.
func (r *Runner) Fig5(placeCounts []int) ([]Fig5Row, error) {
	if len(placeCounts) == 0 {
		placeCounts = []int{1, 2, 4, 8, 16}
	}
	policies := [2]sched.Kind{sched.X10WS, sched.DistWS}
	perApp := len(placeCounts) * len(policies)
	speed := make([]float64, len(r.Apps)*perApp)
	err := r.forEach(len(speed), func(i int) error {
		ai := i / perApp
		pi := (i % perApp) / len(policies)
		ki := i % len(policies)
		res, err := r.simulate(r.Apps[ai], placeCounts[pi], policies[ki])
		if err != nil {
			return err
		}
		speed[i] = res.Speedup()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for ai, a := range r.Apps {
		row := Fig5Row{App: a.Name(), PaperGainPct: PaperBestGainPct[a.Name()]}
		for pi, p := range placeCounts {
			base := ai*perApp + pi*len(policies)
			cell := Fig5Cell{
				Places:  p,
				Workers: p * r.Cluster.WorkersPerPlace,
				X10WS:   speed[base],
				DistWS:  speed[base+1],
			}
			row.Cells = append(row.Cells, cell)
			if p > 1 && cell.X10WS > 0 {
				gain := 100 * (cell.DistWS - cell.X10WS) / cell.X10WS
				if gain > row.BestGainPct {
					row.BestGainPct = gain
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig5 formats Fig. 5.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — Speedup over sequential, X10WS vs DistWS (8 workers/place)\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s", PaperName[row.App])
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "  w=%-3d %6.1f/%-6.1f", c.Workers, c.X10WS, c.DistWS)
		}
		if row.PaperGainPct > 0 {
			fmt.Fprintf(&b, "  best gain %.0f%% (paper %.0f%%)", row.BestGainPct, row.PaperGainPct)
		} else {
			fmt.Fprintf(&b, "  best gain %.0f%%", row.BestGainPct)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(cells are X10WS/DistWS speedups)\n")
	return b.String()
}

// --------------------------------------------------------------------
// Table I — task granularities.

// Table1Row compares measured and paper granularities.
type Table1Row struct {
	App        string
	MeasuredMS float64
	PaperMS    float64
}

// Table1 reports the mean flexible-task granularity of every trace,
// which the generators calibrate to the paper's Table I.
func (r *Runner) Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, len(r.Apps))
	err := r.forEach(len(r.Apps), func(i int) error {
		a := r.Apps[i]
		g, err := r.Trace(a, r.Cluster.Places)
		if err != nil {
			return err
		}
		rows[i] = Table1Row{
			App:        a.Name(),
			MeasuredMS: float64(apps.MeanFlexibleCostNS(g)) / 1e6,
			PaperMS:    PaperGranularityMS[a.Name()],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable1 formats Table I.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Task granularities (ms)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "App", "Measured", "Paper")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %12.3f %12.3f\n", PaperName[row.App], row.MeasuredMS, row.PaperMS)
	}
	return b.String()
}

// --------------------------------------------------------------------
// Table II — L1d miss rates.

// Table2Row is one application's modelled miss rates per policy.
type Table2Row struct {
	App                     string
	X10WS, DistWSNS, DistWS float64
	Paper                   [3]float64
}

// Table2 runs the three schedulers at 128 workers and reports modelled
// L1d miss rates.
func (r *Runner) Table2() ([]Table2Row, error) {
	results, err := r.perAppPolicy(r.Apps, threePolicies[:])
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(r.Apps))
	for i, a := range r.Apps {
		rows[i] = Table2Row{
			App:      a.Name(),
			X10WS:    results[i][0].Counters.CacheMissRate(),
			DistWSNS: results[i][1].Counters.CacheMissRate(),
			DistWS:   results[i][2].Counters.CacheMissRate(),
			Paper:    PaperMissRates[a.Name()],
		}
	}
	return rows, nil
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — L1d miss rates (%%) at 128 workers (measured | paper)\n")
	fmt.Fprintf(&b, "%-12s %18s %18s %18s\n", "App", "X10WS", "DistWS-NS", "DistWS")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f | %6.1f %8.1f | %6.1f %8.1f | %6.1f\n",
			PaperName[row.App],
			row.X10WS, row.Paper[0], row.DistWSNS, row.Paper[1], row.DistWS, row.Paper[2])
	}
	return b.String()
}

// --------------------------------------------------------------------
// Table III — messages across nodes.

// Table3Row is one application's message counts per policy.
type Table3Row struct {
	App                     string
	X10WS, DistWSNS, DistWS int64
	Paper                   [3]int64
}

// Table3 runs the three schedulers at 128 workers and reports messages
// transmitted across nodes.
func (r *Runner) Table3() ([]Table3Row, error) {
	results, err := r.perAppPolicy(r.Apps, threePolicies[:])
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(r.Apps))
	for i, a := range r.Apps {
		rows[i] = Table3Row{
			App:      a.Name(),
			X10WS:    results[i][0].Counters.Messages,
			DistWSNS: results[i][1].Counters.Messages,
			DistWS:   results[i][2].Counters.Messages,
			Paper:    PaperMessages[a.Name()],
		}
	}
	return rows, nil
}

// RenderTable3 formats Table III.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — Messages across nodes at 128 workers (measured | paper)\n")
	fmt.Fprintf(&b, "%-12s %22s %22s %22s\n", "App", "X10WS", "DistWS-NS", "DistWS")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %10d | %-10d %10d | %-10d %10d | %-10d\n",
			PaperName[row.App],
			row.X10WS, row.Paper[0], row.DistWSNS, row.Paper[1], row.DistWS, row.Paper[2])
	}
	return b.String()
}

// --------------------------------------------------------------------
// Fig. 6 — policy comparison at 128 workers.

// Fig6Row is one application's speedups at the full cluster.
type Fig6Row struct {
	App                     string
	X10WS, DistWSNS, DistWS float64
}

// Fig6 compares the three schedulers at 128 workers.
func (r *Runner) Fig6() ([]Fig6Row, error) {
	results, err := r.perAppPolicy(r.Apps, threePolicies[:])
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(r.Apps))
	for i, a := range r.Apps {
		rows[i] = Fig6Row{
			App:      a.Name(),
			X10WS:    results[i][0].Speedup(),
			DistWSNS: results[i][1].Speedup(),
			DistWS:   results[i][2].Speedup(),
		}
	}
	return rows, nil
}

// RenderFig6 formats Fig. 6.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — Speedups at 128 workers\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "App", "X10WS", "DistWS-NS", "DistWS")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %10.1f %12.1f %10.1f\n",
			PaperName[row.App], row.X10WS, row.DistWSNS, row.DistWS)
	}
	return b.String()
}

// --------------------------------------------------------------------
// Fig. 7 — per-node CPU utilization.

// Fig7Row is one (app, policy) utilization series.
type Fig7Row struct {
	App      string
	Policy   sched.Kind
	Util     []float64
	Spread   metrics.Spread
	Variance float64
}

// Fig7 reports per-place utilization for every app under the three
// schedulers.
func (r *Runner) Fig7() ([]Fig7Row, error) {
	results, err := r.perAppPolicy(r.Apps, threePolicies[:])
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, 0, len(r.Apps)*len(threePolicies))
	for i, a := range r.Apps {
		for ki, k := range threePolicies {
			res := results[i][ki]
			rows = append(rows, Fig7Row{
				App:      a.Name(),
				Policy:   k,
				Util:     res.Utilization,
				Spread:   metrics.Summarize(res.Utilization),
				Variance: metrics.Variance(res.Utilization),
			})
		}
	}
	return rows, nil
}

// RenderFig7 formats Fig. 7 summaries.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — Per-node CPU utilization (paper: ~35%% disparity under X10WS, ~13%% variance under DistWS)\n")
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s %8s %10s %10s\n",
		"App", "Policy", "Min%", "Max%", "Mean%", "Disparity", "Variance")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %8.1f %8.1f %8.1f %10.1f %10.1f\n",
			PaperName[row.App], row.Policy.String(),
			row.Spread.Min, row.Spread.Max, row.Spread.Mean, row.Spread.Disparity, row.Variance)
	}
	return b.String()
}

// --------------------------------------------------------------------
// §VIII-Q2 — granularity study on the micro apps.

// GranRow is one micro-app comparison.
type GranRow struct {
	App     string
	GranMS  float64
	X10WS   float64
	DistWS  float64
	GainPct float64 // DistWS over X10WS; negative = DistWS worse
}

// GranularityStudy runs the five fine-grained apps at the full cluster.
func (r *Runner) GranularityStudy() ([]GranRow, error) {
	microApps := suite.Micro(r.Seed)
	results, err := r.perAppPolicy(microApps, []sched.Kind{sched.X10WS, sched.DistWS})
	if err != nil {
		return nil, err
	}
	rows := make([]GranRow, len(microApps))
	for i, a := range microApps {
		g, err := r.Trace(a, r.Cluster.Places)
		if err != nil {
			return nil, err
		}
		row := GranRow{
			App:    a.Name(),
			GranMS: float64(apps.MeanFlexibleCostNS(g)) / 1e6,
			X10WS:  results[i][0].Speedup(),
			DistWS: results[i][1].Speedup(),
		}
		if row.X10WS > 0 {
			row.GainPct = 100 * (row.DistWS - row.X10WS) / row.X10WS
		}
		rows[i] = row
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].GranMS > rows[j].GranMS })
	return rows, nil
}

// RenderGranularity formats the granularity study.
func RenderGranularity(rows []GranRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§VIII-Q2 — Granularity study at 128 workers (fine-grained tasks do not profit from DistWS)\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %8s\n", "App", "Gran (ms)", "X10WS", "DistWS", "Gain%")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10.1f %10.1f %8.1f\n",
			PaperName[row.App], row.GranMS, row.X10WS, row.DistWS, row.GainPct)
	}
	return b.String()
}

// --------------------------------------------------------------------
// §X — UTS: DistWS vs randomized and lifeline-based stealing.

// UTSRow is one policy's UTS result.
type UTSRow struct {
	Policy     sched.Kind
	MakespanMS float64
	Speedup    float64
	Messages   int64
	Steals     int64
}

// UTSStudy runs UTS under RandomWS, LifelineWS and DistWS at the full
// cluster (paper: lifeline wins on UTS; DistWS beats random by ~9%; and
// DistWS adds no overhead when every task is flexible).
func (r *Runner) UTSStudy() ([]UTSRow, error) {
	app := suite.UTS(r.Seed)
	g, err := r.Trace(app, r.Cluster.Places)
	if err != nil {
		return nil, err
	}
	policies := []sched.Kind{sched.RandomWS, sched.LifelineWS, sched.DistWS}
	rows := make([]UTSRow, len(policies))
	err = r.forEach(len(policies), func(i int) error {
		res, err := sim.Run(g, r.Cluster, policies[i], sim.Options{Seed: r.Seed, Deque: r.Deque})
		if err != nil {
			return err
		}
		rows[i] = UTSRow{
			Policy:     policies[i],
			MakespanMS: float64(res.MakespanNS) / 1e6,
			Speedup:    res.Speedup(),
			Messages:   res.Counters.Messages,
			Steals:     res.Counters.Steals(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderUTS formats the UTS study.
func RenderUTS(rows []UTSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§X — UTS at 128 workers (paper: Lifeline > DistWS > Random; DistWS ≈ +9%% over Random)\n")
	fmt.Fprintf(&b, "%-12s %14s %10s %12s %10s\n", "Policy", "Makespan(ms)", "Speedup", "Messages", "Steals")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %14.1f %10.1f %12d %10d\n",
			row.Policy.String(), row.MakespanMS, row.Speedup, row.Messages, row.Steals)
	}
	return b.String()
}

// --------------------------------------------------------------------
// Adaptive study — online classification vs annotated policies.

// AdaptiveRow is one application's speedups in the adaptive comparison,
// plus how many online classification flips the controller performed.
type AdaptiveRow struct {
	App                        string
	DistWS, DistWSNS, RandomWS float64
	Adaptive                   float64
	GapPct                     float64 // Adaptive vs annotated DistWS; negative = adaptive slower
	Reclass                    int64
}

// AdaptiveStudy compares the annotation-free adaptive policy against
// annotated DistWS, non-selective DistWS-NS, and RandomWS across the
// paper suite at the full cluster. The claim under test: the feedback
// controller recovers the selective behaviour the paper obtains from
// programmer annotations (within a few percent of DistWS) while
// strictly beating both locality-oblivious baselines.
func (r *Runner) AdaptiveStudy() ([]AdaptiveRow, error) {
	policies := []sched.Kind{sched.DistWS, sched.DistWSNS, sched.RandomWS, sched.Adaptive}
	results, err := r.perAppPolicy(r.Apps, policies)
	if err != nil {
		return nil, err
	}
	rows := make([]AdaptiveRow, len(r.Apps))
	for i, a := range r.Apps {
		row := AdaptiveRow{
			App:      a.Name(),
			DistWS:   results[i][0].Speedup(),
			DistWSNS: results[i][1].Speedup(),
			RandomWS: results[i][2].Speedup(),
			Adaptive: results[i][3].Speedup(),
			Reclass:  results[i][3].Counters.Reclassifications,
		}
		if row.DistWS > 0 {
			row.GapPct = 100 * (row.Adaptive - row.DistWS) / row.DistWS
		}
		rows[i] = row
	}
	return rows, nil
}

// geomean returns the geometric mean of positive values (0 if any value
// is non-positive or the slice is empty).
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	acc := 1.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		acc *= v
	}
	return math.Pow(acc, 1/float64(len(vals)))
}

// RenderAdaptive formats the adaptive study with a geometric-mean
// aggregate line.
func RenderAdaptive(rows []AdaptiveRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive — online classification at 128 workers, zero annotations (target: within 5%% of DistWS, above DistWS-NS and Random)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s %10s %8s %8s\n",
		"App", "DistWS", "DistWS-NS", "Random", "Adaptive", "Gap%", "Reclass")
	agg := make([][]float64, 4)
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %10.1f %12.1f %10.1f %10.1f %8.1f %8d\n",
			PaperName[row.App], row.DistWS, row.DistWSNS, row.RandomWS,
			row.Adaptive, row.GapPct, row.Reclass)
		agg[0] = append(agg[0], row.DistWS)
		agg[1] = append(agg[1], row.DistWSNS)
		agg[2] = append(agg[2], row.RandomWS)
		agg[3] = append(agg[3], row.Adaptive)
	}
	fmt.Fprintf(&b, "%-12s %10.1f %12.1f %10.1f %10.1f\n",
		"geomean", geomean(agg[0]), geomean(agg[1]), geomean(agg[2]), geomean(agg[3]))
	return b.String()
}

// --------------------------------------------------------------------
// Contention study — shared-queue synchronization under thief pressure.

// ContentionWorkerCounts is the sweep of total virtual worker counts the
// contention study runs at. The interesting regime starts at the paper's
// 128 workers and scales past it: the mutex kind's critical section grows
// linearly with the number of thieves hammering one victim queue, while
// the fence-free kinds stay flat.
var ContentionWorkerCounts = []int{128, 256, 512, 1024}

const (
	// contentionTasksPerWorker scales the workload with the cluster so
	// thief pressure per queue stays constant across the sweep.
	contentionTasksPerWorker = 64
	// contentionTaskCostNS makes tasks fine-grained enough that queue
	// synchronization, not execution, dominates the victim's timeline.
	contentionTaskCostNS = 2_000
)

// contentionGraph builds the contention microbenchmark: fine-grained
// flexible tasks all homed at place 0, so every other place's workers
// must pull their share through place 0's shared queue.
func contentionGraph(workers int) (*trace.Graph, error) {
	b := trace.NewBuilder(fmt.Sprintf("contention-%dw", workers))
	for i := 0; i < workers*contentionTasksPerWorker; i++ {
		b.Root(trace.Task{CostNS: contentionTaskCostNS, Home: 0, Flexible: true})
	}
	return b.Graph()
}

// ContentionCell is one (worker count, deque kind) measurement.
type ContentionCell struct {
	Kind       deque.Kind
	MakespanMS float64
	// StealThroughput is tasks acquired by thieves per virtual second —
	// the study's figure of merit. Under saturation every kind migrates
	// (nearly) the same task population, so throughput differences are
	// pure synchronization cost.
	StealThroughput float64
	RemoteSteals    int64
	StealRequests   int64
	Donations       int64
	DuplicateTakes  int64
}

// ContentionRow is one worker count across every deque kind, in
// deque.Kinds() order.
type ContentionRow struct {
	Workers int
	Cells   []ContentionCell
	// RelaxedOverMutex is the relaxed kind's steal throughput over the
	// mutex kind's — the headline ratio (acceptance: ≥2x at 512 workers).
	RelaxedOverMutex float64
}

// Cell returns the row's measurement for kind k (zero value if absent).
func (row ContentionRow) Cell(k deque.Kind) ContentionCell {
	for _, c := range row.Cells {
		if c.Kind == k {
			return c
		}
	}
	return ContentionCell{}
}

// ContentionStudy sweeps ContentionWorkerCounts × deque.Kinds() over the
// contention microbenchmark with the shared-queue lock simulated
// (sim.Options.LockContention), under DistWS. This is the one exhibit
// where Options.Deque changes results; everything else in the suite is
// deque-kind invariant.
func (r *Runner) ContentionStudy() ([]ContentionRow, error) {
	kinds := deque.Kinds()
	counts := ContentionWorkerCounts
	graphs := make([]*trace.Graph, len(counts))
	rows := make([]ContentionRow, len(counts))
	for i, workers := range counts {
		g, err := contentionGraph(workers)
		if err != nil {
			return nil, fmt.Errorf("expt: contention trace %dw: %w", workers, err)
		}
		graphs[i] = g
		rows[i] = ContentionRow{Workers: workers, Cells: make([]ContentionCell, len(kinds))}
	}
	err := r.forEach(len(counts)*len(kinds), func(i int) error {
		wi, ki := i/len(kinds), i%len(kinds)
		workers := counts[wi]
		places := workers / r.Cluster.WorkersPerPlace
		if places < 1 {
			places = 1
		}
		cl := r.Cluster.WithPlaces(places)
		res, err := sim.Run(graphs[wi], cl, sched.DistWS, sim.Options{
			Seed:           r.Seed,
			LockContention: true,
			Deque:          kinds[ki],
		})
		if err != nil {
			return fmt.Errorf("expt: contention %dw/%v: %w", workers, kinds[ki], err)
		}
		cell := ContentionCell{
			Kind:           kinds[ki],
			MakespanMS:     float64(res.MakespanNS) / 1e6,
			RemoteSteals:   res.Counters.RemoteSteals,
			StealRequests:  res.Counters.StealRequests,
			Donations:      res.Counters.Donations,
			DuplicateTakes: res.Counters.DuplicateTakes,
		}
		if res.MakespanNS > 0 {
			cell.StealThroughput = float64(res.Counters.TasksMigrated) /
				(float64(res.MakespanNS) / 1e9)
		}
		rows[wi].Cells[ki] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		mutex := rows[i].Cell(deque.KindMutex).StealThroughput
		relaxed := rows[i].Cell(deque.KindRelaxed).StealThroughput
		if mutex > 0 {
			rows[i].RelaxedOverMutex = relaxed / mutex
		}
	}
	return rows, nil
}

// RenderContention formats the contention study.
func RenderContention(rows []ContentionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Contention — steal throughput under a hammered shared queue (tasks/s acquired by thieves; relaxed target ≥2x mutex at 512 workers)\n")
	fmt.Fprintf(&b, "%8s %9s %14s %14s %10s %10s %10s %8s\n",
		"Workers", "Kind", "Makespan(ms)", "StealThru/s", "RemSteals", "Requests", "Donations", "DupTakes")
	for _, row := range rows {
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "%8d %9s %14.2f %14.0f %10d %10d %10d %8d\n",
				row.Workers, c.Kind.String(), c.MakespanMS, c.StealThroughput,
				c.RemoteSteals, c.StealRequests, c.Donations, c.DuplicateTakes)
		}
		fmt.Fprintf(&b, "%8d %9s %14s relaxed/mutex = %.2fx\n", row.Workers, "", "", row.RelaxedOverMutex)
	}
	return b.String()
}
