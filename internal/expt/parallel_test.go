package expt

import (
	"reflect"
	"strings"
	"testing"

	"distws/internal/apps/suite"
	"distws/internal/sched"
	"distws/internal/sim"
)

// renderDeterministic regenerates every exhibit whose content is a pure
// function of the seed and concatenates the rendered text. Fig. 4 is
// covered separately: its host wall-clock column measures the real
// sequential implementations and differs between any two runs, parallel or
// not.
func renderDeterministic(t *testing.T, r *Runner) string {
	t.Helper()
	var b strings.Builder
	f3, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig3(f3))
	f5, err := r.Fig5(nil)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig5(f5))
	t1, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable1(t1))
	t2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable2(t2))
	t3, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderTable3(t3))
	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig6(f6))
	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderFig7(f7))
	gr, err := r.GranularityStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderGranularity(gr))
	uts, err := r.UTSStudy()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(RenderUTS(uts))
	return b.String()
}

// TestParallelHarnessDeterminism pins the tentpole guarantee of the
// parallel harness: a forced-sequential run (Workers=1) and a wide
// parallel run (Workers=8) must produce byte-identical table and figure
// text, across multiple seeds.
func TestParallelHarnessDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seq := New(suite.Small, seed)
		seq.Workers = 1
		par := New(suite.Small, seed)
		par.Workers = 8

		seqOut := renderDeterministic(t, seq)
		parOut := renderDeterministic(t, par)
		if seqOut != parOut {
			t.Errorf("seed %d: parallel harness output differs from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, seqOut, parOut)
		}

		// Fig. 4's deterministic column (virtual sequential time) must also
		// agree; the wall column is a live host measurement and may not.
		seqF4, err := seq.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		parF4, err := par.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		for i := range seqF4 {
			if seqF4[i].App != parF4[i].App || seqF4[i].VirtualMS != parF4[i].VirtualMS {
				t.Errorf("seed %d: Fig4 row %d differs: %+v vs %+v", seed, i, seqF4[i], parF4[i])
			}
		}
	}
}

// TestPoliciesDoNotMutateSharedGraph proves the graph-reuse contract: the
// trace cache hands the same *trace.Graph to every policy run (including
// concurrent ones), so the simulator must treat it as strictly read-only.
func TestPoliciesDoNotMutateSharedGraph(t *testing.T) {
	r := New(suite.Small, 1)
	for _, a := range []string{"dmg", "uts"} {
		app, err := suite.ByName(a, suite.Small, 1)
		if err != nil {
			t.Fatal(err)
		}
		g, err := r.Trace(app, r.Cluster.Places)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Clone()
		for _, k := range sched.Kinds() {
			if _, err := sim.Run(g, r.Cluster, k, sim.Options{Seed: 1}); err != nil {
				t.Fatalf("%s/%v: %v", a, k, err)
			}
		}
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("%s: graph mutated by policy runs", a)
		}
	}
}

// TestTraceSingleflight checks that concurrent Trace calls for the same
// key share one generated graph rather than racing to build duplicates.
func TestTraceSingleflight(t *testing.T) {
	r := New(suite.Small, 1)
	app := r.Apps[0]
	const n = 8
	graphs := make([]any, n)
	err := r.forEach(n, func(i int) error {
		g, err := r.Trace(app, 4)
		graphs[i] = g
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("Trace call %d returned a distinct graph", i)
		}
	}
}
