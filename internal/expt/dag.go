package expt

import (
	"fmt"
	"strings"

	"distws/internal/apps/linalg"
	"distws/internal/dag"
	"distws/internal/sched"
	"distws/internal/sim"
)

// DAGCell is one (app, placement policy) measurement of the dataflow
// study.
type DAGCell struct {
	Policy dag.Policy
	// MakespanMS is the simulated completion time.
	MakespanMS float64
	// MigratedBytes is the input-block bytes fetched across places —
	// the data-movement cost of the schedule.
	MigratedBytes int64
	// ResidencyRate is the percent of input-block lookups served by a
	// locally resident copy.
	ResidencyRate float64
	Hits, Misses  int64
	RemoteSteals  int64
}

// DAGRow is one dataflow app's blind-versus-aware comparison.
type DAGRow struct {
	App   string
	Tasks int
	Cells []DAGCell // indexed by dag.Policy order: blind, data-aware
	// AwareSpeedup is blind makespan over data-aware makespan (>1 means
	// data-aware placement finished sooner).
	AwareSpeedup float64
	// BytesSaved is the percent reduction in migrated bytes under
	// data-aware placement.
	BytesSaved float64
}

// Cell returns the row's measurement under pol (zero value if absent).
func (row DAGRow) Cell(pol dag.Policy) DAGCell {
	for _, c := range row.Cells {
		if c.Policy == pol {
			return c
		}
	}
	return DAGCell{}
}

// dagPolicies is the study's sweep order.
var dagPolicies = []dag.Policy{dag.PolicyBlind, dag.PolicyDataAware}

// DAGStudy runs the tiled linear-algebra suite (Cholesky, LU, pipeline)
// through the dataflow scheduler under DistWS, once locality-blind and
// once data-aware, on the runner's cluster. The headline claim it
// exhibits: data-aware placement cuts both migrated bytes and makespan
// on dataflow graphs whose tiles have meaningful transfer cost
// (acceptance pins Cholesky winning on both axes at seed 1).
func (r *Runner) DAGStudy() ([]DAGRow, error) {
	apps := linalg.Suite(r.Seed)
	rows := make([]DAGRow, len(apps))
	graphs := make([]*dag.Graph, len(apps))
	for i, a := range apps {
		g, err := a.Graph(r.Cluster.Places)
		if err != nil {
			return nil, fmt.Errorf("expt: dag graph %s: %w", a.Name(), err)
		}
		graphs[i] = g
		rows[i] = DAGRow{App: a.Name(), Tasks: g.NumTasks(), Cells: make([]DAGCell, len(dagPolicies))}
	}
	err := r.forEach(len(apps)*len(dagPolicies), func(i int) error {
		ai, pi := i/len(dagPolicies), i%len(dagPolicies)
		pol := dagPolicies[pi]
		res, err := sim.RunDAG(graphs[ai], r.Cluster, sched.DistWS, pol, sim.Options{
			Seed:  r.Seed,
			Deque: r.Deque,
		})
		if err != nil {
			return fmt.Errorf("expt: dag %s/%v: %w", rows[ai].App, pol, err)
		}
		c := res.Counters
		rows[ai].Cells[pi] = DAGCell{
			Policy:        pol,
			MakespanMS:    float64(res.MakespanNS) / 1e6,
			MigratedBytes: c.DAGFetchedBytes,
			ResidencyRate: c.DAGResidencyRate(),
			Hits:          c.DAGResidentHits,
			Misses:        c.DAGResidentMisses,
			RemoteSteals:  c.RemoteSteals,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		blind := rows[i].Cell(dag.PolicyBlind)
		aware := rows[i].Cell(dag.PolicyDataAware)
		if aware.MakespanMS > 0 {
			rows[i].AwareSpeedup = blind.MakespanMS / aware.MakespanMS
		}
		if blind.MigratedBytes > 0 {
			rows[i].BytesSaved = 100 * float64(blind.MigratedBytes-aware.MigratedBytes) /
				float64(blind.MigratedBytes)
		}
	}
	return rows, nil
}

// RenderDAG formats the dataflow study.
func RenderDAG(rows []DAGRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataflow DAG — data-aware vs locality-blind placement on tiled linear algebra (DistWS)\n")
	fmt.Fprintf(&b, "%10s %6s %11s %14s %12s %9s %9s %9s\n",
		"App", "Tasks", "Policy", "Makespan(ms)", "Migrated(KB)", "Hit%", "Misses", "RemSteal")
	for _, row := range rows {
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "%10s %6d %11s %14.3f %12.1f %9.1f %9d %9d\n",
				row.App, row.Tasks, c.Policy.String(), c.MakespanMS,
				float64(c.MigratedBytes)/1024, c.ResidencyRate, c.Misses, c.RemoteSteals)
		}
		fmt.Fprintf(&b, "%10s %6s %11s aware speedup = %.2fx, bytes saved = %.1f%%\n",
			row.App, "", "", row.AwareSpeedup, row.BytesSaved)
	}
	return b.String()
}
