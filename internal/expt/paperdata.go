// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VII–VIII and the §X UTS study) from
// the application traces and the cluster simulator, and formats them next
// to the values the paper reports.
package expt

// PaperGranularityMS is Table I: task granularities in milliseconds.
var PaperGranularityMS = map[string]float64{
	"quicksort":  1.1,
	"turingring": 1.86,
	"kmeans":     383,
	"agglom":     529,
	"dmg":        732,
	"dmr":        899,
	"nbody":      623,
}

// PaperMissRates is Table II: L1d miss rates (%) at 128 workers, per
// policy, in order X10WS, DistWS-NS, DistWS.
var PaperMissRates = map[string][3]float64{
	"quicksort":  {1.7, 4.1, 2.2},
	"turingring": {1.9, 3.5, 2.3},
	"kmeans":     {2.1, 5.6, 3.0},
	"agglom":     {6.0, 10.9, 7.1},
	"dmg":        {41.1, 46.3, 42.3},
	"dmr":        {31.0, 37.7, 33.6},
	"nbody":      {14.0, 21.0, 16.0},
}

// PaperMessages is Table III: messages transmitted across nodes at 128
// workers, in order X10WS, DistWS-NS, DistWS.
var PaperMessages = map[string][3]int64{
	"quicksort":  {5_349_730, 8_196_604, 6_943_568},
	"turingring": {4_192_734, 7_895_344, 6_424_840},
	"kmeans":     {9_540_830, 12_375_106, 11_648_418},
	"agglom":     {8_996_422, 12_430_790, 11_800_547},
	"dmg":        {34_143_024, 42_689_149, 39_880_036},
	"dmr":        {28_582_822, 37_923_541, 32_892_145},
	"nbody":      {15_655_429, 21_938_135, 18_289_203},
}

// PaperBestGainPct records the headline Fig. 5 improvements the paper
// quotes: best DistWS speedup over X10WS per application (the overall
// range is 12–31%).
var PaperBestGainPct = map[string]float64{
	"dmg":   31,
	"dmr":   27,
	"nbody": 19,
}

// PaperMicroGranularityMS is the §VIII-Q2 micro-app granularities.
var PaperMicroGranularityMS = map[string]float64{
	"mergesort":     0.12,
	"skyline":       0.93,
	"montecarlo-pi": 0.005,
	"matchain":      0.09,
	"randomaccess":  0.006,
}

// PaperUtilizationDisparityPct records Fig. 7's summary: ~35% average
// node-utilization disparity under X10WS vs ~13% variance under DistWS.
const (
	PaperX10WSDisparityPct  = 35.0
	PaperDistWSVariancePct  = 13.0
	PaperUTSDistWSOverRnd   = 9.0 // §X: DistWS +9% over random stealing
	PaperStealsToTaskRatioL = 1e-5
	PaperStealsToTaskRatioH = 1e-4
)

// PaperName maps internal app names to the paper's display names.
var PaperName = map[string]string{
	"quicksort":     "Quicksort",
	"turingring":    "Turing Ring",
	"kmeans":        "k-Means",
	"agglom":        "Agglom",
	"dmg":           "DMG",
	"dmr":           "DMR",
	"nbody":         "n-Body",
	"mergesort":     "Merge sort",
	"skyline":       "Skyline MM",
	"montecarlo-pi": "Monte-Carlo pi",
	"matchain":      "Matrix chain",
	"randomaccess":  "Random access",
	"uts":           "UTS",
}
