package expt

import (
	"strings"
	"testing"

	"distws/internal/apps/suite"
	"distws/internal/deque"
	"distws/internal/sched"
	"distws/internal/sim"
)

// runner is shared across tests: traces are cached, so the whole file
// costs roughly one evaluation sweep.
var testRunner = New(suite.Small, 1)

func TestFig3StealsRatio(t *testing.T) {
	rows, err := testRunner.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 apps", len(rows))
	}
	for _, row := range rows {
		if row.Steals == 0 {
			t.Errorf("%s: no steals at 128 workers", row.App)
		}
		// The paper reports ratios of 1e-4..1e-5 on workloads 100-1000x
		// larger than our defaults; the scale-invariant property is that
		// steals stay bounded by ~one per task even with 128 hungry
		// workers and that absolute steal counts are significant.
		if row.Ratio >= 1.2 {
			t.Errorf("%s: steals-to-task ratio %.3f too high", row.App, row.Ratio)
		}
	}
	if RenderFig3(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestFig5DistWSWinsBeyondOneNode(t *testing.T) {
	rows, err := testRunner.Fig5([]int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		last := row.Cells[len(row.Cells)-1]
		// The paper's headline: at scale DistWS does not lose, and on the
		// irregular apps it wins clearly.
		if last.DistWS < last.X10WS*0.99 {
			t.Errorf("%s: DistWS %.2f below X10WS %.2f at 128 workers",
				row.App, last.DistWS, last.X10WS)
		}
		// Single node: DistWS may trail slightly (bookkeeping overhead)
		// but not collapse.
		first := row.Cells[0]
		if first.Places != 1 {
			t.Fatalf("first cell should be 1 place")
		}
		if first.DistWS < first.X10WS*0.85 {
			t.Errorf("%s: single-node DistWS %.2f collapsed vs X10WS %.2f",
				row.App, first.DistWS, first.X10WS)
		}
		// The paper shows a slight single-node DistWS slowdown; our
		// virtual-time model shows parity within a few percent (see
		// EXPERIMENTS.md on single-node overheads).
		if first.DistWS > first.X10WS*1.06 {
			t.Errorf("%s: single-node DistWS %.2f should not beat X10WS %.2f (no cross-node steals exist)",
				row.App, first.DistWS, first.X10WS)
		}
	}
	// Overall: the irregular coarse-grained apps show a clear gain at scale.
	gains := map[string]float64{}
	for _, row := range rows {
		gains[row.App] = row.BestGainPct
	}
	for _, app := range []string{"dmg", "dmr", "nbody"} {
		if gains[app] < 5 {
			t.Errorf("%s: best DistWS gain %.1f%%, want a clear improvement (paper: %v%%)",
				app, gains[app], PaperBestGainPct[app])
		}
	}
	t.Logf("\n%s", RenderFig5(rows))
}

func TestTable1GranularitiesMatchPaper(t *testing.T) {
	rows, err := testRunner.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		lo, hi := row.PaperMS*0.8, row.PaperMS*1.2
		if row.MeasuredMS < lo || row.MeasuredMS > hi {
			t.Errorf("%s: granularity %.3f ms outside ±20%% of paper %.3f ms",
				row.App, row.MeasuredMS, row.PaperMS)
		}
	}
}

func TestTable2MissRateOrdering(t *testing.T) {
	rows, err := testRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	var sumX10, sumNS, sumDWS float64
	for _, row := range rows {
		sumX10 += row.X10WS
		sumNS += row.DistWSNS
		sumDWS += row.DistWS
		// Per app: any distributed stealing raises misses over X10WS.
		if row.DistWS < row.X10WS*0.98 {
			t.Errorf("%s: DistWS miss rate %.2f below X10WS %.2f (migration cannot reduce misses)",
				row.App, row.DistWS, row.X10WS)
		}
		if row.DistWSNS < row.X10WS*0.98 {
			t.Errorf("%s: DistWS-NS miss rate %.2f below X10WS %.2f",
				row.App, row.DistWSNS, row.X10WS)
		}
	}
	// Across the suite, non-selective stealing pollutes caches more than
	// selective stealing (Table II's ordering; per-app exceptions occur at
	// reduced scale when DistWS steals far more chunks than DistWS-NS —
	// see EXPERIMENTS.md).
	if sumNS <= sumDWS {
		t.Errorf("aggregate miss rates: DistWS-NS %.1f not above DistWS %.1f", sumNS, sumDWS)
	}
	if sumDWS <= sumX10 {
		t.Errorf("aggregate miss rates: DistWS %.1f not above X10WS %.1f", sumDWS, sumX10)
	}
	t.Logf("\n%s", RenderTable2(rows))
}

func TestTable3MessageOrdering(t *testing.T) {
	rows, err := testRunner.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var sumNS, sumDWS int64
	for _, row := range rows {
		sumNS += row.DistWSNS
		sumDWS += row.DistWS
		// Per app: distributed stealing costs messages over X10WS.
		if row.X10WS >= row.DistWS || row.X10WS >= row.DistWSNS {
			t.Errorf("%s: X10WS messages %d should be the smallest (DistWS=%d, NS=%d)",
				row.App, row.X10WS, row.DistWS, row.DistWSNS)
		}
	}
	// Across the suite, non-selective stealing transmits more than
	// selective stealing (Table III's ordering).
	if sumNS <= sumDWS {
		t.Errorf("aggregate messages: DistWS-NS %d not above DistWS %d", sumNS, sumDWS)
	}
	t.Logf("\n%s", RenderTable3(rows))
}

func TestFig6PolicyRanking(t *testing.T) {
	rows, err := testRunner.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var nsBetter int
	for _, row := range rows {
		// DistWS is at worst at par with DistWS-NS per app (small
		// scheduling variance allowed) and clearly ahead overall.
		if row.DistWS < row.DistWSNS*0.93 {
			t.Errorf("%s: DistWS %.2f below DistWS-NS %.2f", row.App, row.DistWS, row.DistWSNS)
		}
		if row.DistWS >= row.DistWSNS {
			nsBetter++
		}
		if row.DistWS < row.X10WS*0.99 {
			t.Errorf("%s: DistWS %.2f below X10WS %.2f at 128 workers", row.App, row.DistWS, row.X10WS)
		}
	}
	if nsBetter < 4 {
		t.Errorf("DistWS should match or beat DistWS-NS on most apps; did so on %d of %d", nsBetter, len(rows))
	}
	t.Logf("\n%s", RenderFig6(rows))
}

func TestFig7UtilizationShape(t *testing.T) {
	rows, err := testRunner.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]map[sched.Kind]Fig7Row{}
	for _, row := range rows {
		if byApp[row.App] == nil {
			byApp[row.App] = map[sched.Kind]Fig7Row{}
		}
		byApp[row.App][row.Policy] = row
	}
	var x10Disp, dwsDisp, x10Mean, dwsMean float64
	for app, m := range byApp {
		x10, dws := m[sched.X10WS], m[sched.DistWS]
		x10Disp += x10.Spread.Disparity
		dwsDisp += dws.Spread.Disparity
		x10Mean += x10.Spread.Mean
		dwsMean += dws.Spread.Mean
		_ = app
	}
	n := float64(len(byApp))
	// DistWS must have materially lower utilization disparity and higher
	// mean utilization than X10WS (paper: ~35% disparity -> ~13%).
	if dwsDisp/n >= x10Disp/n {
		t.Errorf("mean disparity: DistWS %.1f%% not below X10WS %.1f%%", dwsDisp/n, x10Disp/n)
	}
	if dwsMean/n <= x10Mean/n {
		t.Errorf("mean utilization: DistWS %.1f%% not above X10WS %.1f%%", dwsMean/n, x10Mean/n)
	}
	t.Logf("\n%s", RenderFig7(rows))
}

func TestGranularityStudyFineTasksDoNotProfit(t *testing.T) {
	rows, err := testRunner.GranularityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 micro apps", len(rows))
	}
	for _, row := range rows {
		// Paper §VIII-Q2: DistWS performs worse on sub-millisecond tasks.
		// Allow parity, reject meaningful gains.
		if row.GainPct > 5 {
			t.Errorf("%s (%.3f ms): DistWS gained %.1f%% — fine tasks should not profit",
				row.App, row.GranMS, row.GainPct)
		}
	}
	t.Logf("\n%s", RenderGranularity(rows))
}

func TestUTSStudyOrdering(t *testing.T) {
	rows, err := testRunner.UTSStudy()
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[sched.Kind]UTSRow{}
	for _, row := range rows {
		byPolicy[row.Policy] = row
	}
	rnd := byPolicy[sched.RandomWS]
	dws := byPolicy[sched.DistWS]
	// Paper §X: DistWS beats random stealing (~9% at 128 workers); all
	// UTS tasks are flexible so DistWS adds no overhead.
	if dws.Speedup < rnd.Speedup*0.98 {
		t.Errorf("DistWS speedup %.2f below RandomWS %.2f on UTS", dws.Speedup, rnd.Speedup)
	}
	t.Logf("\n%s", RenderUTS(rows))
}

// TestContentionStudyRelaxedWins pins the PR's acceptance metric: at 512
// simulated workers the relaxed queue with receiver-initiated stealing
// must sustain at least twice the mutex deque's steal throughput, and the
// advantage must not shrink as the cluster grows. Deterministic: the
// study runs on seeded virtual time.
func TestContentionStudyRelaxedWins(t *testing.T) {
	rows, err := testRunner.ContentionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ContentionWorkerCounts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ContentionWorkerCounts))
	}
	for _, row := range rows {
		mutex := row.Cell(deque.KindMutex)
		chaselev := row.Cell(deque.KindChaseLev)
		relaxed := row.Cell(deque.KindRelaxed)
		if relaxed.StealThroughput <= mutex.StealThroughput {
			t.Errorf("%d workers: relaxed throughput %.0f not above mutex %.0f",
				row.Workers, relaxed.StealThroughput, mutex.StealThroughput)
		}
		// Chase-Lev removes the lock but steals one task per CAS, so its
		// win shows up as a shorter makespan, not a higher migration rate.
		if chaselev.MakespanMS >= mutex.MakespanMS {
			t.Errorf("%d workers: chaselev makespan %.2fms not below mutex %.2fms",
				row.Workers, chaselev.MakespanMS, mutex.MakespanMS)
		}
		if relaxed.StealRequests == 0 || relaxed.Donations == 0 {
			t.Errorf("%d workers: receiver-initiated counters missing (requests=%d donations=%d)",
				row.Workers, relaxed.StealRequests, relaxed.Donations)
		}
		if mutex.DuplicateTakes != 0 || chaselev.DuplicateTakes != 0 {
			t.Errorf("%d workers: only relaxed may record duplicate takes", row.Workers)
		}
	}
	var at512 ContentionRow
	for _, row := range rows {
		if row.Workers == 512 {
			at512 = row
		}
	}
	if at512.Workers != 512 {
		t.Fatal("study must include the 512-worker point")
	}
	if at512.RelaxedOverMutex < 2 {
		t.Errorf("512 workers: relaxed/mutex steal throughput %.2fx, want >= 2x",
			at512.RelaxedOverMutex)
	}
	t.Logf("\n%s", RenderContention(rows))
}

func TestRendersIncludePaperAnchors(t *testing.T) {
	rows, err := testRunner.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Quicksort", "DMG", "899", "Paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q:\n%s", want, out)
		}
	}
}

func TestFig4ReportsBothTimeBases(t *testing.T) {
	rows, err := testRunner.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, row := range rows {
		if row.VirtualMS <= 0 {
			t.Errorf("%s: virtual sequential time %.2f, want > 0", row.App, row.VirtualMS)
		}
		if row.WallMS <= 0 {
			t.Errorf("%s: wall sequential time %.2f, want > 0", row.App, row.WallMS)
		}
	}
	out := RenderFig4(rows)
	if !strings.Contains(out, "Virtual") || !strings.Contains(out, "wall") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestTraceCacheReturnsSameGraph(t *testing.T) {
	app := testRunner.Apps[0]
	a, err := testRunner.Trace(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner.Trace(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("trace cache returned distinct graphs")
	}
	c, err := testRunner.Trace(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("different place counts must not share a cache entry")
	}
}

// TestStealRatioFallsWithScale checks the scale-invariance claim of
// EXPERIMENTS.md: the paper's tiny steals-to-task ratios (1e-4..1e-5)
// come from workload size, so growing the workload must shrink the
// measured ratio at fixed cluster size.
func TestStealRatioFallsWithScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep is slow")
	}
	ratioAt := func(scale suite.Scale) float64 {
		app, err := suite.ByName("quicksort", scale, 1)
		if err != nil {
			t.Fatal(err)
		}
		g, err := app.Trace(testRunner.Cluster.Places)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(g, testRunner.Cluster, sched.DistWS, sim.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.StealsToTaskRatio()
	}
	small := ratioAt(suite.Small)
	medium := ratioAt(suite.Medium)
	if medium >= small {
		t.Fatalf("steals-to-task ratio should fall with scale: small %.3f vs medium %.3f",
			small, medium)
	}
}

// The ISSUE acceptance bar for the adaptive policy: within 5% of
// annotated DistWS per app, and on the suite geomean strictly above the
// locality-oblivious baselines — with zero annotations, under a fixed
// seed (the harness is deterministic, so this is a pinned outcome, not
// a statistical one).
func TestAdaptiveWithinBarOfDistWS(t *testing.T) {
	rows, err := testRunner.AdaptiveStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 apps", len(rows))
	}
	var distws, distwsns, random, adaptive []float64
	var reclass int64
	for _, row := range rows {
		if row.GapPct < -5.0 {
			t.Errorf("%s: adaptive %.1f is %.1f%% below DistWS %.1f (bar: -5%%)",
				row.App, row.Adaptive, -row.GapPct, row.DistWS)
		}
		distws = append(distws, row.DistWS)
		distwsns = append(distwsns, row.DistWSNS)
		random = append(random, row.RandomWS)
		adaptive = append(adaptive, row.Adaptive)
		reclass += row.Reclass
	}
	gm := geomean(adaptive)
	if base := geomean(distws); gm < 0.95*base {
		t.Errorf("adaptive geomean %.2f below 95%% of DistWS %.2f", gm, base)
	}
	if ns := geomean(distwsns); gm <= ns {
		t.Errorf("adaptive geomean %.2f does not beat DistWS-NS %.2f", gm, ns)
	}
	if rnd := geomean(random); gm <= rnd {
		t.Errorf("adaptive geomean %.2f does not beat RandomWS %.2f", gm, rnd)
	}
	// Zero reclassifications would mean the controller never engaged:
	// the suite contains sensitive kinds it must discover online.
	if reclass == 0 {
		t.Errorf("no reclassifications across the suite: controller inert")
	}
	out := RenderAdaptive(rows)
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "Reclass") {
		t.Fatalf("render missing aggregate or flip column:\n%s", out)
	}
}
