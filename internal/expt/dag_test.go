package expt

import (
	"testing"

	"distws/internal/apps/suite"
	"distws/internal/dag"
	"distws/internal/deque"
)

func dagRunner(workers int) *Runner {
	r := New(suite.Small, 1)
	r.Workers = workers
	return r
}

// TestDAGStudyDataAwareWinsOnCholesky pins the exhibit's acceptance
// claim: at seed 1 on the paper cluster, data-aware placement beats
// locality-blind on tiled Cholesky on BOTH makespan and migrated bytes.
func TestDAGStudyDataAwareWinsOnCholesky(t *testing.T) {
	rows, err := dagRunner(0).DAGStudy()
	if err != nil {
		t.Fatal(err)
	}
	var chol *DAGRow
	for i := range rows {
		if rows[i].App == "cholesky" {
			chol = &rows[i]
		}
	}
	if chol == nil {
		t.Fatal("no cholesky row in DAG study")
	}
	blind, aware := chol.Cell(dag.PolicyBlind), chol.Cell(dag.PolicyDataAware)
	if aware.MakespanMS >= blind.MakespanMS {
		t.Fatalf("data-aware makespan %.3fms !< blind %.3fms", aware.MakespanMS, blind.MakespanMS)
	}
	if aware.MigratedBytes >= blind.MigratedBytes {
		t.Fatalf("data-aware migrated %d bytes !< blind %d", aware.MigratedBytes, blind.MigratedBytes)
	}
}

// TestDAGStudyDeterministic pins that the exhibit renders byte-identically
// regardless of the runner's pool width — the -workers half of the
// dag-parity gate.
func TestDAGStudyDeterministic(t *testing.T) {
	seq, err := dagRunner(1).DAGStudy()
	if err != nil {
		t.Fatal(err)
	}
	par, err := dagRunner(8).DAGStudy()
	if err != nil {
		t.Fatal(err)
	}
	if RenderDAG(seq) != RenderDAG(par) {
		t.Fatalf("DAG study diverged across pool widths:\n--- workers=1\n%s\n--- workers=8\n%s",
			RenderDAG(seq), RenderDAG(par))
	}
}

// TestDAGStudyDequeKindParity pins the other half of the dag-parity
// gate: the study never sets LockContention, so the deque kind cannot
// change its output.
func TestDAGStudyDequeKindParity(t *testing.T) {
	var base string
	for _, k := range deque.Kinds() {
		r := dagRunner(0)
		r.Deque = k
		rows, err := r.DAGStudy()
		if err != nil {
			t.Fatal(err)
		}
		out := RenderDAG(rows)
		if base == "" {
			base = out
			continue
		}
		if out != base {
			t.Fatalf("deque kind %v changed the DAG study output", k)
		}
	}
}
