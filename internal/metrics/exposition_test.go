package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exposition's metric names and order.
// The live /metrics endpoint is a public contract scraped by external
// tooling: fields may be appended, never renamed or reordered. If this
// test fails because you added a counter, append its line at the end.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (Snapshot{}).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, strings.Fields(line)[0])
	}
	want := []string{
		"distws_tasks_executed_total",
		"distws_tasks_spawned_total",
		"distws_local_steals_total",
		"distws_remote_steals_total",
		"distws_failed_steals_total",
		"distws_remote_probes_total",
		"distws_messages_total",
		"distws_bytes_transferred_total",
		"distws_cache_refs_total",
		"distws_cache_misses_total",
		"distws_remote_data_accesses_total",
		"distws_tasks_migrated_total",
		"distws_steal_timeouts_total",
		"distws_steal_retries_total",
		"distws_dropped_messages_total",
		"distws_places_lost_total",
		"distws_tasks_reexecuted_total",
		"distws_backpressure_total",
		"distws_reclassifications_total",
		"distws_membership_joins_total",
		"distws_membership_drains_total",
		"distws_membership_rejoins_total",
		"distws_heartbeat_misses_total",
		"distws_tasks_offloaded_total",
		"distws_duplicated_messages_total",
		"distws_jobs_submitted_total",
		"distws_jobs_admitted_total",
		"distws_jobs_rejected_total",
		"distws_jobs_completed_total",
		"distws_duplicate_takes_total",
		"distws_donations_total",
		"distws_steal_requests_total",
		"distws_dag_tasks_released_total",
		"distws_dag_resident_hits_total",
		"distws_dag_resident_misses_total",
		"distws_dag_fetched_bytes_total",
	}
	if len(names) != len(want) {
		t.Fatalf("exposition has %d samples, want %d:\n%v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sample %d = %q, want %q (names and order are pinned)", i, names[i], want[i])
		}
	}
}

func TestPrometheusFormatShape(t *testing.T) {
	var s Snapshot
	s.TasksExecuted = 7
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP distws_tasks_executed_total ",
		"# TYPE distws_tasks_executed_total counter\n",
		"\ndistws_tasks_executed_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestUtilizationPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUtilizationPrometheus(&buf, []float64{99.5, 0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE distws_place_busy_fraction_percent gauge",
		`distws_place_busy_fraction_percent{place="0"} 99.5`,
		`distws_place_busy_fraction_percent{place="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("gauge exposition missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteUtilizationPrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty fractions emitted %q", buf.String())
	}
}

// TestConcurrentIncrementWhileExposing exercises the scrape path under
// concurrent counter increments — the live-endpoint access pattern.
// Run under -race.
func TestConcurrentIncrementWhileExposing(t *testing.T) {
	const goroutines, increments = 4, 5000
	var ctrs Counters
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < increments; j++ {
				ctrs.TasksExecuted.Add(1)
				ctrs.RemoteSteals.Add(1)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		var buf bytes.Buffer
		if err := ctrs.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := ctrs.Snapshot().TasksExecuted; got != goroutines*increments {
		t.Fatalf("TasksExecuted = %d, want %d", got, goroutines*increments)
	}
}
