package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	c.TasksSpawned.Add(12)
	c.LocalSteals.Add(3)
	c.RemoteSteals.Add(2)
	c.Messages.Add(7)
	c.BytesTransferred.Add(1024)

	s := c.Snapshot()
	if s.TasksExecuted != 10 || s.TasksSpawned != 12 {
		t.Fatalf("task counts: got %d/%d, want 10/12", s.TasksExecuted, s.TasksSpawned)
	}
	if got := s.Steals(); got != 5 {
		t.Fatalf("Steals() = %d, want 5", got)
	}
	if got := s.StealsToTaskRatio(); got != 0.5 {
		t.Fatalf("StealsToTaskRatio() = %v, want 0.5", got)
	}
}

func TestStealsToTaskRatioZeroTasks(t *testing.T) {
	var s Snapshot
	if got := s.StealsToTaskRatio(); got != 0 {
		t.Fatalf("ratio with zero tasks = %v, want 0", got)
	}
}

func TestCacheMissRate(t *testing.T) {
	s := Snapshot{CacheRefs: 200, CacheMisses: 41}
	if got, want := s.CacheMissRate(), 20.5; got != want {
		t.Fatalf("CacheMissRate() = %v, want %v", got, want)
	}
	var zero Snapshot
	if zero.CacheMissRate() != 0 {
		t.Fatalf("CacheMissRate() with no refs should be 0")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.TasksExecuted.Add(1)
				c.Messages.Add(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.TasksExecuted != goroutines*per {
		t.Fatalf("TasksExecuted = %d, want %d", s.TasksExecuted, goroutines*per)
	}
	if s.Messages != 2*goroutines*per {
		t.Fatalf("Messages = %d, want %d", s.Messages, 2*goroutines*per)
	}
}

func TestUtilizationFractions(t *testing.T) {
	u := NewUtilization(4)
	u.AddBusy(0, 100)
	u.AddBusy(1, 50)
	u.AddBusy(3, 200)
	got := u.Fractions(100, 2) // denom per place: 200
	want := []float64{50, 25, 0, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fractions[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestUtilizationClampsAt100(t *testing.T) {
	u := NewUtilization(1)
	u.AddBusy(0, 1000)
	if got := u.Fractions(10, 1)[0]; got != 100 {
		t.Fatalf("over-busy place should clamp to 100%%, got %v", got)
	}
}

func TestUtilizationZeroTotal(t *testing.T) {
	u := NewUtilization(2)
	u.AddBusy(0, 5)
	for i, f := range u.Fractions(0, 8) {
		if f != 0 {
			t.Fatalf("Fractions with zero total: slot %d = %v, want 0", i, f)
		}
	}
}

func TestNewUtilizationPanicsOnBadPlaces(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewUtilization(0) should panic")
		}
	}()
	NewUtilization(0)
}

func TestSummarize(t *testing.T) {
	sp := Summarize([]float64{60, 95, 80, 65})
	if sp.Min != 60 || sp.Max != 95 {
		t.Fatalf("min/max = %v/%v, want 60/95", sp.Min, sp.Max)
	}
	if sp.Mean != 75 {
		t.Fatalf("mean = %v, want 75", sp.Mean)
	}
	if sp.Disparity != 35 {
		t.Fatalf("disparity = %v, want 35", sp.Disparity)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if sp := Summarize(nil); sp != (Spread{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", sp)
	}
}

func TestVariance(t *testing.T) {
	if v := Variance([]float64{5, 5, 5}); v != 0 {
		t.Fatalf("variance of constant series = %v, want 0", v)
	}
	v := Variance([]float64{2, 4})
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("variance = %v, want 1", v)
	}
}

// Property: disparity is always >= 0 and Mean lies in [Min, Max].
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs { // bound to the utilization domain [0, 100]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(math.Abs(x), 100)
		}
		sp := Summarize(xs)
		if len(xs) == 0 {
			return sp == Spread{}
		}
		return sp.Disparity >= 0 && sp.Mean >= sp.Min-1e-9 && sp.Mean <= sp.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative.
func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			// Utilization fractions live in [0, 100]; huge or non-finite
			// values would overflow the squared deviations.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			xs[i] = math.Mod(math.Abs(x), 100)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatSeries(t *testing.T) {
	s := FormatSeries([]float64{10.05, 20})
	if s != "p0=10.1% p1=20.0%" && s != "p0=10.0% p1=20.0%" {
		t.Fatalf("FormatSeries = %q", s)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(1)
	if got := c.Snapshot().String(); got == "" {
		t.Fatalf("String() should be non-empty")
	}
}

func TestSnapshotStringFaultSuffix(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(1)
	clean := c.Snapshot().String()
	if strings.Contains(clean, "faults(") {
		t.Fatalf("fault-free snapshot should omit the fault suffix: %q", clean)
	}
	c.StealTimeouts.Add(3)
	c.TasksReExecuted.Add(2)
	faulty := c.Snapshot().String()
	if !strings.Contains(faulty, "faults(timeouts=3") || !strings.Contains(faulty, "reExecuted=2") {
		t.Fatalf("fault suffix missing: %q", faulty)
	}
}
