// Package metrics provides lock-free counters and per-place utilization
// accounting shared by the real runtime (internal/core) and the cluster
// simulator (internal/sim).
//
// The counter set mirrors the quantities reported in the paper's
// evaluation: local and remote steal counts (Fig. 3), messages and bytes
// transmitted across nodes (Table III), cache misses and references
// (Table II), and per-place busy time for CPU-utilization curves (Fig. 7).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counters aggregates the scheduler- and transport-level event counts for a
// single run. All methods are safe for concurrent use; the zero value is
// ready to use.
type Counters struct {
	TasksExecuted    atomic.Int64 // tasks run to completion
	TasksSpawned     atomic.Int64 // tasks created
	LocalSteals      atomic.Int64 // successful steals within a place
	RemoteSteals     atomic.Int64 // successful steals across places
	FailedSteals     atomic.Int64 // steal attempts that found nothing
	RemoteProbes     atomic.Int64 // remote steal requests sent (incl. failed)
	Messages         atomic.Int64 // messages across nodes (steal traffic + data)
	BytesTransferred atomic.Int64 // payload bytes across nodes
	CacheRefs        atomic.Int64 // modelled cache references
	CacheMisses      atomic.Int64 // modelled cache misses
	RemoteDataAccess atomic.Int64 // at() style remote reference operations
	TasksMigrated    atomic.Int64 // tasks executed away from their home place

	// Fault-tolerance counters (internal/fault): recovery must be
	// observable, so every injected or real failure the scheduler survives
	// is recorded here.
	StealTimeouts   atomic.Int64 // steal round trips that timed out
	Retries         atomic.Int64 // steal requests re-sent after a timeout
	DroppedMessages atomic.Int64 // messages lost to injected link faults
	PlacesLost      atomic.Int64 // places that crashed during the run
	TasksReExecuted atomic.Int64 // tasks re-enqueued after a place failure

	// Backpressure counts sends that found the destination inbox or link
	// queue full (see comm.ErrBackpressure): lossy steal traffic is shed,
	// reliable traffic blocks, and either way the congestion is recorded
	// here instead of disappearing silently.
	Backpressure atomic.Int64

	// Reclassifications counts online task-kind classification flips by
	// the adapt controller (the `adaptive` policy). Zero under every
	// annotated policy.
	Reclassifications atomic.Int64

	// Membership counters (internal/member): dynamic-membership events
	// must be observable, both for the churn chaos harness's assertions
	// and for operators of a long-lived daemon cluster.
	MembershipJoins    atomic.Int64 // places that joined at runtime
	MembershipDrains   atomic.Int64 // places that departed via graceful drain
	MembershipRejoins  atomic.Int64 // down places readmitted with a bumped incarnation
	HeartbeatMisses    atomic.Int64 // alive→suspect transitions by the failure detector
	TasksOffloaded     atomic.Int64 // queued tasks handed to survivors by a draining place
	DuplicatedMessages atomic.Int64 // messages duplicated by injected link faults

	// Service counters (internal/service): the long-lived multi-tenant
	// job surface. Per-tenant breakdowns live in service.Stats; these
	// aggregates make the service visible on the same counter line and
	// Prometheus exposition as everything else.
	JobsSubmitted atomic.Int64 // job submissions that reached the front door
	JobsAdmitted  atomic.Int64 // submissions accepted by admission control
	JobsRejected  atomic.Int64 // submissions nacked (rate, quota, draining, ...)
	JobsCompleted atomic.Int64 // admitted jobs completed and acked to a client

	// Relaxed-deque counters (deque.KindRelaxed + receiver-initiated
	// stealing): multiplicity makes duplicate takes legal, so their rate
	// must be observable, as must the donation traffic that replaces
	// shared-deque polling.
	DuplicateTakes atomic.Int64 // takes discarded by dispatch-level dedup
	Donations      atomic.Int64 // steal-half donations served to a requester
	StealRequests  atomic.Int64 // receiver-initiated requests posted to mailboxes

	// Dataflow-DAG counters (internal/dag): the data-aware scheduler's
	// effectiveness is exactly the hit/miss split on input-block
	// residency, so both sides — and the bytes the misses moved — are
	// first-class observables.
	DAGTasksReleased  atomic.Int64 // tasks released by their last dependency completing
	DAGResidentHits   atomic.Int64 // input blocks already resident at the executing place
	DAGResidentMisses atomic.Int64 // input blocks fetched from another place
	DAGFetchedBytes   atomic.Int64 // bytes moved by resident misses
}

// Snapshot is an immutable copy of a Counters at one instant.
type Snapshot struct {
	TasksExecuted     int64
	TasksSpawned      int64
	LocalSteals       int64
	RemoteSteals      int64
	FailedSteals      int64
	RemoteProbes      int64
	Messages          int64
	BytesTransferred  int64
	CacheRefs         int64
	CacheMisses       int64
	RemoteDataAccess  int64
	TasksMigrated     int64
	StealTimeouts     int64
	Retries           int64
	DroppedMessages   int64
	PlacesLost        int64
	TasksReExecuted   int64
	Backpressure      int64
	Reclassifications int64

	MembershipJoins    int64
	MembershipDrains   int64
	MembershipRejoins  int64
	HeartbeatMisses    int64
	TasksOffloaded     int64
	DuplicatedMessages int64

	JobsSubmitted int64
	JobsAdmitted  int64
	JobsRejected  int64
	JobsCompleted int64

	DuplicateTakes int64
	Donations      int64
	StealRequests  int64

	DAGTasksReleased  int64
	DAGResidentHits   int64
	DAGResidentMisses int64
	DAGFetchedBytes   int64
}

// Snapshot returns a consistent-enough point-in-time copy of the counters.
// Individual fields are loaded atomically; the set as a whole is not a
// linearizable snapshot, which is fine for end-of-run reporting.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TasksExecuted:     c.TasksExecuted.Load(),
		TasksSpawned:      c.TasksSpawned.Load(),
		LocalSteals:       c.LocalSteals.Load(),
		RemoteSteals:      c.RemoteSteals.Load(),
		FailedSteals:      c.FailedSteals.Load(),
		RemoteProbes:      c.RemoteProbes.Load(),
		Messages:          c.Messages.Load(),
		BytesTransferred:  c.BytesTransferred.Load(),
		CacheRefs:         c.CacheRefs.Load(),
		CacheMisses:       c.CacheMisses.Load(),
		RemoteDataAccess:  c.RemoteDataAccess.Load(),
		TasksMigrated:     c.TasksMigrated.Load(),
		StealTimeouts:     c.StealTimeouts.Load(),
		Retries:           c.Retries.Load(),
		DroppedMessages:   c.DroppedMessages.Load(),
		PlacesLost:        c.PlacesLost.Load(),
		TasksReExecuted:   c.TasksReExecuted.Load(),
		Backpressure:      c.Backpressure.Load(),
		Reclassifications: c.Reclassifications.Load(),

		MembershipJoins:    c.MembershipJoins.Load(),
		MembershipDrains:   c.MembershipDrains.Load(),
		MembershipRejoins:  c.MembershipRejoins.Load(),
		HeartbeatMisses:    c.HeartbeatMisses.Load(),
		TasksOffloaded:     c.TasksOffloaded.Load(),
		DuplicatedMessages: c.DuplicatedMessages.Load(),

		JobsSubmitted: c.JobsSubmitted.Load(),
		JobsAdmitted:  c.JobsAdmitted.Load(),
		JobsRejected:  c.JobsRejected.Load(),
		JobsCompleted: c.JobsCompleted.Load(),

		DuplicateTakes: c.DuplicateTakes.Load(),
		Donations:      c.Donations.Load(),
		StealRequests:  c.StealRequests.Load(),

		DAGTasksReleased:  c.DAGTasksReleased.Load(),
		DAGResidentHits:   c.DAGResidentHits.Load(),
		DAGResidentMisses: c.DAGResidentMisses.Load(),
		DAGFetchedBytes:   c.DAGFetchedBytes.Load(),
	}
}

// DAGResidencyRate returns the fraction of DAG input-block lookups that
// found the block already resident, in percent. Zero when no DAG ran.
func (s Snapshot) DAGResidencyRate() float64 {
	total := s.DAGResidentHits + s.DAGResidentMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.DAGResidentHits) / float64(total)
}

// Steals returns the total number of successful steal operations.
func (s Snapshot) Steals() int64 { return s.LocalSteals + s.RemoteSteals }

// StealsToTaskRatio returns steals divided by executed tasks, the quantity
// plotted in Fig. 3. It returns 0 when no tasks ran.
func (s Snapshot) StealsToTaskRatio() float64 {
	if s.TasksExecuted == 0 {
		return 0
	}
	return float64(s.Steals()) / float64(s.TasksExecuted)
}

// CacheMissRate returns modelled misses per reference in percent (Table II).
func (s Snapshot) CacheMissRate() float64 {
	if s.CacheRefs == 0 {
		return 0
	}
	return 100 * float64(s.CacheMisses) / float64(s.CacheRefs)
}

// String renders the snapshot as a single human-readable line. Fault
// counters are appended only when the run actually saw failures, keeping
// fault-free output identical to the original format.
func (s Snapshot) String() string {
	base := fmt.Sprintf(
		"tasks=%d spawned=%d steals(local=%d remote=%d failed=%d) msgs=%d bytes=%d missRate=%.2f%% migrated=%d",
		s.TasksExecuted, s.TasksSpawned, s.LocalSteals, s.RemoteSteals,
		s.FailedSteals, s.Messages, s.BytesTransferred, s.CacheMissRate(),
		s.TasksMigrated)
	if s.Reclassifications > 0 {
		base += fmt.Sprintf(" reclass=%d", s.Reclassifications)
	}
	if s.Backpressure > 0 {
		base += fmt.Sprintf(" backpressure=%d", s.Backpressure)
	}
	if s.StealRequests > 0 || s.Donations > 0 || s.DuplicateTakes > 0 {
		base += fmt.Sprintf(" receiver(requests=%d donations=%d dupTakes=%d)",
			s.StealRequests, s.Donations, s.DuplicateTakes)
	}
	if s.DAGTasksReleased > 0 {
		base += fmt.Sprintf(" dag(released=%d hits=%d misses=%d fetchedBytes=%d)",
			s.DAGTasksReleased, s.DAGResidentHits, s.DAGResidentMisses, s.DAGFetchedBytes)
	}
	if s.JobsSubmitted > 0 {
		base += fmt.Sprintf(" jobs(submitted=%d admitted=%d rejected=%d completed=%d)",
			s.JobsSubmitted, s.JobsAdmitted, s.JobsRejected, s.JobsCompleted)
	}
	if s.MembershipJoins > 0 || s.MembershipDrains > 0 || s.MembershipRejoins > 0 ||
		s.HeartbeatMisses > 0 || s.TasksOffloaded > 0 {
		base += fmt.Sprintf(
			" membership(joins=%d drains=%d rejoins=%d hbMisses=%d offloaded=%d)",
			s.MembershipJoins, s.MembershipDrains, s.MembershipRejoins,
			s.HeartbeatMisses, s.TasksOffloaded)
	}
	if s.StealTimeouts == 0 && s.Retries == 0 && s.DroppedMessages == 0 &&
		s.PlacesLost == 0 && s.TasksReExecuted == 0 && s.DuplicatedMessages == 0 {
		return base
	}
	return base + fmt.Sprintf(
		" faults(timeouts=%d retries=%d dropped=%d duplicated=%d placesLost=%d reExecuted=%d)",
		s.StealTimeouts, s.Retries, s.DroppedMessages, s.DuplicatedMessages,
		s.PlacesLost, s.TasksReExecuted)
}

// Utilization tracks per-place busy time against a common total, yielding
// the per-node CPU utilization series of Fig. 7.
//
// Time is dimensionless: the real runtime feeds nanoseconds, the simulator
// feeds virtual ticks. The zero value is unusable; create with NewUtilization.
type Utilization struct {
	busy []atomic.Int64 // one slot per place
}

// NewUtilization returns a tracker for places places.
func NewUtilization(places int) *Utilization {
	if places <= 0 {
		panic(fmt.Sprintf("metrics: NewUtilization places=%d, want > 0", places))
	}
	return &Utilization{busy: make([]atomic.Int64, places)}
}

// AddBusy credits d time units of useful work to place p.
func (u *Utilization) AddBusy(p int, d int64) { u.busy[p].Add(d) }

// Places returns the number of tracked places.
func (u *Utilization) Places() int { return len(u.busy) }

// Busy returns the busy time accumulated by place p.
func (u *Utilization) Busy(p int) int64 { return u.busy[p].Load() }

// Fractions returns, for a run lasting total time units on workersPerPlace
// workers per place, the busy fraction of each place in percent.
func (u *Utilization) Fractions(total int64, workersPerPlace int) []float64 {
	out := make([]float64, len(u.busy))
	denom := float64(total) * float64(workersPerPlace)
	if denom <= 0 {
		return out
	}
	for i := range u.busy {
		f := 100 * float64(u.busy[i].Load()) / denom
		if f > 100 {
			f = 100
		}
		out[i] = f
	}
	return out
}

// Spread summarizes a utilization series: min, max, mean, and the
// max-min disparity the paper quotes (≈35 % for X10WS, ≈13 % for DistWS).
type Spread struct {
	Min, Max, Mean, Disparity float64
}

// Summarize computes the Spread of a utilization series.
func Summarize(fractions []float64) Spread {
	if len(fractions) == 0 {
		return Spread{}
	}
	sp := Spread{Min: fractions[0], Max: fractions[0]}
	var sum float64
	for _, f := range fractions {
		if f < sp.Min {
			sp.Min = f
		}
		if f > sp.Max {
			sp.Max = f
		}
		sum += f
	}
	sp.Mean = sum / float64(len(fractions))
	sp.Disparity = sp.Max - sp.Min
	return sp
}

// Variance returns the population variance of the series, matching the
// paper's "average variance in node utilization" phrasing.
func Variance(fractions []float64) float64 {
	if len(fractions) == 0 {
		return 0
	}
	mean := Summarize(fractions).Mean
	var acc float64
	for _, f := range fractions {
		d := f - mean
		acc += d * d
	}
	return acc / float64(len(fractions))
}

// FormatSeries renders a utilization series compactly, sorted by place id.
func FormatSeries(fractions []float64) string {
	idx := make([]int, len(fractions))
	for i := range idx {
		idx[i] = i
	}
	sort.Ints(idx)
	var b strings.Builder
	for i, id := range idx {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "p%d=%.1f%%", id, fractions[id])
	}
	return b.String()
}
