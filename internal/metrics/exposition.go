package metrics

import (
	"fmt"
	"io"
)

// expoField is one exported counter: Prometheus metric name, help text,
// and the accessor into a Snapshot. The slice order is the exposition
// order; both names and order are pinned by a golden test because the
// live /metrics endpoint (internal/obs) is scraped by external tooling
// and must stay stable.
var expoFields = []struct {
	name string
	help string
	get  func(Snapshot) int64
}{
	{"distws_tasks_executed_total", "Tasks run to completion.", func(s Snapshot) int64 { return s.TasksExecuted }},
	{"distws_tasks_spawned_total", "Tasks created.", func(s Snapshot) int64 { return s.TasksSpawned }},
	{"distws_local_steals_total", "Successful steals within a place.", func(s Snapshot) int64 { return s.LocalSteals }},
	{"distws_remote_steals_total", "Successful steals across places.", func(s Snapshot) int64 { return s.RemoteSteals }},
	{"distws_failed_steals_total", "Steal sweeps that found nothing.", func(s Snapshot) int64 { return s.FailedSteals }},
	{"distws_remote_probes_total", "Remote steal requests sent (incl. failed).", func(s Snapshot) int64 { return s.RemoteProbes }},
	{"distws_messages_total", "Messages across nodes (steal traffic + data).", func(s Snapshot) int64 { return s.Messages }},
	{"distws_bytes_transferred_total", "Payload bytes across nodes.", func(s Snapshot) int64 { return s.BytesTransferred }},
	{"distws_cache_refs_total", "Modelled cache references.", func(s Snapshot) int64 { return s.CacheRefs }},
	{"distws_cache_misses_total", "Modelled cache misses.", func(s Snapshot) int64 { return s.CacheMisses }},
	{"distws_remote_data_accesses_total", "Remote at()-style reference operations.", func(s Snapshot) int64 { return s.RemoteDataAccess }},
	{"distws_tasks_migrated_total", "Tasks executed away from their home place.", func(s Snapshot) int64 { return s.TasksMigrated }},
	{"distws_steal_timeouts_total", "Steal round trips that timed out.", func(s Snapshot) int64 { return s.StealTimeouts }},
	{"distws_steal_retries_total", "Steal requests re-sent after a timeout.", func(s Snapshot) int64 { return s.Retries }},
	{"distws_dropped_messages_total", "Messages lost to injected link faults.", func(s Snapshot) int64 { return s.DroppedMessages }},
	{"distws_places_lost_total", "Places that crashed during the run.", func(s Snapshot) int64 { return s.PlacesLost }},
	{"distws_tasks_reexecuted_total", "Tasks re-enqueued after a place failure.", func(s Snapshot) int64 { return s.TasksReExecuted }},
	{"distws_backpressure_total", "Sends that found a full inbox or link queue.", func(s Snapshot) int64 { return s.Backpressure }},
	{"distws_reclassifications_total", "Online task-kind classification flips (adaptive policy).", func(s Snapshot) int64 { return s.Reclassifications }},
	{"distws_membership_joins_total", "Places that joined the cluster at runtime.", func(s Snapshot) int64 { return s.MembershipJoins }},
	{"distws_membership_drains_total", "Places that departed via graceful drain.", func(s Snapshot) int64 { return s.MembershipDrains }},
	{"distws_membership_rejoins_total", "Down places readmitted with a bumped incarnation.", func(s Snapshot) int64 { return s.MembershipRejoins }},
	{"distws_heartbeat_misses_total", "Alive-to-suspect transitions by the failure detector.", func(s Snapshot) int64 { return s.HeartbeatMisses }},
	{"distws_tasks_offloaded_total", "Queued tasks handed to survivors by a draining place.", func(s Snapshot) int64 { return s.TasksOffloaded }},
	{"distws_duplicated_messages_total", "Messages duplicated by injected link faults.", func(s Snapshot) int64 { return s.DuplicatedMessages }},
	{"distws_jobs_submitted_total", "Job submissions that reached the service front door.", func(s Snapshot) int64 { return s.JobsSubmitted }},
	{"distws_jobs_admitted_total", "Job submissions accepted by admission control.", func(s Snapshot) int64 { return s.JobsAdmitted }},
	{"distws_jobs_rejected_total", "Job submissions nacked by admission control.", func(s Snapshot) int64 { return s.JobsRejected }},
	{"distws_jobs_completed_total", "Admitted jobs completed and acknowledged to a client.", func(s Snapshot) int64 { return s.JobsCompleted }},
	{"distws_duplicate_takes_total", "Relaxed-deque takes discarded by dispatch-level dedup.", func(s Snapshot) int64 { return s.DuplicateTakes }},
	{"distws_donations_total", "Steal-half donations served to a requesting worker.", func(s Snapshot) int64 { return s.Donations }},
	{"distws_steal_requests_total", "Receiver-initiated steal requests posted to mailboxes.", func(s Snapshot) int64 { return s.StealRequests }},
	{"distws_dag_tasks_released_total", "DAG tasks released by their last dependency completing.", func(s Snapshot) int64 { return s.DAGTasksReleased }},
	{"distws_dag_resident_hits_total", "DAG input blocks already resident at the executing place.", func(s Snapshot) int64 { return s.DAGResidentHits }},
	{"distws_dag_resident_misses_total", "DAG input blocks fetched from another place.", func(s Snapshot) int64 { return s.DAGResidentMisses }},
	{"distws_dag_fetched_bytes_total", "Bytes moved by DAG resident misses.", func(s Snapshot) int64 { return s.DAGFetchedBytes }},
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP line, one TYPE line, and one sample
// per counter, in a fixed order. The format is a public contract — see
// the golden test — so fields must only ever be appended.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range expoFields {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			f.name, f.help, f.name, f.name, f.get(s)); err != nil {
			return err
		}
	}
	return nil
}

// WriteUtilizationPrometheus writes per-place busy fractions (percent)
// as a Prometheus gauge with a place label, complementing the counter
// exposition on live endpoints.
func WriteUtilizationPrometheus(w io.Writer, fractions []float64) error {
	if len(fractions) == 0 {
		return nil
	}
	const name = "distws_place_busy_fraction_percent"
	if _, err := fmt.Fprintf(w, "# HELP %s Per-place busy fraction of elapsed time in percent.\n# TYPE %s gauge\n", name, name); err != nil {
		return err
	}
	for p, f := range fractions {
		if _, err := fmt.Fprintf(w, "%s{place=\"%d\"} %g\n", name, p, f); err != nil {
			return err
		}
	}
	return nil
}
