package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func simpleGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("test")
	r := b.Root(Task{CostNS: 100, Flexible: true})
	b.Child(r, Task{CostNS: 50})
	b.Child(r, Task{CostNS: 70, Flexible: true, HomeMode: HomeInherit})
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	return g
}

func TestBuilderBuildsValidGraph(t *testing.T) {
	g := simpleGraph(t)
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3", g.NumTasks())
	}
	if len(g.Roots) != 1 || g.Roots[0] != 0 {
		t.Fatalf("Roots = %v", g.Roots)
	}
	if got := g.TotalWorkNS(); got != 220 {
		t.Fatalf("TotalWorkNS = %d, want 220", got)
	}
	if got := g.Sequential(); got != 220 {
		t.Fatalf("Sequential = %d, want 220", got)
	}
}

func TestSequentialPrefersRecordedTime(t *testing.T) {
	g := simpleGraph(t)
	g.SeqNS = 999
	if got := g.Sequential(); got != 999 {
		t.Fatalf("Sequential = %d, want recorded 999", got)
	}
}

func TestFlexibleFraction(t *testing.T) {
	g := simpleGraph(t)
	want := 2.0 / 3.0
	if got := g.FlexibleFraction(); got != want {
		t.Fatalf("FlexibleFraction = %v, want %v", got, want)
	}
	empty := &Graph{}
	if empty.FlexibleFraction() != 0 {
		t.Fatalf("empty graph fraction should be 0")
	}
}

func TestValidateCatchesBadID(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 5}}, Roots: []int{0}}
	assertInvalid(t, g, "has ID")
}

func TestValidateCatchesNegativeCost(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 0, CostNS: -1}}, Roots: []int{0}}
	assertInvalid(t, g, "negative cost")
}

func TestValidateCatchesBadChild(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 0, Children: []int{7}}}, Roots: []int{0}}
	assertInvalid(t, g, "out-of-range child")
}

func TestValidateCatchesSelfChild(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 0, Children: []int{0}}}, Roots: []int{0}}
	assertInvalid(t, g, "own child")
}

func TestValidateCatchesSharedChild(t *testing.T) {
	g := &Graph{
		Tasks: []Task{
			{ID: 0, Children: []int{2}},
			{ID: 1, Children: []int{2}},
			{ID: 2},
		},
		Roots: []int{0, 1},
	}
	assertInvalid(t, g, "two parents")
}

func TestValidateCatchesRootWithParent(t *testing.T) {
	g := &Graph{
		Tasks: []Task{{ID: 0, Children: []int{1}}, {ID: 1}},
		Roots: []int{0, 1},
	}
	assertInvalid(t, g, "root 1 has a parent")
}

func TestValidateCatchesUnreachable(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 0}, {ID: 1}}, Roots: []int{0}}
	assertInvalid(t, g, "unreachable")
}

func TestValidateCatchesBadSpawnFrac(t *testing.T) {
	g := &Graph{
		Tasks: []Task{{ID: 0, Children: []int{1}, SpawnFrac: []float64{1.5}}, {ID: 1}},
		Roots: []int{0},
	}
	assertInvalid(t, g, "spawn fraction")
	g = &Graph{
		Tasks: []Task{{ID: 0, Children: []int{1}, SpawnFrac: []float64{0.5, 0.7}}, {ID: 1}},
		Roots: []int{0},
	}
	assertInvalid(t, g, "spawn fractions for")
}

func TestValidateCatchesDuplicateRoot(t *testing.T) {
	g := &Graph{Tasks: []Task{{ID: 0}}, Roots: []int{0, 0}}
	assertInvalid(t, g, "listed twice")
}

func TestBuilderChildOfUnknownParentPanics(t *testing.T) {
	b := NewBuilder("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	b.Child(3, Task{})
}

// Property: graphs built through the Builder always validate, for random
// forest shapes.
func TestBuilderAlwaysValid(t *testing.T) {
	f := func(shape []uint8) bool {
		b := NewBuilder("prop")
		var ids []int
		for _, s := range shape {
			t := Task{CostNS: int64(s), Flexible: s%2 == 0}
			if len(ids) == 0 || s%3 == 0 {
				ids = append(ids, b.Root(t))
			} else {
				parent := ids[int(s)%len(ids)]
				ids = append(ids, b.Child(parent, t))
			}
		}
		_, err := b.Graph()
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func assertInvalid(t *testing.T, g *Graph, wantSubstr string) {
	t.Helper()
	err := g.Validate()
	if err == nil {
		t.Fatalf("Validate should fail (want %q)", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Validate error = %q, want substring %q", err, wantSubstr)
	}
}
