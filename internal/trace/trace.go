// Package trace defines the task-graph representation the discrete-event
// simulator replays. Applications (internal/apps/...) generate a Graph by
// running their real algorithm instrumented at task boundaries; the
// simulator then schedules that graph on a virtual cluster under any
// policy, with costs in virtual nanoseconds.
//
// Each task records the attributes the paper's task model cares about
// (§II): locality class, granularity (cost), data footprint (blocks),
// migration payload, and the communication it performs — both the
// baseline messages it sends wherever it runs and the extra remote
// references it incurs when executed away from its home place.
package trace

import "fmt"

// HomeMode says how a task's home place is determined.
type HomeMode uint8

const (
	// HomeFixed pins the task's home to the Home field — the X10
	// `async (p) S` with an explicit place expression.
	HomeFixed HomeMode = iota
	// HomeInherit homes the task at whatever place executes its parent —
	// the paper's condition (b): a task spawned by a stolen task is local
	// to the thief, so no extra cost needs to be paid.
	HomeInherit
)

// Task is one node of the graph.
type Task struct {
	// ID is the task's index in Graph.Tasks.
	ID int
	// Class is the locality classification (Sensitive or Flexible is
	// expressed via task.Class in the runtime; here a bool avoids an
	// import cycle-free duplicate).
	Flexible bool
	// HomeMode selects fixed or inherited homing.
	HomeMode HomeMode
	// Home is the fixed home place (ignored under HomeInherit).
	Home int
	// CostNS is the task's granularity: single-worker execution time.
	CostNS int64
	// Children lists tasks this task spawns, by ID.
	Children []int
	// SpawnFrac optionally gives, per child, the fraction of this task's
	// execution at which the child is spawned (0..1). Empty means children
	// are spread uniformly across the parent's execution interval.
	SpawnFrac []float64
	// Blocks is the data footprint for the L1d cache model.
	Blocks []uint64
	// BlockReps is how many passes the task makes over its footprint
	// (intra-task reuse; 0 means 1). Higher values lower the baseline
	// miss rate, amplifying the relative cost of a migration cold start.
	BlockReps int
	// MigBytes is the payload copied when the task migrates.
	MigBytes int
	// MigMsgs is the number of extra messages (remote data references)
	// the task performs when executed away from its home place.
	MigMsgs int
	// BaseMsgs/BaseBytes is communication the task performs regardless of
	// where it executes (e.g. publishing results, neighbour exchange).
	BaseMsgs  int
	BaseBytes int
}

// Graph is a complete application trace.
type Graph struct {
	// Name labels the workload (e.g. "dmg").
	Name string
	// Tasks holds every task; Tasks[i].ID == i.
	Tasks []Task
	// Roots are the initially available tasks.
	Roots []int
	// SeqNS optionally records the measured or modelled sequential
	// execution time. Zero means "use TotalWorkNS".
	SeqNS int64
}

// NumTasks returns the task count.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// Clone returns a deep copy of g: mutating the copy (or the original)
// cannot be observed through the other. Traces are deterministic per
// (app, seed) and expensive to generate, so callers share one Graph
// read-only across concurrent simulations; Clone exists for the cases that
// need a private mutable copy — and for tests that pin down that the
// simulator really does treat shared graphs as immutable.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		Name:  g.Name,
		Tasks: make([]Task, len(g.Tasks)),
		Roots: append([]int(nil), g.Roots...),
		SeqNS: g.SeqNS,
	}
	for i, t := range g.Tasks {
		t.Children = append([]int(nil), t.Children...)
		t.SpawnFrac = append([]float64(nil), t.SpawnFrac...)
		t.Blocks = append([]uint64(nil), t.Blocks...)
		out.Tasks[i] = t
	}
	return out
}

// TotalWorkNS sums all task costs — the critical quantity for speedup
// baselines when SeqNS is not set.
func (g *Graph) TotalWorkNS() int64 {
	var sum int64
	for i := range g.Tasks {
		sum += g.Tasks[i].CostNS
	}
	return sum
}

// Sequential returns the time a single worker needs: SeqNS when recorded,
// else the total work.
func (g *Graph) Sequential() int64 {
	if g.SeqNS > 0 {
		return g.SeqNS
	}
	return g.TotalWorkNS()
}

// FlexibleFraction returns the fraction of tasks annotated flexible.
func (g *Graph) FlexibleFraction() float64 {
	if len(g.Tasks) == 0 {
		return 0
	}
	n := 0
	for i := range g.Tasks {
		if g.Tasks[i].Flexible {
			n++
		}
	}
	return float64(n) / float64(len(g.Tasks))
}

// Validate checks structural invariants: IDs match indices, children
// exist and form a forest (each task has at most one parent, no cycles),
// every root exists, costs are non-negative, and spawn fractions are
// sane. It returns a descriptive error on the first violation.
func (g *Graph) Validate() error {
	parent := make([]int, len(g.Tasks))
	for i := range parent {
		parent[i] = -1
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != i {
			return fmt.Errorf("trace: task at index %d has ID %d", i, t.ID)
		}
		if t.CostNS < 0 {
			return fmt.Errorf("trace: task %d has negative cost %d", i, t.CostNS)
		}
		if len(t.SpawnFrac) != 0 && len(t.SpawnFrac) != len(t.Children) {
			return fmt.Errorf("trace: task %d has %d spawn fractions for %d children",
				i, len(t.SpawnFrac), len(t.Children))
		}
		for _, f := range t.SpawnFrac {
			if f < 0 || f > 1 {
				return fmt.Errorf("trace: task %d has spawn fraction %v outside [0,1]", i, f)
			}
		}
		for _, c := range t.Children {
			if c < 0 || c >= len(g.Tasks) {
				return fmt.Errorf("trace: task %d has out-of-range child %d", i, c)
			}
			if c == i {
				return fmt.Errorf("trace: task %d is its own child", i)
			}
			if parent[c] != -1 {
				return fmt.Errorf("trace: task %d has two parents (%d and %d)", c, parent[c], i)
			}
			parent[c] = i
		}
	}
	seenRoot := make(map[int]bool, len(g.Roots))
	for _, r := range g.Roots {
		if r < 0 || r >= len(g.Tasks) {
			return fmt.Errorf("trace: root %d out of range", r)
		}
		if parent[r] != -1 {
			return fmt.Errorf("trace: root %d has a parent (%d)", r, parent[r])
		}
		if seenRoot[r] {
			return fmt.Errorf("trace: root %d listed twice", r)
		}
		seenRoot[r] = true
	}
	// Reachability: every task must be reachable from a root; with the
	// single-parent invariant established above, cycles are impossible
	// among reachable tasks, so full coverage implies a forest.
	reach := 0
	stack := append([]int(nil), g.Roots...)
	visited := make([]bool, len(g.Tasks))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n] {
			return fmt.Errorf("trace: task %d reached twice (cycle or shared child)", n)
		}
		visited[n] = true
		reach++
		stack = append(stack, g.Tasks[n].Children...)
	}
	if reach != len(g.Tasks) {
		return fmt.Errorf("trace: %d of %d tasks unreachable from roots", len(g.Tasks)-reach, reach)
	}
	return nil
}

// Builder assembles a valid Graph incrementally.
type Builder struct {
	g Graph
}

// NewBuilder starts a graph with the given workload name.
func NewBuilder(name string) *Builder {
	return &Builder{g: Graph{Name: name}}
}

// add appends t (ignoring t.ID and t.Children) and returns its ID.
func (b *Builder) add(t Task) int {
	t.ID = len(b.g.Tasks)
	t.Children = nil
	b.g.Tasks = append(b.g.Tasks, t)
	return t.ID
}

// Root adds an initially available task.
func (b *Builder) Root(t Task) int {
	id := b.add(t)
	b.g.Roots = append(b.g.Roots, id)
	return id
}

// Child adds a task spawned by parent.
func (b *Builder) Child(parent int, t Task) int {
	if parent < 0 || parent >= len(b.g.Tasks) {
		panic(fmt.Sprintf("trace: Child of unknown parent %d", parent))
	}
	id := b.add(t)
	b.g.Tasks[parent].Children = append(b.g.Tasks[parent].Children, id)
	return id
}

// SetSequential records the measured sequential time.
func (b *Builder) SetSequential(ns int64) { b.g.SeqNS = ns }

// NumTasks returns the number of tasks added so far.
func (b *Builder) NumTasks() int { return len(b.g.Tasks) }

// Graph validates and returns the built graph. The builder must not be
// used afterwards.
func (b *Builder) Graph() (*Graph, error) {
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return &b.g, nil
}
