package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"distws/internal/metrics"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	s := startTestServer(t)
	base := "http://" + s.Addr()

	// Before any source is attached scrapes succeed with a comment.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "no metrics source") {
		t.Fatalf("unattached /metrics = %d %q", code, body)
	}

	var ctrs metrics.Counters
	ctrs.TasksExecuted.Add(42)
	s.SetMetricsSource(ctrs.Snapshot)
	s.SetUtilizationSource(func() []float64 { return []float64{12.5, 50} })
	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"distws_tasks_executed_total 42",
		`distws_place_busy_fraction_percent{place="1"} 50`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerTraceEndpoint(t *testing.T) {
	s := startTestServer(t)
	base := "http://" + s.Addr()

	// No recorder attached: 404, not a hang or a panic.
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Fatalf("unattached /trace = %d, want 404", code)
	}

	clk := &manualClock{}
	rec := NewRecorder(RecorderOptions{})
	rec.Configure(2, 1, clk, VirtualNS)
	rec.Record(0, 0, KindTaskStart, 1, 0, 0)
	clk.now = 100
	rec.Record(0, 0, KindTaskEnd, 1, 0, 0)
	s.SetRecorder(rec)

	code, body := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/trace default (chrome) is not valid JSON: %v", err)
	}

	code, body = get(t, base+"/trace?format=events")
	if code != http.StatusOK {
		t.Fatalf("/trace?format=events = %d", code)
	}
	td, err := ReadEvents(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace?format=events unreadable: %v", err)
	}
	if len(td.Events) != 2 {
		t.Fatalf("event dump has %d events, want 2", len(td.Events))
	}

	if code, _ := get(t, base+"/trace?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus format = %d, want 400", code)
	}
}

func TestServerPprofIndex(t *testing.T) {
	s := startTestServer(t)
	code, body := get(t, fmt.Sprintf("http://%s/debug/pprof/", s.Addr()))
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (goroutine profile listed: %v)",
			code, strings.Contains(body, "goroutine"))
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	s.SetMetricsSource(nil)
	s.SetUtilizationSource(nil)
	s.SetRecorder(nil)
	if err := s.Close(); err != nil {
		t.Fatalf("nil server Close = %v", err)
	}
}
