package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"distws/internal/core"
	"distws/internal/obs"
	"distws/internal/sched"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/trace"
)

// simTrace runs a flat flexible workload on the simulator with a
// recorder attached and returns both the simulator result and the trace.
func simTrace(t *testing.T, places, workers, tasks int) (*sim.Result, *obs.TraceData) {
	t.Helper()
	b := trace.NewBuilder("flat")
	for i := 0; i < tasks; i++ {
		b.Root(trace.Task{CostNS: 1_000_000, Home: i % places, Flexible: true})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = places, workers
	rec := obs.NewRecorder(obs.RecorderOptions{})
	res, err := sim.Run(g, cl, sched.DistWS, sim.Options{Seed: 7, Recorder: rec})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	td := rec.Snapshot()
	if td == nil {
		t.Fatal("recorder attached to sim produced no snapshot")
	}
	return res, td
}

func TestSimTraceMatchesResult(t *testing.T) {
	res, td := simTrace(t, 4, 2, 200)
	if td.Unit != obs.VirtualNS {
		t.Fatalf("sim trace unit = %q, want %q", td.Unit, obs.VirtualNS)
	}
	if td.Dropped != 0 {
		t.Fatalf("small run dropped %d events", td.Dropped)
	}
	var starts, ends int
	for _, ev := range td.Events {
		switch ev.Kind {
		case obs.KindTaskStart:
			starts++
		case obs.KindTaskEnd:
			ends++
		}
	}
	if int64(starts) != res.Counters.TasksExecuted || starts != ends {
		t.Fatalf("trace has %d starts / %d ends, counters executed %d",
			starts, ends, res.Counters.TasksExecuted)
	}
	if _, end := td.Span(); end != res.MakespanNS {
		t.Fatalf("trace span end = %d, result makespan = %d", end, res.MakespanNS)
	}
}

// TestSimChromeExport is the tentpole acceptance check: the Chrome
// export of a traced sim run must round-trip encoding/json and name one
// track per place×worker.
func TestSimChromeExport(t *testing.T) {
	const places, workers = 4, 2
	_, td := simTrace(t, places, workers, 200)
	var buf bytes.Buffer
	if err := td.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome export does not round-trip encoding/json: %v", err)
	}
	named := map[string]bool{}
	for _, ev := range evs {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			named[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	if len(named) != places*workers {
		t.Fatalf("chrome export names %d tracks, want %d", len(named), places*workers)
	}
	for p := 0; p < places; p++ {
		for w := 0; w < workers; w++ {
			if !named[fmt.Sprintf("place %d worker %d", p, w)] {
				t.Fatalf("missing track for place %d worker %d", p, w)
			}
		}
	}
}

// TestSimUtilizationWithinOnePercent is the other acceptance check: the
// event-derived busy fractions (and the CSV built from them) must match
// the simulator's counter-derived Result.Utilization within 1%.
func TestSimUtilizationWithinOnePercent(t *testing.T) {
	res, td := simTrace(t, 4, 2, 400)
	got := td.BusyFractions()
	if len(got) != len(res.Utilization) {
		t.Fatalf("trace has %d places, result %d", len(got), len(res.Utilization))
	}
	for p := range got {
		if diff := math.Abs(got[p] - res.Utilization[p]); diff > 1 {
			t.Fatalf("place %d: trace busy %.3f%% vs result %.3f%% (diff %.3f > 1%%)",
				p, got[p], res.Utilization[p], diff)
		}
	}

	// The CSV timeline, time-averaged per place, equals the same fractions.
	var buf bytes.Buffer
	if err := td.WriteUtilizationCSV(&buf, 50); err != nil {
		t.Fatalf("WriteUtilizationCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv has no rows: %q", buf.String())
	}
	sums := make([]float64, len(got))
	var span float64
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 2+len(got) {
			t.Fatalf("csv row has %d columns, want %d: %q", len(cols), 2+len(got), line)
		}
		lo, _ := strconv.ParseFloat(cols[0], 64)
		hi, _ := strconv.ParseFloat(cols[1], 64)
		span += hi - lo
		for p := range got {
			f, err := strconv.ParseFloat(cols[2+p], 64)
			if err != nil {
				t.Fatalf("csv cell %q: %v", cols[2+p], err)
			}
			sums[p] += f * (hi - lo)
		}
	}
	for p := range got {
		avg := sums[p] / span
		if diff := math.Abs(avg - res.Utilization[p]); diff > 1 {
			t.Fatalf("place %d: csv-average busy %.3f%% vs result %.3f%% (diff %.3f > 1%%)",
				p, avg, res.Utilization[p], diff)
		}
	}
}

func TestSimRecorderObservesRemoteSteals(t *testing.T) {
	// All work homed at place 0: other places must steal remotely.
	b := trace.NewBuilder("skew")
	for i := 0; i < 300; i++ {
		b.Root(trace.Task{CostNS: 500_000, Home: 0, Flexible: true})
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.Paper()
	cl.Places, cl.WorkersPerPlace = 4, 2
	rec := obs.NewRecorder(obs.RecorderOptions{})
	res, err := sim.Run(g, cl, sched.DistWS, sim.Options{Seed: 7, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	// One KindStealRemote event per stolen chunk; the chunk's remainder
	// travels as a KindArrive whose Arg is the batch size. The counter
	// counts stolen tasks, so: tasks = chunks + Σ arrive sizes.
	var chunks, probes, arrived int64
	for _, ev := range rec.Snapshot().Events {
		switch ev.Kind {
		case obs.KindStealRemote:
			chunks++
			if ev.Dur <= 0 {
				t.Fatalf("remote steal with non-positive latency: %+v", ev)
			}
		case obs.KindProbe:
			probes++
		case obs.KindArrive:
			arrived += int64(ev.Arg)
		}
	}
	if res.Counters.RemoteSteals == 0 {
		t.Skip("workload produced no remote steals; nothing to check")
	}
	if got := chunks + arrived; got != res.Counters.RemoteSteals {
		t.Fatalf("trace accounts for %d stolen tasks (%d chunks + %d arrivals), counter %d",
			got, chunks, arrived, res.Counters.RemoteSteals)
	}
	if probes < chunks {
		t.Fatalf("probes %d < successful steal chunks %d", probes, chunks)
	}
}

func TestCoreRuntimeRecordsEvents(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderOptions{})
	rt, err := core.New(core.Config{
		Cluster:  topology.Cluster{Places: 2, WorkersPerPlace: 2},
		Policy:   sched.DistWS,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	err = rt.Run(func(ctx *core.Ctx) {
		ctx.Finish(func(c *core.Ctx) {
			for i := 0; i < 32; i++ {
				c.AsyncAny(i%2, func(*core.Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	td := rec.Snapshot()
	if td.Unit != obs.WallNS {
		t.Fatalf("core trace unit = %q, want %q", td.Unit, obs.WallNS)
	}
	var starts, ends, spawns int
	for _, ev := range td.Events {
		switch ev.Kind {
		case obs.KindTaskStart:
			starts++
		case obs.KindTaskEnd:
			ends++
			if ev.Dur < 0 {
				t.Fatalf("task end with negative duration: %+v", ev)
			}
		case obs.KindSpawn:
			spawns++
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("core trace has %d starts / %d ends", starts, ends)
	}
	if spawns == 0 {
		t.Fatal("core trace recorded no spawns")
	}
}
