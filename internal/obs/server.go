package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"distws/internal/metrics"
)

// Server is the live introspection endpoint: a plain-HTTP listener
// serving Prometheus-style counter exposition, Go pprof profiles, and
// on-demand trace dumps for a running distws process.
//
//	/metrics            counter exposition (metrics.Snapshot) + utilization gauges
//	/debug/pprof/...    the standard Go profiling endpoints
//	/trace              Chrome trace-event JSON dump of the recorder
//	/trace?format=...   events (native JSONL), csv, or summary
//
// Sources are settable after the listener is up because the runtime they
// come from is usually constructed later in main(); unset sources render
// an explanatory comment rather than an error so scrapes never flap
// during startup.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu       sync.RWMutex
	snapshot func() metrics.Snapshot
	util     func() []float64
	aux      func(io.Writer)
	rec      *Recorder
}

// ListenAndServe starts an introspection server on addr (host:port;
// port 0 picks a free one). The server runs until Close.
func ListenAndServe(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// SetMetricsSource installs the counter snapshot the /metrics endpoint
// exposes. Nil-safe on a nil server.
func (s *Server) SetMetricsSource(fn func() metrics.Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.snapshot = fn
	s.mu.Unlock()
}

// SetUtilizationSource installs the per-place busy-fraction gauge
// source appended to /metrics. Nil-safe on a nil server.
func (s *Server) SetUtilizationSource(fn func() []float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.util = fn
	s.mu.Unlock()
}

// SetAuxMetrics installs an extra exposition writer appended to
// /metrics after the counter snapshot — the hook a subsystem with its
// own metric families (e.g. per-tenant service stats) uses to ride the
// same scrape. Nil-safe on a nil server.
func (s *Server) SetAuxMetrics(fn func(io.Writer)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.aux = fn
	s.mu.Unlock()
}

// SetRecorder installs the recorder behind /trace. Nil-safe on a nil
// server.
func (s *Server) SetRecorder(rec *Recorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snapshot, util, aux := s.snapshot, s.util, s.aux
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if snapshot == nil && aux == nil {
		fmt.Fprintln(w, "# distws: no metrics source attached yet")
		return
	}
	if snapshot != nil {
		if err := snapshot().WritePrometheus(w); err != nil {
			return
		}
	}
	if util != nil {
		metrics.WriteUtilizationPrometheus(w, util())
	}
	if aux != nil {
		aux(w)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	rec := s.rec
	s.mu.RUnlock()
	if !rec.Enabled() {
		http.Error(w, "distws: no trace recorder attached (run with tracing enabled)", http.StatusNotFound)
		return
	}
	td := rec.Snapshot()
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	contentTypes := map[string]string{
		"chrome":  "application/json",
		"events":  "application/x-ndjson",
		"csv":     "text/csv",
		"summary": "text/plain; charset=utf-8",
	}
	ct, ok := contentTypes[format]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown format %q (want chrome, events, csv, or summary)", format), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", ct)
	td.WriteFormat(w, format, 100)
}
