// Package obs is the runtime observability subsystem: a low-overhead
// event recorder shared by the discrete-event simulator (internal/sim)
// and the real goroutine runtime (internal/core), plus exporters that
// turn recorded events into Chrome trace-event JSON (Perfetto /
// chrome://tracing), per-place utilization timelines (Fig. 7-style
// curves from real event data), and text summaries (steal latency and
// distance histograms), and a live HTTP introspection server
// (Prometheus-style metrics, pprof, on-demand trace dump).
//
// The paper's evidence is event-shaped — steal counts by distance
// (Fig. 3), message volume (Table III), per-place CPU-utilization
// curves (Fig. 7) — but aggregate counters cannot show *when* a remote
// steal fired, which victim was probed, or why a place sat idle. The
// recorder captures exactly those events with per-worker timestamps so
// steal pathologies can be diagnosed rather than inferred.
//
// # Design
//
// Tracing is off by default: a nil *Recorder is valid everywhere, and
// every method on it is a nil-check away from a no-op, so the
// instrumented hot paths pay one predictable branch when tracing is
// disabled. When enabled, events land in per-worker fixed-capacity ring
// buffers of compact structs: steady-state recording performs zero heap
// allocations, and when a ring fills the oldest events are overwritten
// while a dropped counter keeps the loss observable.
//
// Timestamps come from a Clock: the simulator drives the recorder with
// virtual nanoseconds, the goroutine runtime with wall-clock nanoseconds
// since runtime start. Exporters carry the unit through so a trace file
// is self-describing.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies event timestamps in nanoseconds. Implementations:
// virtual time (internal/sim drives the recorder with its event-loop
// clock) or wall time (WallClockSince, used by internal/core).
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// WallClockSince returns a wall Clock reporting nanoseconds elapsed
// since start, using the monotonic reading embedded in start.
func WallClockSince(start time.Time) Clock {
	return ClockFunc(func() int64 { return time.Since(start).Nanoseconds() })
}

// ClockUnit names the time base of a trace.
type ClockUnit string

const (
	// VirtualNS marks timestamps in simulator virtual nanoseconds.
	VirtualNS ClockUnit = "virtual-ns"
	// WallNS marks timestamps in wall-clock nanoseconds since run start.
	WallNS ClockUnit = "wall-ns"
)

// Kind identifies what an event records.
type Kind uint8

const (
	// KindTaskStart marks a task beginning execution on a worker.
	// Task = task id (-1 in the real runtime), Arg = home place.
	KindTaskStart Kind = iota + 1
	// KindTaskEnd marks the matching completion. Dur = execution time
	// when the producer knows it (real runtime); otherwise exporters
	// pair it with the preceding KindTaskStart on the same track.
	KindTaskEnd
	// KindSpawn marks a task arriving at its home place's deques.
	// Arg = spawning place (-1 for roots / external spawns).
	KindSpawn
	// KindStealLocal marks a successful intra-place steal from a
	// co-located worker's private deque. Arg = victim worker index.
	KindStealLocal
	// KindStealRemote marks a successful distributed steal.
	// Arg = victim place, Dur = acquisition latency (probe round trips,
	// lock wait, payload transfer), Task = first task of the chunk.
	KindStealRemote
	// KindStealFail marks one fully failed work-finding sweep, after
	// which the worker goes dormant.
	KindStealFail
	// KindProbe marks one remote steal request sent. Arg = victim place.
	KindProbe
	// KindTimeout marks a steal round trip lost to a fault and timed
	// out. Arg = victim place.
	KindTimeout
	// KindArrive marks stolen tasks being deposited in the thief
	// place's shared deque (the deque migration of §V-B3).
	// Arg = number of tasks in the chunk.
	KindArrive
	// KindCrash marks a place fail-stopping. Arg = orphaned tasks
	// re-homed to survivors.
	KindCrash
	// KindReclassify marks the adapt controller flipping a task kind's
	// online classification (adaptive policy). Task = the task whose
	// completion triggered the flip (-1 in the real runtime), Arg = the
	// new class (0 sensitive, 1 flexible).
	KindReclassify
	// KindJoin marks a place joining the cluster at runtime.
	// Arg = the joiner's incarnation.
	KindJoin
	// KindDrain marks a place starting a graceful drain. Arg = queued
	// tasks offloaded to survivors.
	KindDrain
	// KindPartition marks an injected network partition taking effect.
	// Arg = the number of places on the smaller side.
	KindPartition
	// KindHeal marks a partition healing or a flapped place recovering.
	// Arg = the recovering place (-1 for a partition-wide heal).
	KindHeal
	// KindJobAdmit marks a service job passing admission control.
	// Arg = the tenant id.
	KindJobAdmit
	// KindJobReject marks a service job nacked by admission control.
	// Arg = the tenant id.
	KindJobReject
	// KindJobDone marks a service job completing and its result being
	// acked to the submitting client. Arg = the tenant id.
	KindJobDone
	// KindDonate marks a busy owner serving a receiver-initiated steal
	// request by donating half its deque. Arg = number of tasks donated.
	KindDonate
	// KindDupTake marks a relaxed-deque duplicate take being discarded
	// by dispatch-level dedup. Task = the task id (-1 in the real
	// runtime), Arg = the place that observed the duplicate.
	KindDupTake
	// KindDAGRelease marks a dataflow task's last dependency completing,
	// releasing it into the scheduler. Task = the released task,
	// Arg = its chosen home place.
	KindDAGRelease
	// KindDAGResidentHit marks a dataflow task starting with input blocks
	// already resident at its executing place. Arg = the hit count.
	KindDAGResidentHit
	// KindDAGResidentMiss marks a dataflow task fetching non-resident
	// input blocks before starting. Arg = the miss count, Dur = the
	// modelled fetch time.
	KindDAGResidentMiss
	numKinds
)

var kindNames = [...]string{
	KindTaskStart:       "task_start",
	KindTaskEnd:         "task_end",
	KindSpawn:           "spawn",
	KindStealLocal:      "steal_local",
	KindStealRemote:     "steal_remote",
	KindStealFail:       "steal_fail",
	KindProbe:           "probe",
	KindTimeout:         "timeout",
	KindArrive:          "arrive",
	KindCrash:           "crash",
	KindReclassify:      "reclassify",
	KindJoin:            "join",
	KindDrain:           "drain",
	KindPartition:       "partition",
	KindHeal:            "heal",
	KindJobAdmit:        "job_admit",
	KindJobReject:       "job_reject",
	KindJobDone:         "job_done",
	KindDonate:          "donate",
	KindDupTake:         "dup_take",
	KindDAGRelease:      "dag_release",
	KindDAGResidentHit:  "dag_hit",
	KindDAGResidentMiss: "dag_miss",
}

// String returns the stable wire name of the kind (used by the native
// trace file format).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a wire name back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one compact recorded event. The struct is pointer-free so
// rings hold it by value and recording never allocates.
type Event struct {
	// TS is the event timestamp in the recorder's clock unit.
	TS int64
	// Dur is a kind-specific duration in ns (0 when not applicable).
	Dur int64
	// Task is the task id the event concerns, or -1.
	Task int32
	// Arg is kind-specific (victim place, spawner, chunk size, ...).
	Arg int32
	// Kind says what happened.
	Kind Kind
}

// track is one worker's ring buffer. Single-writer in practice (each
// worker records only to its own track), but a mutex keeps concurrent
// dumps from a live introspection endpoint race-free.
type track struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // write cursor
	n       int   // events held (≤ cap)
	dropped int64 // events overwritten after the ring filled
}

func (t *track) record(ev Event) {
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// appendOldestFirst appends the track's events in recording order.
func (t *track) appendOldestFirst(dst []Event) ([]Event, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		dst = append(dst, t.buf[(start+i)%len(t.buf)])
	}
	return dst, t.dropped
}

// DefaultTrackCapacity is the per-worker ring size when RecorderOptions
// leaves it zero: 16384 events ≈ 512 KiB per worker.
const DefaultTrackCapacity = 16384

// RecorderOptions tunes a Recorder.
type RecorderOptions struct {
	// TrackCapacity is the fixed per-worker ring size in events.
	// Zero picks DefaultTrackCapacity.
	TrackCapacity int
}

// Recorder collects events into per-worker rings. The zero value is not
// usable; create with NewRecorder. A nil *Recorder is the disabled
// state: every method is safe to call and does nothing, so runtimes
// hold a possibly-nil recorder and call it unconditionally.
//
// A Recorder must be Configure()d by the runtime that drives it (the
// runtime knows the topology and the clock); events recorded before
// configuration are silently discarded.
type Recorder struct {
	trackCap        int
	clock           Clock
	unit            ClockUnit
	places          int
	workersPerPlace int
	tracks          []track // place-major: index = place*workersPerPlace+worker
}

// NewRecorder returns an unconfigured recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	cap := opts.TrackCapacity
	if cap <= 0 {
		cap = DefaultTrackCapacity
	}
	return &Recorder{trackCap: cap}
}

// Configure shapes the recorder for a places×workersPerPlace run and
// installs the clock driving timestamps. The driving runtime calls this
// once before recording; reconfiguring resets all tracks, reusing the
// rings when the shape is unchanged (so a recorder driven across
// repeated same-shape runs allocates its rings once). Nil-safe.
func (r *Recorder) Configure(places, workersPerPlace int, clock Clock, unit ClockUnit) {
	if r == nil {
		return
	}
	if places <= 0 || workersPerPlace <= 0 {
		panic(fmt.Sprintf("obs: Configure(%d, %d), want positive dimensions", places, workersPerPlace))
	}
	reuse := places == r.places && workersPerPlace == r.workersPerPlace && len(r.tracks) > 0
	r.places = places
	r.workersPerPlace = workersPerPlace
	r.clock = clock
	r.unit = unit
	if reuse {
		for i := range r.tracks {
			t := &r.tracks[i]
			t.mu.Lock()
			t.next, t.n, t.dropped = 0, 0, 0
			t.mu.Unlock()
		}
		return
	}
	r.tracks = make([]track, places*workersPerPlace)
	for i := range r.tracks {
		r.tracks[i].buf = make([]Event, r.trackCap)
	}
}

// Enabled reports whether the recorder is non-nil and configured.
func (r *Recorder) Enabled() bool { return r != nil && len(r.tracks) > 0 }

// Record logs one event on worker worker of place place, stamping it
// with the configured clock. It is the hot-path entry point: nil-safe,
// allocation-free, and a single predictable branch when disabled.
func (r *Recorder) Record(place, worker int, kind Kind, taskID, arg int32, dur int64) {
	if r == nil || len(r.tracks) == 0 {
		return
	}
	var ts int64
	if r.clock != nil {
		ts = r.clock.Now()
	}
	r.RecordAt(ts, place, worker, kind, taskID, arg, dur)
}

// RecordAt is Record with a caller-supplied timestamp, for producers
// that already hold the current time. The simulator uses it with its
// virtual clock: a Clock closure over the engine would force the whole
// engine to escape to the heap even with tracing off, so the engine
// passes its event-loop time explicitly instead.
func (r *Recorder) RecordAt(ts int64, place, worker int, kind Kind, taskID, arg int32, dur int64) {
	if r == nil || len(r.tracks) == 0 {
		return
	}
	idx := place*r.workersPerPlace + worker
	if idx < 0 || idx >= len(r.tracks) {
		return
	}
	r.tracks[idx].record(Event{TS: ts, Dur: dur, Task: taskID, Arg: arg, Kind: kind})
}

// Dropped returns how many events have been overwritten across all
// rings since configuration. Nil-safe.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var total int64
	for i := range r.tracks {
		t := &r.tracks[i]
		t.mu.Lock()
		total += t.dropped
		t.mu.Unlock()
	}
	return total
}

// Snapshot copies the recorded events out into an exportable TraceData,
// sorted by timestamp (ties keep per-track recording order). Nil-safe:
// a nil or unconfigured recorder yields nil.
func (r *Recorder) Snapshot() *TraceData {
	if !r.Enabled() {
		return nil
	}
	td := &TraceData{
		Places:          r.places,
		WorkersPerPlace: r.workersPerPlace,
		Unit:            r.unit,
	}
	var buf []Event
	for i := range r.tracks {
		var dropped int64
		buf, dropped = r.tracks[i].appendOldestFirst(buf[:0])
		td.Dropped += dropped
		place := int32(i / r.workersPerPlace)
		worker := int32(i % r.workersPerPlace)
		for _, ev := range buf {
			td.Events = append(td.Events, TrackEvent{Event: ev, Place: place, Worker: worker})
		}
	}
	td.sort()
	return td
}
